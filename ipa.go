// Package ipa is a from-scratch Go reproduction of
//
//	IPA: Invariant-preserving Applications for Weakly-consistent
//	Replicated Databases (Balegas, Preguiça, Duarte, Ferreira, Rodrigues;
//	2018, arXiv:1802.08474).
//
// IPA makes applications correct under weak consistency at development
// time: a static analysis finds pairs of operations whose concurrent
// execution can violate an application invariant and proposes minimal
// modifications — extra CRDT effects plus add-wins/rem-wins convergence
// rules — so that the merged state always restores the operations'
// preconditions, with no runtime coordination. Invariants that cannot
// reasonably be prevented up front (numeric bounds) are handled by lazy
// compensations.
//
// The package closes the spec → analysis → execution loop behind one
// client API: Open a replicated database (deterministic simulation or
// real TCP sockets — same interface), Mount a specification (parse, run
// the IPA analysis, compile the patched spec into a generic executor),
// and Call its operations from any replica:
//
//	db, _ := ipa.Open(ipa.ClusterOptions{})           // 3-site sim cluster
//	app, _ := db.Mount(specSource)                    // parse → analyze → executor
//	_ = app.At(ipa.PaperSites()[0]).Call("enroll", "alice", "cup")
//	_ = db.Settle()                                    // drain replication
//	violations := app.CheckInvariants()                // every replica, generically
//
// The analyzed specification *is* the application: the engine
// materializes each predicate as the right CRDT, executes base effects
// plus the analysis' repairs and compensations inside highly available
// transactions, and checks the invariants by evaluating the spec's
// logic against the running state (package internal/engine).
//
// The lower layers stay exported for direct use:
//
//   - the specification language (ParseSpec, Spec) — invariants in
//     first-order logic plus operation effects and preconditions;
//   - the analysis (Analyze, FindConflicts, ProposeRepairs) — conflict
//     detection and repair synthesis, decided by a built-in small-scope
//     SAT/bit-vector solver standing in for Z3;
//   - the runtime substrate (Open, NewSim, NewCluster, PaperTopology) —
//     a causally consistent geo-replicated key-value store with highly
//     available transactions and the paper's CRDT toolkit, behind the
//     backend-agnostic Cluster/Replica interfaces.
//
// The example applications (Tournament, Twitter, Ticket, TPC-W) live in
// internal/apps; the chaos harness drives them — and any mounted spec,
// via `ipa chaos -app spec:<file>` — under randomized faults; the
// evaluation harness in internal/bench regenerates the paper's tables.
// See DESIGN.md for the inventory and EXPERIMENTS.md for the record.
package ipa

import (
	"fmt"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/engine"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// Specification language.
type (
	// Spec is an application specification: operations with effects over
	// logical predicates, invariants, and convergence rules.
	Spec = spec.Spec
	// Operation is one specified operation.
	Operation = spec.Operation
	// Effect is one predicate update of an operation.
	Effect = spec.Effect
	// Policy is a per-predicate convergence rule.
	Policy = spec.Policy
)

// Convergence policies.
const (
	AddWins = spec.AddWins
	RemWins = spec.RemWins
)

// ParseSpec parses a specification in the textual format (see package
// internal/spec for the grammar).
func ParseSpec(src string) (*Spec, error) { return spec.Parse(src) }

// MustParseSpec is ParseSpec that panics on error.
func MustParseSpec(src string) *Spec { return spec.MustParse(src) }

// Analysis.
type (
	// AnalysisOptions tunes scope and repair search.
	AnalysisOptions = analysis.Options
	// AnalysisResult is the outcome of the IPA loop: the patched spec,
	// applied repairs, synthesised compensations, flagged conflicts.
	AnalysisResult = analysis.Result
	// Conflict is a detected non-I-confluent operation pair with its
	// counterexample.
	Conflict = analysis.Conflict
	// Repair is one proposed resolution for a conflict.
	Repair = analysis.Repair
	// Compensation is a synthesised lazy repair for a numeric invariant.
	Compensation = analysis.Compensation
)

// Analyze runs the full IPA loop (paper Alg. 1) on the specification and
// returns the patched, invariant-preserving spec plus the applied repairs
// and compensations. The input is not modified.
func Analyze(s *Spec, opts AnalysisOptions) (*AnalysisResult, error) {
	return analysis.Run(s, opts)
}

// FindConflicts reports every conflicting operation pair of the spec.
func FindConflicts(s *Spec, opts AnalysisOptions) ([]*Conflict, error) {
	return analysis.FindConflicts(s, opts)
}

// ProposeRepairs lists the minimal repairs for one conflict, smallest
// first (paper repairConflicts).
func ProposeRepairs(s *Spec, c *Conflict, opts AnalysisOptions) ([]Repair, error) {
	return analysis.RepairConflict(s, c, opts)
}

// Runtime substrate. Cluster and Replica are the backend-agnostic
// interfaces every layer above the substrate programs against; both the
// deterministic simulation and the real-socket netrepl transport
// implement them.
type (
	// Sim is the deterministic discrete-event simulation driving a
	// sim-backed cluster.
	Sim = wan.Sim
	// Latency models inter-datacenter delays.
	Latency = wan.Latency
	// Cluster is a geo-replicated database deployment (sim or netrepl).
	Cluster = runtime.Cluster
	// Replica is one data center's copy of the database.
	Replica = runtime.Replica
	// Txn is a highly available transaction.
	Txn = store.Txn
	// ReplicaID identifies a replica.
	ReplicaID = clock.ReplicaID
	// Faults is the optional fault-injection surface of a Cluster
	// (type-assert: both built-in backends implement it).
	Faults = runtime.Faults
)

// Backend names for ClusterOptions.Backend.
const (
	// BackendSim is the deterministic discrete-event simulation.
	BackendSim = runtime.BackendSim
	// BackendNet is the real-socket netrepl transport.
	BackendNet = runtime.BackendNet
)

// NewSim creates a deterministic simulation with the given seed.
func NewSim(seed int64) *Sim { return wan.NewSim(seed) }

// PaperTopology returns the paper's three-region latency model
// (us-east/us-west/eu-west, 80/80/160 ms RTTs).
func PaperTopology() *Latency { return wan.PaperTopology() }

// PaperSites returns the three replica identifiers of the paper's
// deployment.
func PaperSites() []ReplicaID {
	return []ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
}

// NewCluster creates a simulator-backed replicated database over the
// given sites, behind the backend-agnostic interface.
func NewCluster(sim *Sim, lat *Latency, sites []ReplicaID) Cluster {
	return runtime.NewSimCluster(store.NewCluster(sim, lat, sites))
}

// NewPaperCluster is the common simulation setup: the paper's three
// sites and topology under one seeded simulation.
func NewPaperCluster(seed int64) (*Sim, Cluster) {
	sim := wan.NewSim(seed)
	return sim, NewCluster(sim, wan.PaperTopology(), PaperSites())
}

// NewNetCluster creates a real-socket replication cluster (one netrepl
// node per site on loopback TCP, fully meshed) behind the same
// interface. Close it when done.
func NewNetCluster(sites []ReplicaID) (Cluster, error) {
	return runtime.NewNetCluster(sites, runtime.NetConfig{})
}

// Deprecated backend aliases, kept for source compatibility: Cluster and
// Replica themselves are now the backend-agnostic interfaces, and
// NewCluster/NewPaperCluster already return them (the former
// NewSimBackend wrapper is gone — there is nothing left to wrap).
type (
	// BackendCluster is the substrate-agnostic cluster surface.
	BackendCluster = runtime.Cluster
	// BackendReplica is one site through the substrate-agnostic surface.
	BackendReplica = runtime.Replica
)

// NewNetBackend is NewNetCluster under its historical name.
func NewNetBackend(sites []ReplicaID) (BackendCluster, error) { return NewNetCluster(sites) }

// --- The client API: Open → Mount → Session.Call ---------------------

// ClusterOptions configures Open. The zero value opens the paper's
// three-site deployment on the deterministic simulator.
type ClusterOptions struct {
	// Backend selects the substrate: BackendSim (default) or BackendNet.
	Backend string
	// Sites lists the replica identifiers; default PaperSites().
	Sites []ReplicaID
	// Seed drives the simulation (sim backend only).
	Seed int64
	// DataDir, when non-empty, makes every replica durable (net backend
	// only): each site keeps a write-ahead log and periodic snapshots
	// under DataDir/<site>, survives kill -9, and recovers on reopen.
	// See runtime.NetConfig.DataDir.
	DataDir string
}

// DB is an open replicated database: a cluster of causally consistent
// replicas on either backend, ready to mount analyzed applications.
type DB struct {
	cluster runtime.Cluster
	sim     *wan.Sim
}

// Open creates a replicated database.
func Open(opts ClusterOptions) (*DB, error) {
	sites := opts.Sites
	if len(sites) == 0 {
		sites = PaperSites()
	}
	switch opts.Backend {
	case "", BackendSim:
		if opts.DataDir != "" {
			return nil, fmt.Errorf("ipa: DataDir requires the %s backend (the simulator is memory-only)", BackendNet)
		}
		sim := wan.NewSim(opts.Seed)
		return &DB{cluster: NewCluster(sim, wan.PaperTopology(), sites), sim: sim}, nil
	case BackendNet:
		c, err := runtime.NewNetCluster(sites, runtime.NetConfig{DataDir: opts.DataDir})
		if err != nil {
			return nil, err
		}
		return &DB{cluster: c}, nil
	default:
		return nil, fmt.Errorf("ipa: unknown backend %q (want %s or %s)", opts.Backend, BackendSim, BackendNet)
	}
}

// Cluster returns the underlying backend-agnostic cluster.
func (db *DB) Cluster() Cluster { return db.cluster }

// Sim returns the driving simulation on the sim backend, nil on netrepl.
func (db *DB) Sim() *Sim { return db.sim }

// Replicas lists the database's replica identifiers.
func (db *DB) Replicas() []ReplicaID { return db.cluster.Replicas() }

// Settle blocks until replication has quiesced: every commit issued so
// far is delivered everywhere (the sim drains its event loop; netrepl
// waits for clock convergence).
func (db *DB) Settle() error { return db.cluster.Settle() }

// Stabilize computes the stability horizon and lets every CRDT compact
// metadata below it.
func (db *DB) Stabilize() { db.cluster.Stabilize() }

// Close releases backend resources (listeners, sender goroutines); a
// no-op on the simulator.
func (db *DB) Close() error { return db.cluster.Close() }

// Mount parses a specification, runs the IPA analysis on it, and
// compiles the patched result into an executable application on this
// database: the full loop of the paper behind one call. Use
// MountAnalyzed to control analysis options or repair choices.
func (db *DB) Mount(src string) (*App, error) {
	s, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	res, err := analysis.Run(s, analysis.Options{})
	if err != nil {
		return nil, err
	}
	return db.MountAnalyzed(s, res)
}

// MountAnalyzed compiles an already-analyzed specification. orig is the
// pre-analysis spec (it distinguishes an operation's own effects from
// the analysis-injected repairs, which execute as payload-preserving
// touches); pass nil to treat every effect as the operation's own.
func (db *DB) MountAnalyzed(orig *Spec, res *AnalysisResult) (*App, error) {
	eng, err := engine.Mount(orig, res, db.cluster)
	if err != nil {
		return nil, err
	}
	return &App{db: db, eng: eng}, nil
}

// ErrPrecondition reports that a Call did not execute because its
// preconditions failed at the origin replica (a guarded no-op, exactly
// like the hand-coded applications); test with errors.Is.
var ErrPrecondition = engine.ErrPrecondition

// App is a mounted application: the spec-execution engine bound to the
// database's replicas.
type App struct {
	db  *DB
	eng *engine.App
}

// Analysis returns the IPA analysis outcome the app was mounted from.
func (app *App) Analysis() *AnalysisResult { return app.eng.Result() }

// Spec returns the patched, invariant-preserving specification the
// engine executes.
func (app *App) Spec() *Spec { return app.eng.Spec() }

// Operations lists the callable operation names.
func (app *App) Operations() []string { return app.eng.Operations() }

// At returns a session bound to the replica — the client's entry point
// for executing operations at that site.
func (app *App) At(id ReplicaID) *Session {
	return &Session{app: app, replica: app.db.cluster.Replica(id)}
}

// CheckInvariants evaluates the continuously guaranteed invariant
// clauses at every replica and returns the violations, prefixed with
// the replica id. It may be called at any instant — these clauses hold
// in every causally consistent state.
func (app *App) CheckInvariants() []string {
	return app.checkAll(app.eng.CheckInvariants)
}

// CheckQuiescent additionally asserts the compensation-protected
// clauses; call after Settle and Repair (i.e. at quiescence).
func (app *App) CheckQuiescent() []string {
	return app.checkAll(app.eng.CheckQuiescent)
}

func (app *App) checkAll(check func(runtime.Replica) []string) []string {
	var out []string
	for _, id := range app.db.cluster.Replicas() {
		for _, msg := range check(app.db.cluster.Replica(id)) {
			out = append(out, fmt.Sprintf("%s: %s", id, msg))
		}
	}
	return out
}

// Repair runs the analysis' compensations as read-time repairs at every
// replica (trim oversold collections, replenish violated lower bounds).
// Interleave with Settle rounds at quiescence so repairs replicate.
func (app *App) Repair() {
	for _, id := range app.db.cluster.Replicas() {
		app.eng.Repair(app.db.cluster.Replica(id))
	}
}

// Digest summarizes one replica's visible specification-level state; at
// quiescence all replicas digest identically.
func (app *App) Digest(id ReplicaID) string {
	return app.eng.Digest(app.db.cluster.Replica(id))
}

// Session executes a mounted application's operations at one replica.
// Sessions are lightweight; create one per replica as needed.
type Session struct {
	app     *App
	replica runtime.Replica
}

// Replica returns the session's backend replica (for direct
// transactional access alongside engine calls).
func (s *Session) Replica() Replica { return s.replica }

// Call executes one specification operation in a single highly
// available transaction at the session's replica: origin-side
// precondition checks, then the operation's effects plus the analysis'
// repairs, ensures, and cascades. A failed precondition returns
// ErrPrecondition (the call is a no-op); other errors indicate caller
// mistakes (unknown operation, wrong arity, reserved characters in
// arguments).
func (s *Session) Call(op string, args ...string) error {
	return s.app.eng.Call(s.replica, op, args...)
}

// Typed transaction views over the stored CRDTs.
var (
	// AWSetAt binds the add-wins set at key within a transaction.
	AWSetAt = store.AWSetAt
	// RWSetAt binds the remove-wins set at key.
	RWSetAt = store.RWSetAt
	// CounterAt binds the PN-counter at key.
	CounterAt = store.CounterAt
	// BoundedAt binds the bounded (escrow) counter at key.
	BoundedAt = store.BoundedAt
	// RegisterAt binds the LWW register at key.
	RegisterAt = store.RegisterAt
	// CompSetAt binds the Compensation Set at key (seed it first with
	// SeedCompSet at every replica).
	CompSetAt = store.CompSetAt
	// SeedCompSet creates a Compensation Set with a size bound at one
	// replica.
	SeedCompSet = store.SeedCompSet
)
