// Package ipa is a from-scratch Go reproduction of
//
//	IPA: Invariant-preserving Applications for Weakly-consistent
//	Replicated Databases (Balegas, Preguiça, Duarte, Ferreira, Rodrigues;
//	2018, arXiv:1802.08474).
//
// IPA makes applications correct under weak consistency at development
// time: a static analysis finds pairs of operations whose concurrent
// execution can violate an application invariant and proposes minimal
// modifications — extra CRDT effects plus add-wins/rem-wins convergence
// rules — so that the merged state always restores the operations'
// preconditions, with no runtime coordination. Invariants that cannot
// reasonably be prevented up front (numeric bounds) are handled by lazy
// compensations.
//
// This package is the public façade. It re-exports:
//
//   - the specification language (ParseSpec, Spec) — invariants in
//     first-order logic plus operation effects;
//   - the analysis (Analyze, FindConflicts, ProposeRepairs, Classify) —
//     conflict detection and repair synthesis, decided by a built-in
//     small-scope SAT/bit-vector solver standing in for Z3;
//   - the runtime substrate (NewCluster, NewSim, PaperTopology) — a
//     causally consistent geo-replicated key-value store with highly
//     available transactions and the paper's CRDT toolkit (add-wins and
//     rem-wins sets with touch and wildcard updates, counters, registers,
//     and the Compensation Set).
//
// The example applications (Tournament, Twitter, Ticket, TPC-W) live in
// internal/apps; the evaluation harness that regenerates every table and
// figure of the paper lives in internal/bench and is driven by
// cmd/ipabench and the benchmarks in bench_test.go. See DESIGN.md for the
// full inventory and EXPERIMENTS.md for the paper-vs-measured record.
package ipa

import (
	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// Specification language.
type (
	// Spec is an application specification: operations with effects over
	// logical predicates, invariants, and convergence rules.
	Spec = spec.Spec
	// Operation is one specified operation.
	Operation = spec.Operation
	// Effect is one predicate update of an operation.
	Effect = spec.Effect
	// Policy is a per-predicate convergence rule.
	Policy = spec.Policy
)

// Convergence policies.
const (
	AddWins = spec.AddWins
	RemWins = spec.RemWins
)

// ParseSpec parses a specification in the textual format (see package
// internal/spec for the grammar).
func ParseSpec(src string) (*Spec, error) { return spec.Parse(src) }

// MustParseSpec is ParseSpec that panics on error.
func MustParseSpec(src string) *Spec { return spec.MustParse(src) }

// Analysis.
type (
	// AnalysisOptions tunes scope and repair search.
	AnalysisOptions = analysis.Options
	// AnalysisResult is the outcome of the IPA loop: the patched spec,
	// applied repairs, synthesised compensations, flagged conflicts.
	AnalysisResult = analysis.Result
	// Conflict is a detected non-I-confluent operation pair with its
	// counterexample.
	Conflict = analysis.Conflict
	// Repair is one proposed resolution for a conflict.
	Repair = analysis.Repair
	// Compensation is a synthesised lazy repair for a numeric invariant.
	Compensation = analysis.Compensation
)

// Analyze runs the full IPA loop (paper Alg. 1) on the specification and
// returns the patched, invariant-preserving spec plus the applied repairs
// and compensations. The input is not modified.
func Analyze(s *Spec, opts AnalysisOptions) (*AnalysisResult, error) {
	return analysis.Run(s, opts)
}

// FindConflicts reports every conflicting operation pair of the spec.
func FindConflicts(s *Spec, opts AnalysisOptions) ([]*Conflict, error) {
	return analysis.FindConflicts(s, opts)
}

// ProposeRepairs lists the minimal repairs for one conflict, smallest
// first (paper repairConflicts).
func ProposeRepairs(s *Spec, c *Conflict, opts AnalysisOptions) ([]Repair, error) {
	return analysis.RepairConflict(s, c, opts)
}

// Runtime substrate.
type (
	// Sim is the deterministic discrete-event simulation driving a
	// cluster.
	Sim = wan.Sim
	// Latency models inter-datacenter delays.
	Latency = wan.Latency
	// Cluster is a geo-replicated database deployment.
	Cluster = store.Cluster
	// Replica is one data center's copy of the database.
	Replica = store.Replica
	// Txn is a highly available transaction.
	Txn = store.Txn
	// ReplicaID identifies a replica.
	ReplicaID = clock.ReplicaID
)

// NewSim creates a deterministic simulation with the given seed.
func NewSim(seed int64) *Sim { return wan.NewSim(seed) }

// PaperTopology returns the paper's three-region latency model
// (us-east/us-west/eu-west, 80/80/160 ms RTTs).
func PaperTopology() *Latency { return wan.PaperTopology() }

// PaperSites returns the three replica identifiers of the paper's
// deployment.
func PaperSites() []ReplicaID {
	return []ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
}

// NewCluster creates a replicated database over the given sites.
func NewCluster(sim *Sim, lat *Latency, sites []ReplicaID) *Cluster {
	return store.NewCluster(sim, lat, sites)
}

// NewPaperCluster is the common setup: the paper's three sites and
// topology under one seeded simulation.
func NewPaperCluster(seed int64) (*Sim, *Cluster) {
	sim := wan.NewSim(seed)
	return sim, store.NewCluster(sim, wan.PaperTopology(), PaperSites())
}

// Backend-agnostic runtime: applications, the chaos harness, and the
// benchmarks program against these interfaces and run unchanged on the
// simulator or on real netrepl TCP sockets.
type (
	// BackendCluster is the substrate-agnostic cluster surface.
	BackendCluster = runtime.Cluster
	// BackendReplica is one site through the substrate-agnostic surface.
	BackendReplica = runtime.Replica
)

// NewSimBackend wraps a simulator-backed cluster in the backend-agnostic
// interface.
func NewSimBackend(c *Cluster) BackendCluster { return runtime.NewSimCluster(c) }

// NewNetBackend creates a real-socket replication cluster (one netrepl
// node per site on loopback TCP, fully meshed) behind the same
// interface. Close it when done.
func NewNetBackend(sites []ReplicaID) (BackendCluster, error) {
	return runtime.NewNetCluster(sites, runtime.NetConfig{})
}

// Typed transaction views over the stored CRDTs.
var (
	// AWSetAt binds the add-wins set at key within a transaction.
	AWSetAt = store.AWSetAt
	// RWSetAt binds the remove-wins set at key.
	RWSetAt = store.RWSetAt
	// CounterAt binds the PN-counter at key.
	CounterAt = store.CounterAt
	// RegisterAt binds the LWW register at key.
	RegisterAt = store.RegisterAt
	// CompSetAt binds the Compensation Set at key (seed it first with
	// SeedCompSet at every replica).
	CompSetAt = store.CompSetAt
	// SeedCompSet creates a Compensation Set with a size bound at one
	// replica.
	SeedCompSet = store.SeedCompSet
)
