// Package crdt implements the operation-based conflict-free replicated
// data types the IPA runtime relies on (paper §4.2): add-wins and
// remove-wins sets extended with touch operations, predicate (wildcard)
// removes and payload preservation; PN- and bounded (escrow) counters;
// last-writer-wins and multi-value registers; and the Compensation Set,
// which enforces an aggregation constraint lazily on every read.
//
// All types assume the replication layer (package store) delivers each
// operation exactly once per replica, in causal order. Under that contract
// concurrent updates commute and all replicas converge. Stability
// information (a causal cut known to be delivered everywhere) lets the
// types discard tombstones and graveyard payloads (the SwiftCloud
// mechanism the paper uses to garbage-collect touch metadata).
package crdt

import (
	"fmt"
	"strings"

	"ipa/internal/clock"
)

// CRDT is a replicated object. Mutations are split operation-based:
// Prepare* methods (on the concrete types) build an Op against the local
// state, the store commits and replicates it, and Apply integrates it at
// every replica, the origin included.
type CRDT interface {
	// Type identifies the concrete kind, e.g. "aw-set".
	Type() string
	// Apply integrates one operation. Ops arrive exactly once, in causal
	// order. Apply must be deterministic.
	Apply(op Op)
	// Compact discards metadata made redundant by the stability horizon:
	// every event at or below the cut is known to be at every replica.
	Compact(horizon clock.Vector)
}

// FrontierCompacter is implemented by CRDTs whose tombstones must survive
// their own stability: for remove-wins semantics a tombstone below the
// horizon can still defeat a concurrent add that is in flight, so it may
// only be discarded once everything concurrent with it is also stable.
// The frontier is the per-origin commit counts at the stability round —
// an upper bound on every event concurrent with a newly stable one.
// Replication layers that compact while traffic is live must prefer this
// over Compact, whose single-argument form assumes quiescence.
type FrontierCompacter interface {
	CompactWithFrontier(horizon, frontier clock.Vector)
}

// Op is one replicated update. Concrete op types are defined next to their
// CRDTs. Every op carries the unique event ID the store assigned to it.
type Op interface {
	// ID returns the globally unique event identifier of this update.
	ID() clock.EventID
}

// Match is a serialisable element predicate used by wildcard updates such
// as the paper's enrolled(*, t) = false. Set elements that represent
// predicate tuples are Sep-joined strings (see JoinTuple); Match selects
// the elements whose Index-th component equals Value.
type Match struct {
	Index int
	Value string
}

// TupleSep separates tuple components in set elements.
const TupleSep = "\x1f"

// JoinTuple encodes a predicate tuple as a set element.
func JoinTuple(parts ...string) string { return strings.Join(parts, TupleSep) }

// SplitTuple decodes a set element into its tuple components.
func SplitTuple(elem string) []string { return strings.Split(elem, TupleSep) }

// Matches reports whether the element satisfies the predicate.
func (m Match) Matches(elem string) bool {
	parts := SplitTuple(elem)
	return m.Index < len(parts) && parts[m.Index] == m.Value
}

func (m Match) String() string { return fmt.Sprintf("[%d]=%s", m.Index, m.Value) }

// MatchFields selects tuple elements whose components equal the given
// values at every non-wildcard position — the serialisable form of a
// pattern like inMatch(p, *, t): Fields lists one value per tuple
// position, with "" standing for a wildcard. Arity guards against
// accidentally matching tuples of a different length.
type MatchFields struct {
	Arity  int
	Fields []string
}

// MatchPattern builds the predicate for a tuple pattern; wildcard
// positions are "".
func MatchPattern(fields ...string) MatchFields {
	return MatchFields{Arity: len(fields), Fields: fields}
}

// Matches reports whether the element satisfies the pattern. It walks
// the element in place — this runs once per wildcard tombstone on every
// remove-wins membership check, so it must not allocate.
func (m MatchFields) Matches(elem string) bool {
	if len(m.Fields) != m.Arity {
		return false
	}
	rest := elem
	for i, f := range m.Fields {
		j := strings.Index(rest, TupleSep)
		if j < 0 {
			// Last component: the element must end here too.
			return i == m.Arity-1 && (f == "" || rest == f)
		}
		if f != "" && rest[:j] != f {
			return false
		}
		rest = rest[j+len(TupleSep):]
	}
	return false // element has more components than Arity
}

func (m MatchFields) String() string {
	out := make([]string, len(m.Fields))
	for i, f := range m.Fields {
		if f == "" {
			out[i] = "*"
		} else {
			out[i] = f
		}
	}
	return "(" + strings.Join(out, ",") + ")"
}

// MatchAll selects every element (wildcard over the whole set).
type MatchAll struct{}

// Matches always reports true.
func (MatchAll) Matches(string) bool { return true }

// Predicate is either a Match, MatchAll, or nil (matches nothing extra).
type Predicate interface {
	Matches(elem string) bool
}

// eventSet is a small set of event IDs.
type eventSet map[clock.EventID]struct{}

func (s eventSet) add(e clock.EventID)      { s[e] = struct{}{} }
func (s eventSet) has(e clock.EventID) bool { _, ok := s[e]; return ok }
func (s eventSet) addAll(es []clock.EventID) {
	for _, e := range es {
		s[e] = struct{}{}
	}
}
func (s eventSet) list() []clock.EventID {
	out := make([]clock.EventID, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	return out
}
