package crdt

import (
	"math/rand"
	"testing"

	"ipa/internal/clock"
)

func TestRWSetAddRemove(t *testing.T) {
	g := newTagger()
	s := NewRWSet()
	s.Apply(s.PrepareAdd("x", "pay", g.tag("a")))
	if !s.Contains("x") {
		t.Fatal("x should be present")
	}
	if p, ok := s.Payload("x"); !ok || p != "pay" {
		t.Fatalf("payload = %q", p)
	}
	s.Apply(s.PrepareRemove("x", g.tag("a")))
	if s.Contains("x") {
		t.Fatal("x should be removed")
	}
	// Re-add after remove (causally later): present again.
	s.Apply(s.PrepareAdd("x", "p2", g.tag("a")))
	if !s.Contains("x") {
		t.Fatal("causally later add must win")
	}
}

func TestRWSetRemoveWinsOverConcurrentAdd(t *testing.T) {
	g := newTagger()
	a, b := NewRWSet(), NewRWSet()
	seed := a.PrepareAdd("x", "", g.tag("a"))
	a.Apply(seed)
	b.Apply(seed)

	// Concurrent: a removes x, b re-adds x (b has not seen the remove).
	rm := a.PrepareRemove("x", g.tag("a"))
	add := b.PrepareAdd("x", "", g.tag("b"))
	a.Apply(rm)
	b.Apply(add)
	a.Apply(add)
	b.Apply(rm)

	if a.Contains("x") || b.Contains("x") {
		t.Fatal("remove must win over the concurrent add on both replicas")
	}
	if a.Size() != 0 || b.Size() != 0 {
		t.Fatal("size should be zero")
	}
}

func TestRWSetWildcardKillsConcurrentAdds(t *testing.T) {
	g := newTagger()
	a, b := NewRWSet(), NewRWSet()

	// Replica a removes every pair of tournament t1 (rem_tourn's extra
	// effect); concurrently replica b enrolls p2 in t1.
	seed := a.PrepareAdd(JoinTuple("p1", "t1"), "", g.tag("a"))
	a.Apply(seed)
	b.Apply(seed)

	wipe := a.PrepareRemoveWhere(Match{Index: 1, Value: "t1"}, g.tag("a"))
	enroll := b.PrepareAdd(JoinTuple("p2", "t1"), "", g.tag("b"))
	a.Apply(wipe)
	b.Apply(enroll)
	a.Apply(enroll)
	b.Apply(wipe)

	for name, s := range map[string]*RWSet{"a": a, "b": b} {
		if s.Contains(JoinTuple("p1", "t1")) {
			t.Fatalf("%s: observed pair should be wiped", name)
		}
		if s.Contains(JoinTuple("p2", "t1")) {
			t.Fatalf("%s: concurrent enroll must lose to the wildcard remove", name)
		}
	}
}

func TestRWSetAddAfterWildcardSurvives(t *testing.T) {
	g := newTagger()
	s := NewRWSet()
	s.Apply(s.PrepareRemoveWhere(Match{Index: 1, Value: "t1"}, g.tag("a")))
	// This add observes the wildcard tombstone, so it survives.
	s.Apply(s.PrepareAdd(JoinTuple("p1", "t1"), "", g.tag("a")))
	if !s.Contains(JoinTuple("p1", "t1")) {
		t.Fatal("causally later add must survive the wildcard")
	}
}

func TestRWSetTouch(t *testing.T) {
	g := newTagger()
	s := NewRWSet()
	s.Apply(s.PrepareAdd("u", "payload", g.tag("a")))
	s.Apply(s.PrepareTouch("u", g.tag("a")))
	if p, ok := s.Payload("u"); !ok || p != "payload" {
		t.Fatalf("touch must keep payload, got %q, %v", p, ok)
	}
}

func TestRWSetElems(t *testing.T) {
	g := newTagger()
	s := NewRWSet()
	s.Apply(s.PrepareAdd("b", "", g.tag("a")))
	s.Apply(s.PrepareAdd("a", "", g.tag("a")))
	s.Apply(s.PrepareAdd("c", "", g.tag("a")))
	s.Apply(s.PrepareRemove("b", g.tag("a")))
	got := s.Elems()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Elems = %v", got)
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d", s.Size())
	}
}

func TestRWSetCompact(t *testing.T) {
	g := newTagger()
	a, b := NewRWSet(), NewRWSet()
	seed := a.PrepareAdd("x", "", g.tag("a"))
	a.Apply(seed)
	b.Apply(seed)
	rm := a.PrepareRemove("x", g.tag("a"))
	add := b.PrepareAdd("x", "", g.tag("b"))
	for _, s := range []*RWSet{a, b} {
		s.Apply(rm)
		s.Apply(add)
	}
	if a.Contains("x") {
		t.Fatal("remove wins pre-compaction")
	}
	// Everything delivered everywhere: compact.
	horizon := clock.Vector{"a": 2, "b": 1}
	a.Compact(horizon)
	if a.Contains("x") {
		t.Fatal("presence must be preserved by compaction")
	}
	if len(a.adds) != 0 || len(a.removes) != 0 || len(a.wild) != 0 {
		t.Fatalf("metadata not compacted: adds=%d removes=%d wild=%d", len(a.adds), len(a.removes), len(a.wild))
	}

	// Surviving element: metadata trimmed but membership kept.
	s := NewRWSet()
	s.Apply(s.PrepareAdd("y", "pay", g.tag("a")))
	rm2 := s.PrepareRemove("y", g.tag("a"))
	s.Apply(rm2)
	s.Apply(s.PrepareAdd("y", "pay", g.tag("a"))) // observes rm2
	s.Compact(clock.Vector{"a": 99})
	if !s.Contains("y") {
		t.Fatal("survivor lost by compaction")
	}
	if len(s.removes) != 0 {
		t.Fatal("stable tombstones should be gone")
	}
}

func TestRWSetWildcardCompact(t *testing.T) {
	g := newTagger()
	s := NewRWSet()
	s.Apply(s.PrepareAdd(JoinTuple("p1", "t1"), "", g.tag("a")))
	s.Apply(s.PrepareRemoveWhere(Match{Index: 1, Value: "t1"}, g.tag("a")))
	s.Compact(clock.Vector{"a": 99})
	if len(s.wild) != 0 {
		t.Fatal("stable wildcard tombstone should be dropped")
	}
	if s.Contains(JoinTuple("p1", "t1")) {
		t.Fatal("wiped element must stay absent after compaction")
	}
}

// Concurrent RWSet ops commute.
func TestRWSetConcurrentOpsCommute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	elems := []string{JoinTuple("p1", "t1"), JoinTuple("p2", "t1"), JoinTuple("p1", "t2")}
	for trial := 0; trial < 200; trial++ {
		g := newTagger()
		base := NewRWSet()
		var seed []Op
		for _, e := range elems {
			if rng.Intn(2) == 0 {
				op := base.PrepareAdd(e, "", g.tag("seed"))
				base.Apply(op)
				seed = append(seed, op)
			}
		}
		var ops []Op
		for i := 0; i < 4; i++ {
			r := clock.ReplicaID(rune('a' + i))
			e := elems[rng.Intn(len(elems))]
			switch rng.Intn(4) {
			case 0:
				ops = append(ops, base.PrepareAdd(e, "", g.tag(r)))
			case 1:
				ops = append(ops, base.PrepareRemove(e, g.tag(r)))
			case 2:
				ops = append(ops, base.PrepareTouch(e, g.tag(r)))
			case 3:
				ops = append(ops, base.PrepareRemoveWhere(Match{Index: 1, Value: "t1"}, g.tag(r)))
			}
		}
		apply := func(order []int) []string {
			s := NewRWSet()
			for _, op := range seed {
				s.Apply(op)
			}
			for _, i := range order {
				s.Apply(ops[i])
			}
			return s.Elems()
		}
		ref := apply([]int{0, 1, 2, 3})
		got := apply(rng.Perm(len(ops)))
		if len(ref) != len(got) {
			t.Fatalf("trial %d: diverged: %v vs %v", trial, ref, got)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("trial %d: diverged: %v vs %v", trial, ref, got)
			}
		}
	}
}

// TestRWSetCompactionHoldsTombstoneForInFlightAdd is the regression test
// for a convergence bug the chaos harness found: a remove-wins tombstone
// was discarded as soon as it fell below the stability horizon, but an
// add *concurrent* with the tombstone can still be in flight behind a
// slow link — stability of the tombstone only proves the tombstone itself
// reached every replica. A replica that forgot the tombstone resurrected
// the element on the late add's arrival while the others kept it dead.
// With fencing, the tombstone survives until the horizon also dominates
// everything that can be concurrent with it.
func TestRWSetCompactionHoldsTombstoneForInFlightAdd(t *testing.T) {
	elem := JoinTuple("p1", "t1")
	wild := NewRWSet().PrepareRemoveWhere(Match{Index: 1, Value: "t1"}, clock.EventID{Replica: "b", Seq: 1})
	// The concurrent add: prepared against a state that has not seen the
	// wildcard remove (so it observes nothing).
	add := NewRWSet().PrepareAdd(elem, "", clock.EventID{Replica: "x", Seq: 1})

	// Replica P sees both ops before compacting.
	p := NewRWSet()
	p.Apply(add)
	p.Apply(wild)

	// Replica Q sees only the remove, then compacts while the add is in
	// flight. The horizon covers the remove (it is everywhere); the
	// frontier records that origin x had already committed seq 1 — the
	// add exists and can be concurrent, so the tombstone must survive.
	q := NewRWSet()
	q.Apply(wild)
	horizon := clock.Vector{"b": 1}
	frontier := clock.Vector{"b": 1, "x": 1}
	q.CompactWithFrontier(horizon, frontier)

	// The late add arrives: remove-wins must still defeat it.
	q.Apply(add)
	if q.Contains(elem) {
		t.Fatal("tombstone was discarded while a concurrent add was in flight; element resurrected")
	}
	if p.Contains(elem) {
		t.Fatal("remove-wins lost against a concurrent add")
	}

	// Once the horizon dominates the fence, the tombstone (and the dead
	// add) compact away for good — and presence stays identical.
	final := clock.Vector{"b": 1, "x": 1}
	p.CompactWithFrontier(final, final)
	q.CompactWithFrontier(final, final)
	if p.Contains(elem) || q.Contains(elem) {
		t.Fatal("compaction changed the presence decision")
	}
	if p.MetadataSize() != 0 || q.MetadataSize() != 0 {
		t.Fatalf("metadata not fully compacted: p=%d q=%d", p.MetadataSize(), q.MetadataSize())
	}
}

// TestRWSetExactRemoveFencing covers the same scenario for exact (non-
// wildcard) removes.
func TestRWSetExactRemoveFencing(t *testing.T) {
	rm := NewRWSet().PrepareRemove("x", clock.EventID{Replica: "b", Seq: 1})
	add := NewRWSet().PrepareAdd("x", "", clock.EventID{Replica: "a", Seq: 1})

	q := NewRWSet()
	q.Apply(rm)
	q.CompactWithFrontier(clock.Vector{"b": 1}, clock.Vector{"b": 1, "a": 1})
	q.Apply(add)
	if q.Contains("x") {
		t.Fatal("exact tombstone discarded while a concurrent add was in flight")
	}
	final := clock.Vector{"a": 1, "b": 1}
	q.CompactWithFrontier(final, final)
	if q.Contains("x") || q.MetadataSize() != 0 {
		t.Fatalf("final compaction wrong: contains=%v meta=%d", q.Contains("x"), q.MetadataSize())
	}
}
