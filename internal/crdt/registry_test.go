package crdt

import (
	"testing"

	"ipa/internal/clock"
)

func tag(seq uint64) clock.EventID { return clock.EventID{Replica: "r", Seq: seq} }

func TestRegistryNewForOp(t *testing.T) {
	cases := []struct {
		op   Op
		kind string
	}{
		{NewAWSet().PrepareAdd("x", "", tag(1)), KindAWSet},
		{NewAWSet().PrepareRemove("x", tag(2)), KindAWSet},
		{NewRWSet().PrepareAdd("x", "", tag(3)), KindRWSet},
		{NewRWSet().PrepareRemove("x", tag(4)), KindRWSet},
		{NewRWSet().PrepareRemoveWhere(MatchAll{}, tag(5)), KindRWSet},
		{NewPNCounter().PrepareAdd(1, tag(6)), KindPNCounter},
		{NewLWWRegister().PrepareSet("v", 1, tag(7)), KindLWWRegister},
		{NewMVRegister().PrepareSet("v", tag(8)), KindMVRegister},
	}
	for _, c := range cases {
		kind, ok := KindForOp(c.op)
		if !ok || kind != c.kind {
			t.Errorf("KindForOp(%T) = %q/%v, want %q", c.op, kind, ok, c.kind)
		}
		obj := NewForOp(c.op)
		if obj.Type() != c.kind {
			t.Errorf("NewForOp(%T).Type() = %q, want %q", c.op, obj.Type(), c.kind)
		}
		// The created object must actually integrate the op.
		obj.Apply(c.op)
	}
}

func TestRegistryCompSetOpsRouteToAWSet(t *testing.T) {
	// Compensation sets replicate plain AWSet ops; a replica without the
	// seeded object materialises an AWSet (which is why seeding the bound
	// everywhere is mandatory — see store.SeedCompSet).
	cs := NewCompSet(3)
	op := cs.PrepareAdd("e", "", tag(1))
	kind, ok := KindForOp(op)
	if !ok || kind != KindAWSet {
		t.Fatalf("comp-set add routes to %q/%v, want %q", kind, ok, KindAWSet)
	}
}

func TestRegistryCtor(t *testing.T) {
	for _, kind := range []string{KindAWSet, KindRWSet, KindPNCounter, KindBoundedCounter, KindLWWRegister, KindMVRegister} {
		obj := Ctor(kind)()
		if obj.Type() != kind {
			t.Errorf("Ctor(%q)().Type() = %q", kind, obj.Type())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Ctor of an unregistered kind should panic")
		}
	}()
	Ctor("no-such-kind")
}
