package crdt

// The replication wire codec: every registered operation (and predicate)
// type serialises itself with a hand-written MarshalWire/UnmarshalWire
// pair, dispatched through a stable one-byte wire ID. This replaces
// encoding/gob on the hot replication path (store/netrepl batch frames):
// gob re-transmits type definitions on every frame, walks structs by
// reflection, and allocates an encoder per frame; the wire codec appends
// into a caller-owned buffer and decodes with a cursor over the received
// frame, allocating only the strings, slices, and maps the decoded op
// itself owns.
//
// Wire IDs are part of the persistent protocol: they may never be
// renumbered or reused, only appended. TestWireIDPinning pins the full
// ID↔type table so an accidental re-registration breaks a test, not a
// mixed-version mesh.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"

	"ipa/internal/clock"
)

// Stable operation wire IDs. Append-only; never renumber.
const (
	wireIDAWAdd         byte = 1
	wireIDAWRemove      byte = 2
	wireIDRWAdd         byte = 3
	wireIDRWRemove      byte = 4
	wireIDRWRemoveWhere byte = 5
	wireIDCounter       byte = 6
	wireIDBCConsume     byte = 7
	wireIDBCGrant       byte = 8
	wireIDBCTransfer    byte = 9
	wireIDLWWSet        byte = 10
	wireIDMVSet         byte = 11
)

// Stable predicate wire IDs (predicates travel inside wildcard removes).
const (
	wirePredNil         byte = 0
	wirePredMatch       byte = 1
	wirePredMatchAll    byte = 2
	wirePredMatchFields byte = 3
	// wirePredGob carries any other predicate type as a length-prefixed
	// gob payload — the escape hatch for application-defined predicates
	// (for example tournament.matchPred), which are gob-registered by
	// the defining package but unknown to this table. A remove-where on
	// a custom predicate pays gob's cost for that one field; everything
	// else in the frame stays binary.
	wirePredGob byte = 4
)

// ErrMalformedWire tags every decode failure of the binary codec: a
// truncated buffer, an unknown wire ID, or a length field that exceeds
// the data that carries it. Decoding never panics on any input.
var ErrMalformedWire = errors.New("crdt: malformed wire data")

func wireErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformedWire, fmt.Sprintf(format, args...))
}

// --- Reader -------------------------------------------------------------

// WireReader is a cursor over one received frame. The zero value reads
// nothing; construct with NewWireReader. Decoded strings are copied out
// of the buffer, so the frame may be reused (pooled) once decoding ends.
type WireReader struct {
	data   []byte
	off    int
	intern map[string]string
}

// Interning bounds: only short strings are worth a table slot (replica
// IDs, keys, set elements — the values that repeat across every txn of a
// stream), and the table stops growing at a fixed cap so high-cardinality
// payloads cannot bloat a pooled map.
const (
	internMaxLen     = 64
	internMaxEntries = 4096
)

// NewWireReader returns a reader over data.
func NewWireReader(data []byte) WireReader { return WireReader{data: data} }

// SetIntern installs a string-interning table: decoded strings up to
// internMaxLen bytes are deduplicated through it instead of copied per
// occurrence. Replication streams repeat the same replica IDs, keys, and
// elements on every transaction, so a receive path that keeps a pooled
// table across frames decodes those fields allocation-free.
func (r *WireReader) SetIntern(m map[string]string) { r.intern = m }

// Len reports the unread byte count.
func (r *WireReader) Len() int { return len(r.data) - r.off }

// ReadByte consumes one byte.
func (r *WireReader) ReadByte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, wireErrf("truncated at byte %d", r.off)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

// ReadUvarint consumes one unsigned varint.
func (r *WireReader) ReadUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, wireErrf("bad uvarint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

// ReadVarint consumes one signed (zig-zag) varint.
func (r *WireReader) ReadVarint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, wireErrf("bad varint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

// ReadCount consumes a count field. Every counted item occupies at least
// one byte, so a count exceeding the unread bytes is malformed — the
// guard that keeps a hostile frame from provoking an absurd allocation.
func (r *WireReader) ReadCount() (int, error) {
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.Len()) {
		return 0, wireErrf("count %d exceeds %d remaining bytes", v, r.Len())
	}
	return int(v), nil
}

// ReadString consumes one length-prefixed string (copied out of the
// frame — or deduplicated through the intern table when one is installed
// — so the frame buffer may be pooled).
func (r *WireReader) ReadString() (string, error) {
	n, err := r.ReadCount()
	if err != nil {
		return "", err
	}
	raw := r.data[r.off : r.off+n]
	r.off += n
	if r.intern != nil && n <= internMaxLen {
		// The compiler elides the []byte→string copy in map lookups, so a
		// hit costs one hash and zero allocations.
		if s, ok := r.intern[string(raw)]; ok {
			return s, nil
		}
		s := string(raw)
		if len(r.intern) < internMaxEntries {
			r.intern[s] = s
		}
		return s, nil
	}
	return string(raw), nil
}

// ReadEventID consumes one event identifier.
func (r *WireReader) ReadEventID() (clock.EventID, error) {
	rep, err := r.ReadString()
	if err != nil {
		return clock.EventID{}, err
	}
	seq, err := r.ReadUvarint()
	if err != nil {
		return clock.EventID{}, err
	}
	return clock.EventID{Replica: clock.ReplicaID(rep), Seq: seq}, nil
}

func (r *WireReader) readEventIDs() ([]clock.EventID, error) {
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]clock.EventID, n)
	for i := range out {
		if out[i], err = r.ReadEventID(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- Append helpers -----------------------------------------------------

// AppendWireString appends a length-prefixed string.
func AppendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendEventID appends one event identifier.
func AppendEventID(b []byte, e clock.EventID) []byte {
	b = AppendWireString(b, string(e.Replica))
	return binary.AppendUvarint(b, e.Seq)
}

func appendEventIDs(b []byte, es []clock.EventID) []byte {
	b = binary.AppendUvarint(b, uint64(len(es)))
	for _, e := range es {
		b = AppendEventID(b, e)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func (r *WireReader) readBool() (bool, error) {
	b, err := r.ReadByte()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

// --- Predicates ---------------------------------------------------------

// AppendPredicateWire appends one predicate (nil allowed).
func AppendPredicateWire(b []byte, p Predicate) ([]byte, error) {
	switch q := p.(type) {
	case nil:
		return append(b, wirePredNil), nil
	case Match:
		b = append(b, wirePredMatch)
		b = binary.AppendUvarint(b, uint64(q.Index))
		return AppendWireString(b, q.Value), nil
	case MatchAll:
		return append(b, wirePredMatchAll), nil
	case MatchFields:
		b = append(b, wirePredMatchFields)
		b = binary.AppendUvarint(b, uint64(q.Arity))
		b = binary.AppendUvarint(b, uint64(len(q.Fields)))
		for _, f := range q.Fields {
			b = AppendWireString(b, f)
		}
		return b, nil
	default:
		var buf bytes.Buffer
		// The interface wrapper makes gob record the concrete type, so
		// the receiver can decode without knowing it statically (the
		// same registration contract the v1 frames relied on). The
		// branch-local copy keeps &pred from forcing the parameter to
		// the heap on the built-in (allocation-free) paths above.
		pred := p
		if err := gob.NewEncoder(&buf).Encode(&pred); err != nil {
			return nil, fmt.Errorf("crdt: predicate %T has no wire codec and is not gob-encodable: %w", p, err)
		}
		b = append(b, wirePredGob)
		return AppendWireString(b, buf.String()), nil
	}
}

// DecodePredicateWire consumes one predicate.
func DecodePredicateWire(r *WireReader) (Predicate, error) {
	id, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch id {
	case wirePredNil:
		return nil, nil
	case wirePredMatch:
		idx, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		v, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		return Match{Index: int(idx), Value: v}, nil
	case wirePredMatchAll:
		return MatchAll{}, nil
	case wirePredMatchFields:
		arity, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		m := MatchFields{Arity: int(arity)}
		if n > 0 {
			m.Fields = make([]string, n)
			for i := range m.Fields {
				if m.Fields[i], err = r.ReadString(); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case wirePredGob:
		payload, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		var p Predicate
		if err := gob.NewDecoder(strings.NewReader(payload)).Decode(&p); err != nil {
			return nil, wireErrf("bad gob predicate payload: %v", err)
		}
		return p, nil
	default:
		return nil, wireErrf("unknown predicate wire ID %d", id)
	}
}

// --- Operation dispatch -------------------------------------------------

// AppendOpWire appends one operation as wire ID + payload. Dispatch is a
// compile-time type switch — no reflection on the hot path. An op type
// outside the registered set is a programming error reported as an error
// (the transport fails the batch loudly rather than shipping a frame no
// receiver can decode).
func AppendOpWire(b []byte, op Op) ([]byte, error) {
	switch o := op.(type) {
	case AWAddOp:
		return o.MarshalWire(append(b, wireIDAWAdd)), nil
	case AWRemoveOp:
		return o.MarshalWire(append(b, wireIDAWRemove))
	case RWAddOp:
		return o.MarshalWire(append(b, wireIDRWAdd)), nil
	case RWRemoveOp:
		return o.MarshalWire(append(b, wireIDRWRemove)), nil
	case RWRemoveWhereOp:
		return o.MarshalWire(append(b, wireIDRWRemoveWhere))
	case CounterOp:
		return o.MarshalWire(append(b, wireIDCounter)), nil
	case BCConsumeOp:
		return o.MarshalWire(append(b, wireIDBCConsume)), nil
	case BCGrantOp:
		return o.MarshalWire(append(b, wireIDBCGrant)), nil
	case BCTransferOp:
		return o.MarshalWire(append(b, wireIDBCTransfer)), nil
	case LWWSetOp:
		return o.MarshalWire(append(b, wireIDLWWSet)), nil
	case MVSetOp:
		return o.MarshalWire(append(b, wireIDMVSet)), nil
	default:
		return nil, fmt.Errorf("crdt: op %T has no wire codec", op)
	}
}

// opDecoder materialises one op from its wire payload (ID already read).
type opDecoder func(r *WireReader) (Op, error)

// wireDecoders is the ID-indexed decode table, filled by init below. The
// registry checks at init time that every registered op type encodes —
// see register — so the table and the gob registrations cannot drift.
var wireDecoders [256]opDecoder

// wireOpTypeNames names each assigned ID for the pinning test.
var wireOpTypeNames = map[byte]string{}

func registerWireOp(id byte, name string, dec opDecoder) {
	if wireDecoders[id] != nil {
		panic(fmt.Sprintf("crdt: wire ID %d registered twice (%s and %s)", id, wireOpTypeNames[id], name))
	}
	wireDecoders[id] = dec
	wireOpTypeNames[id] = name
}

// The table is filled by a package-level var initializer, not func init:
// the spec runs all variable initializers before any init function, so the
// registry's init (registry.go sorts before wire.go) can rely on the table
// when it validates codecs via checkWireCodec.
var _ = func() bool {
	registerWireOp(wireIDAWAdd, "crdt.AWAddOp", decodeAWAdd)
	registerWireOp(wireIDAWRemove, "crdt.AWRemoveOp", decodeAWRemove)
	registerWireOp(wireIDRWAdd, "crdt.RWAddOp", decodeRWAdd)
	registerWireOp(wireIDRWRemove, "crdt.RWRemoveOp", decodeRWRemove)
	registerWireOp(wireIDRWRemoveWhere, "crdt.RWRemoveWhereOp", decodeRWRemoveWhere)
	registerWireOp(wireIDCounter, "crdt.CounterOp", decodeCounter)
	registerWireOp(wireIDBCConsume, "crdt.BCConsumeOp", decodeBCConsume)
	registerWireOp(wireIDBCGrant, "crdt.BCGrantOp", decodeBCGrant)
	registerWireOp(wireIDBCTransfer, "crdt.BCTransferOp", decodeBCTransfer)
	registerWireOp(wireIDLWWSet, "crdt.LWWSetOp", decodeLWWSet)
	registerWireOp(wireIDMVSet, "crdt.MVSetOp", decodeMVSet)
	return true
}()

// DecodeOpWire consumes one operation (wire ID + payload).
func DecodeOpWire(r *WireReader) (Op, error) {
	id, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	dec := wireDecoders[id]
	if dec == nil {
		return nil, wireErrf("unknown op wire ID %d", id)
	}
	return dec(r)
}

// WireIDTable returns the assigned ID→type-name mapping, sorted by ID —
// the surface the pinning test locks down.
func WireIDTable() []string {
	ids := make([]int, 0, len(wireOpTypeNames))
	for id := range wireOpTypeNames {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("%d=%s", id, wireOpTypeNames[byte(id)]))
	}
	return out
}

// checkWireCodec panics unless op has both an encoder and a decoder —
// called by the registry for every op it registers, so adding an op type
// without extending the wire codec fails at init (every test run), not
// on a live mesh.
func checkWireCodec(op Op) {
	b, err := AppendOpWire(nil, op)
	if err != nil {
		panic(fmt.Sprintf("crdt: registered op has no wire encoder: %v", err))
	}
	r := NewWireReader(b)
	if _, err := DecodeOpWire(&r); err != nil {
		panic(fmt.Sprintf("crdt: registered op %T does not round-trip its zero value: %v", op, err))
	}
}

// --- Per-op codecs ------------------------------------------------------

// MarshalWire appends the op payload (without the wire ID).
func (o AWAddOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	b = AppendWireString(b, o.Elem)
	b = AppendWireString(b, o.Pay)
	return appendBool(b, o.Touch)
}

func decodeAWAdd(r *WireReader) (Op, error) {
	var o AWAddOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.Elem, err = r.ReadString(); err != nil {
		return nil, err
	}
	if o.Pay, err = r.ReadString(); err != nil {
		return nil, err
	}
	if o.Touch, err = r.readBool(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload. The observed map is written in
// sorted element order so encoding is deterministic (byte-identical
// re-encoding is a property the differential tests rely on).
func (o AWRemoveOp) MarshalWire(b []byte) ([]byte, error) {
	b = AppendEventID(b, o.Tag)
	b = AppendWireString(b, o.Elem)
	b, err := AppendPredicateWire(b, o.Pred)
	if err != nil {
		return nil, err
	}
	b = binary.AppendUvarint(b, uint64(len(o.Observed)))
	switch len(o.Observed) {
	case 0:
	case 1:
		for elem, tags := range o.Observed {
			b = AppendWireString(b, elem)
			b = appendEventIDs(b, tags)
		}
	default:
		elems := make([]string, 0, len(o.Observed))
		for elem := range o.Observed {
			elems = append(elems, elem)
		}
		sort.Strings(elems)
		for _, elem := range elems {
			b = AppendWireString(b, elem)
			b = appendEventIDs(b, o.Observed[elem])
		}
	}
	return b, nil
}

func decodeAWRemove(r *WireReader) (Op, error) {
	var o AWRemoveOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.Elem, err = r.ReadString(); err != nil {
		return nil, err
	}
	if o.Pred, err = DecodePredicateWire(r); err != nil {
		return nil, err
	}
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		o.Observed = make(map[string][]clock.EventID, n)
		for i := 0; i < n; i++ {
			elem, err := r.ReadString()
			if err != nil {
				return nil, err
			}
			tags, err := r.readEventIDs()
			if err != nil {
				return nil, err
			}
			o.Observed[elem] = tags
		}
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o RWAddOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	b = AppendWireString(b, o.Elem)
	b = AppendWireString(b, o.Pay)
	b = appendBool(b, o.Touch)
	b = appendEventIDs(b, o.ObservedRemoves)
	return appendEventIDs(b, o.ObservedWild)
}

func decodeRWAdd(r *WireReader) (Op, error) {
	var o RWAddOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.Elem, err = r.ReadString(); err != nil {
		return nil, err
	}
	if o.Pay, err = r.ReadString(); err != nil {
		return nil, err
	}
	if o.Touch, err = r.readBool(); err != nil {
		return nil, err
	}
	if o.ObservedRemoves, err = r.readEventIDs(); err != nil {
		return nil, err
	}
	if o.ObservedWild, err = r.readEventIDs(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o RWRemoveOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	return AppendWireString(b, o.Elem)
}

func decodeRWRemove(r *WireReader) (Op, error) {
	var o RWRemoveOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.Elem, err = r.ReadString(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o RWRemoveWhereOp) MarshalWire(b []byte) ([]byte, error) {
	b = AppendEventID(b, o.Tag)
	return AppendPredicateWire(b, o.Pred)
}

func decodeRWRemoveWhere(r *WireReader) (Op, error) {
	var o RWRemoveWhereOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.Pred, err = DecodePredicateWire(r); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o CounterOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	return binary.AppendVarint(b, o.Delta)
}

func decodeCounter(r *WireReader) (Op, error) {
	var o CounterOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.Delta, err = r.ReadVarint(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o BCConsumeOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	b = AppendWireString(b, string(o.Replica))
	return binary.AppendVarint(b, o.N)
}

func decodeBCConsume(r *WireReader) (Op, error) {
	var o BCConsumeOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	rep, err := r.ReadString()
	if err != nil {
		return nil, err
	}
	o.Replica = clock.ReplicaID(rep)
	if o.N, err = r.ReadVarint(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o BCGrantOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	b = AppendWireString(b, string(o.Replica))
	return binary.AppendVarint(b, o.N)
}

func decodeBCGrant(r *WireReader) (Op, error) {
	var o BCGrantOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	rep, err := r.ReadString()
	if err != nil {
		return nil, err
	}
	o.Replica = clock.ReplicaID(rep)
	if o.N, err = r.ReadVarint(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o BCTransferOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	b = AppendWireString(b, string(o.From))
	b = AppendWireString(b, string(o.To))
	return binary.AppendVarint(b, o.N)
}

func decodeBCTransfer(r *WireReader) (Op, error) {
	var o BCTransferOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	from, err := r.ReadString()
	if err != nil {
		return nil, err
	}
	to, err := r.ReadString()
	if err != nil {
		return nil, err
	}
	o.From, o.To = clock.ReplicaID(from), clock.ReplicaID(to)
	if o.N, err = r.ReadVarint(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o LWWSetOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	b = binary.AppendUvarint(b, o.TS)
	return AppendWireString(b, o.Value)
}

func decodeLWWSet(r *WireReader) (Op, error) {
	var o LWWSetOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.TS, err = r.ReadUvarint(); err != nil {
		return nil, err
	}
	if o.Value, err = r.ReadString(); err != nil {
		return nil, err
	}
	return o, nil
}

// MarshalWire appends the op payload.
func (o MVSetOp) MarshalWire(b []byte) []byte {
	b = AppendEventID(b, o.Tag)
	b = AppendWireString(b, o.Value)
	return appendEventIDs(b, o.Observed)
}

func decodeMVSet(r *WireReader) (Op, error) {
	var o MVSetOp
	var err error
	if o.Tag, err = r.ReadEventID(); err != nil {
		return nil, err
	}
	if o.Value, err = r.ReadString(); err != nil {
		return nil, err
	}
	if o.Observed, err = r.readEventIDs(); err != nil {
		return nil, err
	}
	return o, nil
}
