package crdt

import (
	"testing"

	"ipa/internal/clock"
)

func TestCompSetWithinBound(t *testing.T) {
	g := newTagger()
	c := NewCompSet(2)
	c.Apply(c.PrepareAdd("t1", "", g.tag("a")))
	c.Apply(c.PrepareAdd("t2", "", g.tag("a")))
	elems, comps := c.Read(func() clock.EventID { return g.tag("a") })
	if len(comps) != 0 {
		t.Fatal("no compensation expected within bound")
	}
	if len(elems) != 2 {
		t.Fatalf("elems = %v", elems)
	}
	if c.Violating() {
		t.Fatal("not violating")
	}
}

func TestCompSetTrimsNewestFirst(t *testing.T) {
	g := newTagger()
	// Two replicas concurrently oversell a 2-capacity event.
	a, b := NewCompSet(2), NewCompSet(2)
	seed := a.PrepareAdd("early", "", g.tag("a"))
	a.Apply(seed)
	b.Apply(seed)

	oa := a.PrepareAdd("fromA", "", g.tag("a"))
	ob := b.PrepareAdd("fromB", "", g.tag("b"))
	a.Apply(oa)
	b.Apply(ob)
	a.Apply(ob)
	b.Apply(oa)

	if !a.Violating() || a.Size() != 3 {
		t.Fatalf("expected overshoot, size=%d", a.Size())
	}

	elemsA, compsA := a.Read(func() clock.EventID { return g.tag("a") })
	if len(compsA) != 1 {
		t.Fatalf("compensations = %d, want 1", len(compsA))
	}
	if len(elemsA) != 2 {
		t.Fatalf("post-compensation elems = %v", elemsA)
	}
	// Victim is the newest add: tag b:1 > a:2 -> "fromB" removed.
	for _, e := range elemsA {
		if e == "fromB" {
			t.Fatalf("newest add should be the victim, kept %v", elemsA)
		}
	}
	if a.CompensationsApplied != 1 {
		t.Fatalf("CompensationsApplied = %d", a.CompensationsApplied)
	}

	// Replica b independently compensates: same victim (determinism).
	elemsB, compsB := b.Read(func() clock.EventID { return g.tag("b") })
	if len(compsB) != 1 || len(elemsB) != 2 {
		t.Fatalf("b compensation = %d elems = %v", len(compsB), elemsB)
	}
	for i := range elemsA {
		if elemsA[i] != elemsB[i] {
			t.Fatalf("replicas chose different victims: %v vs %v", elemsA, elemsB)
		}
	}

	// Cross-apply the compensations: converged, no further violation.
	for _, op := range compsB {
		a.Apply(op)
	}
	for _, op := range compsA {
		b.Apply(op)
	}
	if a.Violating() || b.Violating() {
		t.Fatal("still violating after compensations")
	}
	if a.Size() != b.Size() || a.Size() != 2 {
		t.Fatalf("sizes diverged: %d vs %d", a.Size(), b.Size())
	}
}

func TestCompSetReadIsRepeatable(t *testing.T) {
	g := newTagger()
	c := NewCompSet(1)
	c.Apply(c.PrepareAdd("x", "", g.tag("a")))
	c.Apply(c.PrepareAdd("y", "", g.tag("b")))
	elems, comps := c.Read(func() clock.EventID { return g.tag("a") })
	if len(elems) != 1 || len(comps) != 1 {
		t.Fatalf("elems=%v comps=%d", elems, comps)
	}
	// Commit the compensation, then read again: stable.
	for _, op := range comps {
		c.Apply(op)
	}
	elems2, comps2 := c.Read(func() clock.EventID { return g.tag("a") })
	if len(comps2) != 0 {
		t.Fatal("second read must not compensate again")
	}
	if len(elems2) != 1 || elems2[0] != elems[0] {
		t.Fatalf("reads disagree: %v vs %v", elems, elems2)
	}
}

func TestCompSetMaxSize(t *testing.T) {
	c := NewCompSet(7)
	if c.MaxSize() != 7 {
		t.Fatal("MaxSize")
	}
	if c.Type() != "comp-set" {
		t.Fatal("Type")
	}
}
