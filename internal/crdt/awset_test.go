package crdt

import (
	"math/rand"
	"testing"

	"ipa/internal/clock"
)

// tagger hands out unique event IDs per replica.
type tagger struct {
	vc clock.Vector
}

func newTagger() *tagger { return &tagger{vc: clock.New()} }

func (t *tagger) tag(r clock.ReplicaID) clock.EventID { return t.vc.Tick(r) }

func TestAWSetAddRemove(t *testing.T) {
	g := newTagger()
	s := NewAWSet()
	add := s.PrepareAdd("x", "payload", g.tag("a"))
	s.Apply(add)
	if !s.Contains("x") || s.Size() != 1 {
		t.Fatal("x should be present")
	}
	if p, ok := s.Payload("x"); !ok || p != "payload" {
		t.Fatalf("payload = %q, %v", p, ok)
	}
	rm := s.PrepareRemove("x", g.tag("a"))
	s.Apply(rm)
	if s.Contains("x") || s.Size() != 0 {
		t.Fatal("x should be removed")
	}
	if _, ok := s.Payload("x"); ok {
		t.Fatal("payload should be gone")
	}
}

func TestAWSetAddWinsOverConcurrentRemove(t *testing.T) {
	g := newTagger()
	// Two replicas of the same object.
	a, b := NewAWSet(), NewAWSet()
	add := a.PrepareAdd("x", "", g.tag("a"))
	a.Apply(add)
	b.Apply(add)

	// Concurrently: replica a removes x, replica b adds x again.
	rm := a.PrepareRemove("x", g.tag("a"))
	add2 := b.PrepareAdd("x", "", g.tag("b"))
	a.Apply(rm)
	b.Apply(add2)
	// Cross-deliver.
	a.Apply(add2)
	b.Apply(rm)

	if !a.Contains("x") || !b.Contains("x") {
		t.Fatal("concurrent add must win on both replicas")
	}
	if a.Size() != b.Size() {
		t.Fatal("replicas diverged")
	}
}

func TestAWSetRemoveOnlyCancelsObserved(t *testing.T) {
	g := newTagger()
	a, b := NewAWSet(), NewAWSet()
	add1 := a.PrepareAdd("x", "", g.tag("a"))
	a.Apply(add1) // b has NOT seen add1

	rmEmpty := b.PrepareRemove("x", g.tag("b")) // observes nothing
	b.Apply(rmEmpty)
	a.Apply(rmEmpty)
	b.Apply(add1)

	if !a.Contains("x") || !b.Contains("x") {
		t.Fatal("a remove that observed nothing must not cancel unseen adds")
	}
}

func TestAWSetWildcardRemove(t *testing.T) {
	g := newTagger()
	s := NewAWSet()
	s.Apply(s.PrepareAdd(JoinTuple("p1", "t1"), "", g.tag("a")))
	s.Apply(s.PrepareAdd(JoinTuple("p2", "t1"), "", g.tag("a")))
	s.Apply(s.PrepareAdd(JoinTuple("p1", "t2"), "", g.tag("a")))

	rm := s.PrepareRemoveWhere(Match{Index: 1, Value: "t1"}, g.tag("a"))
	s.Apply(rm)
	if s.Contains(JoinTuple("p1", "t1")) || s.Contains(JoinTuple("p2", "t1")) {
		t.Fatal("t1 pairs should be removed")
	}
	if !s.Contains(JoinTuple("p1", "t2")) {
		t.Fatal("t2 pair should survive")
	}
	if got := s.ElemsWhere(Match{Index: 0, Value: "p1"}); len(got) != 1 {
		t.Fatalf("ElemsWhere = %v", got)
	}
}

func TestAWSetTouchPreservesPayload(t *testing.T) {
	g := newTagger()
	a, b := NewAWSet(), NewAWSet()
	add := a.PrepareAdd("u", "profile-data", g.tag("a"))
	a.Apply(add)
	b.Apply(add)

	// Concurrently: a removes u; b touches u (e.g. enroll restores player).
	rm := a.PrepareRemove("u", g.tag("a"))
	touch := b.PrepareTouch("u", g.tag("b"))
	a.Apply(rm)
	a.Apply(touch)
	b.Apply(touch)
	b.Apply(rm)

	for name, s := range map[string]*AWSet{"a": a, "b": b} {
		if !s.Contains("u") {
			t.Fatalf("replica %s: touch must win", name)
		}
		if p, _ := s.Payload("u"); p != "profile-data" {
			t.Fatalf("replica %s: payload lost: %q", name, p)
		}
	}
}

func TestAWSetCompactDropsStableGraveyard(t *testing.T) {
	g := newTagger()
	s := NewAWSet()
	s.Apply(s.PrepareAdd("u", "data", g.tag("a")))
	rm := s.PrepareRemove("u", g.tag("a"))
	s.Apply(rm)
	if len(s.graveyard) != 1 {
		t.Fatal("payload should be in graveyard")
	}
	// Horizon below the remove: graveyard kept.
	s.Compact(clock.Vector{"a": 1})
	if len(s.graveyard) != 1 {
		t.Fatal("graveyard dropped too early")
	}
	s.Compact(clock.Vector{"a": 2})
	if len(s.graveyard) != 0 {
		t.Fatal("stable graveyard entry should be dropped")
	}
}

func TestAWSetMinMaxTag(t *testing.T) {
	g := newTagger()
	s := NewAWSet()
	t1 := g.tag("a")
	t2 := g.tag("b")
	s.Apply(AWAddOp{Elem: "x", Tag: t2})
	s.Apply(AWAddOp{Elem: "x", Tag: t1})
	if min, ok := s.MinTag("x"); !ok || min != t1 {
		t.Fatalf("MinTag = %v, %v", min, ok)
	}
	if max, ok := s.MaxTag("x"); !ok || max != t2 {
		t.Fatalf("MaxTag = %v, %v", max, ok)
	}
	if _, ok := s.MinTag("absent"); ok {
		t.Fatal("MinTag on absent element")
	}
}

// Concurrent operations prepared against the same observed state must
// commute: applying them in any order yields the same set.
func TestAWSetConcurrentOpsCommute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	elems := []string{"a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		g := newTagger()
		base := NewAWSet()
		// Seed state, fully replicated.
		var seed []Op
		for _, e := range elems {
			if rng.Intn(2) == 0 {
				op := base.PrepareAdd(e, "", g.tag("seed"))
				base.Apply(op)
				seed = append(seed, op)
			}
		}
		// Concurrent ops from distinct replicas, all prepared against base.
		var ops []Op
		for i := 0; i < 4; i++ {
			r := clock.ReplicaID(rune('a' + i))
			e := elems[rng.Intn(len(elems))]
			switch rng.Intn(3) {
			case 0:
				ops = append(ops, base.PrepareAdd(e, "", g.tag(r)))
			case 1:
				ops = append(ops, base.PrepareRemove(e, g.tag(r)))
			case 2:
				ops = append(ops, base.PrepareTouch(e, g.tag(r)))
			}
		}
		apply := func(order []int) []string {
			s := NewAWSet()
			for _, op := range seed {
				s.Apply(op)
			}
			for _, i := range order {
				s.Apply(ops[i])
			}
			return s.Elems()
		}
		order := rng.Perm(len(ops))
		ref := apply([]int{0, 1, 2, 3})
		got := apply(order)
		if len(ref) != len(got) {
			t.Fatalf("trial %d: diverged: %v vs %v (order %v)", trial, ref, got, order)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("trial %d: diverged: %v vs %v", trial, ref, got)
			}
		}
	}
}
