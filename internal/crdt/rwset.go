package crdt

import (
	"sort"

	"ipa/internal/clock"
)

// RWSet is a remove-wins set: a remove cancels every add it is concurrent
// with, not only the adds it observed. An element is present iff some add
// has observed (causally follows) every remove affecting the element —
// including wildcard removes whose predicate matches it. This is the
// resolution IPA uses when the effects of a removal must prevail, e.g.
// purging a removed tournament's enrolments (paper Fig. 2c) or a removed
// user's timeline entries.
type RWSet struct {
	adds    map[string]map[clock.EventID]addRecord // element -> add event -> observations
	removes map[string]map[clock.EventID]*rwTomb   // element -> exact remove tombstones
	wild    map[clock.EventID]*wildRemove          // wildcard tombstones
	payload map[string]string

	// present memoizes Contains verdicts. Presence is a pure function of
	// the element's add records, its tombstones, and the wildcard
	// tombstones, so the cache only needs invalidating when one of those
	// changes (Apply); compaction preserves every verdict by contract but
	// clears the cache anyway out of caution. All access happens under
	// the owning store's exclusive object lock, like every other field.
	present map[string]bool
}

type addRecord struct {
	observedRemoves eventSet // exact removes of this element seen at origin
	observedWild    eventSet // wildcard tombstones seen at origin
}

// rwTomb is one remove tombstone with its discard fence. A remove-wins
// tombstone below the stability horizon cannot be discarded immediately:
// an add *concurrent* with it may still be in flight (stability only says
// the tombstone itself reached every replica), and a replica that forgot
// the tombstone would resurrect the element the moment that add arrives
// while everyone else keeps it dead. When a tombstone first turns stable
// it is fenced with the compaction frontier — an upper bound, per origin,
// on every event that can be concurrent with it; once a later horizon
// dominates the fence, all such adds are delivered everywhere (and were
// judged against the tombstone), so it is finally redundant.
type rwTomb struct {
	fence clock.Vector // nil until first seen below the horizon
}

type wildRemove struct {
	pred  Predicate
	fence clock.Vector // as rwTomb.fence
}

// NewRWSet returns an empty remove-wins set.
func NewRWSet() *RWSet {
	return &RWSet{
		adds:    map[string]map[clock.EventID]addRecord{},
		removes: map[string]map[clock.EventID]*rwTomb{},
		wild:    map[clock.EventID]*wildRemove{},
		payload: map[string]string{},
		present: map[string]bool{},
	}
}

// Type implements CRDT.
func (s *RWSet) Type() string { return "rw-set" }

// RWAddOp (re-)adds an element, recording the removes observed at origin.
type RWAddOp struct {
	Elem            string
	Pay             string
	Touch           bool
	Tag             clock.EventID
	ObservedRemoves []clock.EventID
	ObservedWild    []clock.EventID

	// Deps is the add's transaction dependency cut, stamped by the
	// applying replica (not encoded on the wire — the enclosing
	// transaction already carries it). The observed lists above enumerate
	// the tombstones present at the origin when the add was prepared —
	// but a tombstone the origin had already discarded (stable, fence
	// passed) cannot be named there, while a crash-recovered replica may
	// still hold it: recovery replays remove records the rest of the mesh
	// has compacted away. Deps restores the causal truth the enumeration
	// loses: any tombstone covered by the cut happened before the add and
	// cannot defeat it (remove-wins only favours *concurrent* removes).
	Deps clock.Vector
}

// ID implements Op.
func (o RWAddOp) ID() clock.EventID { return o.Tag }

// RWRemoveOp removes one element (remove-wins: it also defeats concurrent
// adds of the element).
type RWRemoveOp struct {
	Elem string
	Tag  clock.EventID
}

// ID implements Op.
func (o RWRemoveOp) ID() clock.EventID { return o.Tag }

// RWRemoveWhereOp is the wildcard remove: it defeats every add of a
// matching element unless the add causally follows this op.
type RWRemoveWhereOp struct {
	Pred Predicate
	Tag  clock.EventID
}

// ID implements Op.
func (o RWRemoveWhereOp) ID() clock.EventID { return o.Tag }

// PrepareAdd builds an add observing the current removes of elem.
func (s *RWSet) PrepareAdd(elem, payload string, tag clock.EventID) RWAddOp {
	op := RWAddOp{Elem: elem, Pay: payload, Tag: tag}
	for r := range s.removes[elem] {
		op.ObservedRemoves = append(op.ObservedRemoves, r)
	}
	for wid := range s.wild {
		op.ObservedWild = append(op.ObservedWild, wid)
	}
	return op
}

// PrepareTouch is PrepareAdd preserving the existing payload.
func (s *RWSet) PrepareTouch(elem string, tag clock.EventID) RWAddOp {
	op := s.PrepareAdd(elem, "", tag)
	op.Touch = true
	return op
}

// PrepareRemove builds an exact remove of elem.
func (s *RWSet) PrepareRemove(elem string, tag clock.EventID) RWRemoveOp {
	return RWRemoveOp{Elem: elem, Tag: tag}
}

// PrepareRemoveWhere builds a wildcard remove.
func (s *RWSet) PrepareRemoveWhere(pred Predicate, tag clock.EventID) RWRemoveWhereOp {
	return RWRemoveWhereOp{Pred: pred, Tag: tag}
}

// Apply implements CRDT.
func (s *RWSet) Apply(op Op) {
	switch o := op.(type) {
	case RWAddOp:
		delete(s.present, o.Elem)
		recs, ok := s.adds[o.Elem]
		if !ok {
			recs = map[clock.EventID]addRecord{}
			s.adds[o.Elem] = recs
		}
		rec := addRecord{observedRemoves: eventSet{}, observedWild: eventSet{}}
		rec.observedRemoves.addAll(o.ObservedRemoves)
		rec.observedWild.addAll(o.ObservedWild)
		if o.Deps != nil {
			// Causal completion: a tombstone inside the add's dependency
			// cut happened before the add, so the add survives it even
			// when the origin could no longer name it (see RWAddOp.Deps).
			// Causal delivery guarantees every such tombstone is already
			// applied here, so this apply-time sweep is complete.
			for r := range s.removes[o.Elem] {
				if o.Deps.Contains(r) {
					rec.observedRemoves.add(r)
				}
			}
			for wid := range s.wild {
				if o.Deps.Contains(wid) {
					rec.observedWild.add(wid)
				}
			}
		}
		recs[o.Tag] = rec
		if o.Touch {
			if _, have := s.payload[o.Elem]; !have {
				s.payload[o.Elem] = ""
			}
		} else {
			s.payload[o.Elem] = o.Pay
		}
	case RWRemoveOp:
		delete(s.present, o.Elem)
		rs, ok := s.removes[o.Elem]
		if !ok {
			rs = map[clock.EventID]*rwTomb{}
			s.removes[o.Elem] = rs
		}
		rs[o.Tag] = &rwTomb{}
	case RWRemoveWhereOp:
		// A wildcard only changes the verdicts of matching elements.
		for e := range s.present {
			if o.Pred.Matches(e) {
				delete(s.present, e)
			}
		}
		s.wild[o.Tag] = &wildRemove{pred: o.Pred}
	}
}

// Contains reports membership: some add observed every remove that affects
// the element.
func (s *RWSet) Contains(elem string) bool {
	recs, ok := s.adds[elem]
	if !ok {
		return false
	}
	if v, ok := s.present[elem]; ok {
		return v
	}
	v := s.containsSlow(elem, recs)
	if s.present == nil {
		s.present = map[string]bool{}
	}
	s.present[elem] = v
	return v
}

func (s *RWSet) containsSlow(elem string, recs map[clock.EventID]addRecord) bool {
	removes := s.removes[elem]
	for _, rec := range recs {
		alive := true
		for r := range removes {
			if !rec.observedRemoves.has(r) {
				alive = false
				break
			}
		}
		if !alive {
			continue
		}
		for wid, w := range s.wild {
			if w.pred.Matches(elem) && !rec.observedWild.has(wid) {
				alive = false
				break
			}
		}
		if alive {
			return true
		}
	}
	return false
}

// Payload returns the element's payload.
func (s *RWSet) Payload(elem string) (string, bool) {
	if !s.Contains(elem) {
		return "", false
	}
	return s.payload[elem], true
}

// Size returns the number of present elements.
func (s *RWSet) Size() int {
	n := 0
	for e := range s.adds {
		if s.Contains(e) {
			n++
		}
	}
	return n
}

// Elems returns the present elements, sorted.
func (s *RWSet) Elems() []string {
	var out []string
	for e := range s.adds {
		if s.Contains(e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// ElemsWhere returns the present elements matching pred, sorted.
func (s *RWSet) ElemsWhere(pred Predicate) []string {
	var out []string
	for e := range s.adds {
		if pred.Matches(e) && s.Contains(e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// MetadataSize reports the number of metadata entries held: add records
// (with their observation sets), remove tombstones and wildcard
// tombstones. Used by the stability-GC ablation.
func (s *RWSet) MetadataSize() int {
	n := len(s.wild)
	for _, recs := range s.adds {
		for _, rec := range recs {
			n += 1 + len(rec.observedRemoves) + len(rec.observedWild)
		}
	}
	for _, rs := range s.removes {
		n += len(rs)
	}
	return n
}

// Compact implements CRDT. It is CompactWithFrontier with the horizon as
// its own frontier, which discards stable tombstones immediately — only
// sound when the caller knows nothing concurrent with the horizon is
// still in flight (a fully quiesced system, or a unit test). Replication
// layers that compact while traffic is live must use CompactWithFrontier.
func (s *RWSet) Compact(horizon clock.Vector) {
	s.CompactWithFrontier(horizon, horizon)
}

// CompactWithFrontier discards metadata made redundant by stability.
//
// A remove tombstone at or below the horizon has been delivered
// everywhere, so every presence decision *against the adds seen so far*
// is final: dead adds (those that did not observe it) are dropped. The
// tombstone itself must outlive that moment — an add concurrent with it
// can still be in flight behind a slow link, and it too must be defeated
// on arrival. Such an add was committed at its origin before the origin
// delivered the tombstone, hence at a sequence number at or below the
// frontier (the per-origin commit counts at the stability round, an upper
// bound on everything concurrent with any newly stable event). The
// tombstone is therefore fenced with the frontier when it first turns
// stable and discarded once a later horizon dominates the fence; at that
// point every add it could ever defeat has been delivered and judged, and
// surviving adds can also forget they observed it.
func (s *RWSet) CompactWithFrontier(horizon, frontier clock.Vector) {
	clear(s.present)
	// Identify stable wildcard tombstones.
	stableWild := map[clock.EventID]*wildRemove{}
	for wid, w := range s.wild {
		if horizon.Contains(wid) {
			stableWild[wid] = w
		}
	}
	// Drop adds defeated by a stable tombstone: their death is final.
	for elem, recs := range s.adds {
		removes := s.removes[elem]
		for tag, rec := range recs {
			dead := false
			for r := range removes {
				if horizon.Contains(r) && !rec.observedRemoves.has(r) {
					dead = true
					break
				}
			}
			if !dead {
				for wid, w := range stableWild {
					if w.pred.Matches(elem) && !rec.observedWild.has(wid) {
						dead = true
						break
					}
				}
			}
			if dead {
				delete(recs, tag)
			}
		}
		if len(recs) == 0 {
			delete(s.adds, elem)
			delete(s.payload, elem)
		}
	}
	// Fence newly stable tombstones; discard the ones whose fence the
	// horizon has passed (no concurrent add can still arrive anywhere).
	for wid, w := range stableWild {
		if w.fence == nil {
			w.fence = frontier.Clone()
		}
		if w.fence.LEq(horizon) {
			delete(s.wild, wid)
		}
	}
	for elem, rs := range s.removes {
		for r, tomb := range rs {
			if !horizon.Contains(r) {
				continue
			}
			if tomb.fence == nil {
				tomb.fence = frontier.Clone()
			}
			if tomb.fence.LEq(horizon) {
				delete(rs, r)
			}
		}
		if len(rs) == 0 {
			delete(s.removes, elem)
		}
	}
	// Surviving adds can forget observations of tombstones that are
	// stable and gone (discarded above or in an earlier round — a stable
	// tombstone that were merely still in flight would be present, since
	// the horizon says it reached every replica). Late causally-after
	// adds may also arrive carrying references to discarded tombstones.
	for elem, recs := range s.adds {
		for _, rec := range recs {
			for r := range rec.observedRemoves {
				if horizon.Contains(r) && !s.hasRemove(elem, r) {
					delete(rec.observedRemoves, r)
				}
			}
			for wid := range rec.observedWild {
				if _, live := s.wild[wid]; horizon.Contains(wid) && !live {
					delete(rec.observedWild, wid)
				}
			}
		}
	}
}

func (s *RWSet) hasRemove(elem string, r clock.EventID) bool {
	_, ok := s.removes[elem][r]
	return ok
}
