package crdt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipa/internal/clock"
)

func TestPNCounter(t *testing.T) {
	g := newTagger()
	c := NewPNCounter()
	c.Apply(c.PrepareAdd(5, g.tag("a")))
	c.Apply(c.PrepareAdd(-2, g.tag("a")))
	if c.Value() != 3 {
		t.Fatalf("value = %d", c.Value())
	}
	if c.Increments() != 5 || c.Decrements() != 2 {
		t.Fatalf("incs=%d decs=%d", c.Increments(), c.Decrements())
	}
}

// Property: PN-counter ops commute in any order.
func TestPNCounterCommutes(t *testing.T) {
	f := func(deltas []int8, seed int64) bool {
		if len(deltas) > 12 {
			deltas = deltas[:12]
		}
		g := newTagger()
		ops := make([]Op, len(deltas))
		for i, d := range deltas {
			ops[i] = CounterOp{Delta: int64(d), Tag: g.tag("a")}
		}
		a, b := NewPNCounter(), NewPNCounter()
		for _, op := range ops {
			a.Apply(op)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, i := range rng.Perm(len(ops)) {
			b.Apply(ops[i])
		}
		return a.Value() == b.Value()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedCounterLocalRights(t *testing.T) {
	g := newTagger()
	c := NewBoundedCounter(map[clock.ReplicaID]int64{"a": 5, "b": 3})
	if c.Value() != 8 {
		t.Fatalf("value = %d", c.Value())
	}
	if c.Local("a") != 5 || c.Local("b") != 3 || c.Local("ghost") != 0 {
		t.Fatal("local rights wrong")
	}
	op, ok := c.PrepareConsume("a", 4, g.tag("a"))
	if !ok {
		t.Fatal("a should afford 4")
	}
	c.Apply(op)
	if c.Local("a") != 1 || c.Value() != 4 {
		t.Fatalf("after consume: local=%d value=%d", c.Local("a"), c.Value())
	}
	if _, ok := c.PrepareConsume("a", 2, g.tag("a")); ok {
		t.Fatal("a cannot consume beyond its rights")
	}
}

func TestBoundedCounterTransfer(t *testing.T) {
	g := newTagger()
	c := NewBoundedCounter(map[clock.ReplicaID]int64{"a": 5, "b": 0})
	if _, ok := c.PrepareConsume("b", 1, g.tag("b")); ok {
		t.Fatal("b has no rights yet")
	}
	tr, ok := c.PrepareTransfer("a", "b", 2, g.tag("a"))
	if !ok {
		t.Fatal("transfer should be possible")
	}
	c.Apply(tr)
	if c.Local("a") != 3 || c.Local("b") != 2 {
		t.Fatalf("after transfer: a=%d b=%d", c.Local("a"), c.Local("b"))
	}
	if c.Value() != 5 {
		t.Fatal("transfers must not change the value")
	}
	if _, ok := c.PrepareTransfer("b", "a", 99, g.tag("b")); ok {
		t.Fatal("cannot transfer more than held")
	}
}

func TestBoundedCounterGrant(t *testing.T) {
	g := newTagger()
	c := NewBoundedCounter(nil)
	c.Apply(c.PrepareGrant("a", 10, g.tag("a")))
	if c.Value() != 10 || c.Local("a") != 10 {
		t.Fatal("grant should add rights")
	}
}

// The escrow invariant: as long as every replica only consumes rights it
// holds locally, the global value never drops below zero, regardless of
// delivery interleaving.
func TestBoundedCounterEscrowInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	replicas := []clock.ReplicaID{"a", "b", "c"}
	for trial := 0; trial < 100; trial++ {
		g := newTagger()
		init := map[clock.ReplicaID]int64{"a": 4, "b": 4, "c": 4}
		// Each replica has its own view; ops queue for cross-delivery.
		views := map[clock.ReplicaID]*BoundedCounter{}
		for _, r := range replicas {
			views[r] = NewBoundedCounter(init)
		}
		var log []Op
		for step := 0; step < 30; step++ {
			r := replicas[rng.Intn(len(replicas))]
			v := views[r]
			switch rng.Intn(3) {
			case 0:
				if op, ok := v.PrepareConsume(r, 1+int64(rng.Intn(2)), g.tag(r)); ok {
					v.Apply(op)
					log = append(log, op)
				}
			case 1:
				to := replicas[rng.Intn(len(replicas))]
				if op, ok := v.PrepareTransfer(r, to, 1, g.tag(r)); ok && to != r {
					v.Apply(op)
					log = append(log, op)
				}
			case 2:
				// Deliver a random logged op to r (idempotence not modelled:
				// deliver-once via index tracking would need the store; here
				// we just rebuild converged state below).
			}
		}
		// Converged state: all ops applied once.
		final := NewBoundedCounter(init)
		for _, op := range log {
			final.Apply(op)
		}
		if final.Value() < 0 {
			t.Fatalf("trial %d: escrow invariant violated: %d", trial, final.Value())
		}
		for _, r := range replicas {
			if final.Local(r) < 0 {
				// Local rights can only go negative if a replica consumed
				// rights transferred away concurrently — our discipline
				// (consume/transfer only from the local view) prevents it.
				t.Fatalf("trial %d: local rights negative at %s", trial, r)
			}
		}
	}
}

func TestLWWRegister(t *testing.T) {
	g := newTagger()
	r := NewLWWRegister()
	if _, ok := r.Value(); ok {
		t.Fatal("fresh register must be unset")
	}
	r.Apply(r.PrepareSet("v1", 1, g.tag("a")))
	r.Apply(r.PrepareSet("v2", 2, g.tag("a")))
	if v, _ := r.Value(); v != "v2" {
		t.Fatalf("value = %q", v)
	}
	// Older write loses regardless of arrival order.
	r.Apply(LWWSetOp{Value: "stale", TS: 1, Tag: g.tag("b")})
	if v, _ := r.Value(); v != "v2" {
		t.Fatalf("stale write won: %q", v)
	}
	// Tie on TS: higher replica ID wins, on every replica.
	x, y := NewLWWRegister(), NewLWWRegister()
	opA := LWWSetOp{Value: "fromA", TS: 7, Tag: clock.EventID{Replica: "a", Seq: 1}}
	opB := LWWSetOp{Value: "fromB", TS: 7, Tag: clock.EventID{Replica: "b", Seq: 1}}
	x.Apply(opA)
	x.Apply(opB)
	y.Apply(opB)
	y.Apply(opA)
	vx, _ := x.Value()
	vy, _ := y.Value()
	if vx != vy {
		t.Fatalf("LWW diverged: %q vs %q", vx, vy)
	}
	if vx != "fromB" {
		t.Fatalf("tie-break should pick the larger replica: %q", vx)
	}
}

func TestMVRegister(t *testing.T) {
	g := newTagger()
	a, b := NewMVRegister(), NewMVRegister()
	seed := a.PrepareSet("v0", g.tag("a"))
	a.Apply(seed)
	b.Apply(seed)
	// Concurrent writes: both kept.
	wa := a.PrepareSet("fromA", g.tag("a"))
	wb := b.PrepareSet("fromB", g.tag("b"))
	a.Apply(wa)
	b.Apply(wb)
	a.Apply(wb)
	b.Apply(wa)
	va, vb := a.Values(), b.Values()
	if len(va) != 2 || len(vb) != 2 || va[0] != vb[0] || va[1] != vb[1] {
		t.Fatalf("MV register diverged: %v vs %v", va, vb)
	}
	// A later write subsumes both.
	w := a.PrepareSet("final", g.tag("a"))
	a.Apply(w)
	b.Apply(w)
	if got := a.Values(); len(got) != 1 || got[0] != "final" {
		t.Fatalf("values = %v", got)
	}
}

func TestCountersIgnoreForeignOps(t *testing.T) {
	g := newTagger()
	c := NewPNCounter()
	c.Apply(LWWSetOp{Value: "x", TS: 1, Tag: g.tag("a")})
	if c.Value() != 0 {
		t.Fatal("foreign op must be ignored")
	}
	r := NewLWWRegister()
	r.Apply(CounterOp{Delta: 1, Tag: g.tag("a")})
	if _, ok := r.Value(); ok {
		t.Fatal("foreign op must be ignored")
	}
}
