package crdt

// State codecs: every CRDT serialises its full materialised state with a
// hand-written codec, dispatched through a one-byte state kind — the
// snapshot counterpart of the per-operation wire codec in wire.go. The
// store's snapshot files and the join/state-transfer protocol are built
// from these records, so the same rules apply: kinds are append-only and
// never renumbered, encoding is deterministic (sorted map order), and
// decoding never panics on any input (ErrMalformedWire on all failures).
//
// Caches and local statistics are deliberately not encoded: RWSet.present
// is rebuilt lazily, CompSet.CompensationsApplied is a per-process
// counter. Everything else — including remove-wins discard fences, whose
// nil-vs-set distinction changes compaction behaviour — round-trips
// exactly.

import (
	"encoding/binary"
	"sort"

	"ipa/internal/clock"
)

// Stable state kinds. Append-only; never renumber.
const (
	stateKindAWSet   byte = 1
	stateKindRWSet   byte = 2
	stateKindPN      byte = 3
	stateKindBounded byte = 4
	stateKindLWW     byte = 5
	stateKindMV      byte = 6
	stateKindCompSet byte = 7
)

// --- Vector / event-set helpers ------------------------------------------

// AppendVectorWire appends a version vector in sorted replica order. A nil
// vector is encoded distinctly from an empty one: remove-wins discard
// fences use nil for "not yet fenced", and compaction behaves differently
// across that boundary.
func AppendVectorWire(b []byte, v clock.Vector) []byte {
	if v == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	keys := make([]string, 0, len(v))
	for r := range v {
		keys = append(keys, string(r))
	}
	sort.Strings(keys)
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = AppendWireString(b, k)
		b = binary.AppendUvarint(b, v[clock.ReplicaID(k)])
	}
	return b
}

// DecodeVectorWire consumes one version vector (possibly nil).
func DecodeVectorWire(r *WireReader) (clock.Vector, error) {
	present, err := r.readBool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	v := make(clock.Vector, n)
	for i := 0; i < n; i++ {
		rep, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		seq, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		v[clock.ReplicaID(rep)] = seq
	}
	return v, nil
}

func sortedEvents(s eventSet) []clock.EventID {
	es := s.list()
	sort.Slice(es, func(i, j int) bool { return es[i].Less(es[j]) })
	return es
}

func appendEventSet(b []byte, s eventSet) []byte {
	return appendEventIDs(b, sortedEvents(s))
}

func (r *WireReader) readEventSet() (eventSet, error) {
	es, err := r.readEventIDs()
	if err != nil {
		return nil, err
	}
	s := make(eventSet, len(es))
	s.addAll(es)
	return s, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedReplicas(m map[clock.ReplicaID]int64) []clock.ReplicaID {
	keys := make([]clock.ReplicaID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// --- Dispatch -------------------------------------------------------------

// AppendCRDTState appends one CRDT's full state as kind + payload.
func AppendCRDTState(b []byte, c CRDT) ([]byte, error) {
	switch o := c.(type) {
	case *AWSet:
		return o.appendState(append(b, stateKindAWSet)), nil
	case *RWSet:
		return o.appendState(append(b, stateKindRWSet))
	case *PNCounter:
		return o.appendState(append(b, stateKindPN)), nil
	case *BoundedCounter:
		return o.appendState(append(b, stateKindBounded)), nil
	case *LWWRegister:
		return o.appendState(append(b, stateKindLWW)), nil
	case *MVRegister:
		return o.appendState(append(b, stateKindMV)), nil
	case *CompSet:
		return o.appendState(append(b, stateKindCompSet)), nil
	default:
		return nil, wireErrf("CRDT %T has no state codec", c)
	}
}

// DecodeCRDTState consumes one CRDT state (kind + payload) and
// materialises a fresh object holding it.
func DecodeCRDTState(r *WireReader) (CRDT, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case stateKindAWSet:
		return decodeAWSetState(r)
	case stateKindRWSet:
		return decodeRWSetState(r)
	case stateKindPN:
		return decodePNState(r)
	case stateKindBounded:
		return decodeBoundedState(r)
	case stateKindLWW:
		return decodeLWWState(r)
	case stateKindMV:
		return decodeMVState(r)
	case stateKindCompSet:
		return decodeCompSetState(r)
	default:
		return nil, wireErrf("unknown state kind %d", kind)
	}
}

// --- AWSet ----------------------------------------------------------------

func (s *AWSet) appendState(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s.tags)))
	for _, elem := range sortedKeys(s.tags) {
		b = AppendWireString(b, elem)
		b = appendEventSet(b, s.tags[elem])
		b = AppendWireString(b, s.payload[elem])
	}
	b = binary.AppendUvarint(b, uint64(len(s.graveyard)))
	for _, elem := range sortedKeys(s.graveyard) {
		g := s.graveyard[elem]
		b = AppendWireString(b, elem)
		b = AppendWireString(b, g.payload)
		b = AppendEventID(b, g.removed)
	}
	return b
}

func decodeAWSetState(r *WireReader) (*AWSet, error) {
	s := NewAWSet()
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		elem, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		tags, err := r.readEventSet()
		if err != nil {
			return nil, err
		}
		pay, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		s.tags[elem] = tags
		s.payload[elem] = pay
	}
	if n, err = r.ReadCount(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		elem, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		pay, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		removed, err := r.ReadEventID()
		if err != nil {
			return nil, err
		}
		s.graveyard[elem] = graveEntry{payload: pay, removed: removed}
	}
	return s, nil
}

// --- RWSet ----------------------------------------------------------------

func (s *RWSet) appendState(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(s.adds)))
	for _, elem := range sortedKeys(s.adds) {
		recs := s.adds[elem]
		b = AppendWireString(b, elem)
		b = AppendWireString(b, s.payload[elem])
		events := make([]clock.EventID, 0, len(recs))
		for e := range recs {
			events = append(events, e)
		}
		sort.Slice(events, func(i, j int) bool { return events[i].Less(events[j]) })
		b = binary.AppendUvarint(b, uint64(len(events)))
		for _, e := range events {
			rec := recs[e]
			b = AppendEventID(b, e)
			b = appendEventSet(b, rec.observedRemoves)
			b = appendEventSet(b, rec.observedWild)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.removes)))
	for _, elem := range sortedKeys(s.removes) {
		tombs := s.removes[elem]
		b = AppendWireString(b, elem)
		events := make([]clock.EventID, 0, len(tombs))
		for e := range tombs {
			events = append(events, e)
		}
		sort.Slice(events, func(i, j int) bool { return events[i].Less(events[j]) })
		b = binary.AppendUvarint(b, uint64(len(events)))
		for _, e := range events {
			b = AppendEventID(b, e)
			b = AppendVectorWire(b, tombs[e].fence)
		}
	}
	wilds := make([]clock.EventID, 0, len(s.wild))
	for e := range s.wild {
		wilds = append(wilds, e)
	}
	sort.Slice(wilds, func(i, j int) bool { return wilds[i].Less(wilds[j]) })
	b = binary.AppendUvarint(b, uint64(len(wilds)))
	for _, e := range wilds {
		w := s.wild[e]
		b = AppendEventID(b, e)
		var err error
		if b, err = AppendPredicateWire(b, w.pred); err != nil {
			return nil, err
		}
		b = AppendVectorWire(b, w.fence)
	}
	return b, nil
}

func decodeRWSetState(r *WireReader) (*RWSet, error) {
	s := NewRWSet()
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		elem, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		pay, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		m, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		recs := make(map[clock.EventID]addRecord, m)
		for j := 0; j < m; j++ {
			e, err := r.ReadEventID()
			if err != nil {
				return nil, err
			}
			removes, err := r.readEventSet()
			if err != nil {
				return nil, err
			}
			wild, err := r.readEventSet()
			if err != nil {
				return nil, err
			}
			recs[e] = addRecord{observedRemoves: removes, observedWild: wild}
		}
		s.adds[elem] = recs
		s.payload[elem] = pay
	}
	if n, err = r.ReadCount(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		elem, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		m, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		tombs := make(map[clock.EventID]*rwTomb, m)
		for j := 0; j < m; j++ {
			e, err := r.ReadEventID()
			if err != nil {
				return nil, err
			}
			fence, err := DecodeVectorWire(r)
			if err != nil {
				return nil, err
			}
			tombs[e] = &rwTomb{fence: fence}
		}
		s.removes[elem] = tombs
	}
	if n, err = r.ReadCount(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		e, err := r.ReadEventID()
		if err != nil {
			return nil, err
		}
		pred, err := DecodePredicateWire(r)
		if err != nil {
			return nil, err
		}
		fence, err := DecodeVectorWire(r)
		if err != nil {
			return nil, err
		}
		s.wild[e] = &wildRemove{pred: pred, fence: fence}
	}
	return s, nil
}

// --- Counters ---------------------------------------------------------------

func (c *PNCounter) appendState(b []byte) []byte {
	b = binary.AppendVarint(b, c.value)
	b = binary.AppendVarint(b, c.incs)
	return binary.AppendVarint(b, c.decs)
}

func decodePNState(r *WireReader) (*PNCounter, error) {
	c := NewPNCounter()
	var err error
	if c.value, err = r.ReadVarint(); err != nil {
		return nil, err
	}
	if c.incs, err = r.ReadVarint(); err != nil {
		return nil, err
	}
	if c.decs, err = r.ReadVarint(); err != nil {
		return nil, err
	}
	return c, nil
}

func appendReplicaAmounts(b []byte, m map[clock.ReplicaID]int64) []byte {
	b = binary.AppendUvarint(b, uint64(len(m)))
	for _, rep := range sortedReplicas(m) {
		b = AppendWireString(b, string(rep))
		b = binary.AppendVarint(b, m[rep])
	}
	return b
}

func (r *WireReader) readReplicaAmounts() (map[clock.ReplicaID]int64, error) {
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	m := make(map[clock.ReplicaID]int64, n)
	for i := 0; i < n; i++ {
		rep, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		v, err := r.ReadVarint()
		if err != nil {
			return nil, err
		}
		m[clock.ReplicaID(rep)] = v
	}
	return m, nil
}

func (c *BoundedCounter) appendState(b []byte) []byte {
	b = appendReplicaAmounts(b, c.rights)
	return appendReplicaAmounts(b, c.consumed)
}

func decodeBoundedState(r *WireReader) (*BoundedCounter, error) {
	rights, err := r.readReplicaAmounts()
	if err != nil {
		return nil, err
	}
	consumed, err := r.readReplicaAmounts()
	if err != nil {
		return nil, err
	}
	return &BoundedCounter{rights: rights, consumed: consumed}, nil
}

// --- Registers --------------------------------------------------------------

func (g *LWWRegister) appendState(b []byte) []byte {
	b = AppendWireString(b, g.value)
	b = binary.AppendUvarint(b, g.ts)
	b = AppendWireString(b, string(g.by))
	return appendBool(b, g.set)
}

func decodeLWWState(r *WireReader) (*LWWRegister, error) {
	g := NewLWWRegister()
	var err error
	if g.value, err = r.ReadString(); err != nil {
		return nil, err
	}
	if g.ts, err = r.ReadUvarint(); err != nil {
		return nil, err
	}
	by, err := r.ReadString()
	if err != nil {
		return nil, err
	}
	g.by = clock.ReplicaID(by)
	if g.set, err = r.readBool(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *MVRegister) appendState(b []byte) []byte {
	events := make([]clock.EventID, 0, len(g.values))
	for e := range g.values {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Less(events[j]) })
	b = binary.AppendUvarint(b, uint64(len(events)))
	for _, e := range events {
		b = AppendEventID(b, e)
		b = AppendWireString(b, g.values[e])
	}
	return b
}

func decodeMVState(r *WireReader) (*MVRegister, error) {
	g := NewMVRegister()
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		e, err := r.ReadEventID()
		if err != nil {
			return nil, err
		}
		v, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		g.values[e] = v
	}
	return g, nil
}

// --- CompSet ----------------------------------------------------------------

func (c *CompSet) appendState(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(c.maxSize))
	return c.set.appendState(b)
}

func decodeCompSetState(r *WireReader) (*CompSet, error) {
	maxSize, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	set, err := decodeAWSetState(r)
	if err != nil {
		return nil, err
	}
	return &CompSet{set: set, maxSize: int(maxSize)}, nil
}
