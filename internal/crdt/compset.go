package crdt

import (
	"sort"

	"ipa/internal/clock"
)

// CompSet is the paper's Compensation Set (§4.2.2): an add-wins set with
// an attached aggregation constraint — at most MaxSize elements — enforced
// lazily. Whenever the object is read, the constraint is checked against
// the observed state; if it is violated (concurrent adds overshot the
// bound), the compensation removes deterministically chosen elements and
// the removals are committed alongside the reading transaction, so every
// replica that observes the violation converges on the same repair.
//
// Victims are the elements with the largest add events (the newest adds
// are cancelled first — in the Ticket application these are the purchases
// to refund). The choice is deterministic in the observed state, so
// replicas that saw the same overshoot remove the same elements; replicas
// with different partial views may issue overlapping removals, which are
// idempotent.
type CompSet struct {
	set     *AWSet
	maxSize int

	// CompensationsApplied counts elements this replica removed through
	// compensations (local statistic, not replicated).
	CompensationsApplied int64
}

// NewCompSet creates a compensation set with the given size bound.
func NewCompSet(maxSize int) *CompSet {
	return &CompSet{set: NewAWSet(), maxSize: maxSize}
}

// Type implements CRDT.
func (c *CompSet) Type() string { return "comp-set" }

// MaxSize returns the constraint bound.
func (c *CompSet) MaxSize() int { return c.maxSize }

// PrepareAdd builds an insertion op.
func (c *CompSet) PrepareAdd(elem, payload string, tag clock.EventID) AWAddOp {
	return c.set.PrepareAdd(elem, payload, tag)
}

// PrepareRemove builds a removal op.
func (c *CompSet) PrepareRemove(elem string, tag clock.EventID) AWRemoveOp {
	return c.set.PrepareRemove(elem, tag)
}

// Apply implements CRDT.
func (c *CompSet) Apply(op Op) { c.set.Apply(op) }

// Compact implements CRDT.
func (c *CompSet) Compact(h clock.Vector) { c.set.Compact(h) }

// Contains reports membership of the observed (uncompensated) state.
func (c *CompSet) Contains(elem string) bool { return c.set.Contains(elem) }

// Size returns the observed (possibly overshooting) size.
func (c *CompSet) Size() int { return c.set.Size() }

// Violating reports whether the constraint is currently violated.
func (c *CompSet) Violating() bool { return c.set.Size() > c.maxSize }

// Read returns the elements after compensation, plus the compensating
// removal ops the caller must commit with the reading transaction
// (nil when the constraint holds). tags must supply one fresh event ID per
// compensating removal.
func (c *CompSet) Read(tags func() clock.EventID) (elems []string, comps []Op) {
	elems = c.set.Elems()
	over := len(elems) - c.maxSize
	if over <= 0 {
		return elems, nil
	}
	// Sort victims by their largest add event, newest first.
	type victim struct {
		elem string
		tag  clock.EventID
	}
	victims := make([]victim, 0, len(elems))
	for _, e := range elems {
		if t, ok := c.set.MaxTag(e); ok {
			victims = append(victims, victim{elem: e, tag: t})
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[j].tag.Less(victims[i].tag) })

	kept := make(map[string]bool, len(elems))
	for _, e := range elems {
		kept[e] = true
	}
	for i := 0; i < over && i < len(victims); i++ {
		rm := c.set.PrepareRemove(victims[i].elem, tags())
		comps = append(comps, rm)
		kept[victims[i].elem] = false
		c.CompensationsApplied++
	}
	out := elems[:0]
	for _, e := range elems {
		if kept[e] {
			out = append(out, e)
		}
	}
	return out, comps
}
