package crdt

import (
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"ipa/internal/clock"
)

func eid(rep string, seq uint64) clock.EventID {
	return clock.EventID{Replica: clock.ReplicaID(rep), Seq: seq}
}

// TestWireIDPinning pins the assigned wire-ID↔type table byte for byte.
// Wire IDs are the persistent replication protocol: if this test fails
// you renumbered or reused an ID, which silently corrupts mixed-version
// meshes. New op types must APPEND a new ID; existing rows never change.
func TestWireIDPinning(t *testing.T) {
	want := []string{
		"1=crdt.AWAddOp",
		"2=crdt.AWRemoveOp",
		"3=crdt.RWAddOp",
		"4=crdt.RWRemoveOp",
		"5=crdt.RWRemoveWhereOp",
		"6=crdt.CounterOp",
		"7=crdt.BCConsumeOp",
		"8=crdt.BCGrantOp",
		"9=crdt.BCTransferOp",
		"10=crdt.LWWSetOp",
		"11=crdt.MVSetOp",
	}
	got := WireIDTable()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wire ID table changed — IDs are append-only, never renumber.\n got: %v\nwant: %v", got, want)
	}
}

// wireSampleOps exercises every registered op type with every field
// populated, plus zero-ish variants (empty strings, nil slices/maps) that
// must round-trip to DeepEqual-identical values.
func wireSampleOps() []Op {
	return []Op{
		AWAddOp{Elem: "e1", Tag: eid("r1", 7), Pay: "payload", Touch: true},
		AWAddOp{Tag: eid("", 0)},
		AWRemoveOp{Elem: "e1", Tag: eid("r2", 9), Observed: map[string][]clock.EventID{
			"e1": {eid("r1", 7), eid("r3", 2)},
		}},
		AWRemoveOp{Pred: Match{Index: 2, Value: "bob"}, Tag: eid("r1", 1), Observed: map[string][]clock.EventID{
			"a": {eid("r1", 1)},
			"b": {eid("r2", 2)},
			"c": nil,
		}},
		AWRemoveOp{Pred: MatchAll{}, Tag: eid("r1", 2)},
		AWRemoveOp{Pred: MatchFields{Arity: 3, Fields: []string{"x", "", "z"}}, Tag: eid("r1", 3)},
		RWAddOp{Elem: "u" + TupleSep + "v", Pay: "p", Touch: true, Tag: eid("r9", 12),
			ObservedRemoves: []clock.EventID{eid("r1", 4)},
			ObservedWild:    []clock.EventID{eid("r2", 5), eid("r3", 6)}},
		RWAddOp{Tag: eid("r1", 1)},
		RWRemoveOp{Elem: "gone", Tag: eid("r4", 44)},
		RWRemoveWhereOp{Pred: Match{Index: 0, Value: "k"}, Tag: eid("r5", 55)},
		RWRemoveWhereOp{Tag: eid("r5", 56)}, // nil predicate
		CounterOp{Delta: -1234567, Tag: eid("r6", 66)},
		CounterOp{Delta: 1, Tag: eid("r6", 67)},
		BCConsumeOp{Replica: "siteA", N: 3, Tag: eid("r7", 77)},
		BCGrantOp{Replica: "siteB", N: 1 << 40, Tag: eid("r7", 78)},
		BCTransferOp{From: "siteA", To: "siteB", N: -9, Tag: eid("r7", 79)},
		LWWSetOp{Value: "v", TS: 1 << 50, Tag: eid("r8", 88)},
		MVSetOp{Value: "mv", Tag: eid("r9", 99), Observed: []clock.EventID{eid("r1", 1)}},
		MVSetOp{Tag: eid("r9", 100)},
	}
}

func TestOpWireRoundTrip(t *testing.T) {
	for _, op := range wireSampleOps() {
		b, err := AppendOpWire(nil, op)
		if err != nil {
			t.Fatalf("encode %#v: %v", op, err)
		}
		r := NewWireReader(b)
		got, err := DecodeOpWire(&r)
		if err != nil {
			t.Fatalf("decode %#v: %v", op, err)
		}
		if r.Len() != 0 {
			t.Fatalf("decode %#v left %d trailing bytes", op, r.Len())
		}
		if !reflect.DeepEqual(got, op) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, op)
		}
	}
}

// TestOpWireDeterministic pins that encoding is a pure function of the op
// value — map-carrying ops must serialise in sorted order so differential
// tests can compare frames byte for byte.
func TestOpWireDeterministic(t *testing.T) {
	op := AWRemoveOp{Pred: MatchAll{}, Tag: eid("r1", 1), Observed: map[string][]clock.EventID{
		"zebra": {eid("r3", 3)}, "alpha": {eid("r1", 1)}, "mid": {eid("r2", 2)},
	}}
	first, err := AppendOpWire(nil, op)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		again, err := AppendOpWire(nil, op)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("encoding not deterministic on attempt %d", i)
		}
	}
}

// TestOpWireTruncation feeds every strict prefix of every sample op to the
// decoder: each must return an error wrapping ErrMalformedWire — never a
// success, never a panic.
func TestOpWireTruncation(t *testing.T) {
	for _, op := range wireSampleOps() {
		b, err := AppendOpWire(nil, op)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			r := NewWireReader(b[:cut])
			if _, err := DecodeOpWire(&r); err == nil {
				t.Fatalf("decode of %d/%d-byte prefix of %#v succeeded", cut, len(b), op)
			} else if !errors.Is(err, ErrMalformedWire) {
				t.Fatalf("prefix error not ErrMalformedWire: %v", err)
			}
		}
	}
}

func TestOpWireUnknownID(t *testing.T) {
	for _, frame := range [][]byte{{0}, {200}, {255, 1, 2, 3}} {
		r := NewWireReader(frame)
		if _, err := DecodeOpWire(&r); !errors.Is(err, ErrMalformedWire) {
			t.Fatalf("frame %v: want ErrMalformedWire, got %v", frame, err)
		}
	}
}

// TestOpWireHostileCounts pins the count-vs-remaining guard: a frame
// claiming a giant collection must error before allocating for it.
func TestOpWireHostileCounts(t *testing.T) {
	// MVSetOp with a claimed 2^40 observed entries and no data behind it.
	b := []byte{11} // wireIDMVSet
	b = AppendEventID(b, eid("r1", 1))
	b = AppendWireString(b, "v")
	b = append(b, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // uvarint 2^42
	r := NewWireReader(b)
	if _, err := DecodeOpWire(&r); !errors.Is(err, ErrMalformedWire) {
		t.Fatalf("want ErrMalformedWire for hostile count, got %v", err)
	}
}

func TestPredicateWireRoundTrip(t *testing.T) {
	preds := []Predicate{
		nil,
		Match{Index: 0, Value: ""},
		Match{Index: 3, Value: "x" + TupleSep + "y"},
		MatchAll{},
		MatchFields{Arity: 2, Fields: []string{"a", "b"}},
		MatchFields{Arity: 2},
	}
	for _, p := range preds {
		b, err := AppendPredicateWire(nil, p)
		if err != nil {
			t.Fatalf("encode %#v: %v", p, err)
		}
		r := NewWireReader(b)
		got, err := DecodePredicateWire(&r)
		if err != nil {
			t.Fatalf("decode %#v: %v", p, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("predicate round trip:\n got %#v\nwant %#v", got, p)
		}
	}
}

// testPred is an application-style custom predicate: a type this
// package's wire table has never heard of, carried via the gob escape
// hatch (wirePredGob).
type testPred struct{ A, B string }

func (p testPred) Matches(elem string) bool { return elem == p.A || elem == p.B }

func init() { gob.Register(testPred{}) }

func TestPredicateWireGobFallback(t *testing.T) {
	ops := []Op{
		AWRemoveOp{Elem: "e", Tag: clock.EventID{Replica: "r", Seq: 1}, Pred: testPred{A: "x", B: "y"}},
		RWRemoveWhereOp{Pred: testPred{A: "p", B: "q"}, Tag: clock.EventID{Replica: "r", Seq: 2}},
	}
	for _, op := range ops {
		b, err := AppendOpWire(nil, op)
		if err != nil {
			t.Fatalf("%T: %v", op, err)
		}
		r := NewWireReader(b)
		got, err := DecodeOpWire(&r)
		if err != nil {
			t.Fatalf("%T: decode: %v", op, err)
		}
		if !reflect.DeepEqual(got, op) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", op, got, op)
		}
		if r.Len() != 0 {
			t.Fatalf("%T: %d trailing bytes", op, r.Len())
		}
	}
	// A corrupted gob payload must error, never panic: truncating the
	// predicate mid-payload starves either the payload length prefix or
	// the gob stream itself.
	pb, err := AppendPredicateWire(nil, testPred{A: "p", B: "q"})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(pb); cut++ {
		cr := NewWireReader(pb[:cut])
		if _, err := DecodePredicateWire(&cr); err == nil {
			t.Fatalf("decode of %d/%d-byte predicate prefix succeeded", cut, len(pb))
		}
	}
}
