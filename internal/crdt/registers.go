package crdt

import (
	"sort"

	"ipa/internal/clock"
)

// LWWRegister is a last-writer-wins register. Writes are ordered by a
// logical timestamp (the store's per-transaction sequence) with the
// replica ID as a deterministic tie-break, so all replicas pick the same
// winner regardless of delivery order.
type LWWRegister struct {
	value string
	ts    uint64
	by    clock.ReplicaID
	set   bool
}

// NewLWWRegister returns an unset register.
func NewLWWRegister() *LWWRegister { return &LWWRegister{} }

// Type implements CRDT.
func (r *LWWRegister) Type() string { return "lww-register" }

// LWWSetOp writes Value at logical time TS.
type LWWSetOp struct {
	Value string
	TS    uint64
	Tag   clock.EventID
}

// ID implements Op.
func (o LWWSetOp) ID() clock.EventID { return o.Tag }

// PrepareSet builds a write; ts must be monotone at the origin (the store
// uses the transaction's logical commit time).
func (r *LWWRegister) PrepareSet(value string, ts uint64, tag clock.EventID) LWWSetOp {
	return LWWSetOp{Value: value, TS: ts, Tag: tag}
}

// Apply implements CRDT.
func (r *LWWRegister) Apply(op Op) {
	o, ok := op.(LWWSetOp)
	if !ok {
		return
	}
	if !r.set || o.TS > r.ts || (o.TS == r.ts && r.by < o.Tag.Replica) {
		r.value, r.ts, r.by, r.set = o.Value, o.TS, o.Tag.Replica, true
	}
}

// Compact implements CRDT.
func (r *LWWRegister) Compact(clock.Vector) {}

// Value returns the current value and whether the register was ever set.
func (r *LWWRegister) Value() (string, bool) { return r.value, r.set }

// MVRegister is a multi-value register: concurrent writes are all kept and
// exposed to the application, which resolves them (or overwrites, which
// subsumes every value it observed).
type MVRegister struct {
	values map[clock.EventID]string
}

// NewMVRegister returns an unset register.
func NewMVRegister() *MVRegister { return &MVRegister{values: map[clock.EventID]string{}} }

// Type implements CRDT.
func (r *MVRegister) Type() string { return "mv-register" }

// MVSetOp writes Value, superseding the writes observed at origin.
type MVSetOp struct {
	Value    string
	Tag      clock.EventID
	Observed []clock.EventID
}

// ID implements Op.
func (o MVSetOp) ID() clock.EventID { return o.Tag }

// PrepareSet builds a write observing the current values.
func (r *MVRegister) PrepareSet(value string, tag clock.EventID) MVSetOp {
	op := MVSetOp{Value: value, Tag: tag}
	for id := range r.values {
		op.Observed = append(op.Observed, id)
	}
	return op
}

// Apply implements CRDT.
func (r *MVRegister) Apply(op Op) {
	o, ok := op.(MVSetOp)
	if !ok {
		return
	}
	for _, id := range o.Observed {
		delete(r.values, id)
	}
	r.values[o.Tag] = o.Value
}

// Compact implements CRDT.
func (r *MVRegister) Compact(clock.Vector) {}

// Values returns the concurrent values, sorted for determinism.
func (r *MVRegister) Values() []string {
	out := make([]string, 0, len(r.values))
	for _, v := range r.values {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
