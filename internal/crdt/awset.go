package crdt

import (
	"sort"

	"ipa/internal/clock"
)

// AWSet is an add-wins (observed-remove) set with optional per-element
// payloads. A remove only cancels the add events it has observed, so an
// add concurrent with a remove survives the merge — the conflict
// resolution the IPA analysis relies on to let restoring effects prevail
// (paper Fig. 2b).
//
// The set also provides the paper's touch operation (§4.2.1): an add that
// re-asserts membership while preserving the payload the element had, even
// if a concurrent remove deleted it — removed payloads are kept in a
// graveyard until the stability horizon passes the remove.
type AWSet struct {
	tags      map[string]eventSet // live add-events per element
	payload   map[string]string   // payload of live elements
	graveyard map[string]graveEntry
}

type graveEntry struct {
	payload string
	removed clock.EventID // the remove event that sent the payload here
}

// NewAWSet returns an empty add-wins set.
func NewAWSet() *AWSet {
	return &AWSet{
		tags:      map[string]eventSet{},
		payload:   map[string]string{},
		graveyard: map[string]graveEntry{},
	}
}

// Type implements CRDT.
func (s *AWSet) Type() string { return "aw-set" }

// AWAddOp adds an element (or touches it, preserving payload).
type AWAddOp struct {
	Elem  string
	Tag   clock.EventID
	Pay   string
	Touch bool // touch: do not overwrite an existing payload
}

// ID implements Op.
func (o AWAddOp) ID() clock.EventID { return o.Tag }

// AWRemoveOp removes the observed add events of matching elements.
type AWRemoveOp struct {
	Elem     string // exact element, when Pred is nil
	Pred     Predicate
	Observed map[string][]clock.EventID // element -> observed add tags
	Tag      clock.EventID
}

// ID implements Op.
func (o AWRemoveOp) ID() clock.EventID { return o.Tag }

// PrepareAdd builds the op that inserts elem with the given payload.
func (s *AWSet) PrepareAdd(elem, payload string, tag clock.EventID) AWAddOp {
	return AWAddOp{Elem: elem, Tag: tag, Pay: payload}
}

// PrepareTouch builds the paper's touch: membership is re-asserted (an add
// that wins over concurrent removes) but the element's existing payload is
// kept — including a payload a concurrent remove sent to the graveyard.
func (s *AWSet) PrepareTouch(elem string, tag clock.EventID) AWAddOp {
	return AWAddOp{Elem: elem, Tag: tag, Touch: true}
}

// PrepareRemove builds the op that removes elem, cancelling the add events
// observed at this replica.
func (s *AWSet) PrepareRemove(elem string, tag clock.EventID) AWRemoveOp {
	obs := map[string][]clock.EventID{}
	if ts, ok := s.tags[elem]; ok {
		obs[elem] = ts.list()
	}
	return AWRemoveOp{Elem: elem, Observed: obs, Tag: tag}
}

// PrepareRemoveWhere builds a wildcard remove: every element matching pred
// has its observed add events cancelled. Adds concurrent with this op
// still win (add-wins). For remove-wins wildcard semantics use RWSet.
func (s *AWSet) PrepareRemoveWhere(pred Predicate, tag clock.EventID) AWRemoveOp {
	obs := map[string][]clock.EventID{}
	for elem, ts := range s.tags {
		if pred.Matches(elem) {
			obs[elem] = ts.list()
		}
	}
	return AWRemoveOp{Pred: pred, Observed: obs, Tag: tag}
}

// Apply implements CRDT.
func (s *AWSet) Apply(op Op) {
	switch o := op.(type) {
	case AWAddOp:
		ts, ok := s.tags[o.Elem]
		if !ok {
			ts = eventSet{}
			s.tags[o.Elem] = ts
		}
		ts.add(o.Tag)
		if o.Touch {
			if _, have := s.payload[o.Elem]; !have {
				if g, ok := s.graveyard[o.Elem]; ok {
					s.payload[o.Elem] = g.payload
					delete(s.graveyard, o.Elem)
				} else {
					s.payload[o.Elem] = ""
				}
			}
		} else {
			s.payload[o.Elem] = o.Pay
		}
	case AWRemoveOp:
		for elem, observed := range o.Observed {
			ts, ok := s.tags[elem]
			if !ok {
				continue
			}
			for _, t := range observed {
				delete(ts, t)
			}
			if len(ts) == 0 {
				delete(s.tags, elem)
				if pay, ok := s.payload[elem]; ok {
					s.graveyard[elem] = graveEntry{payload: pay, removed: o.Tag}
					delete(s.payload, elem)
				}
			}
		}
	}
}

// Compact implements CRDT: graveyard payloads whose remove event is stable
// can never be revived by a concurrent touch, so they are dropped.
func (s *AWSet) Compact(horizon clock.Vector) {
	for elem, g := range s.graveyard {
		if horizon.Contains(g.removed) {
			delete(s.graveyard, elem)
		}
	}
}

// Contains reports membership.
func (s *AWSet) Contains(elem string) bool { return len(s.tags[elem]) > 0 }

// Payload returns the element's payload ("" when absent).
func (s *AWSet) Payload(elem string) (string, bool) {
	p, ok := s.payload[elem]
	return p, ok && s.Contains(elem)
}

// Size returns the number of elements.
func (s *AWSet) Size() int { return len(s.tags) }

// Elems returns the members in sorted order.
func (s *AWSet) Elems() []string {
	out := make([]string, 0, len(s.tags))
	for e := range s.tags {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// ElemsWhere returns the members matching pred, sorted.
func (s *AWSet) ElemsWhere(pred Predicate) []string {
	var out []string
	for e := range s.tags {
		if pred.Matches(e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// MinTag returns the smallest live add event of elem, used by the
// Compensation Set to pick victims deterministically.
func (s *AWSet) MinTag(elem string) (clock.EventID, bool) {
	ts, ok := s.tags[elem]
	if !ok || len(ts) == 0 {
		return clock.EventID{}, false
	}
	var min clock.EventID
	first := true
	for t := range ts {
		if first || t.Less(min) {
			min, first = t, false
		}
	}
	return min, true
}

// MetadataSize reports the number of metadata entries held: live add
// tags plus graveyard payloads. Used by the stability-GC ablation.
func (s *AWSet) MetadataSize() int {
	n := len(s.graveyard)
	for _, ts := range s.tags {
		n += len(ts)
	}
	return n
}

// MaxTag returns the largest live add event of elem.
func (s *AWSet) MaxTag(elem string) (clock.EventID, bool) {
	ts, ok := s.tags[elem]
	if !ok || len(ts) == 0 {
		return clock.EventID{}, false
	}
	var max clock.EventID
	first := true
	for t := range ts {
		if first || max.Less(t) {
			max, first = t, false
		}
	}
	return max, true
}
