package crdt

import (
	"encoding/gob"
	"fmt"
	"reflect"
)

// The constructor registry is the single place that knows how to build an
// empty CRDT instance — by kind name (the Type() string) or from a
// replicated operation. Every replication backend shares it: the
// simulator-backed store instantiates remotely created objects through
// NewForOp, the TCP transport decodes the same operations from the wire
// (the gob registrations below), and the typed transaction helpers of
// package store create local objects through Ctor. Before the registry the
// same kind→constructor mapping was duplicated in store.newForOp, the
// store wire setup, and per-application mk closures.

// Kind names. Each equals the Type() string of the corresponding CRDT.
const (
	KindAWSet          = "aw-set"
	KindRWSet          = "rw-set"
	KindPNCounter      = "pn-counter"
	KindBoundedCounter = "bounded-counter"
	KindLWWRegister    = "lww-register"
	KindMVRegister     = "mv-register"
	// KindCompSet is registered for op routing only: a Compensation Set
	// carries its bound in the object, so it cannot be constructed empty
	// from a remote operation — it must be seeded at every replica (see
	// store.SeedCompSet). Its ops are plain AWSet ops, so they route to
	// KindAWSet; the constant exists for Type() comparisons.
	KindCompSet = "comp-set"
)

var (
	ctors   = map[string]func() CRDT{}
	opKinds = map[reflect.Type]string{}
)

// register installs the constructor for one kind and associates (and
// gob-registers, for wire transports) the operation types that create
// objects of that kind when they arrive at a replica that has no object
// under the key yet.
func register(kind string, ctor func() CRDT, ops ...Op) {
	if _, dup := ctors[kind]; dup {
		panic("crdt: duplicate kind " + kind)
	}
	ctors[kind] = ctor
	for _, op := range ops {
		gob.Register(op)
		t := reflect.TypeOf(op)
		if k, dup := opKinds[t]; dup {
			panic(fmt.Sprintf("crdt: op %v registered for both %s and %s", t, k, kind))
		}
		opKinds[t] = kind
		// Every replicable op must also speak the binary wire codec
		// (wire.go): catching a missing MarshalWire/decoder here means a
		// new op type fails at init — in every test run — instead of
		// failing to replicate on a live mesh.
		checkWireCodec(op)
	}
}

func init() {
	register(KindAWSet, func() CRDT { return NewAWSet() },
		AWAddOp{}, AWRemoveOp{})
	register(KindRWSet, func() CRDT { return NewRWSet() },
		RWAddOp{}, RWRemoveOp{}, RWRemoveWhereOp{})
	register(KindPNCounter, func() CRDT { return NewPNCounter() },
		CounterOp{})
	register(KindBoundedCounter, func() CRDT { return NewBoundedCounter(nil) },
		BCConsumeOp{}, BCGrantOp{}, BCTransferOp{})
	register(KindLWWRegister, func() CRDT { return NewLWWRegister() },
		LWWSetOp{})
	register(KindMVRegister, func() CRDT { return NewMVRegister() },
		MVSetOp{})
	// Predicates travel inside wildcard remove ops.
	gob.Register(Match{})
	gob.Register(MatchAll{})
	gob.Register(MatchFields{})
}

// Ctor returns the constructor for a kind, for lazily creating an object
// on first local use (the mk argument of the store's Object accessor).
func Ctor(kind string) func() CRDT {
	ctor, ok := ctors[kind]
	if !ok {
		panic("crdt: no constructor registered for kind " + kind)
	}
	return ctor
}

// KindForOp reports which CRDT kind integrates the operation.
func KindForOp(op Op) (string, bool) {
	kind, ok := opKinds[reflect.TypeOf(op)]
	return kind, ok
}

// NewForOp creates the right empty CRDT for a remotely created object:
// the first operation to arrive under an unknown key determines the type.
func NewForOp(op Op) CRDT {
	kind, ok := KindForOp(op)
	if !ok {
		panic(fmt.Sprintf("crdt: no constructor for op %T", op))
	}
	return ctors[kind]()
}
