package crdt

import (
	"testing"

	"ipa/internal/clock"
)

func TestAWSetMetadataSize(t *testing.T) {
	g := newTagger()
	s := NewAWSet()
	if s.MetadataSize() != 0 {
		t.Fatal("empty set has metadata")
	}
	s.Apply(s.PrepareAdd("x", "pay", g.tag("a")))
	s.Apply(s.PrepareAdd("x", "pay", g.tag("b"))) // second tag
	if s.MetadataSize() != 2 {
		t.Fatalf("metadata = %d, want 2 tags", s.MetadataSize())
	}
	s.Apply(s.PrepareRemove("x", g.tag("a")))
	// Tags gone, payload moved to the graveyard.
	if s.MetadataSize() != 1 {
		t.Fatalf("metadata = %d, want 1 graveyard entry", s.MetadataSize())
	}
	s.Compact(clock.Vector{"a": 99, "b": 99})
	if s.MetadataSize() != 0 {
		t.Fatalf("metadata = %d after compaction", s.MetadataSize())
	}
}

func TestRWSetMetadataGrowsAndCompacts(t *testing.T) {
	g := newTagger()
	s := NewRWSet()
	for i := 0; i < 10; i++ {
		s.Apply(s.PrepareAdd("x", "", g.tag("a")))
		s.Apply(s.PrepareRemove("x", g.tag("a")))
	}
	grown := s.MetadataSize()
	if grown < 20 {
		t.Fatalf("churn should grow metadata, got %d", grown)
	}
	s.Apply(s.PrepareAdd("x", "", g.tag("a"))) // final state: present
	s.Compact(clock.Vector{"a": 99})
	if !s.Contains("x") {
		t.Fatal("compaction lost the element")
	}
	if got := s.MetadataSize(); got >= grown || got > 2 {
		t.Fatalf("compaction should shrink metadata to ~1 add record, got %d", got)
	}
}

// Ops of foreign types are ignored by sets (defensive behaviour for the
// store's generic delivery path).
func TestSetsIgnoreForeignOps(t *testing.T) {
	g := newTagger()
	aw := NewAWSet()
	aw.Apply(CounterOp{Delta: 1, Tag: g.tag("a")})
	if aw.Size() != 0 {
		t.Fatal("foreign op mutated AWSet")
	}
	rw := NewRWSet()
	rw.Apply(LWWSetOp{Value: "x", TS: 1, Tag: g.tag("a")})
	if rw.Size() != 0 {
		t.Fatal("foreign op mutated RWSet")
	}
}

func TestTupleHelpers(t *testing.T) {
	e := JoinTuple("p1", "t1", "x")
	parts := SplitTuple(e)
	if len(parts) != 3 || parts[0] != "p1" || parts[2] != "x" {
		t.Fatalf("parts = %v", parts)
	}
	if !(Match{Index: 1, Value: "t1"}).Matches(e) {
		t.Fatal("match by index failed")
	}
	if (Match{Index: 0, Value: "t1"}).Matches(e) {
		t.Fatal("wrong index matched")
	}
	if (Match{Index: 9, Value: "t1"}).Matches(e) {
		t.Fatal("out-of-range index matched")
	}
	if !(MatchAll{}).Matches(e) {
		t.Fatal("MatchAll must match")
	}
	if (Match{Index: 1, Value: "t1"}).String() == "" {
		t.Fatal("Match.String empty")
	}
}

func TestCRDTTypeNames(t *testing.T) {
	cases := map[string]CRDT{
		"aw-set":          NewAWSet(),
		"rw-set":          NewRWSet(),
		"pn-counter":      NewPNCounter(),
		"bounded-counter": NewBoundedCounter(nil),
		"lww-register":    NewLWWRegister(),
		"mv-register":     NewMVRegister(),
		"comp-set":        NewCompSet(1),
	}
	for want, c := range cases {
		if c.Type() != want {
			t.Fatalf("Type() = %q, want %q", c.Type(), want)
		}
	}
}
