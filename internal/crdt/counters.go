package crdt

import (
	"ipa/internal/clock"
)

// PNCounter is an increment/decrement counter. With exactly-once causal
// delivery a plain sum of deltas converges at every replica.
type PNCounter struct {
	value int64
	incs  int64
	decs  int64
}

// NewPNCounter returns a counter at zero.
func NewPNCounter() *PNCounter { return &PNCounter{} }

// Type implements CRDT.
func (c *PNCounter) Type() string { return "pn-counter" }

// CounterOp adjusts the counter by Delta.
type CounterOp struct {
	Delta int64
	Tag   clock.EventID
}

// ID implements Op.
func (o CounterOp) ID() clock.EventID { return o.Tag }

// PrepareAdd builds an op adding delta (negative to decrement).
func (c *PNCounter) PrepareAdd(delta int64, tag clock.EventID) CounterOp {
	return CounterOp{Delta: delta, Tag: tag}
}

// Apply implements CRDT.
func (c *PNCounter) Apply(op Op) {
	o, ok := op.(CounterOp)
	if !ok {
		return
	}
	c.value += o.Delta
	if o.Delta >= 0 {
		c.incs += o.Delta
	} else {
		c.decs -= o.Delta
	}
}

// Compact implements CRDT (nothing to discard).
func (c *PNCounter) Compact(clock.Vector) {}

// Value returns the current count.
func (c *PNCounter) Value() int64 { return c.value }

// Increments returns the total of positive deltas; Decrements the total of
// negative deltas (both non-negative). Useful for violation accounting.
func (c *PNCounter) Increments() int64 { return c.incs }

// Decrements returns the total magnitude of negative deltas.
func (c *PNCounter) Decrements() int64 { return c.decs }

// BoundedCounter is the escrow counter behind Indigo-style reservations
// (O'Neil's escrow method [35], Balegas et al. [11]): the right to
// decrement is split into per-replica rights so that a replica holding
// rights can decrement locally without risking the global lower bound
// (value never drops below zero).
//
// Rights move between replicas with transfer operations; consuming more
// rights than locally available is a local error the caller must handle by
// requesting a transfer (which is where Indigo pays its coordination
// latency).
type BoundedCounter struct {
	rights   map[clock.ReplicaID]int64
	consumed map[clock.ReplicaID]int64
}

// NewBoundedCounter creates a counter whose initial value is the sum of
// the initial rights.
func NewBoundedCounter(initialRights map[clock.ReplicaID]int64) *BoundedCounter {
	r := make(map[clock.ReplicaID]int64, len(initialRights))
	for k, v := range initialRights {
		r[k] = v
	}
	return &BoundedCounter{rights: r, consumed: map[clock.ReplicaID]int64{}}
}

// Type implements CRDT.
func (c *BoundedCounter) Type() string { return "bounded-counter" }

// BCConsumeOp consumes N rights at Replica (a decrement of the value).
type BCConsumeOp struct {
	Replica clock.ReplicaID
	N       int64
	Tag     clock.EventID
}

// ID implements Op.
func (o BCConsumeOp) ID() clock.EventID { return o.Tag }

// BCGrantOp adds N fresh rights at Replica (an increment of the value).
type BCGrantOp struct {
	Replica clock.ReplicaID
	N       int64
	Tag     clock.EventID
}

// ID implements Op.
func (o BCGrantOp) ID() clock.EventID { return o.Tag }

// BCTransferOp moves N rights From one replica To another.
type BCTransferOp struct {
	From, To clock.ReplicaID
	N        int64
	Tag      clock.EventID
}

// ID implements Op.
func (o BCTransferOp) ID() clock.EventID { return o.Tag }

// Local reports the rights locally available to replica r.
func (c *BoundedCounter) Local(r clock.ReplicaID) int64 {
	return c.rights[r] - c.consumed[r]
}

// Value is the global counter value: total rights minus total consumed.
func (c *BoundedCounter) Value() int64 {
	var v int64
	for _, n := range c.rights {
		v += n
	}
	for _, n := range c.consumed {
		v -= n
	}
	return v
}

// PrepareConsume builds a consume op if r holds at least n local rights.
func (c *BoundedCounter) PrepareConsume(r clock.ReplicaID, n int64, tag clock.EventID) (BCConsumeOp, bool) {
	if c.Local(r) < n {
		return BCConsumeOp{}, false
	}
	return BCConsumeOp{Replica: r, N: n, Tag: tag}, true
}

// PrepareGrant builds an op adding fresh rights at r.
func (c *BoundedCounter) PrepareGrant(r clock.ReplicaID, n int64, tag clock.EventID) BCGrantOp {
	return BCGrantOp{Replica: r, N: n, Tag: tag}
}

// PrepareTransfer builds a transfer of n rights from -> to, if available.
func (c *BoundedCounter) PrepareTransfer(from, to clock.ReplicaID, n int64, tag clock.EventID) (BCTransferOp, bool) {
	if c.Local(from) < n {
		return BCTransferOp{}, false
	}
	return BCTransferOp{From: from, To: to, N: n, Tag: tag}, true
}

// Apply implements CRDT.
func (c *BoundedCounter) Apply(op Op) {
	switch o := op.(type) {
	case BCConsumeOp:
		c.consumed[o.Replica] += o.N
	case BCGrantOp:
		c.rights[o.Replica] += o.N
	case BCTransferOp:
		c.rights[o.From] -= o.N
		c.rights[o.To] += o.N
	}
}

// Compact implements CRDT (state is already constant-size per replica).
func (c *BoundedCounter) Compact(clock.Vector) {}
