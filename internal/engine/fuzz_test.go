package engine

import (
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// FuzzMount is the engine round-trip fuzz: any input the spec parser
// accepts must analyze (on a tiny scope, for small specs) and mount
// without panicking, and a mounted app must survive a burst of calls,
// checks, repairs, and digests on a live cluster. The corpus seeds are
// real application specs plus shapes that stress the effect grammar.
func FuzzMount(f *testing.F) {
	f.Add(escrowSpec)
	f.Add(`
spec mini

invariant forall (A: x) :- q(x) => p(x)

operation mk(A: x) {
    p(x) := true
}
operation link(A: x) {
    requires p(x)
    q(x) := true
}
operation rm(A: x) {
    p(x) := false
}
`)
	f.Add("spec s\nrule w rem-wins\noperation f(A: x) {\n w(x, *) := false\n}")
	f.Add("spec s\nconst K = 2\ninvariant forall (A: x) :- #p(*) <= K\noperation f(A: x) {\n p(x) := true\n}")
	f.Add("spec s\noperation f(A: x) {\n n(x) += 3\n n(x) -= 1\n}")
	f.Add("spec s\noperation zero() {\n flag := true\n}")

	f.Fuzz(func(t *testing.T, src string) {
		s, err := spec.Parse(src)
		if err != nil {
			return
		}
		// The analysis is exponential in scope and operation count; fuzz
		// it only on small specs, with the smallest useful options.
		res := &analysis.Result{Spec: s}
		if len(src) <= 400 && len(s.Operations) <= 3 && len(logic.Clauses(s.Invariant())) <= 3 {
			if full, err := analysis.Run(s, analysis.Options{Scope: 2, MaxRepairPreds: 1, MaxIters: 4}); err == nil {
				res = full
			}
		}
		app, err := Mount(s, res, nil)
		if err != nil {
			return
		}
		sim := wan.NewSim(1)
		cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(),
			[]clock.ReplicaID{"a", "b"}))
		ra, rb := cluster.Replica("a"), cluster.Replica("b")
		args := []string{"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"}
		for _, name := range app.Operations() {
			op, _ := app.Spec().Operation(name)
			if len(op.Params) > len(args) {
				continue
			}
			// Errors (preconditions, unsupported shapes) are fine; panics
			// are not.
			_ = app.Call(ra, name, args[:len(op.Params)]...)
			_ = app.Call(rb, name, args[:len(op.Params)]...)
		}
		sim.Run()
		for _, r := range []runtime.Replica{ra, rb} {
			_ = app.CheckInvariants(r)
			app.Repair(r)
		}
		sim.Run()
		if app.Digest(ra) != app.Digest(rb) {
			t.Fatalf("digests diverged after settle:\n%s\nvs\n%s", app.Digest(ra), app.Digest(rb))
		}
	})
}
