package engine

import (
	"errors"
	"fmt"
	"strings"

	"ipa/internal/crdt"
	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
)

// ErrPrecondition reports that an operation did not execute because its
// preconditions — explicit `requires` clauses, or the generic "no new
// invariant violation in the origin's visible state" guard — failed at
// the origin replica. The call is then a no-op, exactly like the
// hand-coded applications' guarded operations; callers that only care
// about executed-or-not can errors.Is against this sentinel.
var ErrPrecondition = errors.New("engine: precondition failed")

// unitElem is the set element standing for a 0-ary predicate's single
// instance.
const unitElem = "()"

// action is one concrete CRDT update of a planned call.
type action struct {
	kind    actionKind
	pred    string   // predicate or numeric field
	args    []string // ground tuple (add/touch/remove/delta)
	pattern []string // wipe pattern, "" = wildcard
	delta   int      // numeric delta
}

// plan simulates the operation's patched execution against the
// extracted pre-state: it grounds every effect, evaluates cascade
// conditions against the visible state, builds the local post-state,
// and checks the explicit preconditions. It returns the concrete update
// list, the simulated post-state, and the truth/value changes relative
// to the pre-state (the compiled guard's trigger input), or
// ErrPrecondition.
func (a *App) plan(co *compiledOp, pre *state, binding map[string]string) ([]action, *state, []change, error) {
	// post is the guard's view of the operation's outcome: the base
	// effects, the cascades, and the analysis-injected retractions — but
	// NOT the injected re-assertions or the derived ensure touches. Those
	// only re-assert entities against concurrent remote removals; letting
	// them satisfy the guard would have every operation conjure up its own
	// preconditions (an enroll creating the missing tournament) instead of
	// refusing like the hand-coded guards do.
	post := pre.clone()
	for _, p := range co.op.Params {
		post.addDomain(p.Sort, binding[p.Name])
	}
	var acts []action
	var changes []change
	planned := map[string]bool{} // dedupe positive assertions by atom

	ground := func(args []logic.Term) ([]string, bool, error) {
		out := make([]string, len(args))
		wild := false
		for i, t := range args {
			switch t.Kind {
			case logic.TermVar:
				v, ok := binding[t.Name]
				if !ok {
					return nil, false, fmt.Errorf("engine: unbound parameter %q", t.Name)
				}
				out[i] = v
			case logic.TermConst:
				out[i] = t.Name
			case logic.TermWildcard:
				out[i] = ""
				wild = true
			}
		}
		return out, wild, nil
	}
	// GroundAtom is the one key scheme extraction, planning, checking,
	// and repair all share (0-ary atoms key under the bare name).
	atomKey := func(pred string, args []string) string { return logic.GroundAtom(pred, args...) }
	assert := func(pred string, args []string, touch bool) {
		key := atomKey(pred, args)
		if planned[key] {
			return
		}
		planned[key] = true
		kind := actAdd
		if touch {
			kind = actTouch
		}
		acts = append(acts, action{kind: kind, pred: pred, args: args})
		if !touch {
			if !pre.in.Truth[key] {
				changes = append(changes, change{pred: pred, args: args, dir: 1})
			}
			post.in.Truth[key] = true
		}
	}
	retractGround := func(pred string, args []string) {
		acts = append(acts, action{kind: actRemove, pred: pred, args: args})
		key := atomKey(pred, args)
		if pre.in.Truth[key] {
			changes = append(changes, change{pred: pred, args: args, dir: -1})
		}
		post.in.Truth[key] = false
	}
	wipe := func(pred string, pattern []string, emit bool) {
		matches := pre.trueMatches(pred, pattern)
		if emit || len(matches) > 0 {
			acts = append(acts, action{kind: actWipe, pred: pred, pattern: pattern})
		}
		for _, m := range matches {
			changes = append(changes, change{pred: pred, args: m, dir: -1})
			post.in.Truth[atomKey(pred, m)] = false
		}
	}

	apply := func(effects []spec.Effect, touch bool) error {
		for _, e := range effects {
			args, wild, err := ground(e.Args)
			if err != nil {
				return err
			}
			switch {
			case e.Kind == spec.NumDelta:
				acts = append(acts, action{kind: actDelta, pred: e.Pred, args: args, delta: e.Delta})
				post.in.Nums[atomKey(e.Pred, args)] += e.Delta
				if e.Delta != 0 {
					d := int8(1)
					if e.Delta < 0 {
						d = -1
					}
					changes = append(changes, change{pred: e.Pred, args: args, dir: d, numeric: true})
				}
			case e.Val:
				assert(e.Pred, args, touch)
			case wild:
				// A wildcard falsification is always a wipe: on a rem-wins
				// set it must travel to defeat concurrent adds.
				wipe(e.Pred, args, a.predRemWins(e.Pred))
			default:
				retractGround(e.Pred, args)
			}
		}
		return nil
	}
	if err := apply(co.base, false); err != nil {
		return nil, nil, nil, err
	}
	if err := apply(co.patches, true); err != nil {
		return nil, nil, nil, err
	}
	for _, t := range co.ensures {
		args, _, err := ground(t.terms)
		if err != nil {
			return nil, nil, nil, err
		}
		assert(t.pred, args, true)
	}
	for _, c := range co.cascades {
		args, _, err := ground(c.terms)
		if err != nil {
			return nil, nil, nil, err
		}
		// Cascades are ground and conditional: retract only what the
		// origin sees (a remove the origin has no grounds for would
		// needlessly defeat concurrent re-assertions).
		if pre.in.Truth[atomKey(c.pred, args)] {
			retractGround(c.pred, args)
		}
	}

	// Explicit preconditions, against the visible pre-state. Eval never
	// mutates its env, so the call binding is passed as-is.
	for i, p := range co.op.Pre {
		ok, err := pre.in.Eval(p, binding)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("engine: %s: requires %s: %w", co.op.Name, p, err)
		}
		if !ok {
			return nil, nil, nil, co.preErrs[i]
		}
	}
	return acts, post, changes, nil
}

// guardFull is the reference form of the generic no-new-violation
// guard: the operation must not introduce a violation the origin can
// see — for every relevant clause and binding, a clause instance that
// held before must still hold after (instances already violated by
// earlier merges don't block progress).
func (a *App) guardFull(co *compiledOp, pre, post *state) error {
	for i, cl := range co.guards {
		envs := post.enumBindings(cl.vars)
		for _, env := range envs {
			okPost, err := post.in.Eval(cl.body, env)
			if err != nil {
				return fmt.Errorf("engine: %s: guard %s: %w", co.op.Name, cl.Formula, err)
			}
			if okPost {
				continue
			}
			okPre, err := pre.in.Eval(cl.body, env)
			if err != nil || !okPre {
				continue // already violated (or not evaluable) before
			}
			return co.violErrs[i]
		}
	}
	return nil
}

// useReference reports whether the operation runs on the whole-state
// reference executor (by mount option, or by per-op fallback).
func (a *App) useReference(co *compiledOp) bool {
	return a.interpreted || co.plan == nil || co.plan.fallback
}

// Call executes one specification operation at a replica, inside a
// single highly available transaction: extract the consistent local
// view, check preconditions, and apply the planned base, repair,
// ensure, and cascade effects. It returns ErrPrecondition (wrapped)
// when the operation is a guarded no-op, and a plain error for caller
// mistakes (unknown operation, arity or argument problems).
func (a *App) Call(r runtime.Replica, opName string, args ...string) error {
	co, ok := a.ops[opName]
	if !ok {
		return fmt.Errorf("engine: %s: unknown operation %q (have %s)",
			a.name, opName, strings.Join(a.opNames, ", "))
	}
	if len(args) != len(co.op.Params) {
		return fmt.Errorf("engine: %s.%s wants %d argument(s) (%s), got %d",
			a.name, opName, len(co.op.Params), paramList(co.op), len(args))
	}
	binding := map[string]string{}
	for i, p := range co.op.Params {
		if args[i] == "" {
			return fmt.Errorf("engine: %s.%s: empty value for parameter %s", a.name, opName, p.Name)
		}
		if strings.Contains(args[i], crdt.TupleSep) || strings.ContainsAny(args[i], "(),") {
			return fmt.Errorf("engine: %s.%s: parameter %s value %q contains a reserved character",
				a.name, opName, p.Name, args[i])
		}
		binding[p.Name] = args[i]
	}

	tx := r.Begin()
	committed := false
	defer func() {
		if !committed {
			tx.Commit()
		}
	}()
	var fp *footprint
	if !a.useReference(co) {
		fp = co.plan.fp
	}
	pre := a.extract(tx, fp)
	if fp != nil {
		if err := a.readMembers(tx, pre, co.plan.members, binding); err != nil {
			return err
		}
	}
	acts, post, changes, err := a.plan(co, pre, binding)
	if err != nil {
		return err
	}
	if a.useReference(co) {
		err = a.guardFull(co, pre, post)
	} else {
		err = a.guardCompiled(co, pre, post, changes)
	}
	if err != nil {
		return err
	}
	for _, act := range acts {
		a.execute(tx, act)
	}
	committed = true
	tx.Commit()
	return nil
}

func paramList(op *spec.Operation) string {
	parts := make([]string, len(op.Params))
	for i, p := range op.Params {
		parts[i] = p.String()
	}
	return strings.Join(parts, ", ")
}

func (a *App) predRemWins(pred string) bool {
	pi := a.preds[pred]
	return pi != nil && pi.remWins
}

// elem encodes a ground tuple as a set element.
func elem(args []string) string {
	if len(args) == 0 {
		return unitElem
	}
	return crdt.JoinTuple(args...)
}

// execute applies one planned action through the transaction.
func (a *App) execute(tx *store.Txn, act action) {
	if act.kind == actDelta {
		a.executeDelta(tx, act)
		return
	}
	pi := a.preds[act.pred]
	if pi.remWins {
		ref := store.RWSetAt(tx, pi.key)
		switch act.kind {
		case actAdd:
			ref.Add(elem(act.args), "")
		case actTouch:
			ref.Touch(elem(act.args))
		case actRemove:
			ref.Remove(elem(act.args))
		case actWipe:
			ref.RemoveWhere(crdt.MatchPattern(act.pattern...))
		}
		return
	}
	ref := store.AWSetAt(tx, pi.key)
	switch act.kind {
	case actAdd:
		ref.Add(elem(act.args), "")
	case actTouch:
		ref.Touch(elem(act.args))
	case actRemove:
		ref.Remove(elem(act.args))
	case actWipe:
		ref.RemoveWhere(crdt.MatchPattern(act.pattern...))
	}
}

// executeDelta applies a numeric update: grants and escrow-guarded
// consumes on a bounded counter (falling back to an optimistic
// overdraft consume when the origin holds too few rights — the guard
// already vouched for the globally visible value, and the compensation
// repairs what a partition hides), plain adds on a PN-counter. The
// field's index set learns the tuple so extraction can find it.
func (a *App) executeDelta(tx *store.Txn, act action) {
	ni := a.nums[act.pred]
	tuple := elem(act.args)
	store.AWSetAt(tx, ni.idxKey).Touch(tuple)
	if !ni.bounded {
		store.CounterAt(tx, ni.key(tuple)).Add(int64(act.delta))
		return
	}
	ref := store.BoundedAt(tx, ni.key(tuple))
	if act.delta >= 0 {
		ref.Grant(int64(act.delta))
		return
	}
	n := int64(-act.delta)
	if !ref.Consume(n) {
		ref.ForceConsume(n)
	}
}
