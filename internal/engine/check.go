package engine

import (
	"fmt"

	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/store"
)

// CheckInvariants evaluates the continuously guaranteed invariant
// clauses against the replica's current state and reports the violated
// instances. These are the clauses the analysis repaired at merge time;
// they must hold in every causally consistent local state, mid-flight
// included.
func (a *App) CheckInvariants(r runtime.Replica) []string {
	return a.check(r, func(cl *Clause) bool { return cl.Class == Continuous })
}

// CheckQuiescent additionally asserts the read-repaired clauses — valid
// only after the compensating reads (Repair) have run and replicated,
// i.e. at quiescence.
func (a *App) CheckQuiescent(r runtime.Replica) []string {
	return a.check(r, func(cl *Clause) bool {
		return cl.Class == Continuous || cl.Class == ReadRepaired
	})
}

func (a *App) check(r runtime.Replica, want func(*Clause) bool) []string {
	tx := r.Begin()
	defer tx.Commit()
	st := a.extract(tx, nil)
	var out []string
	for _, cl := range a.clauses {
		if !want(cl) {
			continue
		}
		ok, err := st.in.Eval(cl.Formula, nil)
		if err != nil {
			out = append(out, fmt.Sprintf("cannot evaluate %s: %v", cl.Formula, err))
			continue
		}
		if !ok {
			out = append(out, fmt.Sprintf("violated [%s]: %s", cl.Class, cl.Formula))
		}
	}
	return out
}

// Digest summarizes the replica's visible specification-level state. At
// quiescence every replica of a converged cluster digests identically,
// and so does any other executor — hand-coded or generated — that
// reached the same logical state.
func (a *App) Digest(r runtime.Replica) string {
	tx := r.Begin()
	defer tx.Commit()
	return DigestOf(a.extract(tx, nil).in)
}

// Interp extracts the replica's current specification-level
// interpretation (for external checkers and tests).
func (a *App) Interp(r runtime.Replica) logic.Interp {
	tx := r.Begin()
	defer tx.Commit()
	return a.extract(tx, nil).in
}

// Repair runs the analysis' compensations as read-time repairs at the
// replica, committing the compensating updates with the reading
// transaction (paper §3.4/§4.2.2):
//
//   - trim-excess: while a bounded count is over its limit, remove the
//     deterministically smallest matching elements of the collection;
//   - replenish: restore a violated lower bound's deficit through the
//     field's epoch-keyed ledger (see numInfo.ledgerPfx).
//
// Both are deterministic, idempotent functions of the visible state:
// replicas that observe the same violation remove the same elements or
// add the same ledger entry, so independent compensations converge and
// the deficit is repaired exactly once.
func (a *App) Repair(r runtime.Replica) {
	if !a.NeedsRepair() {
		return
	}
	tx := r.Begin()
	defer tx.Commit()
	st := a.extract(tx, nil)
	for _, cl := range a.clauses {
		if cl.Class != ReadRepaired {
			continue
		}
		cmp, ok := cl.body.(*logic.Cmp)
		if !ok {
			continue
		}
		if pred, args, limit, isCount := countBound(cmp, a.consts); isCount {
			a.trimExcess(tx, st, cl, pred, args, limit)
			continue
		}
		if fn, bound, isLower := lowerBound(cmp, a.consts); isLower {
			a.replenish(tx, st, cl, fn, bound)
		}
	}
}

// NeedsRepair reports whether the application has any read-time
// compensations at all (merge-repaired apps skip the repair pass).
func (a *App) NeedsRepair() bool {
	for _, cl := range a.clauses {
		if cl.Class == ReadRepaired {
			return true
		}
	}
	return false
}

// countBound recognises #p(args) <= K (or < K, or mirrored) with a
// constant-evaluable K and returns the inclusive limit.
func countBound(cmp *logic.Cmp, consts map[string]int) (pred string, args []logic.Term, limit int, ok bool) {
	if cnt, isCount := cmp.L.(*logic.Count); isCount && (cmp.Op == logic.LE || cmp.Op == logic.LT) {
		if k, kOK := constVal(cmp.R, consts); kOK {
			if cmp.Op == logic.LT {
				k--
			}
			return cnt.Pred, cnt.Args, k, true
		}
	}
	if cnt, isCount := cmp.R.(*logic.Count); isCount && (cmp.Op == logic.GE || cmp.Op == logic.GT) {
		if k, kOK := constVal(cmp.L, consts); kOK {
			if cmp.Op == logic.GT {
				k--
			}
			return cnt.Pred, cnt.Args, k, true
		}
	}
	return "", nil, 0, false
}

// trimExcess removes, for every binding of the clause's variables, the
// deterministically smallest elements of the counted collection until
// the bound holds in the visible state.
func (a *App) trimExcess(tx *store.Txn, st *state, cl *Clause, pred string, args []logic.Term, limit int) {
	pi := a.preds[pred]
	if pi == nil || limit < 0 {
		return
	}
	for _, env := range st.enumBindings(cl.vars) {
		pattern := make([]string, len(args))
		skip := false
		for i, t := range args {
			switch t.Kind {
			case logic.TermVar:
				v, ok := env[t.Name]
				if !ok {
					skip = true
				}
				pattern[i] = v
			case logic.TermConst:
				pattern[i] = t.Name
			case logic.TermWildcard:
				pattern[i] = ""
			}
		}
		if skip {
			continue
		}
		matches := st.trueMatches(pred, pattern) // sorted
		excess := len(matches) - limit
		for i := 0; i < excess; i++ {
			tuple := matches[i]
			a.execute(tx, action{kind: actRemove, pred: pred, args: tuple})
			st.in.Truth[logic.GroundAtom(pred, tuple...)] = false
		}
	}
}

// replenish restores every violated lower-bound instance. For bounded
// fields the deficit goes through the idempotent replenish ledger: the
// entry is keyed by the observed ledger epoch, so replicas compensating
// from the same settled state add the identical entry and the deficit
// is granted exactly once, however many replicas run the repair. A
// field the invariant quantifies over but no operation ever funded
// counts as zero and is replenished like any other violation.
func (a *App) replenish(tx *store.Txn, st *state, cl *Clause, fn string, bound int) {
	// extractBounds vetted every lower-bound clause at mount: fn is a
	// known numeric field and already marked bounded.
	ni := a.nums[fn]
	if ni == nil {
		return
	}
	app := fnAppOf(cl.body)
	if app == nil {
		return
	}
	for _, env := range st.enumBindings(cl.vars) {
		args := make([]string, len(app.Args))
		skip := false
		for i, t := range app.Args {
			switch t.Kind {
			case logic.TermVar:
				v, ok := env[t.Name]
				if !ok {
					skip = true
				}
				args[i] = v
			case logic.TermConst:
				args[i] = t.Name
			default:
				skip = true
			}
		}
		if skip {
			continue
		}
		key := logic.GroundAtom(fn, args...)
		val := st.in.Nums[key] // missing fields read as zero
		if val >= bound {
			continue
		}
		tuple := elem(args)
		ledger := store.AWSetAt(tx, ni.ledger(tuple))
		ledger.Add(fmt.Sprintf("r%d:%d", ledger.Size(), bound-val), "")
		store.AWSetAt(tx, ni.idxKey).Touch(tuple)
		st.in.Nums[key] = bound
	}
}

// fnAppOf finds the numeric-field application in a comparison clause.
func fnAppOf(body logic.Formula) *logic.FnApp {
	cmp, ok := body.(*logic.Cmp)
	if !ok {
		return nil
	}
	if app, isFn := cmp.L.(*logic.FnApp); isFn {
		return app
	}
	if app, isFn := cmp.R.(*logic.FnApp); isFn {
		return app
	}
	return nil
}
