package engine

import (
	"errors"
	"strings"
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/apps/tournament"
	"ipa/internal/clock"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// mountTournament mounts the analyzed tournament spec on a fresh
// deterministic sim cluster.
func mountTournament(t *testing.T, seed int64) (*App, *wan.Sim, runtime.Cluster) {
	t.Helper()
	sim := wan.NewSim(seed)
	cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(), sites()))
	app, err := Mount(tournament.Spec(), tournament.Analysis(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	return app, sim, cluster
}

func sites() []clock.ReplicaID { return []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest} }

// TestMountTournamentShape pins the compiled form of the paper's
// running example: clause classification, derived materialization,
// patches, ensures, and cascades must come out exactly as the analysis
// and the Fig. 3 ensure helpers dictate.
func TestMountTournamentShape(t *testing.T) {
	app, _, _ := mountTournament(t, 1)

	classes := map[string]ClauseClass{}
	for _, cl := range app.Clauses() {
		classes[cl.Formula.String()] = cl.Class
	}
	want := map[string]ClauseClass{
		"forall (Player: p, Tournament: t) :- enrolled(p, t) => (player(p) and tournament(t))":                    Continuous,
		"forall (Player: p, Player: q, Tournament: t) :- inMatch(p, q, t) => (enrolled(p, t) and enrolled(q, t))": Continuous,
		"forall (Player: p, Player: q, Tournament: t) :- inMatch(p, q, t) => (active(t) or finished(t))":          Advisory,
		"forall (Tournament: t) :- #enrolled(*, t) <= Capacity":                                                   ReadRepaired,
		"forall (Tournament: t) :- active(t) => tournament(t)":                                                    Continuous,
		"forall (Tournament: t) :- finished(t) => tournament(t)":                                                  Continuous,
		"forall (Tournament: t) :- not (active(t) and finished(t))":                                               Continuous,
	}
	if len(classes) != len(want) {
		t.Fatalf("got %d clauses, want %d: %v", len(classes), len(want), classes)
	}
	for f, cls := range want {
		if got, ok := classes[f]; !ok || got != cls {
			t.Errorf("clause %q: class %v, want %v (found=%v)", f, got, cls, ok)
		}
	}

	// Materialization: active and inMatch are rem-wins (the analysis'
	// rule and the wipe-derived rule), the rest add-wins.
	for pred, rem := range map[string]bool{
		"player": false, "tournament": false, "enrolled": false,
		"finished": false, "active": true, "inMatch": true,
	} {
		if app.preds[pred] == nil || app.preds[pred].remWins != rem {
			t.Errorf("predicate %s: remWins = %v, want %v", pred, app.preds[pred] != nil && app.preds[pred].remWins, rem)
		}
	}

	// disenroll carries the Fig. 3 wipe patches.
	dis := app.ops["disenroll"]
	if len(dis.patches) != 2 {
		t.Fatalf("disenroll patches = %v, want the two match wipes", dis.patches)
	}
	for _, e := range dis.patches {
		if e.Pred != "inMatch" || e.Val {
			t.Fatalf("unexpected disenroll patch %s", e)
		}
	}

	// do_match's ensure closure restores both enrolments and,
	// transitively, the players and the tournament (Fig. 3 ensureEnroll).
	match := app.ops["do_match"]
	var ensured []string
	for _, e := range match.ensures {
		ensured = append(ensured, termsKey(e.pred, e.terms))
	}
	for _, wantEns := range []string{
		"enrolled(p,t)", "enrolled(q,t)", "player(p)", "player(q)", "tournament(t)",
	} {
		found := false
		for _, got := range ensured {
			if got == wantEns {
				found = true
			}
		}
		if !found {
			t.Errorf("do_match ensures missing %s (have %v)", wantEns, ensured)
		}
	}

	// rem_tourn cascades exactly the tournament's own flags.
	rem := app.ops["rem_tourn"]
	var cascades []string
	for _, c := range rem.cascades {
		cascades = append(cascades, termsKey(c.pred, c.terms))
	}
	if len(cascades) != 2 || !contains(cascades, "active(t)") || !contains(cascades, "finished(t)") {
		t.Fatalf("rem_tourn cascades = %v, want [active(t) finished(t)]", cascades)
	}
	if len(rem.patches) != 0 {
		t.Fatalf("rem_tourn patches = %v, want none", rem.patches)
	}

	// enroll ensures player and tournament; its analysis patch is the
	// tournament re-assertion.
	enroll := app.ops["enroll"]
	if len(enroll.patches) != 1 || enroll.patches[0].Pred != "tournament" {
		t.Fatalf("enroll patches = %v, want tournament(t) := true", enroll.patches)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestCallBasics drives the engine-executed tournament sequentially.
func TestCallBasics(t *testing.T) {
	app, sim, cluster := mountTournament(t, 2)
	east := cluster.Replica(wan.USEast)

	// Guarded no-op: enrolling before the entities exist.
	if err := app.Call(east, "enroll", "alice", "cup"); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("enroll before setup: err = %v, want ErrPrecondition", err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(app.Call(east, "add_player", "alice"))
	must(app.Call(east, "add_player", "bob"))
	must(app.Call(east, "add_tourn", "cup"))
	must(app.Call(east, "enroll", "alice", "cup"))
	must(app.Call(east, "enroll", "bob", "cup"))
	// finish before begin: the explicit requires clause refuses.
	if err := app.Call(east, "finish_tourn", "cup"); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("finish before begin: err = %v, want ErrPrecondition", err)
	}
	must(app.Call(east, "begin_tourn", "cup"))
	must(app.Call(east, "do_match", "alice", "bob", "cup"))
	// rem_tourn with live enrolments: the generic guard refuses.
	if err := app.Call(east, "rem_tourn", "cup"); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("rem_tourn with enrolments: err = %v, want ErrPrecondition", err)
	}
	// disenroll cascades: the wipe patch clears alice's match.
	must(app.Call(east, "disenroll", "alice", "cup"))
	sim.Run()

	for _, id := range cluster.Replicas() {
		r := cluster.Replica(id)
		if msgs := app.CheckQuiescent(r); len(msgs) > 0 {
			t.Fatalf("replica %s: %v", id, msgs)
		}
	}
	in := app.Interp(east)
	if in.Truth["inMatch(alice,bob,cup)"] {
		t.Fatal("disenroll did not wipe the match")
	}
	if in.Truth["enrolled(alice,cup)"] || !in.Truth["enrolled(bob,cup)"] {
		t.Fatalf("enrolments wrong: %v", in.Truth)
	}

	// Digest convergence across replicas.
	base := app.Digest(cluster.Replica(wan.USEast))
	for _, id := range cluster.Replicas() {
		if d := app.Digest(cluster.Replica(id)); d != base {
			t.Fatalf("digest diverged at %s:\n%s\nvs\n%s", id, d, base)
		}
	}
}

// TestCallErrors pins the caller-mistake surface of Call.
func TestCallErrors(t *testing.T) {
	app, _, cluster := mountTournament(t, 3)
	east := cluster.Replica(wan.USEast)

	if err := app.Call(east, "no_such_op", "x"); err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("unknown op: err = %v", err)
	} else if errors.Is(err, ErrPrecondition) {
		t.Fatalf("unknown op must not read as a precondition failure: %v", err)
	}
	if err := app.Call(east, "enroll", "alice"); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Fatalf("arity: err = %v", err)
	}
	if err := app.Call(east, "add_player", ""); err == nil || !strings.Contains(err.Error(), "empty value") {
		t.Fatalf("empty arg: err = %v", err)
	}
	if err := app.Call(east, "add_player", "a,b"); err == nil || !strings.Contains(err.Error(), "reserved character") {
		t.Fatalf("reserved char: err = %v", err)
	}

	// A spec with no operations has nothing to execute: Mount refuses
	// (otherwise the chaos generator would have nothing to draw from).
	empty := spec.MustParse("spec empty\ninvariant forall (A: x) :- p(x)")
	if _, err := Mount(empty, &analysis.Result{Spec: empty}, nil); err == nil ||
		!strings.Contains(err.Error(), "no operations") {
		t.Fatalf("zero-operation spec mounted: %v", err)
	}
}

// TestConcurrentEnrollRemTournament replays the paper's headline race
// through the engine: with the analysis patches executed generically,
// an enrolment concurrent with the tournament's removal restores the
// tournament at every replica.
func TestConcurrentEnrollRemTournament(t *testing.T) {
	app, sim, cluster := mountTournament(t, 4)
	east, west := cluster.Replica(wan.USEast), cluster.Replica(wan.USWest)

	for _, err := range []error{
		app.Call(east, "add_player", "alice"),
		app.Call(east, "add_tourn", "cup"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()

	// Concurrent: east removes the tournament, west enrols alice.
	if err := app.Call(east, "rem_tourn", "cup"); err != nil {
		t.Fatal(err)
	}
	if err := app.Call(west, "enroll", "alice", "cup"); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	for _, id := range cluster.Replicas() {
		r := cluster.Replica(id)
		if msgs := app.CheckQuiescent(r); len(msgs) > 0 {
			t.Fatalf("replica %s: %v", id, msgs)
		}
		in := app.Interp(r)
		if !in.Truth["tournament(cup)"] || !in.Truth["enrolled(alice,cup)"] {
			t.Fatalf("replica %s: add-wins touch did not restore the tournament: %v", id, in.Truth)
		}
	}
}
