// Mount-time compilation of per-operation execution plans.
//
// The reference executor re-extracts the whole specification-level state
// on every call and delta-checks every guard clause over the full
// binding cross-product. Almost all of that work is invariant across
// calls of the same operation, so Mount precomputes, per operation:
//
//   - the footprint: the predicate sets and numeric counters the call
//     can read or write — its effects, patches, ensures, cascades, the
//     `requires` clauses, and the guard clauses it can actually trip —
//     closed over the sorts any guard enumeration needs, so the
//     extracted domains for those sorts are exactly the reference
//     executor's;
//   - the trigger set: for each guard clause, the occurrences of the
//     clause's predicates whose polarity lets a change the operation
//     makes lower the clause (a positive occurrence going false, a
//     negative one going true, any change under a count or field read).
//     Clauses with no compatible (change, occurrence) pair can never be
//     newly violated by the operation and are compiled out entirely;
//   - a fallback flag for degenerate clause shapes (nested quantifiers,
//     stray wildcards, free variables, constant effect arguments) whose
//     evaluation errors and binding universes only the whole-state
//     interpreter reproduces exactly.
//
// At call time the executor grounds each concrete truth change against
// the compatible occurrences, yielding partial bindings of the clause
// variables; only the residual variables enumerate their domains. The
// guard then evaluates the same clause bodies, on the same pre/post
// interpretations, as the reference executor — restricted extraction and
// restricted enumeration are the only differences, which is what the
// differential suite pins.
package engine

import (
	"fmt"
	"sort"

	"ipa/internal/logic"
	"ipa/internal/spec"
)

// footprint names the predicate sets and numeric counters one operation
// must extract in full. nil means "everything" (the reference executor's
// whole-state extraction).
type footprint struct {
	preds map[string]bool
	nums  map[string]bool
}

// memberRead is one ground key the operation reads instead of scanning
// a whole set: the predicate or field applied to argument templates
// over the call parameters (and constants), resolved per call. Most
// operations' precondition checks are exactly such point reads — the
// hand-coded applications' `Contains` checks, recovered from the spec.
type memberRead struct {
	pred    string
	args    []logic.Term
	numeric bool
}

// guardPlan is one guard clause with its precomputed trigger
// occurrences and variable sorts.
type guardPlan struct {
	cl      *Clause
	occs    []logic.Occurrence
	sortOf  map[string]logic.Sort
	violErr error // mount-time refusal error (same instance guardFull returns)
}

// opPlan is the compiled execution plan of one operation.
type opPlan struct {
	fp       *footprint
	members  []memberRead
	guards   []*guardPlan // triggered clauses, in deriveGuards order
	fallback bool
	reason   string
}

// change is one concrete truth or value change a planned call makes,
// relative to the origin's visible pre-state.
type change struct {
	pred    string
	args    []string
	dir     int8 // +1 asserted, -1 retracted; for numeric, sign of delta
	numeric bool
}

// changeShape is the static form of a change: known predicate, known
// direction, argument templates whose values arrive at call time.
// paramArgs means every template term is a call parameter (or constant)
// — wipe matches instead carry values read from extracted state.
type changeShape struct {
	pred      string
	args      []logic.Term
	dir       int8
	numeric   bool
	paramArgs bool
}

// compilePlans computes the execution plan of every operation. Runs
// after deriveRemWins so the guard and effect sets are final.
func (a *App) compilePlans() {
	for _, name := range a.opNames {
		co := a.ops[name]
		co.plan = a.compilePlan(co)
	}
}

func (a *App) compilePlan(co *compiledOp) *opPlan {
	p := &opPlan{}
	// Degenerate guard shapes force the whole operation onto the
	// reference executor: their evaluation errors (and in the
	// free-variable case, their binding universe) depend on the exact
	// whole-state enumeration.
	for _, cl := range co.guards {
		if reason := irregularClause(cl); reason != "" {
			p.fallback, p.reason = true, fmt.Sprintf("guard %s: %s", cl.Formula, reason)
			return p
		}
	}
	// Constant effect arguments produce change values that may be absent
	// from the interpreter's extracted domains, so the restricted
	// enumeration could check bindings the reference executor never
	// enumerates.
	if pred, ok := a.constEffectArg(co); ok {
		p.fallback, p.reason = true, fmt.Sprintf("constant argument in effect on %s", pred)
		return p
	}

	needPred := map[string]bool{}
	needNum := map[string]bool{}
	needSort := map[logic.Sort]bool{}
	var members []memberRead
	memberSeen := map[string]bool{}
	addFull := func(n string) {
		if a.preds[n] != nil {
			needPred[n] = true
		}
		if a.nums[n] != nil {
			needNum[n] = true
		}
	}
	addMember := func(name string, args []logic.Term) {
		m := memberRead{pred: name, args: args, numeric: a.nums[name] != nil}
		if !m.numeric && a.preds[name] == nil {
			return
		}
		key := termsKey(name, args)
		if memberSeen[key] {
			return
		}
		memberSeen[key] = true
		members = append(members, m)
	}

	// Effect planning reads the visible pre-state at the effect's own
	// ground atom (change detection, cascade conditions); wildcard wipes
	// scan the whole set for matches. Ensures are touches and read
	// nothing; numeric deltas write blind.
	effectReads := func(effects []spec.Effect) {
		for _, e := range effects {
			switch {
			case e.Kind == spec.NumDelta:
			case hasWildcard(e.Args):
				addFull(e.Pred)
			default:
				addMember(e.Pred, e.Args)
			}
		}
	}
	effectReads(co.base)
	effectReads(co.patches)
	for _, c := range co.cascades {
		addMember(c.pred, c.terms)
	}
	// Explicit preconditions: point reads at parameter-bound atoms,
	// whole-set reads under quantifiers and counts.
	for _, f := range co.op.Pre {
		a.requireAccesses(f, map[string]bool{}, addFull, addMember, needSort)
	}

	shapes := a.changeShapes(co)
	for i, cl := range co.guards {
		occs := logic.Occurrences(cl.body)
		if !canTrigger(shapes, occs) {
			// No change this operation makes can lower the clause (touches
			// don't change truth; matching polarities all point upward):
			// the guard can never refuse, in either executor.
			continue
		}
		gp := &guardPlan{cl: cl, occs: occs, sortOf: map[string]logic.Sort{}, violErr: co.violErrs[i]}
		for _, v := range cl.vars {
			gp.sortOf[v.Name] = v.Sort
		}
		p.guards = append(p.guards, gp)
		a.guardAccesses(co, cl, shapes, occs, addFull, addMember, needSort)
	}

	// Sort closure: a sort the guard (or a requires-quantifier)
	// enumerates must carry exactly the domain the whole-state extraction
	// would build, so every predicate or field with a position of that
	// sort joins the full footprint.
	for _, name := range sortedKeys(a.preds) {
		for _, srt := range a.preds[name].sorts {
			if needSort[srt] {
				needPred[name] = true
			}
		}
	}
	for _, name := range sortedKeys(a.nums) {
		for _, srt := range a.nums[name].sorts {
			if needSort[srt] {
				needNum[name] = true
			}
		}
	}
	// Point reads of a fully extracted set are redundant.
	for _, m := range members {
		if (m.numeric && !needNum[m.pred]) || (!m.numeric && !needPred[m.pred]) {
			p.members = append(p.members, m)
		}
	}
	p.fp = &footprint{preds: needPred, nums: needNum}
	return p
}

// requireAccesses classifies the reads of one requires-formula: atoms
// and fields applied only to parameters (or constants) are point reads;
// anything touched by a quantified variable, a wildcard, or a count
// needs the whole set, and quantified sorts need their full domains.
func (a *App) requireAccesses(f logic.Formula, enum map[string]bool, addFull func(string), addMember func(string, []logic.Term), needSort map[logic.Sort]bool) {
	pointArgs := func(args []logic.Term) bool {
		for _, t := range args {
			if t.Kind == logic.TermWildcard || (t.Kind == logic.TermVar && enum[t.Name]) {
				return false
			}
		}
		return true
	}
	var walkNum func(t logic.NumTerm)
	walkNum = func(t logic.NumTerm) {
		switch u := t.(type) {
		case *logic.Count:
			addFull(u.Pred)
		case *logic.FnApp:
			if pointArgs(u.Args) {
				addMember(u.Fn, u.Args)
			} else {
				addFull(u.Fn)
			}
		case *logic.NumBin:
			walkNum(u.L)
			walkNum(u.R)
		}
	}
	switch g := f.(type) {
	case *logic.Atom:
		if pointArgs(g.Args) {
			addMember(g.Pred, g.Args)
		} else {
			addFull(g.Pred)
		}
	case *logic.Not:
		a.requireAccesses(g.F, enum, addFull, addMember, needSort)
	case *logic.And:
		for _, c := range g.L {
			a.requireAccesses(c, enum, addFull, addMember, needSort)
		}
	case *logic.Or:
		for _, c := range g.L {
			a.requireAccesses(c, enum, addFull, addMember, needSort)
		}
	case *logic.Implies:
		a.requireAccesses(g.A, enum, addFull, addMember, needSort)
		a.requireAccesses(g.B, enum, addFull, addMember, needSort)
	case *logic.Forall:
		inner := make(map[string]bool, len(enum)+len(g.Vars))
		for k := range enum {
			inner[k] = true
		}
		for _, v := range g.Vars {
			inner[v.Name] = true
			needSort[v.Sort] = true
		}
		a.requireAccesses(g.Body, inner, addFull, addMember, needSort)
	case *logic.Cmp:
		walkNum(g.L)
		walkNum(g.R)
	}
}

// guardAccesses classifies the reads of one triggered guard clause.
// When every downward-compatible (change, occurrence) pair comes from a
// parameter-argument change and binds every clause variable, every
// binding the compiled guard can evaluate is parameter-determined: the
// clause body's atoms become point reads at the statically substituted
// templates. Otherwise (wipe-sourced changes whose values come from
// extracted state, or residual variables enumerating domains) the
// clause's predicates are extracted in full and the residual sorts need
// their complete domains.
func (a *App) guardAccesses(co *compiledOp, cl *Clause, shapes []changeShape, occs []logic.Occurrence, addFull func(string), addMember func(string, []logic.Term), needSort map[logic.Sort]bool) {
	type pairBinding = map[string]logic.Term
	var bindings []pairBinding
	full := false
	for _, occ := range occs {
		for _, s := range shapes {
			if !shapeCompatible(s, occ) {
				continue
			}
			// Variables this occurrence leaves unbound enumerate their
			// domains at call time; the sort closure makes those domains
			// the reference executor's. Bound values need no closure:
			// parameters are registered by planning, wipe-matched values
			// come from atoms of the wiped predicate, which is extracted in
			// full (and so recorded into the domains) in both executors.
			bound := map[string]bool{}
			for _, t := range occ.Args {
				if t.Kind == logic.TermVar {
					bound[t.Name] = true
				}
			}
			residual := false
			for _, v := range cl.vars {
				if !bound[v.Name] {
					residual = true
					needSort[v.Sort] = true
				}
			}
			if !s.paramArgs || residual {
				// The bindings this pair yields are not statically known
				// (state-sourced values or domain enumeration): the clause
				// body reads its predicates in full.
				full = true
				continue
			}
			b := pairBinding{}
			for i, t := range occ.Args {
				if t.Kind != logic.TermVar {
					continue
				}
				// A repeated variable meeting two different templates only
				// unifies at call time when their values coincide; either
				// template then grounds to the same value, so keeping the
				// first is enough.
				if _, dup := b[t.Name]; !dup {
					b[t.Name] = s.args[i]
				}
			}
			bindings = append(bindings, b)
		}
	}
	if full {
		for n := range cl.preds {
			addFull(n)
		}
		return
	}
	for _, b := range bindings {
		for _, occ := range occs {
			if occ.Count {
				addFull(occ.Pred)
				continue
			}
			tmpl := make([]logic.Term, len(occ.Args))
			for i, t := range occ.Args {
				if t.Kind == logic.TermVar {
					tmpl[i] = b[t.Name]
				} else {
					tmpl[i] = t
				}
			}
			addMember(occ.Pred, tmpl)
		}
	}
}

// irregularClause reports why a guard clause needs the reference
// executor, or "" when the compiled guard handles it.
func irregularClause(cl *Clause) string {
	if logic.HasForall(cl.body) {
		return "nested quantifier"
	}
	if logic.HasBareWildcard(cl.body) {
		return "wildcard argument outside count"
	}
	bound := map[string]bool{}
	for _, v := range cl.vars {
		bound[v.Name] = true
	}
	for _, v := range logic.FreeVars(cl.body) {
		if !bound[v] {
			return fmt.Sprintf("free variable %q", v)
		}
	}
	return ""
}

// constEffectArg finds a constant argument in the operation's effects or
// cascades (ensures are touches — they never change truth).
func (a *App) constEffectArg(co *compiledOp) (string, bool) {
	hasConst := func(args []logic.Term) bool {
		for _, t := range args {
			if t.Kind == logic.TermConst {
				return true
			}
		}
		return false
	}
	for _, e := range co.base {
		if hasConst(e.Args) {
			return e.Pred, true
		}
	}
	for _, e := range co.patches {
		if hasConst(e.Args) {
			return e.Pred, true
		}
	}
	for _, c := range co.cascades {
		if hasConst(c.terms) {
			return c.pred, true
		}
	}
	return "", false
}

// changeShapes lists the static change forms the operation's planned
// execution can produce. Touches (patch re-assertions, ensures) change
// no truth and produce no shape.
func (a *App) changeShapes(co *compiledOp) []changeShape {
	var out []changeShape
	add := func(s changeShape) { out = append(out, s) }
	effectShapes := func(effects []spec.Effect, touch bool) {
		for _, e := range effects {
			params := !hasWildcard(e.Args)
			switch {
			case e.Kind == spec.NumDelta:
				if e.Delta != 0 {
					d := int8(1)
					if e.Delta < 0 {
						d = -1
					}
					add(changeShape{pred: e.Pred, args: e.Args, dir: d, numeric: true, paramArgs: params})
				}
			case e.Val:
				if !touch {
					add(changeShape{pred: e.Pred, args: e.Args, dir: 1, paramArgs: params})
				}
			default:
				// Ground retraction or wildcard wipe: either way the only
				// concrete changes are retractions of visible atoms.
				add(changeShape{pred: e.Pred, args: e.Args, dir: -1, paramArgs: params})
			}
		}
	}
	effectShapes(co.base, false)
	effectShapes(co.patches, true)
	for _, c := range co.cascades {
		add(changeShape{pred: c.pred, args: c.terms, dir: -1, paramArgs: !hasWildcard(c.terms)})
	}
	return out
}

// downward reports whether a change in the given direction can lower a
// formula through an occurrence of the given polarity.
func downward(pol logic.Polarity, dir int8) bool {
	switch pol {
	case logic.PolPos:
		return dir < 0
	case logic.PolNeg:
		return dir > 0
	}
	return true
}

// shapeCompatible reports whether one change shape is
// downward-compatible with the occurrence.
func shapeCompatible(s changeShape, o logic.Occurrence) bool {
	return o.Pred == s.pred && len(o.Args) == len(s.args) &&
		o.Numeric == s.numeric && downward(o.Pol, s.dir)
}

// occCompatible reports whether any change shape is downward-compatible
// with the occurrence.
func occCompatible(shapes []changeShape, o logic.Occurrence) bool {
	for _, s := range shapes {
		if shapeCompatible(s, o) {
			return true
		}
	}
	return false
}

// canTrigger reports whether any change shape is downward-compatible
// with any occurrence: if not, the operation can never newly violate
// the clause.
func canTrigger(shapes []changeShape, occs []logic.Occurrence) bool {
	for _, o := range occs {
		if occCompatible(shapes, o) {
			return true
		}
	}
	return false
}

// unifyGround matches a concrete change tuple against an occurrence's
// argument templates, binding clause variables. Constants must match
// exactly; wildcards (count positions) constrain nothing; a repeated
// variable must bind consistently.
func unifyGround(tmpl []logic.Term, vals []string) (map[string]string, bool) {
	var m map[string]string
	for i, t := range tmpl {
		switch t.Kind {
		case logic.TermVar:
			if prev, ok := m[t.Name]; ok {
				if prev != vals[i] {
					return nil, false
				}
				continue
			}
			if m == nil {
				m = map[string]string{}
			}
			m[t.Name] = vals[i]
		case logic.TermConst:
			if t.Name != vals[i] {
				return nil, false
			}
		case logic.TermWildcard:
		}
	}
	return m, true
}

// forTriggerEnvs enumerates the clause bindings the changes can have
// lowered and calls fn on each, deduplicated, in deterministic order:
// each change grounds the compatible occurrences into a partial binding
// whose residual variables then enumerate the post-state domains. Every
// produced binding is one the reference executor's full cross-product
// also contains (bound values come from call parameters or extracted
// state, both in the domains), and every binding whose clause instance
// held before but fails after is produced — a true-to-false flip needs
// at least one downward-compatible change grounding at that binding.
// The env map passed to fn is reused across invocations; fn must not
// retain it. A non-nil error from fn stops the enumeration.
func forTriggerEnvs(gp *guardPlan, changes []change, post *state, fn func(env map[string]string) error) error {
	var seen map[string]bool
	vars := gp.cl.vars
	for _, ch := range changes {
		for _, occ := range gp.occs {
			if occ.Pred != ch.pred || len(occ.Args) != len(ch.args) ||
				occ.Numeric != ch.numeric || !downward(occ.Pol, ch.dir) {
				continue
			}
			partial, ok := unifyGround(occ.Args, ch.args)
			if !ok {
				continue
			}
			// The interpreter only enumerates domain members: a bound value
			// outside its sort's domain is a binding it would never check.
			ok = true
			for v, val := range partial {
				if !inDomain(post, gp.sortOf[v], val) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if partial == nil {
				partial = map[string]string{}
			}
			if seen == nil {
				seen = map[string]bool{}
			}
			if err := expandResidual(vars, 0, partial, post, seen, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

func inDomain(st *state, srt logic.Sort, val string) bool {
	for _, el := range st.in.Domain[srt] {
		if el == val {
			return true
		}
	}
	return false
}

// expandResidual enumerates the unbound clause variables over the
// post-state domains, calling fn on each complete, unseen binding. The
// binding map is extended and un-extended in place.
func expandResidual(vars []logic.Var, i int, partial map[string]string, post *state, seen map[string]bool, fn func(env map[string]string) error) error {
	if i == len(vars) {
		key := envKey(vars, partial)
		if seen[key] {
			return nil
		}
		seen[key] = true
		return fn(partial)
	}
	v := vars[i]
	if _, ok := partial[v.Name]; ok {
		return expandResidual(vars, i+1, partial, post, seen, fn)
	}
	for _, el := range post.in.Domain[v.Sort] {
		partial[v.Name] = el
		if err := expandResidual(vars, i+1, partial, post, seen, fn); err != nil {
			return err
		}
	}
	delete(partial, v.Name)
	return nil
}

func envKey(vars []logic.Var, env map[string]string) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = env[v.Name]
	}
	return logic.GroundAtom("", parts...)
}

// guardCompiled is the compiled form of the no-new-violation guard: the
// same clause bodies, evaluated on the same pre/post interpretations, at
// only the bindings the operation's changes can have lowered. Clause
// order matches the reference executor's, so the first refusing clause
// (and its error) is identical.
func (a *App) guardCompiled(co *compiledOp, pre, post *state, changes []change) error {
	for _, gp := range co.plan.guards {
		err := forTriggerEnvs(gp, changes, post, func(env map[string]string) error {
			okPost, err := post.in.Eval(gp.cl.body, env)
			if err != nil {
				return fmt.Errorf("engine: %s: guard %s: %w", co.op.Name, gp.cl.Formula, err)
			}
			if okPost {
				return nil
			}
			okPre, err := pre.in.Eval(gp.cl.body, env)
			if err != nil || !okPre {
				return nil // already violated (or not evaluable) before
			}
			return gp.violErr
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Compiled reports whether the operation executes on the compiled plan
// (false when mounted WithInterpreter or when the plan fell back), and
// the fallback reason if any — exposed for tests and tooling.
func (a *App) Compiled(opName string) (bool, string) {
	co, ok := a.ops[opName]
	if !ok || co.plan == nil {
		return false, "unknown operation"
	}
	if a.interpreted {
		return false, "mounted with reference interpreter"
	}
	if co.plan.fallback {
		return false, co.plan.reason
	}
	return true, ""
}

// Footprint returns the sorted predicate/field names the operation's
// compiled plan extracts, or nil when it extracts everything.
func (a *App) Footprint(opName string) []string {
	co, ok := a.ops[opName]
	if !ok || co.plan == nil || co.plan.fp == nil || a.interpreted || co.plan.fallback {
		return nil
	}
	var out []string
	for n := range co.plan.fp.preds {
		if co.plan.fp.preds[n] {
			out = append(out, n)
		}
	}
	for n := range co.plan.fp.nums {
		if co.plan.fp.nums[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
