// Package engine executes analyzed IPA specifications directly on any
// replication backend: given the outcome of the analysis (the patched
// spec with its extra effects, convergence rules, and compensations), it
// materializes every predicate as the right CRDT under deterministic
// keys and turns each specification operation into a highly available
// transaction — the paper's promise that the IPA loop's output *is* the
// correct application, with no per-application Go required.
//
// The mapping, per predicate:
//
//   - boolean predicates become sets keyed "<spec>/pred/<name>", with
//     tuples as elements: an add-wins set by default, a remove-wins set
//     when the (programmer- or analysis-installed) convergence rule says
//     rem-wins — or when some operation wipes the predicate with a
//     wildcard falsification, which must defeat concurrent adds;
//   - numeric fields become one counter per ground tuple under
//     "<spec>/num/<name>/<tuple>" (plus an index set of known tuples): a
//     bounded escrow counter when an invariant imposes a lower bound, a
//     PN-counter otherwise.
//
// Each operation executes in one transaction as: origin-side
// precondition check (explicit `requires` clauses plus a generic
// "no new invariant violation in the locally visible post-state" guard),
// then the base effects, the analysis-injected repair effects (as
// payload-preserving touches), the ensure closure (touches restoring
// every atom an implication clause demands for an atom the operation
// asserts, transitively — the paper's Fig. 3 ensure helpers, derived
// instead of handwritten), and the cascade effects (conditional
// falsifications of the parameter-bound atoms whose invariant clauses
// depend on an atom the operation retracts; dependents involving other
// entities instead make the guard refuse). Invariants are checked
// generically by
// evaluating the spec's logic formulas against state extracted from the
// CRDTs, and the analysis' compensations run as read-time repairs.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"ipa/internal/analysis"
	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/smt"
	"ipa/internal/spec"
)

// ClauseClass says when (and whether) the engine asserts an invariant
// clause at runtime.
type ClauseClass uint8

// Clause classes.
const (
	// Continuous clauses hold in every causally consistent local state:
	// the analysis repaired every conflict on them at merge time, and the
	// engine's ensure/cascade execution maintains them. Checked mid-flight
	// and at quiescence.
	Continuous ClauseClass = iota
	// ReadRepaired clauses are restored lazily by a compensation (numeric
	// bounds); they may be transiently violated and are only checked at
	// quiescence, after the compensating reads have run.
	ReadRepaired
	// Advisory clauses carry no runtime guarantee: the analysis flagged a
	// conflict on them as unsolved, or their consequent is a disjunction
	// no ensure effect can decide (the engine still enforces them as
	// origin-side preconditions, exactly like the hand-coded
	// applications honour them locally). Never checked at runtime.
	Advisory
)

func (c ClauseClass) String() string {
	switch c {
	case Continuous:
		return "continuous"
	case ReadRepaired:
		return "read-repaired"
	}
	return "advisory"
}

// Clause is one classified invariant clause.
type Clause struct {
	Formula logic.Formula
	Class   ClauseClass
	// Comp is the compensation protecting a ReadRepaired clause.
	Comp *analysis.Compensation
	// preds are the predicate/field names the clause mentions.
	preds map[string]bool
	// vars are the quantified variables (empty for ground clauses).
	vars []logic.Var
	// body is the clause with the outer quantifier stripped.
	body logic.Formula
}

// predInfo is the materialization of one boolean predicate.
type predInfo struct {
	name    string
	sorts   []logic.Sort
	remWins bool
	key     string
}

// numInfo is the materialization of one numeric field.
type numInfo struct {
	name    string
	sorts   []logic.Sort
	bounded bool
	bound   int // effective lower bound when bounded
	keyPfx  string
	idxKey  string
	// ledgerPfx keys the per-tuple replenish ledger of a bounded field:
	// an add-wins set of "r<epoch>:<amount>" entries. The field's
	// effective value is the raw counter plus the ledger sum — replicas
	// that observe the same deficit add the same entry, so independent
	// compensations replenish exactly once (the tpcw restock scheme,
	// generalized).
	ledgerPfx string
}

func (n *numInfo) key(tuple string) string    { return n.keyPfx + tuple }
func (n *numInfo) ledger(tuple string) string { return n.ledgerPfx + tuple }

// actionKind enumerates the concrete CRDT updates an operation plans.
type actionKind uint8

const (
	actAdd actionKind = iota
	actTouch
	actRemove
	actWipe
	actDelta
)

// ensureTmpl is one derived touch: restore pred(terms) whenever the
// operation runs (terms are parameter variables or constants).
type ensureTmpl struct {
	pred  string
	terms []logic.Term
}

// cascadeTmpl is one derived falsification: retract pred(terms) —
// ground positions bound to parameters or constants, wildcard positions
// covering every element — because the operation retracts an atom the
// pattern's invariant clause depends on.
type cascadeTmpl struct {
	pred  string
	terms []logic.Term
}

// compiledOp is one executable specification operation.
type compiledOp struct {
	op       *spec.Operation
	base     []spec.Effect // the operation's own effects
	patches  []spec.Effect // analysis-injected repair effects
	ensures  []ensureTmpl
	cascades []cascadeTmpl
	guards   []*Clause // clauses delta-checked as preconditions
	plan     *opPlan   // mount-time execution plan (see compile.go)

	// preErrs and violErrs are the refusal errors for each requires
	// clause and each guard clause, built once at mount: rendering a
	// formula allocates, and guarded no-ops are a normal outcome on the
	// serving path, not an exceptional one.
	preErrs  []error // aligned with op.Pre
	violErrs []error // aligned with guards
}

// App is a mounted, executable application: the spec-execution engine
// bound to one cluster.
type App struct {
	res     *analysis.Result
	spc     *spec.Spec // the patched spec
	cluster runtime.Cluster
	name    string

	sig     smt.Signature
	preds   map[string]*predInfo
	nums    map[string]*numInfo
	ops     map[string]*compiledOp
	opNames []string
	clauses []*Clause
	consts  map[string]int
	// sortList caches spc.Sorts() — extraction seeds every sort's domain
	// on each call. predList/numList cache the sorted map keys for the
	// same reason: extraction order must be deterministic, and sorting
	// per call is measurable on the serving path.
	sortList []logic.Sort
	predList []string
	numList  []string

	// interpreted forces the reference executor: whole-state extraction
	// and full cross-product guard enumeration on every call.
	interpreted bool
}

// MountOption configures a mounted application.
type MountOption func(*App)

// WithInterpreter mounts the application on the reference whole-state
// interpreter instead of the compiled per-operation plans. The compiled
// executor must be observationally identical; this option exists so the
// differential suite (and any suspicious user) can run both.
func WithInterpreter() MountOption {
	return func(a *App) { a.interpreted = true }
}

// Mount compiles an analyzed specification into an executable
// application over the given cluster. orig is the pre-analysis spec
// (used to tell an operation's own effects from the analysis-injected
// ones, which execute as payload-preserving touches); nil means every
// effect of res.Spec counts as base. res.Spec must validate.
func Mount(orig *spec.Spec, res *analysis.Result, cluster runtime.Cluster, opts ...MountOption) (*App, error) {
	if res == nil || res.Spec == nil {
		return nil, fmt.Errorf("engine: nil analysis result")
	}
	s := res.Spec
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Operations) == 0 {
		return nil, fmt.Errorf("engine: spec %q has no operations — nothing to execute", s.Name)
	}
	sig, err := s.Signature()
	if err != nil {
		return nil, err
	}
	a := &App{
		res:     res,
		spc:     s,
		cluster: cluster,
		name:    s.Name,
		sig:     sig,
		preds:   map[string]*predInfo{},
		nums:    map[string]*numInfo{},
		ops:     map[string]*compiledOp{},
		consts:  map[string]int{},
	}
	for k, v := range s.Consts {
		a.consts[k] = v
	}
	if err := a.splitPredicates(); err != nil {
		return nil, err
	}
	a.classifyClauses()
	if err := a.extractBounds(); err != nil {
		return nil, err
	}
	if err := a.compileOps(orig); err != nil {
		return nil, err
	}
	a.deriveRemWins()
	a.sortList = s.Sorts()
	a.predList = sortedKeys(a.preds)
	a.numList = sortedKeys(a.nums)
	a.compilePlans()
	for _, opt := range opts {
		opt(a)
	}
	return a, nil
}

// Cluster returns the backing cluster.
func (a *App) Cluster() runtime.Cluster { return a.cluster }

// Spec returns the patched specification the engine executes.
func (a *App) Spec() *spec.Spec { return a.spc }

// Result returns the analysis outcome the application was mounted from.
func (a *App) Result() *analysis.Result { return a.res }

// Operations lists the callable operation names, sorted.
func (a *App) Operations() []string { return append([]string(nil), a.opNames...) }

// Clauses returns the classified invariant clauses.
func (a *App) Clauses() []Clause {
	out := make([]Clause, len(a.clauses))
	for i, c := range a.clauses {
		out[i] = *c
	}
	return out
}

// splitPredicates decides which signature entries are boolean predicates
// (sets) and which are numeric fields (counters), from how effects and
// invariants use them.
func (a *App) splitPredicates() error {
	numeric := map[string]bool{}
	boolean := map[string]bool{}
	for _, ref := range logic.Predicates(a.spc.Invariant()) {
		if ref.Numeric {
			numeric[ref.Name] = true
		} else {
			boolean[ref.Name] = true
		}
	}
	for _, op := range a.spc.Operations {
		for _, pre := range op.Pre {
			for _, ref := range logic.Predicates(pre) {
				if ref.Numeric {
					numeric[ref.Name] = true
				} else {
					boolean[ref.Name] = true
				}
			}
		}
		for _, e := range op.Effects {
			if e.Kind == spec.NumDelta {
				numeric[e.Pred] = true
			} else {
				boolean[e.Pred] = true
			}
		}
	}
	names := make([]string, 0, len(a.sig))
	for name := range a.sig {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if numeric[name] && boolean[name] {
			return fmt.Errorf("engine: %s used as both boolean predicate and numeric field", name)
		}
		sorts := a.sig[name]
		if numeric[name] {
			a.nums[name] = &numInfo{
				name:      name,
				sorts:     sorts,
				keyPfx:    a.name + "/num/" + name + "/",
				idxKey:    a.name + "/numidx/" + name,
				ledgerPfx: a.name + "/numledger/" + name + "/",
			}
			continue
		}
		a.preds[name] = &predInfo{
			name:    name,
			sorts:   sorts,
			remWins: a.spc.Rules[name] == spec.RemWins,
			key:     a.name + "/pred/" + name,
		}
	}
	return nil
}

// classifyClauses assigns every invariant clause its runtime class.
func (a *App) classifyClauses() {
	unsolved := map[string]bool{}
	for _, c := range a.res.Unsolved {
		for _, cl := range c.ViolatedClauses {
			unsolved[cl.String()] = true
		}
	}
	comps := map[string]*analysis.Compensation{}
	for i := range a.res.Compensations {
		comp := &a.res.Compensations[i]
		comps[comp.Clause.String()] = comp
	}
	for _, f := range logic.Clauses(a.spc.Invariant()) {
		cl := &Clause{Formula: f, preds: map[string]bool{}, body: f}
		if fa, ok := f.(*logic.Forall); ok {
			cl.vars = fa.Vars
			cl.body = fa.Body
		}
		for _, ref := range logic.Predicates(f) {
			cl.preds[ref.Name] = true
		}
		key := f.String()
		switch {
		case comps[key] != nil:
			cl.Class = ReadRepaired
			cl.Comp = comps[key]
		case logic.HasCount(f) || hasFnApp(f):
			// A numeric clause without a compensation has no runtime
			// protection at all.
			cl.Class = Advisory
		case unsolved[key]:
			cl.Class = Advisory
		case hasDisjunctiveConsequent(cl.body):
			// An implication whose consequent disjoins atoms cannot be
			// ensure-closed: no touch can decide which disjunct to
			// restore at merge (the paper's Fig. 3 shares this gap — its
			// do_match does not re-assert active/finished either).
			cl.Class = Advisory
		default:
			cl.Class = Continuous
		}
		a.clauses = append(a.clauses, cl)
	}
}

// extractBounds finds lower-bound clauses on numeric fields and switches
// those fields to bounded (escrow) counters. It also rejects the bare-
// identifier trap: `total >= 0` reads the (always-zero) constant total,
// not the 0-ary field — the field form is `total()`.
func (a *App) extractBounds() error {
	for _, cl := range a.clauses {
		for _, name := range constRefs(cl.Formula) {
			if _, isField := a.nums[name]; isField {
				return fmt.Errorf("engine: invariant %s reads constant %q, which is also a numeric field — write %s() to reference the field", cl.Formula, name, name)
			}
		}
	}
	for _, cl := range a.clauses {
		cmp, ok := cl.body.(*logic.Cmp)
		if !ok {
			continue
		}
		fn, bound, ok := lowerBound(cmp, a.consts)
		if !ok {
			continue
		}
		ni, isNum := a.nums[fn]
		if !isNum {
			return fmt.Errorf("engine: lower bound on %s, which is not a numeric field", fn)
		}
		if !ni.bounded || bound > ni.bound {
			ni.bounded, ni.bound = true, bound
		}
	}
	return nil
}

// constVal evaluates a numeric term that must be a literal or a named
// constant.
func constVal(t logic.NumTerm, consts map[string]int) (int, bool) {
	switch u := t.(type) {
	case *logic.IntLit:
		return u.N, true
	case *logic.ConstRef:
		return consts[u.Name], true
	}
	return 0, false
}

// lowerBound recognises fn(..) >= K (or > K, or the mirrored forms) with
// a constant-evaluable K and returns the effective inclusive bound.
func lowerBound(cmp *logic.Cmp, consts map[string]int) (fn string, bound int, ok bool) {
	if app, isFn := cmp.L.(*logic.FnApp); isFn && (cmp.Op == logic.GE || cmp.Op == logic.GT) {
		if k, kOK := constVal(cmp.R, consts); kOK {
			if cmp.Op == logic.GT {
				k++
			}
			return app.Fn, k, true
		}
	}
	if app, isFn := cmp.R.(*logic.FnApp); isFn && (cmp.Op == logic.LE || cmp.Op == logic.LT) {
		if k, kOK := constVal(cmp.L, consts); kOK {
			if cmp.Op == logic.LT {
				k++
			}
			return app.Fn, k, true
		}
	}
	return "", 0, false
}

// constRefs lists the named constants a formula reads.
func constRefs(f logic.Formula) []string {
	var out []string
	var walkNum func(t logic.NumTerm)
	walkNum = func(t logic.NumTerm) {
		switch u := t.(type) {
		case *logic.ConstRef:
			out = append(out, u.Name)
		case *logic.NumBin:
			walkNum(u.L)
			walkNum(u.R)
		}
	}
	var walk func(f logic.Formula)
	walk = func(f logic.Formula) {
		switch g := f.(type) {
		case *logic.Not:
			walk(g.F)
		case *logic.And:
			for _, c := range g.L {
				walk(c)
			}
		case *logic.Or:
			for _, c := range g.L {
				walk(c)
			}
		case *logic.Implies:
			walk(g.A)
			walk(g.B)
		case *logic.Forall:
			walk(g.Body)
		case *logic.Cmp:
			walkNum(g.L)
			walkNum(g.R)
		}
	}
	walk(f)
	return out
}

// hasFnApp reports whether the formula applies a numeric field.
func hasFnApp(f logic.Formula) bool {
	switch g := f.(type) {
	case *logic.Not:
		return hasFnApp(g.F)
	case *logic.And:
		for _, c := range g.L {
			if hasFnApp(c) {
				return true
			}
		}
	case *logic.Or:
		for _, c := range g.L {
			if hasFnApp(c) {
				return true
			}
		}
	case *logic.Implies:
		return hasFnApp(g.A) || hasFnApp(g.B)
	case *logic.Forall:
		return hasFnApp(g.Body)
	case *logic.Cmp:
		return numHasFnApp(g.L) || numHasFnApp(g.R)
	}
	return false
}

func numHasFnApp(t logic.NumTerm) bool {
	switch u := t.(type) {
	case *logic.FnApp:
		return true
	case *logic.NumBin:
		return numHasFnApp(u.L) || numHasFnApp(u.R)
	}
	return false
}

// hasDisjunctiveConsequent reports whether a clause body is an
// implication whose consequent contains a disjunction of atoms.
func hasDisjunctiveConsequent(body logic.Formula) bool {
	imp, ok := body.(*logic.Implies)
	if !ok {
		return false
	}
	var hasOr func(f logic.Formula) bool
	hasOr = func(f logic.Formula) bool {
		switch g := f.(type) {
		case *logic.Or:
			return true
		case *logic.And:
			for _, c := range g.L {
				if hasOr(c) {
					return true
				}
			}
		case *logic.Not:
			return hasOr(g.F)
		case *logic.Implies:
			return hasOr(g.A) || hasOr(g.B)
		}
		return false
	}
	return hasOr(imp.B)
}

// compileOps builds the executable form of every operation.
func (a *App) compileOps(orig *spec.Spec) error {
	for _, op := range a.spc.Operations {
		co := &compiledOp{op: op}
		base := op.Effects
		if orig != nil {
			if origOp, ok := orig.Operation(op.Name); ok {
				var err error
				base, co.patches, err = splitEffects(op, origOp)
				if err != nil {
					return err
				}
			}
		}
		co.base = base
		for _, e := range append(append([]spec.Effect(nil), co.base...), co.patches...) {
			if e.Kind == spec.BoolAssign && e.Val && hasWildcard(e.Args) {
				return fmt.Errorf("engine: operation %s: wildcard in positive effect %s", op.Name, e)
			}
			if e.Kind == spec.NumDelta && hasWildcard(e.Args) {
				return fmt.Errorf("engine: operation %s: wildcard in numeric effect %s", op.Name, e)
			}
		}
		a.deriveEnsures(co)
		a.deriveCascades(co)
		a.deriveGuards(co)
		a.ops[op.Name] = co
		a.opNames = append(a.opNames, op.Name)
	}
	sort.Strings(a.opNames)
	return nil
}

// splitEffects separates an operation's own effects from the
// analysis-injected ones by diffing against the original operation.
func splitEffects(patched, orig *spec.Operation) (base, extras []spec.Effect, err error) {
	remaining := append([]spec.Effect(nil), orig.Effects...)
	for _, e := range patched.Effects {
		found := -1
		for i, o := range remaining {
			if e.Equal(o) {
				found = i
				break
			}
		}
		if found >= 0 {
			base = append(base, e)
			remaining = append(remaining[:found], remaining[found+1:]...)
			continue
		}
		extras = append(extras, e)
	}
	if len(remaining) > 0 {
		return nil, nil, fmt.Errorf("engine: operation %s: analysis dropped effect %s", patched.Name, remaining[0])
	}
	return base, extras, nil
}

func hasWildcard(args []logic.Term) bool {
	for _, t := range args {
		if t.Kind == logic.TermWildcard {
			return true
		}
	}
	return false
}

// implication returns a continuous clause's body as (antecedent atom,
// consequent conjunct atoms), when it has that shape.
func clauseImplication(cl *Clause) (*logic.Atom, []*logic.Atom, bool) {
	if cl.Class != Continuous {
		return nil, nil, false
	}
	imp, ok := cl.body.(*logic.Implies)
	if !ok {
		return nil, nil, false
	}
	ante, ok := imp.A.(*logic.Atom)
	if !ok {
		return nil, nil, false
	}
	var atoms []*logic.Atom
	var collect func(f logic.Formula) bool
	collect = func(f logic.Formula) bool {
		switch g := f.(type) {
		case *logic.Atom:
			atoms = append(atoms, g)
			return true
		case *logic.And:
			for _, c := range g.L {
				if !collect(c) {
					return false
				}
			}
			return true
		}
		return false
	}
	if !collect(imp.B) {
		return nil, nil, false
	}
	return ante, atoms, true
}

// unifyAtom matches a clause atom against an effect's predicate
// application: clause variables bind to the effect's terms. A wildcard
// effect term binds the variable to a wildcard. Returns nil when the
// predicate or arity differs.
func unifyAtom(atom *logic.Atom, pred string, args []logic.Term) map[string]logic.Term {
	if atom.Pred != pred || len(atom.Args) != len(args) {
		return nil
	}
	binding := map[string]logic.Term{}
	for i, at := range atom.Args {
		switch at.Kind {
		case logic.TermVar:
			if prev, ok := binding[at.Name]; ok {
				if prev != args[i] {
					return nil
				}
				continue
			}
			binding[at.Name] = args[i]
		case logic.TermConst:
			if args[i].Kind != logic.TermConst || args[i].Name != at.Name {
				return nil
			}
		case logic.TermWildcard:
			// A clause-side wildcard constrains nothing.
		}
	}
	return binding
}

// instantiate maps a clause atom's arguments through a binding; unbound
// variables become wildcards.
func instantiate(atom *logic.Atom, binding map[string]logic.Term) []logic.Term {
	out := make([]logic.Term, len(atom.Args))
	for i, at := range atom.Args {
		switch at.Kind {
		case logic.TermVar:
			if t, ok := binding[at.Name]; ok {
				out[i] = t
			} else {
				out[i] = logic.Wild()
			}
		case logic.TermConst:
			out[i] = at
		case logic.TermWildcard:
			out[i] = logic.Wild()
		}
	}
	return out
}

func termsKey(pred string, terms []logic.Term) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return pred + "(" + strings.Join(parts, ",") + ")"
}

// deriveEnsures computes the operation's ensure closure: for every atom
// the (patched) operation asserts, every implication clause demanding
// other atoms for it yields touches of those atoms, transitively — the
// generic form of the paper's ensure helpers.
func (a *App) deriveEnsures(co *compiledOp) {
	type asserted struct {
		pred  string
		terms []logic.Term
	}
	var work []asserted
	planned := map[string]bool{} // atoms the op already asserts
	for _, e := range append(append([]spec.Effect(nil), co.base...), co.patches...) {
		if e.Kind != spec.BoolAssign || !e.Val {
			continue
		}
		work = append(work, asserted{e.Pred, e.Args})
		planned[termsKey(e.Pred, e.Args)] = true
	}
	seen := map[string]bool{}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		for _, cl := range a.clauses {
			ante, atoms, ok := clauseImplication(cl)
			if !ok {
				continue
			}
			binding := unifyAtom(ante, cur.pred, cur.terms)
			if binding == nil {
				continue
			}
			for _, atom := range atoms {
				terms := instantiate(atom, binding)
				if hasWildcard(terms) {
					continue // cannot touch an unbound atom
				}
				if a.preds[atom.Pred] == nil {
					continue
				}
				key := termsKey(atom.Pred, terms)
				if planned[key] || seen[key] {
					continue
				}
				seen[key] = true
				co.ensures = append(co.ensures, ensureTmpl{pred: atom.Pred, terms: terms})
				work = append(work, asserted{atom.Pred, terms})
			}
		}
	}
}

// deriveCascades computes the operation's cascades: for every atom the
// operation retracts, an implication clause whose consequent needs it
// has its antecedent retracted too — but only when the dependent atom is
// fully determined by the operation's own parameters (then it is private
// entity state, cleared conditionally when locally visible, like the
// hand-coded rem_tourn clearing a removed tournament's flags). A
// dependent with unbound positions is independent application state: the
// engine leaves it to the precondition guard, which refuses the
// operation while such state is visible (rem_tourn with live
// enrolments), unless the analysis explicitly chose a wildcard
// falsification repair (disenroll wiping matches). Cascades propagate
// transitively through the ground dependents.
func (a *App) deriveCascades(co *compiledOp) {
	type retracted struct {
		pred  string
		terms []logic.Term
	}
	var work []retracted
	for _, e := range append(append([]spec.Effect(nil), co.base...), co.patches...) {
		if e.Kind != spec.BoolAssign || e.Val {
			continue
		}
		work = append(work, retracted{e.Pred, e.Args})
	}
	seen := map[string]bool{}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		for _, cl := range a.clauses {
			ante, atoms, ok := clauseImplication(cl)
			if !ok {
				continue
			}
			for _, atom := range atoms {
				binding := unifyAtom(atom, cur.pred, cur.terms)
				if binding == nil {
					continue
				}
				terms := instantiate(ante, binding)
				if hasWildcard(terms) || a.preds[ante.Pred] == nil {
					continue
				}
				key := termsKey(ante.Pred, terms)
				if seen[key] {
					continue
				}
				seen[key] = true
				co.cascades = append(co.cascades, cascadeTmpl{pred: ante.Pred, terms: terms})
				work = append(work, retracted{ante.Pred, terms})
			}
		}
	}
}

// deriveGuards selects the clauses the operation must delta-check as
// preconditions: every clause (of any class except trim-excess
// compensated counts, which the hand-coded applications deliberately
// sell/enroll through) touching a predicate the operation affects.
func (a *App) deriveGuards(co *compiledOp) {
	affected := map[string]bool{}
	for _, e := range append(append([]spec.Effect(nil), co.base...), co.patches...) {
		affected[e.Pred] = true
	}
	for _, t := range co.ensures {
		affected[t.pred] = true
	}
	for _, c := range co.cascades {
		affected[c.pred] = true
	}
	for _, cl := range a.clauses {
		if cl.Class == ReadRepaired && cl.Comp != nil && cl.Comp.Kind == analysis.TrimExcess {
			// Count bounds with a trim compensation are deliberately not
			// origin-guarded: the Fig. 3 applications sell/enroll through
			// the bound and let the read-time trim restore it. (Lower
			// bounds with a replenish compensation stay guarded — the
			// escrow model prevents what the origin can see and
			// compensates only what a partition hides.)
			continue
		}
		relevant := false
		for p := range cl.preds {
			if affected[p] {
				relevant = true
				break
			}
		}
		if relevant {
			co.guards = append(co.guards, cl)
			co.violErrs = append(co.violErrs,
				fmt.Errorf("%w: %s would violate %s", ErrPrecondition, co.op.Name, cl.Formula))
		}
	}
	for _, p := range co.op.Pre {
		co.preErrs = append(co.preErrs,
			fmt.Errorf("%w: %s: requires %s", ErrPrecondition, co.op.Name, p))
	}
}

// deriveRemWins switches wiped, rule-less predicates to remove-wins: a
// wildcard falsification must defeat adds concurrent with it (the
// paper's rem-wins wildcard removal, §4.2.1), which an add-wins set
// cannot express. A programmer- or analysis-installed add-wins rule is
// never overridden — the wipe then only cancels observed elements.
func (a *App) deriveRemWins() {
	wipes := func(terms []logic.Term) bool { return hasWildcard(terms) }
	for _, co := range a.ops {
		for _, e := range append(append([]spec.Effect(nil), co.base...), co.patches...) {
			if e.Kind == spec.BoolAssign && !e.Val && wipes(e.Args) {
				a.markRemWins(e.Pred)
			}
		}
		for _, c := range co.cascades {
			if wipes(c.terms) {
				a.markRemWins(c.pred)
			}
		}
	}
}

func (a *App) markRemWins(pred string) {
	pi := a.preds[pred]
	if pi == nil {
		return
	}
	if pol, ok := a.spc.Rules[pred]; ok && pol != spec.NoPolicy {
		return
	}
	pi.remWins = true
}
