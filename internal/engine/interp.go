package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ipa/internal/crdt"
	"ipa/internal/logic"
	"ipa/internal/store"
)

// state is the logical view of one replica's materialized spec state,
// extracted inside a single transaction (one consistent multi-key
// snapshot: every key is bound before any is read).
type state struct {
	in logic.Interp
}

// extract reads the app's predicate sets and numeric counters through
// tx and rebuilds the specification-level interpretation — the generic
// form of the hand-written per-app state extraction the analysis
// reasons over. A non-nil footprint restricts the read to the named
// predicates and fields (the compiled per-operation plans); nil reads
// everything (checking, repair, digests, and the reference executor).
func (a *App) extract(tx *store.Txn, fp *footprint) *state {
	st := &state{in: logic.Interp{
		Domain: map[logic.Sort][]string{},
		Truth:  map[string]bool{},
		Nums:   map[string]int{},
		Consts: a.consts, // read-only: shared, never copied per call
	}}
	// Every sort is present even when empty: quantifiers over an empty
	// domain are vacuously true, not an evaluation error.
	for _, srt := range a.sortList {
		st.in.Domain[srt] = []string{}
	}
	// Domains hold the handful of entities visible to one call, so the
	// dedup is a linear scan — cheaper than per-call hash sets for sets
	// this size, and allocation-free.
	addDomain := func(srt logic.Sort, el string) {
		if srt == "" {
			return
		}
		have := st.in.Domain[srt]
		for _, h := range have {
			if h == el {
				return
			}
		}
		st.in.Domain[srt] = append(have, el)
	}
	record := func(sorts []logic.Sort, parts []string) {
		for i, p := range parts {
			if i < len(sorts) {
				addDomain(sorts[i], p)
			}
		}
	}
	// Predicates and fields read in sorted name order (cached at mount),
	// elements in sorted order (the sets' Elems are already sorted):
	// extraction feeds planning, and the emitted CRDT operations must be
	// a deterministic function of the state for seed replay.
	for _, name := range a.predList {
		if fp != nil && !fp.preds[name] {
			continue
		}
		pi := a.preds[name]
		if len(pi.sorts) == 0 {
			// 0-ary predicate: membership of the unit element is its truth.
			if len(a.setElems(tx, pi)) > 0 {
				st.in.Truth[name] = true
			}
			continue
		}
		for _, elem := range a.setElems(tx, pi) {
			parts := crdt.SplitTuple(elem)
			if len(parts) != len(pi.sorts) {
				continue // foreign tuple shape: ignore rather than misparse
			}
			st.in.Truth[logic.GroundAtom(name, parts...)] = true
			record(pi.sorts, parts)
		}
	}
	for _, name := range a.numList {
		if fp != nil && !fp.nums[name] {
			continue
		}
		ni := a.nums[name]
		for _, tuple := range store.AWSetAt(tx, ni.idxKey).Elems() {
			var val int64
			if ni.bounded {
				// A bounded field's effective value is the raw escrow
				// counter plus its replenish ledger (see numInfo.ledgerPfx).
				val = store.BoundedAt(tx, ni.key(tuple)).Value() + ledgerSum(tx, ni.ledger(tuple))
			} else {
				val = store.CounterAt(tx, ni.key(tuple)).Value()
			}
			// 0-ary fields index the unit tuple but evaluate under the bare
			// field name — the same key planning and formula evaluation use.
			if len(ni.sorts) == 0 {
				if tuple == unitElem {
					st.in.Nums[name] = int(val)
				}
				continue
			}
			parts := crdt.SplitTuple(tuple)
			if len(parts) != len(ni.sorts) {
				continue // foreign tuple shape: ignore rather than misparse
			}
			st.in.Nums[logic.GroundAtom(name, parts...)] = int(val)
			record(ni.sorts, parts)
		}
	}
	return st
}

// readMembers resolves the plan's member-read templates against the
// call binding and point-reads each ground key into the extracted
// state: set membership via Contains, numeric values via their counters
// — but only for tuples the field's index set knows, exactly like the
// full scan. Member values are call parameters or constants, so the
// interpretation's domains are unaffected (plan registers parameters).
func (a *App) readMembers(tx *store.Txn, st *state, members []memberRead, binding map[string]string) error {
	for _, m := range members {
		args := make([]string, len(m.args))
		for i, t := range m.args {
			switch t.Kind {
			case logic.TermVar:
				v, ok := binding[t.Name]
				if !ok {
					return fmt.Errorf("engine: unbound parameter %q", t.Name)
				}
				args[i] = v
			case logic.TermConst:
				args[i] = t.Name
			default:
				return fmt.Errorf("engine: wildcard in member read of %s", m.pred)
			}
		}
		tuple := elem(args)
		if m.numeric {
			ni := a.nums[m.pred]
			if !store.AWSetAt(tx, ni.idxKey).Contains(tuple) {
				continue
			}
			var val int64
			if ni.bounded {
				val = store.BoundedAt(tx, ni.key(tuple)).Value() + ledgerSum(tx, ni.ledger(tuple))
			} else {
				val = store.CounterAt(tx, ni.key(tuple)).Value()
			}
			st.in.Nums[logic.GroundAtom(m.pred, args...)] = int(val)
			continue
		}
		pi := a.preds[m.pred]
		if len(pi.sorts) == 0 {
			// 0-ary predicate: any member makes it true (mirrors extract).
			if len(a.setElems(tx, pi)) > 0 {
				st.in.Truth[m.pred] = true
			}
			continue
		}
		if a.setContains(tx, pi, tuple) {
			st.in.Truth[logic.GroundAtom(m.pred, args...)] = true
		}
	}
	return nil
}

// setContains point-reads a predicate's membership.
func (a *App) setContains(tx *store.Txn, pi *predInfo, elem string) bool {
	if pi.remWins {
		return store.RWSetAt(tx, pi.key).Contains(elem)
	}
	return store.AWSetAt(tx, pi.key).Contains(elem)
}

// ledgerSum totals a replenish ledger's "r<epoch>:<amount>" entries.
func ledgerSum(tx *store.Txn, key string) int64 {
	var sum int64
	for _, e := range store.AWSetAt(tx, key).Elems() {
		if i := strings.IndexByte(e, ':'); i >= 0 {
			if n, err := strconv.ParseInt(e[i+1:], 10, 64); err == nil {
				sum += n
			}
		}
	}
	return sum
}

// setElems reads a predicate's member tuples.
func (a *App) setElems(tx *store.Txn, pi *predInfo) []string {
	if pi.remWins {
		return store.RWSetAt(tx, pi.key).Elems()
	}
	return store.AWSetAt(tx, pi.key).Elems()
}

// clone copies the state for post-state simulation. Truth and Nums are
// deep-copied (planning mutates them); the domain slices are shared —
// addDomain only ever appends, which either reallocates or writes past
// the original's length, so the source state never observes the change.
func (s *state) clone() *state {
	c := &state{in: logic.Interp{
		Domain: make(map[logic.Sort][]string, len(s.in.Domain)),
		Truth:  make(map[string]bool, len(s.in.Truth)),
		Nums:   make(map[string]int, len(s.in.Nums)),
		Consts: s.in.Consts,
	}}
	for k, v := range s.in.Domain {
		c.in.Domain[k] = v
	}
	for k, v := range s.in.Truth {
		c.in.Truth[k] = v
	}
	for k, v := range s.in.Nums {
		c.in.Nums[k] = v
	}
	return c
}

// addDomain registers a call argument under its parameter's sort.
func (s *state) addDomain(srt logic.Sort, el string) {
	if srt == "" {
		return
	}
	for _, have := range s.in.Domain[srt] {
		if have == el {
			return
		}
	}
	s.in.Domain[srt] = append(s.in.Domain[srt], el)
}

// trueMatches lists the true atoms of pred whose arguments match the
// pattern ("" = wildcard), as argument tuples, sorted.
func (s *state) trueMatches(pred string, pattern []string) [][]string {
	var out [][]string
	prefix := pred + "("
	keys := make([]string, 0)
	for key, v := range s.in.Truth {
		if v && strings.HasPrefix(key, prefix) && strings.HasSuffix(key, ")") {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		args := strings.Split(key[len(prefix):len(key)-1], ",")
		if len(args) != len(pattern) {
			continue
		}
		ok := true
		for i, p := range pattern {
			if p != "" && p != args[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, args)
		}
	}
	return out
}

// enumBindings enumerates all assignments of the clause variables over
// the state's domains, in deterministic order. Missing sorts yield no
// bindings (the clause is then vacuously true in this state).
func (s *state) enumBindings(vars []logic.Var) []map[string]string {
	out := []map[string]string{{}}
	for _, v := range vars {
		elems := s.in.Domain[v.Sort]
		if len(elems) == 0 {
			return nil
		}
		var next []map[string]string
		for _, env := range out {
			for _, el := range elems {
				inner := make(map[string]string, len(env)+1)
				for k, x := range env {
					inner[k] = x
				}
				inner[v.Name] = el
				next = append(next, inner)
			}
		}
		out = next
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedElems(elems []string) []string {
	out := append([]string(nil), elems...)
	sort.Strings(out)
	return out
}

// EvalClauses evaluates invariant clauses against an interpretation and
// returns the violated ones — the generic replacement for hand-written
// per-application invariant checkers.
func EvalClauses(in logic.Interp, clauses []logic.Formula) ([]logic.Formula, error) {
	var violated []logic.Formula
	for _, cl := range clauses {
		ok, err := in.Eval(cl, nil)
		if err != nil {
			return nil, err
		}
		if !ok {
			violated = append(violated, cl)
		}
	}
	return violated, nil
}

// DigestOf renders an interpretation as a canonical state digest: the
// sorted true atoms plus every numeric field value. Two replicas of a
// converged cluster digest identically; a spec-driven executor and a
// hand-coded application that reach the same specification-level state
// digest identically regardless of their key layouts.
func DigestOf(in logic.Interp) string {
	var parts []string
	for atom, v := range in.Truth {
		if v {
			parts = append(parts, atom)
		}
	}
	for key, v := range in.Nums {
		parts = append(parts, fmt.Sprintf("%s=%d", key, v))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
