package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// escrowSpec is a minimal stock application: a numeric field with a
// lower bound. The analysis flags buy ∥ buy as a numeric conflict and
// synthesises a replenish compensation; the engine materializes stock
// as a bounded escrow counter.
const escrowSpec = `
spec stockdemo

invariant forall (Item: i) :- stock(i) >= 0

operation restock(Item: i) {
    stock(i) += 5
}
operation buy(Item: i) {
    stock(i) -= 1
}
`

func mountEscrow(t *testing.T) (*App, *wan.Sim, runtime.Cluster) {
	t.Helper()
	s := spec.MustParse(escrowSpec)
	res, err := analysis.Run(s, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundRepl := false
	for _, c := range res.Compensations {
		if c.Kind == analysis.Replenish && c.Pred == "stock" {
			foundRepl = true
		}
	}
	if !foundRepl {
		t.Fatalf("no replenish compensation synthesised: %s", res.Summary())
	}
	sim := wan.NewSim(11)
	cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(), sites()))
	app, err := Mount(spec.MustParse(escrowSpec), res, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if ni := app.nums["stock"]; ni == nil || !ni.bounded || ni.bound != 0 {
		t.Fatalf("stock not materialized as a bounded counter: %+v", app.nums["stock"])
	}
	return app, sim, cluster
}

// TestBoundedCounterEscrowFastPath: the origin holding rights consumes
// without any overdraft risk, and a locally visible violation of the
// bound is refused up front.
func TestBoundedCounterEscrowFastPath(t *testing.T) {
	app, sim, cluster := mountEscrow(t)
	east := cluster.Replica(wan.USEast)

	if err := app.Call(east, "buy", "widget"); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("buy at zero stock: err = %v, want ErrPrecondition", err)
	}
	if err := app.Call(east, "restock", "widget"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := app.Call(east, "buy", "widget"); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Call(east, "buy", "widget"); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("6th buy of 5 stocked: err = %v, want ErrPrecondition", err)
	}
	sim.Run()
	for _, id := range cluster.Replicas() {
		if msgs := app.CheckQuiescent(cluster.Replica(id)); len(msgs) > 0 {
			t.Fatalf("replica %s: %v", id, msgs)
		}
	}
}

// TestPartitionedOverdraftCompensation is the §3.4 drill: two
// partitioned replicas drain the same stock — the rights holder through
// the escrow fast path, the other optimistically against its stale
// visible value — so the merged state overdrafts the bound; the
// replenish compensation restores it at read time.
func TestPartitionedOverdraftCompensation(t *testing.T) {
	app, sim, cluster := mountEscrow(t)
	east, west := cluster.Replica(wan.USEast), cluster.Replica(wan.USWest)

	if err := app.Call(east, "restock", "widget"); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	faults := cluster.(runtime.Faults)
	faults.SetPartitioned(wan.USEast, wan.USWest, true)
	faults.SetPartitioned(wan.USEast, wan.EUWest, true)
	faults.SetPartitioned(wan.USWest, wan.EUWest, true)

	// East holds the 5 granted rights: escrow consumes. West holds none
	// but still sees value 5: optimistic overdraft consumes.
	for i := 0; i < 4; i++ {
		if err := app.Call(east, "buy", "widget"); err != nil {
			t.Fatalf("east buy %d: %v", i, err)
		}
		if err := app.Call(west, "buy", "widget"); err != nil {
			t.Fatalf("west buy %d: %v", i, err)
		}
	}

	faults.SetPartitioned(wan.USEast, wan.USWest, false)
	faults.SetPartitioned(wan.USEast, wan.EUWest, false)
	faults.SetPartitioned(wan.USWest, wan.EUWest, false)
	sim.Run()

	// Merged: 5 - 8 = -3. The continuous checks stay silent (the clause
	// is read-repaired), the quiescent check sees the violation.
	if in := app.Interp(east); in.Nums["stock(widget)"] != -3 {
		t.Fatalf("merged stock = %d, want -3", in.Nums["stock(widget)"])
	}
	if msgs := app.CheckInvariants(east); len(msgs) != 0 {
		t.Fatalf("read-repaired clause leaked into the continuous checks: %v", msgs)
	}
	if msgs := app.CheckQuiescent(east); len(msgs) == 0 {
		t.Fatal("overdraft not visible to the quiescent check before repair")
	}

	// The quiescence protocol: repair everywhere, settle, twice.
	for round := 0; round < 2; round++ {
		for _, id := range cluster.Replicas() {
			app.Repair(cluster.Replica(id))
		}
		sim.Run()
	}
	var digests []string
	for _, id := range cluster.Replicas() {
		r := cluster.Replica(id)
		if msgs := app.CheckQuiescent(r); len(msgs) > 0 {
			t.Fatalf("replica %s still violated after repair: %v", id, msgs)
		}
		// Exactly-once: all three replicas repaired the same deficit from
		// the same settled state, so the ledger holds ONE entry and the
		// stock lands on the bound — not bound + 2 extra deficits.
		in := app.Interp(r)
		if in.Nums["stock(widget)"] != 0 {
			t.Fatalf("replica %s: stock = %d after replenish, want exactly 0", id, in.Nums["stock(widget)"])
		}
		digests = append(digests, app.Digest(r))
	}
	for _, d := range digests[1:] {
		if d != digests[0] {
			t.Fatalf("digests diverged after compensation: %v", digests)
		}
	}
	if !strings.Contains(digests[0], "stock(widget)=") {
		t.Fatalf("digest missing the numeric field: %s", digests[0])
	}
}

// TestReplenishUnfundedField: a field the invariant demands a positive
// floor for counts as zero even when no operation ever funded it — the
// repair must create it at the bound instead of skipping it forever.
func TestReplenishUnfundedField(t *testing.T) {
	const src = `
spec shelf

invariant forall (Item: i) :- stock(i) >= 1

operation list(Item: i) {
    item(i) := true
}
operation grant(Item: i) {
    stock(i) += 2
}
operation buy(Item: i) {
    stock(i) -= 1
}
`
	s := spec.MustParse(src)
	res, err := analysis.Run(s, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := wan.NewSim(41)
	cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(), sites()))
	app, err := Mount(spec.MustParse(src), res, cluster)
	if err != nil {
		t.Fatal(err)
	}
	east := cluster.Replica(wan.USEast)
	if err := app.Call(east, "list", "w"); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if msgs := app.CheckQuiescent(east); len(msgs) == 0 {
		t.Fatal("unfunded floor-1 field not reported before repair")
	}
	for round := 0; round < 2; round++ {
		for _, id := range cluster.Replicas() {
			app.Repair(cluster.Replica(id))
		}
		sim.Run()
	}
	for _, id := range cluster.Replicas() {
		r := cluster.Replica(id)
		if msgs := app.CheckQuiescent(r); len(msgs) > 0 {
			t.Fatalf("replica %s: violation survives repair: %v", id, msgs)
		}
		if got := app.Interp(r).Nums["stock(w)"]; got != 1 {
			t.Fatalf("replica %s: stock(w) = %d, want exactly 1", id, got)
		}
	}
}

// TestZeroArityNumericField pins the key scheme for 0-ary fields: the
// guard, the checks, and the extraction must all see the same `total`,
// with the escrow guard refusing a locally visible overdraft.
func TestZeroArityNumericField(t *testing.T) {
	const src = `
spec vault

invariant total() >= 0

operation deposit() {
    total += 5
}
operation withdraw() {
    total -= 1
}
`
	// The bare-identifier trap is rejected at mount: `total >= 0` reads
	// the always-zero constant, not the field.
	bad := spec.MustParse(strings.Replace(src, "total()", "total", 1))
	if _, err := Mount(bad, &analysis.Result{Spec: bad}, nil); err == nil ||
		!strings.Contains(err.Error(), "also a numeric field") {
		t.Fatalf("bare-constant invariant over a field accepted: %v", err)
	}

	s := spec.MustParse(src)
	res, err := analysis.Run(s, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := wan.NewSim(21)
	cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(), sites()))
	app, err := Mount(spec.MustParse(src), res, cluster)
	if err != nil {
		t.Fatal(err)
	}
	east := cluster.Replica(wan.USEast)
	if err := app.Call(east, "withdraw"); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("withdraw from empty vault: err = %v, want ErrPrecondition", err)
	}
	if err := app.Call(east, "deposit"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := app.Call(east, "withdraw"); err != nil {
			t.Fatalf("withdraw %d: %v", i, err)
		}
	}
	if err := app.Call(east, "withdraw"); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("withdraw past the bound: err = %v, want ErrPrecondition", err)
	}
	sim.Run()
	for _, id := range cluster.Replicas() {
		r := cluster.Replica(id)
		if msgs := app.CheckQuiescent(r); len(msgs) > 0 {
			t.Fatalf("replica %s: %v", id, msgs)
		}
		if got := app.Interp(r).Nums["total"]; got != 0 {
			t.Fatalf("replica %s: total = %d, want 0 (interp: %v)", id, got, app.Interp(r).Nums)
		}
	}
}

// TestTrimExcessSellsThrough pins the Fig. 3 count-bound semantics: a
// trim-compensated aggregate bound does NOT guard the origin — sales
// continue past the limit and the read-time repair trims back to it.
func TestTrimExcessSellsThrough(t *testing.T) {
	const src = `
spec gig

const Cap = 2

invariant forall (Ticket: k, Event: e) :- sold(k, e) => event(e)
invariant forall (Event: e) :- #sold(*, e) <= Cap

operation add_event(Event: e) {
    event(e) := true
}
operation buy(Ticket: k, Event: e) {
    sold(k, e) := true
}
`
	s := spec.MustParse(src)
	res, err := analysis.Run(s, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trim := false
	for _, c := range res.Compensations {
		if c.Kind == analysis.TrimExcess && c.Pred == "sold" {
			trim = true
		}
	}
	if !trim {
		t.Fatalf("no trim compensation synthesised: %s", res.Summary())
	}
	sim := wan.NewSim(31)
	cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(), sites()))
	app, err := Mount(spec.MustParse(src), res, cluster)
	if err != nil {
		t.Fatal(err)
	}
	east := cluster.Replica(wan.USEast)
	if err := app.Call(east, "add_event", "show"); err != nil {
		t.Fatal(err)
	}
	// Four sales against capacity 2: every one must execute (the bound
	// is compensated at read time, not guarded at the origin).
	for _, k := range []string{"k1", "k2", "k3", "k4"} {
		if err := app.Call(east, "buy", k, "show"); err != nil {
			t.Fatalf("buy %s: %v", k, err)
		}
	}
	sim.Run()
	if msgs := app.CheckInvariants(east); len(msgs) != 0 {
		t.Fatalf("count bound leaked into the continuous checks: %v", msgs)
	}
	if msgs := app.CheckQuiescent(east); len(msgs) == 0 {
		t.Fatal("oversell invisible to the quiescent check before repair")
	}
	for round := 0; round < 2; round++ {
		for _, id := range cluster.Replicas() {
			app.Repair(cluster.Replica(id))
		}
		sim.Run()
	}
	var digests []string
	for _, id := range cluster.Replicas() {
		r := cluster.Replica(id)
		if msgs := app.CheckQuiescent(r); len(msgs) > 0 {
			t.Fatalf("replica %s still oversold after repair: %v", id, msgs)
		}
		n := 0
		for atom, v := range app.Interp(r).Truth {
			if v && strings.HasPrefix(atom, "sold(") {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("replica %s: %d tickets after trim, want 2", id, n)
		}
		digests = append(digests, app.Digest(r))
	}
	for _, d := range digests[1:] {
		if d != digests[0] {
			t.Fatalf("digests diverged after trim: %v", digests)
		}
	}
}

// TestReplenishIsDeterministic re-runs the overdraft schedule and
// requires bit-identical digests: compensations are a pure function of
// the observed state.
func TestReplenishIsDeterministic(t *testing.T) {
	run := func() string {
		app, sim, cluster := mountEscrow(t)
		east, west := cluster.Replica(wan.USEast), cluster.Replica(wan.USWest)
		if err := app.Call(east, "restock", "w"); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		faults := cluster.(runtime.Faults)
		faults.SetPartitioned(wan.USEast, wan.USWest, true)
		for i := 0; i < 3; i++ {
			must := func(err error) {
				if err != nil {
					t.Fatal(err)
				}
			}
			must(app.Call(east, "buy", "w"))
			must(app.Call(west, "buy", "w"))
		}
		faults.SetPartitioned(wan.USEast, wan.USWest, false)
		sim.Run()
		for round := 0; round < 2; round++ {
			for _, id := range cluster.Replicas() {
				app.Repair(cluster.Replica(id))
			}
			sim.Run()
		}
		return app.Digest(east)
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("replenish nondeterministic:\n%s\nvs\n%s", d1, d2)
	}
	if d1 == "" {
		t.Fatal(fmt.Errorf("empty digest"))
	}
}
