package engine

import (
	"fmt"
	"testing"

	"ipa/internal/apps/tournament"
	"ipa/internal/clock"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// benchApp mounts the tournament spec on a fresh two-replica sim
// cluster and seeds a mid-sized serving state: players, tournaments,
// and enrolments, settled across both replicas.
func benchApp(b *testing.B, opts ...MountOption) (*App, runtime.Replica, *wan.Sim) {
	b.Helper()
	sim := wan.NewSim(1)
	cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(),
		[]clock.ReplicaID{"a", "b"}))
	app, err := Mount(tournament.Spec(), tournament.Analysis(), cluster, opts...)
	if err != nil {
		b.Fatal(err)
	}
	r := cluster.Replica("a")
	for i := 0; i < 16; i++ {
		if err := app.Call(r, "add_player", fmt.Sprintf("p%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		t := fmt.Sprintf("t%d", i)
		if err := app.Call(r, "add_tourn", t); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			if err := app.Call(r, "enroll", fmt.Sprintf("p%d", (i+j)%16), t); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := app.Call(r, "begin_tourn", "t0"); err != nil {
		b.Fatal(err)
	}
	sim.Run()
	return app, r, sim
}

// BenchmarkEngineExtract measures state extraction per call: the full
// whole-state read of the reference executor vs the compiled footprint
// of a representative operation.
func BenchmarkEngineExtract(b *testing.B) {
	app, r, _ := benchApp(b)
	co := app.ops["enroll"]
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tx := r.Begin()
			app.extract(tx, nil)
			tx.Commit()
		}
	})
	b.Run("scoped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tx := r.Begin()
			app.extract(tx, co.plan.fp)
			tx.Commit()
		}
	})
}

// BenchmarkEnginePlan measures effect planning (grounding, post-state
// simulation, explicit preconditions) against an extracted state.
func BenchmarkEnginePlan(b *testing.B) {
	app, r, _ := benchApp(b)
	co := app.ops["enroll"]
	binding := map[string]string{"p": "p3", "t": "t2"}
	tx := r.Begin()
	pre := app.extract(tx, co.plan.fp)
	tx.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := app.plan(co, pre.clone(), binding); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineGuard measures the no-new-violation guard: the
// reference full cross-product enumeration vs the compiled
// trigger-restricted enumeration, on the same planned call.
func BenchmarkEngineGuard(b *testing.B) {
	app, r, _ := benchApp(b)
	co := app.ops["enroll"]
	binding := map[string]string{"p": "p3", "t": "t2"}
	tx := r.Begin()
	pre := app.extract(tx, nil)
	tx.Commit()
	_, post, changes, err := app.plan(co, pre, binding)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := app.guardFull(co, pre, post); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := app.guardCompiled(co, pre, post, changes); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineCall measures the end-to-end call path on both
// executors (idempotent enroll on a settled state).
func BenchmarkEngineCall(b *testing.B) {
	b.Run("compiled", func(b *testing.B) {
		app, r, _ := benchApp(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := app.Call(r, "enroll", "p3", "t2"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		app, r, _ := benchApp(b, WithInterpreter())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := app.Call(r, "enroll", "p3", "t2"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
