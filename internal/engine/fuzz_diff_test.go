package engine

import (
	"errors"
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// FuzzCompiledVsInterpreted is the differential executor fuzz: the same
// spec mounted twice — once on the compiled per-operation plans, once on
// the whole-state reference interpreter — must behave identically on any
// call sequence. Identical means call-by-call equal outcomes (success or
// failure, ErrPrecondition-ness, and the error message, since refusal
// errors are deterministic) and equal digests on every replica after the
// sequence settles. This is the executable form of the compilation
// pass's correctness argument; a mismatch here is a compiler bug even
// when every invariant still holds.
func FuzzCompiledVsInterpreted(f *testing.F) {
	f.Add(escrowSpec, []byte{0, 1, 2, 3, 250, 7, 9})
	f.Add(`
spec mini

invariant forall (A: x) :- q(x) => p(x)

operation mk(A: x) {
    p(x) := true
}
operation link(A: x) {
    requires p(x)
    q(x) := true
}
operation rm(A: x) {
    p(x) := false
}
`, []byte{0, 3, 1, 4, 2, 5, 0, 1, 2, 2, 1, 0})
	f.Add("spec s\nrule w rem-wins\noperation f(A: x) {\n w(x, *) := false\n}\noperation g(A: x) {\n w(x, x) := true\n}",
		[]byte{1, 0, 1, 1, 0, 0, 9, 8})
	f.Add("spec s\nconst K = 2\ninvariant forall (A: x) :- #p(*) <= K\noperation f(A: x) {\n p(x) := true\n}",
		[]byte{0, 1, 2, 3, 4, 5})
	f.Add("spec s\noperation f(A: x) {\n n(x) += 3\n n(x) -= 1\n}", []byte{0, 0, 1})

	f.Fuzz(func(t *testing.T, src string, seq []byte) {
		s, err := spec.Parse(src)
		if err != nil {
			return
		}
		// The analysis is exponential in scope and operation count; run it
		// only for small specs (mirrors FuzzMount). The differential check
		// matters most WITH analysis output: patches, ensures, and
		// cascades are what the compiled plans must reproduce.
		res := &analysis.Result{Spec: s}
		if len(src) <= 400 && len(s.Operations) <= 3 && len(logic.Clauses(s.Invariant())) <= 3 {
			if full, err := analysis.Run(s, analysis.Options{Scope: 2, MaxRepairPreds: 1, MaxIters: 4}); err == nil {
				res = full
			}
		}
		mount := func(opts ...MountOption) (*App, *wan.Sim, []runtime.Replica, error) {
			sim := wan.NewSim(1)
			cluster := runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(),
				[]clock.ReplicaID{"a", "b"}))
			app, err := Mount(s, res, cluster, opts...)
			if err != nil {
				return nil, nil, nil, err
			}
			return app, sim, []runtime.Replica{cluster.Replica("a"), cluster.Replica("b")}, nil
		}
		compiled, csim, creps, err := mount()
		if err != nil {
			return
		}
		interp, isim, ireps, err := mount(WithInterpreter())
		if err != nil {
			t.Fatalf("interpreter mount failed where compiled mount succeeded: %v", err)
		}

		// Drive both executors through the same byte-derived call sequence.
		opNames := compiled.Operations()
		args := []string{"x0", "x1", "x2", "x3"}
		for i := 0; i+1 < len(seq) && i < 64; i += 2 {
			name := opNames[int(seq[i])%len(opNames)]
			op, _ := compiled.Spec().Operation(name)
			if len(op.Params) > len(args) {
				continue
			}
			site := int(seq[i+1]) % 2
			callArgs := make([]string, len(op.Params))
			for j := range callArgs {
				callArgs[j] = args[(int(seq[i+1])+j)%len(args)]
			}
			cerr := compiled.Call(creps[site], name, callArgs...)
			ierr := interp.Call(ireps[site], name, callArgs...)
			if (cerr == nil) != (ierr == nil) ||
				errors.Is(cerr, ErrPrecondition) != errors.Is(ierr, ErrPrecondition) {
				t.Fatalf("call %d %s%v diverged: compiled=%v interpreted=%v", i/2, name, callArgs, cerr, ierr)
			}
			if cerr != nil && cerr.Error() != ierr.Error() {
				t.Fatalf("call %d %s%v error text diverged:\ncompiled:    %v\ninterpreted: %v",
					i/2, name, callArgs, cerr, ierr)
			}
			// Interleave replication like the serving loop does, so later
			// calls run against merged states too.
			if seq[i+1]%3 == 0 {
				csim.Run()
				isim.Run()
			}
		}
		csim.Run()
		isim.Run()
		for i := range creps {
			cd, id := compiled.Digest(creps[i]), interp.Digest(ireps[i])
			if cd != id {
				t.Fatalf("replica %d digests diverged after settle:\ncompiled:    %s\ninterpreted: %s", i, cd, id)
			}
		}
	})
}
