package indigo

import (
	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

// Escrow manages numeric reservations (O'Neil's escrow method [35], the
// Indigo/bounded-counter approach of Balegas et al. [11]): the right to
// decrement a bounded quantity — tickets, stock — is split into
// per-replica rights backed by a crdt.BoundedCounter. A replica holding
// enough local rights consumes them with zero coordination; otherwise it
// must transfer rights from a reachable peer, paying a wide-area round
// trip. When no peer has spare rights the operation fails — the quantity
// is exhausted (or unreachable), which is exactly the invariant being
// protected.
type Escrow struct {
	lat      *wan.Latency
	replicas []clock.ReplicaID
	counters map[string]*crdt.BoundedCounter
	clock    clock.Vector

	// Partitioned mirrors Manager.Partitioned.
	Partitioned func(a, b clock.ReplicaID) bool

	// Stats
	Consumes  uint64
	Transfers uint64
	Denied    uint64
}

// NewEscrow creates an escrow manager.
func NewEscrow(lat *wan.Latency, replicas []clock.ReplicaID) *Escrow {
	return &Escrow{
		lat:      lat,
		replicas: append([]clock.ReplicaID(nil), replicas...),
		counters: map[string]*crdt.BoundedCounter{},
		clock:    clock.New(),
	}
}

// Create initialises a resource with total units split evenly across the
// replicas (the usual initial rights distribution).
func (e *Escrow) Create(resource string, total int64) {
	per := total / int64(len(e.replicas))
	rights := map[clock.ReplicaID]int64{}
	rem := total
	for i, r := range e.replicas {
		n := per
		if i == len(e.replicas)-1 {
			n = rem
		}
		rights[r] = n
		rem -= n
	}
	e.counters[resource] = crdt.NewBoundedCounter(rights)
}

// Remaining returns the global remaining units of the resource.
func (e *Escrow) Remaining(resource string) int64 {
	c, ok := e.counters[resource]
	if !ok {
		return 0
	}
	return c.Value()
}

// LocalRights returns the units replica id can consume without
// coordination.
func (e *Escrow) LocalRights(resource string, id clock.ReplicaID) int64 {
	c, ok := e.counters[resource]
	if !ok {
		return 0
	}
	return c.Local(id)
}

// Consume takes n units at replica id. It returns the coordination
// latency paid (zero on the local fast path) and whether the consume
// succeeded. On the slow path rights are transferred from the reachable
// peer with the most spare rights.
func (e *Escrow) Consume(resource string, id clock.ReplicaID, n int64) (wan.Time, bool) {
	e.Consumes++
	c, ok := e.counters[resource]
	if !ok {
		e.Denied++
		return 0, false
	}
	var delay wan.Time
	if c.Local(id) < n {
		// Find the richest reachable peer and transfer what we need.
		var donor clock.ReplicaID
		var best int64
		for _, r := range e.replicas {
			if r == id {
				continue
			}
			if e.Partitioned != nil && e.Partitioned(id, r) {
				continue
			}
			if spare := c.Local(r); spare > best {
				best, donor = spare, r
			}
		}
		need := n - c.Local(id)
		if donor == "" || best < need {
			e.Denied++
			return 0, false // exhausted or unreachable
		}
		// Transfer a chunk (the deficit plus a half of the donor's spare,
		// so repeated consumes amortise the round trip — the "exchange
		// infrequently" behaviour the paper highlights).
		amount := need + (best-need)/2
		op, ok := c.PrepareTransfer(donor, id, amount, e.tick(donor))
		if !ok {
			e.Denied++
			return 0, false
		}
		c.Apply(op)
		e.Transfers++
		delay = e.lat.RTT(string(id), string(donor))
	}
	op, ok := c.PrepareConsume(id, n, e.tick(id))
	if !ok {
		e.Denied++
		return delay, false
	}
	c.Apply(op)
	return delay, true
}

// Refund returns n units to replica id (a cancelled purchase).
func (e *Escrow) Refund(resource string, id clock.ReplicaID, n int64) {
	c, ok := e.counters[resource]
	if !ok {
		return
	}
	c.Apply(c.PrepareGrant(id, n, e.tick(id)))
}

func (e *Escrow) tick(r clock.ReplicaID) clock.EventID {
	return e.clock.Tick(r)
}
