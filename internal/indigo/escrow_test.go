package indigo

import (
	"testing"

	"ipa/internal/clock"
	"ipa/internal/wan"
)

func newEscrow(total int64) *Escrow {
	e := NewEscrow(wan.PaperTopology(), []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest})
	e.Create("tickets", total)
	return e
}

func TestEscrowSplitsRights(t *testing.T) {
	e := newEscrow(9)
	if e.Remaining("tickets") != 9 {
		t.Fatalf("remaining = %d", e.Remaining("tickets"))
	}
	for _, r := range []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest} {
		if e.LocalRights("tickets", r) != 3 {
			t.Fatalf("%s rights = %d", r, e.LocalRights("tickets", r))
		}
	}
}

func TestEscrowLocalFastPath(t *testing.T) {
	e := newEscrow(9)
	d, ok := e.Consume("tickets", wan.USEast, 2)
	if !ok || d != 0 {
		t.Fatalf("local consume: d=%v ok=%v", d, ok)
	}
	if e.LocalRights("tickets", wan.USEast) != 1 {
		t.Fatal("rights not consumed")
	}
	if e.Remaining("tickets") != 7 {
		t.Fatal("global value wrong")
	}
}

func TestEscrowTransferOnDeficit(t *testing.T) {
	e := newEscrow(9)
	// Drain east's rights, then one more: must transfer, paying an RTT.
	e.Consume("tickets", wan.USEast, 3)
	d, ok := e.Consume("tickets", wan.USEast, 1)
	if !ok {
		t.Fatal("transfer consume should succeed")
	}
	if d != wan.Ms(80) {
		t.Fatalf("transfer cost = %v, want 80ms (nearest-rich peer)", d.Millis())
	}
	if e.Transfers != 1 {
		t.Fatalf("transfers = %d", e.Transfers)
	}
	// The chunked transfer left spare local rights: next consume is free.
	d2, ok := e.Consume("tickets", wan.USEast, 1)
	if !ok || d2 != 0 {
		t.Fatalf("amortised consume: d=%v ok=%v", d2, ok)
	}
}

func TestEscrowExhaustionDenied(t *testing.T) {
	e := newEscrow(3)
	for i := 0; i < 3; i++ {
		if _, ok := e.Consume("tickets", wan.USEast, 1); !ok {
			t.Fatalf("consume %d should succeed", i)
		}
	}
	if _, ok := e.Consume("tickets", wan.USEast, 1); ok {
		t.Fatal("exhausted resource must deny")
	}
	if e.Remaining("tickets") != 0 {
		t.Fatalf("remaining = %d", e.Remaining("tickets"))
	}
	if e.Denied == 0 {
		t.Fatal("denial not counted")
	}
	// THE invariant: never negative, no overselling — ever.
	if e.Remaining("tickets") < 0 {
		t.Fatal("escrow oversold")
	}
}

func TestEscrowPartitionDenies(t *testing.T) {
	e := newEscrow(9)
	e.Consume("tickets", wan.EUWest, 3) // eu-west out of local rights
	e.Partitioned = func(a, b clock.ReplicaID) bool { return a == wan.EUWest || b == wan.EUWest }
	if _, ok := e.Consume("tickets", wan.EUWest, 1); ok {
		t.Fatal("isolated replica without rights must be denied")
	}
	// Other replicas with local rights continue unaffected.
	if _, ok := e.Consume("tickets", wan.USEast, 1); !ok {
		t.Fatal("east should still work")
	}
	// Heal: eu-west can transfer again.
	e.Partitioned = nil
	if _, ok := e.Consume("tickets", wan.EUWest, 1); !ok {
		t.Fatal("consume after heal should succeed")
	}
}

func TestEscrowRefund(t *testing.T) {
	e := newEscrow(3)
	e.Consume("tickets", wan.USEast, 1)
	e.Refund("tickets", wan.USEast, 1)
	if e.Remaining("tickets") != 3 {
		t.Fatalf("remaining after refund = %d", e.Remaining("tickets"))
	}
}

func TestEscrowUnknownResource(t *testing.T) {
	e := newEscrow(3)
	if _, ok := e.Consume("ghost", wan.USEast, 1); ok {
		t.Fatal("unknown resource must deny")
	}
	if e.Remaining("ghost") != 0 || e.LocalRights("ghost", wan.USEast) != 0 {
		t.Fatal("unknown resource should read as zero")
	}
	e.Refund("ghost", wan.USEast, 1) // must not panic
}

// Escrow never oversells regardless of the consume/transfer interleaving.
func TestEscrowNeverOversells(t *testing.T) {
	reps := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	for seed := 0; seed < 20; seed++ {
		e := newEscrow(30)
		granted := int64(0)
		rng := newRand(seed)
		for i := 0; i < 200; i++ {
			r := reps[rng.Intn(len(reps))]
			if _, ok := e.Consume("tickets", r, 1); ok {
				granted++
			}
		}
		if granted > 30 {
			t.Fatalf("seed %d: oversold: granted %d of 30", seed, granted)
		}
		if granted != 30 {
			t.Fatalf("seed %d: undersold without partitions: %d of 30", seed, granted)
		}
	}
}

// newRand is a tiny deterministic PRNG to avoid importing math/rand in
// multiple test files with conflicting seeds.
type lcg struct{ s uint64 }

func newRand(seed int) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) Intn(n int) int {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return int((l.s >> 33) % uint64(n))
}
