// Package indigo models the coordination baseline the paper compares
// against (Balegas et al., "Putting consistency back into eventual
// consistency" [10]): invariant violations are avoided, rather than
// repaired, by protecting conflicting operation pairs with reservations.
//
// A reservation is a multi-level lock replicated across data centers. A
// replica that already holds the right it needs executes locally at causal
// speed; otherwise it must obtain the right from its current holders,
// which costs a pairwise wide-area round trip (and, for exclusive rights,
// a revocation round to every holder). Rights stick with their holder
// until another replica demands them, so workloads with low contention
// pay almost nothing (paper §5.2.2) while contended workloads see latency
// rise steeply with the competing fraction (paper Fig. 9).
//
// The model exposes the latency cost of each acquisition; the benchmark
// driver charges it to the operation and advances the simulation, which
// reproduces the coordination penalty without simulating the lock
// protocol's message contents.
package indigo

import (
	"fmt"

	"ipa/internal/clock"
	"ipa/internal/wan"
)

// Mode is the strength of a reservation right.
type Mode uint8

// Reservation modes.
const (
	// Shared rights may be held by many replicas at once (e.g. the right
	// to enroll players into an existing tournament).
	Shared Mode = iota
	// Exclusive rights revoke every other holder (e.g. the right to
	// remove the tournament).
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "exclusive"
	}
	return "shared"
}

// Manager tracks reservation state for one deployment.
type Manager struct {
	lat      *wan.Latency
	replicas []clock.ReplicaID
	res      map[string]*reservation

	// Partitioned reports whether two replicas cannot currently reach
	// each other; acquisitions that must contact an unreachable holder
	// fail (the paper's availability argument against coordination).
	Partitioned func(a, b clock.ReplicaID) bool

	// Stats
	Acquisitions uint64
	Transfers    uint64
	Revocations  uint64
}

type reservation struct {
	holders map[clock.ReplicaID]Mode
}

// NewManager creates a manager over the given replicas. Initially every
// reservation is held shared by its first accessor's... nothing: rights
// materialise on first acquisition, granted to the requester for free (the
// system hands out initial rights at object creation).
func NewManager(lat *wan.Latency, replicas []clock.ReplicaID) *Manager {
	return &Manager{lat: lat, replicas: append([]clock.ReplicaID(nil), replicas...), res: map[string]*reservation{}}
}

// GrantInitial seeds a reservation with shared rights at every replica —
// the common starting state for rarely-conflicting operations.
func (m *Manager) GrantInitial(name string) {
	r := &reservation{holders: map[clock.ReplicaID]Mode{}}
	for _, id := range m.replicas {
		r.holders[id] = Shared
	}
	m.res[name] = r
}

// Holds reports whether replica id holds the reservation with at least
// the given mode.
func (m *Manager) Holds(name string, id clock.ReplicaID, mode Mode) bool {
	r, ok := m.res[name]
	if !ok {
		return false
	}
	h, ok := r.holders[id]
	if !ok {
		return false
	}
	return mode == Shared || h == Exclusive
}

// Acquire obtains the reservation for replica id in the given mode. It
// returns the wide-area latency the acquisition costs and whether it
// succeeded (it fails only when a needed holder is partitioned away).
// Costs:
//   - already held in a sufficient mode: 0 (the fast path Indigo banks on);
//   - shared right fetched from the nearest holder: one RTT to it;
//   - exclusive right: one RTT to the farthest other holder (revocations
//     proceed in parallel).
func (m *Manager) Acquire(name string, id clock.ReplicaID, mode Mode) (wan.Time, bool) {
	m.Acquisitions++
	r, ok := m.res[name]
	if !ok {
		// First accessor materialises the reservation and gets the right.
		r = &reservation{holders: map[clock.ReplicaID]Mode{id: mode}}
		m.res[name] = r
		return 0, true
	}
	if h, held := r.holders[id]; held && (mode == Shared || h == Exclusive) {
		if mode == Exclusive && len(r.holders) > 1 {
			// Holding exclusive implies sole ownership; holding shared and
			// wanting exclusive falls through to revocation below.
			if h == Exclusive {
				return 0, true
			}
		} else {
			return 0, true
		}
	}

	switch mode {
	case Shared:
		// Fetch from the nearest reachable holder.
		best := wan.Time(-1)
		for holder := range r.holders {
			if holder == id {
				continue
			}
			if m.Partitioned != nil && m.Partitioned(id, holder) {
				continue
			}
			rtt := m.lat.RTT(string(id), string(holder))
			if best < 0 || rtt < best {
				best = rtt
			}
		}
		if best < 0 {
			if len(r.holders) == 0 {
				r.holders[id] = Shared
				return 0, true
			}
			return 0, false // all holders unreachable
		}
		m.Transfers++
		r.holders[id] = Shared
		return best, true

	case Exclusive:
		// Revoke every other holder; cost is the farthest reachable RTT.
		worst := wan.Time(0)
		for holder := range r.holders {
			if holder == id {
				continue
			}
			if m.Partitioned != nil && m.Partitioned(id, holder) {
				return 0, false // cannot revoke an unreachable holder
			}
			rtt := m.lat.RTT(string(id), string(holder))
			if rtt > worst {
				worst = rtt
			}
			m.Revocations++
		}
		r.holders = map[clock.ReplicaID]Mode{id: Exclusive}
		if worst > 0 {
			m.Transfers++
		}
		return worst, true
	}
	return 0, false
}

// Release downgrades an exclusive right back to shared, letting other
// replicas reacquire cheaply.
func (m *Manager) Release(name string, id clock.ReplicaID) {
	r, ok := m.res[name]
	if !ok {
		return
	}
	if r.holders[id] == Exclusive {
		r.holders[id] = Shared
	}
}

// Holders returns a copy of the holder map (diagnostics).
func (m *Manager) Holders(name string) map[clock.ReplicaID]Mode {
	r, ok := m.res[name]
	if !ok {
		return nil
	}
	out := make(map[clock.ReplicaID]Mode, len(r.holders))
	for k, v := range r.holders {
		out[k] = v
	}
	return out
}

func (m *Manager) String() string {
	return fmt.Sprintf("indigo.Manager{reservations: %d, acquisitions: %d, transfers: %d}",
		len(m.res), m.Acquisitions, m.Transfers)
}
