package indigo

import (
	"testing"

	"ipa/internal/clock"
	"ipa/internal/wan"
)

func newManager() *Manager {
	return NewManager(wan.PaperTopology(), []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest})
}

func TestFirstAcquisitionIsFree(t *testing.T) {
	m := newManager()
	d, ok := m.Acquire("r1", wan.USEast, Shared)
	if !ok || d != 0 {
		t.Fatalf("first acquire: d=%v ok=%v", d, ok)
	}
	// Re-acquire by the same replica: free.
	d, ok = m.Acquire("r1", wan.USEast, Shared)
	if !ok || d != 0 {
		t.Fatalf("re-acquire: d=%v ok=%v", d, ok)
	}
}

func TestSharedFetchCostsNearestRTT(t *testing.T) {
	m := newManager()
	m.Acquire("r", wan.USEast, Shared)
	// eu-west fetches from us-east: 80ms RTT.
	d, ok := m.Acquire("r", wan.EUWest, Shared)
	if !ok || d != wan.Ms(80) {
		t.Fatalf("d=%v ok=%v, want 80ms", d.Millis(), ok)
	}
	// Now us-west fetches; nearest holder is us-east (80ms) vs eu-west
	// (160ms): pays 80.
	d, ok = m.Acquire("r", wan.USWest, Shared)
	if !ok || d != wan.Ms(80) {
		t.Fatalf("d=%v, want 80ms", d.Millis())
	}
	// All three hold shared now: everyone's fast path.
	for _, id := range []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest} {
		if d, _ := m.Acquire("r", id, Shared); d != 0 {
			t.Fatalf("%s should hold shared", id)
		}
	}
}

func TestExclusiveRevokesAll(t *testing.T) {
	m := newManager()
	m.GrantInitial("r")
	// us-west demands exclusive: revokes us-east (80) and eu-west (160) in
	// parallel -> 160ms.
	d, ok := m.Acquire("r", wan.USWest, Exclusive)
	if !ok || d != wan.Ms(160) {
		t.Fatalf("d=%v ok=%v, want 160ms", d.Millis(), ok)
	}
	if !m.Holds("r", wan.USWest, Exclusive) {
		t.Fatal("us-west should hold exclusive")
	}
	if m.Holds("r", wan.USEast, Shared) {
		t.Fatal("us-east should be revoked")
	}
	// Exclusive holder re-acquires free.
	if d, _ := m.Acquire("r", wan.USWest, Exclusive); d != 0 {
		t.Fatal("exclusive holder should be free")
	}
	// Another replica's shared acquire fetches from the exclusive holder.
	d, ok = m.Acquire("r", wan.USEast, Shared)
	if !ok || d != wan.Ms(80) {
		t.Fatalf("shared after exclusive: %v", d.Millis())
	}
}

func TestReleaseDowngrades(t *testing.T) {
	m := newManager()
	m.Acquire("r", wan.USEast, Exclusive)
	m.Release("r", wan.USEast)
	if m.Holds("r", wan.USEast, Exclusive) {
		t.Fatal("release should downgrade to shared")
	}
	if !m.Holds("r", wan.USEast, Shared) {
		t.Fatal("shared right should remain")
	}
}

func TestSharedThenExclusiveUpgrade(t *testing.T) {
	m := newManager()
	m.GrantInitial("r")
	// us-east upgrades shared->exclusive: revokes the other two.
	d, ok := m.Acquire("r", wan.USEast, Exclusive)
	if !ok || d != wan.Ms(80) {
		t.Fatalf("upgrade cost = %v, want 80ms (both peers at 80)", d.Millis())
	}
	if len(m.Holders("r")) != 1 {
		t.Fatalf("holders = %v", m.Holders("r"))
	}
}

func TestPartitionBlocksAcquisition(t *testing.T) {
	m := newManager()
	m.GrantInitial("r")
	cut := map[clock.ReplicaID]bool{wan.EUWest: true}
	m.Partitioned = func(a, b clock.ReplicaID) bool { return cut[a] || cut[b] }

	// eu-west is isolated: it cannot revoke others for exclusive.
	if _, ok := m.Acquire("r", wan.EUWest, Exclusive); ok {
		t.Fatal("exclusive across a partition must fail")
	}
	// Its own shared fast path still works (already a holder).
	if d, ok := m.Acquire("r", wan.EUWest, Shared); !ok || d != 0 {
		t.Fatal("local shared right should survive the partition")
	}
	// us-east demanding exclusive cannot revoke the unreachable eu-west.
	if _, ok := m.Acquire("r", wan.USEast, Exclusive); ok {
		t.Fatal("exclusive must fail while a holder is unreachable")
	}
	// Heal: works again.
	m.Partitioned = nil
	if _, ok := m.Acquire("r", wan.USEast, Exclusive); !ok {
		t.Fatal("exclusive should succeed after heal")
	}
}

func TestSharedFetchWithAllHoldersPartitioned(t *testing.T) {
	m := newManager()
	m.Acquire("r", wan.USEast, Shared)
	m.Partitioned = func(a, b clock.ReplicaID) bool { return true }
	if _, ok := m.Acquire("r", wan.USWest, Shared); ok {
		t.Fatal("shared fetch must fail when every holder is unreachable")
	}
}

func TestStats(t *testing.T) {
	m := newManager()
	m.GrantInitial("r")
	m.Acquire("r", wan.USEast, Shared)    // free
	m.Acquire("r", wan.USWest, Exclusive) // revokes 2
	if m.Acquisitions != 2 {
		t.Fatalf("acquisitions = %d", m.Acquisitions)
	}
	if m.Revocations != 2 {
		t.Fatalf("revocations = %d", m.Revocations)
	}
	if m.Transfers != 1 {
		t.Fatalf("transfers = %d", m.Transfers)
	}
	if m.String() == "" {
		t.Fatal("String")
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatal("mode strings")
	}
}
