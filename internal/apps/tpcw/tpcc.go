package tpcw

import (
	"fmt"
	"sort"
	"strconv"

	"ipa/internal/crdt"
	"ipa/internal/runtime"
	"ipa/internal/store"
)

// TPC-C-style transactions layered on the same storefront state: a
// multi-item NewOrder (every line decrements a stock counter and records
// an order line atomically — the highly-available-transaction guarantee
// keeps the order internally consistent at every replica), Payment
// (customer balance counter), and Delivery (order status register).
//
// These exercise the paper's observation that standard benchmarks lack
// listing management: NewOrder under IPA touches every ordered product so
// concurrent delistings cannot strand order lines, and the stock lower
// bound is protected by the restock compensation of ReadStock.

// Object keys for the TPC-C-style state.
const (
	KeyCustomers = "tpcw/customers"
)

func balanceKey(customer string) string { return "tpcw/balance/" + customer }
func orderKey(order string) string      { return "tpcw/order/" + order }
func statusKey(order string) string     { return "tpcw/status/" + order }

// OrderKey returns the order-lines set key of an order — exported so
// checkers can read an order's index entries and its lines inside one
// transaction (a transaction-consistent snapshot; two separate
// transactions could straddle a remote NewOrder group).
func OrderKey(order string) string { return orderKey(order) }

// OrderLine is one item/quantity pair of a NewOrder.
type OrderLine struct {
	Item string
	Qty  int64
}

// AddCustomer registers a customer with an initial balance.
func (a *App) AddCustomer(r runtime.Replica, customer string, balance int64) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyCustomers).Add(customer, "")
	store.CounterAt(tx, balanceKey(customer)).Add(balance)
	tx.Commit()
	return tx
}

// NewOrder places a multi-line order atomically: order lines, per-item
// stock decrements, and (IPA) product touches all commit in one
// transaction and integrate atomically at every replica.
func (a *App) NewOrder(r runtime.Replica, customer, order string, lines []OrderLine) *store.Txn {
	tx := r.Begin()
	olSet := store.AWSetAt(tx, orderKey(order))
	for _, l := range lines {
		store.AWSetAt(tx, KeyOrders).Add(crdt.JoinTuple(order, l.Item), "")
		olSet.Add(crdt.JoinTuple(l.Item, strconv.FormatInt(l.Qty, 10)), "")
		store.CounterAt(tx, stockKey(l.Item)).Add(-l.Qty)
		if a.variant == IPA {
			store.AWSetAt(tx, KeyProducts).Touch(l.Item)
		}
	}
	store.RegisterAt(tx, statusKey(order)).Set("new")
	tx.Commit()
	return tx
}

// OrderLines reads back an order's lines at replica r.
func (a *App) OrderLines(r runtime.Replica, order string) []OrderLine {
	tx := r.Begin()
	defer tx.Commit()
	var out []OrderLine
	for _, e := range store.AWSetAt(tx, orderKey(order)).Elems() {
		parts := crdt.SplitTuple(e)
		qty, _ := strconv.ParseInt(parts[1], 10, 64)
		out = append(out, OrderLine{Item: parts[0], Qty: qty})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	return out
}

// Payment debits the customer's balance.
func (a *App) Payment(r runtime.Replica, customer string, amount int64) *store.Txn {
	tx := r.Begin()
	store.CounterAt(tx, balanceKey(customer)).Add(-amount)
	tx.Commit()
	return tx
}

// Balance reads the customer's balance at replica r.
func (a *App) Balance(r runtime.Replica, customer string) int64 {
	tx := r.Begin()
	defer tx.Commit()
	return store.CounterAt(tx, balanceKey(customer)).Value()
}

// Deliver marks the order delivered. Status is a last-writer-wins
// register: concurrent deliveries converge to one value everywhere.
func (a *App) Deliver(r runtime.Replica, order string) *store.Txn {
	tx := r.Begin()
	store.RegisterAt(tx, statusKey(order)).Set("delivered")
	tx.Commit()
	return tx
}

// OrderStatus reads an order's status at replica r.
func (a *App) OrderStatus(r runtime.Replica, order string) string {
	tx := r.Begin()
	defer tx.Commit()
	v, _ := store.RegisterAt(tx, statusKey(order)).Value()
	return v
}

// OrderConsistent checks the atomicity guarantee at one replica: either
// the order is entirely visible (entry, lines, status) or entirely
// absent. Returns an error description when a partial order is visible.
func (a *App) OrderConsistent(r runtime.Replica, order string, wantLines int) (bool, string) {
	tx := r.Begin()
	defer tx.Commit()
	entries := len(store.AWSetAt(tx, KeyOrders).ElemsWhere(crdt.Match{Index: 0, Value: order}))
	lines := store.AWSetAt(tx, orderKey(order)).Size()
	status, hasStatus := store.RegisterAt(tx, statusKey(order)).Value()
	if entries == 0 && lines == 0 && !hasStatus {
		return true, "" // entirely absent
	}
	if entries == wantLines && lines == wantLines && hasStatus && status != "" {
		return true, ""
	}
	return false, fmt.Sprintf("partial order: entries=%d lines=%d/%d status=%q", entries, lines, wantLines, status)
}
