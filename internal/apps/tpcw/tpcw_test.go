package tpcw

import (
	"fmt"
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func newCluster(seed int64) (*wan.Sim, *store.Cluster) {
	sim := wan.NewSim(seed)
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	return sim, store.NewCluster(sim, wan.PaperTopology(), ids)
}

func TestPurchaseDecrementsStock(t *testing.T) {
	sim, c := newCluster(1)
	app := New(Causal)
	app.AddProduct(c.Replica(wan.USEast), "widget", 10)
	sim.Run()
	app.Purchase(c.Replica(wan.USWest), "o1", "widget")
	sim.Run()
	for _, id := range c.Replicas() {
		if s := app.Stock(c.Replica(id), "widget"); s != 9 {
			t.Fatalf("replica %s stock = %d", id, s)
		}
	}
}

// Concurrent purchases of the last unit: Causal goes negative; IPA's
// read-triggered restock compensation replenishes.
func TestConcurrentUnderflow(t *testing.T) {
	for _, variant := range []Variant{Causal, IPA} {
		sim, c := newCluster(2)
		app := New(variant)
		app.AddProduct(c.Replica(wan.USEast), "widget", 1)
		sim.Run()

		app.Purchase(c.Replica(wan.USEast), "oe", "widget")
		app.Purchase(c.Replica(wan.USWest), "ow", "widget")
		sim.Run()

		if s := app.Stock(c.Replica(wan.EUWest), "widget"); s != -1 {
			t.Fatalf("%v: converged raw stock = %d, want -1", variant, s)
		}
		switch variant {
		case Causal:
			if v := app.Violations(c.Replica(wan.EUWest), []string{"widget"}); len(v) == 0 {
				t.Fatal("causal: negative stock should be a violation")
			}
		case IPA:
			s, tx := app.ReadStock(c.Replica(wan.EUWest), "widget")
			if s < 0 {
				t.Fatalf("ipa: read should compensate, got %d", s)
			}
			if tx.Updates() == 0 {
				t.Fatal("ipa: restock should commit")
			}
			sim.Run()
			for _, id := range c.Replicas() {
				if v := app.Violations(c.Replica(id), []string{"widget"}); len(v) != 0 {
					t.Fatalf("ipa: replica %s violations %v", id, v)
				}
			}
		}
	}
}

// Two replicas observing the same deficit restock idempotently: the
// ledger converges to one entry, not two.
func TestRestockIsIdempotent(t *testing.T) {
	sim, c := newCluster(3)
	app := New(IPA)
	app.AddProduct(c.Replica(wan.USEast), "w", 1)
	sim.Run()
	app.Purchase(c.Replica(wan.USEast), "o1", "w")
	app.Purchase(c.Replica(wan.USWest), "o2", "w")
	sim.Run()

	// Both replicas observe stock=-1 and compensate independently.
	se, _ := app.ReadStock(c.Replica(wan.USEast), "w")
	sw, _ := app.ReadStock(c.Replica(wan.USWest), "w")
	if se != sw {
		t.Fatalf("independent compensations disagree: %d vs %d", se, sw)
	}
	sim.Run()
	// Converged: exactly one batch added (entries deduplicate).
	want := int64(-1 + RestockBatch)
	for _, id := range c.Replicas() {
		if s := app.Stock(c.Replica(id), "w"); s != want {
			t.Fatalf("replica %s stock = %d, want %d (double restock?)", id, s, want)
		}
	}
}

// Purchase concurrent with delisting: Causal strands the order, IPA's
// touch restores the product.
func TestPurchaseVsDelist(t *testing.T) {
	for _, variant := range []Variant{Causal, IPA} {
		sim, c := newCluster(4)
		app := New(variant)
		app.AddProduct(c.Replica(wan.USEast), "gadget", 5)
		sim.Run()

		app.RemProduct(c.Replica(wan.USEast), "gadget")
		app.Purchase(c.Replica(wan.USWest), "o9", "gadget")
		sim.Run()

		viol := app.Violations(c.Replica(wan.EUWest), nil)
		if variant == Causal && len(viol) == 0 {
			t.Fatal("causal: stranded order expected")
		}
		if variant == IPA && len(viol) != 0 {
			t.Fatalf("ipa: violations %v", viol)
		}
	}
}

func TestBigDeficitRestocksEnough(t *testing.T) {
	sim, c := newCluster(5)
	app := New(IPA)
	app.AddProduct(c.Replica(wan.USEast), "w", 0)
	sim.Run()
	for i := 0; i < RestockBatch+10; i++ {
		app.Purchase(c.Replica(wan.USEast), fmt.Sprintf("o%d", i), "w")
	}
	sim.Run()
	s, _ := app.ReadStock(c.Replica(wan.USWest), "w")
	if s < 0 {
		t.Fatalf("deficit not fully compensated: %d", s)
	}
}

// The analysis classifies the spec's two invariants onto the two IPA
// mechanisms: repairs for referential integrity, compensation for stock.
func TestSpecAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis integration is slow")
	}
	res, err := analysis.Run(Spec(), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %d\n%s", len(res.Unsolved), res.Summary())
	}
	haveReplenish := false
	for _, comp := range res.Compensations {
		if comp.Kind == analysis.Replenish && comp.Pred == "stock" {
			haveReplenish = true
		}
	}
	if !haveReplenish {
		t.Fatalf("replenish compensation expected:\n%s", res.Summary())
	}
	haveRepair := false
	for _, ar := range res.Applied {
		if ar.Repair.Target == "purchase" {
			haveRepair = true
		}
	}
	if !haveRepair {
		t.Fatalf("purchase should be repaired (product touch):\n%s", res.Summary())
	}
}
