// Package tpcw implements the paper's TPC-W/TPC-C-derived application
// (§5.1.2): a storefront with product stock, orders, and — beyond the
// standard benchmarks — product-listing management, which introduces
// referential integrity between orders and products.
//
// The two invariants exercise both IPA mechanisms:
//
//   - stock(i) >= 0 is a numeric invariant: concurrent purchases can
//     drive it negative, so the IPA variant uses a restock compensation
//     (the TPC-W behaviour: top the stock back up) implemented as an
//     idempotent ledger — replicas that observe the same deficit record
//     the same restock entry, so independent compensations converge.
//   - orders => product is referential integrity: the IPA variant's
//     purchase touches the product (add-wins), restoring a concurrently
//     delisted product.
package tpcw

import (
	"fmt"
	"strconv"

	"ipa/internal/crdt"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
)

// Object keys.
const (
	KeyProducts = "tpcw/products"
	KeyOrders   = "tpcw/orders"
)

// stockKey is the PN-counter with the raw stock movements of an item.
func stockKey(item string) string { return "tpcw/stock/" + item }

// restockKey is the compensation ledger of an item.
func restockKey(item string) string { return "tpcw/restock/" + item }

// RestockBatch is how many units one compensation entry adds (the TPC-W
// "replenish" amount).
const RestockBatch = 50

// SpecSource is the application specification used by the analysis.
const SpecSource = `
spec tpcw

invariant forall (Item: i) :- stock(i) >= 0
invariant forall (Order: o, Item: i) :- ordered(o, i) => product(i)

tag unique-ids
tag sequential-ids

operation add_product(Item: i) {
    product(i) := true
}
operation rem_product(Item: i) {
    product(i) := false
}
operation purchase(Order: o, Item: i) {
    ordered(o, i) := true
    stock(i) -= 1
}
operation restock(Item: i) {
    stock(i) += 50
}
`

// Spec parses and returns the specification.
func Spec() *spec.Spec { return spec.MustParse(SpecSource) }

// Variant selects the executable flavour.
type Variant int

// Application variants.
const (
	Causal Variant = iota
	IPA
)

func (v Variant) String() string {
	if v == IPA {
		return "ipa"
	}
	return "causal"
}

// App executes storefront operations.
type App struct {
	variant Variant
}

// New creates an application instance.
func New(variant Variant) *App { return &App{variant: variant} }

// Variant returns the configured variant.
func (a *App) Variant() Variant { return a.variant }

// AddProduct lists an item with initial stock.
func (a *App) AddProduct(r runtime.Replica, item string, stock int64) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyProducts).Add(item, "")
	store.CounterAt(tx, stockKey(item)).Add(stock)
	tx.Commit()
	return tx
}

// RemProduct delists an item.
func (a *App) RemProduct(r runtime.Replica, item string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyProducts).Remove(item)
	tx.Commit()
	return tx
}

// Purchase records an order for one unit of item. The IPA variant touches
// the product so a concurrent delisting cannot strand the order.
func (a *App) Purchase(r runtime.Replica, order, item string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyOrders).Add(crdt.JoinTuple(order, item), "")
	store.CounterAt(tx, stockKey(item)).Add(-1)
	if a.variant == IPA {
		store.AWSetAt(tx, KeyProducts).Touch(item)
	}
	tx.Commit()
	return tx
}

// Stock returns the effective stock of item at replica r: the raw counter
// plus the replicated restock ledger.
func (a *App) Stock(r runtime.Replica, item string) int64 {
	tx := r.Begin()
	defer tx.Commit()
	return a.stockIn(tx, item)
}

func (a *App) stockIn(tx *store.Txn, item string) int64 {
	raw := store.CounterAt(tx, stockKey(item)).Value()
	ledger := int64(store.AWSetAt(tx, restockKey(item)).Size())
	return raw + ledger*RestockBatch
}

// ReadStock reads the stock of item; under IPA an observed violation of
// stock >= 0 triggers the restock compensation: an idempotent ledger
// entry keyed by the restock epoch, so replicas that observe the same
// deficit add the same entry and the stock is replenished exactly once.
func (a *App) ReadStock(r runtime.Replica, item string) (int64, *store.Txn) {
	tx := r.Begin()
	stock := a.stockIn(tx, item)
	if a.variant == IPA && stock < 0 {
		ledger := store.AWSetAt(tx, restockKey(item))
		epoch := ledger.Size()
		need := (-stock + RestockBatch - 1) / RestockBatch
		for k := int64(0); k < need; k++ {
			ledger.Add("epoch-"+strconv.FormatInt(int64(epoch)+k, 10), "")
		}
		stock = a.stockIn(tx, item)
	}
	tx.Commit()
	return stock, tx
}

// Violations reports invariant violations at replica r: negative stock
// and orders referencing delisted products.
func (a *App) Violations(r runtime.Replica, items []string) []string {
	tx := r.Begin()
	defer tx.Commit()
	var out []string
	for _, i := range items {
		if s := a.stockIn(tx, i); s < 0 {
			out = append(out, fmt.Sprintf("stock(%s) = %d < 0", i, s))
		}
	}
	products := store.AWSetAt(tx, KeyProducts)
	for _, o := range store.AWSetAt(tx, KeyOrders).Elems() {
		parts := crdt.SplitTuple(o)
		if !products.Contains(parts[1]) {
			out = append(out, fmt.Sprintf("order %s references delisted product %s", parts[0], parts[1]))
		}
	}
	return out
}
