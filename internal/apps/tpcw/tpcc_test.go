package tpcw

import (
	"testing"

	"ipa/internal/wan"
)

func TestNewOrderAtomicVisibility(t *testing.T) {
	sim, c := newCluster(10)
	app := New(IPA)
	app.AddProduct(c.Replica(wan.USEast), "a", 100)
	app.AddProduct(c.Replica(wan.USEast), "b", 100)
	app.AddCustomer(c.Replica(wan.USEast), "cust", 500)
	sim.Run()

	lines := []OrderLine{{Item: "a", Qty: 2}, {Item: "b", Qty: 1}}
	app.NewOrder(c.Replica(wan.USWest), "cust", "o1", lines)

	// Mid-replication, each replica sees the order entirely or not at all.
	sim.RunUntil(sim.Now() + wan.Ms(39)) // before the 40ms one-way delivery
	for _, id := range c.Replicas() {
		if ok, detail := app.OrderConsistent(c.Replica(id), "o1", 2); !ok {
			t.Fatalf("replica %s: %s", id, detail)
		}
	}
	sim.Run()
	for _, id := range c.Replicas() {
		if ok, detail := app.OrderConsistent(c.Replica(id), "o1", 2); !ok {
			t.Fatalf("replica %s after convergence: %s", id, detail)
		}
		got := app.OrderLines(c.Replica(id), "o1")
		if len(got) != 2 || got[0] != (OrderLine{Item: "a", Qty: 2}) || got[1] != (OrderLine{Item: "b", Qty: 1}) {
			t.Fatalf("replica %s lines = %v", id, got)
		}
		if s := app.Stock(c.Replica(id), "a"); s != 98 {
			t.Fatalf("replica %s stock(a) = %d", id, s)
		}
	}
}

func TestConcurrentNewOrdersUnderflowCompensated(t *testing.T) {
	sim, c := newCluster(11)
	app := New(IPA)
	app.AddProduct(c.Replica(wan.USEast), "scarce", 3)
	sim.Run()

	// Two concurrent multi-qty orders overshoot the stock.
	app.NewOrder(c.Replica(wan.USEast), "c1", "oe", []OrderLine{{Item: "scarce", Qty: 2}})
	app.NewOrder(c.Replica(wan.USWest), "c2", "ow", []OrderLine{{Item: "scarce", Qty: 2}})
	sim.Run()

	if s := app.Stock(c.Replica(wan.EUWest), "scarce"); s != -1 {
		t.Fatalf("raw stock = %d, want -1", s)
	}
	got, _ := app.ReadStock(c.Replica(wan.EUWest), "scarce")
	if got < 0 {
		t.Fatalf("read should trigger restock, got %d", got)
	}
	sim.Run()
	for _, id := range c.Replicas() {
		if v := app.Violations(c.Replica(id), []string{"scarce"}); len(v) != 0 {
			t.Fatalf("replica %s: %v", id, v)
		}
	}
}

func TestPaymentConverges(t *testing.T) {
	sim, c := newCluster(12)
	app := New(Causal)
	app.AddCustomer(c.Replica(wan.USEast), "cust", 100)
	sim.Run()
	// Concurrent payments from different sites: counters merge additively.
	app.Payment(c.Replica(wan.USEast), "cust", 30)
	app.Payment(c.Replica(wan.USWest), "cust", 20)
	sim.Run()
	for _, id := range c.Replicas() {
		if b := app.Balance(c.Replica(id), "cust"); b != 50 {
			t.Fatalf("replica %s balance = %d", id, b)
		}
	}
}

func TestConcurrentDeliveryConverges(t *testing.T) {
	sim, c := newCluster(13)
	app := New(Causal)
	app.AddProduct(c.Replica(wan.USEast), "a", 10)
	sim.Run()
	app.NewOrder(c.Replica(wan.USEast), "cust", "o1", []OrderLine{{Item: "a", Qty: 1}})
	sim.Run()

	// Two sites deliver concurrently; LWW picks one winner everywhere.
	app.Deliver(c.Replica(wan.USEast), "o1")
	app.Deliver(c.Replica(wan.USWest), "o1")
	sim.Run()
	var status []string
	for _, id := range c.Replicas() {
		status = append(status, app.OrderStatus(c.Replica(id), "o1"))
	}
	if status[0] != "delivered" {
		t.Fatalf("status = %q", status[0])
	}
	if status[0] != status[1] || status[1] != status[2] {
		t.Fatalf("status diverged: %v", status)
	}
}

func TestNewOrderVsDelistIPA(t *testing.T) {
	sim, c := newCluster(14)
	app := New(IPA)
	app.AddProduct(c.Replica(wan.USEast), "gadget", 10)
	sim.Run()

	app.RemProduct(c.Replica(wan.USEast), "gadget")
	app.NewOrder(c.Replica(wan.USWest), "cust", "o7", []OrderLine{{Item: "gadget", Qty: 1}})
	sim.Run()

	for _, id := range c.Replicas() {
		if v := app.Violations(c.Replica(id), nil); len(v) != 0 {
			t.Fatalf("replica %s: %v", id, v)
		}
	}
}
