package tournament

import (
	"fmt"
	"math/rand"
	"testing"

	"ipa/internal/engine"
	"ipa/internal/logic"
	"ipa/internal/wan"
)

// The spec-driven checker (the engine's generic clause evaluation over
// the extracted interpretation — the replacement for the old
// hand-written CheckInvariants) and the handwritten oracle must agree on
// every state a random concurrent workload can produce, under both
// variants — cross-validating the specification against the
// implementation.
func TestSpecCheckerAgreesWithOracle(t *testing.T) {
	for _, variant := range []Variant{Causal, IPA} {
		for seed := int64(0); seed < 6; seed++ {
			sim, c := newCluster(100 + seed)
			app := New(variant)
			rng := rand.New(rand.NewSource(seed))

			// Seed entities.
			first := c.Replica(c.Replicas()[0])
			for i := 0; i < 6; i++ {
				app.AddPlayer(first, fmt.Sprintf("p%d", i))
			}
			for i := 0; i < 3; i++ {
				app.AddTournament(first, fmt.Sprintf("t%d", i))
			}
			sim.Run()

			// Random concurrent workload with partial replication.
			for step := 0; step < 80; step++ {
				r := c.Replica(c.Replicas()[rng.Intn(3)])
				p := fmt.Sprintf("p%d", rng.Intn(6))
				q := fmt.Sprintf("p%d", rng.Intn(6))
				tt := fmt.Sprintf("t%d", rng.Intn(3))
				switch rng.Intn(8) {
				case 0:
					app.RemTournament(r, tt)
				case 1:
					app.Enroll(r, p, tt)
				case 2:
					app.Disenroll(r, p, tt)
				case 3:
					app.Begin(r, tt)
				case 4:
					app.Finish(r, tt)
				case 5:
					app.DoMatch(r, p, q, tt)
				case 6:
					app.AddTournament(r, tt)
				case 7:
					app.RemPlayer(r, p)
				}
				sim.RunUntil(sim.Now() + wan.Time(rng.Int63n(int64(wan.Ms(30)))))
			}
			sim.Run()

			for _, id := range c.Replicas() {
				r := c.Replica(id)
				oracle := app.Violations(r, 100) // capacity high: focus on boolean clauses
				violated, err := engine.EvalClauses(Interp(r, 100), logic.Clauses(Spec().Invariant()))
				if err != nil {
					t.Fatal(err)
				}
				oracleSays := len(oracle) > 0
				specSays := len(violated) > 0
				if oracleSays != specSays {
					t.Fatalf("variant=%v seed=%d replica=%s: oracle=%v spec=%v\noracle: %v\nspec: %v",
						variant, seed, id, oracleSays, specSays, oracle, violated)
				}
				if variant == IPA && specSays {
					t.Fatalf("variant=IPA seed=%d replica=%s: spec checker found violations: %v",
						seed, id, violated)
				}
			}
		}
	}
}

func TestInterpExtraction(t *testing.T) {
	sim, c := newCluster(200)
	app := New(IPA)
	seedBase(sim, c, app)
	app.Enroll(c.Replica(wan.USEast), "alice", "cup")
	sim.Run()

	in := Interp(c.Replica(wan.EUWest), 8)
	if !in.Truth["enrolled(alice,cup)"] {
		t.Fatalf("interp truth = %v", in.Truth)
	}
	if !in.Truth["player(alice)"] || !in.Truth["tournament(cup)"] {
		t.Fatal("entities missing from interp")
	}
	if in.Consts["Capacity"] != 8 {
		t.Fatal("capacity constant missing")
	}
	if len(in.Domain["Player"]) == 0 || len(in.Domain["Tournament"]) == 0 {
		t.Fatal("domain not populated")
	}
}
