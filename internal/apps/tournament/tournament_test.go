package tournament

import (
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func newCluster(seed int64) (*wan.Sim, *store.Cluster) {
	sim := wan.NewSim(seed)
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	return sim, store.NewCluster(sim, wan.PaperTopology(), ids)
}

// seedBase installs a player and a tournament everywhere.
func seedBase(sim *wan.Sim, c *store.Cluster, app *App) {
	east := c.Replica(wan.USEast)
	app.AddPlayer(east, "alice")
	app.AddPlayer(east, "bob")
	app.AddTournament(east, "cup")
	sim.Run()
}

// The paper's headline anomaly: enroll concurrent with rem_tourn leaves a
// player enrolled in a missing tournament under Causal; IPA restores the
// tournament via the add-wins touch.
func TestConcurrentEnrollRemTournament(t *testing.T) {
	for _, variant := range []Variant{Causal, IPA} {
		sim, c := newCluster(1)
		app := New(variant)
		seedBase(sim, c, app)

		app.RemTournament(c.Replica(wan.USEast), "cup")
		app.Enroll(c.Replica(wan.USWest), "alice", "cup")
		sim.Run()

		for _, id := range c.Replicas() {
			v := app.Violations(c.Replica(id), 8)
			switch variant {
			case Causal:
				if len(v) == 0 {
					t.Fatalf("causal variant should violate referential integrity at %s", id)
				}
			case IPA:
				if len(v) != 0 {
					t.Fatalf("IPA variant violated invariants at %s: %v", id, v)
				}
				// And the enrolment is preserved (enroll wins).
				st, _ := app.ReadStatus(c.Replica(id), "cup")
				if !st.Exists || len(st.Enrolled) != 1 {
					t.Fatalf("IPA at %s: tournament should be restored with the enrolment: %+v", id, st)
				}
			}
		}
	}
}

func TestConcurrentBeginFinish(t *testing.T) {
	sim, c := newCluster(2)
	app := New(IPA)
	seedBase(sim, c, app)
	app.Begin(c.Replica(wan.USEast), "cup")
	sim.Run()

	// Concurrent: east finishes, west re-begins.
	app.Finish(c.Replica(wan.USEast), "cup")
	app.Begin(c.Replica(wan.USWest), "cup")
	sim.Run()

	for _, id := range c.Replicas() {
		if v := app.Violations(c.Replica(id), 8); len(v) != 0 {
			t.Fatalf("violations at %s: %v", id, v)
		}
		st, _ := app.ReadStatus(c.Replica(id), "cup")
		if st.Active && st.Finished {
			t.Fatalf("%s: both active and finished", id)
		}
		if !st.Finished {
			t.Fatalf("%s: finish must win (rem-wins active): %+v", id, st)
		}
	}
}

func TestDoMatchConcurrentDisenroll(t *testing.T) {
	sim, c := newCluster(3)
	app := New(IPA)
	seedBase(sim, c, app)
	app.Enroll(c.Replica(wan.USEast), "alice", "cup")
	app.Enroll(c.Replica(wan.USEast), "bob", "cup")
	app.Begin(c.Replica(wan.USEast), "cup")
	sim.Run()

	// Concurrent: east disenrolls alice; west records a match with alice.
	app.Disenroll(c.Replica(wan.USEast), "alice", "cup")
	app.DoMatch(c.Replica(wan.USWest), "alice", "bob", "cup")
	sim.Run()

	for _, id := range c.Replicas() {
		if v := app.Violations(c.Replica(id), 8); len(v) != 0 {
			t.Fatalf("violations at %s: %v", id, v)
		}
	}
}

func TestCausalDoMatchViolates(t *testing.T) {
	sim, c := newCluster(4)
	app := New(Causal)
	seedBase(sim, c, app)
	app.Enroll(c.Replica(wan.USEast), "alice", "cup")
	app.Enroll(c.Replica(wan.USEast), "bob", "cup")
	app.Begin(c.Replica(wan.USEast), "cup")
	sim.Run()

	app.Disenroll(c.Replica(wan.USEast), "alice", "cup")
	app.DoMatch(c.Replica(wan.USWest), "alice", "bob", "cup")
	sim.Run()

	violated := false
	for _, id := range c.Replicas() {
		if len(app.Violations(c.Replica(id), 8)) > 0 {
			violated = true
		}
	}
	if !violated {
		t.Fatal("causal variant should expose the disenroll/do_match anomaly")
	}
}

func TestTouchPreservesTournamentInfo(t *testing.T) {
	sim, c := newCluster(5)
	app := New(IPA)
	seedBase(sim, c, app)

	app.RemTournament(c.Replica(wan.USEast), "cup")
	app.Enroll(c.Replica(wan.USWest), "alice", "cup")
	sim.Run()

	tx := c.Replica(wan.EUWest).Begin()
	pay, ok := store.AWSetAt(tx, KeyTournaments).Payload("cup")
	tx.Commit()
	if !ok || pay != "info:cup" {
		t.Fatalf("tournament payload lost after touch-restore: %q %v", pay, ok)
	}
}

func TestStatusRead(t *testing.T) {
	sim, c := newCluster(6)
	app := New(IPA)
	seedBase(sim, c, app)
	app.Enroll(c.Replica(wan.USEast), "alice", "cup")
	app.Begin(c.Replica(wan.USEast), "cup")
	sim.Run()
	st, tx := app.ReadStatus(c.Replica(wan.EUWest), "cup")
	if !st.Exists || !st.Active || st.Finished || len(st.Enrolled) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if tx.Updates() != 0 {
		t.Fatal("status is read-only")
	}
}

// The spec's analysis output matches the hand-written IPA variant: enroll
// gains the add-wins tournament restore, finish relies on rem-wins active.
func TestSpecAnalysisMatchesImplementation(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis integration is slow")
	}
	res, err := analysis.Run(Spec(), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %d", len(res.Unsolved))
	}
	enroll, _ := res.Spec.Operation("enroll")
	foundTournRestore := false
	for _, e := range enroll.Effects {
		if e.Pred == "tournament" && e.Val {
			foundTournRestore = true
		}
	}
	if !foundTournRestore {
		t.Fatalf("analysis should add tournament restore to enroll: %v", enroll)
	}
	if res.Spec.Rules["tournament"].String() != "add-wins" {
		t.Fatalf("tournament rule = %v", res.Spec.Rules["tournament"])
	}
	// The capacity constraint is compensated, as implemented by CompSet.
	if len(res.Compensations) == 0 {
		t.Fatal("capacity compensation missing")
	}
}

func TestViolationsCapacity(t *testing.T) {
	sim, c := newCluster(7)
	app := New(Causal)
	seedBase(sim, c, app)
	for i := 0; i < 3; i++ {
		app.AddPlayer(c.Replica(wan.USEast), string(rune('p'+i)))
	}
	sim.Run()
	app.Enroll(c.Replica(wan.USEast), "alice", "cup")
	app.Enroll(c.Replica(wan.USEast), "bob", "cup")
	app.Enroll(c.Replica(wan.USEast), "p", "cup")
	sim.Run()
	v := app.Violations(c.Replica(wan.USEast), 2)
	found := false
	for _, s := range v {
		if len(s) > 0 && s[0:10] == "tournament" {
			found = true
		}
	}
	if !found {
		t.Fatalf("capacity violation not reported: %v", v)
	}
}
