// Package tournament implements the paper's running example (Fig. 1): a
// gaming-tournament service with players, tournaments, enrolments and
// matches, plus the invariants that relate them. Two executable variants
// share the same interface:
//
//   - Causal: the unmodified application; concurrent operations can
//     violate the invariants (removed tournaments with enrolled players,
//     matches in inactive tournaments, ...).
//   - IPA: the application patched according to the IPA analysis output —
//     exactly the auxiliary "ensure" effects of the paper's Fig. 3:
//     enroll/do_match touch the player and tournament indexes (add-wins),
//     begin/finish touch the tournament, finish removes from the rem-wins
//     active set, so finish wins over a concurrent begin.
//
// The Spec function returns the paper's specification, which the analysis
// in package analysis turns into those same patches (see the analysis
// integration test).
package tournament

import (
	"encoding/gob"
	"fmt"

	"ipa/internal/crdt"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
)

// Object keys.
const (
	KeyPlayers     = "tournament/players"
	KeyTournaments = "tournament/tournaments"
	KeyEnrolled    = "tournament/enrolled"
	KeyActive      = "tournament/active"
	KeyFinished    = "tournament/finished"
	KeyMatches     = "tournament/matches"
)

// SpecSource is the textual specification of the application (paper
// Fig. 1, in this repository's spec language).
const SpecSource = `
spec tournament

const Capacity = 8

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
invariant forall (Player: p, q, Tournament: t) :- inMatch(p, q, t) => enrolled(p, t) and enrolled(q, t)
invariant forall (Player: p, q, Tournament: t) :- inMatch(p, q, t) => active(t) or finished(t)
invariant forall (Tournament: t) :- #enrolled(*, t) <= Capacity
invariant forall (Tournament: t) :- active(t) => tournament(t)
invariant forall (Tournament: t) :- finished(t) => tournament(t)
invariant forall (Tournament: t) :- not (active(t) and finished(t))

tag unique-ids
tag aggregation-inclusion

operation add_player(Player: p) {
    player(p) := true
}
operation add_tourn(Tournament: t) {
    tournament(t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
operation disenroll(Player: p, Tournament: t) {
    enrolled(p, t) := false
}
operation begin_tourn(Tournament: t) {
    active(t) := true
}
operation finish_tourn(Tournament: t) {
    requires active(t)
    finished(t) := true
    active(t) := false
}
operation do_match(Player: p, q, Tournament: t) {
    inMatch(p, q, t) := true
}
`

// Spec parses and returns the application specification.
func Spec() *spec.Spec { return spec.MustParse(SpecSource) }

// Variant selects the executable flavour of the application.
type Variant int

// Application variants.
const (
	// Causal runs the unmodified operations on causal consistency.
	Causal Variant = iota
	// IPA runs the operations patched with the analysis' extra effects.
	IPA
)

func (v Variant) String() string {
	if v == IPA {
		return "ipa"
	}
	return "causal"
}

// App executes tournament operations against a replicated store.
type App struct {
	variant Variant
}

// New creates an application instance in the given variant.
func New(variant Variant) *App { return &App{variant: variant} }

// Variant returns the configured variant.
func (a *App) Variant() Variant { return a.variant }

// AddPlayer registers a player.
func (a *App) AddPlayer(r runtime.Replica, p string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyPlayers).Add(p, "profile:"+p)
	tx.Commit()
	return tx
}

// AddTournament creates a tournament.
func (a *App) AddTournament(r runtime.Replica, t string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyTournaments).Add(t, "info:"+t)
	tx.Commit()
	return tx
}

// RemTournament deletes a tournament. Its precondition — the paper's
// model has every operation verify its preconditions against the origin
// replica's state — is that the tournament is unused: no enrolments, not
// active, not finished. When it does not hold the operation is a no-op
// (the returned transaction carries no updates). Invariant violations can
// then only arise from concurrent operations at other replicas, which is
// exactly what the IPA patches address. (The IPA resolution chosen for
// this application lets the restoring operations win, so rem_tourn itself
// gains no extra effects — paper Fig. 3.)
func (a *App) RemTournament(r runtime.Replica, t string) *store.Txn {
	tx := r.Begin()
	enrolled := store.AWSetAt(tx, KeyEnrolled)
	if len(enrolled.ElemsWhere(crdt.Match{Index: 1, Value: t})) == 0 {
		// Cascade: clear the state flags (setting them false can never
		// violate an invariant), then drop the tournament.
		if store.RWSetAt(tx, KeyActive).Contains(t) {
			store.RWSetAt(tx, KeyActive).Remove(t)
		}
		if store.AWSetAt(tx, KeyFinished).Contains(t) {
			store.AWSetAt(tx, KeyFinished).Remove(t)
		}
		store.AWSetAt(tx, KeyTournaments).Remove(t)
	}
	tx.Commit()
	return tx
}

// RemPlayer deletes a player, provided the player has no enrolments.
func (a *App) RemPlayer(r runtime.Replica, p string) *store.Txn {
	tx := r.Begin()
	if len(store.AWSetAt(tx, KeyEnrolled).ElemsWhere(crdt.Match{Index: 0, Value: p})) == 0 {
		store.AWSetAt(tx, KeyPlayers).Remove(p)
	}
	tx.Commit()
	return tx
}

// ensureEnroll is the paper's Fig. 3 helper: restore the player and the
// tournament so the enrolment's preconditions hold at every replica.
func ensureEnroll(tx *store.Txn, p, t string) {
	store.AWSetAt(tx, KeyTournaments).Touch(t)
	store.AWSetAt(tx, KeyPlayers).Touch(p)
}

// Enroll enrolls player p in tournament t; both must exist at the origin.
func (a *App) Enroll(r runtime.Replica, p, t string) *store.Txn {
	tx := r.Begin()
	if store.AWSetAt(tx, KeyPlayers).Contains(p) && store.AWSetAt(tx, KeyTournaments).Contains(t) {
		store.AWSetAt(tx, KeyEnrolled).Add(crdt.JoinTuple(p, t), "")
		if a.variant == IPA {
			ensureEnroll(tx, p, t)
		}
	}
	tx.Commit()
	return tx
}

// Disenroll removes player p from tournament t.
func (a *App) Disenroll(r runtime.Replica, p, t string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyEnrolled).Remove(crdt.JoinTuple(p, t))
	if a.variant == IPA {
		// A concurrent do_match must lose: matches of (p, t) are wiped
		// with rem-wins semantics (the analysis' inMatch rem-wins rule).
		store.RWSetAt(tx, KeyMatches).RemoveWhere(matchOf(p, t))
	}
	tx.Commit()
	return tx
}

// matchPred matches inMatch triples that involve player P in tournament
// T. It travels inside wildcard remove ops, so its fields are exported
// and the type is gob-registered — wire transports must be able to encode
// every predicate an application ships.
type matchPred struct{ P, T string }

func matchOf(p, t string) crdt.Predicate { return matchPred{P: p, T: t} }

func init() { gob.Register(matchPred{}) }

func (m matchPred) Matches(elem string) bool {
	parts := crdt.SplitTuple(elem)
	if len(parts) != 3 || parts[2] != m.T {
		return false
	}
	return parts[0] == m.P || parts[1] == m.P
}

// Begin starts a tournament (paper Fig. 3 ensureBegin). Preconditions:
// the tournament exists and is not finished.
func (a *App) Begin(r runtime.Replica, t string) *store.Txn {
	tx := r.Begin()
	if store.AWSetAt(tx, KeyTournaments).Contains(t) && !store.AWSetAt(tx, KeyFinished).Contains(t) {
		store.RWSetAt(tx, KeyActive).Add(t, "")
		if a.variant == IPA {
			store.AWSetAt(tx, KeyTournaments).Touch(t)
		}
	}
	tx.Commit()
	return tx
}

// Finish ends a tournament (paper Fig. 3 ensureEnd): the rem-wins removal
// from the active set makes finish win over a concurrent begin.
// Precondition: the tournament exists and is active.
func (a *App) Finish(r runtime.Replica, t string) *store.Txn {
	tx := r.Begin()
	if store.AWSetAt(tx, KeyTournaments).Contains(t) && store.RWSetAt(tx, KeyActive).Contains(t) {
		store.AWSetAt(tx, KeyFinished).Add(t, "")
		store.RWSetAt(tx, KeyActive).Remove(t)
		if a.variant == IPA {
			store.AWSetAt(tx, KeyTournaments).Touch(t)
		}
	}
	tx.Commit()
	return tx
}

// DoMatch records a match between players p and q in tournament t.
// Preconditions: both players enrolled, tournament active or finished.
func (a *App) DoMatch(r runtime.Replica, p, q, t string) *store.Txn {
	tx := r.Begin()
	enrolled := store.AWSetAt(tx, KeyEnrolled)
	stateOK := store.RWSetAt(tx, KeyActive).Contains(t) || store.AWSetAt(tx, KeyFinished).Contains(t)
	if enrolled.Contains(crdt.JoinTuple(p, t)) && enrolled.Contains(crdt.JoinTuple(q, t)) && stateOK {
		store.RWSetAt(tx, KeyMatches).Add(crdt.JoinTuple(p, q, t), "")
		if a.variant == IPA {
			ensureEnroll(tx, p, t)
			ensureEnroll(tx, q, t)
			store.AWSetAt(tx, KeyEnrolled).Add(crdt.JoinTuple(p, t), "")
			store.AWSetAt(tx, KeyEnrolled).Add(crdt.JoinTuple(q, t), "")
		}
	}
	tx.Commit()
	return tx
}

// Roster returns the players currently enrolled in tournament t at
// replica r.
func (a *App) Roster(r runtime.Replica, t string) []string {
	tx := r.Begin()
	defer tx.Commit()
	pairs := store.AWSetAt(tx, KeyEnrolled).ElemsWhere(crdt.Match{Index: 1, Value: t})
	out := make([]string, 0, len(pairs))
	for _, pr := range pairs {
		out = append(out, crdt.SplitTuple(pr)[0])
	}
	return out
}

// Status reads a tournament's state (the workload's read operation).
type Status struct {
	Exists   bool
	Active   bool
	Finished bool
	Enrolled []string
}

// ReadStatus returns the tournament's current state at replica r.
func (a *App) ReadStatus(r runtime.Replica, t string) (Status, *store.Txn) {
	tx := r.Begin()
	st := Status{
		Exists:   store.AWSetAt(tx, KeyTournaments).Contains(t),
		Active:   store.RWSetAt(tx, KeyActive).Contains(t),
		Finished: store.AWSetAt(tx, KeyFinished).Contains(t),
		Enrolled: store.AWSetAt(tx, KeyEnrolled).ElemsWhere(crdt.Match{Index: 1, Value: t}),
	}
	tx.Commit()
	return st, tx
}

// Violations counts invariant violations in replica r's current state —
// the oracle the evaluation uses to show Causal breaking invariants while
// IPA preserves them.
func (a *App) Violations(r runtime.Replica, capacity int) []string {
	tx := r.Begin()
	defer tx.Commit()
	players := store.AWSetAt(tx, KeyPlayers)
	tournaments := store.AWSetAt(tx, KeyTournaments)
	enrolled := store.AWSetAt(tx, KeyEnrolled)
	active := store.RWSetAt(tx, KeyActive)
	finished := store.AWSetAt(tx, KeyFinished)
	matches := store.RWSetAt(tx, KeyMatches)

	var out []string
	perTournament := map[string]int{}
	for _, e := range enrolled.Elems() {
		parts := crdt.SplitTuple(e)
		p, t := parts[0], parts[1]
		if !players.Contains(p) {
			out = append(out, fmt.Sprintf("enrolled(%s,%s) but player %s missing", p, t, p))
		}
		if !tournaments.Contains(t) {
			out = append(out, fmt.Sprintf("enrolled(%s,%s) but tournament %s missing", p, t, t))
		}
		perTournament[t]++
	}
	for t, n := range perTournament {
		if n > capacity {
			out = append(out, fmt.Sprintf("tournament %s over capacity: %d > %d", t, n, capacity))
		}
	}
	for _, m := range matches.Elems() {
		parts := crdt.SplitTuple(m)
		p, q, t := parts[0], parts[1], parts[2]
		if !enrolled.Contains(crdt.JoinTuple(p, t)) || !enrolled.Contains(crdt.JoinTuple(q, t)) {
			out = append(out, fmt.Sprintf("match(%s,%s,%s) with unenrolled player", p, q, t))
		}
		if !active.Contains(t) && !finished.Contains(t) {
			out = append(out, fmt.Sprintf("match(%s,%s,%s) in inactive tournament", p, q, t))
		}
	}
	for _, t := range active.Elems() {
		if !tournaments.Contains(t) {
			out = append(out, fmt.Sprintf("active tournament %s missing", t))
		}
		if finished.Contains(t) {
			out = append(out, fmt.Sprintf("tournament %s both active and finished", t))
		}
	}
	for _, t := range finished.Elems() {
		if !tournaments.Contains(t) {
			out = append(out, fmt.Sprintf("finished tournament %s missing", t))
		}
	}
	return out
}
