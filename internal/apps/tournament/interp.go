package tournament

import (
	"ipa/internal/crdt"
	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/store"
)

// Interp extracts the logical interpretation of a replica's current state
// — the mapping from this package's hand-chosen CRDT layout back to the
// specification's predicates — so the invariants of Spec() can be
// evaluated directly on the running system (engine.EvalClauses), and so
// the hand-coded executor's state can be digest-compared with the
// spec-driven engine's, which extracts the same abstraction from its own
// generic layout. The analysis reasons about exactly this abstraction;
// extracting it at runtime lets tests cross-check the handwritten
// violation oracle against the specification itself.
func Interp(r runtime.Replica, capacity int) logic.Interp {
	tx := r.Begin()
	defer tx.Commit()

	truth := map[string]bool{}
	domain := map[logic.Sort][]string{"Player": {}, "Tournament": {}}
	seenP := map[string]bool{}
	seenT := map[string]bool{}
	addPlayer := func(p string) {
		if !seenP[p] {
			seenP[p] = true
			domain["Player"] = append(domain["Player"], p)
		}
	}
	addTourn := func(t string) {
		if !seenT[t] {
			seenT[t] = true
			domain["Tournament"] = append(domain["Tournament"], t)
		}
	}

	for _, p := range store.AWSetAt(tx, KeyPlayers).Elems() {
		truth[logic.GroundAtom("player", p)] = true
		addPlayer(p)
	}
	for _, t := range store.AWSetAt(tx, KeyTournaments).Elems() {
		truth[logic.GroundAtom("tournament", t)] = true
		addTourn(t)
	}
	for _, e := range store.AWSetAt(tx, KeyEnrolled).Elems() {
		parts := crdt.SplitTuple(e)
		truth[logic.GroundAtom("enrolled", parts[0], parts[1])] = true
		addPlayer(parts[0])
		addTourn(parts[1])
	}
	for _, t := range store.RWSetAt(tx, KeyActive).Elems() {
		truth[logic.GroundAtom("active", t)] = true
		addTourn(t)
	}
	for _, t := range store.AWSetAt(tx, KeyFinished).Elems() {
		truth[logic.GroundAtom("finished", t)] = true
		addTourn(t)
	}
	for _, m := range store.RWSetAt(tx, KeyMatches).Elems() {
		parts := crdt.SplitTuple(m)
		truth[logic.GroundAtom("inMatch", parts[0], parts[1], parts[2])] = true
		addPlayer(parts[0])
		addPlayer(parts[1])
		addTourn(parts[2])
	}

	return logic.Interp{
		Domain: domain,
		Truth:  truth,
		Consts: map[string]int{"Capacity": capacity},
	}
}

