package tournament

import (
	"sync"

	"ipa/internal/analysis"
	"ipa/internal/logic"
	"ipa/internal/spec"
)

// Analysis runs the full IPA loop on the tournament specification with
// the paper's Fig. 3 repair choices and caches the result (the loop
// costs seconds; the output is immutable). The analysis proposes several
// valid resolutions per conflict and the paper's pickResolution hook is
// the programmer — this function records the programmer decision the
// hand-coded IPA variant implements: for disenroll ∥ do_match the
// *disenroll wins* repair (wipe the player's matches in the tournament
// with rem-wins semantics, Fig. 3's ensureDisenroll) rather than the
// default smallest repair (do_match wins by re-asserting the
// enrolments). Every other conflict takes the default minimal repair,
// which already matches Fig. 3.
func Analysis() *analysis.Result {
	analysisOnce.Do(func() {
		res, err := analysis.Run(Spec(), analysis.Options{Chooser: fig3Chooser})
		if err != nil {
			panic("tournament: analysis failed: " + err.Error())
		}
		analysisRes = res
	})
	return analysisRes
}

var (
	analysisOnce sync.Once
	analysisRes  *analysis.Result
)

// fig3Chooser picks, for the disenroll ∥ do_match conflict, the repair
// that adds the two one-wildcard match wipes to disenroll.
func fig3Chooser(c *analysis.Conflict, reps []analysis.Repair) int {
	names := map[string]bool{c.Op1.Name: true, c.Op2.Name: true}
	if !names["disenroll"] || !names["do_match"] {
		return 0
	}
	for i, r := range reps {
		if r.Target != "disenroll" || len(r.Extra) != 2 {
			continue
		}
		ok := true
		for _, e := range r.Extra {
			wilds := 0
			for _, t := range e.Args {
				if t.Kind == logic.TermWildcard {
					wilds++
				}
			}
			if e.Kind != spec.BoolAssign || e.Val || e.Pred != "inMatch" || wilds != 1 {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return 0
}
