package ticket

import (
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func newCluster(seed int64) (*wan.Sim, *store.Cluster) {
	sim := wan.NewSim(seed)
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	return sim, store.NewCluster(sim, wan.PaperTopology(), ids)
}

func TestBuyWithinCapacity(t *testing.T) {
	sim, c := newCluster(1)
	app := New(IPA, 10)
	app.Setup(runtime.NewSimCluster(c), []string{"concert"})
	sim.Run()
	for i := 0; i < 5; i++ {
		app.Buy(c.Replica(wan.USEast), "buyer", "concert")
	}
	sim.Run()
	got, tx := app.View(c.Replica(wan.USWest), "concert")
	if len(got) != 5 {
		t.Fatalf("sold = %d", len(got))
	}
	if tx.Updates() != 0 {
		t.Fatal("no compensation expected within capacity")
	}
}

// Concurrent last-ticket sales: Causal oversells; IPA compensates on read
// and converges to capacity with refunds recorded.
func TestConcurrentOversell(t *testing.T) {
	for _, variant := range []Variant{Causal, IPA} {
		sim, c := newCluster(2)
		app := New(variant, 2)
		app.Setup(runtime.NewSimCluster(c), []string{"gig"})
		sim.Run()

		// One ticket sold and replicated.
		app.Buy(c.Replica(wan.USEast), "early", "gig")
		sim.Run()

		// The last ticket is sold concurrently at two sites.
		app.Buy(c.Replica(wan.USEast), "east-buyer", "gig")
		app.Buy(c.Replica(wan.USWest), "west-buyer", "gig")
		sim.Run()

		if app.Sold(c.Replica(wan.EUWest), "gig") != 3 {
			t.Fatalf("%v: expected 3 recorded sales", variant)
		}
		switch variant {
		case Causal:
			if n := app.Oversold(c.Replica(wan.EUWest), "gig"); n != 1 {
				t.Fatalf("causal: oversold = %d, want 1", n)
			}
			if v := app.Violations(c.Replica(wan.EUWest), []string{"gig"}); len(v) != 1 {
				t.Fatalf("causal: violations = %v", v)
			}
		case IPA:
			// A read compensates: cancels one ticket, refunds the buyer.
			got, tx := app.View(c.Replica(wan.EUWest), "gig")
			if len(got) != 2 {
				t.Fatalf("ipa: visible tickets = %d, want 2", len(got))
			}
			if tx.Updates() == 0 {
				t.Fatal("ipa: compensation should have committed")
			}
			sim.Run()
			// Converged: every replica within capacity, refund recorded.
			for _, id := range c.Replicas() {
				if n := app.Oversold(c.Replica(id), "gig"); n != 0 {
					t.Fatalf("ipa: replica %s still oversold by %d", id, n)
				}
			}
			if app.Refunds(c.Replica(wan.USEast)) != 1 {
				t.Fatalf("refunds = %d, want 1", app.Refunds(c.Replica(wan.USEast)))
			}
		}
	}
}

// Two replicas compensating independently converge to the same outcome
// without cancelling more tickets than necessary.
func TestIndependentCompensationsConverge(t *testing.T) {
	sim, c := newCluster(3)
	app := New(IPA, 1)
	app.Setup(runtime.NewSimCluster(c), []string{"e"})
	sim.Run()
	app.Buy(c.Replica(wan.USEast), "a", "e")
	app.Buy(c.Replica(wan.USWest), "b", "e")
	sim.Run()

	// Both sides read (and compensate) before exchanging compensations.
	gotE, _ := app.View(c.Replica(wan.USEast), "e")
	gotW, _ := app.View(c.Replica(wan.USWest), "e")
	if len(gotE) != 1 || len(gotW) != 1 {
		t.Fatalf("views = %v / %v", gotE, gotW)
	}
	if gotE[0] != gotW[0] {
		t.Fatalf("deterministic victim selection violated: %v vs %v", gotE, gotW)
	}
	sim.Run()
	for _, id := range c.Replicas() {
		if n := app.Sold(c.Replica(id), "e"); n != 1 {
			t.Fatalf("replica %s: %d tickets after convergence", id, n)
		}
	}
}

func TestTicketIDsUnique(t *testing.T) {
	sim, c := newCluster(4)
	app := New(IPA, 100)
	app.Setup(runtime.NewSimCluster(c), []string{"e"})
	sim.Run()
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		id, _ := app.Buy(c.Replica(wan.USEast), "buyer", "e")
		if seen[id] {
			t.Fatalf("duplicate ticket id %s", id)
		}
		seen[id] = true
	}
}

// The analysis routes the capacity invariant to a trim-excess
// compensation — exactly what the CompSet implements.
func TestSpecAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis integration is slow")
	}
	res, err := analysis.Run(Spec(), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %d\n%s", len(res.Unsolved), res.Summary())
	}
	found := false
	for _, comp := range res.Compensations {
		if comp.Kind == analysis.TrimExcess && comp.Pred == "sold" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trim-excess compensation on sold expected:\n%s", res.Summary())
	}
}
