// Package ticket implements the paper's Ticket application (based on
// FusionTicket, §5.1.2): events sell a bounded number of tickets, and the
// key invariant — tickets cannot be oversold — cannot be preserved
// up-front under weak consistency. The IPA variant uses the Compensation
// Set CRDT (§4.2.2): a read that observes an oversold event cancels the
// deterministically chosen excess tickets and records refunds; the Causal
// variant exposes the overselling.
package ticket

import (
	"fmt"
	"strings"

	"ipa/internal/crdt"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
)

// Object keys.
const (
	KeyEvents  = "ticket/events"
	KeyRefunds = "ticket/refunds"
)

// EventKey returns the ticket-set key of an event.
func EventKey(event string) string { return "ticket/event/" + event }

// SpecSource is the application specification used by the analysis.
const SpecSource = `
spec ticket

const EventCapacity = 100

invariant forall (Event: e) :- #sold(*, e) <= EventCapacity
invariant forall (Ticket: k, Event: e) :- sold(k, e) => event(e)

tag unique-ids

operation add_event(Event: e) {
    event(e) := true
}
operation buy(Ticket: k, Event: e) {
    sold(k, e) := true
}
operation refund(Ticket: k, Event: e) {
    sold(k, e) := false
}
`

// Spec parses and returns the specification.
func Spec() *spec.Spec { return spec.MustParse(SpecSource) }

// SpecSourceWithCapacity returns the specification source with
// EventCapacity rewritten to n — the chaos harness sells tiny events
// (capacity 5) against a buy-heavy mix so overselling actually happens,
// and the spec-driven executor must be analyzed at the same bound to be
// comparable.
func SpecSourceWithCapacity(n int) string {
	return strings.Replace(SpecSource,
		"const EventCapacity = 100", fmt.Sprintf("const EventCapacity = %d", n), 1)
}

// Variant selects the executable flavour.
type Variant int

// Application variants.
const (
	// Causal sells without any protection: overselling shows up as an
	// invariant violation.
	Causal Variant = iota
	// IPA sells through the Compensation Set: reads repair overselling by
	// cancelling the newest tickets and refunding the buyers.
	IPA
)

func (v Variant) String() string {
	if v == IPA {
		return "ipa"
	}
	return "causal"
}

// App executes ticket operations. Ticket elements are (buyer, tag)
// tuples, unique per purchase.
type App struct {
	variant  Variant
	capacity int
}

// New creates an application instance; capacity is per event.
func New(variant Variant, capacity int) *App {
	return &App{variant: variant, capacity: capacity}
}

// Variant returns the configured variant.
func (a *App) Variant() Variant { return a.variant }

// Capacity returns the per-event capacity.
func (a *App) Capacity() int { return a.capacity }

// Setup creates an event at every replica. Compensation sets carry their
// bound in the object, so they are seeded cluster-wide before the
// workload starts (they cannot be created lazily from a remote op).
func (a *App) Setup(c runtime.Cluster, events []string) {
	for _, id := range c.Replicas() {
		r := c.Replica(id)
		for _, e := range events {
			if a.variant == IPA {
				store.SeedCompSet(r, EventKey(e), a.capacity)
			} else {
				r.Object(EventKey(e), crdt.Ctor(crdt.KindAWSet))
			}
		}
	}
	// The event listing itself replicates normally.
	first := c.Replica(c.Replicas()[0])
	tx := first.Begin()
	for _, e := range events {
		store.AWSetAt(tx, KeyEvents).Add(e, "")
	}
	tx.Commit()
}

// Buy purchases one ticket for the event on behalf of buyer. The returned
// ticket ID is unique.
func (a *App) Buy(r runtime.Replica, buyer, event string) (string, *store.Txn) {
	tx := r.Begin()
	tag := tx.NewTag()
	ticket := crdt.JoinTuple(buyer, tag.String())
	if a.variant == IPA {
		store.CompSetAt(tx, EventKey(event)).Add(ticket, "")
	} else {
		store.AWSetAt(tx, EventKey(event)).Add(ticket, "")
	}
	tx.Commit()
	return ticket, tx
}

// View reads the sold tickets of an event. Under IPA this is where
// compensations trigger: observing an oversold event cancels the excess
// and records refunds in the same transaction.
func (a *App) View(r runtime.Replica, event string) ([]string, *store.Txn) {
	tx := r.Begin()
	if a.variant == IPA {
		ref := store.CompSetAt(tx, EventKey(event))
		before := ref.SizeObserved()
		elems := ref.Read()
		cancelled := before - len(elems)
		refunds := store.AWSetAt(tx, KeyRefunds)
		for i := 0; i < cancelled; i++ {
			// One refund record per cancelled ticket; the ledger key is
			// deterministic in the compensation decision, so replicas that
			// cancel the same ticket record the same refund.
			refunds.Add(crdt.JoinTuple(event, fmt.Sprintf("refund-%d-%d", before, i)), "")
		}
		tx.Commit()
		return elems, tx
	}
	elems := store.AWSetAt(tx, EventKey(event)).Elems()
	tx.Commit()
	return elems, tx
}

// Sold returns the raw number of tickets currently recorded for event.
func (a *App) Sold(r runtime.Replica, event string) int {
	tx := r.Begin()
	defer tx.Commit()
	if a.variant == IPA {
		return store.CompSetAt(tx, EventKey(event)).SizeObserved()
	}
	return store.AWSetAt(tx, EventKey(event)).Size()
}

// Oversold returns how many tickets beyond capacity are visible at r for
// the event — the invariant-violation measure of the paper's Fig. 7.
func (a *App) Oversold(r runtime.Replica, event string) int {
	n := a.Sold(r, event) - a.capacity
	if n < 0 {
		return 0
	}
	return n
}

// Refunds returns the number of refund records visible at r.
func (a *App) Refunds(r runtime.Replica) int {
	tx := r.Begin()
	defer tx.Commit()
	return store.AWSetAt(tx, KeyRefunds).Size()
}

// Violations reports per-event overselling at replica r.
func (a *App) Violations(r runtime.Replica, events []string) []string {
	var out []string
	for _, e := range events {
		if n := a.Oversold(r, e); n > 0 {
			out = append(out, fmt.Sprintf("event %s oversold by %d", e, n))
		}
	}
	return out
}
