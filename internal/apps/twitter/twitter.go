// Package twitter implements the paper's Twitter clone (§5.1.2): user
// timelines materialise tweets eagerly (a tweet is written to every
// follower's timeline), which makes referential integrity the dominant
// invariant — timeline entries must reference existing tweets by existing
// users.
//
// Three variants reproduce the strategies of the paper's Fig. 6:
//
//   - Causal: unmodified; concurrent deletes leave dangling timeline
//     entries.
//   - AddWins: tweet/retweet touch the author (and the original tweet on
//     retweet), so the restoring write wins: a concurrently deleted tweet
//     is recovered, a concurrently removed user is revived. Writers pay.
//   - RemWins: deletions win. A removed user's history is purged from all
//     timelines with wildcard rem-wins removes; a deleted tweet's
//     retweets are hidden lazily — a timeline read filters entries whose
//     tweet is gone and commits the cleanup as a compensation. Readers pay.
package twitter

import (
	"fmt"

	"ipa/internal/crdt"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
)

// Object keys.
const (
	KeyUsers   = "twitter/users"
	KeyTweets  = "twitter/tweets"
	KeyFollows = "twitter/follows"
)

// TimelineKey returns the timeline object key of a user.
func TimelineKey(user string) string { return "twitter/timeline/" + user }

// SpecSource is the application specification used by the analysis.
const SpecSource = `
spec twitter

invariant forall (Tweet: w, User: u) :- inTimeline(w, u) => tweet(w) and user(u)
invariant forall (Tweet: w) :- tweet(w) => author(w)
invariant forall (User: a, User: b) :- follows(a, b) => user(a) and user(b)

tag unique-ids

operation add_user(User: u) {
    user(u) := true
}
operation rem_user(User: u) {
    user(u) := false
}
operation tweet(Tweet: w, User: u) {
    tweet(w) := true
    author(w) := true
    inTimeline(w, u) := true
}
operation retweet(Tweet: w, User: u) {
    inTimeline(w, u) := true
}
operation del_tweet(Tweet: w) {
    tweet(w) := false
}
operation follow(User: a, User: b) {
    follows(a, b) := true
}
operation unfollow(User: a, User: b) {
    follows(a, b) := false
}
`

// Spec parses and returns the specification.
func Spec() *spec.Spec { return spec.MustParse(SpecSource) }

// Strategy selects the conflict-resolution flavour (paper Fig. 6).
type Strategy int

// Strategies.
const (
	Causal Strategy = iota
	AddWins
	RemWins
)

func (s Strategy) String() string {
	switch s {
	case AddWins:
		return "add-wins"
	case RemWins:
		return "rem-wins"
	}
	return "causal"
}

// App executes Twitter operations against a replicated store. Timeline
// entries are (tweetID, author) tuples; tweets are (tweetID, author)
// tuples with the text as payload.
type App struct {
	strategy Strategy
}

// New creates an application instance with the given strategy.
func New(strategy Strategy) *App { return &App{strategy: strategy} }

// Strategy returns the configured strategy.
func (a *App) Strategy() Strategy { return a.strategy }

// tweetElem encodes a tweet set element.
func tweetElem(id, author string) string { return crdt.JoinTuple(id, author) }

// timelineEntry encodes a timeline entry.
func timelineEntry(id, author string) string { return crdt.JoinTuple(id, author) }

// users returns the right set flavour for the strategy: rem-wins removal
// semantics need an RWSet.
func (a *App) usersRef(tx *store.Txn) interface {
	Add(string, string)
	Touch(string)
	Remove(string)
	Contains(string) bool
	Elems() []string
} {
	if a.strategy == RemWins {
		r := store.RWSetAt(tx, KeyUsers)
		return rwAdapter{r}
	}
	r := store.AWSetAt(tx, KeyUsers)
	return awAdapter{r}
}

type awAdapter struct{ store.AWSetRef }

func (x awAdapter) Add(e, p string)        { x.AWSetRef.Add(e, p) }
func (x awAdapter) Touch(e string)         { x.AWSetRef.Touch(e) }
func (x awAdapter) Remove(e string)        { x.AWSetRef.Remove(e) }
func (x awAdapter) Contains(e string) bool { return x.AWSetRef.Contains(e) }
func (x awAdapter) Elems() []string        { return x.AWSetRef.Elems() }

type rwAdapter struct{ store.RWSetRef }

func (x rwAdapter) Add(e, p string)        { x.RWSetRef.Add(e, p) }
func (x rwAdapter) Touch(e string)         { x.RWSetRef.Touch(e) }
func (x rwAdapter) Remove(e string)        { x.RWSetRef.Remove(e) }
func (x rwAdapter) Contains(e string) bool { return x.RWSetRef.Contains(e) }
func (x rwAdapter) Elems() []string        { return x.RWSetRef.Elems() }

// AddUser registers a user.
func (a *App) AddUser(r runtime.Replica, u string) *store.Txn {
	tx := r.Begin()
	a.usersRef(tx).Add(u, "profile:"+u)
	tx.Commit()
	return tx
}

// RemUser removes a user. The strategies differ on what happens to the
// user's published history (paper §5.1.2, Fig. 6):
//
//   - RemWins purges it everywhere — the user's tweets and every timeline
//     entry referencing them — with wildcard rem-wins removes that also
//     defeat concurrent retweets. Author referential integrity is
//     guaranteed, and rem_user is the expensive operation.
//   - Causal/AddWins only remove the account: published tweets outlive
//     it (the add-wins answer: content referenced by timelines is kept,
//     and a concurrent tweet even revives the account). rem_user stays
//     cheap; timelines never dangle on TWEETS, only the author link ages.
func (a *App) RemUser(r runtime.Replica, u string) *store.Txn {
	tx := r.Begin()
	users := a.usersRef(tx)
	if a.strategy == RemWins {
		for _, other := range users.Elems() {
			store.RWSetAt(tx, TimelineKey(other)).RemoveWhere(crdt.Match{Index: 1, Value: u})
		}
		store.AWSetAt(tx, KeyTweets).RemoveWhere(crdt.Match{Index: 1, Value: u})
	}
	users.Remove(u)
	tx.Commit()
	return tx
}

// followersOf lists the followers of u in the transaction's view.
func followersOf(tx *store.Txn, u string) []string {
	pairs := store.AWSetAt(tx, KeyFollows).ElemsWhere(crdt.Match{Index: 1, Value: u})
	out := make([]string, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, crdt.SplitTuple(p)[0])
	}
	return out
}

// timelineAdd appends an entry to one user's timeline (set flavour depends
// on the strategy so the RemWins wildcard purge can defeat concurrent
// inserts).
func (a *App) timelineAdd(tx *store.Txn, user, id, author string) {
	if a.strategy == RemWins {
		store.RWSetAt(tx, TimelineKey(user)).Add(timelineEntry(id, author), "")
	} else {
		store.AWSetAt(tx, TimelineKey(user)).Add(timelineEntry(id, author), "")
	}
}

// Tweet posts a new tweet and fans it out to the author's followers (and
// the author's own timeline). Precondition: the author exists at the
// origin.
func (a *App) Tweet(r runtime.Replica, author, id, text string) *store.Txn {
	tx := r.Begin()
	if a.usersRef(tx).Contains(author) {
		store.AWSetAt(tx, KeyTweets).Add(tweetElem(id, author), text)
		a.timelineAdd(tx, author, id, author)
		for _, f := range followersOf(tx, author) {
			a.timelineAdd(tx, f, id, author)
		}
		if a.strategy == AddWins {
			a.usersRef(tx).Touch(author)
		}
	}
	tx.Commit()
	return tx
}

// Retweet pushes an existing tweet to the retweeting user's followers.
// Preconditions: the retweeter and the tweet exist at the origin. Under
// AddWins the original tweet and its author are restored if removed
// concurrently (paper: "recover the deleted tweet").
func (a *App) Retweet(r runtime.Replica, user, id, origAuthor string) *store.Txn {
	tx := r.Begin()
	if a.usersRef(tx).Contains(user) && store.AWSetAt(tx, KeyTweets).Contains(tweetElem(id, origAuthor)) {
		a.timelineAdd(tx, user, id, origAuthor)
		for _, f := range followersOf(tx, user) {
			a.timelineAdd(tx, f, id, origAuthor)
		}
		if a.strategy == AddWins {
			store.AWSetAt(tx, KeyTweets).Touch(tweetElem(id, origAuthor))
			a.usersRef(tx).Touch(user)
			a.usersRef(tx).Touch(origAuthor)
		}
	}
	tx.Commit()
	return tx
}

// DelTweet deletes a tweet. Under RemWins the dangling timeline entries
// are hidden lazily by ReadTimeline's compensation.
func (a *App) DelTweet(r runtime.Replica, id, author string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyTweets).Remove(tweetElem(id, author))
	tx.Commit()
	return tx
}

// Follow subscribes follower to followee's tweets.
func (a *App) Follow(r runtime.Replica, follower, followee string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyFollows).Add(crdt.JoinTuple(follower, followee), "")
	if a.strategy == AddWins {
		a.usersRef(tx).Touch(follower)
		a.usersRef(tx).Touch(followee)
	}
	tx.Commit()
	return tx
}

// Unfollow removes the subscription.
func (a *App) Unfollow(r runtime.Replica, follower, followee string) *store.Txn {
	tx := r.Begin()
	store.AWSetAt(tx, KeyFollows).Remove(crdt.JoinTuple(follower, followee))
	tx.Commit()
	return tx
}

// ReadTimeline returns the visible tweets of a user's timeline. Under
// RemWins, entries whose tweet was deleted (or whose author was removed)
// are compensated away: hidden from the result and removed from the
// timeline in the same transaction (paper §5.2.3 — the read-side cost of
// the rem-wins strategy).
func (a *App) ReadTimeline(r runtime.Replica, user string) ([]string, *store.Txn) {
	tx := r.Begin()
	var visible []string
	tweets := store.AWSetAt(tx, KeyTweets)
	if a.strategy == RemWins {
		tl := store.RWSetAt(tx, TimelineKey(user))
		users := store.RWSetAt(tx, KeyUsers)
		for _, entry := range tl.Elems() {
			parts := crdt.SplitTuple(entry)
			id, author := parts[0], parts[1]
			if tweets.Contains(tweetElem(id, author)) && users.Contains(author) {
				visible = append(visible, entry)
			} else {
				tl.Remove(entry) // compensation: committed with this read
			}
		}
	} else {
		tl := store.AWSetAt(tx, TimelineKey(user))
		for _, entry := range tl.Elems() {
			visible = append(visible, entry)
		}
	}
	tx.Commit()
	return visible, tx
}

// Violations reports referential-integrity violations visible at replica
// r: timeline entries whose tweet no longer exists, and — under RemWins,
// the only strategy that promises it — entries whose author was removed.
// Under RemWins, entries that a timeline read would compensate away are
// not counted as violations for the *visible* state; the raw flag selects
// the uncompensated view.
func (a *App) Violations(r runtime.Replica, raw bool) []string {
	tx := r.Begin()
	defer tx.Commit()
	tweets := store.AWSetAt(tx, KeyTweets)

	var userSet interface{ Contains(string) bool }
	var allUsers []string
	if a.strategy == RemWins {
		u := store.RWSetAt(tx, KeyUsers)
		userSet, allUsers = u, u.Elems()
	} else {
		u := store.AWSetAt(tx, KeyUsers)
		userSet, allUsers = u, u.Elems()
	}

	var out []string
	check := func(owner string, entries []string) {
		for _, entry := range entries {
			parts := crdt.SplitTuple(entry)
			id, author := parts[0], parts[1]
			if !tweets.Contains(tweetElem(id, author)) {
				out = append(out, fmt.Sprintf("timeline(%s): tweet %s deleted", owner, id))
			}
			if a.strategy == RemWins && !userSet.Contains(author) {
				out = append(out, fmt.Sprintf("timeline(%s): author %s removed", owner, author))
			}
		}
	}
	for _, u := range allUsers {
		if a.strategy == RemWins {
			entries := store.RWSetAt(tx, TimelineKey(u)).Elems()
			if !raw {
				// The visible state is what a compensated read returns:
				// entries with live tweet and author. Verify that filter
				// indeed leaves nothing dangling (without mutating).
				var visible []string
				for _, entry := range entries {
					parts := crdt.SplitTuple(entry)
					if tweets.Contains(tweetElem(parts[0], parts[1])) && userSet.Contains(parts[1]) {
						visible = append(visible, entry)
					}
				}
				entries = visible
			}
			check(u, entries)
		} else {
			check(u, store.AWSetAt(tx, TimelineKey(u)).Elems())
		}
	}
	return out
}
