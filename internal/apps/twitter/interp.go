package twitter

import (
	"ipa/internal/crdt"
	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/store"
)

// Interp extracts the logical interpretation of a replica's current state
// — the mapping from this package's hand-chosen CRDT layout back to the
// specification's predicates — so the hand-coded executor's state can be
// digest-compared with the spec-driven engine's, which extracts the same
// abstraction from its own generic layout.
//
// Two representation gaps are inherent to the hand layout and define the
// comparable fragment:
//
//   - author(w) is not extracted. The spec keeps the unary author fact
//     independent of the tweet (del_tweet falsifies tweet(w) only), while
//     the hand layout embeds the author inside the tweet tuple — deleting
//     the tweet deletes the only record of authorship. Equivalence
//     comparisons therefore exclude the author predicate.
//   - inTimeline(w, u) is extracted only for visible users u. The hand
//     layout never clears a removed user's timeline object; it hides it
//     by dropping the user, which is exactly what the analyzed spec's
//     rem_user wipe (inTimeline(*, u) := false, see Analysis) achieves
//     eagerly.
func Interp(r runtime.Replica, strategy Strategy) logic.Interp {
	tx := r.Begin()
	defer tx.Commit()

	truth := map[string]bool{}
	domain := map[logic.Sort][]string{"Tweet": {}, "User": {}}
	seenW := map[string]bool{}
	seenU := map[string]bool{}
	addTweet := func(w string) {
		if !seenW[w] {
			seenW[w] = true
			domain["Tweet"] = append(domain["Tweet"], w)
		}
	}
	addUser := func(u string) {
		if !seenU[u] {
			seenU[u] = true
			domain["User"] = append(domain["User"], u)
		}
	}

	var users []string
	if strategy == RemWins {
		users = store.RWSetAt(tx, KeyUsers).Elems()
	} else {
		users = store.AWSetAt(tx, KeyUsers).Elems()
	}
	for _, u := range users {
		truth[logic.GroundAtom("user", u)] = true
		addUser(u)
	}
	for _, e := range store.AWSetAt(tx, KeyTweets).Elems() {
		parts := crdt.SplitTuple(e)
		truth[logic.GroundAtom("tweet", parts[0])] = true
		addTweet(parts[0])
	}
	for _, p := range store.AWSetAt(tx, KeyFollows).Elems() {
		parts := crdt.SplitTuple(p)
		truth[logic.GroundAtom("follows", parts[0], parts[1])] = true
		addUser(parts[0])
		addUser(parts[1])
	}
	for _, u := range users {
		var entries []string
		if strategy == RemWins {
			entries = store.RWSetAt(tx, TimelineKey(u)).Elems()
		} else {
			entries = store.AWSetAt(tx, TimelineKey(u)).Elems()
		}
		for _, e := range entries {
			parts := crdt.SplitTuple(e)
			truth[logic.GroundAtom("inTimeline", parts[0], u)] = true
			addTweet(parts[0])
		}
	}

	return logic.Interp{
		Domain: domain,
		Truth:  truth,
		Consts: map[string]int{},
	}
}
