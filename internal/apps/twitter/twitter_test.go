package twitter

import (
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func newCluster(seed int64) (*wan.Sim, *store.Cluster) {
	sim := wan.NewSim(seed)
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	return sim, store.NewCluster(sim, wan.PaperTopology(), ids)
}

func seedUsers(sim *wan.Sim, c *store.Cluster, app *App) {
	east := c.Replica(wan.USEast)
	app.AddUser(east, "alice")
	app.AddUser(east, "bob")
	app.AddUser(east, "carol")
	app.Follow(east, "bob", "alice")   // bob follows alice
	app.Follow(east, "carol", "alice") // carol follows alice
	app.Follow(east, "carol", "bob")
	sim.Run()
}

func TestTweetFansOutToFollowers(t *testing.T) {
	sim, c := newCluster(1)
	app := New(Causal)
	seedUsers(sim, c, app)
	app.Tweet(c.Replica(wan.USEast), "alice", "tw1", "hello")
	sim.Run()
	for _, u := range []string{"alice", "bob", "carol"} {
		tl, _ := app.ReadTimeline(c.Replica(wan.EUWest), u)
		if len(tl) != 1 {
			t.Fatalf("%s timeline = %v", u, tl)
		}
	}
}

// Retweet concurrent with delete: under Causal the followers keep a
// dangling reference; under AddWins the tweet is recovered (paper §5.1.2).
func TestRetweetVsDeleteAddWins(t *testing.T) {
	for _, strat := range []Strategy{Causal, AddWins} {
		sim, c := newCluster(2)
		app := New(strat)
		seedUsers(sim, c, app)
		app.Tweet(c.Replica(wan.USEast), "alice", "tw1", "hello")
		sim.Run()

		// Concurrent: alice deletes; bob retweets (to carol's timeline).
		app.DelTweet(c.Replica(wan.USEast), "tw1", "alice")
		app.Retweet(c.Replica(wan.USWest), "bob", "tw1", "alice")
		sim.Run()

		viol := app.Violations(c.Replica(wan.EUWest), true)
		switch strat {
		case Causal:
			if len(viol) == 0 {
				t.Fatal("causal should leave dangling timeline entries")
			}
		case AddWins:
			if len(viol) != 0 {
				t.Fatalf("add-wins should recover the tweet: %v", viol)
			}
		}
	}
}

// The same conflict under RemWins: the delete wins, and timeline reads
// compensate the dangling entries away.
func TestRetweetVsDeleteRemWins(t *testing.T) {
	sim, c := newCluster(3)
	app := New(RemWins)
	seedUsers(sim, c, app)
	app.Tweet(c.Replica(wan.USEast), "alice", "tw1", "hello")
	sim.Run()

	app.DelTweet(c.Replica(wan.USEast), "tw1", "alice")
	app.Retweet(c.Replica(wan.USWest), "bob", "tw1", "alice")
	sim.Run()

	// The visible (compensated) state is clean.
	if viol := app.Violations(c.Replica(wan.EUWest), false); len(viol) != 0 {
		t.Fatalf("compensated view should be clean: %v", viol)
	}
	// Reads hide the tweet and repair the timeline.
	tl, tx := app.ReadTimeline(c.Replica(wan.EUWest), "carol")
	for _, e := range tl {
		if e == "tw1" {
			t.Fatal("deleted tweet visible")
		}
	}
	if tx.Updates() == 0 {
		t.Fatal("read should have committed compensating removals")
	}
	sim.Run()
	// After the compensation replicates, the raw state is clean too.
	tl2, tx2 := app.ReadTimeline(c.Replica(wan.USEast), "carol")
	_ = tl2
	if tx2.Updates() != 0 {
		t.Fatal("second read should find nothing to compensate")
	}
}

// Removing a user under RemWins purges their history from all timelines,
// defeating concurrent retweets of their tweets.
func TestRemUserPurgesRemWins(t *testing.T) {
	sim, c := newCluster(4)
	app := New(RemWins)
	seedUsers(sim, c, app)
	app.Tweet(c.Replica(wan.USEast), "alice", "tw1", "hello")
	sim.Run()

	// Concurrent: east removes alice; west retweets alice's tweet.
	app.RemUser(c.Replica(wan.USEast), "alice")
	app.Retweet(c.Replica(wan.USWest), "bob", "tw1", "alice")
	sim.Run()

	// Alice's entries must be gone everywhere, including the concurrent
	// retweet fan-out (wildcard rem-wins).
	for _, id := range c.Replicas() {
		if viol := app.Violations(c.Replica(id), true); len(viol) != 0 {
			t.Fatalf("replica %s: raw violations remain: %v", id, viol)
		}
		tl, _ := app.ReadTimeline(c.Replica(id), "carol")
		if len(tl) != 0 {
			t.Fatalf("replica %s: purged author still visible: %v", id, tl)
		}
	}
}

// Under AddWins, a concurrent tweet revives the removed user.
func TestRemUserVsTweetAddWins(t *testing.T) {
	sim, c := newCluster(5)
	app := New(AddWins)
	seedUsers(sim, c, app)

	app.RemUser(c.Replica(wan.USEast), "alice")
	app.Tweet(c.Replica(wan.USWest), "alice", "tw9", "still here")
	sim.Run()

	tx := c.Replica(wan.EUWest).Begin()
	alive := store.AWSetAt(tx, KeyUsers).Contains("alice")
	tx.Commit()
	if !alive {
		t.Fatal("add-wins: tweeting user must be revived")
	}
	if viol := app.Violations(c.Replica(wan.EUWest), true); len(viol) != 0 {
		t.Fatalf("violations: %v", viol)
	}
}

func TestFollowUnfollow(t *testing.T) {
	sim, c := newCluster(6)
	app := New(Causal)
	seedUsers(sim, c, app)
	app.Unfollow(c.Replica(wan.USEast), "bob", "alice")
	sim.Run()
	app.Tweet(c.Replica(wan.USWest), "alice", "tw2", "bye")
	sim.Run()
	tl, _ := app.ReadTimeline(c.Replica(wan.USEast), "bob")
	if len(tl) != 0 {
		t.Fatalf("bob unfollowed but got the tweet: %v", tl)
	}
	tl2, _ := app.ReadTimeline(c.Replica(wan.USEast), "carol")
	if len(tl2) != 1 {
		t.Fatalf("carol should still receive: %v", tl2)
	}
}

// The analysis on the Twitter spec repairs the tweet/rem_user and
// retweet/del_tweet conflicts.
func TestSpecAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis integration is slow")
	}
	res, err := analysis.Run(Spec(), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved conflicts: %d\n%s", len(res.Unsolved), res.Summary())
	}
	if len(res.Applied) == 0 {
		t.Fatal("expected repairs for the twitter spec")
	}
}

func TestStrategyString(t *testing.T) {
	if Causal.String() != "causal" || AddWins.String() != "add-wins" || RemWins.String() != "rem-wins" {
		t.Fatal("strategy strings")
	}
}
