package twitter

import (
	"sync"

	"ipa/internal/analysis"
	"ipa/internal/logic"
	"ipa/internal/spec"
)

// Analysis runs the full IPA loop on the Twitter specification with the
// paper's Fig. 6 rem-wins repair choices and caches the result (the loop
// costs seconds; the output is immutable). The analysis proposes several
// valid resolutions per conflict and the paper's pickResolution hook is
// the programmer — this function records the programmer decision the
// hand-coded RemWins variant implements: deletions win. rem_user purges
// the removed user's timeline and follow edges; del_tweet purges the
// deleted tweet's timeline entries everywhere — both as rem-wins
// wildcard removals that also defeat concurrent inserts. The alternative
// (add-wins: writers re-assert what removals took, the default minimal
// repair) is what the hand-coded AddWins variant implements.
func Analysis() *analysis.Result {
	analysisOnce.Do(func() {
		res, err := analysis.Run(Spec(), analysis.Options{Chooser: remWinsChooser})
		if err != nil {
			panic("twitter: analysis failed: " + err.Error())
		}
		analysisRes = res
	})
	return analysisRes
}

var (
	analysisOnce sync.Once
	analysisRes  *analysis.Result
)

// remWinsChooser picks, for every conflict, the repair that makes the
// deleting operation win by falsifying the dependent atoms (fewest
// wildcards, so rem_user wipes only the removed user's rows). The
// rem_user ∥ follow conflict needs the two-effect pair wipe —
// follows(u, *) and follows(*, u) — because the only single-effect
// falsification on offer is the far-too-wide follows(*, *).
func remWinsChooser(c *analysis.Conflict, reps []analysis.Repair) int {
	names := map[string]bool{c.Op1.Name: true, c.Op2.Name: true}
	if names["rem_user"] && names["follow"] {
		for i, r := range reps {
			if ok, _ := allFalsify(r); ok && r.Target == "rem_user" && len(r.Extra) == 2 {
				return i
			}
		}
		return 0
	}
	best, bestWilds := -1, int(^uint(0)>>1)
	for i, r := range reps {
		if ok, wilds := allFalsify(r); ok && wilds < bestWilds {
			best, bestWilds = i, wilds
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// allFalsify reports whether every extra effect of the repair is a
// boolean falsification, and how many wildcard arguments they carry.
func allFalsify(r analysis.Repair) (bool, int) {
	if len(r.Extra) == 0 {
		return false, 0
	}
	wilds := 0
	for _, e := range r.Extra {
		if e.Kind != spec.BoolAssign || e.Val {
			return false, 0
		}
		for _, a := range e.Args {
			if a.Kind == logic.TermWildcard {
				wilds++
			}
		}
	}
	return true, wilds
}
