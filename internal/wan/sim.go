// Package wan is a deterministic discrete-event simulator of a
// geo-replicated deployment: a virtual clock, an event queue, and a
// configurable inter-datacenter latency model. It stands in for the
// paper's three-region Amazon EC2 testbed (§5.2.1), reproducing the
// latency ratios that drive the evaluation — local commits cost
// microseconds while cross-region round trips cost tens to hundreds of
// simulated milliseconds.
package wan

import (
	"container/heap"
	"math/rand"
)

// Time is virtual time in microseconds.
type Time int64

// Convenient units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
)

// Ms converts a float of milliseconds to Time.
func Ms(f float64) Time { return Time(f * float64(Millisecond)) }

// Millis converts a Time to float milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. Events scheduled for
// the same instant run in scheduling order. Not safe for concurrent use.
type Sim struct {
	now Time
	pq  eventHeap
	seq uint64
	rng *rand.Rand

	// Executed counts processed events (diagnostics).
	Executed uint64
}

// NewSim creates a simulator with a seeded deterministic PRNG.
func NewSim(seed int64) *Sim {
	return NewSimFromRand(rand.New(rand.NewSource(seed)))
}

// NewSimFromRand creates a simulator that draws all its randomness from
// the given PRNG. Injecting the generator lets a harness share one seeded
// source across the simulator and its own decisions, so an entire run is
// reproducible from a single seed.
func NewSimFromRand(rng *rand.Rand) *Sim {
	return &Sim{rng: rng}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's PRNG (deterministic per seed).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step executes the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	e := heap.Pop(&s.pq).(event)
	s.now = e.at
	s.Executed++
	e.fn()
	return true
}

// Run drains the event queue.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.pq) > 0 && s.pq[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// Latency models one-way message delays between sites, with optional
// uniform jitter expressed as a fraction of the base delay.
type Latency struct {
	base   map[[2]string]Time
	scale  map[[2]string]float64 // fault-injected delay multipliers
	def    Time
	Jitter float64
	// Partitioned links drop into the blocked set managed by the store;
	// the latency model only answers "how long".
}

// NewLatency creates a latency model with the given default one-way delay.
func NewLatency(def Time) *Latency {
	return &Latency{base: map[[2]string]Time{}, scale: map[[2]string]float64{}, def: def}
}

// SetOneWay sets the one-way delay in both directions between two sites.
func (l *Latency) SetOneWay(a, b string, d Time) {
	l.base[[2]string{a, b}] = d
	l.base[[2]string{b, a}] = d
}

// SetScale installs a delay multiplier on the link between two sites (both
// directions) — the fault-injection hook for congestion and delay spikes.
// A factor of 1 (or less than or equal to zero) clears the spike. Scales
// affect OneWay only; RTT keeps reporting the base topology, so
// coordination cost models are not silently distorted by injected faults.
func (l *Latency) SetScale(a, b string, factor float64) {
	if factor <= 0 {
		factor = 1
	}
	for _, key := range [][2]string{{a, b}, {b, a}} {
		if factor == 1 {
			delete(l.scale, key)
		} else {
			l.scale[key] = factor
		}
	}
}

// ClearScale removes the delay multiplier between two sites.
func (l *Latency) ClearScale(a, b string) { l.SetScale(a, b, 1) }

// OneWay returns the one-way delay from a to b, with any injected delay
// scale and jitter applied.
func (l *Latency) OneWay(a, b string, rng *rand.Rand) Time {
	d, ok := l.base[[2]string{a, b}]
	if !ok {
		d = l.def
	}
	if f, ok := l.scale[[2]string{a, b}]; ok {
		d = Time(float64(d) * f)
	}
	if l.Jitter > 0 && rng != nil {
		span := float64(d) * l.Jitter
		d += Time((rng.Float64()*2 - 1) * span)
		if d < 0 {
			d = 0
		}
	}
	return d
}

// RTT returns the base round-trip time between two sites (no jitter).
func (l *Latency) RTT(a, b string) Time {
	return l.baseOf(a, b) + l.baseOf(b, a)
}

func (l *Latency) baseOf(a, b string) Time {
	if d, ok := l.base[[2]string{a, b}]; ok {
		return d
	}
	return l.def
}

// Paper deployment site names (§5.2.1).
const (
	USEast = "us-east"
	USWest = "us-west"
	EUWest = "eu-west"
)

// PaperTopology returns the paper's three-region latency model: ~80 ms
// RTT between us-east and each of us-west/eu-west, ~160 ms RTT between
// eu-west and us-west (one-way delays are half the RTT), with mild jitter.
func PaperTopology() *Latency {
	l := NewLatency(Ms(40))
	l.SetOneWay(USEast, USWest, Ms(40))
	l.SetOneWay(USEast, EUWest, Ms(40))
	l.SetOneWay(USWest, EUWest, Ms(80))
	l.SetOneWay(USEast, USEast, Ms(0.25))
	l.SetOneWay(USWest, USWest, Ms(0.25))
	l.SetOneWay(EUWest, EUWest, Ms(0.25))
	l.Jitter = 0.05
	return l
}

// Sites returns the paper's replica site names.
func Sites() []string { return []string{USEast, USWest, EUWest} }
