package wan

import (
	"math/rand"
	"testing"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.After(Ms(10), func() { got = append(got, 2) })
	s.After(Ms(5), func() { got = append(got, 1) })
	s.After(Ms(10), func() { got = append(got, 3) }) // same instant: FIFO
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != Ms(10) {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Executed != 3 {
		t.Fatalf("executed = %d", s.Executed)
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(1)
	var fired []Time
	s.After(Ms(1), func() {
		s.After(Ms(2), func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 1 || fired[0] != Ms(3) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim(1)
	ran := 0
	s.After(Ms(5), func() { ran++ })
	s.After(Ms(15), func() { ran++ })
	s.RunUntil(Ms(10))
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != Ms(10) {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if ran != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestSimPastEventsClamp(t *testing.T) {
	s := NewSim(1)
	s.After(Ms(10), func() {
		// Scheduling in the past must clamp to now, not travel back.
		s.At(Ms(1), func() {
			if s.Now() < Ms(10) {
				t.Fatal("time went backwards")
			}
		})
	})
	s.Run()
}

func TestSimDeterminism(t *testing.T) {
	run := func() []Time {
		s := NewSim(42)
		l := PaperTopology()
		var out []Time
		for i := 0; i < 20; i++ {
			d := l.OneWay(USEast, EUWest, s.Rand())
			s.After(d, func() { out = append(out, s.Now()) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLatencyModel(t *testing.T) {
	l := PaperTopology()
	if rtt := l.RTT(USEast, USWest); rtt != Ms(80) {
		t.Fatalf("us-east<->us-west RTT = %v, want 80ms", rtt.Millis())
	}
	if rtt := l.RTT(USWest, EUWest); rtt != Ms(160) {
		t.Fatalf("us-west<->eu-west RTT = %v, want 160ms", rtt.Millis())
	}
	if rtt := l.RTT(USEast, EUWest); rtt != Ms(80) {
		t.Fatalf("us-east<->eu-west RTT = %v, want 80ms", rtt.Millis())
	}
	// Jitter bounded.
	s := NewSim(7)
	for i := 0; i < 100; i++ {
		d := l.OneWay(USEast, USWest, s.Rand())
		if d < Ms(38) || d > Ms(42) {
			t.Fatalf("jittered delay out of 5%% band: %v", d.Millis())
		}
	}
	// Unknown pair gets the default.
	if d := l.OneWay("mars", "venus", nil); d != Ms(40) {
		t.Fatalf("default = %v", d)
	}
}

func TestTimeUnits(t *testing.T) {
	if Ms(1.5) != 1500*Microsecond {
		t.Fatal("Ms conversion")
	}
	if (250 * Millisecond).Millis() != 250 {
		t.Fatal("Millis conversion")
	}
	if Second != 1000*Millisecond {
		t.Fatal("Second")
	}
	if len(Sites()) != 3 {
		t.Fatal("Sites")
	}
}

func TestLatencyScale(t *testing.T) {
	l := NewLatency(Ms(40))
	l.SetOneWay("a", "b", Ms(10))
	if d := l.OneWay("a", "b", nil); d != Ms(10) {
		t.Fatalf("base delay = %v, want 10ms", d.Millis())
	}
	l.SetScale("a", "b", 5)
	if d := l.OneWay("a", "b", nil); d != Ms(50) {
		t.Fatalf("scaled delay = %v, want 50ms", d.Millis())
	}
	if d := l.OneWay("b", "a", nil); d != Ms(50) {
		t.Fatalf("scale not symmetric: %v", d.Millis())
	}
	// RTT ignores the injected spike: it reports the base topology.
	if rtt := l.RTT("a", "b"); rtt != Ms(20) {
		t.Fatalf("RTT = %v, want 20ms", rtt.Millis())
	}
	l.ClearScale("a", "b")
	if d := l.OneWay("a", "b", nil); d != Ms(10) {
		t.Fatalf("cleared delay = %v, want 10ms", d.Millis())
	}
	// Factor <= 0 clears rather than zeroing delays.
	l.SetScale("a", "b", 3)
	l.SetScale("a", "b", 0)
	if d := l.OneWay("a", "b", nil); d != Ms(10) {
		t.Fatalf("factor 0 should clear, got %v", d.Millis())
	}
}

func TestNewSimFromRand(t *testing.T) {
	run := func() []Time {
		sim := NewSimFromRand(rand.New(rand.NewSource(99)))
		var out []Time
		l := NewLatency(Ms(40))
		l.Jitter = 0.5
		for i := 0; i < 10; i++ {
			out = append(out, l.OneWay("x", "y", sim.Rand()))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injected rand not deterministic: %v vs %v", a, b)
		}
	}
}
