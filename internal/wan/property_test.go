package wan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: events fire in non-decreasing virtual-time order, regardless
// of the scheduling order, and same-instant events fire FIFO.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16, seed int64) bool {
		s := NewSim(seed)
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		for i, d := range delays {
			i, d := i, d
			s.After(Time(d), func() { log = append(log, fired{at: s.Now(), seq: i}) })
		}
		s.Run()
		if len(log) != len(delays) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false // time went backwards
			}
			if log[i].at == log[i-1].at && delays[log[i].seq] == delays[log[i-1].seq] &&
				log[i].seq < log[i-1].seq {
				return false // same-instant events must be FIFO
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes events beyond the bound, and a
// subsequent Run executes exactly the remainder.
func TestQuickRunUntilPartition(t *testing.T) {
	f := func(delays []uint16, bound uint16) bool {
		s := NewSim(1)
		total := len(delays)
		ran := 0
		for _, d := range delays {
			s.After(Time(d), func() { ran++ })
		}
		s.RunUntil(Time(bound))
		early := ran
		for _, d := range delays {
			if Time(d) <= Time(bound) && early == 0 && total > 0 {
				_ = d
			}
		}
		if s.Now() < Time(bound) {
			return false
		}
		s.Run()
		return ran == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Latency jitter stays within the configured band for every pair.
func TestJitterBand(t *testing.T) {
	l := NewLatency(Ms(100))
	l.SetOneWay("a", "b", Ms(60))
	l.Jitter = 0.25
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		d := l.OneWay("a", "b", rng)
		if d < Ms(45) || d > Ms(75) {
			t.Fatalf("jittered delay %v outside 25%% band of 60ms", d.Millis())
		}
		def := l.OneWay("x", "y", rng)
		if def < Ms(75) || def > Ms(125) {
			t.Fatalf("default-delay jitter out of band: %v", def.Millis())
		}
	}
}
