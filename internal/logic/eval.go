package logic

import (
	"fmt"
	"strings"
)

// Interp is a finite interpretation: a domain per sort, truth values for
// ground boolean atoms, integer values for ground numeric fields, and
// values for named constants. Missing atoms read as false, missing
// numeric entries as zero — convenient for sparse states.
type Interp struct {
	Domain map[Sort][]string
	Truth  map[string]bool
	Nums   map[string]int
	Consts map[string]int
}

// GroundAtom builds the canonical key Eval uses for a ground atom, e.g.
// "enrolled(P1,T1)".
func GroundAtom(pred string, args ...string) string {
	if len(args) == 0 {
		return pred
	}
	return pred + "(" + strings.Join(args, ",") + ")"
}

// Eval evaluates a formula under the interpretation with the given
// variable binding. Quantifiers range over the interpretation's domain.
// It returns an error for unbound variables or unknown sorts.
//
// Counts enumerate the domain, so wildcard arguments need the predicate's
// argument sorts; pass them via Interp.Domain and the sorts parameter of
// EvalCount — for formula-level use, wildcards only appear inside counts
// whose sorts are provided by the quantifier context of the paper's
// invariants, so Eval restricts wildcards to single-sort domains: if the
// domain has exactly one sort, wildcards range over it; otherwise counts
// with wildcards need every argument bound and Eval reports an error.
func (in Interp) Eval(f Formula, env map[string]string) (bool, error) {
	switch g := f.(type) {
	case *BoolLit:
		return g.Val, nil
	case *Atom:
		key, err := in.groundKey(g.Pred, g.Args, env)
		if err != nil {
			return false, err
		}
		return in.Truth[key], nil
	case *Not:
		v, err := in.Eval(g.F, env)
		return !v, err
	case *And:
		for _, c := range g.L {
			v, err := in.Eval(c, env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case *Or:
		for _, c := range g.L {
			v, err := in.Eval(c, env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case *Implies:
		a, err := in.Eval(g.A, env)
		if err != nil {
			return false, err
		}
		if !a {
			return true, nil
		}
		return in.Eval(g.B, env)
	case *Forall:
		return in.evalForall(g, env)
	case *Cmp:
		l, err := in.evalNum(g.L, env)
		if err != nil {
			return false, err
		}
		r, err := in.evalNum(g.R, env)
		if err != nil {
			return false, err
		}
		switch g.Op {
		case EQ:
			return l == r, nil
		case NE:
			return l != r, nil
		case LT:
			return l < r, nil
		case LE:
			return l <= r, nil
		case GT:
			return l > r, nil
		case GE:
			return l >= r, nil
		}
		return false, fmt.Errorf("logic: unknown comparison %v", g.Op)
	}
	return false, fmt.Errorf("logic: cannot evaluate %T", f)
}

func (in Interp) evalForall(g *Forall, env map[string]string) (bool, error) {
	var rec func(i int, env map[string]string) (bool, error)
	rec = func(i int, env map[string]string) (bool, error) {
		if i == len(g.Vars) {
			return in.Eval(g.Body, env)
		}
		elems, ok := in.Domain[g.Vars[i].Sort]
		if !ok {
			return false, fmt.Errorf("logic: sort %q not in domain", g.Vars[i].Sort)
		}
		for _, el := range elems {
			inner := make(map[string]string, len(env)+1)
			for k, v := range env {
				inner[k] = v
			}
			inner[g.Vars[i].Name] = el
			v, err := rec(i+1, inner)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	}
	return rec(0, env)
}

func (in Interp) evalNum(t NumTerm, env map[string]string) (int, error) {
	switch u := t.(type) {
	case *IntLit:
		return u.N, nil
	case *ConstRef:
		return in.Consts[u.Name], nil
	case *FnApp:
		key, err := in.groundKey(u.Fn, u.Args, env)
		if err != nil {
			return 0, err
		}
		return in.Nums[key], nil
	case *Count:
		return in.evalCount(u, env)
	case *NumBin:
		l, err := in.evalNum(u.L, env)
		if err != nil {
			return 0, err
		}
		r, err := in.evalNum(u.R, env)
		if err != nil {
			return 0, err
		}
		if u.Op == '-' {
			return l - r, nil
		}
		return l + r, nil
	}
	return 0, fmt.Errorf("logic: cannot evaluate numeric term %T", t)
}

// evalCount counts true atoms matching the pattern. Wildcards enumerate
// the whole atom table: any true atom of the predicate whose bound
// positions match is counted, which avoids needing per-position sorts.
func (in Interp) evalCount(u *Count, env map[string]string) (int, error) {
	// Resolve the bound positions.
	pattern := make([]string, len(u.Args))
	for i, a := range u.Args {
		switch a.Kind {
		case TermVar:
			el, ok := env[a.Name]
			if !ok {
				return 0, fmt.Errorf("logic: unbound variable %q in count", a.Name)
			}
			pattern[i] = el
		case TermConst:
			pattern[i] = a.Name
		case TermWildcard:
			pattern[i] = ""
		}
	}
	n := 0
	prefix := u.Pred + "("
	for key, v := range in.Truth {
		if !v || !strings.HasPrefix(key, prefix) || !strings.HasSuffix(key, ")") {
			continue
		}
		args := strings.Split(key[len(prefix):len(key)-1], ",")
		if len(args) != len(pattern) {
			continue
		}
		match := true
		for i := range pattern {
			if pattern[i] != "" && pattern[i] != args[i] {
				match = false
				break
			}
		}
		if match {
			n++
		}
	}
	return n, nil
}

// groundKey builds the Truth/Nums lookup key for an atom under env —
// the single-Builder equivalent of GroundAtom. This runs once per atom
// per guard evaluation, so it allocates exactly the key string.
func (in Interp) groundKey(pred string, args []Term, env map[string]string) (string, error) {
	if len(args) == 0 {
		return pred, nil
	}
	var b strings.Builder
	b.Grow(len(pred) + 2 + 12*len(args))
	b.WriteString(pred)
	b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		switch a.Kind {
		case TermVar:
			el, ok := env[a.Name]
			if !ok {
				return "", fmt.Errorf("logic: unbound variable %q in %s", a.Name, pred)
			}
			b.WriteString(el)
		case TermConst:
			b.WriteString(a.Name)
		case TermWildcard:
			return "", fmt.Errorf("logic: wildcard outside count in %s", pred)
		}
	}
	b.WriteByte(')')
	return b.String(), nil
}
