package logic

import "sort"

// Subst maps variable names to replacement terms.
type Subst map[string]Term

// Apply substitutes free variables in f according to s. Bound variables
// shadow the substitution. The input formula is not modified.
func (s Subst) Apply(f Formula) Formula {
	if len(s) == 0 {
		return f
	}
	switch g := f.(type) {
	case *BoolLit:
		return g
	case *Atom:
		return &Atom{Pred: g.Pred, Args: s.applyTerms(g.Args)}
	case *Not:
		return &Not{F: s.Apply(g.F)}
	case *And:
		return &And{L: s.applyAll(g.L)}
	case *Or:
		return &Or{L: s.applyAll(g.L)}
	case *Implies:
		return &Implies{A: s.Apply(g.A), B: s.Apply(g.B)}
	case *Forall:
		inner := s.without(g.Vars)
		return &Forall{Vars: g.Vars, Body: inner.Apply(g.Body)}
	case *Cmp:
		return &Cmp{Op: g.Op, L: s.ApplyNum(g.L), R: s.ApplyNum(g.R)}
	}
	panic("logic: unknown formula node")
}

// ApplyNum substitutes free variables in a numeric term.
func (s Subst) ApplyNum(t NumTerm) NumTerm {
	switch u := t.(type) {
	case *IntLit, *ConstRef:
		return t
	case *Count:
		return &Count{Pred: u.Pred, Args: s.applyTerms(u.Args)}
	case *FnApp:
		return &FnApp{Fn: u.Fn, Args: s.applyTerms(u.Args)}
	case *NumBin:
		return &NumBin{Op: u.Op, L: s.ApplyNum(u.L), R: s.ApplyNum(u.R)}
	}
	panic("logic: unknown numeric term")
}

func (s Subst) applyAll(fs []Formula) []Formula {
	out := make([]Formula, len(fs))
	for i, f := range fs {
		out[i] = s.Apply(f)
	}
	return out
}

func (s Subst) applyTerms(args []Term) []Term {
	out := make([]Term, len(args))
	for i, a := range args {
		if a.Kind == TermVar {
			if r, ok := s[a.Name]; ok {
				out[i] = r
				continue
			}
		}
		out[i] = a
	}
	return out
}

func (s Subst) without(vars []Var) Subst {
	shadowed := false
	for _, v := range vars {
		if _, ok := s[v.Name]; ok {
			shadowed = true
			break
		}
	}
	if !shadowed {
		return s
	}
	inner := make(Subst, len(s))
	for k, t := range s {
		inner[k] = t
	}
	for _, v := range vars {
		delete(inner, v.Name)
	}
	return inner
}

// FreeVars returns the names of free variables in f, sorted.
func FreeVars(f Formula) []string {
	set := map[string]bool{}
	collectFree(f, map[string]bool{}, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFree(f Formula, bound, out map[string]bool) {
	switch g := f.(type) {
	case *BoolLit:
	case *Atom:
		collectFreeTerms(g.Args, bound, out)
	case *Not:
		collectFree(g.F, bound, out)
	case *And:
		for _, c := range g.L {
			collectFree(c, bound, out)
		}
	case *Or:
		for _, c := range g.L {
			collectFree(c, bound, out)
		}
	case *Implies:
		collectFree(g.A, bound, out)
		collectFree(g.B, bound, out)
	case *Forall:
		inner := map[string]bool{}
		for v := range bound {
			inner[v] = true
		}
		for _, v := range g.Vars {
			inner[v.Name] = true
		}
		collectFree(g.Body, inner, out)
	case *Cmp:
		collectFreeNum(g.L, bound, out)
		collectFreeNum(g.R, bound, out)
	}
}

func collectFreeNum(t NumTerm, bound, out map[string]bool) {
	switch u := t.(type) {
	case *Count:
		collectFreeTerms(u.Args, bound, out)
	case *FnApp:
		collectFreeTerms(u.Args, bound, out)
	case *NumBin:
		collectFreeNum(u.L, bound, out)
		collectFreeNum(u.R, bound, out)
	}
}

func collectFreeTerms(args []Term, bound, out map[string]bool) {
	for _, a := range args {
		if a.Kind == TermVar && !bound[a.Name] {
			out[a.Name] = true
		}
	}
}

// PredRef describes one predicate or numeric field occurrence: its name,
// arity, the sorts of its arguments (when derivable from quantifier
// context), and whether it occurs as a numeric field.
type PredRef struct {
	Name    string
	Arity   int
	Sorts   []Sort
	Numeric bool
}

// Predicates walks f and returns every predicate and numeric field used,
// with argument sorts inferred from the quantifiers binding the argument
// variables. Deterministic order (by name).
func Predicates(f Formula) []PredRef {
	acc := map[string]*PredRef{}
	collectPreds(f, map[string]Sort{}, acc)
	names := make([]string, 0, len(acc))
	for n := range acc {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]PredRef, len(names))
	for i, n := range names {
		out[i] = *acc[n]
	}
	return out
}

func collectPreds(f Formula, env map[string]Sort, acc map[string]*PredRef) {
	switch g := f.(type) {
	case *Atom:
		recordPred(g.Pred, g.Args, false, env, acc)
	case *Not:
		collectPreds(g.F, env, acc)
	case *And:
		for _, c := range g.L {
			collectPreds(c, env, acc)
		}
	case *Or:
		for _, c := range g.L {
			collectPreds(c, env, acc)
		}
	case *Implies:
		collectPreds(g.A, env, acc)
		collectPreds(g.B, env, acc)
	case *Forall:
		inner := map[string]Sort{}
		for k, v := range env {
			inner[k] = v
		}
		for _, v := range g.Vars {
			inner[v.Name] = v.Sort
		}
		collectPreds(g.Body, inner, acc)
	case *Cmp:
		collectNumPreds(g.L, env, acc)
		collectNumPreds(g.R, env, acc)
	}
}

func collectNumPreds(t NumTerm, env map[string]Sort, acc map[string]*PredRef) {
	switch u := t.(type) {
	case *Count:
		recordPred(u.Pred, u.Args, false, env, acc)
	case *FnApp:
		recordPred(u.Fn, u.Args, true, env, acc)
	case *NumBin:
		collectNumPreds(u.L, env, acc)
		collectNumPreds(u.R, env, acc)
	}
}

func recordPred(name string, args []Term, numeric bool, env map[string]Sort, acc map[string]*PredRef) {
	ref, ok := acc[name]
	if !ok {
		ref = &PredRef{Name: name, Arity: len(args), Sorts: make([]Sort, len(args)), Numeric: numeric}
		acc[name] = ref
	}
	if numeric {
		ref.Numeric = true
	}
	for i, a := range args {
		if i >= len(ref.Sorts) {
			break
		}
		if a.Kind == TermVar {
			if s, ok := env[a.Name]; ok && ref.Sorts[i] == "" {
				ref.Sorts[i] = s
			}
		}
	}
}

// HasCount reports whether f contains a cardinality (#) or numeric field
// term — the invariants the paper routes to compensations (§3.4).
func HasCount(f Formula) bool {
	found := false
	var walk func(Formula)
	var walkNum func(NumTerm)
	walkNum = func(t NumTerm) {
		switch u := t.(type) {
		case *Count, *FnApp:
			found = true
		case *NumBin:
			walkNum(u.L)
			walkNum(u.R)
		}
	}
	walk = func(f Formula) {
		switch g := f.(type) {
		case *Not:
			walk(g.F)
		case *And:
			for _, c := range g.L {
				walk(c)
			}
		case *Or:
			for _, c := range g.L {
				walk(c)
			}
		case *Implies:
			walk(g.A)
			walk(g.B)
		case *Forall:
			walk(g.Body)
		case *Cmp:
			walkNum(g.L)
			walkNum(g.R)
		}
	}
	walk(f)
	return found
}
