package logic

import (
	"fmt"
	"strconv"
	"unicode"
)

// Parse parses a formula in the textual specification language, e.g.
//
//	forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
//	forall (Tournament: t) :- #enrolled(*, t) <= Capacity
//	forall (Tournament: t) :- not (active(t) and finished(t))
//
// Grammar (precedence low to high): forall, =>, or, and, not.
// Numeric comparisons use <=, <, >=, >, =, != between numeric terms built
// from integers, named constants, #pred(args) counts, numeric fields
// fn(args), and + / -.
func Parse(src string) (Formula, error) {
	p := &parser{lexer: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %q after formula", p.tok.text)
	}
	return f, nil
}

// MustParse is Parse that panics on error; for tests and embedded specs.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLParen
	tokRParen
	tokComma
	tokColon   // ':' and the ':-' turnstile both lex to this
	tokStar    // *
	tokHash    // #
	tokPlus    // +
	tokMinus   // -
	tokCmp     // <=, <, >=, >, =, !=
	tokImplies // =>
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src []rune
	i   int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src)} }

func (l *lexer) lex() (token, error) {
	for l.i < len(l.src) && unicode.IsSpace(l.src[l.i]) {
		l.i++
	}
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: l.i}, nil
	}
	start := l.i
	ch := l.src[l.i]
	switch {
	case unicode.IsLetter(ch) || ch == '_':
		for l.i < len(l.src) && (unicode.IsLetter(l.src[l.i]) || unicode.IsDigit(l.src[l.i]) || l.src[l.i] == '_') {
			l.i++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.i]), pos: start}, nil
	case unicode.IsDigit(ch):
		for l.i < len(l.src) && unicode.IsDigit(l.src[l.i]) {
			l.i++
		}
		return token{kind: tokInt, text: string(l.src[start:l.i]), pos: start}, nil
	}
	l.i++
	two := ""
	if l.i < len(l.src) {
		two = string(ch) + string(l.src[l.i])
	}
	switch ch {
	case '(':
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case ',':
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '*':
		return token{kind: tokStar, text: "*", pos: start}, nil
	case '#':
		return token{kind: tokHash, text: "#", pos: start}, nil
	case '+':
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case ':':
		if two == ":-" {
			l.i++
		}
		return token{kind: tokColon, text: ":", pos: start}, nil
	case '-':
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case '<':
		if two == "<=" {
			l.i++
			return token{kind: tokCmp, text: "<=", pos: start}, nil
		}
		return token{kind: tokCmp, text: "<", pos: start}, nil
	case '>':
		if two == ">=" {
			l.i++
			return token{kind: tokCmp, text: ">=", pos: start}, nil
		}
		return token{kind: tokCmp, text: ">", pos: start}, nil
	case '=':
		if two == "=>" {
			l.i++
			return token{kind: tokImplies, text: "=>", pos: start}, nil
		}
		if two == "==" {
			l.i++
		}
		return token{kind: tokCmp, text: "=", pos: start}, nil
	case '!':
		if two == "!=" {
			l.i++
			return token{kind: tokCmp, text: "!=", pos: start}, nil
		}
	}
	return token{}, fmt.Errorf("logic: unexpected character %q at offset %d", ch, start)
}

type parser struct {
	lexer *lexer
	tok   token
	peek  *token
}

func (p *parser) next() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lexer.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lexer.lex()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("logic: offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind, what string) error {
	if p.tok.kind != k {
		return p.errf("expected %s, found %q", what, p.tok.text)
	}
	return p.next()
}

// formula := 'forall' '(' varGroups ')' ':' formula | implication
func (p *parser) formula() (Formula, error) {
	if p.tok.kind == tokIdent && p.tok.text == "forall" {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		vars, err := p.varGroups()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if err := p.expect(tokColon, "':-'"); err != nil {
			return nil, err
		}
		body, err := p.formula()
		if err != nil {
			return nil, err
		}
		return &Forall{Vars: vars, Body: body}, nil
	}
	return p.implication()
}

// varGroups := Sort ':' name (',' (Sort ':' name | name))*
func (p *parser) varGroups() ([]Var, error) {
	var out []Var
	var cur Sort
	for {
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected sort or variable name, found %q", p.tok.text)
		}
		name := p.tok.text
		nxt, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if nxt.kind == tokColon {
			cur = Sort(name)
			if err := p.next(); err != nil { // consume sort
				return nil, err
			}
			if err := p.next(); err != nil { // consume ':'
				return nil, err
			}
			if p.tok.kind != tokIdent {
				return nil, p.errf("expected variable after sort %q", cur)
			}
			name = p.tok.text
		}
		if cur == "" {
			return nil, p.errf("variable %q has no sort", name)
		}
		out = append(out, Var{Name: name, Sort: cur})
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokComma {
			return out, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) implication() (Formula, error) {
	a, err := p.disjunction()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokImplies {
		if err := p.next(); err != nil {
			return nil, err
		}
		b, err := p.implication() // right associative
		if err != nil {
			return nil, err
		}
		return &Implies{A: a, B: b}, nil
	}
	return a, nil
}

func (p *parser) disjunction() (Formula, error) {
	f, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	out := []Formula{f}
	for p.tok.kind == tokIdent && p.tok.text == "or" {
		if err := p.next(); err != nil {
			return nil, err
		}
		g, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if len(out) == 1 {
		return out[0], nil
	}
	return &Or{L: out}, nil
}

func (p *parser) conjunction() (Formula, error) {
	f, err := p.unary()
	if err != nil {
		return nil, err
	}
	out := []Formula{f}
	for p.tok.kind == tokIdent && p.tok.text == "and" {
		if err := p.next(); err != nil {
			return nil, err
		}
		g, err := p.unary()
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if len(out) == 1 {
		return out[0], nil
	}
	return &And{L: out}, nil
}

func (p *parser) unary() (Formula, error) {
	switch {
	case p.tok.kind == tokIdent && p.tok.text == "not":
		if err := p.next(); err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Not{F: f}, nil
	case p.tok.kind == tokIdent && p.tok.text == "true":
		if err := p.next(); err != nil {
			return nil, err
		}
		return &BoolLit{Val: true}, nil
	case p.tok.kind == tokIdent && p.tok.text == "false":
		if err := p.next(); err != nil {
			return nil, err
		}
		return &BoolLit{Val: false}, nil
	case p.tok.kind == tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		// A parenthesised numeric term could begin a comparison, but the
		// language keeps parentheses at the formula level only.
		return f, nil
	case p.tok.kind == tokHash || p.tok.kind == tokInt:
		return p.comparison(nil)
	case p.tok.kind == tokIdent:
		// Either a boolean atom, or the left side of a numeric comparison
		// (named constant or numeric field).
		name := p.tok.text
		nxt, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if nxt.kind == tokLParen {
			// pred(args) — boolean unless followed by a numeric operator.
			if err := p.next(); err != nil { // move onto '('
				return nil, err
			}
			if err := p.next(); err != nil { // consume '('
				return nil, err
			}
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			if p.tok.kind == tokCmp || p.tok.kind == tokPlus || p.tok.kind == tokMinus {
				return p.comparison(&FnApp{Fn: name, Args: args})
			}
			return &Atom{Pred: name, Args: args}, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokCmp || p.tok.kind == tokPlus || p.tok.kind == tokMinus {
			return p.comparison(&ConstRef{Name: name})
		}
		// 0-ary predicate.
		return &Atom{Pred: name, Args: nil}, nil
	}
	return nil, p.errf("expected formula, found %q", p.tok.text)
}

// comparison parses `numterm cmp numterm`; left, if non-nil, is an already
// parsed first factor of the left term.
func (p *parser) comparison(left NumTerm) (Formula, error) {
	var err error
	if left == nil {
		left, err = p.numFactor()
		if err != nil {
			return nil, err
		}
	}
	left, err = p.numTail(left)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokCmp {
		return nil, p.errf("expected comparison operator, found %q", p.tok.text)
	}
	var op CmpOp
	switch p.tok.text {
	case "=":
		op = EQ
	case "!=":
		op = NE
	case "<":
		op = LT
	case "<=":
		op = LE
	case ">":
		op = GT
	case ">=":
		op = GE
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	right, err := p.numFactor()
	if err != nil {
		return nil, err
	}
	right, err = p.numTail(right)
	if err != nil {
		return nil, err
	}
	return &Cmp{Op: op, L: left, R: right}, nil
}

func (p *parser) numTail(left NumTerm) (NumTerm, error) {
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := byte('+')
		if p.tok.kind == tokMinus {
			op = '-'
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.numFactor()
		if err != nil {
			return nil, err
		}
		left = &NumBin{Op: op, L: left, R: r}
	}
	return left, nil
}

func (p *parser) numFactor() (NumTerm, error) {
	switch p.tok.kind {
	case tokInt:
		n, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &IntLit{N: n}, nil
	case tokHash:
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected predicate after '#'")
		}
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		args, err := p.argList()
		if err != nil {
			return nil, err
		}
		return &Count{Pred: name, Args: args}, nil
	case tokIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			if err := p.next(); err != nil {
				return nil, err
			}
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &FnApp{Fn: name, Args: args}, nil
		}
		return &ConstRef{Name: name}, nil
	}
	return nil, p.errf("expected numeric term, found %q", p.tok.text)
}

// argList parses terms up to and including the closing paren. The opening
// paren has already been consumed.
func (p *parser) argList() ([]Term, error) {
	var args []Term
	if p.tok.kind == tokRParen {
		return args, p.next()
	}
	for {
		switch p.tok.kind {
		case tokStar:
			args = append(args, Wild())
		case tokIdent:
			args = append(args, V(p.tok.text))
		default:
			return nil, p.errf("expected argument, found %q", p.tok.text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokComma {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		if p.tok.kind == tokRParen {
			return args, p.next()
		}
		return nil, p.errf("expected ',' or ')', found %q", p.tok.text)
	}
}
