// Package logic defines the first-order specification logic used by IPA:
// application invariants are universally quantified boolean combinations of
// predicate atoms and numeric comparisons over counts, numeric fields and
// named constants (paper §3.1, Fig. 1).
//
// The package provides the AST, a parser for the textual form, substitution
// and free-variable analysis. Grounding to propositional logic lives in
// package smt; the IPA analysis itself in package analysis.
package logic

import (
	"fmt"
	"strings"
)

// Sort names a parameter type, e.g. "Player" or "Tournament".
type Sort string

// Var is a sorted variable, bound by a quantifier or an operation signature.
type Var struct {
	Name string
	Sort Sort
}

func (v Var) String() string { return fmt.Sprintf("%s: %s", v.Sort, v.Name) }

// TermKind distinguishes the kinds of predicate arguments.
type TermKind uint8

const (
	// TermVar is a reference to a quantified or parameter variable.
	TermVar TermKind = iota
	// TermConst is a ground domain element.
	TermConst
	// TermWildcard is the paper's "*": matches every domain element, used
	// in effects such as enrolled(*, t) = false and counts #enrolled(*, t).
	TermWildcard
)

// Term is a predicate argument.
type Term struct {
	Kind TermKind
	Name string // variable name or constant label; empty for wildcard
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: TermVar, Name: name} }

// C returns a constant (ground) term.
func C(name string) Term { return Term{Kind: TermConst, Name: name} }

// Wild returns the wildcard term.
func Wild() Term { return Term{Kind: TermWildcard} }

func (t Term) String() string {
	switch t.Kind {
	case TermWildcard:
		return "*"
	case TermConst:
		return "'" + t.Name + "'"
	default:
		return t.Name
	}
}

// Formula is a first-order formula node. Implementations: *BoolLit, *Atom,
// *Not, *And, *Or, *Implies, *Forall, *Cmp.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// BoolLit is the constant true or false.
type BoolLit struct{ Val bool }

// Atom is an application of a boolean predicate, e.g. enrolled(p, t).
type Atom struct {
	Pred string
	Args []Term
}

// Not is logical negation.
type Not struct{ F Formula }

// And is n-ary conjunction.
type And struct{ L []Formula }

// Or is n-ary disjunction.
type Or struct{ L []Formula }

// Implies is material implication A => B.
type Implies struct{ A, B Formula }

// Forall is universal quantification over sorted variables.
type Forall struct {
	Vars []Var
	Body Formula
}

// CmpOp is a numeric comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Negate returns the complementary operator (e.g. LE -> GT).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return op
}

// Cmp is a numeric comparison L op R.
type Cmp struct {
	Op   CmpOp
	L, R NumTerm
}

func (*BoolLit) isFormula() {}
func (*Atom) isFormula()    {}
func (*Not) isFormula()     {}
func (*And) isFormula()     {}
func (*Or) isFormula()      {}
func (*Implies) isFormula() {}
func (*Forall) isFormula()  {}
func (*Cmp) isFormula()     {}

// NumTerm is a numeric term: integer literal, named constant, count of a
// predicate pattern, numeric field application, or sum/difference.
// Implementations: *IntLit, *ConstRef, *Count, *FnApp, *NumBin.
type NumTerm interface {
	fmt.Stringer
	isNumTerm()
}

// IntLit is an integer literal.
type IntLit struct{ N int }

// ConstRef names a symbolic application constant such as Capacity.
type ConstRef struct{ Name string }

// Count is the paper's #p(args) cardinality term; wildcard arguments range
// over the whole domain.
type Count struct {
	Pred string
	Args []Term
}

// FnApp applies a numeric field, e.g. stock(i).
type FnApp struct {
	Fn   string
	Args []Term
}

// NumBin is addition or subtraction of numeric terms.
type NumBin struct {
	Op   byte // '+' or '-'
	L, R NumTerm
}

func (*IntLit) isNumTerm()   {}
func (*ConstRef) isNumTerm() {}
func (*Count) isNumTerm()    {}
func (*FnApp) isNumTerm()    {}
func (*NumBin) isNumTerm()   {}

func argString(args []Term) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

func (f *BoolLit) String() string {
	if f.Val {
		return "true"
	}
	return "false"
}
func (f *Atom) String() string { return fmt.Sprintf("%s(%s)", f.Pred, argString(f.Args)) }
func (f *Not) String() string  { return "not " + paren(f.F) }
func (f *And) String() string  { return joinFormulas(f.L, " and ") }
func (f *Or) String() string   { return joinFormulas(f.L, " or ") }
func (f *Implies) String() string {
	return paren(f.A) + " => " + paren(f.B)
}
func (f *Forall) String() string {
	groups := make([]string, len(f.Vars))
	for i, v := range f.Vars {
		groups[i] = v.String()
	}
	return fmt.Sprintf("forall (%s) :- %s", strings.Join(groups, ", "), f.Body)
}
func (f *Cmp) String() string { return fmt.Sprintf("%s %s %s", f.L, f.Op, f.R) }

func (t *IntLit) String() string   { return fmt.Sprintf("%d", t.N) }
func (t *ConstRef) String() string { return t.Name }
func (t *Count) String() string    { return fmt.Sprintf("#%s(%s)", t.Pred, argString(t.Args)) }
func (t *FnApp) String() string    { return fmt.Sprintf("%s(%s)", t.Fn, argString(t.Args)) }

// String renders the sum without parentheses: the grammar has only
// left-associative + and -, so the term is flattened with signs
// distributed (a - (b + c) prints as "a - b - c"). A leading negative
// term prints as "0 - t" since the grammar has no unary minus.
func (t *NumBin) String() string {
	type signed struct {
		neg  bool
		term NumTerm
	}
	var parts []signed
	var flatten func(u NumTerm, neg bool)
	flatten = func(u NumTerm, neg bool) {
		if bin, ok := u.(*NumBin); ok {
			flatten(bin.L, neg)
			flatten(bin.R, neg != (bin.Op == '-'))
			return
		}
		parts = append(parts, signed{neg: neg, term: u})
	}
	flatten(t, false)
	var b strings.Builder
	if parts[0].neg {
		b.WriteString("0 - ")
	}
	b.WriteString(parts[0].term.String())
	for _, p := range parts[1:] {
		if p.neg {
			b.WriteString(" - ")
		} else {
			b.WriteString(" + ")
		}
		b.WriteString(p.term.String())
	}
	return b.String()
}

func paren(f Formula) string {
	switch f.(type) {
	case *Atom, *BoolLit, *Cmp, *Not:
		return f.String()
	}
	return "(" + f.String() + ")"
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = paren(f)
	}
	return strings.Join(parts, sep)
}

// Conj builds a conjunction, flattening and folding constants.
func Conj(fs ...Formula) Formula {
	out := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *BoolLit:
			if !g.Val {
				return &BoolLit{Val: false}
			}
		case *And:
			out = append(out, g.L...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return &BoolLit{Val: true}
	case 1:
		return out[0]
	}
	return &And{L: out}
}

// Disj builds a disjunction, flattening and folding constants.
func Disj(fs ...Formula) Formula {
	out := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *BoolLit:
			if g.Val {
				return &BoolLit{Val: true}
			}
		case *Or:
			out = append(out, g.L...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return &BoolLit{Val: false}
	case 1:
		return out[0]
	}
	return &Or{L: out}
}

// Neg builds a negation, folding constants and double negation.
func Neg(f Formula) Formula {
	switch g := f.(type) {
	case *BoolLit:
		return &BoolLit{Val: !g.Val}
	case *Not:
		return g.F
	}
	return &Not{F: f}
}

// Impl builds an implication with constant folding.
func Impl(a, b Formula) Formula {
	if l, ok := a.(*BoolLit); ok {
		if l.Val {
			return b
		}
		return &BoolLit{Val: true}
	}
	if l, ok := b.(*BoolLit); ok {
		if l.Val {
			return &BoolLit{Val: true}
		}
		return Neg(a)
	}
	return &Implies{A: a, B: b}
}

// Clauses splits a formula into its top-level conjuncts, hoisting nested
// quantifiers: forall xs. (A and B) yields forall xs. A and forall xs. B.
// The IPA repair step works clause-by-clause (paper Alg. 1, invClauses).
func Clauses(f Formula) []Formula {
	switch g := f.(type) {
	case *And:
		var out []Formula
		for _, c := range g.L {
			out = append(out, Clauses(c)...)
		}
		return out
	case *Forall:
		inner := Clauses(g.Body)
		if len(inner) == 1 {
			return []Formula{f}
		}
		out := make([]Formula, len(inner))
		for i, c := range inner {
			out[i] = &Forall{Vars: g.Vars, Body: c}
		}
		return out
	}
	return []Formula{f}
}
