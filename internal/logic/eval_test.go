package logic

import "testing"

func tourInterp() Interp {
	return Interp{
		Domain: map[Sort][]string{"Player": {"P1", "P2"}, "Tournament": {"T1"}},
		Truth: map[string]bool{
			GroundAtom("player", "P1"):         true,
			GroundAtom("player", "P2"):         true,
			GroundAtom("tournament", "T1"):     true,
			GroundAtom("enrolled", "P1", "T1"): true,
			GroundAtom("active", "T1"):         true,
		},
		Nums:   map[string]int{GroundAtom("stock", "I1"): 5},
		Consts: map[string]int{"Capacity": 2},
	}
}

func TestEvalInvariantHolds(t *testing.T) {
	in := tourInterp()
	f := MustParse("forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)")
	v, err := in.Eval(f, nil)
	if err != nil || !v {
		t.Fatalf("invariant should hold: %v %v", v, err)
	}
	// Break it: remove the tournament.
	in.Truth[GroundAtom("tournament", "T1")] = false
	v, err = in.Eval(f, nil)
	if err != nil || v {
		t.Fatalf("invariant should be violated: %v %v", v, err)
	}
}

func TestEvalCount(t *testing.T) {
	in := tourInterp()
	f := MustParse("forall (Tournament: t) :- #enrolled(*, t) <= Capacity")
	v, err := in.Eval(f, nil)
	if err != nil || !v {
		t.Fatalf("capacity should hold: %v %v", v, err)
	}
	in.Truth[GroundAtom("enrolled", "P2", "T1")] = true
	in.Consts["Capacity"] = 1
	v, err = in.Eval(f, nil)
	if err != nil || v {
		t.Fatalf("capacity should be violated: %v %v", v, err)
	}
}

func TestEvalNumeric(t *testing.T) {
	in := tourInterp()
	f := MustParse("forall (Item: i) :- stock(i) - 2 >= 0")
	in.Domain["Item"] = []string{"I1"}
	v, err := in.Eval(f, nil)
	if err != nil || !v {
		t.Fatalf("5-2 >= 0 should hold: %v %v", v, err)
	}
	in.Nums[GroundAtom("stock", "I1")] = 1
	v, err = in.Eval(f, nil)
	if err != nil || v {
		t.Fatalf("1-2 >= 0 should fail: %v %v", v, err)
	}
}

func TestEvalCmpOps(t *testing.T) {
	in := Interp{Domain: map[Sort][]string{}}
	cases := map[string]bool{
		"1 = 1": true, "1 != 1": false, "1 < 2": true, "2 <= 2": true,
		"3 > 2": true, "2 >= 3": false, "1 + 1 = 2": true, "5 - 2 - 1 = 2": true,
	}
	for src, want := range cases {
		v, err := in.Eval(MustParse(src), nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if v != want {
			t.Fatalf("%s = %v, want %v", src, v, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	in := tourInterp()
	if _, err := in.Eval(MustParse("player(p)"), nil); err == nil {
		t.Fatal("unbound variable must error")
	}
	if _, err := in.Eval(MustParse("forall (Ghost: g) :- ok(g)"), nil); err == nil {
		t.Fatal("unknown sort must error")
	}
	if _, err := in.Eval(MustParse("#enrolled(*, t) <= 2"), nil); err == nil {
		t.Fatal("unbound variable in count must error")
	}
}

func TestEvalWithBinding(t *testing.T) {
	in := tourInterp()
	f := MustParse("enrolled(p, t) => player(p)")
	v, err := in.Eval(f, map[string]string{"p": "P1", "t": "T1"})
	if err != nil || !v {
		t.Fatalf("bound eval: %v %v", v, err)
	}
	// P2 is not enrolled: implication vacuously true.
	v, err = in.Eval(f, map[string]string{"p": "P2", "t": "T1"})
	if err != nil || !v {
		t.Fatalf("vacuous eval: %v %v", v, err)
	}
}

func TestEvalMissingEntriesDefault(t *testing.T) {
	in := Interp{Domain: map[Sort][]string{"S": {"a"}}}
	v, err := in.Eval(MustParse("forall (S: x) :- ghost(x)"), nil)
	if err != nil || v {
		t.Fatalf("missing atoms default false: %v %v", v, err)
	}
	v, err = in.Eval(MustParse("forall (S: x) :- gone(x) >= 0"), nil)
	if err != nil || !v {
		t.Fatalf("missing numeric defaults 0: %v %v", v, err)
	}
}

func TestGroundAtom(t *testing.T) {
	if GroundAtom("open") != "open" {
		t.Fatal("0-ary")
	}
	if GroundAtom("enrolled", "P1", "T1") != "enrolled(P1,T1)" {
		t.Fatal("n-ary")
	}
}
