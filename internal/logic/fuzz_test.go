package logic

import "testing"

// FuzzParse checks the parser never panics and that anything it accepts
// round-trips through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)",
		"forall (Tournament: t) :- #enrolled(*, t) <= Capacity",
		"forall (Item: i) :- stock(i) - 1 >= 0",
		"not (a() and b()) or c()",
		"x = y",
		"forall (A: x) :- p(x) => q(x) or r(x, x)",
		"true => false",
		"#p() > 0",
		"forall (: p) :- player(p)",
		"((((a()))))",
		"ℵ(☃)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := formula.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own printout %q: %v", src, printed, err)
		}
		if back.String() != printed {
			t.Fatalf("printout not a fixed point: %q -> %q", printed, back.String())
		}
	})
}
