package logic

import (
	"strings"
	"testing"
)

func TestParseReferentialIntegrity(t *testing.T) {
	f, err := Parse("forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)")
	if err != nil {
		t.Fatal(err)
	}
	fa, ok := f.(*Forall)
	if !ok {
		t.Fatalf("expected Forall, got %T", f)
	}
	if len(fa.Vars) != 2 || fa.Vars[0] != (Var{"p", "Player"}) || fa.Vars[1] != (Var{"t", "Tournament"}) {
		t.Fatalf("vars = %v", fa.Vars)
	}
	imp, ok := fa.Body.(*Implies)
	if !ok {
		t.Fatalf("body = %T", fa.Body)
	}
	at, ok := imp.A.(*Atom)
	if !ok || at.Pred != "enrolled" || len(at.Args) != 2 {
		t.Fatalf("antecedent = %v", imp.A)
	}
	and, ok := imp.B.(*And)
	if !ok || len(and.L) != 2 {
		t.Fatalf("consequent = %v", imp.B)
	}
}

func TestParseSharedSortGroup(t *testing.T) {
	// "Player: p, q" — q inherits the Player sort.
	f := MustParse("forall (Player: p, q, Tournament: t) :- inMatch(p, q, t) => enrolled(p, t) and enrolled(q, t) and (active(t) or finished(t))")
	fa := f.(*Forall)
	want := []Var{{"p", "Player"}, {"q", "Player"}, {"t", "Tournament"}}
	if len(fa.Vars) != 3 {
		t.Fatalf("vars = %v", fa.Vars)
	}
	for i, v := range want {
		if fa.Vars[i] != v {
			t.Fatalf("vars[%d] = %v, want %v", i, fa.Vars[i], v)
		}
	}
}

func TestParseCountInvariant(t *testing.T) {
	f := MustParse("forall (Tournament: t) :- #enrolled(*, t) <= Capacity")
	fa := f.(*Forall)
	cmp, ok := fa.Body.(*Cmp)
	if !ok || cmp.Op != LE {
		t.Fatalf("body = %v", fa.Body)
	}
	cnt, ok := cmp.L.(*Count)
	if !ok || cnt.Pred != "enrolled" {
		t.Fatalf("left = %v", cmp.L)
	}
	if cnt.Args[0].Kind != TermWildcard || cnt.Args[1] != V("t") {
		t.Fatalf("count args = %v", cnt.Args)
	}
	if _, ok := cmp.R.(*ConstRef); !ok {
		t.Fatalf("right = %T", cmp.R)
	}
}

func TestParseNumericField(t *testing.T) {
	f := MustParse("forall (Item: i) :- stock(i) >= 0")
	cmp := f.(*Forall).Body.(*Cmp)
	fn, ok := cmp.L.(*FnApp)
	if !ok || fn.Fn != "stock" {
		t.Fatalf("left = %v", cmp.L)
	}
	if lit, ok := cmp.R.(*IntLit); !ok || lit.N != 0 {
		t.Fatalf("right = %v", cmp.R)
	}
}

func TestParseArithmetic(t *testing.T) {
	f := MustParse("forall (Item: i) :- stock(i) - 1 >= 0")
	cmp := f.(*Forall).Body.(*Cmp)
	bin, ok := cmp.L.(*NumBin)
	if !ok || bin.Op != '-' {
		t.Fatalf("left = %v", cmp.L)
	}
}

func TestParseMutualExclusion(t *testing.T) {
	f := MustParse("forall (Tournament: t) :- not (active(t) and finished(t))")
	n, ok := f.(*Forall).Body.(*Not)
	if !ok {
		t.Fatalf("body = %T", f.(*Forall).Body)
	}
	if _, ok := n.F.(*And); !ok {
		t.Fatalf("negated = %T", n.F)
	}
}

func TestParsePrecedence(t *testing.T) {
	// a or b and c  parses as  a or (b and c)
	f := MustParse("a() or b() and c()")
	or, ok := f.(*Or)
	if !ok || len(or.L) != 2 {
		t.Fatalf("f = %v", f)
	}
	if _, ok := or.L[1].(*And); !ok {
		t.Fatalf("right of or = %T", or.L[1])
	}
	// implication binds loosest and is right-associative
	g := MustParse("a() => b() => c()")
	imp := g.(*Implies)
	if _, ok := imp.B.(*Implies); !ok {
		t.Fatalf("=> not right-associative: %v", g)
	}
}

func TestParseZeroAryAtom(t *testing.T) {
	f := MustParse("open => not closed")
	imp := f.(*Implies)
	if a, ok := imp.A.(*Atom); !ok || a.Pred != "open" || len(a.Args) != 0 {
		t.Fatalf("A = %v", imp.A)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"forall (Player p) :- player(p)",  // missing colon in group
		"forall (Player: p) : player(",    // unclosed args
		"enrolled(p, t) =>",               // missing consequent
		"#enrolled(*, t)",                 // count without comparison
		"forall (Player: p) :- 3",         // bare number
		"player(p) extra",                 // trailing garbage
		"forall (: p) :- player(p)",       // missing sort
		"forall (Player: p) :- $wild(p)",  // bad rune
		"forall (Player: p) :- not",       // dangling not
		"x <",                             // missing rhs
		"forall(Player: p, ) :- ok(p)",    // dangling comma
		"forall (Player: p) :- ok(p) and", // dangling and
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)",
		"forall (Tournament: t) :- #enrolled(*, t) <= Capacity",
		"forall (Tournament: t) :- not (active(t) and finished(t))",
		"forall (Item: i) :- stock(i) >= 0",
		"forall (Player: p, q, Tournament: t) :- inMatch(p, q, t) => enrolled(p, t) and enrolled(q, t) and (active(t) or finished(t))",
	}
	for _, src := range srcs {
		f := MustParse(src)
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, f.String(), err)
		}
		if f.String() != g.String() {
			t.Fatalf("round trip changed: %q -> %q", f.String(), g.String())
		}
	}
}

func TestSubstitution(t *testing.T) {
	f := MustParse("enrolled(p, t) => player(p)")
	g := Subst{"p": C("P1")}.Apply(f)
	want := "enrolled('P1', t) => player('P1')"
	if g.String() != want {
		t.Fatalf("subst = %q, want %q", g.String(), want)
	}
	// Original unchanged.
	if strings.Contains(f.String(), "P1") {
		t.Fatal("substitution mutated the input")
	}
}

func TestSubstitutionRespectsBinding(t *testing.T) {
	f := MustParse("forall (Player: p) :- player(p)")
	g := Subst{"p": C("P1")}.Apply(f)
	if strings.Contains(g.String(), "P1") {
		t.Fatalf("bound variable substituted: %s", g)
	}
}

func TestSubstitutionNumeric(t *testing.T) {
	f := MustParse("#enrolled(*, t) <= Capacity")
	g := Subst{"t": C("T1")}.Apply(f)
	if g.String() != "#enrolled(*, 'T1') <= Capacity" {
		t.Fatalf("got %q", g.String())
	}
}

func TestFreeVars(t *testing.T) {
	f := MustParse("enrolled(p, t) => player(p) and tournament(t)")
	fv := FreeVars(f)
	if len(fv) != 2 || fv[0] != "p" || fv[1] != "t" {
		t.Fatalf("free vars = %v", fv)
	}
	g := MustParse("forall (Player: p, Tournament: t) :- enrolled(p, t)")
	if len(FreeVars(g)) != 0 {
		t.Fatalf("closed formula has free vars: %v", FreeVars(g))
	}
	h := MustParse("#enrolled(*, t) <= Capacity")
	fvh := FreeVars(h)
	if len(fvh) != 1 || fvh[0] != "t" {
		t.Fatalf("free vars = %v", fvh)
	}
}

func TestPredicates(t *testing.T) {
	f := MustParse("forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)")
	ps := Predicates(f)
	if len(ps) != 3 {
		t.Fatalf("predicates = %v", ps)
	}
	if ps[0].Name != "enrolled" || ps[0].Arity != 2 {
		t.Fatalf("ps[0] = %v", ps[0])
	}
	if ps[0].Sorts[0] != "Player" || ps[0].Sorts[1] != "Tournament" {
		t.Fatalf("sorts = %v", ps[0].Sorts)
	}
	g := MustParse("forall (Item: i) :- stock(i) >= 0")
	qs := Predicates(g)
	if len(qs) != 1 || !qs[0].Numeric || qs[0].Sorts[0] != "Item" {
		t.Fatalf("numeric pred = %v", qs)
	}
}

func TestClauses(t *testing.T) {
	f := MustParse("forall (Tournament: t) :- (active(t) => tournament(t)) and (finished(t) => tournament(t))")
	cs := Clauses(f)
	if len(cs) != 2 {
		t.Fatalf("clauses = %d, want 2", len(cs))
	}
	for _, c := range cs {
		if _, ok := c.(*Forall); !ok {
			t.Fatalf("clause should keep quantifier: %T", c)
		}
	}
	// Conjunction of two independent invariants.
	g := Conj(MustParse("forall (Tournament: t) :- active(t) => tournament(t)"),
		MustParse("forall (Tournament: t) :- finished(t) => tournament(t)"))
	if len(Clauses(g)) != 2 {
		t.Fatalf("top-level conj should split")
	}
}

func TestBuildersFold(t *testing.T) {
	tr := &BoolLit{Val: true}
	fl := &BoolLit{Val: false}
	a := &Atom{Pred: "a"}
	if Conj(tr, a).String() != "a()" {
		t.Fatal("Conj(true, a) != a")
	}
	if Conj(fl, a).String() != "false" {
		t.Fatal("Conj(false, a) != false")
	}
	if Disj(tr, a).String() != "true" {
		t.Fatal("Disj(true, a) != true")
	}
	if Disj(fl, a).String() != "a()" {
		t.Fatal("Disj(false, a) != a")
	}
	if Neg(Neg(a)) != a {
		t.Fatal("double negation should fold")
	}
	if Impl(tr, a) != a {
		t.Fatal("true => a folds to a")
	}
	if Impl(a, tr).String() != "true" {
		t.Fatal("a => true folds to true")
	}
	if Impl(a, fl).String() != "not a()" {
		t.Fatal("a => false folds to not a")
	}
}

func TestHasCount(t *testing.T) {
	if !HasCount(MustParse("forall (Tournament: t) :- #enrolled(*, t) <= Capacity")) {
		t.Fatal("count invariant not detected")
	}
	if !HasCount(MustParse("forall (Item: i) :- stock(i) >= 0")) {
		t.Fatal("numeric field invariant not detected")
	}
	if HasCount(MustParse("forall (Player: p) :- player(p)")) {
		t.Fatal("boolean invariant misdetected as numeric")
	}
}

func TestCmpOpNegate(t *testing.T) {
	cases := map[CmpOp]CmpOp{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for op, want := range cases {
		if op.Negate() != want {
			t.Fatalf("%v.Negate() = %v, want %v", op, op.Negate(), want)
		}
	}
}
