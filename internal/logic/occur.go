package logic

// Polarity classifies how a formula's truth depends on one predicate
// occurrence: positive occurrences can only lower the formula when the
// atom goes false, negative ones when it goes true, and Both covers
// occurrences (counts, numeric fields, mixed contexts) where any change
// to the underlying facts can move the formula either way.
type Polarity uint8

// Polarities.
const (
	PolPos Polarity = iota
	PolNeg
	PolBoth
)

func (p Polarity) String() string {
	switch p {
	case PolPos:
		return "+"
	case PolNeg:
		return "-"
	}
	return "±"
}

// Flip negates a polarity; Both stays Both.
func (p Polarity) Flip() Polarity {
	switch p {
	case PolPos:
		return PolNeg
	case PolNeg:
		return PolPos
	}
	return PolBoth
}

// Occurrence is one syntactic use of a predicate or numeric field inside
// a formula: the name, the argument templates (variables, constants,
// wildcards), the polarity of the surrounding context, and whether the
// occurrence reads the field's numeric value rather than atom truth.
// Count occurrences report the counted predicate with polarity Both:
// adding or removing any matching atom can move the comparison either
// way, so both directions matter.
type Occurrence struct {
	Pred    string
	Args    []Term
	Pol     Polarity
	Numeric bool
	// Count marks a cardinality occurrence (#pred(...)): the occurrence
	// reads the whole atom table of the predicate, not one ground atom.
	Count bool
}

// Occurrences walks f and returns every predicate and field occurrence
// with its polarity, in syntactic order. Quantifiers are transparent:
// occurrences under a Forall keep the bound variables as argument
// templates.
func Occurrences(f Formula) []Occurrence {
	var out []Occurrence
	collectOcc(f, PolPos, &out)
	return out
}

func collectOcc(f Formula, pol Polarity, out *[]Occurrence) {
	switch g := f.(type) {
	case *BoolLit:
	case *Atom:
		*out = append(*out, Occurrence{Pred: g.Pred, Args: g.Args, Pol: pol})
	case *Not:
		collectOcc(g.F, pol.Flip(), out)
	case *And:
		for _, c := range g.L {
			collectOcc(c, pol, out)
		}
	case *Or:
		for _, c := range g.L {
			collectOcc(c, pol, out)
		}
	case *Implies:
		collectOcc(g.A, pol.Flip(), out)
		collectOcc(g.B, pol, out)
	case *Forall:
		collectOcc(g.Body, pol, out)
	case *Cmp:
		collectNumOcc(g.L, out)
		collectNumOcc(g.R, out)
	}
}

func collectNumOcc(t NumTerm, out *[]Occurrence) {
	switch u := t.(type) {
	case *Count:
		*out = append(*out, Occurrence{Pred: u.Pred, Args: u.Args, Pol: PolBoth, Count: true})
	case *FnApp:
		*out = append(*out, Occurrence{Pred: u.Fn, Args: u.Args, Pol: PolBoth, Numeric: true})
	case *NumBin:
		collectNumOcc(u.L, out)
		collectNumOcc(u.R, out)
	}
}

// ForallSorts returns the sorts of every quantifier variable in f, in
// syntactic order without duplicates — the domains an evaluator needs to
// enumerate when the formula is checked.
func ForallSorts(f Formula) []Sort {
	var out []Sort
	seen := map[Sort]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case *Not:
			walk(g.F)
		case *And:
			for _, c := range g.L {
				walk(c)
			}
		case *Or:
			for _, c := range g.L {
				walk(c)
			}
		case *Implies:
			walk(g.A)
			walk(g.B)
		case *Forall:
			for _, v := range g.Vars {
				if !seen[v.Sort] {
					seen[v.Sort] = true
					out = append(out, v.Sort)
				}
			}
			walk(g.Body)
		}
	}
	walk(f)
	return out
}

// HasForall reports whether f quantifies anywhere (at any depth).
func HasForall(f Formula) bool {
	switch g := f.(type) {
	case *Not:
		return HasForall(g.F)
	case *And:
		for _, c := range g.L {
			if HasForall(c) {
				return true
			}
		}
	case *Or:
		for _, c := range g.L {
			if HasForall(c) {
				return true
			}
		}
	case *Implies:
		return HasForall(g.A) || HasForall(g.B)
	case *Forall:
		return true
	}
	return false
}

// HasBareWildcard reports whether f applies a wildcard argument outside
// a count — the one term shape Eval cannot ground.
func HasBareWildcard(f Formula) bool {
	switch g := f.(type) {
	case *Atom:
		for _, a := range g.Args {
			if a.Kind == TermWildcard {
				return true
			}
		}
	case *Not:
		return HasBareWildcard(g.F)
	case *And:
		for _, c := range g.L {
			if HasBareWildcard(c) {
				return true
			}
		}
	case *Or:
		for _, c := range g.L {
			if HasBareWildcard(c) {
				return true
			}
		}
	case *Implies:
		return HasBareWildcard(g.A) || HasBareWildcard(g.B)
	case *Forall:
		return HasBareWildcard(g.Body)
	case *Cmp:
		return numHasBareWildcard(g.L) || numHasBareWildcard(g.R)
	}
	return false
}

func numHasBareWildcard(t NumTerm) bool {
	switch u := t.(type) {
	case *FnApp:
		for _, a := range u.Args {
			if a.Kind == TermWildcard {
				return true
			}
		}
	case *NumBin:
		return numHasBareWildcard(u.L) || numHasBareWildcard(u.R)
	}
	return false
}
