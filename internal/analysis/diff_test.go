package analysis

import (
	"strings"
	"testing"

	"ipa/internal/spec"
)

func TestDiffSpecs(t *testing.T) {
	s := spec.MustParse(miniTournament)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := res.Diff(s)
	if !strings.Contains(diff, "operations to patch:") {
		t.Fatalf("diff missing patches:\n%s", diff)
	}
	if !strings.Contains(diff, "enroll: add tournament(t) := true") {
		t.Fatalf("diff missing the enroll patch:\n%s", diff)
	}
	if !strings.Contains(diff, "configure tournament as add-wins") {
		t.Fatalf("diff missing the rule:\n%s", diff)
	}
}

func TestDiffSpecsNoChanges(t *testing.T) {
	s := spec.MustParse(miniTournament)
	if got := DiffSpecs(s, s); !strings.Contains(got, "no changes") {
		t.Fatalf("identity diff = %q", got)
	}
}

func TestDiffSpecsNewOperation(t *testing.T) {
	before := spec.MustParse(miniTournament)
	after := before.Clone()
	op := &spec.Operation{Name: "brand_new"}
	op.Params = append(op.Params, before.Operations[0].Params...)
	op.Effects = append(op.Effects, before.Operations[0].Effects...)
	after.Operations = append(after.Operations, op)
	if got := DiffSpecs(before, after); !strings.Contains(got, "brand_new: new operation") {
		t.Fatalf("diff = %q", got)
	}
}
