package analysis

import (
	"strings"
	"testing"

	"ipa/internal/logic"
	"ipa/internal/spec"
)

// miniTournament is the paper's running example, pared down to the
// referential-integrity conflict of Fig. 2.
const miniTournament = `
spec mini

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)

operation add_player(Player: p) {
    player(p) := true
}
operation add_tourn(Tournament: t) {
    tournament(t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`

func TestIsConflictingFindsFig2a(t *testing.T) {
	s := spec.MustParse(miniTournament)
	rem, _ := s.Operation("rem_tourn")
	enr, _ := s.Operation("enroll")
	c, err := IsConflicting(s, rem, enr, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("rem_tourn ∥ enroll must conflict")
	}
	if len(c.ViolatedClauses) != 1 {
		t.Fatalf("violated clauses = %v", c.ViolatedClauses)
	}
	if c.Numeric {
		t.Fatal("referential integrity is not a numeric conflict")
	}
	// The bindings must agree on the tournament (that's the only way to
	// produce the violation).
	if c.Binding1["t"] != c.Binding2["t"] {
		t.Fatalf("counterexample should alias tournaments: %v vs %v", c.Binding1, c.Binding2)
	}
	if c.Example == nil || len(c.Example.Merged) == 0 {
		t.Fatal("counterexample missing")
	}
	if !strings.Contains(c.String(), "violates") {
		t.Fatalf("Conflict.String() = %q", c.String())
	}
}

func TestNonConflictingPairs(t *testing.T) {
	s := spec.MustParse(miniTournament)
	addP, _ := s.Operation("add_player")
	addT, _ := s.Operation("add_tourn")
	enr, _ := s.Operation("enroll")
	for _, pair := range [][2]*spec.Operation{{addP, addT}, {addP, enr}, {addT, enr}, {enr, enr}} {
		c, err := IsConflicting(s, pair[0], pair[1], Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c != nil {
			t.Fatalf("%s ∥ %s should not conflict: %v", pair[0].Name, pair[1].Name, c)
		}
	}
}

func TestFindConflictsEnumeratesPairs(t *testing.T) {
	s := spec.MustParse(miniTournament)
	cs, err := FindConflicts(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Conflicting pairs: rem_tourn∥enroll. add_player/add_tourn/enroll are
	// all compatible; rem_tourn∥rem_tourn is fine (same effect).
	if len(cs) != 1 {
		for _, c := range cs {
			t.Logf("conflict: %s", c)
		}
		t.Fatalf("conflicts = %d, want 1", len(cs))
	}
	if cs[0].Key() != pairKey("rem_tourn", "enroll") {
		t.Fatalf("conflict key = %s", cs[0].Key())
	}
}

func TestRepairConflictProposesPaperResolutions(t *testing.T) {
	s := spec.MustParse(miniTournament)
	rem, _ := s.Operation("rem_tourn")
	enr, _ := s.Operation("enroll")
	c, err := IsConflicting(s, rem, enr, Options{}, nil)
	if err != nil || c == nil {
		t.Fatalf("conflict expected: %v %v", c, err)
	}
	repairs, err := RepairConflict(s, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) == 0 {
		t.Fatal("no repairs proposed")
	}
	// The paper's two resolutions must both be present:
	// Fig 2b: enroll += tournament(t) := true with add-wins tournament.
	// Fig 2c: rem_tourn += enrolled(*, t) := false with rem-wins enrolled.
	var haveAddWins, haveRemWins bool
	for _, r := range repairs {
		str := r.String()
		if r.Target == "enroll" && strings.Contains(str, "tournament(t) := true") && r.Rules["tournament"] == spec.AddWins {
			haveAddWins = true
		}
		if r.Target == "rem_tourn" && strings.Contains(str, "enrolled(*, t) := false") && r.Rules["enrolled"] == spec.RemWins {
			haveRemWins = true
		}
	}
	if !haveAddWins {
		for _, r := range repairs {
			t.Logf("repair: %s", r)
		}
		t.Fatal("add-wins resolution (Fig 2b) not proposed")
	}
	if !haveRemWins {
		for _, r := range repairs {
			t.Logf("repair: %s", r)
		}
		t.Fatal("rem-wins resolution (Fig 2c) not proposed")
	}
	// Minimality: the first repairs add a single effect.
	if len(repairs[0].Extra) != 1 {
		t.Fatalf("repairs not ordered by size: first adds %d effects", len(repairs[0].Extra))
	}
}

func TestRunRepairsMiniTournament(t *testing.T) {
	s := spec.MustParse(miniTournament)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved conflicts: %v", res.Unsolved)
	}
	if len(res.Applied) == 0 {
		t.Fatal("expected at least one repair")
	}
	// The patched spec must be conflict-free.
	cs, err := FindConflicts(res.Spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		for _, c := range cs {
			t.Logf("residual conflict: %s", c)
		}
		t.Fatal("patched spec still has conflicts")
	}
	// Original spec untouched.
	enr, _ := s.Operation("enroll")
	if len(enr.Effects) != 1 {
		t.Fatal("Run mutated its input spec")
	}
	if !strings.Contains(res.Summary(), "repair") {
		t.Fatalf("summary = %q", res.Summary())
	}
}

func TestRunRespectsProgrammerRules(t *testing.T) {
	// With enrolled pinned to add-wins, the Fig 2c resolution (rem-wins
	// enrolled) is unavailable; the loop must still succeed via Fig 2b.
	src := strings.Replace(miniTournament, "spec mini", "spec mini\nrule enrolled add-wins", 1)
	s := spec.MustParse(src)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %v", res.Unsolved)
	}
	if res.Spec.Rules["enrolled"] != spec.AddWins {
		t.Fatal("programmer rule overridden")
	}
}

func TestRunWithoutRuleSuggestionFlags(t *testing.T) {
	s := spec.MustParse(miniTournament)
	opts := Options{DisableRuleSuggestion: true}
	res, err := Run(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	// No convergence rules given and none may be invented: the conflict
	// is unsolvable.
	if len(res.Unsolved) == 0 {
		t.Fatal("expected unsolved conflict without rule suggestion")
	}
}

const capacitySpec = `
spec cap

const Capacity = 2

invariant forall (Tournament: t) :- #enrolled(*, t) <= Capacity

operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
operation disenroll(Player: p, Tournament: t) {
    enrolled(p, t) := false
}
`

func TestNumericConflictRoutesToCompensation(t *testing.T) {
	s := spec.MustParse(capacitySpec)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %v", res.Unsolved)
	}
	if len(res.Compensations) != 1 {
		t.Fatalf("compensations = %v", res.Compensations)
	}
	comp := res.Compensations[0]
	if comp.Kind != TrimExcess || comp.Pred != "enrolled" {
		t.Fatalf("compensation = %+v", comp)
	}
	foundEnroll := false
	for _, trig := range comp.Triggers {
		if trig == "enroll" {
			foundEnroll = true
		}
	}
	if !foundEnroll {
		t.Fatalf("enroll should trigger the compensation: %v", comp.Triggers)
	}
	if !strings.Contains(comp.String(), "trim-excess") {
		t.Fatalf("comp.String() = %q", comp.String())
	}
}

const stockSpec = `
spec shop

invariant forall (Item: i) :- stock(i) >= 0

operation buy(Item: i) {
    stock(i) -= 1
}
operation restock(Item: i) {
    stock(i) += 5
}
`

func TestStockConflictSynthesisesReplenish(t *testing.T) {
	s := spec.MustParse(stockSpec)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compensations) != 1 {
		t.Fatalf("compensations = %v", res.Compensations)
	}
	if res.Compensations[0].Kind != Replenish || res.Compensations[0].Pred != "stock" {
		t.Fatalf("compensation = %+v", res.Compensations[0])
	}
	// buy ∥ buy triggers; restock alone cannot violate the lower bound.
	trig := strings.Join(res.Compensations[0].Triggers, ",")
	if !strings.Contains(trig, "buy") {
		t.Fatalf("triggers = %v", res.Compensations[0].Triggers)
	}
}

func TestMutualExclusionRepaired(t *testing.T) {
	src := `
spec tstate

invariant forall (Tournament: t) :- not (active(t) and finished(t))

operation begin_tourn(Tournament: t) {
    active(t) := true
}
operation finish_tourn(Tournament: t) {
    finished(t) := true
    active(t) := false
}
`
	s := spec.MustParse(src)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %v", res.Unsolved)
	}
	cs, err := FindConflicts(res.Spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Fatalf("patched spec still conflicts: %v", cs[0])
	}
}

func TestClassify(t *testing.T) {
	full := `
spec t

const Capacity = 4

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
invariant forall (Tournament: t) :- #enrolled(*, t) <= Capacity
invariant forall (Tournament: t) :- not (active(t) and finished(t))
invariant forall (Item: i) :- stock(i) >= 0

tag unique-ids

operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation buy(Item: i) {
    stock(i) -= 1
}
operation begin_tourn(Tournament: t) {
    active(t) := true
}
operation finish_tourn(Tournament: t) {
    finished(t) := true
    active(t) := false
}
`
	s := spec.MustParse(full)
	ccs, err := Classify(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[InvariantClass]ClassifiedClause{}
	for _, cc := range ccs {
		got[cc.Class] = cc
	}
	if cc := got[ReferentialIntegrity]; cc.IConfluent || cc.IPASupport != SupportYes {
		t.Fatalf("ref integrity: %+v", cc)
	}
	if cc := got[AggregationConstraint]; cc.IConfluent || cc.IPASupport != SupportComp {
		t.Fatalf("aggregation constraint: %+v", cc)
	}
	if cc := got[NumericInvariant]; cc.IConfluent || cc.IPASupport != SupportComp {
		t.Fatalf("numeric invariant: %+v", cc)
	}
	if cc := got[Disjunction]; cc.IConfluent || cc.IPASupport != SupportYes {
		t.Fatalf("disjunction: %+v", cc)
	}
	if cc := got[UniqueIDs]; !cc.IConfluent || cc.IPASupport != SupportYes {
		t.Fatalf("unique ids: %+v", cc)
	}

	rows := SummarizeClasses(ccs)
	if len(rows) != len(AllClasses) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Class == ReferentialIntegrity {
			if !r.Present || r.IConfluent != SupportNo || r.IPA != SupportYes {
				t.Fatalf("table row: %+v", r)
			}
		}
		if r.Class == SequentialIDs && r.Present {
			t.Fatal("sequential ids not in this spec")
		}
	}
}

func TestClassifyClauseShapes(t *testing.T) {
	cases := []struct {
		src  string
		want InvariantClass
	}{
		{"forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p)", ReferentialIntegrity},
		{"forall (Tournament: t) :- #enrolled(*, t) <= Capacity", AggregationConstraint},
		{"forall (Item: i) :- stock(i) >= 0", NumericInvariant},
		{"forall (Tournament: t) :- not (active(t) and finished(t))", Disjunction},
		{"forall (Player: p) :- premium(p) => gold(p) or silver(p)", Disjunction},
		{"forall (Player: p) :- player(p)", AggregationInclusion},
	}
	for _, c := range cases {
		if got := ClassifyClause(logic.MustParse(c.src)); got != c.want {
			t.Errorf("ClassifyClause(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestEnumBindings(t *testing.T) {
	dom := domainFor(spec.MustParse(miniTournament), 2)
	params := []logic.Var{{Name: "p", Sort: "Player"}, {Name: "q", Sort: "Player"}}
	full := enumBindings(params, dom, false)
	if len(full) != 4 {
		t.Fatalf("full bindings = %d, want 4", len(full))
	}
	canon := enumBindings(params, dom, true)
	// First player pinned to element 1, second ranges over both: 2.
	if len(canon) != 2 {
		t.Fatalf("canonical bindings = %d, want 2", len(canon))
	}
	empty := enumBindings(nil, dom, true)
	if len(empty) != 1 || len(empty[0]) != 0 {
		t.Fatalf("empty params should give one empty binding: %v", empty)
	}
}

func TestSubsetsOfSize(t *testing.T) {
	if got := subsetsOfSize(3, 2); len(got) != 3 {
		t.Fatalf("C(3,2) = %d, want 3", len(got))
	}
	if got := subsetsOfSize(2, 3); got != nil {
		t.Fatalf("C(2,3) should be empty, got %v", got)
	}
	if got := subsetsOfSize(4, 1); len(got) != 4 {
		t.Fatalf("C(4,1) = %d, want 4", len(got))
	}
}
