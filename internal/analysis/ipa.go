package analysis

import (
	"fmt"
	"strings"

	"ipa/internal/logic"
	"ipa/internal/spec"
)

// AppliedRepair records one step of the repair loop.
type AppliedRepair struct {
	Conflict *Conflict
	Repair   Repair
	// Alternatives is how many candidate repairs the analysis proposed for
	// this conflict (the chooser picked one).
	Alternatives int
}

// Result is the outcome of the IPA main loop.
type Result struct {
	// Spec is the patched, invariant-preserving specification.
	Spec *spec.Spec
	// Applied lists the repairs in application order.
	Applied []AppliedRepair
	// Compensations are the synthesised lazy repairs for numeric clauses.
	Compensations []Compensation
	// Unsolved are the conflicts flagged as unsolvable with the given
	// convergence rules; the programmer must fall back to coordination.
	Unsolved []*Conflict
	// Iterations is the number of repair-loop iterations executed.
	Iterations int
}

// Summary renders a human-readable report of the analysis.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IPA analysis of %q: %d repairs, %d compensations, %d unsolved (%d iterations)\n",
		r.Spec.Name, len(r.Applied), len(r.Compensations), len(r.Unsolved), r.Iterations)
	for _, a := range r.Applied {
		fmt.Fprintf(&b, "  repair %s ∥ %s -> %s (of %d alternatives)\n",
			a.Conflict.Op1.Name, a.Conflict.Op2.Name, a.Repair, a.Alternatives)
	}
	for _, c := range r.Compensations {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	for _, u := range r.Unsolved {
		fmt.Fprintf(&b, "  UNSOLVED %s ∥ %s (coordination required)\n", u.Op1.Name, u.Op2.Name)
	}
	return b.String()
}

// Run executes the IPA main loop (paper Alg. 1): repeatedly find a
// conflicting pair, propose repairs, apply the chosen one, and re-check,
// until all operations are I-confluent or every remaining conflict is
// flagged.
//
// Boolean (relational) clauses are handled by effect repairs; numeric
// clauses (counts, numeric fields) are handled afterwards by compensation
// synthesis, the paper's §3.4 extension. The input spec is not modified;
// the patched spec is in Result.Spec.
func Run(s *spec.Spec, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	work := s.Clone()
	res := &Result{Spec: work}
	skip := map[string]bool{} // flagged pairs, by Key

	// Phase 1: repair conflicts on boolean clauses.
	for res.Iterations = 0; res.Iterations < opts.MaxIters; res.Iterations++ {
		c, err := findFirstConflict(work, opts, skip, boolClausesOnly)
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		repairs, err := RepairConflict(work, c, opts)
		if err != nil {
			return nil, err
		}
		if len(repairs) == 0 {
			res.Unsolved = append(res.Unsolved, c)
			skip[c.Key()] = true
			continue
		}
		pick := 0
		if opts.Chooser != nil {
			pick = opts.Chooser(c, repairs)
			if pick < 0 || pick >= len(repairs) {
				pick = 0
			}
		}
		chosen := repairs[pick]
		applyRepair(work, chosen)
		res.Applied = append(res.Applied, AppliedRepair{Conflict: c, Repair: chosen, Alternatives: len(repairs)})
	}
	// Iteration budget exhausted: flag whatever still conflicts.
	for {
		c, err := findFirstConflict(work, opts, skip, boolClausesOnly)
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		res.Unsolved = append(res.Unsolved, c)
		skip[c.Key()] = true
	}

	// Phase 2: numeric clauses — synthesise compensations per pair.
	numericOnly := func(f logic.Formula) bool { return logic.HasCount(f) }
	compSeen := map[string]int{} // clause+pred -> index in res.Compensations
	numSkip := map[string]bool{}
	for {
		c, err := findFirstConflict(work, opts, numSkip, numericOnly)
		if err != nil {
			return nil, err
		}
		if c == nil {
			break
		}
		numSkip[c.Key()] = true
		comp, ok := SynthesizeCompensation(c)
		if !ok {
			res.Unsolved = append(res.Unsolved, c)
			continue
		}
		key := comp.Clause.String() + "/" + comp.Pred
		if i, dup := compSeen[key]; dup {
			res.Compensations[i].Triggers = mergeTriggers(res.Compensations[i].Triggers, comp.Triggers)
			continue
		}
		compSeen[key] = len(res.Compensations)
		res.Compensations = append(res.Compensations, comp)
	}
	return res, nil
}

func mergeTriggers(a, b []string) []string {
	seen := map[string]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			a = append(a, x)
		}
	}
	return a
}
