package analysis

import (
	"testing"

	"ipa/internal/spec"
)

// fullTournament is the paper's complete Fig. 1 specification.
const fullTournament = `
spec tournament

const Capacity = 8

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
invariant forall (Player: p, q, Tournament: t) :- inMatch(p, q, t) => enrolled(p, t) and enrolled(q, t) and (active(t) or finished(t))
invariant forall (Tournament: t) :- #enrolled(*, t) <= Capacity
invariant forall (Tournament: t) :- active(t) => tournament(t)
invariant forall (Tournament: t) :- finished(t) => tournament(t)
invariant forall (Tournament: t) :- not (active(t) and finished(t))

operation add_player(Player: p) {
    player(p) := true
}
operation add_tourn(Tournament: t) {
    tournament(t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
operation disenroll(Player: p, Tournament: t) {
    enrolled(p, t) := false
}
operation begin_tourn(Tournament: t) {
    active(t) := true
}
operation finish_tourn(Tournament: t) {
    finished(t) := true
    active(t) := false
}
operation do_match(Player: p, q, Tournament: t) {
    inMatch(p, q, t) := true
}
`

// TestFullTournamentAnalysis runs the complete IPA pipeline on the paper's
// running example and checks the headline outcome: every boolean conflict
// repaired, the capacity constraint compensated, nothing unsolved.
func TestFullTournamentAnalysis(t *testing.T) {
	s := spec.MustParse(fullTournament)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Summary())
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved conflicts: %d", len(res.Unsolved))
	}
	if len(res.Applied) == 0 {
		t.Fatal("expected repairs")
	}
	foundCap := false
	for _, c := range res.Compensations {
		if c.Kind == TrimExcess && c.Pred == "enrolled" {
			foundCap = true
		}
	}
	if !foundCap {
		t.Fatal("capacity compensation missing")
	}
	// Patched spec is conflict-free on boolean clauses.
	c, err := findFirstConflict(res.Spec, DefaultOptions(), map[string]bool{}, boolClausesOnly)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatalf("patched spec still conflicts: %s", c)
	}
}
