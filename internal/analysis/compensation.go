package analysis

import (
	"fmt"
	"strings"

	"ipa/internal/logic"
)

// CompensationKind distinguishes the two compensation shapes the analysis
// can synthesise automatically (paper §3.4).
type CompensationKind uint8

// Compensation kinds.
const (
	// TrimExcess removes deterministically chosen elements from a
	// collection until an aggregation constraint (#p(..) <= K) holds again
	// — the Ticket application's oversell handling, implemented at runtime
	// by the Compensation Set CRDT.
	TrimExcess CompensationKind = iota
	// Replenish adds back to a numeric field until a lower bound
	// (fn(..) >= K) holds again — the TPC-W restock behaviour.
	Replenish
)

func (k CompensationKind) String() string {
	if k == Replenish {
		return "replenish"
	}
	return "trim-excess"
}

// Compensation is a lazily executed repair for a numeric invariant: it is
// triggered when a replica observes a violation, and its effects are
// commutative, idempotent and monotonic so that replicas that detect the
// same violation independently still converge.
type Compensation struct {
	Kind CompensationKind
	// Clause is the numeric invariant clause being protected.
	Clause logic.Formula
	// Pred is the collection predicate (TrimExcess) or numeric field
	// (Replenish) the compensation acts on.
	Pred string
	// Triggers are the operations whose effects can cause the violation.
	Triggers []string
	// Description is the human-readable recipe for the programmer.
	Description string
}

func (c Compensation) String() string {
	return fmt.Sprintf("compensation[%s] on %s for %q (triggered by %s): %s",
		c.Kind, c.Pred, c.Clause, strings.Join(c.Triggers, ", "), c.Description)
}

// SynthesizeCompensation builds the compensation for a numeric conflict.
// It inspects the violated clause: upper bounds on counts become
// TrimExcess, lower bounds on numeric fields become Replenish. Conflicts
// whose clause matches neither shape return ok=false and must be flagged.
func SynthesizeCompensation(c *Conflict) (Compensation, bool) {
	for _, cl := range c.ViolatedClauses {
		body := cl
		if fa, ok := body.(*logic.Forall); ok {
			body = fa.Body
		}
		cmp, ok := body.(*logic.Cmp)
		if !ok {
			continue
		}
		comp := Compensation{Clause: cl, Triggers: []string{c.Op1.Name}}
		if c.Op2.Name != c.Op1.Name {
			comp.Triggers = append(comp.Triggers, c.Op2.Name)
		}
		// Upper bound on a count: #p(..) <= K or #p(..) < K.
		if cnt, isCount := cmp.L.(*logic.Count); isCount && (cmp.Op == logic.LE || cmp.Op == logic.LT) {
			comp.Kind = TrimExcess
			comp.Pred = cnt.Pred
			comp.Description = fmt.Sprintf(
				"on read: while %s violates the bound, remove the deterministically smallest element of %s and commit the removal with the reading transaction",
				cmp, cnt.Pred)
			return comp, true
		}
		// Lower bound on a numeric field: fn(..) >= K or fn(..) > K.
		if fn, isFn := cmp.L.(*logic.FnApp); isFn && (cmp.Op == logic.GE || cmp.Op == logic.GT) {
			comp.Kind = Replenish
			comp.Pred = fn.Fn
			comp.Description = fmt.Sprintf(
				"on read: if %s is violated, add back the deficit to %s (or cancel the excess operations) in a separate compensating transaction",
				cmp, fn.Fn)
			return comp, true
		}
		// Mirror orientations: K >= #p(..) etc.
		if cnt, isCount := cmp.R.(*logic.Count); isCount && (cmp.Op == logic.GE || cmp.Op == logic.GT) {
			comp.Kind = TrimExcess
			comp.Pred = cnt.Pred
			comp.Description = fmt.Sprintf(
				"on read: while %s violates the bound, remove the deterministically smallest element of %s and commit the removal with the reading transaction",
				cmp, cnt.Pred)
			return comp, true
		}
		if fn, isFn := cmp.R.(*logic.FnApp); isFn && (cmp.Op == logic.LE || cmp.Op == logic.LT) {
			comp.Kind = Replenish
			comp.Pred = fn.Fn
			comp.Description = fmt.Sprintf(
				"on read: if %s is violated, add back the deficit to %s (or cancel the excess operations) in a separate compensating transaction",
				cmp, fn.Fn)
			return comp, true
		}
	}
	return Compensation{}, false
}
