package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ipa/internal/logic"
	"ipa/internal/smt"
	"ipa/internal/spec"
)

// Repair is one candidate resolution for a conflict: extra effects added
// to a single operation of the pair, together with the convergence rules
// the repair relies on (paper §3.2, Fig. 2b/2c). Applying a repair makes
// the target operation's effects prevail over the counterpart's.
type Repair struct {
	// Target is the operation receiving the extra effects.
	Target string
	// Extra are the effects to append to the target operation.
	Extra []spec.Effect
	// Rules are convergence rules the repair introduces for predicates the
	// programmer left unconstrained. Never overrides a programmer rule.
	Rules map[string]spec.Policy
}

func (r Repair) String() string {
	var s string
	if len(r.Extra) == 0 {
		s = fmt.Sprintf("let %s win, no extra effects", r.Target)
	} else {
		parts := make([]string, len(r.Extra))
		for i, e := range r.Extra {
			parts[i] = e.String()
		}
		s = fmt.Sprintf("add to %s: %s", r.Target, strings.Join(parts, "; "))
	}
	if len(r.Rules) > 0 {
		rules := make([]string, 0, len(r.Rules))
		for p, pol := range r.Rules {
			rules = append(rules, fmt.Sprintf("%s %s", p, pol))
		}
		sort.Strings(rules)
		s += " (rules: " + strings.Join(rules, ", ") + ")"
	}
	return s
}

// wildcards counts wildcard arguments across the repair's effects, used as
// a tie-breaker: repairs with concrete arguments are preferred.
func (r Repair) wildcards() int {
	n := 0
	for _, e := range r.Extra {
		for _, a := range e.Args {
			if a.Kind == logic.TermWildcard {
				n++
			}
		}
	}
	return n
}

// candidateEffect is one element of the generation pool.
type candidateEffect struct {
	pred string
	args []logic.Term
	val  bool
}

// RepairConflict proposes every minimal repair for the conflict, ordered
// by increasing number of added effects, then fewer wildcards, then
// lexicographically (paper repairConflicts + generate). Only boolean
// clauses participate; numeric clauses route to compensations.
func RepairConflict(s *spec.Spec, c *Conflict, opts Options) ([]Repair, error) {
	opts = opts.withDefaults()

	// Pool: predicates of the invariant clauses touched by either
	// operation's effects (paper line 15).
	pool, err := predicatePool(s, c)
	if err != nil {
		return nil, err
	}

	var solutions []Repair
	// Rule-only resolutions first: when the two operations write opposing
	// values to the same predicate, installing a convergence rule alone
	// may already decide the winner (the paper's Fig. 3 uses exactly this
	// for begin/finish: a rem-wins active set, no extra effects).
	ruleOnly, err := ruleOnlyRepairs(s, c, opts)
	if err != nil {
		return nil, err
	}
	solutions = append(solutions, ruleOnly...)

	// Enumerate subsets by increasing size so found repairs are minimal;
	// a candidate containing a known solution for the same target is
	// skipped (paper line 18, isPairSubset).
	for size := 1; size <= opts.MaxRepairPreds; size++ {
		for _, target := range []*spec.Operation{c.Op1, c.Op2} {
			counterpart := c.Op2
			if target == c.Op2 {
				counterpart = c.Op1
			}
			cands := candidatesFor(target, pool)
			subsets := subsetsOfSize(len(cands), size)
			for _, idxs := range subsets {
				extra := make([]spec.Effect, 0, size)
				skip := false
				for _, i := range idxs {
					e := spec.Effect{Kind: spec.BoolAssign, Pred: cands[i].pred, Args: cands[i].args, Val: cands[i].val}
					if target.HasEffect(e) || hasOpposite(extra, e) {
						skip = true
						break
					}
					extra = append(extra, e)
				}
				if skip || len(extra) == 0 {
					continue
				}
				if coveredBySolution(solutions, target.Name, extra) {
					continue
				}
				rep := Repair{Target: target.Name, Extra: extra}
				rules, ok := requiredRules(s, target, counterpart, extra, opts)
				if !ok {
					continue
				}
				rep.Rules = rules
				solved, err := repairSolves(s, c, rep, opts)
				if err != nil {
					return nil, err
				}
				if solved {
					solutions = append(solutions, rep)
				}
			}
		}
	}
	sortRepairs(solutions)
	return solutions, nil
}

// predicatePool collects boolean predicates from the invariant clauses
// affected by the conflicting operations, with argument terms chosen from
// the target op's parameters (or wildcards when no parameter of the sort
// exists) at candidate-build time.
func predicatePool(s *spec.Spec, c *Conflict) ([]logic.PredRef, error) {
	sig, err := s.Signature()
	if err != nil {
		return nil, err
	}
	touched := map[string]bool{}
	for _, op := range []*spec.Operation{c.Op1, c.Op2} {
		for _, e := range op.Effects {
			touched[e.Pred] = true
		}
	}
	seen := map[string]bool{}
	var pool []logic.PredRef
	for _, cl := range logic.Clauses(s.Invariant()) {
		if logic.HasCount(cl) {
			continue
		}
		refs := logic.Predicates(cl)
		relevant := false
		for _, ref := range refs {
			if touched[ref.Name] {
				relevant = true
				break
			}
		}
		if !relevant {
			continue
		}
		for _, ref := range refs {
			if ref.Numeric || seen[ref.Name] {
				continue
			}
			seen[ref.Name] = true
			// Fill unknown sorts from the global signature.
			if sorts, ok := sig[ref.Name]; ok {
				ref.Sorts = sorts
			}
			pool = append(pool, ref)
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].Name < pool[j].Name })
	return pool, nil
}

// ruleOnlyRepairs proposes resolutions that add no effects: for every
// predicate the two operations write with opposing values, a convergence
// rule alone decides the winner. The repair is attributed to the
// operation whose write the rule favours.
func ruleOnlyRepairs(s *spec.Spec, c *Conflict, opts Options) ([]Repair, error) {
	if opts.DisableRuleSuggestion {
		return nil, nil
	}
	var out []Repair
	tried := map[string]bool{}
	for _, e1 := range c.Op1.Effects {
		if e1.Kind != spec.BoolAssign {
			continue
		}
		for _, e2 := range c.Op2.Effects {
			if e2.Kind != spec.BoolAssign || e2.Pred != e1.Pred || e2.Val == e1.Val {
				continue
			}
			if tried[e1.Pred] {
				continue
			}
			tried[e1.Pred] = true
			if have, ok := s.Rules[e1.Pred]; ok && have != spec.NoPolicy {
				continue // the programmer already decided
			}
			for _, pol := range []spec.Policy{spec.AddWins, spec.RemWins} {
				target := c.Op1.Name
				favoursOp1 := (pol == spec.AddWins) == e1.Val
				if !favoursOp1 {
					target = c.Op2.Name
				}
				rep := Repair{Target: target, Rules: map[string]spec.Policy{e1.Pred: pol}}
				solved, err := repairSolves(s, c, rep, opts)
				if err != nil {
					return nil, err
				}
				if solved {
					out = append(out, rep)
				}
			}
		}
	}
	return out, nil
}

// candidatesFor instantiates the pool's predicates with the target
// operation's parameters: each argument position takes every parameter of
// the matching sort plus a wildcard. Predicates the operation already
// writes are excluded (paper generate: "ignoring any predicates that are
// already present in the operation") — a candidate opposing the op's own
// effect would cancel the operation's semantics.
func candidatesFor(target *spec.Operation, pool []logic.PredRef) []candidateEffect {
	own := map[string]bool{}
	for _, e := range target.Effects {
		own[e.Pred] = true
	}
	var out []candidateEffect
	for _, ref := range pool {
		if own[ref.Name] {
			continue
		}
		argChoices := make([][]logic.Term, ref.Arity)
		feasible := true
		for i := 0; i < ref.Arity; i++ {
			var choices []logic.Term
			for _, p := range target.Params {
				if p.Sort == ref.Sorts[i] {
					choices = append(choices, logic.V(p.Name))
				}
			}
			if ref.Sorts[i] == "" && len(choices) == 0 {
				feasible = false
				break
			}
			// The wildcard is always an alternative: effects such as
			// enrolled(*, t) or inMatch(p, *, t) cover elements the
			// operation has no parameter for.
			choices = append(choices, logic.Wild())
			argChoices[i] = choices
		}
		if !feasible {
			continue
		}
		for _, args := range cartesianTerms(argChoices) {
			for _, val := range []bool{true, false} {
				out = append(out, candidateEffect{pred: ref.Name, args: args, val: val})
			}
		}
	}
	return out
}

func cartesianTerms(choices [][]logic.Term) [][]logic.Term {
	out := [][]logic.Term{{}}
	for _, col := range choices {
		var next [][]logic.Term
		for _, prefix := range out {
			for _, t := range col {
				row := make([]logic.Term, len(prefix)+1)
				copy(row, prefix)
				row[len(prefix)] = t
				next = append(next, row)
			}
		}
		out = next
	}
	return out
}

// subsetsOfSize enumerates index subsets of {0..n-1} with exactly k
// elements, in lexicographic order.
func subsetsOfSize(n, k int) [][]int {
	if k > n {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// hasOpposite reports whether extra already assigns the same predicate
// instance the opposite value (such a candidate set is self-contradictory).
func hasOpposite(extra []spec.Effect, e spec.Effect) bool {
	for _, x := range extra {
		if x.Pred == e.Pred && x.Val != e.Val && sameArgs(x.Args, e.Args) {
			return true
		}
	}
	return false
}

func sameArgs(a, b []logic.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// coveredBySolution implements the paper's isPairSubset: a candidate whose
// effect set contains a known smaller solution for the same target is
// redundant.
func coveredBySolution(solutions []Repair, target string, extra []spec.Effect) bool {
	for _, s := range solutions {
		if s.Target != target {
			continue
		}
		all := true
		for _, se := range s.Extra {
			found := false
			for _, e := range extra {
				if se.Equal(e) {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// requiredRules determines the convergence rules a repair depends on: an
// extra effect whose value must prevail over an opposing write by the
// counterpart operation needs add-wins (for true) or rem-wins (for false)
// on its predicate. Returns ok=false when the programmer pinned the
// opposite rule, or when rule suggestion is disabled and no rule exists.
func requiredRules(s *spec.Spec, target, counterpart *spec.Operation, extra []spec.Effect, opts Options) (map[string]spec.Policy, bool) {
	rules := map[string]spec.Policy{}
	for _, e := range extra {
		opposes := false
		for _, ce := range counterpart.Effects {
			if ce.Kind == spec.BoolAssign && ce.Pred == e.Pred && ce.Val != e.Val {
				opposes = true
				break
			}
		}
		// The new effect may also oppose the target's own original
		// effects when applied with a different binding; require the rule
		// whenever any opposing writer exists in the pair.
		if !opposes {
			for _, te := range target.Effects {
				if te.Kind == spec.BoolAssign && te.Pred == e.Pred && te.Val != e.Val {
					opposes = true
					break
				}
			}
		}
		if !opposes {
			continue
		}
		need := spec.RemWins
		if e.Val {
			need = spec.AddWins
		}
		if have, ok := s.Rules[e.Pred]; ok && have != spec.NoPolicy {
			if have != need {
				return nil, false
			}
			continue // programmer rule already matches
		}
		if opts.DisableRuleSuggestion {
			return nil, false
		}
		rules[e.Pred] = need
	}
	return rules, true
}

// repairSolves applies the repair on a scratch copy of the spec and
// re-runs conflict detection for the pair against the boolean clauses.
// A repair is only accepted if it preserves executability: for every
// parameter binding under which the original pair could execute
// concurrently, the repaired pair must still be able to (otherwise a
// repair could "solve" the conflict by making an operation's precondition
// unsatisfiable, which changes the application semantics — the paper
// requires the original semantics to be preserved when no conflict
// occurs).
func repairSolves(s *spec.Spec, c *Conflict, rep Repair, opts Options) (bool, error) {
	scratch := s.Clone()
	applyRepair(scratch, rep)
	op1, _ := scratch.Operation(c.Op1.Name)
	op2, _ := scratch.Operation(c.Op2.Name)
	conflict, err := IsConflicting(scratch, op1, op2, opts, boolClausesOnly)
	if err != nil {
		return false, err
	}
	if conflict != nil {
		return false, nil
	}
	return executabilityPreserved(s, scratch, c.Op1.Name, c.Op2.Name, opts)
}

// executabilityPreserved checks, binding by binding, that patching did not
// turn a concurrently executable scenario into an impossible one.
func executabilityPreserved(orig, patched *spec.Spec, op1Name, op2Name string, opts Options) (bool, error) {
	opts = opts.withDefaults()
	dom := domainFor(orig, opts.Scope)
	o1, _ := orig.Operation(op1Name)
	o2, _ := orig.Operation(op2Name)
	p1, _ := patched.Operation(op1Name)
	p2, _ := patched.Operation(op2Name)
	b1s := enumBindings(o1.Params, dom, true)
	b2s := enumBindings(o2.Params, dom, false)
	for _, b1 := range b1s {
		for _, b2 := range b2s {
			origOK, err := pairExecutable(orig, o1, o2, b1, b2, opts)
			if err != nil {
				return false, err
			}
			if !origOK {
				continue
			}
			patchedOK, err := pairExecutable(patched, p1, p2, b1, b2, opts)
			if err != nil {
				return false, err
			}
			if !patchedOK {
				return false, nil
			}
		}
	}
	return true, nil
}

// pairExecutable reports whether some I-valid state admits both operations
// concurrently under the given bindings: SAT(I(S) ∧ I(o1(S)) ∧ I(o2(S))).
func pairExecutable(s *spec.Spec, op1, op2 *spec.Operation, b1, b2 map[string]string, opts Options) (bool, error) {
	opts = opts.withDefaults()
	dom := domainFor(s, opts.Scope)
	sig, err := s.Signature()
	if err != nil {
		return false, err
	}
	ge1, err := op1.Ground(b1)
	if err != nil {
		return false, err
	}
	ge2, err := op2.Ground(b2)
	if err != nil {
		return false, err
	}
	enc := smt.NewEncoder(dom, sig)
	pre := enc.NewState("pre")
	post1 := enc.Apply(pre, ge1, "post1")
	post2 := enc.Apply(pre, ge2, "post2")
	inv := s.Invariant()
	for _, st := range []*smt.State{pre, post1, post2} {
		if err := enc.Assert(inv, st); err != nil {
			return false, err
		}
	}
	return enc.Solve(), nil
}

// applyRepair mutates the spec: appends the extra effects to the target
// operation and installs the repair's convergence rules.
func applyRepair(s *spec.Spec, rep Repair) {
	op, ok := s.Operation(rep.Target)
	if !ok {
		return
	}
	newOp := op.Clone()
	for _, e := range rep.Extra {
		if !newOp.HasEffect(e) {
			newOp.Effects = append(newOp.Effects, e)
		}
	}
	s.Replace(newOp)
	for pred, pol := range rep.Rules {
		s.Rules[pred] = pol
	}
}

// sortRepairs orders proposals: fewest wildcards first (a wildcard effect
// touches every matching element, a much bigger semantic change than an
// extra exact effect), then fewest added effects, then lexicographically.
func sortRepairs(rs []Repair) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].wildcards() != rs[j].wildcards() {
			return rs[i].wildcards() < rs[j].wildcards()
		}
		if len(rs[i].Extra) != len(rs[j].Extra) {
			return len(rs[i].Extra) < len(rs[j].Extra)
		}
		return rs[i].String() < rs[j].String()
	})
}
