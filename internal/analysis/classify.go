package analysis

import (
	"ipa/internal/logic"
	"ipa/internal/spec"
)

// InvariantClass is one of the paper's Table 1 invariant categories.
type InvariantClass string

// Invariant classes (paper §5.1.1).
const (
	SequentialIDs         InvariantClass = "Sequential id."
	UniqueIDs             InvariantClass = "Unique id."
	NumericInvariant      InvariantClass = "Numeric inv."
	AggregationConstraint InvariantClass = "Aggreg. const."
	AggregationInclusion  InvariantClass = "Aggreg. incl."
	ReferentialIntegrity  InvariantClass = "Ref. integrity"
	Disjunction           InvariantClass = "Disjunctions"
)

// AllClasses lists the classes in the paper's Table 1 row order.
var AllClasses = []InvariantClass{
	SequentialIDs, UniqueIDs, NumericInvariant, AggregationConstraint,
	AggregationInclusion, ReferentialIntegrity, Disjunction,
}

// Support is a cell of Table 1.
type Support string

// Support levels.
const (
	SupportYes  Support = "Yes"
	SupportNo   Support = "No"
	SupportComp Support = "Comp."
	SupportNone Support = "—"
)

// ClassifiedClause is the classification of one invariant clause.
type ClassifiedClause struct {
	Clause logic.Formula
	Class  InvariantClass
	// IConfluent reports whether the original (unmodified) operations are
	// already I-confluent with respect to this clause alone.
	IConfluent bool
	// IPASupport is how IPA handles the clause: effect repairs (Yes),
	// compensations (Comp.), or not at all (No).
	IPASupport Support
}

// ClassifyClause determines the Table 1 category of a single clause from
// its syntactic shape.
func ClassifyClause(cl logic.Formula) InvariantClass {
	body := cl
	if fa, ok := body.(*logic.Forall); ok {
		body = fa.Body
	}
	if cmp, ok := body.(*logic.Cmp); ok {
		if containsCountTerm(cmp.L) || containsCountTerm(cmp.R) {
			return AggregationConstraint
		}
		return NumericInvariant
	}
	switch g := body.(type) {
	case *logic.Implies:
		if containsDisjunction(g.B) {
			return Disjunction
		}
		return ReferentialIntegrity
	case *logic.Not, *logic.Or:
		// not(A and B) ≡ ¬A or ¬B: a disjunction over predicate states.
		return Disjunction
	}
	return AggregationInclusion
}

func containsCountTerm(t logic.NumTerm) bool {
	switch u := t.(type) {
	case *logic.Count:
		return true
	case *logic.NumBin:
		return containsCountTerm(u.L) || containsCountTerm(u.R)
	}
	return false
}

func containsDisjunction(f logic.Formula) bool {
	switch g := f.(type) {
	case *logic.Or:
		return true
	case *logic.And:
		for _, c := range g.L {
			if containsDisjunction(c) {
				return true
			}
		}
	case *logic.Not:
		return containsDisjunction(g.F)
	case *logic.Implies:
		return containsDisjunction(g.A) || containsDisjunction(g.B)
	}
	return false
}

// Classify analyses every invariant clause of the spec: its class, whether
// the unmodified operations are I-confluent for it, and how IPA supports
// it. Tag-only classes (unique/sequential identifiers, which live in the
// ID-generation scheme rather than the state invariants) are reported from
// spec tags.
func Classify(s *spec.Spec, opts Options) ([]ClassifiedClause, error) {
	opts = opts.withDefaults()
	var out []ClassifiedClause

	for _, tag := range s.Tags {
		switch tag {
		case "unique-ids":
			out = append(out, ClassifiedClause{Class: UniqueIDs, IConfluent: true, IPASupport: SupportYes})
		case "sequential-ids":
			out = append(out, ClassifiedClause{Class: SequentialIDs, IConfluent: false, IPASupport: SupportNo})
		case "aggregation-inclusion":
			out = append(out, ClassifiedClause{Class: AggregationInclusion, IConfluent: true, IPASupport: SupportYes})
		}
	}

	for _, cl := range logic.Clauses(s.Invariant()) {
		cc := ClassifiedClause{Clause: cl, Class: ClassifyClause(cl)}

		// I-confluence of the original operations w.r.t. this clause.
		sub := s.Clone()
		sub.Invariants = []logic.Formula{cl}
		conflict, err := anyConflict(sub, opts)
		if err != nil {
			return nil, err
		}
		cc.IConfluent = conflict == nil

		switch {
		case cc.IConfluent:
			cc.IPASupport = SupportYes
		case logic.HasCount(cl):
			// Numeric route: supported iff a compensation can be built.
			if _, ok := SynthesizeCompensation(conflict); ok {
				cc.IPASupport = SupportComp
			} else {
				cc.IPASupport = SupportNo
			}
		default:
			// Effect-repair route: supported iff Run leaves no unsolved
			// boolean conflicts for this clause.
			res, err := Run(sub, opts)
			if err != nil {
				return nil, err
			}
			if len(res.Unsolved) == 0 {
				cc.IPASupport = SupportYes
			} else {
				cc.IPASupport = SupportNo
			}
		}
		out = append(out, cc)
	}
	return out, nil
}

// anyConflict returns the first conflict among all pairs, or nil.
func anyConflict(s *spec.Spec, opts Options) (*Conflict, error) {
	return findFirstConflict(s, opts, map[string]bool{}, nil)
}

// ClassSupport aggregates per-clause results into the Table 1 row for one
// application: for each class present in the spec, whether weak
// consistency alone preserves it (I-confluent) and how IPA handles it.
type ClassSupport struct {
	Class      InvariantClass
	Present    bool
	IConfluent Support
	IPA        Support
}

// SummarizeClasses folds classified clauses into Table 1 rows.
func SummarizeClasses(ccs []ClassifiedClause) []ClassSupport {
	byClass := map[InvariantClass]*ClassSupport{}
	for _, c := range AllClasses {
		byClass[c] = &ClassSupport{Class: c, IConfluent: SupportNone, IPA: SupportNone}
	}
	for _, cc := range ccs {
		row := byClass[cc.Class]
		row.Present = true
		conf := SupportNo
		if cc.IConfluent {
			conf = SupportYes
		}
		// A class is I-confluent only if every clause of the class is.
		if row.IConfluent == SupportNone || (row.IConfluent == SupportYes && conf == SupportYes) {
			row.IConfluent = conf
		} else if conf == SupportNo {
			row.IConfluent = SupportNo
		}
		// IPA support: weakest across clauses (No < Comp. < Yes).
		row.IPA = weakestSupport(row.IPA, cc.IPASupport)
	}
	out := make([]ClassSupport, 0, len(AllClasses))
	for _, c := range AllClasses {
		out = append(out, *byClass[c])
	}
	return out
}

func weakestSupport(a, b Support) Support {
	rank := func(s Support) int {
		switch s {
		case SupportNo:
			return 0
		case SupportComp:
			return 1
		case SupportYes:
			return 2
		}
		return 3 // SupportNone: not yet seen
	}
	if rank(b) < rank(a) {
		return b
	}
	return a
}
