package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ipa/internal/spec"
)

// DiffSpecs renders the difference between the original and the patched
// specification as the recipe the programmer applies to the application
// (paper §3, step 3: "patch the original application according to the
// recipe, adding the necessary effects"): per operation, the effects to
// add; plus the convergence rules to configure on the storage objects.
func DiffSpecs(before, after *spec.Spec) string {
	var b strings.Builder

	// New or changed convergence rules.
	var rules []string
	for pred, pol := range after.Rules {
		if pol == spec.NoPolicy {
			continue
		}
		if old, ok := before.Rules[pred]; !ok || old != pol {
			rules = append(rules, fmt.Sprintf("  configure %s as %s", pred, pol))
		}
	}
	sort.Strings(rules)
	if len(rules) > 0 {
		b.WriteString("convergence rules to configure:\n")
		for _, r := range rules {
			b.WriteString(r)
			b.WriteByte('\n')
		}
	}

	// Added effects per operation.
	var ops []string
	for _, newOp := range after.Operations {
		oldOp, ok := before.Operation(newOp.Name)
		var added []string
		for _, e := range newOp.Effects {
			if !ok || !oldOp.HasEffect(e) {
				added = append(added, e.String())
			}
		}
		if len(added) > 0 && ok {
			ops = append(ops, fmt.Sprintf("  %s: add %s", newOp.Name, strings.Join(added, "; ")))
		}
		if !ok {
			ops = append(ops, fmt.Sprintf("  %s: new operation", newOp.Name))
		}
	}
	sort.Strings(ops)
	if len(ops) > 0 {
		b.WriteString("operations to patch:\n")
		for _, o := range ops {
			b.WriteString(o)
			b.WriteByte('\n')
		}
	}

	if b.Len() == 0 {
		return "no changes: the specification is already invariant-preserving\n"
	}
	return b.String()
}

// Diff renders the recipe of this analysis result against its input.
func (r *Result) Diff(original *spec.Spec) string {
	return DiffSpecs(original, r.Spec)
}
