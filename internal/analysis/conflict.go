// Package analysis implements the IPA static analysis (paper §3, Alg. 1):
// detecting pairs of operations whose concurrent execution can violate an
// application invariant, proposing minimal repairs that restore operation
// preconditions through additional effects and convergence rules, and
// synthesising compensations for numeric invariants that cannot reasonably
// be prevented up front (§3.4).
//
// Conflict detection follows the paper's formulation (Fig. 2): a pair
// (o1, o2) conflicts iff there is an I-valid pre-state S admitting both
// operations — i.e. o1(S) and o2(S) are I-valid — whose merged state
// merge(o1(S), o2(S)) under the convergence rules violates I. The check is
// grounded over a small scope and decided by the SAT-based solver in
// package smt (standing in for Z3), with all parameter-aliasing patterns
// covered by binding enumeration (pairwise checking is sound, Gotsman et
// al. [24]).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ipa/internal/logic"
	"ipa/internal/sat"
	"ipa/internal/smt"
	"ipa/internal/spec"
)

// Options tunes the analysis.
type Options struct {
	// Scope is the number of domain elements per sort (default 2).
	Scope int
	// MaxRepairPreds caps how many extra effects one repair may add
	// (default 2). The search enumerates candidate sets by increasing
	// size, so found repairs are minimal regardless of the cap.
	MaxRepairPreds int
	// DisableRuleSuggestion forbids the repair search from introducing
	// convergence rules for predicates the programmer left unconstrained;
	// by default the search may propose them (a programmer-provided rule
	// is never overridden either way).
	DisableRuleSuggestion bool
	// Chooser picks among the candidate repairs for one conflict; the
	// default picks the first (repairs are ordered smallest-first, ties
	// broken deterministically). This is the paper's pickResolution hook,
	// used interactively by cmd/ipa.
	Chooser func(*Conflict, []Repair) int
	// MaxIters bounds the repair loop (default 32).
	MaxIters int
}

// DefaultOptions returns the options used when zero values are passed.
func DefaultOptions() Options {
	return Options{Scope: 2, MaxRepairPreds: 2, MaxIters: 32}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Scope <= 0 {
		o.Scope = d.Scope
	}
	if o.MaxRepairPreds <= 0 {
		o.MaxRepairPreds = d.MaxRepairPreds
	}
	if o.MaxIters <= 0 {
		o.MaxIters = d.MaxIters
	}
	return o
}

// Conflict reports that two operations are not I-confluent, with the
// counterexample found by the solver.
type Conflict struct {
	Op1, Op2 *spec.Operation
	// Binding1/Binding2 give the parameter instantiation of the
	// counterexample (parameter name -> domain element).
	Binding1, Binding2 map[string]string
	// ViolatedClauses are the invariant clauses false in the merged state.
	ViolatedClauses []logic.Formula
	// Numeric reports that every violated clause involves a count or
	// numeric field, routing the conflict to compensations (§3.4).
	Numeric bool
	// Example is the witness state assignment.
	Example *Counterexample
}

// Key identifies the (unordered) operation pair.
func (c *Conflict) Key() string { return pairKey(c.Op1.Name, c.Op2.Name) }

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "∥" + b
}

func (c *Conflict) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conflict %s(%s) ∥ %s(%s)", c.Op1.Name, bindingString(c.Binding1, c.Op1), c.Op2.Name, bindingString(c.Binding2, c.Op2))
	for _, cl := range c.ViolatedClauses {
		fmt.Fprintf(&b, "\n  violates: %s", cl)
	}
	return b.String()
}

func bindingString(b map[string]string, op *spec.Operation) string {
	parts := make([]string, len(op.Params))
	for i, p := range op.Params {
		parts[i] = b[p.Name]
	}
	return strings.Join(parts, ", ")
}

// Counterexample is the model the solver found: an initial state, the two
// post-states, and the invalid merged state.
type Counterexample struct {
	Pre, Post1, Post2, Merged map[string]bool
	PreFns, MergedFns         map[string]int
	Consts                    map[string]int
}

func (ce *Counterexample) String() string {
	var b strings.Builder
	writeState := func(name string, atoms map[string]bool, fns map[string]int) {
		keys := make([]string, 0, len(atoms))
		for k, v := range atoms {
			if v {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "  %-7s {%s}", name, strings.Join(keys, " "))
		fkeys := make([]string, 0, len(fns))
		for k := range fns {
			fkeys = append(fkeys, k)
		}
		sort.Strings(fkeys)
		for _, k := range fkeys {
			fmt.Fprintf(&b, " %s=%d", k, fns[k])
		}
		b.WriteByte('\n')
	}
	writeState("pre", ce.Pre, ce.PreFns)
	writeState("post1", ce.Post1, nil)
	writeState("post2", ce.Post2, nil)
	writeState("merged", ce.Merged, ce.MergedFns)
	if len(ce.Consts) > 0 {
		keys := make([]string, 0, len(ce.Consts))
		for k := range ce.Consts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  const %s=%d\n", k, ce.Consts[k])
		}
	}
	return b.String()
}

// domainFor builds the analysis scope for the spec's sorts.
func domainFor(s *spec.Spec, scope int) smt.Domain {
	return smt.UniformScope(s.Sorts(), scope)
}

// clauseFilter selects which invariant clauses may appear violated in the
// merged state; nil means all.
type clauseFilter func(logic.Formula) bool

func boolClausesOnly(f logic.Formula) bool { return !logic.HasCount(f) }

// IsConflicting checks one operation pair under every parameter binding
// and returns the first conflict found, or nil (paper isConflicting). The
// filter restricts which clauses count as violations (nil = all).
func IsConflicting(s *spec.Spec, op1, op2 *spec.Operation, opts Options, filter clauseFilter) (*Conflict, error) {
	opts = opts.withDefaults()
	dom := domainFor(s, opts.Scope)
	sig, err := s.Signature()
	if err != nil {
		return nil, err
	}
	inv := s.Invariant()
	clauses := logic.Clauses(inv)
	var checked []logic.Formula
	for _, cl := range clauses {
		if filter == nil || filter(cl) {
			checked = append(checked, cl)
		}
	}
	if len(checked) == 0 {
		return nil, nil
	}

	b1s := enumBindings(op1.Params, dom, true)
	b2s := enumBindings(op2.Params, dom, false)
	for _, b1 := range b1s {
		for _, b2 := range b2s {
			c, err := checkBinding(s, dom, sig, clauses, checked, op1, op2, b1, b2)
			if err != nil {
				return nil, err
			}
			if c != nil {
				return c, nil
			}
		}
	}
	return nil, nil
}

// checkBinding runs one four-state satisfiability query.
func checkBinding(s *spec.Spec, dom smt.Domain, sig smt.Signature, allClauses, checked []logic.Formula,
	op1, op2 *spec.Operation, b1, b2 map[string]string) (*Conflict, error) {

	ge1, err := op1.Ground(b1)
	if err != nil {
		return nil, err
	}
	ge2, err := op2.Ground(b2)
	if err != nil {
		return nil, err
	}

	enc := smt.NewEncoder(dom, sig)
	pre := enc.NewState("pre")
	post1 := enc.Apply(pre, ge1, "post1")
	post2 := enc.Apply(pre, ge2, "post2")
	merged := enc.Merge(pre, ge1, ge2, s.Resolver(), "merged")

	inv := logic.Conj(allClauses...)
	for _, st := range []*smt.State{pre, post1, post2} {
		if err := enc.Assert(inv, st); err != nil {
			return nil, err
		}
	}
	// Encode each checked clause on the merged state separately so the
	// violated ones can be identified from the model afterwards.
	mergedClauses := make([]*sat.Formula, len(checked))
	for i, cl := range checked {
		f, err := enc.Formula(cl, merged, smt.Binding{})
		if err != nil {
			return nil, err
		}
		mergedClauses[i] = f
	}
	enc.S.Assert(sat.Not(sat.And(mergedClauses...)))

	if !enc.Solve() {
		return nil, nil
	}

	model := enc.S.Model()
	c := &Conflict{Op1: op1, Op2: op2, Binding1: b1, Binding2: b2, Numeric: true}
	for i, f := range mergedClauses {
		if !f.Eval(model) {
			c.ViolatedClauses = append(c.ViolatedClauses, checked[i])
			if !logic.HasCount(checked[i]) {
				c.Numeric = false
			}
		}
	}
	c.Example = extractExample(enc, pre, post1, post2, merged)
	return c, nil
}

func extractExample(enc *smt.Encoder, pre, post1, post2, merged *smt.State) *Counterexample {
	ce := &Counterexample{
		Pre: map[string]bool{}, Post1: map[string]bool{}, Post2: map[string]bool{}, Merged: map[string]bool{},
		PreFns: map[string]int{}, MergedFns: map[string]int{}, Consts: map[string]int{},
	}
	read := func(st *smt.State, out map[string]bool) {
		for _, k := range st.Atoms() {
			if v, ok := st.AtomValueByKey(k); ok {
				out[k] = v
			}
		}
	}
	read(pre, ce.Pre)
	read(post1, ce.Post1)
	read(post2, ce.Post2)
	read(merged, ce.Merged)
	for _, k := range pre.Fns() {
		if v, ok := pre.FnValueByKey(k); ok {
			ce.PreFns[k] = v
		}
	}
	for _, k := range merged.Fns() {
		if v, ok := merged.FnValueByKey(k); ok {
			ce.MergedFns[k] = v
		}
	}
	for _, name := range []string{"Capacity", "Limit", "Max", "Bound"} {
		if v, ok := enc.ConstValue(name); ok {
			ce.Consts[name] = v
		}
	}
	return ce
}

// enumBindings enumerates parameter bindings over the domain. When
// canonical is set, bindings are restricted to first-occurrence canonical
// form (each new parameter of a sort uses at most one element beyond those
// already used for that sort), which is sound because domain elements are
// interchangeable.
func enumBindings(params []logic.Var, dom smt.Domain, canonical bool) []map[string]string {
	out := []map[string]string{{}}
	used := map[logic.Sort]int{} // per-sort high-water mark for canonical form
	for _, p := range params {
		elems := dom[p.Sort]
		var next []map[string]string
		limit := len(elems)
		if canonical {
			if used[p.Sort]+1 < limit {
				limit = used[p.Sort] + 1
			}
			used[p.Sort]++
			if used[p.Sort] > len(elems) {
				used[p.Sort] = len(elems)
			}
		}
		for _, b := range out {
			for i := 0; i < limit; i++ {
				nb := make(map[string]string, len(b)+1)
				for k, v := range b {
					nb[k] = v
				}
				nb[p.Name] = elems[i]
				next = append(next, nb)
			}
		}
		out = next
	}
	return out
}

// FindConflicts scans every unordered operation pair (including an
// operation with itself) in deterministic order and returns all conflicts,
// one per conflicting pair.
func FindConflicts(s *spec.Spec, opts Options) ([]*Conflict, error) {
	var out []*Conflict
	for i := 0; i < len(s.Operations); i++ {
		for j := i; j < len(s.Operations); j++ {
			c, err := IsConflicting(s, s.Operations[i], s.Operations[j], opts, nil)
			if err != nil {
				return nil, err
			}
			if c != nil {
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// findFirstConflict returns the first conflicting pair not in skip.
func findFirstConflict(s *spec.Spec, opts Options, skip map[string]bool, filter clauseFilter) (*Conflict, error) {
	for i := 0; i < len(s.Operations); i++ {
		for j := i; j < len(s.Operations); j++ {
			if skip[pairKey(s.Operations[i].Name, s.Operations[j].Name)] {
				continue
			}
			c, err := IsConflicting(s, s.Operations[i], s.Operations[j], opts, filter)
			if err != nil {
				return nil, err
			}
			if c != nil {
				return c, nil
			}
		}
	}
	return nil, nil
}
