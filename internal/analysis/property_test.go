package analysis

import (
	"testing"

	"ipa/internal/spec"
)

// Property: the IPA loop is idempotent — analysing an already-patched
// specification finds nothing left to repair.
func TestRunIdempotent(t *testing.T) {
	for _, src := range []string{miniTournament, capacitySpec, stockSpec} {
		s := spec.MustParse(src)
		first, err := Run(s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(first.Spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(second.Applied) != 0 {
			t.Fatalf("%s: second run applied repairs: %v", s.Name, second.Applied)
		}
		if len(second.Unsolved) != 0 {
			t.Fatalf("%s: second run found unsolved conflicts", s.Name)
		}
		if second.Spec.String() != first.Spec.String() {
			t.Fatalf("%s: second run changed the spec", s.Name)
		}
	}
}

// Property: the analysis is deterministic — identical inputs yield
// byte-identical patched specs and summaries.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(spec.MustParse(miniTournament), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec.MustParse(miniTournament), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec.String() != b.Spec.String() {
		t.Fatal("patched specs differ between runs")
	}
	if a.Summary() != b.Summary() {
		t.Fatal("summaries differ between runs")
	}
}

// Property: a larger scope finds no fewer conflicts than the default (the
// small-scope hypothesis in the safe direction: growing the scope can only
// reveal more behaviour). For the tournament example both scopes find the
// same conflicting pairs.
func TestScopeMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("scope-3 analysis is slow")
	}
	s := spec.MustParse(miniTournament)
	at2, err := FindConflicts(s, Options{Scope: 2})
	if err != nil {
		t.Fatal(err)
	}
	at3, err := FindConflicts(s, Options{Scope: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys2 := map[string]bool{}
	for _, c := range at2 {
		keys2[c.Key()] = true
	}
	for _, c := range at2 {
		found := false
		for _, c3 := range at3 {
			if c3.Key() == c.Key() {
				found = true
			}
		}
		if !found {
			t.Fatalf("conflict %s found at scope 2 but not scope 3", c.Key())
		}
	}
	if len(at3) < len(at2) {
		t.Fatalf("scope 3 found fewer conflicting pairs: %d vs %d", len(at3), len(at2))
	}
}

// Property: the chooser sees every alternative, and any choice leads to a
// conflict-free patched spec.
func TestAnyRepairChoiceConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple analysis runs are slow")
	}
	// Run once to learn the max alternatives per conflict.
	for _, pick := range []int{0, 1, 1 << 20} { // first, second, out-of-range->first
		opts := Options{Chooser: func(c *Conflict, rs []Repair) int { return pick }}
		res, err := Run(spec.MustParse(miniTournament), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Unsolved) != 0 {
			t.Fatalf("pick=%d: unsolved conflicts", pick)
		}
		conflicts, err := FindConflicts(res.Spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(conflicts) != 0 {
			t.Fatalf("pick=%d: patched spec still conflicts: %v", pick, conflicts[0])
		}
	}
}

// Repairs never override a programmer-pinned convergence rule.
func TestRepairsRespectPinnedRules(t *testing.T) {
	src := `
spec pinned

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => tournament(t)

rule tournament rem-wins

operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`
	s := spec.MustParse(src)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Rules["tournament"] != spec.RemWins {
		t.Fatal("pinned rule changed")
	}
	// With tournament pinned rem-wins, the Fig 2b repair is unavailable;
	// the loop must find the rem-wins route (enrolled wipe) instead.
	for _, a := range res.Applied {
		for p, pol := range a.Repair.Rules {
			if p == "tournament" && pol != spec.RemWins {
				t.Fatalf("repair overrides pinned rule: %v", a.Repair)
			}
		}
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("should still solve via the rem-wins route:\n%s", res.Summary())
	}
	remTourn, _ := res.Spec.Operation("rem_tourn")
	found := false
	for _, e := range remTourn.Effects {
		if e.Pred == "enrolled" && !e.Val {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected the enrolled wipe on rem_tourn:\n%s", res.Spec)
	}
}

// Conflicts on disjunction invariants are repairable by asserting an
// alternative disjunct (paper §5.1.1 "Disjunctions").
func TestDisjunctionRepair(t *testing.T) {
	src := `
spec disj

invariant forall (User: u) :- premium(u) => gold(u) or silver(u)

operation upgrade(User: u) {
    premium(u) := true
}
operation drop_gold(User: u) {
    gold(u) := false
}
`
	s := spec.MustParse(src)
	res, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("disjunction should be repairable:\n%s", res.Summary())
	}
	if len(res.Applied) == 0 {
		t.Fatal("expected a repair")
	}
	// The repair must ensure one of the disjuncts holds.
	rep := res.Applied[0].Repair
	ok := false
	for _, e := range rep.Extra {
		if (e.Pred == "gold" || e.Pred == "silver") && e.Val {
			ok = true
		}
		if e.Pred == "premium" && !e.Val {
			ok = true // the alternative: the drop wins, premium cleared
		}
	}
	if !ok {
		t.Fatalf("unexpected repair: %v", rep)
	}
}
