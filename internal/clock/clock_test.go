package clock

import (
	"testing"
	"testing/quick"
)

func TestTickAndContains(t *testing.T) {
	v := New()
	e1 := v.Tick("a")
	if e1.Replica != "a" || e1.Seq != 1 {
		t.Fatalf("first tick = %v, want a:1", e1)
	}
	e2 := v.Tick("a")
	if e2.Seq != 2 {
		t.Fatalf("second tick seq = %d, want 2", e2.Seq)
	}
	if !v.Contains(e1) || !v.Contains(e2) {
		t.Fatal("vector should contain its own events")
	}
	if v.Contains(EventID{"a", 3}) {
		t.Fatal("vector should not contain future events")
	}
	if v.Contains(EventID{"b", 1}) {
		t.Fatal("vector should not contain events from unseen replicas")
	}
}

func TestPartialOrder(t *testing.T) {
	a := Vector{"r1": 2, "r2": 1}
	b := Vector{"r1": 3, "r2": 1}
	c := Vector{"r1": 1, "r2": 5}

	if !a.LEq(b) || b.LEq(a) {
		t.Fatal("a < b expected")
	}
	if !a.Before(b) {
		t.Fatal("a.Before(b) expected")
	}
	if !b.Concurrent(c) || !c.Concurrent(b) {
		t.Fatal("b || c expected")
	}
	if a.Concurrent(a.Clone()) {
		t.Fatal("a not concurrent with itself")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone should be equal")
	}
}

func TestZeroValueIsBottom(t *testing.T) {
	var zero Vector
	a := Vector{"r1": 1}
	if !zero.LEq(a) {
		t.Fatal("zero clock must be below everything")
	}
	if !zero.LEq(Vector{}) || !(Vector{}).LEq(zero) {
		t.Fatal("zero and empty must be equal")
	}
}

func TestMergeIsLUB(t *testing.T) {
	a := Vector{"r1": 2, "r2": 1}
	b := Vector{"r1": 1, "r3": 4}
	m := a.Clone()
	m.Merge(b)
	if !a.LEq(m) || !b.LEq(m) {
		t.Fatal("merge must dominate both inputs")
	}
	want := Vector{"r1": 2, "r2": 1, "r3": 4}
	if !m.Equal(want) {
		t.Fatalf("merge = %v, want %v", m, want)
	}
}

func TestGLB(t *testing.T) {
	a := Vector{"r1": 5, "r2": 3}
	b := Vector{"r1": 2, "r2": 7}
	g := GLB(a, b)
	if !g.Equal(Vector{"r1": 2, "r2": 3}) {
		t.Fatalf("GLB = %v", g)
	}
	// A replica absent from one vector clamps to zero.
	c := Vector{"r1": 9}
	g2 := GLB(a, c)
	if g2["r2"] != 0 {
		t.Fatalf("GLB with missing replica = %v, want r2 absent", g2)
	}
	if !GLB().Equal(Vector{}) {
		t.Fatal("GLB of nothing is bottom")
	}
}

func TestStabilityHorizon(t *testing.T) {
	s := NewStability([]ReplicaID{"a", "b"})
	s.Ack("a", Vector{"a": 5, "b": 2})
	s.Ack("b", Vector{"a": 3, "b": 4})
	h := s.Horizon()
	if !h.Equal(Vector{"a": 3, "b": 2}) {
		t.Fatalf("horizon = %v, want {a:3 b:2}", h)
	}
	// Acks are monotone: a stale ack cannot move the horizon backwards.
	s.Ack("a", Vector{"a": 1})
	if !s.Horizon().Equal(h) {
		t.Fatalf("horizon moved backwards: %v", s.Horizon())
	}
	s.Ack("b", Vector{"a": 9, "b": 9})
	h2 := s.Horizon()
	if !h.LEq(h2) {
		t.Fatalf("horizon must be monotone: %v -> %v", h, h2)
	}
}

func TestStabilityUnknownReplica(t *testing.T) {
	s := NewStability([]ReplicaID{"a"})
	s.Ack("ghost", Vector{"a": 3})
	if got := s.Horizon(); got["a"] != 0 {
		t.Fatalf("new member with empty history should pin horizon at 0, got %v", got)
	}
}

func TestEventIDOrdering(t *testing.T) {
	a := EventID{"r1", 1}
	b := EventID{"r1", 2}
	c := EventID{"r2", 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("seq ordering broken")
	}
	if !a.Less(c) || c.Less(a) {
		t.Fatal("replica ordering broken")
	}
	if a.Less(a) {
		t.Fatal("irreflexive")
	}
}

func TestString(t *testing.T) {
	v := Vector{"b": 2, "a": 1}
	if got := v.String(); got != "{a:1 b:2}" {
		t.Fatalf("String() = %q", got)
	}
	e := EventID{"x", 7}
	if e.String() != "x:7" {
		t.Fatalf("EventID.String() = %q", e.String())
	}
}

// Property: merge is commutative, associative, idempotent (join-semilattice).
func TestQuickMergeSemilattice(t *testing.T) {
	type gen struct{ A, B, C map[string]uint8 }
	toVec := func(m map[string]uint8) Vector {
		v := New()
		for k, n := range m {
			if len(k) > 0 {
				v[ReplicaID(k[:1])] = uint64(n)
			}
		}
		return v
	}
	f := func(g gen) bool {
		a, b, c := toVec(g.A), toVec(g.B), toVec(g.C)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}

		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false
		}

		aa := a.Clone()
		aa.Merge(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LEq is antisymmetric and Merge is the least upper bound.
func TestQuickMergeIsLUB(t *testing.T) {
	toVec := func(m map[string]uint8) Vector {
		v := New()
		for k, n := range m {
			if len(k) > 0 {
				v[ReplicaID(k[:1])] = uint64(n)
			}
		}
		return v
	}
	f := func(am, bm, cm map[string]uint8) bool {
		a, b, c := toVec(am), toVec(bm), toVec(cm)
		m := a.Clone()
		m.Merge(b)
		// upper bound
		if !a.LEq(m) || !b.LEq(m) {
			return false
		}
		// least: any other upper bound dominates m
		if a.LEq(c) && b.LEq(c) && !m.LEq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
