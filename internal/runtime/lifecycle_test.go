package runtime

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ipa/internal/netrepl"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func newDurableNetCluster(t *testing.T, n int) *NetCluster {
	t.Helper()
	c, err := NewNetCluster(testIDs(n), NetConfig{
		Transport: netrepl.Config{
			FlushInterval: 100 * time.Microsecond,
			BackoffMin:    time.Millisecond,
			BackoffMax:    10 * time.Millisecond,
		},
		SettleTimeout: 30 * time.Second,
		DataDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestNetClusterCrashRecover is the lifecycle round-trip: every commit
// that returned before the crash must be present after recovery, commits
// made elsewhere while the site was down must flow to it afterwards, and
// a session pinned to the dead replica instance must fail loudly rather
// than read its frozen state.
func TestNetClusterCrashRecover(t *testing.T) {
	c := newDurableNetCluster(t, 3)
	ids := c.Replicas()
	if !c.Durable() {
		t.Fatal("cluster with DataDir reports not durable")
	}

	// Commits that return are fsynced (the commit hook's wait): all of
	// them must survive the crash.
	for k := 0; k < 40; k++ {
		tx := c.Replica(ids[0]).Begin()
		store.CounterAt(tx, "ops").Add(1)
		store.AWSetAt(tx, "acked").Add(fmt.Sprintf("pre-%d", k), "")
		tx.Commit()
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}

	// A session pinned to the replica instance that is about to die.
	sess := store.NewSession()
	pinned := c.Node(ids[0]).Replica()
	if _, err := sess.Begin(pinned); err != nil {
		t.Fatalf("session on live replica: %v", err)
	}

	if err := c.Crash(ids[0]); err != nil {
		t.Fatal(err)
	}
	var stale *store.ErrStale
	if _, err := sess.Begin(pinned); !errors.As(err, &stale) {
		t.Fatalf("session Begin on crashed replica: got %v, want ErrStale", err)
	}

	// Commits elsewhere while the site is down; senders hold them.
	for k := 0; k < 25; k++ {
		tx := c.Replica(ids[1]).Begin()
		store.CounterAt(tx, "ops").Add(1)
		store.AWSetAt(tx, "acked").Add(fmt.Sprintf("down-%d", k), "")
		tx.Commit()
	}

	if err := c.Recover(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		tx := c.Replica(id).Begin()
		if v := store.CounterAt(tx, "ops").Value(); v != 65 {
			t.Errorf("%s: counter = %d, want 65", id, v)
		}
		if sz := store.AWSetAt(tx, "acked").Size(); sz != 65 {
			t.Errorf("%s: set size = %d, want 65", id, sz)
		}
		tx.Commit()
	}
	// The recovered instance is a different replica object; a fresh
	// session against it must work.
	if _, ok := c.Replica(ids[0]).(*netrepl.Node); !ok {
		t.Fatalf("recovered replica has unexpected type %T", c.Replica(ids[0]))
	}
	if _, err := store.NewSession().Begin(c.Node(ids[0]).Replica()); err != nil {
		t.Fatalf("session on recovered replica: %v", err)
	}
}

// TestNetClusterRecoverFromSnapshotAndTail crashes a site after enough
// traffic that stability snapshots and log truncation have happened, so
// recovery exercises the snapshot-restore + log-replay path, not just
// replay from an empty store.
func TestNetClusterRecoverFromSnapshotAndTail(t *testing.T) {
	c, err := NewNetCluster(testIDs(3), NetConfig{
		Transport: netrepl.Config{
			FlushInterval: 100 * time.Microsecond,
			BackoffMin:    time.Millisecond,
			BackoffMax:    10 * time.Millisecond,
			SnapshotEvery: 1, // snapshot on every stability round
		},
		SettleTimeout: 30 * time.Second,
		DataDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.Replicas()
	for round := 0; round < 4; round++ {
		for _, id := range ids {
			for k := 0; k < 10; k++ {
				tx := c.Replica(id).Begin()
				store.CounterAt(tx, "ops").Add(1)
				tx.Commit()
			}
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		c.Stabilize() // snapshot + truncate every round
	}
	if got := c.Node(ids[0]).Stats().Snapshots; got == 0 {
		t.Fatal("no snapshots were taken; test exercises nothing")
	}
	if err := c.Crash(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	tx := c.Replica(ids[0]).Begin()
	if v := store.CounterAt(tx, "ops").Value(); v != 120 {
		t.Fatalf("recovered counter = %d, want 120", v)
	}
	tx.Commit()
}

// TestNetClusterJoinAndDecommission bootstraps a brand-new site from a
// donor snapshot plus op tails, verifies it converges with the mesh,
// then retires it and checks the mesh keeps working — including that
// fault hooks aimed at the retired site no-op instead of panicking
// (a fault injector racing a decommission must not bring the run down).
func TestNetClusterJoinAndDecommission(t *testing.T) {
	c := newDurableNetCluster(t, 3)
	ids := c.Replicas()
	if err := runOn(c, 20); err != nil {
		t.Fatal(err)
	}
	c.Stabilize()

	joiner := testIDs(4)[3]
	if err := c.Join(joiner, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	tx := c.Replica(joiner).Begin()
	if v := store.CounterAt(tx, "ops").Value(); v != 60 {
		t.Fatalf("joined site counter = %d, want 60", v)
	}
	tx.Commit()

	// New commits reach the joiner too.
	tx = c.Replica(ids[1]).Begin()
	store.CounterAt(tx, "ops").Add(1)
	tx.Commit()
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	tx = c.Replica(joiner).Begin()
	if v := store.CounterAt(tx, "ops").Value(); v != 61 {
		t.Fatalf("joined site counter after new commit = %d, want 61", v)
	}
	tx.Commit()

	if err := c.Decommission(joiner); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.Replicas() {
		if id == joiner {
			t.Fatal("decommissioned site still in membership")
		}
	}
	// Fault hooks on the retired site: must not panic, must not wedge.
	c.SetPartitioned(ids[0], joiner, true)
	c.SetPartitioned(ids[0], joiner, false)
	c.SetPaused(joiner, true)
	c.SetPaused(joiner, false)
	// Sessions pinned to the retired replica fail loudly.
	var stale *store.ErrStale
	if _, err := store.NewSession().Begin(c.Node(joiner).Replica()); !errors.As(err, &stale) {
		t.Fatalf("session on decommissioned replica: got %v, want ErrStale", err)
	}
	// The shrunk mesh still replicates and settles.
	tx = c.Replica(ids[2]).Begin()
	store.CounterAt(tx, "ops").Add(1)
	tx.Commit()
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.Stabilize()
}

// TestNetClusterFaultsWhileDown takes partition and pause faults while a
// site is crashed — the hooks must not panic on the dead node, and the
// fault must still be in force on the recovered instance (satellite of
// the recovery work: fault state outlives the node object).
func TestNetClusterFaultsWhileDown(t *testing.T) {
	c := newDurableNetCluster(t, 3)
	ids := c.Replicas()
	if err := runOn(c, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(ids[1]); err != nil {
		t.Fatal(err)
	}
	// Faults against the dead site: no panic.
	c.SetPartitioned(ids[0], ids[1], true)
	c.SetPaused(ids[1], true)
	// Stabilize with a dead member must return (horizon frozen at the
	// dead site's cut, nobody compacts past it).
	h := c.Stabilize()
	if got, want := h.Get(ids[0]), c.Node(ids[1]).Clock().Get(ids[0]); got > want {
		t.Fatalf("horizon advanced past dead site's cut: %d > %d", got, want)
	}
	if err := c.Recover(ids[1]); err != nil {
		t.Fatal(err)
	}
	// The partition taken while down is in force on the new instance:
	// a commit at ids[0] must not reach ids[1].
	tx := c.Replica(ids[0]).Begin()
	store.CounterAt(tx, "blocked").Add(1)
	tx.Commit()
	time.Sleep(50 * time.Millisecond)
	// Partition drops the frame before delivery; pause would merely
	// buffer it. Nothing may be pending on the recovered instance.
	if c.Node(ids[1]).Pending() != 0 {
		t.Fatal("partitioned+paused recovered node accepted frames")
	}
	// Heal everything and converge.
	c.SetPartitioned(ids[0], ids[1], false)
	c.SetPaused(ids[1], false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		tx := c.Replica(id).Begin()
		if v := store.CounterAt(tx, "blocked").Value(); v != 1 {
			t.Errorf("%s: blocked counter = %d, want 1", id, v)
		}
		tx.Commit()
	}
}

// TestSimClusterLifecycle checks the sim backend's Lifecycle modelling:
// crash/recover as a lossless pause window, join/decommission refused.
func TestSimClusterLifecycle(t *testing.T) {
	ids := testIDs(2)
	sim := NewSimCluster(store.NewCluster(wan.NewSim(1), wan.NewLatency(wan.Ms(20)), ids))
	var lc Lifecycle = sim
	if !lc.Durable() {
		t.Fatal("sim must be durable by construction")
	}
	if err := lc.Crash(ids[1]); err != nil {
		t.Fatal(err)
	}
	tx := sim.Replica(ids[0]).Begin()
	store.CounterAt(tx, "ops").Add(1)
	tx.Commit()
	if err := lc.Recover(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	tx = sim.Replica(ids[1]).Begin()
	if v := store.CounterAt(tx, "ops").Value(); v != 1 {
		t.Fatalf("recovered sim site counter = %d, want 1", v)
	}
	tx.Commit()
	if err := lc.Join("new-site", ids[0]); err == nil {
		t.Fatal("sim Join must fail: fixed membership")
	}
	if err := lc.Decommission(ids[0]); err == nil {
		t.Fatal("sim Decommission must fail: fixed membership")
	}
}
