// Package runtime defines the backend-agnostic surface the applications,
// the chaos harness, and the benchmarks program against, decoupling them
// from the replication substrate. Two backends implement it:
//
//   - SimCluster wraps the deterministic wan.Sim-backed store.Cluster —
//     virtual time, single-threaded, bit-identical replay;
//   - NetCluster wraps a mesh of netrepl.Nodes — real TCP sockets, real
//     goroutines, wall-clock time, convergence-wait instead of an
//     instantaneous event-loop drain.
//
// The split mirrors how Indigo/Antidote separate application logic from
// the replication substrate: application code sees replicas that hand out
// highly available transactions, and nothing else. Everything above this
// package — internal/apps, internal/harness, internal/bench, the CLIs —
// runs unchanged on either backend.
package runtime

import (
	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/store"
)

// Backend names.
const (
	// BackendSim is the deterministic discrete-event simulation.
	BackendSim = "sim"
	// BackendNet is the real-socket netrepl transport.
	BackendNet = "netrepl"
)

// Backends lists the available backend names.
func Backends() []string { return []string{BackendSim, BackendNet} }

// Replica is one site of the replicated database. *store.Replica is the
// sim-backed implementation; *netrepl.Node the socket-backed one.
//
// Begin starts a highly available transaction. Replicas are safe for
// concurrent use: many goroutines may hold open transactions on one
// replica at once, each two-phase-locking the key shards it touches, and
// the replication receive path applies remote effect groups concurrently
// (serialised per shard). Always commit every transaction exactly once.
// Multi-key reads that need one consistent view must happen inside a
// single transaction, binding every key before reading any (see
// store.Txn's visibility contract — a writer's contended out-of-order
// shard reacquisition is the one narrow, origin-local exception to group
// atomicity). Object, Lookup, and Clock are individually safe at any
// time but give no cross-call atomicity.
//
// Commit hands the transaction to replication while still holding its
// shard locks, and a full outbound queue blocks the committer
// (backpressure, by design — see the netrepl queue-sizing discipline in
// DESIGN.md). Drivers that commit concurrently on several replicas of one
// net-backed cluster must keep their outstanding load below the transport
// queue capacity so backpressure cycles cannot form; every driver in this
// repository sizes QueueCap above the whole workload.
type Replica interface {
	// ID returns the replica identifier.
	ID() clock.ReplicaID
	// Begin starts a highly available transaction at this replica.
	Begin() *store.Txn
	// Object returns the CRDT stored at key, creating it with mk when
	// absent (seeding outside a transaction).
	Object(key string, mk func() crdt.CRDT) crdt.CRDT
	// Lookup returns the CRDT stored at key if it exists.
	Lookup(key string) (crdt.CRDT, bool)
	// Clock returns a copy of the replica's delivered causal cut.
	Clock() clock.Vector
}

// Cluster is a set of replicas of one logical database.
type Cluster interface {
	// Backend names the substrate: BackendSim or BackendNet.
	Backend() string
	// Replicas returns the replica ids in creation order.
	Replicas() []clock.ReplicaID
	// Replica returns the replica with the given id.
	Replica(id clock.ReplicaID) Replica
	// Stabilize computes the stability horizon (the causal cut every
	// replica has delivered) and lets every CRDT compact metadata below
	// it, exactly as store.Cluster.Stabilize does on the simulator.
	Stabilize() clock.Vector
	// Settle blocks until replication has quiesced: every commit issued so
	// far is delivered everywhere. The sim backend drains its event loop
	// (instantaneous, in virtual time); the net backend waits for the
	// causal clocks to converge, and errors on timeout. Settle assumes no
	// live faults — heal partitions and unpause replicas first.
	Settle() error
	// Close releases backend resources (listeners, sender goroutines).
	// The sim backend has none; Close is then a no-op.
	Close() error
}

// Faults is the optional fault-injection surface of a Cluster. Both
// built-in backends support it; callers must type-assert and degrade
// gracefully when a backend does not. (Latency scaling, the third sim
// fault, stays sim-specific: real sockets have no latency dial.)
type Faults interface {
	// SetPartitioned blocks (or unblocks) the link between two replicas in
	// both directions. No update is lost: the sim buffers messages and
	// flushes on heal; netrepl senders retry with backoff until the
	// receiver accepts their frames again.
	SetPartitioned(a, b clock.ReplicaID, partitioned bool)
	// SetPaused freezes (or thaws) a replica's delivery pipeline — remote
	// transactions buffer without applying; local commits are unaffected.
	// Unpausing drains the buffer in causal order.
	SetPaused(id clock.ReplicaID, paused bool)
}

// Lifecycle is the optional elastic-membership surface of a Cluster:
// whole-site failure and repair, beyond the link- and pipeline-level
// Faults. Callers type-assert, like Faults.
//
// The net backend implements all four operations against real state
// (per-node write-ahead logs and snapshots; see netrepl's durability
// contract). The sim backend models Crash/Recover as a delivery pause —
// its messages are buffered in the simulator and never lost, so a
// simulated site is durable by construction — and does not support
// Join/Decommission (fixed membership).
type Lifecycle interface {
	// Crash kills a site abruptly — no drain, no flush; kill -9
	// semantics. Sessions pinned to the dead replica instance fail with
	// store.ErrStale. The site's data directory survives for Recover.
	// Fails when the backend cannot recover the site afterwards (net
	// backend without a DataDir).
	Crash(id clock.ReplicaID) error
	// Recover restarts a crashed site from its durable state at the same
	// address: snapshot restore, write-ahead-log replay, then rejoining
	// live replication (peers' senders reconnect on their own; the
	// recovered node re-offers own-origin records its peers may have
	// missed). Active partitions and pauses involving the site are
	// reapplied to the new instance.
	Recover(id clock.ReplicaID) error
	// Join bootstraps a brand-new site from a donor's snapshot plus the
	// mesh's op tails and adds it to the replication and stability
	// membership.
	Join(id, donor clock.ReplicaID) error
	// Decommission drains a site's outbound work and removes it from the
	// mesh and the stability membership permanently; its replica is
	// invalidated. The remaining sites' horizon no longer waits on it.
	Decommission(id clock.ReplicaID) error
	// Durable reports whether crashed sites can actually recover their
	// state (the net backend: a configured DataDir).
	Durable() bool
}
