package runtime

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"ipa/internal/clock"
	"ipa/internal/netrepl"
	"ipa/internal/store"
)

// NetConfig tunes a NetCluster. The zero value selects the defaults noted
// on each field.
type NetConfig struct {
	// Transport configures every node's streaming transport. The zero
	// value takes netrepl's defaults; harness-style callers lower the
	// backoff ceiling so healed partitions resume quickly.
	Transport netrepl.Config
	// SettleTimeout bounds one Settle call. Default 30s.
	SettleTimeout time.Duration
	// SettlePoll is the convergence polling interval. Default 500µs.
	SettlePoll time.Duration
	// WireVersion, when nonzero, overrides Transport.WireVersion on every
	// node — the convenience knob for forcing the v1 gob frame encoding
	// (store.WireVersionGob) cluster-wide when a mesh still contains
	// pre-v2 receivers. Zero keeps Transport's setting (default: the
	// compact v2 binary codec).
	WireVersion int
	// DataDir, when non-empty, makes every node durable: node id gives
	// the per-site subdirectory (DataDir/<id>), each holding a
	// write-ahead log and snapshots. Durability is what makes the
	// Lifecycle surface real — Crash/Recover round-trips a site through
	// its on-disk state, and a NetCluster recreated over the same
	// directory recovers every site. Overrides Transport.DataDir.
	DataDir string
}

func (c NetConfig) withDefaults() NetConfig {
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 30 * time.Second
	}
	if c.SettlePoll <= 0 {
		c.SettlePoll = 500 * time.Microsecond
	}
	if c.WireVersion != 0 {
		c.Transport.WireVersion = c.WireVersion
	}
	return c
}

// transportFor returns the per-node transport configuration.
func (c *NetCluster) transportFor(id clock.ReplicaID) netrepl.Config {
	t := c.cfg.Transport
	if c.cfg.DataDir != "" {
		t.DataDir = filepath.Join(c.cfg.DataDir, string(id))
	}
	return t
}

// link is an unordered replica pair — partition bookkeeping.
type link [2]clock.ReplicaID

func mkLink(a, b clock.ReplicaID) link {
	if b < a {
		a, b = b, a
	}
	return link{a, b}
}

// NetCluster runs one netrepl.Node per replica on loopback TCP, fully
// meshed — the real-socket implementation of Cluster. Replication is
// asynchronous on real goroutines, so unlike the simulator there is no
// instantaneous "drain": Settle polls the nodes' causal clocks until they
// converge. Stabilize gathers a global view the way a stability service
// would and runs the same compaction as the simulator's.
//
// With NetConfig.DataDir set the cluster also implements Lifecycle
// against real state: Crash kills a node without flushing, Recover
// restarts it from its write-ahead log and snapshots at the same
// address, Join bootstraps a new site from a donor, Decommission retires
// one. Membership mutates under an internal lock; Stabilize serialises
// with Join so the stability horizon can never advance past a
// bootstrapping site's cut (which is what keeps peers from truncating
// log records the joiner still needs).
type NetCluster struct {
	cfg NetConfig

	mu    sync.RWMutex
	order []clock.ReplicaID
	nodes map[clock.ReplicaID]*netrepl.Node
	addrs map[clock.ReplicaID]string // listen address, stable across Recover
	down  map[clock.ReplicaID]bool   // crashed, awaiting Recover
	// Active fault state, so Recover can reapply it to the replacement
	// node instance: a partition or pause taken while a site is down
	// must survive the site's recovery (the fault heals when the fault
	// heals, not when the node restarts).
	parts  map[link]bool
	paused map[clock.ReplicaID]bool
}

// NewNetCluster creates one node per id on ephemeral loopback ports and
// meshes them. On error, nodes created so far are closed. With a DataDir
// configured, sites that already have state under it recover it (a
// cluster restarted over the same directory resumes where it crashed).
func NewNetCluster(ids []clock.ReplicaID, cfg NetConfig) (*NetCluster, error) {
	c := &NetCluster{
		cfg:    cfg.withDefaults(),
		order:  append([]clock.ReplicaID(nil), ids...),
		nodes:  make(map[clock.ReplicaID]*netrepl.Node, len(ids)),
		addrs:  make(map[clock.ReplicaID]string, len(ids)),
		down:   map[clock.ReplicaID]bool{},
		parts:  map[link]bool{},
		paused: map[clock.ReplicaID]bool{},
	}
	for _, id := range c.order {
		n, err := netrepl.NewNodeWithConfig(id, "127.0.0.1:0", c.transportFor(id))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: net cluster: %w", err)
		}
		c.nodes[id] = n
		c.addrs[id] = n.Addr()
	}
	for _, a := range c.order {
		for _, b := range c.order {
			if a != b {
				c.nodes[a].AddPeer(b, c.addrs[b])
			}
		}
	}
	return c, nil
}

// Node returns the underlying netrepl node of a replica (for transport
// metrics and chaos hooks like DropConnections), or nil for a site the
// cluster does not know.
func (c *NetCluster) Node(id clock.ReplicaID) *netrepl.Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[id]
}

// Backend implements Cluster.
func (c *NetCluster) Backend() string { return BackendNet }

// Replicas implements Cluster. Decommissioned sites are absent; crashed
// ones remain members (their data is recoverable, and the stability
// horizon must keep waiting on them).
func (c *NetCluster) Replicas() []clock.ReplicaID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]clock.ReplicaID(nil), c.order...)
}

// Replica implements Cluster. A crashed or decommissioned site still
// resolves — to its dead node, whose invalidated replica fails pinned
// sessions with store.ErrStale rather than serving frozen state — so
// callers racing a lifecycle event get an error, not a panic. Only a
// site the cluster never knew panics.
func (c *NetCluster) Replica(id clock.ReplicaID) Replica {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nodes[id]
	if !ok {
		panic(fmt.Sprintf("runtime: unknown replica %q", id))
	}
	return n
}

// Stabilize implements Cluster: it gathers every node's causal cut,
// computes the stability horizon
// and the commit frontier, and lets every node's CRDTs compact below it —
// the same pass store.Cluster.Stabilize runs inside the simulator.
//
// The non-atomic collection is safe: the horizon is the pointwise minimum
// of delivered cuts, so every event at or below it had been delivered at
// every node by that node's snapshot; any event created later causally
// follows the horizon, hence each node's frontier entry still upper-bounds
// everything concurrent with a newly stable event.
//
// A crashed site contributes its frozen cut — freezing the horizon at
// what the site had delivered, which is exactly right: nothing above its
// cut is stable (the site will recover and still need it), so nothing
// above it may compact or truncate away. A decommissioned site is out of
// the membership entirely and stops holding the horizon back.
func (c *NetCluster) Stabilize() clock.Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stabilizeLocked()
}

func (c *NetCluster) stabilizeLocked() clock.Vector {
	stab := clock.NewStability(c.order)
	frontier := clock.New()
	for _, id := range c.order {
		vc := c.nodes[id].Clock()
		stab.Ack(id, vc)
		frontier.Set(id, vc.Get(id))
	}
	h := stab.Horizon()
	for _, id := range c.order {
		if c.down[id] {
			// A dead node must not compact — and above all must not
			// snapshot: persisting its post-crash in-memory state would
			// quietly resurrect exactly the unsynced suffix the crash is
			// supposed to lose.
			continue
		}
		c.nodes[id].CompactAll(h, frontier)
	}
	return h
}

// Settle implements Cluster: it waits until every live member has
// delivered every commit issued so far — all causal clocks equal, no
// queued outbound transactions, no pending causal deliveries — and the
// picture holds for a few consecutive polls. It errors if the cluster
// does not converge within SettleTimeout (which usually means a
// partition is still injected, a replica is still paused, or a site is
// still crashed — senders hold queued transactions for a crashed site,
// so Recover it first).
func (c *NetCluster) Settle() error {
	deadline := time.Now().Add(c.cfg.SettleTimeout)
	stable := 0
	for {
		if c.quiet() {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runtime: net cluster did not settle within %v", c.cfg.SettleTimeout)
		}
		time.Sleep(c.cfg.SettlePoll)
	}
}

// quiet reports one converged snapshot: identical clocks, empty queues.
func (c *NetCluster) quiet() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var base clock.Vector
	for _, id := range c.order {
		n := c.nodes[id]
		if n.Stats().QueueDepth != 0 || n.Pending() != 0 {
			return false
		}
		vc := n.Clock()
		if base == nil {
			base = vc
		} else if !base.Equal(vc) {
			return false
		}
	}
	return true
}

// Close implements Cluster: it shuts every node down (including crashed
// and decommissioned tombstones — Close is idempotent per node).
func (c *NetCluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, n := range c.nodes {
		if n != nil {
			errs = append(errs, n.Close())
		}
	}
	return errors.Join(errs...)
}

// SetPartitioned implements Faults: each side refuses frames originating
// at the other until the partition heals; senders retry with backoff, so
// no transaction is lost. Unknown or retired sites no-op — a fault
// racing a decommission must not panic — and a partition touching a
// crashed site is recorded so Recover reapplies it to the replacement
// node.
func (c *NetCluster) SetPartitioned(a, b clock.ReplicaID, partitioned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if partitioned {
		c.parts[mkLink(a, b)] = true
	} else {
		delete(c.parts, mkLink(a, b))
	}
	if na := c.nodes[a]; na != nil {
		na.BlockOrigin(b, partitioned)
	}
	if nb := c.nodes[b]; nb != nil {
		nb.BlockOrigin(a, partitioned)
	}
}

// SetPaused implements Faults. Unknown or retired sites no-op; a pause
// taken while the site is crashed is recorded and reapplied on Recover.
func (c *NetCluster) SetPaused(id clock.ReplicaID, paused bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if paused {
		c.paused[id] = true
	} else {
		delete(c.paused, id)
	}
	if n := c.nodes[id]; n != nil {
		n.SetPaused(paused)
	}
}

// Durable implements Lifecycle.
func (c *NetCluster) Durable() bool { return c.cfg.DataDir != "" }

// SnapshotAll forces an immediate snapshot at every live site. Callers
// that seed state out-of-band (Replica.Object constructors like the
// comp-set's bound, which no replicated operation re-creates) run it
// after seeding: until a snapshot lands on disk, a crash would recover
// the site without the seeded objects. No-op per site on a non-durable
// cluster.
func (c *NetCluster) SnapshotAll() error {
	if !c.Durable() {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var firstErr error
	for _, id := range c.order {
		if c.down[id] {
			continue
		}
		if err := c.nodes[id].ForceSnapshot(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Crash implements Lifecycle: kill -9 for one site. The node's
// write-ahead log keeps everything that was ever acknowledged; its
// unsynced tail — operations no client and no peer was told about — dies
// with the process, which is the loss model Recover is tested against.
func (c *NetCluster) Crash(id clock.ReplicaID) error {
	if !c.Durable() {
		return fmt.Errorf("runtime: crash %q: cluster has no DataDir, the site could never recover", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("runtime: crash: unknown replica %q", id)
	}
	if c.down[id] {
		return nil // already dead
	}
	if err := n.Kill(); err != nil {
		return err
	}
	c.down[id] = true
	return nil
}

// Recover implements Lifecycle: restart a crashed site from its data
// directory at its original address. The replacement node replays
// snapshot + log before serving, re-offers own-origin records to every
// peer (peers that never received them converge; peers that did
// deduplicate), and peer senders that kept retrying the dead address
// reconnect on their own. Fault state taken while the site was down —
// partitions, pauses — transfers to the new instance.
func (c *NetCluster) Recover(id clock.ReplicaID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[id] {
		return fmt.Errorf("runtime: recover %q: site is not crashed", id)
	}
	var n *netrepl.Node
	var err error
	// The killed node's listener is closed, but give the OS a moment to
	// release the port on slow days — the address must be stable so
	// peers' retry loops find the recovered site without re-meshing.
	for attempt := 0; attempt < 20; attempt++ {
		n, err = netrepl.NewNodeWithConfig(id, c.addrs[id], c.transportFor(id))
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("runtime: recover %q: %w", id, err)
	}
	c.nodes[id] = n
	delete(c.down, id)
	// Peer with every member, including ones currently crashed: a down
	// member's address is stable (Recover reuses it), so the sender just
	// retry-dials until that site comes back. Skipping down peers here
	// loses this node's re-offers and live commits to any site that was
	// down at the moment we recovered — if it recovers after us, nobody
	// ever re-establishes our side of the link and the mesh wedges on a
	// permanent causal gap. (Decommissioned sites leave c.order, so this
	// never queues for a peer that is gone for good.)
	for _, other := range c.order {
		if other == id {
			continue
		}
		n.AddPeer(other, c.addrs[other])
	}
	for l := range c.parts {
		switch id {
		case l[0]:
			n.BlockOrigin(l[1], true)
		case l[1]:
			n.BlockOrigin(l[0], true)
		}
	}
	if c.paused[id] {
		n.SetPaused(true)
	}
	return nil
}

// Join implements Lifecycle: bootstrap a brand-new site from donor and
// add it to the mesh and the stability membership. The membership is
// extended before any state moves, and Join holds the same lock as
// Stabilize, so from the first horizon computed after this the mesh
// cannot truncate records the joiner has yet to fetch (see
// netrepl.Node.Bootstrap for the full soundness argument).
func (c *NetCluster) Join(id, donor clock.ReplicaID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[id]; ok {
		for _, live := range c.order {
			if live == id {
				return fmt.Errorf("runtime: join: replica %q already exists", id)
			}
		}
		// A tombstone (earlier crash-without-recover or decommission)
		// may be re-joined as a fresh site below.
	}
	dn := c.nodes[donor]
	if dn == nil || c.down[donor] {
		return fmt.Errorf("runtime: join %q: donor %q unavailable", id, donor)
	}
	n, err := netrepl.NewNodeWithConfig(id, "127.0.0.1:0", c.transportFor(id))
	if err != nil {
		return fmt.Errorf("runtime: join %q: %w", id, err)
	}
	c.nodes[id] = n
	c.addrs[id] = n.Addr()
	c.order = append(c.order, id)
	delete(c.down, id)
	// AddPeer to every member — even currently-crashed ones, whose stable
	// addresses the sender retry-dials until they recover (see Recover for
	// why skipping them wedges the mesh). Only live members double as
	// tail-fetch donors for Bootstrap, though: a dead socket can't serve
	// the joiner's catch-up reads.
	var peers []string
	for _, other := range c.order {
		if other == id {
			continue
		}
		n.AddPeer(other, c.addrs[other])
		if !c.down[other] {
			peers = append(peers, c.addrs[other])
		}
	}
	mesh := func() {
		for _, other := range c.order {
			if other == id || c.down[other] {
				continue
			}
			c.nodes[other].AddPeer(id, c.addrs[id])
		}
	}
	if err := n.Bootstrap(c.addrs[donor], peers, mesh); err != nil {
		return err
	}
	return nil
}

// Decommission implements Lifecycle: retire a site permanently. Every
// remaining node stops replicating to it, it drains and closes, and the
// stability membership shrinks — the horizon no longer waits on the
// retired site, so what only it had NOT delivered can now stabilise.
// The node stays resolvable as a tombstone whose invalidated replica
// fails sessions with store.ErrStale.
func (c *NetCluster) Decommission(id clock.ReplicaID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("runtime: decommission: unknown replica %q", id)
	}
	keep := c.order[:0]
	for _, other := range c.order {
		if other != id {
			keep = append(keep, other)
		}
	}
	c.order = keep
	for _, other := range c.order {
		if nd := c.nodes[other]; nd != nil {
			nd.RemovePeer(id)
		}
	}
	for l := range c.parts {
		if l[0] == id || l[1] == id {
			delete(c.parts, l)
		}
	}
	delete(c.paused, id)
	delete(c.down, id)
	err := n.Close()
	n.Replica().Invalidate()
	return err
}

// Compile-time checks: both backends implement the full surface, and both
// replica types satisfy Replica.
var (
	_ Cluster   = (*SimCluster)(nil)
	_ Faults    = (*SimCluster)(nil)
	_ Lifecycle = (*SimCluster)(nil)
	_ Cluster   = (*NetCluster)(nil)
	_ Faults    = (*NetCluster)(nil)
	_ Lifecycle = (*NetCluster)(nil)
	_ Replica   = (*store.Replica)(nil)
	_ Replica   = (*netrepl.Node)(nil)
)
