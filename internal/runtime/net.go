package runtime

import (
	"errors"
	"fmt"
	"time"

	"ipa/internal/clock"
	"ipa/internal/netrepl"
	"ipa/internal/store"
)

// NetConfig tunes a NetCluster. The zero value selects the defaults noted
// on each field.
type NetConfig struct {
	// Transport configures every node's streaming transport. The zero
	// value takes netrepl's defaults; harness-style callers lower the
	// backoff ceiling so healed partitions resume quickly.
	Transport netrepl.Config
	// SettleTimeout bounds one Settle call. Default 30s.
	SettleTimeout time.Duration
	// SettlePoll is the convergence polling interval. Default 500µs.
	SettlePoll time.Duration
	// WireVersion, when nonzero, overrides Transport.WireVersion on every
	// node — the convenience knob for forcing the v1 gob frame encoding
	// (store.WireVersionGob) cluster-wide when a mesh still contains
	// pre-v2 receivers. Zero keeps Transport's setting (default: the
	// compact v2 binary codec).
	WireVersion int
}

func (c NetConfig) withDefaults() NetConfig {
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 30 * time.Second
	}
	if c.SettlePoll <= 0 {
		c.SettlePoll = 500 * time.Microsecond
	}
	if c.WireVersion != 0 {
		c.Transport.WireVersion = c.WireVersion
	}
	return c
}

// NetCluster runs one netrepl.Node per replica on loopback TCP, fully
// meshed — the real-socket implementation of Cluster. Replication is
// asynchronous on real goroutines, so unlike the simulator there is no
// instantaneous "drain": Settle polls the nodes' causal clocks until they
// converge. Stabilize gathers a global view the way a stability service
// would and runs the same compaction as the simulator's.
type NetCluster struct {
	cfg   NetConfig
	order []clock.ReplicaID
	nodes map[clock.ReplicaID]*netrepl.Node
}

// NewNetCluster creates one node per id on ephemeral loopback ports and
// meshes them. On error, nodes created so far are closed.
func NewNetCluster(ids []clock.ReplicaID, cfg NetConfig) (*NetCluster, error) {
	c := &NetCluster{
		cfg:   cfg.withDefaults(),
		order: append([]clock.ReplicaID(nil), ids...),
		nodes: make(map[clock.ReplicaID]*netrepl.Node, len(ids)),
	}
	for _, id := range c.order {
		n, err := netrepl.NewNodeWithConfig(id, "127.0.0.1:0", c.cfg.Transport)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: net cluster: %w", err)
		}
		c.nodes[id] = n
	}
	for _, a := range c.order {
		for _, b := range c.order {
			if a != b {
				c.nodes[a].AddPeer(b, c.nodes[b].Addr())
			}
		}
	}
	return c, nil
}

// Node returns the underlying netrepl node of a replica (for transport
// metrics and chaos hooks like DropConnections).
func (c *NetCluster) Node(id clock.ReplicaID) *netrepl.Node { return c.nodes[id] }

// Backend implements Cluster.
func (c *NetCluster) Backend() string { return BackendNet }

// Replicas implements Cluster.
func (c *NetCluster) Replicas() []clock.ReplicaID { return c.order }

// Replica implements Cluster.
func (c *NetCluster) Replica(id clock.ReplicaID) Replica {
	n, ok := c.nodes[id]
	if !ok {
		panic(fmt.Sprintf("runtime: unknown replica %q", id))
	}
	return n
}

// Stabilize implements Cluster: it gathers every node's causal cut,
// computes the stability horizon
// and the commit frontier, and lets every node's CRDTs compact below it —
// the same pass store.Cluster.Stabilize runs inside the simulator.
//
// The non-atomic collection is safe: the horizon is the pointwise minimum
// of delivered cuts, so every event at or below it had been delivered at
// every node by that node's snapshot; any event created later causally
// follows the horizon, hence each node's frontier entry still upper-bounds
// everything concurrent with a newly stable event.
func (c *NetCluster) Stabilize() clock.Vector {
	stab := clock.NewStability(c.order)
	frontier := clock.New()
	for _, id := range c.order {
		vc := c.nodes[id].Clock()
		stab.Ack(id, vc)
		frontier.Set(id, vc.Get(id))
	}
	h := stab.Horizon()
	for _, id := range c.order {
		c.nodes[id].CompactAll(h, frontier)
	}
	return h
}

// Settle implements Cluster: it waits until every node has delivered every
// commit issued so far — all causal clocks equal, no queued outbound
// transactions, no pending causal deliveries — and the picture holds for a
// few consecutive polls. It errors if the cluster does not converge within
// SettleTimeout (which usually means a partition is still injected or a
// replica is still paused).
func (c *NetCluster) Settle() error {
	deadline := time.Now().Add(c.cfg.SettleTimeout)
	stable := 0
	for {
		if c.quiet() {
			stable++
			if stable >= 3 {
				return nil
			}
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runtime: net cluster did not settle within %v", c.cfg.SettleTimeout)
		}
		time.Sleep(c.cfg.SettlePoll)
	}
}

// quiet reports one converged snapshot: identical clocks, empty queues.
func (c *NetCluster) quiet() bool {
	var base clock.Vector
	for _, id := range c.order {
		n := c.nodes[id]
		if n.Stats().QueueDepth != 0 || n.Pending() != 0 {
			return false
		}
		vc := n.Clock()
		if base == nil {
			base = vc
		} else if !base.Equal(vc) {
			return false
		}
	}
	return true
}

// Close implements Cluster: it shuts every node down.
func (c *NetCluster) Close() error {
	var errs []error
	for _, id := range c.order {
		if n := c.nodes[id]; n != nil {
			errs = append(errs, n.Close())
		}
	}
	return errors.Join(errs...)
}

// SetPartitioned implements Faults: each side refuses frames originating
// at the other until the partition heals; senders retry with backoff, so
// no transaction is lost.
func (c *NetCluster) SetPartitioned(a, b clock.ReplicaID, partitioned bool) {
	c.nodes[a].BlockOrigin(b, partitioned)
	c.nodes[b].BlockOrigin(a, partitioned)
}

// SetPaused implements Faults.
func (c *NetCluster) SetPaused(id clock.ReplicaID, paused bool) {
	c.nodes[id].SetPaused(paused)
}

// Compile-time checks: both backends implement the full surface, and both
// replica types satisfy Replica.
var (
	_ Cluster = (*SimCluster)(nil)
	_ Faults  = (*SimCluster)(nil)
	_ Cluster = (*NetCluster)(nil)
	_ Faults  = (*NetCluster)(nil)
	_ Replica = (*store.Replica)(nil)
	_ Replica = (*netrepl.Node)(nil)
)
