package runtime

import (
	"fmt"
	"sync"

	"ipa/internal/clock"
	"ipa/internal/store"
)

// SimCluster adapts the deterministic simulator-backed store.Cluster to
// the backend-agnostic Cluster interface. It adds almost no behaviour —
// replicas are the store's own, faults delegate to the store's hooks — so
// code that still needs the concrete cluster (the chaos engine's event
// scheduling, the latency model) can reach it through Store. The one
// piece of state it does keep is the crash/pause overlay: the store has a
// single boolean pause per site, while the Lifecycle surface models
// Crash as a pause-shaped fault that can overlap an ordinary SetPaused
// window — Recover during a live pause must leave the site paused.
type SimCluster struct {
	c *store.Cluster

	mu      sync.Mutex
	crashed map[clock.ReplicaID]bool
	paused  map[clock.ReplicaID]bool
}

// NewSimCluster wraps an existing simulator-backed cluster.
func NewSimCluster(c *store.Cluster) *SimCluster {
	return &SimCluster{
		c:       c,
		crashed: map[clock.ReplicaID]bool{},
		paused:  map[clock.ReplicaID]bool{},
	}
}

// applyPause pushes the combined crash|pause state for one site down to
// the store's single pause bit; mu held.
func (s *SimCluster) applyPause(id clock.ReplicaID) {
	s.c.SetPaused(id, s.crashed[id] || s.paused[id])
}

// Store returns the underlying store cluster.
func (s *SimCluster) Store() *store.Cluster { return s.c }

// Backend implements Cluster.
func (s *SimCluster) Backend() string { return BackendSim }

// Replicas implements Cluster.
func (s *SimCluster) Replicas() []clock.ReplicaID { return s.c.Replicas() }

// Replica implements Cluster.
func (s *SimCluster) Replica(id clock.ReplicaID) Replica { return s.c.Replica(id) }

// Stabilize implements Cluster.
func (s *SimCluster) Stabilize() clock.Vector { return s.c.Stabilize() }

// Settle implements Cluster: it runs the simulation's event loop dry,
// which delivers everything in flight (in virtual time).
func (s *SimCluster) Settle() error {
	s.c.Sim().Run()
	return nil
}

// Close implements Cluster. The simulator holds no external resources.
func (s *SimCluster) Close() error { return nil }

// SetPartitioned implements Faults.
func (s *SimCluster) SetPartitioned(a, b clock.ReplicaID, partitioned bool) {
	s.c.SetPartitioned(a, b, partitioned)
}

// SetPaused implements Faults. The pause composes with a concurrent
// crash window: the site resumes delivery only when both have lifted.
func (s *SimCluster) SetPaused(id clock.ReplicaID, paused bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if paused {
		s.paused[id] = true
	} else {
		delete(s.paused, id)
	}
	s.applyPause(id)
}

// Crash implements Lifecycle. The simulator's sites cannot lose state —
// messages buffer in virtual time and the store lives in one process —
// so a crash is modelled as the delivery pause it would look like from
// the outside: commits elsewhere buffer for the site until Recover.
func (s *SimCluster) Crash(id clock.ReplicaID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed[id] = true
	s.applyPause(id)
	return nil
}

// Recover implements Lifecycle: the buffered backlog drains in causal
// order, exactly like a net-backend node replaying its log and catching
// up from its peers. A SetPaused window still open keeps the site
// paused — the crash and the pause are independent faults.
func (s *SimCluster) Recover(id clock.ReplicaID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.crashed, id)
	s.applyPause(id)
	return nil
}

// Join implements Lifecycle. The simulator's membership is fixed at
// construction (the wan topology and stability membership are wired
// in), so elastic joins are a net-backend capability.
func (s *SimCluster) Join(id, donor clock.ReplicaID) error {
	return fmt.Errorf("runtime: sim backend has fixed membership, cannot join %q", id)
}

// Decommission implements Lifecycle; fixed membership, like Join.
func (s *SimCluster) Decommission(id clock.ReplicaID) error {
	return fmt.Errorf("runtime: sim backend has fixed membership, cannot decommission %q", id)
}

// Durable implements Lifecycle: a simulated crash loses nothing by
// construction.
func (s *SimCluster) Durable() bool { return true }
