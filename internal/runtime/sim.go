package runtime

import (
	"ipa/internal/clock"
	"ipa/internal/store"
)

// SimCluster adapts the deterministic simulator-backed store.Cluster to
// the backend-agnostic Cluster interface. It adds no behaviour — replicas
// are the store's own, faults delegate to the store's hooks — so code that
// still needs the concrete cluster (the chaos engine's event scheduling,
// the latency model) can reach it through Store.
type SimCluster struct {
	c *store.Cluster
}

// NewSimCluster wraps an existing simulator-backed cluster.
func NewSimCluster(c *store.Cluster) *SimCluster { return &SimCluster{c: c} }

// Store returns the underlying store cluster.
func (s *SimCluster) Store() *store.Cluster { return s.c }

// Backend implements Cluster.
func (s *SimCluster) Backend() string { return BackendSim }

// Replicas implements Cluster.
func (s *SimCluster) Replicas() []clock.ReplicaID { return s.c.Replicas() }

// Replica implements Cluster.
func (s *SimCluster) Replica(id clock.ReplicaID) Replica { return s.c.Replica(id) }

// Stabilize implements Cluster.
func (s *SimCluster) Stabilize() clock.Vector { return s.c.Stabilize() }

// Settle implements Cluster: it runs the simulation's event loop dry,
// which delivers everything in flight (in virtual time).
func (s *SimCluster) Settle() error {
	s.c.Sim().Run()
	return nil
}

// Close implements Cluster. The simulator holds no external resources.
func (s *SimCluster) Close() error { return nil }

// SetPartitioned implements Faults.
func (s *SimCluster) SetPartitioned(a, b clock.ReplicaID, partitioned bool) {
	s.c.SetPartitioned(a, b, partitioned)
}

// SetPaused implements Faults.
func (s *SimCluster) SetPaused(id clock.ReplicaID, paused bool) {
	s.c.SetPaused(id, paused)
}
