package runtime

import (
	"fmt"
	"testing"
	"time"

	"ipa/internal/clock"
	"ipa/internal/netrepl"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func testIDs(n int) []clock.ReplicaID {
	ids := make([]clock.ReplicaID, n)
	for i := range ids {
		ids[i] = clock.ReplicaID(fmt.Sprintf("rt-%d", i))
	}
	return ids
}

func newTestNetCluster(t *testing.T, n int) *NetCluster {
	t.Helper()
	c, err := NewNetCluster(testIDs(n), NetConfig{
		Transport: netrepl.Config{
			FlushInterval: 100 * time.Microsecond,
			BackoffMin:    time.Millisecond,
			BackoffMax:    10 * time.Millisecond,
		},
		SettleTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// runOn is the backend-agnostic workload used by the parity tests: the
// same transactions through the same interface on either cluster.
func runOn(c Cluster, perReplica int) error {
	for _, id := range c.Replicas() {
		rep := c.Replica(id)
		for k := 0; k < perReplica; k++ {
			tx := rep.Begin()
			store.CounterAt(tx, "ops").Add(1)
			store.AWSetAt(tx, "live").Add(fmt.Sprintf("%s-%d", id, k), "")
			tx.Commit()
		}
	}
	return c.Settle()
}

// checkConverged asserts every replica sees all commits.
func checkConverged(t *testing.T, c Cluster, perReplica int) {
	t.Helper()
	total := int64(len(c.Replicas()) * perReplica)
	for _, id := range c.Replicas() {
		rep := c.Replica(id)
		tx := rep.Begin()
		if v := store.CounterAt(tx, "ops").Value(); v != total {
			t.Errorf("%s [%s]: counter = %d, want %d", id, c.Backend(), v, total)
		}
		if sz := store.AWSetAt(tx, "live").Size(); int64(sz) != total {
			t.Errorf("%s [%s]: live set = %d, want %d", id, c.Backend(), sz, total)
		}
		tx.Commit()
	}
}

// TestBackendParity runs the identical workload through the Cluster
// interface on both backends and requires identical convergence.
func TestBackendParity(t *testing.T) {
	const perReplica = 50
	ids := testIDs(3)

	sim := NewSimCluster(store.NewCluster(wan.NewSim(1), wan.NewLatency(wan.Ms(20)), ids))
	if err := runOn(sim, perReplica); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, sim, perReplica)
	if sim.Backend() != BackendSim {
		t.Fatalf("sim backend name = %q", sim.Backend())
	}

	net := newTestNetCluster(t, 3)
	if err := runOn(net, perReplica); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, net, perReplica)
	if net.Backend() != BackendNet {
		t.Fatalf("net backend name = %q", net.Backend())
	}
}

// TestNetClusterPartitionFault checks the partition hook: while the link
// is down, commits do not cross it (but other links still replicate);
// after heal, everything converges — no update lost.
func TestNetClusterPartitionFault(t *testing.T) {
	c := newTestNetCluster(t, 3)
	ids := c.Replicas()
	var f Faults = c
	f.SetPartitioned(ids[0], ids[1], true)

	tx := c.Replica(ids[0]).Begin()
	store.AWSetAt(tx, "p").Add("x", "")
	tx.Commit()

	// ids[2] receives the commit, ids[1] must not.
	deadline := time.Now().Add(10 * time.Second)
	for c.Node(ids[2]).Clock().Get(ids[0]) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unpartitioned link did not deliver")
		}
		time.Sleep(time.Millisecond)
	}
	// Give the blocked link ample opportunity to (wrongly) deliver.
	time.Sleep(20 * time.Millisecond)
	if got := c.Node(ids[1]).Clock().Get(ids[0]); got != 0 {
		t.Fatalf("partitioned link delivered %d updates", got)
	}

	f.SetPartitioned(ids[0], ids[1], false)
	if err := c.Settle(); err != nil {
		t.Fatalf("no convergence after heal: %v", err)
	}
	if got := c.Node(ids[1]).Clock().Get(ids[0]); got == 0 {
		t.Fatal("healed link lost the update")
	}
}

// TestNetClusterPauseFault checks the pause hook: a paused replica
// buffers deliveries without applying and drains on unpause.
func TestNetClusterPauseFault(t *testing.T) {
	c := newTestNetCluster(t, 2)
	ids := c.Replicas()
	var f Faults = c
	f.SetPaused(ids[1], true)

	tx := c.Replica(ids[0]).Begin()
	store.AWSetAt(tx, "q").Add("y", "")
	tx.Commit()

	// The frame arrives (and is acked) but must not apply while paused.
	deadline := time.Now().Add(10 * time.Second)
	for c.Node(ids[1]).Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("paused replica never buffered the delivery")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.Node(ids[1]).Clock().Get(ids[0]); got != 0 {
		t.Fatalf("paused replica applied %d updates", got)
	}

	f.SetPaused(ids[1], false)
	if err := c.Settle(); err != nil {
		t.Fatalf("no convergence after unpause: %v", err)
	}
}

// TestNetClusterStabilize checks that the gathered-clock stability pass
// reaches the same horizon the nodes' clocks define.
func TestNetClusterStabilize(t *testing.T) {
	c := newTestNetCluster(t, 3)
	if err := runOn(c, 10); err != nil {
		t.Fatal(err)
	}
	h := c.Stabilize()
	for _, id := range c.Replicas() {
		if got := h.Get(id); got != 20 { // 10 txns x 2 updates
			t.Fatalf("horizon[%s] = %d, want 20", id, got)
		}
	}
}
