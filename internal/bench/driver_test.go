package bench

import (
	"math/rand"
	"testing"

	"ipa/internal/apps/twitter"
	"ipa/internal/clock"
	"ipa/internal/indigo"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// constWorkload issues the same local write op forever.
func constWorkload(label string) Workload {
	return func(rng *rand.Rand, site clock.ReplicaID) OpSpec {
		return OpSpec{Label: label, IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn {
				tx := r.Begin()
				store.AWSetAt(tx, "k").Add("x", "")
				tx.Commit()
				return tx
			}}
	}
}

func TestDriverQueueing(t *testing.T) {
	// With zero think time, a single site saturates: mean latency grows
	// well above the bare service time because ops queue.
	sim, cluster, lat := NewPaperCluster(3)
	d := NewDriver(sim, cluster, lat, Causal)
	d.ThinkTime = 0
	d.Run(constWorkload("w"), 20, 2*wan.Second)
	service := d.Cost.Service(1, 1).Millis()
	if d.Rec.Mean("w") < 3*service {
		t.Fatalf("saturated latency %.2fms should exceed 3x service %.2fms", d.Rec.Mean("w"), service)
	}
	// Throughput is bounded by the service rate per replica.
	maxTP := 3.0 / (service / 1000.0) // 3 replicas
	if tp := d.Throughput(2 * wan.Second); tp > maxTP*1.05 {
		t.Fatalf("throughput %.0f exceeds server capacity %.0f", tp, maxTP)
	}
}

func TestDriverExtraDelayCharged(t *testing.T) {
	sim, cluster, lat := NewPaperCluster(4)
	d := NewDriver(sim, cluster, lat, Causal)
	base := constWorkload("w")
	delayed := func(rng *rand.Rand, site clock.ReplicaID) OpSpec {
		op := base(rng, site)
		op.ExtraDelay = wan.Ms(25)
		return op
	}
	d.Run(delayed, 1, 2*wan.Second)
	if m := d.Rec.Mean("w"); m < 25 {
		t.Fatalf("mean %.2fms should include the 25ms extra delay", m)
	}
}

func TestDriverIndigoPartitionFails(t *testing.T) {
	sim, cluster, lat := NewPaperCluster(5)
	d := NewDriver(sim, cluster, lat, Indigo)
	// Reservation held exclusively by eu-west; everyone else partitioned
	// from it: their acquisitions must fail.
	d.Res.Acquire("r", wan.EUWest, indigo.Exclusive)
	d.Res.Partitioned = func(a, b clock.ReplicaID) bool {
		return a == wan.EUWest || b == wan.EUWest
	}
	w := func(rng *rand.Rand, site clock.ReplicaID) OpSpec {
		if site == wan.EUWest {
			return OpSpec{Label: "noop"} // keep the holder idle
		}
		op := constWorkload("w")(rng, site)
		op.Reservation, op.ResMode, op.NeedsRes = "r", indigo.Exclusive, true
		return op
	}
	d.Run(w, 2, 2*wan.Second)
	if d.Failed == 0 {
		t.Fatal("partitioned reservation should fail operations")
	}
	if d.Rec.Count("w") != 0 {
		t.Fatal("no coordinated op should have completed")
	}
}

func TestDriverStrongReadStaysLocal(t *testing.T) {
	sim, cluster, lat := NewPaperCluster(6)
	d := NewDriver(sim, cluster, lat, Strong)
	read := func(rng *rand.Rand, site clock.ReplicaID) OpSpec {
		return OpSpec{Label: "r", Reads: 1,
			Exec: func(r runtime.Replica) *store.Txn {
				tx := r.Begin()
				tx.Commit()
				return tx
			}}
	}
	d.Run(read, 1, 2*wan.Second)
	// A pure read never pays a WAN trip: mean well under one RTT.
	if m := d.Rec.Mean("r"); m > 20 {
		t.Fatalf("read latency %.2fms suggests forwarding", m)
	}
}

func TestThroughputAccounting(t *testing.T) {
	sim, cluster, lat := NewPaperCluster(7)
	d := NewDriver(sim, cluster, lat, Causal)
	d.Run(constWorkload("w"), 1, wan.Second)
	if d.Completed == 0 {
		t.Fatal("no ops completed")
	}
	if tp := d.Throughput(wan.Second); tp != float64(d.Completed) {
		t.Fatalf("throughput %.1f != completed %d over 1s", tp, d.Completed)
	}
	if d.Throughput(0) != 0 {
		t.Fatal("zero duration must yield zero throughput")
	}
}

// The twitter rem-wins strategy must preserve referential integrity in
// its visible state under the bench workload itself (not just in the
// targeted unit tests).
func TestFig6WorkloadPreservesInvariants(t *testing.T) {
	sim, cluster, lat := NewPaperCluster(QuickExpOptions().Seed + 77)
	appRW := twitter.New(twitter.RemWins)
	w := NewTwitterWorkload(appRW)
	w.Seed(runtime.NewSimCluster(cluster), rand.New(rand.NewSource(1)))
	sim.Run()
	d := NewDriver(sim, cluster, lat, Causal)
	d.Run(w.Next, 4, 3*wan.Second)
	sim.Run()
	for _, id := range cluster.Replicas() {
		if v := appRW.Violations(cluster.Replica(id), false); len(v) != 0 {
			t.Fatalf("rem-wins visible state violated at %s: %v", id, v[0])
		}
	}
}
