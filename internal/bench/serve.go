package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ipa/internal/clock"
	"ipa/internal/harness"
	"ipa/internal/runtime"
	"ipa/internal/wan"
)

// ServeOptions shapes the cross-backend serving benchmark: a closed-loop
// workload over the chaos harness's application adapters, runnable
// unchanged on the simulator or on real netrepl sockets, with invariant
// checks at the end — the wall-clock counterpart of the paper's simulated
// throughput figures.
type ServeOptions struct {
	// Backend selects the substrate: runtime.BackendSim or BackendNet.
	Backend string
	// Apps lists the applications to serve. Default: every portable app.
	Apps []string
	// Ops is the number of operations per application. Default 2000
	// (sim), 8000 (netrepl — long enough that the loop reaches steady
	// state against the concurrent replication pipeline; a short burst
	// only measures how fast local commits enqueue into empty transport
	// queues, which flatters whichever app issues fastest).
	Ops int
	// Seed drives the workload generators.
	Seed int64
	// Workers, when non-empty, switches the benchmark into a closed-loop
	// concurrency sweep: for each entry the workload runs with that many
	// parallel client workers sharing the cluster, and the experiment
	// reports ops/sec per worker count instead of per app. Requires the
	// netrepl backend — the simulator is single-threaded.
	Workers []int
	// WireVersion, when nonzero, forces the replication frame encoding
	// on the netrepl backend (store.WireVersionGob for the v1 gob
	// frames) — the knob behind the gob-vs-v2 serving comparison in
	// EXPERIMENTS.md. Zero takes the transport default (v2).
	WireVersion int
	// DataDir, when non-empty, makes every netrepl node durable (per-site
	// WAL + snapshots under DataDir/<site>), so the measured loop pays the
	// fsync-before-ack cost on every commit — the knob behind the
	// durable-vs-memory serving comparison in the recovery experiment.
	DataDir string
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Backend == "" {
		o.Backend = runtime.BackendSim
	}
	if len(o.Apps) == 0 {
		o.Apps = harness.PortableApps()
	}
	if o.Ops == 0 {
		o.Ops = 2000
		if o.Backend == runtime.BackendNet {
			o.Ops = 8000
		}
		if len(o.Workers) > 0 {
			// The sweep measures scaling, not startup: local commits are
			// microseconds, so it needs enough ops per run for the
			// steady state to dominate connection dials and goroutine
			// spin-up.
			o.Ops = 4000
		}
	}
	return o
}

// serveNetConfig is the transport tuning for serving runs: default
// streaming parameters (this measures the transport as shipped), with
// only the settle timeout raised for the larger op counts.
func serveNetConfig() runtime.NetConfig {
	return runtime.NetConfig{SettleTimeout: 60 * time.Second}
}

// stabilizeEvery is the serving loop's stability cadence, in operations:
// like a deployed stability service, the benchmark runs the stability
// protocol periodically so remove-wins tombstones and dead add records
// are compacted while traffic flows. Without it metadata grows with run
// length and every membership check slows down — the measured loop would
// time metadata accumulation, not serving.
const stabilizeEvery = 64

// Serve runs the serving benchmark on the chosen backend and reports
// wall-clock throughput and latency percentiles per application. After
// the measured loop it settles replication, runs the applications' repair
// reads, and asserts the IPA invariants plus cross-replica digest
// convergence — a benchmark run that corrupts state fails instead of
// reporting numbers.
func Serve(opts ServeOptions) (*Experiment, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) > 0 {
		return serveWorkersSweep(opts)
	}
	e := &Experiment{
		ID:     "serve",
		Title:  fmt.Sprintf("Serving throughput on the %s backend (all apps, invariants checked)", opts.Backend),
		XLabel: "app",
		YLabel: "ops/sec",
		XTicks: append([]string(nil), opts.Apps...),
		Perf:   map[string]Perf{},
	}
	s := Series{Name: opts.Backend}
	for i, app := range opts.Apps {
		rec, opsPerSec, err := serveApp(app, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: serve %s on %s: %w", app, opts.Backend, err)
		}
		p := Perf{
			OpsPerSec: opsPerSec,
			P50Ms:     rec.Percentile("", 50),
			P95Ms:     rec.Percentile("", 95),
			P99Ms:     rec.Percentile("", 99),
		}
		e.Perf[app] = p
		s.Points = append(s.Points, Point{X: float64(i), Y: p.OpsPerSec,
			Aux: map[string]float64{"p50 ms": p.P50Ms, "p99 ms": p.P99Ms}})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"one closed loop over the runtime.Cluster interface, same code path on sim and netrepl",
		"(netrepl replication/ack/retry goroutines run concurrently underneath);",
		"quiescence ran repair reads, invariant checks, and digest convergence on every replica.")
	return e, nil
}

// serveWorkersSweep runs the closed-loop concurrency sweep: for each
// worker count, every app serves its workload from that many parallel
// client goroutines round-robining the sites of one shared 3-node
// cluster, with the usual quiescence verification afterwards. This is the
// benchmark of the sharded replica core: local transactions two-phase-
// lock their key shards, remote transactions apply through the per-origin
// pipeline, and nothing serialises on a per-node lock — so ops/sec must
// scale with workers.
func serveWorkersSweep(opts ServeOptions) (*Experiment, error) {
	if opts.Backend != runtime.BackendNet {
		return nil, fmt.Errorf("bench: the -workers sweep needs the netrepl backend (the simulator is single-threaded)")
	}
	e := &Experiment{
		ID:     "serve",
		Title:  "Serving throughput vs client workers on the netrepl backend (3 nodes, invariants checked)",
		XLabel: "workers",
		YLabel: "ops/sec",
		Perf:   map[string]Perf{},
	}
	for _, w := range opts.Workers {
		e.XTicks = append(e.XTicks, fmt.Sprintf("%d", w))
	}
	for _, app := range opts.Apps {
		s := Series{Name: app}
		for i, w := range opts.Workers {
			rec, opsPerSec, err := serveAppWorkers(app, opts, w)
			if err != nil {
				return nil, fmt.Errorf("bench: serve %s with %d workers: %w", app, w, err)
			}
			p := Perf{
				OpsPerSec: opsPerSec,
				P50Ms:     rec.Percentile("", 50),
				P95Ms:     rec.Percentile("", 95),
				P99Ms:     rec.Percentile("", 99),
			}
			e.Perf[fmt.Sprintf("%s/w%d", app, w)] = p
			s.Points = append(s.Points, Point{X: float64(i), Y: p.OpsPerSec,
				Aux: map[string]float64{"workers": float64(w), "p50 ms": p.P50Ms, "p99 ms": p.P99Ms}})
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"closed loop per worker over one shared 3-node netrepl cluster, ops pre-generated and",
		"strided across workers; quiescence ran repair reads, invariant checks, and digest",
		"convergence on every replica after each run.")
	return e, nil
}

// serveRun is the scaffolding shared by the per-app benchmark and the
// workers sweep: build the adapter and cluster, seed and settle, hand the
// measured loop to `measure`, then run the engine's quiescence protocol
// (settle, repair rounds, stability pass, invariant checks, digest
// convergence) — a benchmark run that corrupts state fails instead of
// reporting numbers. extraQueue, when positive, sizes the transport
// queues above the whole workload so committer backpressure (which would
// hold shard locks) cannot engage under parallel clients.
func serveRun(app string, opts ServeOptions, extraQueue int,
	measure func(adapter harness.App, ctx *harness.Ctx, sites int) (*Recorder, float64)) (*Recorder, float64, error) {
	cfg := harness.Defaults(app)
	cfg.Backend = opts.Backend
	cfg, err := cfg.Norm()
	if err != nil {
		return nil, 0, err
	}
	adapter, err := harness.NewChaosApp(cfg)
	if err != nil {
		return nil, 0, err
	}

	var cluster runtime.Cluster
	switch opts.Backend {
	case runtime.BackendSim:
		_, sc, _ := NewPaperCluster(opts.Seed)
		cluster = runtime.NewSimCluster(sc)
	case runtime.BackendNet:
		ids := make([]clock.ReplicaID, 0, 3)
		for _, s := range wan.Sites() {
			ids = append(ids, clock.ReplicaID(s))
		}
		netCfg := serveNetConfig()
		if extraQueue > 0 {
			netCfg.Transport.QueueCap = extraQueue
		}
		netCfg.WireVersion = opts.WireVersion
		netCfg.DataDir = opts.DataDir
		cluster, err = runtime.NewNetCluster(ids, netCfg)
		if err != nil {
			return nil, 0, err
		}
		defer cluster.Close()
	default:
		return nil, 0, fmt.Errorf("unknown backend %q", opts.Backend)
	}
	sites := cluster.Replicas()
	ctx := harness.NewCtx(cfg, cluster, sites)

	adapter.Setup(ctx)
	if err := cluster.Settle(); err != nil {
		return nil, 0, err
	}

	rec, opsPerSec := measure(adapter, ctx, len(sites))

	if v, err := harness.Quiesce(ctx, adapter); err != nil {
		return nil, 0, err
	} else if v != nil {
		return nil, 0, fmt.Errorf("not clean at quiescence: %v", v)
	}
	return rec, opsPerSec, nil
}

// serveAppWorkers benchmarks one application with a fixed worker count.
func serveAppWorkers(app string, opts ServeOptions, workers int) (*Recorder, float64, error) {
	return serveRun(app, opts, 8*opts.Ops+4096,
		func(adapter harness.App, ctx *harness.Ctx, sites int) (*Recorder, float64) {
			// Generation keeps cross-op state (order ids, circulating
			// tweets), so ops pre-generate sequentially; workers then apply
			// them striped, each recording into its own Recorder.
			rng := rand.New(rand.NewSource(opts.Seed))
			ops := make([]harness.Op, opts.Ops)
			for i := range ops {
				op := adapter.Gen(rng)
				op.Site = i % sites
				ops[i] = op
			}
			recs := make([]*Recorder, workers)
			var wg sync.WaitGroup
			start := time.Now()
			// The stability service runs beside the workers (the gather is
			// one non-blocking pass per round, safe mid-traffic).
			stop := make(chan struct{})
			var stabWg sync.WaitGroup
			stabWg.Add(1)
			go func() {
				defer stabWg.Done()
				tick := time.NewTicker(50 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						ctx.Cluster.Stabilize()
					}
				}
			}()
			for w := 0; w < workers; w++ {
				rec := NewRecorder()
				recs[w] = rec
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(ops); i += workers {
						t0 := time.Now()
						adapter.Apply(ctx, ops[i])
						rec.Add(ops[i].Kind, wan.Time(time.Since(t0).Microseconds()))
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			stabWg.Wait()
			elapsed := time.Since(start)
			rec := NewRecorder()
			for _, r := range recs {
				rec.Merge(r)
			}
			return rec, float64(opts.Ops) / elapsed.Seconds()
		})
}

// serveApp benchmarks one application with the sequential closed loop.
func serveApp(app string, opts ServeOptions) (*Recorder, float64, error) {
	return serveRun(app, opts, 0,
		func(adapter harness.App, ctx *harness.Ctx, sites int) (*Recorder, float64) {
			// One closed loop round-robins the sites on either backend —
			// the workload generator and the adapters keep cross-op state,
			// so issuing is inherently sequential. On the sim the loop
			// drains the virtual-time event queue after each op so
			// replication interleaves; on netrepl the transport's
			// sender/receiver goroutines replicate, ack, and retry
			// concurrently underneath the loop, so op latency is the real
			// local-commit cost while the wire stays busy.
			rec := NewRecorder()
			rng := rand.New(rand.NewSource(opts.Seed))
			var sim *wan.Sim
			if sc, ok := ctx.Cluster.(*runtime.SimCluster); ok {
				sim = sc.Store().Sim()
			}
			start := time.Now()
			for i := 0; i < opts.Ops; i++ {
				op := adapter.Gen(rng)
				op.Site = i % sites
				t0 := time.Now()
				adapter.Apply(ctx, op)
				rec.Add(op.Kind, wan.Time(time.Since(t0).Microseconds()))
				if sim != nil {
					sim.Run()
				}
				if (i+1)%stabilizeEvery == 0 {
					ctx.Cluster.Stabilize()
				}
			}
			elapsed := time.Since(start)
			return rec, float64(opts.Ops) / elapsed.Seconds()
		})
}
