package bench

import (
	"fmt"
	"math/rand"
	"time"

	"ipa/internal/clock"
	"ipa/internal/harness"
	"ipa/internal/runtime"
	"ipa/internal/wan"
)

// ServeOptions shapes the cross-backend serving benchmark: a closed-loop
// workload over the chaos harness's application adapters, runnable
// unchanged on the simulator or on real netrepl sockets, with invariant
// checks at the end — the wall-clock counterpart of the paper's simulated
// throughput figures.
type ServeOptions struct {
	// Backend selects the substrate: runtime.BackendSim or BackendNet.
	Backend string
	// Apps lists the applications to serve. Default: every portable app.
	Apps []string
	// Ops is the number of operations per application. Default 2000
	// (sim), 1000 (netrepl).
	Ops int
	// Seed drives the workload generators.
	Seed int64
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Backend == "" {
		o.Backend = runtime.BackendSim
	}
	if len(o.Apps) == 0 {
		o.Apps = harness.PortableApps()
	}
	if o.Ops == 0 {
		o.Ops = 2000
		if o.Backend == runtime.BackendNet {
			o.Ops = 1000
		}
	}
	return o
}

// serveNetConfig is the transport tuning for serving runs: default
// streaming parameters (this measures the transport as shipped), with
// only the settle timeout raised for the larger op counts.
func serveNetConfig() runtime.NetConfig {
	return runtime.NetConfig{SettleTimeout: 60 * time.Second}
}

// Serve runs the serving benchmark on the chosen backend and reports
// wall-clock throughput and latency percentiles per application. After
// the measured loop it settles replication, runs the applications' repair
// reads, and asserts the IPA invariants plus cross-replica digest
// convergence — a benchmark run that corrupts state fails instead of
// reporting numbers.
func Serve(opts ServeOptions) (*Experiment, error) {
	opts = opts.withDefaults()
	e := &Experiment{
		ID:     "serve",
		Title:  fmt.Sprintf("Serving throughput on the %s backend (all apps, invariants checked)", opts.Backend),
		XLabel: "app",
		YLabel: "ops/sec",
		XTicks: append([]string(nil), opts.Apps...),
		Perf:   map[string]Perf{},
	}
	s := Series{Name: opts.Backend}
	for i, app := range opts.Apps {
		rec, opsPerSec, err := serveApp(app, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: serve %s on %s: %w", app, opts.Backend, err)
		}
		p := Perf{
			OpsPerSec: opsPerSec,
			P50Ms:     rec.Percentile("", 50),
			P99Ms:     rec.Percentile("", 99),
		}
		e.Perf[app] = p
		s.Points = append(s.Points, Point{X: float64(i), Y: p.OpsPerSec,
			Aux: map[string]float64{"p50 ms": p.P50Ms, "p99 ms": p.P99Ms}})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"one closed loop over the runtime.Cluster interface, same code path on sim and netrepl",
		"(netrepl replication/ack/retry goroutines run concurrently underneath);",
		"quiescence ran repair reads, invariant checks, and digest convergence on every replica.")
	return e, nil
}

// serveApp benchmarks one application and verifies its invariants.
func serveApp(app string, opts ServeOptions) (*Recorder, float64, error) {
	cfg := harness.Defaults(app)
	cfg.Backend = opts.Backend
	cfg, err := cfg.Norm()
	if err != nil {
		return nil, 0, err
	}
	adapter, err := harness.NewChaosApp(cfg)
	if err != nil {
		return nil, 0, err
	}

	var cluster runtime.Cluster
	switch opts.Backend {
	case runtime.BackendSim:
		_, sc, _ := NewPaperCluster(opts.Seed)
		cluster = runtime.NewSimCluster(sc)
	case runtime.BackendNet:
		ids := make([]clock.ReplicaID, 0, 3)
		for _, s := range wan.Sites() {
			ids = append(ids, clock.ReplicaID(s))
		}
		cluster, err = runtime.NewNetCluster(ids, serveNetConfig())
		if err != nil {
			return nil, 0, err
		}
		defer cluster.Close()
	default:
		return nil, 0, fmt.Errorf("unknown backend %q", opts.Backend)
	}
	sites := cluster.Replicas()
	ctx := harness.NewCtx(cfg, cluster, sites)

	adapter.Setup(ctx)
	if err := cluster.Settle(); err != nil {
		return nil, 0, err
	}

	// One closed loop round-robins the sites on either backend — the
	// workload generator and the adapters keep cross-op state, so issuing
	// is inherently sequential. On the sim the loop drains the
	// virtual-time event queue after each op so replication interleaves;
	// on netrepl the transport's sender/receiver goroutines replicate,
	// ack, and retry concurrently underneath the loop, so op latency is
	// the real local-commit cost while the wire stays busy.
	rec := NewRecorder()
	rng := rand.New(rand.NewSource(opts.Seed))
	var sim *wan.Sim
	if sc, ok := cluster.(*runtime.SimCluster); ok {
		sim = sc.Store().Sim()
	}
	start := time.Now()
	for i := 0; i < opts.Ops; i++ {
		op := adapter.Gen(rng)
		op.Site = i % len(sites)
		t0 := time.Now()
		adapter.Apply(ctx, op)
		rec.Add(op.Kind, wan.Time(time.Since(t0).Microseconds()))
		if sim != nil {
			sim.Run()
		}
	}
	elapsed := time.Since(start)
	opsPerSec := float64(opts.Ops) / elapsed.Seconds()

	// Quiescence: the engine's shared protocol — settle, two repair
	// rounds, stability pass, invariant checks, and cross-replica digest
	// convergence. A benchmark run that ends in a corrupt state fails.
	if v, err := harness.Quiesce(ctx, adapter); err != nil {
		return nil, 0, err
	} else if v != nil {
		return nil, 0, fmt.Errorf("not clean at quiescence: %v", v)
	}
	return rec, opsPerSec, nil
}
