package bench

// The engine benchmark: wall-clock throughput of the spec-driven engine's
// two executors — the mount-time compiled per-operation plans and the
// whole-state reference interpreter — over every application
// specification in the repository. The number CI tracks is the
// compiled/interpreted speed-up per spec: a ratio is stable across
// machine generations where absolute ops/sec are not, so the committed
// baseline gates regressions of the compilation pass itself rather than
// runner hardware.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ipa/internal/analysis"
	"ipa/internal/apps/ticket"
	"ipa/internal/apps/tournament"
	"ipa/internal/apps/tpcw"
	"ipa/internal/apps/twitter"
	"ipa/internal/engine"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/wan"
)

// engineSpecs lists the measured specifications with their analyses (the
// same analysis feeds both executors, so the comparison isolates plan
// execution).
func engineSpecs() ([]struct {
	name string
	spec *spec.Spec
	res  *analysis.Result
}, error) {
	type entry = struct {
		name string
		spec *spec.Spec
		res  *analysis.Result
	}
	ticketRes, err := analysis.Run(ticket.Spec(), analysis.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: analyze ticket: %w", err)
	}
	tpcwRes, err := analysis.Run(tpcw.Spec(), analysis.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: analyze tpcw: %w", err)
	}
	return []entry{
		{"tournament", tournament.Spec(), tournament.Analysis()},
		{"ticket", ticket.Spec(), ticketRes},
		{"twitter", twitter.Spec(), twitter.Analysis()},
		{"tpcw", tpcw.Spec(), tpcwRes},
	}, nil
}

// engineGen draws uniformly over the spec's operations with arguments
// from small per-sort pools (the chaos harness's generic generator):
// tiny domains keep the footprints colliding, so the measured loop
// exercises guards and repairs, not just empty-state fast paths.
func engineGen(app *engine.App) func(rng *rand.Rand) (string, []string) {
	ops := app.Operations()
	pools := map[string][]string{}
	poolFor := func(srt string) []string {
		if p, ok := pools[srt]; ok {
			return p
		}
		base := strings.ToLower(srt)
		p := []string{base + "0", base + "1", base + "2"}
		pools[srt] = p
		return p
	}
	return func(rng *rand.Rand) (string, []string) {
		s := app.Spec()
		name := ops[rng.Intn(len(ops))]
		op, _ := s.Operation(name)
		args := make([]string, len(op.Params))
		for i, p := range op.Params {
			pool := poolFor(string(p.Sort))
			args[i] = pool[rng.Intn(len(pool))]
		}
		return name, args
	}
}

// engineRun measures one executor on one spec: a closed loop over a
// fresh 3-site simulated deployment, round-robining the sites, draining
// replication after each op and stabilizing periodically like the
// serving benchmark. Refused preconditions count as served operations —
// both executors evaluate the same guards on the same states, so
// refusals load the comparison equally.
func engineRun(sp *spec.Spec, res *analysis.Result, interpreted bool, ops int, seed int64) (*Recorder, float64, error) {
	var mountOpts []engine.MountOption
	if interpreted {
		mountOpts = append(mountOpts, engine.WithInterpreter())
	}
	app, err := engine.Mount(sp, res, nil, mountOpts...)
	if err != nil {
		return nil, 0, err
	}
	sim, sc, _ := NewPaperCluster(seed)
	cluster := runtime.NewSimCluster(sc)
	sites := cluster.Replicas()
	gen := engineGen(app)
	rng := rand.New(rand.NewSource(seed))

	call := func(i int) error {
		name, args := gen(rng)
		err := app.Call(cluster.Replica(sites[i%len(sites)]), name, args...)
		if err != nil && !errors.Is(err, engine.ErrPrecondition) {
			return fmt.Errorf("bench: engine %s %s(%v): %w", sp.Name, name, args, err)
		}
		sim.Run()
		if (i+1)%stabilizeEvery == 0 {
			cluster.Stabilize()
		}
		return nil
	}

	// Warm-up populates the tiny domains (early ops mostly refuse into an
	// empty state) and takes the one-time mount/caching costs out of the
	// measured window.
	for i := 0; i < ops/10+50; i++ {
		if err := call(i); err != nil {
			return nil, 0, err
		}
	}

	rec := NewRecorder()
	start := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := call(i); err != nil {
			return nil, 0, err
		}
		rec.Add("", wan.Time(time.Since(t0).Microseconds()))
	}
	elapsed := time.Since(start)
	return rec, float64(ops) / elapsed.Seconds(), nil
}

// EngineExecutors measures compiled vs interpreted executor throughput
// for every spec and reports the speed-up ratio CI gates on.
func EngineExecutors(opts ExpOptions) (*Experiment, error) {
	// Even the quick loops must run long enough for the ratio to be a
	// measurement and not scheduler noise — at ~50k ops/sec a short
	// window times a few GC pauses, and the gate would flake.
	ops := 60000
	if opts.Duration < 10*wan.Second { // quick parameters
		ops = 20000
	}
	specs, err := engineSpecs()
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		ID:     "engine",
		Title:  "Spec engine: compiled plans vs reference interpreter (ops/sec per spec)",
		XLabel: "spec",
		YLabel: "ops/sec",
		Perf:   map[string]Perf{},
	}
	compiled := Series{Name: "compiled"}
	interp := Series{Name: "interpreted"}
	speedup := Series{Name: "speedup"}
	// Best of two rounds per executor: the gate tracks a ratio of two
	// closed loops, so scheduler and GC noise on either side shows up as
	// a spurious regression; the max is the less noisy estimator of the
	// undisturbed rate.
	best := func(sp *spec.Spec, res *analysis.Result, interpreted bool) (*Recorder, float64, error) {
		var bestRec *Recorder
		bestOps := 0.0
		for round := 0; round < 2; round++ {
			rec, rate, err := engineRun(sp, res, interpreted, ops, opts.Seed+int64(round))
			if err != nil {
				return nil, 0, err
			}
			if rate > bestOps {
				bestRec, bestOps = rec, rate
			}
		}
		return bestRec, bestOps, nil
	}
	for i, s := range specs {
		e.XTicks = append(e.XTicks, s.name)
		recC, opsC, err := best(s.spec, s.res, false)
		if err != nil {
			return nil, err
		}
		recI, opsI, err := best(s.spec, s.res, true)
		if err != nil {
			return nil, err
		}
		e.Perf[s.name+"/compiled"] = Perf{
			OpsPerSec: opsC,
			P50Ms:     recC.Percentile("", 50),
			P95Ms:     recC.Percentile("", 95),
			P99Ms:     recC.Percentile("", 99),
		}
		e.Perf[s.name+"/interpreted"] = Perf{
			OpsPerSec: opsI,
			P50Ms:     recI.Percentile("", 50),
			P95Ms:     recI.Percentile("", 95),
			P99Ms:     recI.Percentile("", 99),
		}
		compiled.Points = append(compiled.Points, Point{X: float64(i), Y: opsC})
		interp.Points = append(interp.Points, Point{X: float64(i), Y: opsI})
		speedup.Points = append(speedup.Points, Point{X: float64(i), Y: opsC / opsI})
	}
	e.Series = append(e.Series, compiled, interp, speedup)
	e.Notes = append(e.Notes,
		fmt.Sprintf("%d measured ops per executor after warm-up, closed loop on a fresh 3-site sim,", ops),
		"generic workload over tiny argument pools (guards and repairs constantly firing);",
		"the speedup series (compiled/interpreted) is what the CI baseline gate tracks.")
	return e, nil
}
