package bench

// This file is the transport benchmark: real-socket replication
// throughput, streaming vs the legacy connection-per-transaction
// transport. Unlike the simulated experiments in this package, these
// runs use wall-clock time and actual TCP on localhost — they measure
// the netrepl subsystem itself.

import (
	"fmt"
	"time"

	"ipa/internal/clock"
	"ipa/internal/netrepl"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// TransportOptions scales one transport run.
type TransportOptions struct {
	// Nodes is the ring size (fully meshed localhost nodes).
	Nodes int
	// Txns is the number of one-update transactions each node commits.
	Txns int
	// Legacy selects the connection-per-transaction demo transport.
	Legacy bool
}

// TransportResult is one measured transport run.
type TransportResult struct {
	Opts TransportOptions
	// Elapsed covers commit start to full convergence of every node.
	Elapsed time.Duration
	// TxnsPerSec is total committed transactions / Elapsed.
	TxnsPerSec float64
	// TxnsPerFrame is the achieved outbound batching factor.
	TxnsPerFrame float64
	// Metrics aggregates every node's transport counters.
	Metrics netrepl.Metrics
}

// RunTransport starts a fully meshed ring of localhost nodes, commits
// Opts.Txns transactions on every node concurrently, waits until all
// nodes converge, and reports throughput. It returns an error only on
// setup failure.
func RunTransport(opts TransportOptions) (*TransportResult, error) {
	cfg := netrepl.Config{Legacy: opts.Legacy}
	nodes := make([]*netrepl.Node, opts.Nodes)
	for i := range nodes {
		id := clock.ReplicaID(fmt.Sprintf("n%d", i))
		n, err := netrepl.NewNodeWithConfig(id, "127.0.0.1:0", cfg)
		if err != nil {
			return nil, err
		}
		defer n.Close()
		nodes[i] = n
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}

	start := time.Now()
	done := make(chan struct{})
	for _, n := range nodes {
		n := n
		go func() {
			n.Do(func(r *store.Replica) {
				for k := 0; k < opts.Txns; k++ {
					tx := r.Begin()
					store.CounterAt(tx, "load").Add(1)
					tx.Commit()
				}
			})
			done <- struct{}{}
		}()
	}
	for range nodes {
		<-done
	}

	// Convergence: every node has delivered every other node's txns.
	want := uint64(opts.Txns)
	deadline := time.Now().Add(5 * time.Minute)
	for {
		converged := true
		for _, n := range nodes {
			vc := n.Clock()
			for _, o := range nodes {
				if vc.Get(o.ID()) < want {
					converged = false
				}
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: transport run did not converge")
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	// Counter settle: delivery counts on the receiver's acknowledgement,
	// so the sender of the final frame may bump its counters an ack
	// round-trip after the state converges. Wait for the books to
	// balance before snapshotting (retries can legitimately exceed the
	// minimum).
	// (Legacy sends are synchronous and unacked — nothing to settle.)
	wantSent := uint64(opts.Nodes * (opts.Nodes - 1) * opts.Txns)
	for settle := time.Now().Add(2 * time.Second); !opts.Legacy && time.Now().Before(settle); {
		var sent uint64
		for _, n := range nodes {
			sent += n.Stats().TxnsSent
		}
		if sent >= wantSent {
			break
		}
		time.Sleep(time.Millisecond)
	}

	res := &TransportResult{Opts: opts, Elapsed: elapsed}
	for _, n := range nodes {
		s := n.Stats()
		res.Metrics.Dials += s.Dials
		res.Metrics.Reconnects += s.Reconnects
		res.Metrics.SendErrors += s.SendErrors
		res.Metrics.FramesSent += s.FramesSent
		res.Metrics.TxnsSent += s.TxnsSent
		res.Metrics.BytesSent += s.BytesSent
		res.Metrics.FramesRecv += s.FramesRecv
		res.Metrics.TxnsRecv += s.TxnsRecv
		res.Metrics.BytesRecv += s.BytesRecv
		res.Metrics.BackpressureWaits += s.BackpressureWaits
		res.Metrics.TxnsDropped += s.TxnsDropped
	}
	total := float64(opts.Nodes * opts.Txns)
	res.TxnsPerSec = total / elapsed.Seconds()
	if res.Metrics.FramesSent > 0 {
		res.TxnsPerFrame = float64(res.Metrics.TxnsSent) / float64(res.Metrics.FramesSent)
	}
	return res, nil
}

// Transport reproduces the streaming-vs-legacy comparison on 3- and
// 5-node localhost rings. Quick mode (small opts.Duration) reduces the
// per-node transaction count.
func Transport(opts ExpOptions) (*Experiment, error) {
	// Legacy runs use a smaller count: connection-per-transaction churns
	// through ephemeral ports (every send leaves a TIME_WAIT socket), and
	// the legacy transport never retries a failed dial, so a long run
	// exhausts the port range and loses transactions. That limit is
	// itself a finding — the streaming transport has no such ceiling.
	txns, legacyTxns := 2000, 500
	if opts.Duration < 10*wan.Second { // quick parameters
		txns, legacyTxns = 400, 150
	}
	e := &Experiment{
		ID:     "transport",
		Title:  "netrepl throughput: streaming/batched vs legacy per-txn connections",
		XLabel: "nodes",
		YLabel: "txn/s",
	}
	rings := []int{3, 5}
	for _, legacy := range []bool{true, false} {
		name := "streaming"
		if legacy {
			name = "legacy"
		}
		s := Series{Name: name}
		for _, ring := range rings {
			count := txns
			if legacy {
				count = legacyTxns
			}
			r, err := RunTransport(TransportOptions{Nodes: ring, Txns: count, Legacy: legacy})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{
				X: float64(ring),
				Y: r.TxnsPerSec,
				Aux: map[string]float64{
					"txns/frame": r.TxnsPerFrame,
					"frames":     float64(r.Metrics.FramesSent),
					"dials":      float64(r.Metrics.Dials),
				},
			})
		}
		e.Series = append(e.Series, s)
		if e.Perf == nil {
			e.Perf = map[string]Perf{}
		}
		if len(s.Points) > 0 {
			e.Perf[name] = Perf{OpsPerSec: s.Points[0].Y}
		}
	}
	for i, ring := range rings {
		leg := e.Series[0].Points[i].Y
		str := e.Series[1].Points[i].Y
		if leg > 0 {
			e.Notes = append(e.Notes,
				fmt.Sprintf("%d-node ring: streaming sustains %.1fx legacy throughput", ring, str/leg))
		}
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("each node commits %d one-update txns (%d for legacy: per-txn connections exhaust "+
			"ephemeral ports on longer runs); wall-clock localhost TCP, not simulated time", txns, legacyTxns))
	return e, nil
}
