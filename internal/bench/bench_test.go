package bench

import (
	"strings"
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/wan"
)

func TestCostModelCalibration(t *testing.T) {
	cost := DefaultCostModel()
	// Fig 8 anchor points from the paper:
	// (a) one-update op: IPA ~28x faster than Strong.
	strong := strongMeanLatency(cost, 1, 1)
	ipa := cost.Service(1, 1)
	speedup := float64(strong) / float64(ipa)
	if speedup < 20 || speedup > 40 {
		t.Fatalf("single-op speedup = %.1f, want ~28", speedup)
	}
	// (b) 2048 updates on one key: ~40ms absolute.
	lat2048 := cost.Service(1, 2048)
	if lat2048 < wan.Ms(30) || lat2048 > wan.Ms(55) {
		t.Fatalf("2048-update latency = %.1fms, want ~40ms", lat2048.Millis())
	}
}

func TestRecorderStats(t *testing.T) {
	r := NewRecorder()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		r.Add("op", wan.Ms(v))
	}
	if r.Count("op") != 5 || r.Count("") != 5 {
		t.Fatal("count")
	}
	if m := r.Mean("op"); m < 2.99 || m > 3.01 {
		t.Fatalf("mean = %f", m)
	}
	if sd := r.Stddev("op"); sd < 1.57 || sd > 1.59 {
		t.Fatalf("stddev = %f", sd)
	}
	if p := r.Percentile("op", 100); p != 5 {
		t.Fatalf("p100 = %f", p)
	}
	if p := r.Percentile("op", 0); p != 1 {
		t.Fatalf("p0 = %f", p)
	}
	if len(r.Labels()) != 1 {
		t.Fatal("labels")
	}
	if r.Mean("absent") != 0 || r.Stddev("absent") != 0 || r.Percentile("absent", 50) != 0 {
		t.Fatal("absent label should be zero")
	}
}

func TestFig4Shape(t *testing.T) {
	e := Fig4(QuickExpOptions())
	get := func(name string) Series {
		s, ok := e.FindSeries(name)
		if !ok {
			t.Fatalf("series %s missing", name)
		}
		return s
	}
	causal, ipa, strong, indigo := get("Causal"), get("IPA"), get("Strong"), get("Indigo")

	last := func(s Series) Point { return s.Points[len(s.Points)-1] }
	// Strong has the highest latency at every load.
	for i := range strong.Points {
		if strong.Points[i].Y <= causal.Points[i].Y || strong.Points[i].Y <= ipa.Points[i].Y {
			t.Fatalf("Strong should have the highest latency: %v vs causal %v / ipa %v",
				strong.Points[i].Y, causal.Points[i].Y, ipa.Points[i].Y)
		}
	}
	// Causal reaches the highest throughput; Strong the lowest.
	if last(causal).X <= last(strong).X {
		t.Fatalf("Causal peak (%.0f) should beat Strong peak (%.0f)", last(causal).X, last(strong).X)
	}
	// IPA is close to Causal: within 2x latency at the low-load point and
	// above it (extra effects), and its peak throughput within 40%.
	if ipa.Points[0].Y < causal.Points[0].Y {
		t.Fatalf("IPA latency should be >= Causal: %v vs %v", ipa.Points[0].Y, causal.Points[0].Y)
	}
	if ipa.Points[0].Y > 3*causal.Points[0].Y {
		t.Fatalf("IPA latency should be near Causal: %v vs %v", ipa.Points[0].Y, causal.Points[0].Y)
	}
	if last(ipa).X < 0.5*last(causal).X {
		t.Fatalf("IPA peak throughput too far below Causal: %.0f vs %.0f", last(ipa).X, last(causal).X)
	}
	// Indigo's low-load latency is at or above IPA's (occasional
	// reservation exchanges), far below Strong's.
	if indigo.Points[0].Y >= strong.Points[0].Y {
		t.Fatalf("Indigo should be far below Strong: %v vs %v", indigo.Points[0].Y, strong.Points[0].Y)
	}
	if !strings.Contains(e.Render(), "fig4") {
		t.Fatal("render")
	}
}

func TestFig5Shape(t *testing.T) {
	e := Fig5(QuickExpOptions())
	indigo, _ := e.FindSeries("Indigo")
	ipa, _ := e.FindSeries("IPA")
	causal, _ := e.FindSeries("Causal")
	if len(indigo.Points) != 7 || len(ipa.Points) != 7 {
		t.Fatalf("expected 7 ops per series")
	}
	// Indexes: Begin 0, Finish 1, Remove 2, DoMatch 3, Enroll 4, Status 6.
	// Indigo pays on exclusive-reservation ops.
	for _, i := range []int{0, 1, 2} {
		if indigo.Points[i].Y <= ipa.Points[i].Y {
			t.Fatalf("Indigo should exceed IPA on op %d: %v vs %v", i, indigo.Points[i].Y, ipa.Points[i].Y)
		}
	}
	// IPA write ops cost at least Causal's.
	for _, i := range []int{3, 4} {
		if ipa.Points[i].Y < causal.Points[i].Y*0.95 {
			t.Fatalf("IPA op %d cheaper than Causal: %v vs %v", i, ipa.Points[i].Y, causal.Points[i].Y)
		}
	}
	// Status (read) is essentially identical for IPA and Causal.
	ratio := ipa.Points[6].Y / causal.Points[6].Y
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("Status latency should match: ratio %.2f", ratio)
	}
}

func TestFig6Shape(t *testing.T) {
	e := Fig6(QuickExpOptions())
	causal, _ := e.FindSeries("Causal")
	aw, _ := e.FindSeries("Add-Wins")
	rw, _ := e.FindSeries("Rem-Wins")
	// Tweet (0) and Retweet (1): Add-Wins pays the touches.
	for _, i := range []int{0, 1} {
		if aw.Points[i].Y <= causal.Points[i].Y {
			t.Fatalf("Add-Wins should pay on op %d: %v vs %v", i, aw.Points[i].Y, causal.Points[i].Y)
		}
	}
	// Timeline (7): Rem-Wins pays the lazy compensation reads.
	if rw.Points[7].Y <= causal.Points[7].Y {
		t.Fatalf("Rem-Wins should pay on Timeline: %v vs %v", rw.Points[7].Y, causal.Points[7].Y)
	}
	// Rem user (6): Rem-Wins pays the purge.
	if rw.Points[6].Y <= causal.Points[6].Y {
		t.Fatalf("Rem-Wins should pay on Rem user: %v vs %v", rw.Points[6].Y, causal.Points[6].Y)
	}
}

func TestFig7Shape(t *testing.T) {
	e := Fig7(QuickExpOptions())
	causal, _ := e.FindSeries("Causal")
	ipa, _ := e.FindSeries("IPA")
	// Violations under Causal appear and grow with load.
	lastV := causal.Points[len(causal.Points)-1].Aux["violations"]
	if lastV == 0 {
		t.Fatal("Causal at high load should oversell")
	}
	firstV := causal.Points[0].Aux["violations"]
	if lastV < firstV {
		t.Fatalf("violations should not shrink with load: %v -> %v", firstV, lastV)
	}
	// IPA never exposes violations.
	for _, p := range ipa.Points {
		if p.Aux["violations"] != 0 {
			t.Fatalf("IPA exposed %v violations", p.Aux["violations"])
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	a := Fig8a(QuickExpOptions())
	s := a.Series[0]
	if s.Points[0].X != 1 {
		t.Fatal("first point should be k=1")
	}
	if s.Points[0].Y < 20 || s.Points[0].Y > 40 {
		t.Fatalf("k=1 speedup = %.1f, want ~28", s.Points[0].Y)
	}
	// Monotone decay.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y >= s.Points[i-1].Y {
			t.Fatalf("speedup should decay: %v", s.Points)
		}
	}
	lastPt := s.Points[len(s.Points)-1]
	if lastPt.Aux["ipa ms"] < 30 || lastPt.Aux["ipa ms"] > 55 {
		t.Fatalf("2048-update IPA latency = %.1f, want ~40", lastPt.Aux["ipa ms"])
	}

	b := Fig8b(QuickExpOptions())
	sb := b.Series[0]
	// Decays and crosses 1 near 64 keys.
	if sb.Points[0].Y < 10 {
		t.Fatalf("1-key speedup = %.1f", sb.Points[0].Y)
	}
	lastB := sb.Points[len(sb.Points)-1]
	if lastB.X != 64 {
		t.Fatal("last point should be 64 keys")
	}
	if lastB.Y > 1.15 || lastB.Y < 0.6 {
		t.Fatalf("crossover should land near 64 keys: speedup(64) = %.2f", lastB.Y)
	}
}

func TestFig9Shape(t *testing.T) {
	e := Fig9(QuickExpOptions())
	ipa, _ := e.FindSeries("IPA")
	indigo, _ := e.FindSeries("Indigo")
	// IPA flat.
	for _, p := range ipa.Points {
		if p.Y != ipa.Points[0].Y {
			t.Fatal("IPA latency should be flat")
		}
	}
	// Indigo monotone rising with contention, below IPA at no contention
	// (the unmodified op is cheaper), far above at 50%.
	for i := 2; i < len(indigo.Points); i++ {
		if indigo.Points[i].Y <= indigo.Points[i-1].Y {
			t.Fatalf("Indigo latency should rise with contention: %v", indigo.Points)
		}
	}
	if indigo.Points[1].Y >= ipa.Points[1].Y {
		t.Fatal("at 0%% contention Indigo should be at/below IPA")
	}
	last := indigo.Points[len(indigo.Points)-1]
	if last.Y < 5*ipa.Points[0].Y {
		t.Fatalf("at 50%% contention Indigo should be way above IPA: %v vs %v", last.Y, ipa.Points[0].Y)
	}
}

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full classification is slow")
	}
	e, err := Table1(analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render()
	// Key cells from the paper's Table 1.
	for _, want := range []string{
		"Unique id.", "Ref. integrity", "Aggreg. const.", "Numeric inv.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing row %q in:\n%s", want, out)
		}
	}
	// Referential integrity: not I-confluent, IPA Yes.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Ref. integrity") {
			if !strings.Contains(line, "No") || !strings.Contains(line, "Yes") {
				t.Fatalf("ref integrity row: %q", line)
			}
		}
		if strings.HasPrefix(line, "Numeric inv.") {
			if !strings.Contains(line, "Comp.") {
				t.Fatalf("numeric row should be Comp.: %q", line)
			}
		}
		if strings.HasPrefix(line, "Sequential id.") {
			if !strings.Contains(line, "No") {
				t.Fatalf("sequential ids row should be No: %q", line)
			}
		}
	}
}

func TestDriverStrongForwardsWrites(t *testing.T) {
	opts := QuickExpOptions()
	d := runTournament(Strong, 2, opts)
	// Writes from remote sites pay ~80ms; global mean must sit well above
	// the causal baseline.
	causal := runTournament(Causal, 2, opts)
	if d.Rec.Mean("Enroll") < 5*causal.Rec.Mean("Enroll") {
		t.Fatalf("Strong Enroll %.2fms vs Causal %.2fms", d.Rec.Mean("Enroll"), causal.Rec.Mean("Enroll"))
	}
	// Reads stay local (they never pay a WAN round trip, though reads at
	// the primary site do queue behind the forwarded writes).
	ratio := d.Rec.Mean("Status") / causal.Rec.Mean("Status")
	if ratio > 4 {
		t.Fatalf("Strong Status should stay local: ratio %.2f", ratio)
	}
	if d.Rec.Mean("Status") > 40 {
		t.Fatalf("Strong Status absolute latency too high: %.2fms", d.Rec.Mean("Status"))
	}
}

func TestDeterministicRuns(t *testing.T) {
	opts := QuickExpOptions()
	a := runTournament(IPA, 4, opts)
	b := runTournament(IPA, 4, opts)
	if a.Completed != b.Completed || a.Rec.Mean("") != b.Rec.Mean("") {
		t.Fatalf("runs not deterministic: %d/%f vs %d/%f",
			a.Completed, a.Rec.Mean(""), b.Completed, b.Rec.Mean(""))
	}
}
