package bench

import (
	"testing"

	"ipa/internal/harness"
)

func TestRunChaosRate(t *testing.T) {
	rate, err := RunChaosRate("tournament", 3, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestChaosExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs hundreds of chaos schedules")
	}
	e, err := Chaos(QuickExpOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Series) != len(harness.Apps()) {
		t.Fatalf("series = %d, want one per app", len(e.Series))
	}
	for _, s := range e.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: points = %d, want 3- and 5-replica", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s: nonpositive rate at %v replicas", s.Name, p.X)
			}
		}
	}
}

// BenchmarkChaosSchedule times one generate+execute cycle of the default
// tournament schedule (the unit the harness throughput is made of).
func BenchmarkChaosSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunChaosRate("tournament", 3, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
