package bench

// The recovery benchmark behind BENCH_recovery.json: what durability
// costs while serving, and what it buys back at restart.
//
// Leg one serves every portable application through the usual closed
// loop on the netrepl backend twice — once in-memory, once with a WAL —
// so the durable/memory throughput ratio isolates the fsync-before-ack
// overhead of the group-commit log (cmd/benchgate gates this ratio
// against a committed baseline). Leg two measures cold-start recovery
// directly on a durable node: commit a ladder of transaction counts,
// kill -9, and time the reopen — once with snapshots disabled (full log
// replay) and once with the snapshot cycle running (snapshot + log
// tail), which is the shipped configuration's claim that recovery time
// is bounded by SnapshotEvery, not by history length.

import (
	"fmt"
	"os"
	"time"

	"ipa/internal/clock"
	"ipa/internal/harness"
	"ipa/internal/netrepl"
	"ipa/internal/runtime"
	"ipa/internal/store"
)

// RecoveryOptions shapes the durability benchmark.
type RecoveryOptions struct {
	// Apps lists the applications for the serve legs. Default: every
	// portable app.
	Apps []string
	// Ops is the number of serve operations per leg. Default 4000 —
	// smaller than the plain serve benchmark because each leg runs
	// twice and the durable leg pays a group commit per op.
	Ops int
	// Seed drives the workload generators.
	Seed int64
	// Ladder is the committed-transaction counts for the recovery-time
	// series. Default 500, 2000, 8000.
	Ladder []int
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if len(o.Apps) == 0 {
		o.Apps = harness.PortableApps()
	}
	if o.Ops == 0 {
		o.Ops = 4000
	}
	if len(o.Ladder) == 0 {
		o.Ladder = []int{500, 2000, 8000}
	}
	return o
}

// Recovery runs both legs and returns the experiment.
func Recovery(opts RecoveryOptions) (*Experiment, error) {
	opts = opts.withDefaults()
	e := &Experiment{
		ID:     "recovery",
		Title:  "Durability: serve overhead (WAL group commit) and cold-start recovery time",
		XLabel: "committed transactions before kill -9",
		YLabel: "recovery ms",
		Perf:   map[string]Perf{},
	}

	// Leg one: the serve loop with and without a WAL underneath. Same
	// netrepl cluster construction, same workload, same invariant-checked
	// quiescence; only the durability differs, so the ratio is the cost
	// of fsync-before-ack at this op mix.
	for _, app := range opts.Apps {
		serveOpts := ServeOptions{
			Backend: runtime.BackendNet,
			Apps:    []string{app},
			Ops:     opts.Ops,
			Seed:    opts.Seed,
		}.withDefaults()
		rec, opsPerSec, err := serveApp(app, serveOpts)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery serve %s (memory): %w", app, err)
		}
		e.Perf[app+"/memory"] = Perf{
			OpsPerSec: opsPerSec,
			P50Ms:     rec.Percentile("", 50),
			P95Ms:     rec.Percentile("", 95),
			P99Ms:     rec.Percentile("", 99),
		}

		dir, err := os.MkdirTemp("", "ipa-recovery-*")
		if err != nil {
			return nil, err
		}
		serveOpts.DataDir = dir
		rec, opsPerSec, err = serveApp(app, serveOpts)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery serve %s (durable): %w", app, err)
		}
		e.Perf[app+"/durable"] = Perf{
			OpsPerSec: opsPerSec,
			P50Ms:     rec.Percentile("", 50),
			P95Ms:     rec.Percentile("", 95),
			P99Ms:     rec.Percentile("", 99),
		}
	}

	// Leg two: cold-start recovery time against replay length, with and
	// without the snapshot cycle.
	for _, n := range opts.Ladder {
		e.XTicks = append(e.XTicks, fmt.Sprintf("%d", n))
	}
	modes := []struct {
		name string
		// snapshotEvery tunes the cycle: huge disables it (recovery is
		// a full log replay); small keeps snapshots current (recovery
		// is snapshot load + short tail).
		snapshotEvery int64
	}{
		{"wal-only", 1 << 60},
		{"snapshot+tail", 64 << 10},
	}
	for _, mode := range modes {
		s := Series{Name: mode.name}
		for i, count := range opts.Ladder {
			ms, snaps, err := recoverOnce(count, mode.snapshotEvery)
			if err != nil {
				return nil, fmt.Errorf("bench: recovery ladder %s/%d: %w", mode.name, count, err)
			}
			s.Points = append(s.Points, Point{X: float64(i), Y: ms,
				Aux: map[string]float64{"txns": float64(count), "snapshots": float64(snaps)}})
		}
		e.Series = append(e.Series, s)
	}

	e.Notes = append(e.Notes,
		"serve legs: the closed serving loop on netrepl, in-memory vs durable (per-site WAL,",
		"fsync before ack) — <app>/durable over <app>/memory is the group-commit overhead,",
		"gated by cmd/benchgate; recovery series: one durable node commits N transactions,",
		"dies by kill -9 (unsynced tail abandoned), and the reopen is timed — wal-only",
		"replays the whole log, snapshot+tail loads the newest snapshot and replays past it,",
		"so its recovery time tracks SnapshotEvery instead of history length.")
	return e, nil
}

// recoverOnce commits count transactions on one durable node, kills it,
// and times the reopen. Returns the reopen wall-clock in ms and how many
// snapshots the node took before dying. The recovered state is verified
// — a recovery that silently lost acked transactions must not report a
// time.
func recoverOnce(count int, snapshotEvery int64) (float64, uint64, error) {
	dir, err := os.MkdirTemp("", "ipa-recovery-ladder-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	cfg := netrepl.Config{
		DataDir:       dir,
		SnapshotEvery: snapshotEvery,
		// Small segments so truncation has units to delete at this
		// scale — otherwise the whole ladder lives in one active
		// segment and recovery decodes all of it in both modes.
		SegmentSize:   64 << 10,
		FlushInterval: 100 * time.Microsecond,
	}
	id := clock.ReplicaID("bench")
	n, err := netrepl.NewNodeWithConfig(id, "127.0.0.1:0", cfg)
	if err != nil {
		return 0, 0, err
	}
	// The workload updates a fixed working set (64 keys), the regime
	// where snapshots pay: state stays bounded while the log grows with
	// history, so snapshot+tail recovery is O(SnapshotEvery) where full
	// replay is O(count). (A workload whose state grows with every
	// transaction — unique keys — makes the snapshot as large as the
	// log and the comparison meaningless.) Every 64 commits the
	// stability round runs, which on a durable node is also the
	// snapshot-cycle trigger — for a lone node its own clock is the
	// horizon (every member has applied everything).
	for i := 0; i < count; i++ {
		n.Do(func(r *store.Replica) {
			tx := r.Begin()
			store.AWSetAt(tx, "items").Add(fmt.Sprintf("item-%d", i%64), "payload-payload-payload")
			store.CounterAt(tx, "n").Add(1)
			tx.Commit()
		})
		if (i+1)%stabilizeEvery == 0 {
			vc := n.Clock()
			n.CompactAll(vc, vc)
		}
	}
	snaps := n.Stats().Snapshots
	if err := n.Kill(); err != nil {
		return 0, 0, err
	}

	t0 := time.Now()
	rec, err := netrepl.NewNodeWithConfig(id, "127.0.0.1:0", cfg)
	if err != nil {
		return 0, 0, fmt.Errorf("reopen: %w", err)
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000
	var got int64
	rec.Do(func(r *store.Replica) {
		tx := r.Begin()
		got = store.CounterAt(tx, "n").Value()
		tx.Commit()
	})
	closeErr := rec.Close()
	if got != int64(count) {
		return 0, 0, fmt.Errorf("recovered counter %d, committed %d", got, count)
	}
	return ms, snaps, closeErr
}
