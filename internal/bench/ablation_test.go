package bench

import "testing"

func TestAblationNumeric(t *testing.T) {
	e := AblationNumeric(QuickExpOptions())
	s := e.Series[0]
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	causal, ipa, escrow := s.Points[0], s.Points[1], s.Points[2]
	if causal.Aux["violations"] == 0 {
		t.Fatal("causal should oversell under load")
	}
	if ipa.Aux["violations"] != 0 {
		t.Fatalf("IPA exposed %v violations", ipa.Aux["violations"])
	}
	if escrow.Aux["violations"] != 0 {
		t.Fatalf("escrow oversold by %v", escrow.Aux["violations"])
	}
	if escrow.Aux["denied"] == 0 {
		t.Fatal("escrow under load should refuse some buyers")
	}
	// Escrow never records more sales than capacity allows (10 events x 40).
	if escrow.Aux["sold"] > 400 {
		t.Fatalf("escrow sold %v > 400", escrow.Aux["sold"])
	}
	// Causal and IPA sell optimistically: at high load they record more
	// attempts than capacity; the difference is who repairs afterwards.
	if causal.Aux["sold"] <= 400 {
		t.Skip("load too light to oversell in quick mode")
	}
}

func TestAblationTouch(t *testing.T) {
	e := AblationTouch(QuickExpOptions())
	s := e.Series[0]
	touch, readd := s.Points[0].Y, s.Points[1].Y
	if touch < 99 {
		t.Fatalf("touch survival = %.1f%%, want ~100%%", touch)
	}
	if readd > 50 {
		t.Fatalf("plain re-add survival = %.1f%%, should lose most racing payloads", readd)
	}
}

func TestAblationStability(t *testing.T) {
	e := AblationStability(QuickExpOptions())
	s := e.Series[0]
	withGC, withoutGC := s.Points[0].Y, s.Points[1].Y
	if withGC >= withoutGC {
		t.Fatalf("GC should shrink metadata: %f vs %f", withGC, withoutGC)
	}
	if withoutGC < 2*withGC {
		t.Fatalf("expected substantial growth without GC: %f vs %f", withGC, withoutGC)
	}
}

func TestAblationScope(t *testing.T) {
	if testing.Short() {
		t.Skip("scope-3 analysis is slow")
	}
	e := AblationScope(QuickExpOptions())
	s := e.Series[0]
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Y != s.Points[1].Y {
		t.Fatalf("scope 2 and 3 disagree on conflicts: %v vs %v", s.Points[0].Y, s.Points[1].Y)
	}
}
