package bench

import (
	"math/rand"

	"ipa/internal/clock"
	"ipa/internal/indigo"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// OpSpec describes one operation issued by a client: the actual effect on
// the store, the number of keys it reads (for service-time accounting;
// written keys and update counts are measured from the transaction), and
// the reservation the operation needs under the Indigo configuration.
type OpSpec struct {
	Label string
	// Reads is the number of distinct keys the operation reads.
	Reads int
	// IsWrite routes the op to the primary under Strong.
	IsWrite bool
	// Exec applies the operation at the executing replica and returns the
	// transaction (for written-keys/updates accounting). It may be nil
	// for no-ops.
	Exec func(r runtime.Replica) *store.Txn
	// Reservation is the Indigo reservation the op requires, if NeedsRes.
	Reservation string
	ResMode     indigo.Mode
	NeedsRes    bool
	// ExtraDelay is additional coordination latency the workload already
	// paid for this operation (e.g. an escrow rights transfer).
	ExtraDelay wan.Time
}

// Workload produces the next operation for a client at the given site.
type Workload func(rng *rand.Rand, site clock.ReplicaID) OpSpec

// Driver runs a closed-loop workload against a cluster under one of the
// four configurations, accounting latency as
//
//	latency = forward + coordination + queueing + service + return
//
// where forward/return are one-way WAN delays to the executing replica
// (zero except under Strong for writes), coordination is the reservation
// acquisition cost (Indigo only), queueing models each replica as a FIFO
// server, and service follows the cost model.
type Driver struct {
	Sim     *wan.Sim
	Cluster *store.Cluster
	Latency *wan.Latency
	Cost    CostModel
	Config  Config
	Primary clock.ReplicaID
	Res     *indigo.Manager

	// ThinkTime is the mean client think time between operations.
	ThinkTime wan.Time

	nextFree  map[clock.ReplicaID]wan.Time
	Rec       *Recorder
	Completed uint64
	Failed    uint64 // ops that could not run (e.g. unreachable reservation)
}

// NewDriver creates a driver for the given configuration.
func NewDriver(sim *wan.Sim, cluster *store.Cluster, lat *wan.Latency, cfg Config) *Driver {
	d := &Driver{
		Sim:       sim,
		Cluster:   cluster,
		Latency:   lat,
		Cost:      DefaultCostModel(),
		Config:    cfg,
		Primary:   cluster.Replicas()[0],
		ThinkTime: wan.Ms(50),
		nextFree:  map[clock.ReplicaID]wan.Time{},
		Rec:       NewRecorder(),
	}
	if cfg == Indigo {
		d.Res = indigo.NewManager(lat, cluster.Replicas())
	}
	return d
}

// Run launches clientsPerSite closed-loop clients at every replica site
// and processes the simulation until the virtual deadline.
func (d *Driver) Run(workload Workload, clientsPerSite int, duration wan.Time) {
	deadline := d.Sim.Now() + duration
	for _, site := range d.Cluster.Replicas() {
		for c := 0; c < clientsPerSite; c++ {
			site := site
			// Stagger client starts to avoid lockstep.
			start := wan.Time(d.Sim.Rand().Int63n(int64(d.ThinkTime) + 1))
			d.Sim.At(d.Sim.Now()+start, func() { d.issue(workload, site, deadline) })
		}
	}
	d.Sim.RunUntil(deadline)
}

// issue runs one client iteration and reschedules until the deadline.
func (d *Driver) issue(workload Workload, site clock.ReplicaID, deadline wan.Time) {
	if d.Sim.Now() >= deadline {
		return
	}
	op := workload(d.Sim.Rand(), site)
	t0 := d.Sim.Now()

	execSite := site
	var forward wan.Time
	coordination := op.ExtraDelay

	switch d.Config {
	case Strong:
		if op.IsWrite {
			execSite = d.Primary
			forward = d.Latency.OneWay(string(site), string(execSite), d.Sim.Rand())
		}
	case Indigo:
		if op.NeedsRes {
			delay, ok := d.Res.Acquire(op.Reservation, site, op.ResMode)
			if !ok {
				// Reservation unobtainable (partition): the operation
				// cannot execute — Indigo's availability cost.
				d.Failed++
				d.Sim.After(d.think(), func() { d.issue(workload, site, deadline) })
				return
			}
			coordination += delay
		}
	}

	// Execute the operation's effects; the latency model charges the
	// measured footprint below. (The effects become visible at the origin
	// slightly before the modelled response time, which only affects the
	// simulation's visibility skew, not the latency accounting.)
	keys, updates := 0, 0
	if op.Exec != nil {
		tx := op.Exec(d.Cluster.Replica(execSite))
		if tx != nil {
			keys, updates = tx.KeysTouched(), tx.Updates()
		}
	}

	arrival := t0 + forward + coordination
	service := d.Cost.Service(op.Reads+keys, updates)
	start := arrival
	if d.nextFree[execSite] > start {
		start = d.nextFree[execSite]
	}
	complete := start + service
	d.nextFree[execSite] = complete

	var back wan.Time
	if execSite != site {
		back = d.Latency.OneWay(string(execSite), string(site), d.Sim.Rand())
	}
	respond := complete + back

	d.Sim.At(respond, func() {
		d.Rec.Add(op.Label, respond-t0)
		d.Completed++
		d.Sim.After(d.think(), func() { d.issue(workload, site, deadline) })
	})
}

// think samples an exponential think time with the configured mean,
// capped at 10x to keep the tail bounded.
func (d *Driver) think() wan.Time {
	if d.ThinkTime <= 0 {
		return 0
	}
	f := d.Sim.Rand().ExpFloat64() * float64(d.ThinkTime)
	if f > 10*float64(d.ThinkTime) {
		f = 10 * float64(d.ThinkTime)
	}
	return wan.Time(f)
}

// Throughput returns completed operations per simulated second over the
// given duration.
func (d *Driver) Throughput(duration wan.Time) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(d.Completed) / (float64(duration) / float64(wan.Second))
}
