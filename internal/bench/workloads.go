package bench

import (
	"fmt"
	"math/rand"

	"ipa/internal/apps/ticket"
	"ipa/internal/apps/tournament"
	"ipa/internal/apps/twitter"
	"ipa/internal/clock"
	"ipa/internal/indigo"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// TournamentWorkload is the paper's §5.2.2 workload: 35% writes spread
// over the tournament operations, 65% status reads, over a fixed pool of
// players and tournaments. The workload tracks an approximate lifecycle
// per tournament (its own intended enrolments and active state) so the
// operations it issues usually satisfy their origin preconditions —
// concurrency across sites still produces the conflicts the paper
// studies. All write operations conflict in the original specification.
type TournamentWorkload struct {
	App         *tournament.App
	Players     int
	Tournaments int

	rosters map[string][]string // workload-side view of enrolments
	began   map[string]bool
}

// NewTournamentWorkload builds the workload for one app variant.
func NewTournamentWorkload(app *tournament.App) *TournamentWorkload {
	return &TournamentWorkload{
		App: app, Players: 100, Tournaments: 50,
		rosters: map[string][]string{}, began: map[string]bool{},
	}
}

// Seed populates the pool at the first replica (replicates to the rest):
// players, tournaments, two seed enrolments per tournament, and an active
// state, so matches are playable from the start.
func (w *TournamentWorkload) Seed(c runtime.Cluster) {
	first := c.Replica(c.Replicas()[0])
	for i := 0; i < w.Players; i++ {
		w.App.AddPlayer(first, w.player(i))
	}
	for i := 0; i < w.Tournaments; i++ {
		t := w.tourn(i)
		w.App.AddTournament(first, t)
		p1 := w.player(i % w.Players)
		p2 := w.player((i + 1) % w.Players)
		w.App.Enroll(first, p1, t)
		w.App.Enroll(first, p2, t)
		w.rosters[t] = []string{p1, p2}
		w.App.Begin(first, t)
		w.began[t] = true
	}
}

func (w *TournamentWorkload) player(i int) string { return fmt.Sprintf("player-%03d", i) }
func (w *TournamentWorkload) tourn(i int) string  { return fmt.Sprintf("tourn-%02d", i) }

// Next implements Workload. The op mix covers Fig. 5's operations with
// 35% writes total: Enroll 15%, Disenroll 7%, DoMatch 9%, Begin 1.5%,
// Finish 1.5%, Remove 1%, Status 65%. Exclusive-reservation operations
// (Begin/Finish/Remove) are rare, matching the paper's observation that
// under Indigo "reservations are exchanged among replicas very
// infrequently".
func (w *TournamentWorkload) Next(rng *rand.Rand, site clock.ReplicaID) OpSpec {
	p := w.player(rng.Intn(w.Players))
	t := w.tourn(rng.Intn(w.Tournaments))
	app := w.App
	x := rng.Float64()
	switch {
	case x < 0.15:
		w.rosters[t] = append(w.rosters[t], p)
		return OpSpec{Label: "Enroll", IsWrite: true,
			Exec:        func(r runtime.Replica) *store.Txn { return app.Enroll(r, p, t) },
			Reservation: "tourn/" + t, ResMode: indigo.Shared, NeedsRes: true}
	case x < 0.22:
		roster := w.rosters[t]
		if len(roster) > 0 {
			p = roster[rng.Intn(len(roster))]
			w.rosters[t] = removeOne(roster, p)
		}
		return OpSpec{Label: "Disenroll", IsWrite: true,
			Exec:        func(r runtime.Replica) *store.Txn { return app.Disenroll(r, p, t) },
			Reservation: "tourn/" + t, ResMode: indigo.Shared, NeedsRes: true}
	case x < 0.31:
		// Pick two distinct enrolled players of an active tournament.
		roster := w.rosters[t]
		if len(roster) < 2 || !w.began[t] {
			// Fall back to enrolling, keeping the write ratio.
			w.rosters[t] = append(w.rosters[t], p)
			return OpSpec{Label: "Enroll", IsWrite: true,
				Exec:        func(r runtime.Replica) *store.Txn { return app.Enroll(r, p, t) },
				Reservation: "tourn/" + t, ResMode: indigo.Shared, NeedsRes: true}
		}
		i := rng.Intn(len(roster))
		j := rng.Intn(len(roster) - 1)
		if j >= i {
			j++
		}
		pa, pb := roster[i], roster[j]
		return OpSpec{Label: "DoMatch", IsWrite: true,
			Exec:        func(r runtime.Replica) *store.Txn { return app.DoMatch(r, pa, pb, t) },
			Reservation: "tourn/" + t, ResMode: indigo.Shared, NeedsRes: true}
	case x < 0.325:
		w.began[t] = true
		return OpSpec{Label: "Begin", IsWrite: true,
			Exec:        func(r runtime.Replica) *store.Txn { return app.Begin(r, t) },
			Reservation: "state/" + t, ResMode: indigo.Exclusive, NeedsRes: true}
	case x < 0.34:
		return OpSpec{Label: "Finish", IsWrite: true,
			Exec:        func(r runtime.Replica) *store.Txn { return app.Finish(r, t) },
			Reservation: "state/" + t, ResMode: indigo.Exclusive, NeedsRes: true}
	case x < 0.35:
		// Removal targets an emptied tournament; the slot is immediately
		// repopulated so the pool stays constant.
		victim := t
		w.rosters[victim] = nil
		w.began[victim] = false
		return OpSpec{Label: "Remove", IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn {
				for _, enrolled := range app.Roster(r, victim) {
					app.Disenroll(r, enrolled, victim)
				}
				tx := app.RemTournament(r, victim)
				app.AddTournament(r, victim)
				return tx
			},
			Reservation: "tourn/" + t, ResMode: indigo.Exclusive, NeedsRes: true}
	default:
		return OpSpec{Label: "Status", Reads: 4,
			Exec: func(r runtime.Replica) *store.Txn {
				_, tx := app.ReadStatus(r, t)
				return tx
			}}
	}
}

func removeOne(list []string, v string) []string {
	for i, x := range list {
		if x == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// GrantReservations pre-grants shared rights everywhere, the steady state
// the paper describes ("reservations are exchanged among replicas very
// infrequently").
func (w *TournamentWorkload) GrantReservations(m *indigo.Manager) {
	for i := 0; i < w.Tournaments; i++ {
		m.GrantInitial("tourn/" + w.tourn(i))
		m.GrantInitial("state/" + w.tourn(i))
	}
}

// TwitterWorkload drives the paper's Fig. 6 experiment: the full Twitter
// operation mix over a fixed social graph.
type TwitterWorkload struct {
	App     *twitter.App
	Users   int
	nextID  int
	tweeted []string // circulating tweet ids with their author
}

// NewTwitterWorkload builds the workload for one strategy.
func NewTwitterWorkload(app *twitter.App) *TwitterWorkload {
	return &TwitterWorkload{App: app, Users: 50}
}

func (w *TwitterWorkload) user(i int) string { return fmt.Sprintf("user-%03d", i) }

// Seed creates users and a follower graph (each user follows ~5 others).
func (w *TwitterWorkload) Seed(c runtime.Cluster, rng *rand.Rand) {
	first := c.Replica(c.Replicas()[0])
	for i := 0; i < w.Users; i++ {
		w.App.AddUser(first, w.user(i))
	}
	for i := 0; i < w.Users; i++ {
		for k := 0; k < 5; k++ {
			w.App.Follow(first, w.user(i), w.user(rng.Intn(w.Users)))
		}
	}
	// Seed a few tweets so retweets/deletes have material.
	for i := 0; i < 20; i++ {
		author := w.user(rng.Intn(w.Users))
		id := w.newTweetID()
		w.App.Tweet(first, author, id, "seed tweet")
		w.tweeted = append(w.tweeted, id+"\x00"+author)
	}
}

func (w *TwitterWorkload) newTweetID() string {
	w.nextID++
	return fmt.Sprintf("tw-%06d", w.nextID)
}

func (w *TwitterWorkload) randTweet(rng *rand.Rand) (id, author string, ok bool) {
	if len(w.tweeted) == 0 {
		return "", "", false
	}
	e := w.tweeted[rng.Intn(len(w.tweeted))]
	for i := 0; i < len(e); i++ {
		if e[i] == 0 {
			return e[:i], e[i+1:], true
		}
	}
	return "", "", false
}

// Next implements Workload: Tweet 15%, Retweet 10%, DelTweet 5%, Follow
// 5%, Unfollow 5%, AddUser 2%, RemUser 3%, Timeline 55%.
func (w *TwitterWorkload) Next(rng *rand.Rand, site clock.ReplicaID) OpSpec {
	app := w.App
	u := w.user(rng.Intn(w.Users))
	v := w.user(rng.Intn(w.Users))
	x := rng.Float64()
	switch {
	case x < 0.15:
		id := w.newTweetID()
		w.tweeted = append(w.tweeted, id+"\x00"+u)
		return OpSpec{Label: "Tweet", Reads: 1, IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn { return app.Tweet(r, u, id, "hello world") }}
	case x < 0.25:
		id, author, ok := w.randTweet(rng)
		if !ok {
			break
		}
		return OpSpec{Label: "Retweet", Reads: 1, IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn { return app.Retweet(r, u, id, author) }}
	case x < 0.30:
		id, author, ok := w.randTweet(rng)
		if !ok {
			break
		}
		return OpSpec{Label: "Del. Tweet", IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn { return app.DelTweet(r, id, author) }}
	case x < 0.35:
		return OpSpec{Label: "Follow", IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn { return app.Follow(r, u, v) }}
	case x < 0.40:
		return OpSpec{Label: "Unfollow", IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn { return app.Unfollow(r, u, v) }}
	case x < 0.42:
		fresh := fmt.Sprintf("user-new-%06d", rng.Int63n(1e6))
		return OpSpec{Label: "Add user", IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn { return app.AddUser(r, fresh) }}
	case x < 0.45:
		return OpSpec{Label: "Rem user", Reads: 1, IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn { return app.RemUser(r, u) }}
	}
	return OpSpec{Label: "Timeline", Reads: 3,
		Exec: func(r runtime.Replica) *store.Txn {
			_, tx := app.ReadTimeline(r, u)
			return tx
		}}
}

// TicketWorkload drives the paper's Fig. 7 experiment: ticket purchases
// against a pool of events, mixed with event views (which trigger the
// compensations under IPA).
type TicketWorkload struct {
	App    *ticket.App
	Events int
	// BuyFraction is the probability of a purchase (vs a view).
	BuyFraction float64
}

// NewTicketWorkload builds the workload.
func NewTicketWorkload(app *ticket.App, events int) *TicketWorkload {
	return &TicketWorkload{App: app, Events: events, BuyFraction: 0.5}
}

func (w *TicketWorkload) event(i int) string { return fmt.Sprintf("event-%03d", i) }

// EventNames lists the event identifiers.
func (w *TicketWorkload) EventNames() []string {
	out := make([]string, w.Events)
	for i := range out {
		out[i] = w.event(i)
	}
	return out
}

// Seed creates the events at every replica.
func (w *TicketWorkload) Seed(c runtime.Cluster) {
	w.App.Setup(c, w.EventNames())
}

// Next implements Workload.
func (w *TicketWorkload) Next(rng *rand.Rand, site clock.ReplicaID) OpSpec {
	app := w.App
	e := w.event(rng.Intn(w.Events))
	buyer := fmt.Sprintf("buyer-%s", site)
	if rng.Float64() < w.BuyFraction {
		return OpSpec{Label: "Buy", IsWrite: true,
			Exec: func(r runtime.Replica) *store.Txn {
				_, tx := app.Buy(r, buyer, e)
				return tx
			}}
	}
	return OpSpec{Label: "View", Reads: 1,
		Exec: func(r runtime.Replica) *store.Txn {
			_, tx := app.View(r, e)
			return tx
		}}
}

// NewPaperCluster builds the paper's three-site deployment.
func NewPaperCluster(seed int64) (*wan.Sim, *store.Cluster, *wan.Latency) {
	sim := wan.NewSim(seed)
	lat := wan.PaperTopology()
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	return sim, store.NewCluster(sim, lat, ids), lat
}
