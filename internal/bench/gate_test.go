package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"ipa/internal/harness"
	"ipa/internal/loadgen"
)

func engineExp(perf map[string]Perf) *Experiment {
	return &Experiment{ID: "engine", Perf: perf}
}

func pair(compiled, interpreted float64) map[string]Perf {
	return map[string]Perf{
		"app/compiled":    {OpsPerSec: compiled},
		"app/interpreted": {OpsPerSec: interpreted},
	}
}

func TestEngineSpeedups(t *testing.T) {
	r, err := EngineSpeedups(engineExp(pair(200, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if r["app"] != 2.0 {
		t.Fatalf("speedup = %v, want 2.0", r["app"])
	}
	if _, err := EngineSpeedups(engineExp(map[string]Perf{"app/compiled": {OpsPerSec: 200}})); err == nil {
		t.Fatal("missing interpreted entry not detected")
	}
	if _, err := EngineSpeedups(engineExp(map[string]Perf{"serve": {OpsPerSec: 200}})); err == nil {
		t.Fatal("experiment without executor pairs not detected")
	}
}

func TestCheckEngineBaseline(t *testing.T) {
	base := engineExp(pair(200, 100)) // 2.0x baseline

	// Within tolerance: 1.7x against 2.0x at 20% (floor 1.6x) passes.
	if err := CheckEngineBaseline(engineExp(pair(170, 100)), base, 0.20); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	// Regressed: 1.5x is below the 1.6x floor.
	err := CheckEngineBaseline(engineExp(pair(150, 100)), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "app") {
		t.Fatalf("regression not caught: %v", err)
	}
	// Absolute floor: slower than the interpreter fails even when the
	// baseline ratio is low enough that the relative check would pass.
	lowBase := engineExp(pair(110, 100)) // 1.1x baseline, floor 0.88x
	err = CheckEngineBaseline(engineExp(pair(90, 100)), lowBase, 0.20)
	if err == nil || !strings.Contains(err.Error(), "slower than the interpreter") {
		t.Fatalf("sub-1x ratio not caught: %v", err)
	}
	// A spec missing from the current run must fail, not silently pass.
	err = CheckEngineBaseline(engineExp(pair(200, 100)), engineExp(map[string]Perf{
		"app/compiled": {OpsPerSec: 200}, "app/interpreted": {OpsPerSec: 100},
		"gone/compiled": {OpsPerSec: 200}, "gone/interpreted": {OpsPerSec: 100},
	}), 0.20)
	if err == nil || !strings.Contains(err.Error(), "gone") {
		t.Fatalf("missing spec not caught: %v", err)
	}
	// Specs only in current (new spec, baseline not yet refreshed) pass.
	cur := engineExp(map[string]Perf{
		"app/compiled": {OpsPerSec: 200}, "app/interpreted": {OpsPerSec: 100},
		"new/compiled": {OpsPerSec: 120}, "new/interpreted": {OpsPerSec: 100},
	})
	if err := CheckEngineBaseline(cur, base, 0.20); err != nil {
		t.Fatalf("new spec without baseline failed the gate: %v", err)
	}
}

// TestEngineBaselineFile pins the committed baseline artifact: it must
// parse, carry an executor pair for every spec the engine experiment
// measures, and hold a compiled advantage on each — so the CI gate
// compares against real, current data.
func TestEngineBaselineFile(t *testing.T) {
	e, err := ReadExperimentJSON(filepath.Join("testdata", "BENCH_engine_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	ratios, err := EngineSpeedups(e)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := engineSpecs()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		r, ok := ratios[s.name]
		if !ok {
			t.Errorf("baseline has no executor pair for %s — refresh it (see cmd/benchgate)", s.name)
			continue
		}
		if r <= 1 {
			t.Errorf("baseline records no compiled advantage for %s (%.2fx)", s.name, r)
		}
	}
}

// wireExp builds a wire experiment with the given per-direction rates
// and allocation counts (gob vs v2) plus bytes/txn.
func wireExp(encGob, encV2, decGob, decV2, allocGob, allocV2, bytesGob, bytesV2 float64) *Experiment {
	return &Experiment{ID: "wire", Perf: map[string]Perf{
		"encode/gob":        {OpsPerSec: encGob},
		"encode/v2":         {OpsPerSec: encV2},
		"decode/gob":        {OpsPerSec: decGob},
		"decode/v2":         {OpsPerSec: decV2},
		"encode_allocs/gob": {OpsPerSec: allocGob},
		"encode_allocs/v2":  {OpsPerSec: 0},
		"decode_allocs/gob": {OpsPerSec: allocGob},
		"decode_allocs/v2":  {OpsPerSec: allocV2},
		"bytes_per_txn/gob": {OpsPerSec: bytesGob},
		"bytes_per_txn/v2":  {OpsPerSec: bytesV2},
	}}
}

func TestWireSpeedups(t *testing.T) {
	e := wireExp(100, 1000, 100, 500, 300, 100, 230, 90)
	r, err := WireSpeedups(e)
	if err != nil {
		t.Fatal(err)
	}
	if r["encode"] != 10.0 || r["decode"] != 5.0 {
		t.Fatalf("speedups = %v, want encode 10x decode 5x", r)
	}
	// The allocs and bytes keys must not be mistaken for throughput pairs.
	if len(r) != 2 {
		t.Fatalf("unexpected ratio keys: %v", r)
	}
	a, err := WireAllocImprovement(e)
	if err != nil {
		t.Fatal(err)
	}
	if a != 6.0 { // (300+300)/(0+100)
		t.Fatalf("alloc improvement = %v, want 6.0", a)
	}
	if _, err := WireSpeedups(&Experiment{ID: "wire", Perf: map[string]Perf{"encode/v2": {OpsPerSec: 1}}}); err == nil {
		t.Fatal("missing gob entry not detected")
	}
}

func TestCheckWireBaseline(t *testing.T) {
	base := wireExp(100, 1000, 100, 500, 300, 100, 230, 90) // 10x/5x, 6x allocs

	// Identical run passes.
	if err := CheckWireBaseline(wireExp(100, 1000, 100, 500, 300, 100, 230, 90), base, 0.20); err != nil {
		t.Fatalf("identical run failed the gate: %v", err)
	}
	// Decode throughput regressed below tolerance: 3.5x vs baseline 5x at 20%.
	err := CheckWireBaseline(wireExp(100, 1000, 100, 350, 300, 100, 230, 90), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatalf("decode regression not caught: %v", err)
	}
	// Absolute floor: 1.9x encode fails even against a permissive baseline.
	lowBase := wireExp(100, 210, 100, 500, 300, 100, 230, 90)
	err = CheckWireBaseline(wireExp(100, 190, 100, 500, 300, 100, 230, 90), lowBase, 0.20)
	if err == nil || !strings.Contains(err.Error(), "absolute floor") {
		t.Fatalf("sub-2x encode not caught: %v", err)
	}
	// Allocation improvement collapsed: v2 allocating like gob fails.
	err = CheckWireBaseline(wireExp(100, 1000, 100, 500, 300, 290, 230, 90), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "allocs") {
		t.Fatalf("alloc regression not caught: %v", err)
	}
	// Frame growth: v2 bytes/txn past baseline + tolerance fails.
	err = CheckWireBaseline(wireExp(100, 1000, 100, 500, 300, 100, 230, 120), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "bytes/txn") {
		t.Fatalf("frame growth not caught: %v", err)
	}
	// v2 frames at least as large as gob fail outright.
	err = CheckWireBaseline(wireExp(100, 1000, 100, 500, 300, 100, 230, 230), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "no smaller than gob") {
		t.Fatalf("v2-not-compact not caught: %v", err)
	}
}

// TestWireBaselineFile pins the committed baseline artifact: it must
// parse and already clear the absolute floors the gate enforces, so CI
// compares against real, current data.
func TestWireBaselineFile(t *testing.T) {
	e, err := ReadExperimentJSON(filepath.Join("testdata", "BENCH_wire_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	ratios, err := WireSpeedups(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"encode", "decode"} {
		if ratios[dir] < wireSpeedupFloor {
			t.Errorf("baseline %s ratio %.2fx under the %.1fx floor — refresh it (see cmd/benchgate)", dir, ratios[dir], wireSpeedupFloor)
		}
	}
	if a, err := WireAllocImprovement(e); err != nil {
		t.Error(err)
	} else if a < wireAllocFloor {
		t.Errorf("baseline alloc improvement %.1fx under the %.1fx floor", a, wireAllocFloor)
	}
	if err := CheckWireBaseline(e, e, 0.20); err != nil {
		t.Errorf("baseline does not pass its own gate: %v", err)
	}
}

// recoveryExp builds a recovery experiment with one durable/memory pair.
func recoveryExp(durable, memory float64) *Experiment {
	return &Experiment{ID: "recovery", Perf: map[string]Perf{
		"app/durable": {OpsPerSec: durable},
		"app/memory":  {OpsPerSec: memory},
	}}
}

func TestDurableServeRatios(t *testing.T) {
	r, err := DurableServeRatios(recoveryExp(50, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if r["app"] != 0.05 {
		t.Fatalf("ratio = %v, want 0.05", r["app"])
	}
	if _, err := DurableServeRatios(&Experiment{ID: "recovery", Perf: map[string]Perf{"app/durable": {OpsPerSec: 50}}}); err == nil {
		t.Fatal("missing memory entry not detected")
	}
	if _, err := DurableServeRatios(&Experiment{ID: "recovery", Perf: map[string]Perf{"serve": {OpsPerSec: 1}}}); err == nil {
		t.Fatal("experiment without durable pairs not detected")
	}
}

func TestCheckRecoveryBaseline(t *testing.T) {
	base := recoveryExp(50, 1000) // 5% baseline

	// Within tolerance: 4.5% against 5% at 20% (floor 4%) passes.
	if err := CheckRecoveryBaseline(recoveryExp(45, 1000), base, 0.20); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	// Regressed: 3% is below the 4% floor.
	err := CheckRecoveryBaseline(recoveryExp(30, 1000), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "app") {
		t.Fatalf("regression not caught: %v", err)
	}
	// Absolute floor: a collapse below durableServeFloor fails even
	// against a baseline low enough for the relative check to pass.
	lowBase := recoveryExp(5.5, 1000) // 0.55%, relative floor 0.44%
	err = CheckRecoveryBaseline(recoveryExp(4.5, 1000), lowBase, 0.20)
	if err == nil || !strings.Contains(err.Error(), "absolute floor") {
		t.Fatalf("collapse under the absolute floor not caught: %v", err)
	}
	// An app missing from the current run must fail, not silently pass.
	err = CheckRecoveryBaseline(recoveryExp(50, 1000), &Experiment{ID: "recovery", Perf: map[string]Perf{
		"app/durable": {OpsPerSec: 50}, "app/memory": {OpsPerSec: 1000},
		"gone/durable": {OpsPerSec: 50}, "gone/memory": {OpsPerSec: 1000},
	}}, 0.20)
	if err == nil || !strings.Contains(err.Error(), "gone") {
		t.Fatalf("missing app not caught: %v", err)
	}
}

// TestRecoveryBaselineFile pins the committed baseline artifact: it must
// parse, carry a durable/memory pair for every portable app, and pass
// its own gate, so CI compares against real, current data.
func TestRecoveryBaselineFile(t *testing.T) {
	e, err := ReadExperimentJSON(filepath.Join("testdata", "BENCH_recovery_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	ratios, err := DurableServeRatios(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range harness.PortableApps() {
		r, ok := ratios[app]
		if !ok {
			t.Errorf("baseline has no durable/memory pair for %s — refresh it (see cmd/benchgate)", app)
			continue
		}
		if r < durableServeFloor {
			t.Errorf("baseline ratio for %s (%.1f%%) under the absolute floor", app, 100*r)
		}
	}
	if err := CheckRecoveryBaseline(e, e, 0.20); err != nil {
		t.Errorf("baseline does not pass its own gate: %v", err)
	}
}

// loadgenExp builds a minimal loadgen experiment with the given steady
// window; the ramp phases are present but deliberately terrible, since
// they must never gate.
func loadgenExp(opsPerSec, p99Ms float64, ops, errs int64) *Experiment {
	return &Experiment{
		ID: "loadgen",
		Load: &loadgen.Report{Phases: []loadgen.PhaseStats{
			{Phase: loadgen.PhaseRampUp, OpsPerSec: 1, P99Ms: 1e9},
			{Phase: loadgen.PhaseSteady, OpsPerSec: opsPerSec, P99Ms: p99Ms, Ops: ops, Errors: errs},
			{Phase: loadgen.PhaseRampDown, OpsPerSec: 1, P99Ms: 1e9},
		}},
	}
}

func TestCheckLoadgenBaseline(t *testing.T) {
	base := loadgenExp(1000, 10, 5000, 0)

	// Within tolerance on every axis.
	if err := CheckLoadgenBaseline(loadgenExp(900, 12, 4500, 0), base, 0.20); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	// Throughput below the floor.
	err := CheckLoadgenBaseline(loadgenExp(700, 10, 3500, 0), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "throughput") {
		t.Fatalf("throughput regression not caught: %v", err)
	}
	// p99 over baseline x headroom x (1 + tolerance).
	err = CheckLoadgenBaseline(loadgenExp(1000, 10*loadgenP99Headroom*1.2+1, 5000, 0), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "latency") {
		t.Fatalf("p99 blow-up not caught: %v", err)
	}
	// Error rate over the absolute ceiling: 100 errors on 5000 ops = 2%.
	err = CheckLoadgenBaseline(loadgenExp(1000, 10, 5000, 100), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Fatalf("error-rate ceiling not enforced: %v", err)
	}
	// The terrible ramp windows never gate: identical steady passes.
	if err := CheckLoadgenBaseline(loadgenExp(1000, 10, 5000, 0), base, 0.0); err != nil {
		t.Fatalf("ramp windows leaked into the gate: %v", err)
	}
	// An artifact without an embedded report is unusable, not green.
	if err := CheckLoadgenBaseline(&Experiment{ID: "loadgen"}, base, 0.20); err == nil {
		t.Fatal("reportless artifact passed the gate")
	}
}

func TestHostWarnings(t *testing.T) {
	h := func(cpus int, gov string) *Experiment {
		return &Experiment{ID: "loadgen", Host: &loadgen.HostMeta{
			GoVersion: gov, OS: "linux", Arch: "amd64", NumCPU: cpus, GOMAXPROCS: cpus,
		}}
	}
	if w := HostWarnings(h(8, "go1.24.0"), h(8, "go1.24.0")); len(w) != 0 {
		t.Fatalf("identical hosts warned: %v", w)
	}
	w := HostWarnings(h(8, "go1.24.0"), h(64, "go1.23.1"))
	if len(w) != 2 {
		t.Fatalf("expected cpu + toolchain warnings, got %v", w)
	}
	// Pre-metadata artifacts (old baselines) compare silently.
	if w := HostWarnings(&Experiment{}, h(8, "go1.24.0")); len(w) != 0 {
		t.Fatalf("nil host warned: %v", w)
	}
}

// TestGateDispatch pins the shared entry point: every gated ID routes to
// its check, mismatched IDs and ungated IDs are refused.
func TestGateDispatch(t *testing.T) {
	base := loadgenExp(1000, 10, 5000, 0)
	var out strings.Builder
	if err := Gate(loadgenExp(950, 11, 4800, 0), base, 0.20, &out); err != nil {
		t.Fatalf("loadgen dispatch failed: %v", err)
	}
	if !strings.Contains(out.String(), "throughput") {
		t.Errorf("gate summary missing throughput line:\n%s", out.String())
	}
	if err := Gate(engineExp(pair(200, 100)), engineExp(pair(200, 100)), 0.20, nil); err != nil {
		t.Fatalf("engine dispatch failed: %v", err)
	}
	if err := Gate(loadgenExp(1000, 10, 5000, 0), engineExp(pair(200, 100)), 0.20, nil); err == nil {
		t.Fatal("cross-ID gating accepted")
	}
	if err := Gate(&Experiment{ID: "fig4"}, &Experiment{ID: "fig4"}, 0.20, nil); err == nil {
		t.Fatal("ungated experiment accepted")
	}
}

// TestLoadgenBaselineFile pins the committed baseline artifact: it must
// parse, hold a real steady window with a clean error rate, record its
// host, and pass its own gate.
func TestLoadgenBaselineFile(t *testing.T) {
	e, err := ReadExperimentJSON(filepath.Join("testdata", "BENCH_loadgen_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	steady, err := LoadgenSteady(e)
	if err != nil {
		t.Fatal(err)
	}
	if steady.OpsPerSec <= 0 || steady.P99Ms <= 0 {
		t.Errorf("baseline steady window is empty: %+v", steady)
	}
	if e.Load.ErrorRate() > loadgenErrorRateCeiling {
		t.Errorf("baseline error rate %.4f over the ceiling — refresh it", e.Load.ErrorRate())
	}
	if e.Host == nil {
		t.Errorf("baseline records no host metadata")
	}
	if err := CheckLoadgenBaseline(e, e, 0.20); err != nil {
		t.Errorf("baseline does not pass its own gate: %v", err)
	}
}
