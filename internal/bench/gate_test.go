package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func engineExp(perf map[string]Perf) *Experiment {
	return &Experiment{ID: "engine", Perf: perf}
}

func pair(compiled, interpreted float64) map[string]Perf {
	return map[string]Perf{
		"app/compiled":    {OpsPerSec: compiled},
		"app/interpreted": {OpsPerSec: interpreted},
	}
}

func TestEngineSpeedups(t *testing.T) {
	r, err := EngineSpeedups(engineExp(pair(200, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if r["app"] != 2.0 {
		t.Fatalf("speedup = %v, want 2.0", r["app"])
	}
	if _, err := EngineSpeedups(engineExp(map[string]Perf{"app/compiled": {OpsPerSec: 200}})); err == nil {
		t.Fatal("missing interpreted entry not detected")
	}
	if _, err := EngineSpeedups(engineExp(map[string]Perf{"serve": {OpsPerSec: 200}})); err == nil {
		t.Fatal("experiment without executor pairs not detected")
	}
}

func TestCheckEngineBaseline(t *testing.T) {
	base := engineExp(pair(200, 100)) // 2.0x baseline

	// Within tolerance: 1.7x against 2.0x at 20% (floor 1.6x) passes.
	if err := CheckEngineBaseline(engineExp(pair(170, 100)), base, 0.20); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}
	// Regressed: 1.5x is below the 1.6x floor.
	err := CheckEngineBaseline(engineExp(pair(150, 100)), base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "app") {
		t.Fatalf("regression not caught: %v", err)
	}
	// Absolute floor: slower than the interpreter fails even when the
	// baseline ratio is low enough that the relative check would pass.
	lowBase := engineExp(pair(110, 100)) // 1.1x baseline, floor 0.88x
	err = CheckEngineBaseline(engineExp(pair(90, 100)), lowBase, 0.20)
	if err == nil || !strings.Contains(err.Error(), "slower than the interpreter") {
		t.Fatalf("sub-1x ratio not caught: %v", err)
	}
	// A spec missing from the current run must fail, not silently pass.
	err = CheckEngineBaseline(engineExp(pair(200, 100)), engineExp(map[string]Perf{
		"app/compiled": {OpsPerSec: 200}, "app/interpreted": {OpsPerSec: 100},
		"gone/compiled": {OpsPerSec: 200}, "gone/interpreted": {OpsPerSec: 100},
	}), 0.20)
	if err == nil || !strings.Contains(err.Error(), "gone") {
		t.Fatalf("missing spec not caught: %v", err)
	}
	// Specs only in current (new spec, baseline not yet refreshed) pass.
	cur := engineExp(map[string]Perf{
		"app/compiled": {OpsPerSec: 200}, "app/interpreted": {OpsPerSec: 100},
		"new/compiled": {OpsPerSec: 120}, "new/interpreted": {OpsPerSec: 100},
	})
	if err := CheckEngineBaseline(cur, base, 0.20); err != nil {
		t.Fatalf("new spec without baseline failed the gate: %v", err)
	}
}

// TestEngineBaselineFile pins the committed baseline artifact: it must
// parse, carry an executor pair for every spec the engine experiment
// measures, and hold a compiled advantage on each — so the CI gate
// compares against real, current data.
func TestEngineBaselineFile(t *testing.T) {
	e, err := ReadExperimentJSON(filepath.Join("testdata", "BENCH_engine_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	ratios, err := EngineSpeedups(e)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := engineSpecs()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		r, ok := ratios[s.name]
		if !ok {
			t.Errorf("baseline has no executor pair for %s — refresh it (see cmd/benchgate)", s.name)
			continue
		}
		if r <= 1 {
			t.Errorf("baseline records no compiled advantage for %s (%.2fx)", s.name, r)
		}
	}
}
