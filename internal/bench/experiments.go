package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"ipa/internal/analysis"
	"ipa/internal/apps/ticket"
	"ipa/internal/apps/tournament"
	"ipa/internal/apps/tpcw"
	"ipa/internal/apps/twitter"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/wan"
)

// ExpOptions scales the experiments: tests use Quick, the CLI the full
// parameters.
type ExpOptions struct {
	// Duration of each measured run (virtual time).
	Duration wan.Time
	// ClientSweep is the clients-per-site ladder for throughput sweeps.
	ClientSweep []int
	// FixedClients is the load for per-operation latency figures.
	FixedClients int
	// Seed drives all PRNGs.
	Seed int64
}

// DefaultExpOptions returns the full-scale parameters.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{
		Duration:     20 * wan.Second,
		ClientSweep:  []int{1, 2, 4, 8, 16, 32, 64, 96},
		FixedClients: 8,
		Seed:         42,
	}
}

// QuickExpOptions returns reduced parameters for tests.
func QuickExpOptions() ExpOptions {
	return ExpOptions{
		Duration:     3 * wan.Second,
		ClientSweep:  []int{2, 8, 24},
		FixedClients: 4,
		Seed:         42,
	}
}

// tournamentVariant maps configurations to the app variant they run:
// Strong and Indigo prevent conflicts by coordination, so they run the
// unmodified operations; IPA runs the patched ones.
func tournamentVariant(cfg Config) tournament.Variant {
	if cfg == IPA {
		return tournament.IPA
	}
	return tournament.Causal
}

// runTournament performs one measured run and returns the driver.
func runTournament(cfg Config, clients int, opts ExpOptions) *Driver {
	sim, cluster, lat := NewPaperCluster(opts.Seed + int64(cfg)*1000 + int64(clients))
	app := tournament.New(tournamentVariant(cfg))
	w := NewTournamentWorkload(app)
	w.Seed(runtime.NewSimCluster(cluster))
	sim.Run() // replicate the seed data before measuring

	d := NewDriver(sim, cluster, lat, cfg)
	if cfg == Indigo {
		w.GrantReservations(d.Res)
	}
	d.Run(w.Next, clients, opts.Duration)
	return d
}

// Fig4 reproduces "Peak throughput for Tournament": latency vs throughput
// for the four configurations as the client population grows.
func Fig4(opts ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "fig4",
		Title:  "Tournament: latency vs throughput (Strong, Indigo, IPA, Causal)",
		XLabel: "throughput TP/s",
		YLabel: "latency ms",
	}
	for _, cfg := range []Config{Strong, Indigo, IPA, Causal} {
		s := Series{Name: cfg.String()}
		for _, clients := range opts.ClientSweep {
			d := runTournament(cfg, clients, opts)
			s.Points = append(s.Points, Point{
				X:   d.Throughput(opts.Duration),
				Y:   d.Rec.Mean(""),
				Aux: map[string]float64{"clients/site": float64(clients)},
			})
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"expected shape: Strong worst latency (2/3 of updates pay a WAN round trip); Causal best;",
		"IPA slightly above Causal (extra effects); Indigo close to IPA with a lower knee (reservation transfers).")
	return e
}

// Fig5 reproduces "Latency of individual operations in Tournament" for
// Indigo, IPA and Causal (Strong omitted, as in the paper).
func Fig5(opts ExpOptions) *Experiment {
	ops := []string{"Begin", "Finish", "Remove", "DoMatch", "Enroll", "Disenroll", "Status"}
	e := &Experiment{
		ID:     "fig5",
		Title:  "Tournament: per-operation latency",
		XLabel: "operation",
		YLabel: "latency ms",
		XTicks: ops,
	}
	for _, cfg := range []Config{Indigo, IPA, Causal} {
		d := runTournament(cfg, opts.FixedClients, opts)
		s := Series{Name: cfg.String()}
		for i, op := range ops {
			s.Points = append(s.Points, Point{
				X: float64(i),
				Y: d.Rec.Mean(op),
				Aux: map[string]float64{
					"stddev":  d.Rec.Stddev(op),
					"samples": float64(d.Rec.Count(op)),
				},
			})
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"expected shape: Indigo mean and stddev above IPA on ops needing exclusive reservations",
		"(Begin/Finish/Remove); IPA slightly above Causal on repaired write ops; Status identical.")
	return e
}

// Fig6 reproduces "Latency of individual operations in Twitter" for the
// Causal baseline and the two IPA strategies.
func Fig6(opts ExpOptions) *Experiment {
	ops := []string{"Tweet", "Retweet", "Del. Tweet", "Follow", "Unfollow", "Add user", "Rem user", "Timeline"}
	e := &Experiment{
		ID:     "fig6",
		Title:  "Twitter: per-operation latency (Causal, Add-Wins, Rem-Wins)",
		XLabel: "operation",
		YLabel: "latency ms",
		XTicks: ops,
	}
	for _, strat := range []twitter.Strategy{twitter.Causal, twitter.AddWins, twitter.RemWins} {
		sim, cluster, lat := NewPaperCluster(opts.Seed + int64(strat)*77)
		app := twitter.New(strat)
		w := NewTwitterWorkload(app)
		w.Seed(runtime.NewSimCluster(cluster), rand.New(rand.NewSource(opts.Seed)))
		sim.Run()

		d := NewDriver(sim, cluster, lat, Causal) // strategies all run on causal
		d.Run(w.Next, opts.FixedClients, opts.Duration)

		name := map[twitter.Strategy]string{
			twitter.Causal: "Causal", twitter.AddWins: "Add-Wins", twitter.RemWins: "Rem-Wins",
		}[strat]
		s := Series{Name: name}
		for i, op := range ops {
			s.Points = append(s.Points, Point{
				X: float64(i),
				Y: d.Rec.Mean(op),
				Aux: map[string]float64{
					"stddev":  d.Rec.Stddev(op),
					"samples": float64(d.Rec.Count(op)),
				},
			})
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"expected shape: Add-Wins pays on Tweet/Retweet (touch restores); Rem-Wins pays on Timeline",
		"reads (lazy compensation) and Rem user (wildcard purge); Causal cheapest everywhere.")
	return e
}

// Fig7 reproduces "Peak throughput for Ticket": latency vs throughput for
// Causal and IPA, with the count of invariant violations observed under
// Causal (the red dots).
func Fig7(opts ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "fig7",
		Title:  "Ticket: latency vs throughput, with invariant violations",
		XLabel: "throughput TP/s",
		YLabel: "latency ms",
	}
	const capacity = 40
	const events = 10
	for _, cfg := range []Config{Causal, IPA} {
		variant := ticket.Causal
		if cfg == IPA {
			variant = ticket.IPA
		}
		s := Series{Name: cfg.String()}
		for _, clients := range opts.ClientSweep {
			sim, cluster, lat := NewPaperCluster(opts.Seed + int64(cfg)*333 + int64(clients))
			app := ticket.New(variant, capacity)
			w := NewTicketWorkload(app, events)
			w.Seed(runtime.NewSimCluster(cluster))
			sim.Run()

			d := NewDriver(sim, cluster, lat, Causal) // both run on causal consistency
			d.Run(w.Next, clients, opts.Duration)
			sim.Run() // converge before counting violations

			violations := 0
			for _, ev := range w.EventNames() {
				violations += app.Oversold(cluster.Replica(cluster.Replicas()[0]), ev)
			}
			if cfg == IPA && violations > 0 {
				// Remaining overshoot is trimmed by the next read; issue
				// the reads (as the application would) and re-count.
				for _, ev := range w.EventNames() {
					app.View(cluster.Replica(cluster.Replicas()[0]), ev)
				}
				sim.Run()
				violations = 0
				for _, ev := range w.EventNames() {
					violations += app.Oversold(cluster.Replica(cluster.Replicas()[0]), ev)
				}
			}
			s.Points = append(s.Points, Point{
				X: d.Throughput(opts.Duration),
				Y: d.Rec.Mean(""),
				Aux: map[string]float64{
					"violations":   float64(violations),
					"clients/site": float64(clients),
				},
			})
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"expected shape: violations under Causal grow with contention/throughput; IPA keeps 0",
		"at slightly higher latency (compensations execute on reads).")
	return e
}

// Fig8a reproduces the single-object microbenchmark: speed-up of an IPA
// operation executing k extra updates on ONE key versus the original
// operation under Strong.
func Fig8a(opts ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "fig8a",
		Title:  "Micro: speed-up IPA/Strong vs updates on a single key",
		XLabel: "ops per key",
		YLabel: "speed-up",
	}
	cost := DefaultCostModel()
	strongLat := strongMeanLatency(cost, 1, 1)
	s := Series{Name: "IPA/Strong"}
	for _, k := range []int{1, 2, 64, 128, 512, 1024, 2048} {
		ipaLat := cost.Service(1, k)
		s.Points = append(s.Points, Point{
			X: float64(k),
			Y: float64(strongLat) / float64(ipaLat),
			Aux: map[string]float64{
				"ipa ms":    ipaLat.Millis(),
				"strong ms": strongLat.Millis(),
			},
		})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"expected shape: ~28x at 1 update, decaying as updates grow; ~40ms absolute at 2048 updates.")
	return e
}

// Fig8b reproduces the multi-object microbenchmark: the original op reads
// k objects and writes one (under Strong); the IPA version writes all k
// locally. The crossover where Strong wins lands near 64 keys.
func Fig8b(opts ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "fig8b",
		Title:  "Micro: speed-up IPA/Strong vs number of updated keys",
		XLabel: "updated keys",
		YLabel: "speed-up",
	}
	cost := DefaultCostModel()
	s := Series{Name: "IPA/Strong"}
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		ipaLat := cost.Service(k+k, k)               // read k, write k
		strongLat := strongMeanLatency(cost, k+1, 1) // read k, write 1, forwarded
		s.Points = append(s.Points, Point{
			X: float64(k),
			Y: float64(strongLat) / float64(ipaLat),
			Aux: map[string]float64{
				"ipa ms":    ipaLat.Millis(),
				"strong ms": strongLat.Millis(),
			},
		})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"expected shape: speed-up decays with keys; crossover (speed-up < 1) near 64 keys.")
	return e
}

// strongMeanLatency is the mean latency of the op under Strong across the
// three client sites (clients are uniform across sites; the primary is
// us-east, so 1/3 of clients pay nothing and 2/3 pay their RTT).
func strongMeanLatency(cost CostModel, keys, updates int) wan.Time {
	lat := wan.PaperTopology()
	sites := wan.Sites()
	var sum wan.Time
	for _, s := range sites {
		sum += lat.RTT(s, wan.USEast)
	}
	// Intra-site RTT for the local client is effectively the local
	// latency already included in the service model; use the raw mean.
	return sum/wan.Time(len(sites)) + cost.Service(keys, updates)
}

// Fig9 reproduces "Latency of operations with varying reservation
// contention": IPA's latency is flat; Indigo's grows with the fraction of
// operations that must fetch a reservation held remotely. The N/A column
// is Indigo with no reservations needed at all.
func Fig9(opts ExpOptions) *Experiment {
	ticks := []string{"N/A", "0", "2", "5", "10", "20", "50"}
	pcts := []float64{-1, 0, 0.02, 0.05, 0.10, 0.20, 0.50}
	e := &Experiment{
		ID:     "fig9",
		Title:  "Reservation contention: IPA vs Indigo",
		XLabel: "contention %",
		YLabel: "latency ms",
		XTicks: ticks,
	}
	cost := DefaultCostModel()
	lat := wan.PaperTopology()
	sites := wan.Sites()
	rng := rand.New(rand.NewSource(opts.Seed))

	// IPA: the op always executes locally with its extra effects
	// (3 keys / 3 updates, the repaired enroll footprint).
	ipaSeries := Series{Name: "IPA"}
	// Indigo: the original op (1 key / 1 update) plus, for contended
	// operations, an exclusive fetch from the current remote holder.
	indigoSeries := Series{Name: "Indigo"}

	const samples = 4000
	for i, pct := range pcts {
		ipaSeries.Points = append(ipaSeries.Points, Point{
			X: float64(i),
			Y: cost.Service(3, 3).Millis(),
		})
		var total float64
		for n := 0; n < samples; n++ {
			site := sites[rng.Intn(len(sites))]
			l := cost.Service(1, 1)
			if pct >= 0 && rng.Float64() < pct {
				// The reservation is currently held by a random other
				// replica: pay the round trip to revoke it.
				other := sites[rng.Intn(len(sites))]
				for other == site {
					other = sites[rng.Intn(len(sites))]
				}
				l += lat.RTT(site, other)
			}
			total += l.Millis()
		}
		indigoSeries.Points = append(indigoSeries.Points, Point{X: float64(i), Y: total / samples})
	}
	e.Series = append(e.Series, ipaSeries, indigoSeries)
	e.Notes = append(e.Notes,
		"expected shape: IPA flat (predictable latency); Indigo equals IPA near zero contention and",
		"rises steadily with the competing fraction.")
	return e
}

// Table1 reproduces the paper's Table 1: for each invariant class, whether
// plain weak consistency preserves it (I-Confluent) and how IPA handles
// it, plus which applications contain the class.
func Table1(opts analysis.Options) (*Experiment, error) {
	apps := []struct {
		name string
		spec *spec.Spec
	}{
		{"TPC", tpcw.Spec()},
		{"Tour", tournament.Spec()},
		{"Ticket", ticket.Spec()},
		{"Twitter", twitter.Spec()},
	}
	type row struct {
		class analysis.InvariantClass
		iconf analysis.Support
		ipa   analysis.Support
		apps  map[string]bool
	}
	rows := map[analysis.InvariantClass]*row{}
	for _, c := range analysis.AllClasses {
		rows[c] = &row{class: c, iconf: analysis.SupportNone, ipa: analysis.SupportNone, apps: map[string]bool{}}
	}
	for _, app := range apps {
		ccs, err := analysis.Classify(app.spec, opts)
		if err != nil {
			return nil, fmt.Errorf("classify %s: %w", app.name, err)
		}
		for _, summary := range analysis.SummarizeClasses(ccs) {
			if !summary.Present {
				continue
			}
			r := rows[summary.Class]
			r.apps[app.name] = true
			r.iconf = mergeSupport(r.iconf, summary.IConfluent)
			r.ipa = mergeSupport(r.ipa, summary.IPA)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-8s %-6s %-5s %-5s %-7s %-7s\n", "Inv. Type", "I-Conf.", "IPA", "TPC", "Tour", "Ticket", "Twitter")
	for _, c := range analysis.AllClasses {
		r := rows[c]
		cell := func(app string) string {
			if r.apps[app] {
				return "Yes"
			}
			return "—"
		}
		fmt.Fprintf(&b, "%-16s %-8s %-6s %-5s %-5s %-7s %-7s\n",
			c, r.iconf, r.ipa, cell("TPC"), cell("Tour"), cell("Ticket"), cell("Twitter"))
	}
	return &Experiment{
		ID:    "table1",
		Title: "Types of invariants present in applications",
		Text:  b.String(),
		Notes: []string{
			"paper expectation: Unique id / Aggreg. incl. I-Confluent; Numeric and Aggreg. const.",
			"handled by compensations (Comp.); Ref. integrity and Disjunctions repaired (Yes);",
			"Sequential id unsupported (No).",
		},
	}, nil
}

func mergeSupport(a, b analysis.Support) analysis.Support {
	if a == analysis.SupportNone {
		return b
	}
	if b == analysis.SupportNone {
		return a
	}
	rank := map[analysis.Support]int{analysis.SupportNo: 0, analysis.SupportComp: 1, analysis.SupportYes: 2}
	if rank[b] < rank[a] {
		return b
	}
	return a
}
