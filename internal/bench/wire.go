package bench

// The wire benchmark: wall-clock cost of the replication frame codecs —
// the v1 gob batch frame versus the v2 compact binary encoding — over a
// representative replication batch. The numbers CI tracks are the v2/gob
// throughput ratios (encode and decode) and the gob/v2 allocation
// improvement: ratios of two loops in the same process are stable across
// runner hardware where absolute ns/op are not, so the committed
// baseline (cmd/benchgate) gates the codec itself, not the machine.

import (
	"fmt"
	"runtime"
	"time"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// wireBatchTxns models a steady replication batch: a few dozen small
// transactions (adds with payloads, counter bumps, observed-state
// removes) per frame — the shape the netrepl batcher actually coalesces.
// It mirrors the benchmark fixture in internal/store/wire_bench_test.go
// so `go test -bench` and `ipabench -experiment wire` measure the same
// workload.
func wireBatchTxns(n int) []store.WireTxn {
	txns := make([]store.WireTxn, n)
	for i := range txns {
		seq := uint64(i + 1)
		tag := clock.EventID{Replica: "r1", Seq: seq}
		txns[i] = store.WireTxn{
			Origin:   "r1",
			Deps:     clock.Vector{"r1": seq - 1, "r2": 17, "r3": 9},
			FirstSeq: seq, LastSeq: seq,
			Updates: []store.Update{
				{Key: "t/enrolled", Op: crdt.AWAddOp{Elem: "p\x1fq", Tag: tag, Pay: "payload"}},
				{Key: "t/budget", Op: crdt.CounterOp{Delta: -1, Tag: tag}},
				{Key: "t/removed", Op: crdt.AWRemoveOp{Elem: "z", Tag: tag,
					Observed: map[string][]clock.EventID{"z": {{Replica: "r2", Seq: 4}}}}},
			},
		}
	}
	return txns
}

// wireMeasure runs fn in a closed loop for roughly the target duration
// and returns frames/sec plus the net heap allocations per call,
// measured over the whole loop with runtime.MemStats (the same quantity
// testing.AllocsPerRun reports, without importing testing into a
// binary).
func wireMeasure(target time.Duration, fn func() error) (opsPerSec, allocsPerOp float64, err error) {
	// Calibrate the iteration count on a short warm-up so the measured
	// loop runs near the target regardless of codec speed.
	const warm = 64
	start := time.Now()
	for i := 0; i < warm; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	per := time.Since(start) / warm
	if per <= 0 {
		per = time.Nanosecond
	}
	iters := int(target / per)
	if iters < 256 {
		iters = 256
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(iters) / elapsed.Seconds(),
		float64(after.Mallocs-before.Mallocs) / float64(iters),
		nil
}

// Wire measures the replication frame codecs head to head and emits the
// BENCH_wire.json artifact cmd/benchgate gates. Perf keys follow the
// suffix-pair convention of the other gated experiments:
//
//	encode/gob, encode/v2     frames/sec through each encoder
//	decode/gob, decode/v2     frames/sec through DecodeFrame
//	encode_allocs/*           heap allocations per encoded frame
//	decode_allocs/*           heap allocations per decoded frame
//	bytes_per_txn/*           frame bytes divided by batch size
func Wire(opts ExpOptions) (*Experiment, error) {
	batch := wireBatchTxns(32)
	target := 2 * time.Second
	if opts.Duration < 10*wan.Second { // quick parameters
		target = 300 * time.Millisecond
	}

	gobFrame, err := store.EncodeBatch(batch)
	if err != nil {
		return nil, fmt.Errorf("bench: wire: gob encode: %w", err)
	}
	v2Frame, err := store.EncodeBatchV2(batch)
	if err != nil {
		return nil, fmt.Errorf("bench: wire: v2 encode: %w", err)
	}

	enc := store.NewFrameEncoder(store.WireVersionV2)
	runs := []struct {
		key string
		fn  func() error
	}{
		{"encode/gob", func() error { _, err := store.EncodeBatch(batch); return err }},
		{"encode/v2", func() error { _, err := enc.Encode(batch); return err }},
		{"decode/gob", func() error { _, err := store.DecodeFrame(gobFrame); return err }},
		{"decode/v2", func() error { _, err := store.DecodeFrame(v2Frame); return err }},
	}

	e := &Experiment{
		ID:     "wire",
		Title:  "Replication wire: v2 binary codec vs gob (32-txn batch frames)",
		XLabel: "direction",
		YLabel: "frames/sec",
		XTicks: []string{"encode", "decode"},
		Perf:   map[string]Perf{},
	}
	gobSeries := Series{Name: "gob"}
	v2Series := Series{Name: "v2"}
	// Best of two rounds per loop: the gate tracks ratios, so GC pauses
	// on either side would read as a spurious regression; the max is the
	// less noisy estimator of the undisturbed rate. Allocations are taken
	// from the best round too — they are deterministic per codec.
	for i, r := range runs {
		var rate, allocs float64
		for round := 0; round < 2; round++ {
			rr, aa, err := wireMeasure(target, r.fn)
			if err != nil {
				return nil, fmt.Errorf("bench: wire: %s: %w", r.key, err)
			}
			if rr > rate {
				rate, allocs = rr, aa
			}
		}
		e.Perf[r.key] = Perf{OpsPerSec: rate}
		p := Point{X: float64(i / 2), Y: rate, Aux: map[string]float64{"allocs/op": allocs}}
		if i%2 == 0 {
			gobSeries.Points = append(gobSeries.Points, p)
			e.Perf[e.XTicks[i/2]+"_allocs/gob"] = Perf{OpsPerSec: allocs}
		} else {
			v2Series.Points = append(v2Series.Points, p)
			e.Perf[e.XTicks[i/2]+"_allocs/v2"] = Perf{OpsPerSec: allocs}
		}
	}
	e.Series = []Series{gobSeries, v2Series}

	e.Perf["bytes_per_txn/gob"] = Perf{OpsPerSec: float64(len(gobFrame)) / float64(len(batch))}
	e.Perf["bytes_per_txn/v2"] = Perf{OpsPerSec: float64(len(v2Frame)) / float64(len(batch))}

	sp, err := WireSpeedups(e)
	if err != nil {
		return nil, err
	}
	alloc, err := WireAllocImprovement(e)
	if err != nil {
		return nil, err
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("v2/gob throughput: encode %.1fx, decode %.1fx", sp["encode"], sp["decode"]),
		fmt.Sprintf("gob/v2 allocations (encode+decode combined): %.1fx fewer", alloc),
		fmt.Sprintf("frame bytes/txn: gob %.0f, v2 %.0f (%.0f%% of gob)",
			e.Perf["bytes_per_txn/gob"].OpsPerSec, e.Perf["bytes_per_txn/v2"].OpsPerSec,
			100*e.Perf["bytes_per_txn/v2"].OpsPerSec/e.Perf["bytes_per_txn/gob"].OpsPerSec),
	)
	return e, nil
}
