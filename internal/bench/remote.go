package bench

// The remote serving benchmark: drive an `ipa serve` server over the
// wire protocol and measure end-to-end throughput and latency, beside an
// in-process baseline of the same engine-executed application. The
// remote/in-process ratio is the cost of the serving layer itself
// (protocol parsing, socket hops, per-connection sessions) — cmd/benchgate
// gates it against a committed baseline, machine-independently, the same
// way the engine gate works.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ipa/internal/apps/tournament"
	"ipa/internal/clock"
	"ipa/internal/runtime"
	"ipa/internal/server"
	"ipa/internal/wan"
)

// ServeRemoteOptions shapes the remote serving benchmark.
type ServeRemoteOptions struct {
	// Addr is the server to drive. Empty self-hosts: the benchmark boots
	// its own netrepl-backed server on loopback, drives it, and shuts it
	// down — the reproducible configuration CI uses.
	Addr string
	// App is the mounted application to call. Default "tournament" (the
	// benchmark knows how to generate its workload); if the server does
	// not have it mounted, the benchmark MOUNTs the spec source itself.
	App string
	// Conns is the number of client connections. Default 2 (the serving
	// and client processes share cores in CI containers; more
	// connections measure scheduler churn, not the serving path).
	Conns int
	// Pipeline is the closed-loop batch depth per connection: send K
	// CALLs, flush, read K replies. Default 8.
	Pipeline int
	// Ops is the total measured CALLs across all connections. Default
	// 8000 (matching the in-process netrepl serve methodology: long
	// enough for steady state against the replication pipeline).
	Ops int
	// RatePerSec switches a connection from closed-loop to open-loop:
	// CALLs are issued at this paced rate per connection regardless of
	// replies, so recorded latency includes queueing delay. 0 = closed.
	RatePerSec int
	// Seed drives the workload generator.
	Seed int64
	// SkipInproc skips the in-process baseline run (useful against a
	// remote machine where a local baseline would not be comparable).
	SkipInproc bool
}

func (o ServeRemoteOptions) withDefaults() ServeRemoteOptions {
	if o.App == "" {
		o.App = "tournament"
	}
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 8
	}
	if o.Ops <= 0 {
		o.Ops = 8000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// ServeRemote runs the remote serving benchmark and, unless skipped, the
// in-process baseline of the same app on the same backend. The
// experiment's Perf map carries `<app>/remote` and `<app>/inproc`
// entries; ServeRemoteRatios/CheckServeRemoteBaseline gate their ratio.
func ServeRemote(opts ServeRemoteOptions) (*Experiment, error) {
	opts = opts.withDefaults()

	addr := opts.Addr
	var srv *server.Server
	var cluster runtime.Cluster
	if addr == "" {
		// Self-host: a 3-site netrepl cluster behind the server, the
		// same substrate the in-process baseline serves directly.
		ids := make([]clock.ReplicaID, 0, 3)
		for _, s := range wan.Sites() {
			ids = append(ids, clock.ReplicaID(s))
		}
		var err error
		cluster, err = runtime.NewNetCluster(ids, serveNetConfig())
		if err != nil {
			return nil, err
		}
		defer cluster.Close()
		srv = server.New(cluster, server.Config{})
		if _, err := srv.MountAnalyzed(tournament.Spec(), tournament.Analysis()); err != nil {
			return nil, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		defer srv.Shutdown()
		addr = srv.Addr()
	}

	rec, opsPerSec, stats, err := driveRemote(addr, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: serve remote %s: %w", addr, err)
	}

	mode := "closed loop"
	if opts.RatePerSec > 0 {
		mode = fmt.Sprintf("open loop, %d ops/s per conn", opts.RatePerSec)
	}
	e := &Experiment{
		ID:     "serve_remote",
		Title:  fmt.Sprintf("Remote serving over the wire protocol (%d conns, pipeline %d, %s)", opts.Conns, opts.Pipeline, mode),
		XLabel: "path",
		YLabel: "ops/sec",
		Perf:   map[string]Perf{},
	}
	remote := Perf{
		OpsPerSec: opsPerSec,
		P50Ms:     rec.Percentile("", 50),
		P95Ms:     rec.Percentile("", 95),
		P99Ms:     rec.Percentile("", 99),
	}
	e.Perf[opts.App+"/remote"] = remote
	if stats.Errors > 0 || stats.Reconnects > 0 {
		e.Notes = append(e.Notes, fmt.Sprintf(
			"%d calls lost to server disconnects; drivers reconnected %d times and continued",
			stats.Errors, stats.Reconnects))
	}
	e.XTicks = append(e.XTicks, "remote")
	s := Series{Name: opts.App}
	s.Points = append(s.Points, Point{X: 0, Y: remote.OpsPerSec,
		Aux: map[string]float64{"p50 ms": remote.P50Ms, "p99 ms": remote.P99Ms}})

	if !opts.SkipInproc {
		// The baseline: the same engine-executed application served by a
		// plain in-process loop on the same backend — what the serving
		// layer's overhead is measured against.
		inRec, inOps, err := serveApp(opts.App+"-spec", ServeOptions{
			Backend: runtime.BackendNet, Ops: opts.Ops, Seed: opts.Seed,
		}.withDefaults())
		if err != nil {
			return nil, fmt.Errorf("bench: serve remote in-process baseline: %w", err)
		}
		inproc := Perf{
			OpsPerSec: inOps,
			P50Ms:     inRec.Percentile("", 50),
			P95Ms:     inRec.Percentile("", 95),
			P99Ms:     inRec.Percentile("", 99),
		}
		e.Perf[opts.App+"/inproc"] = inproc
		e.XTicks = append(e.XTicks, "inproc")
		s.Points = append(s.Points, Point{X: 1, Y: inproc.OpsPerSec,
			Aux: map[string]float64{"p50 ms": inproc.P50Ms, "p99 ms": inproc.P99Ms}})
		e.Notes = append(e.Notes, fmt.Sprintf("remote sustains %.0f%% of the in-process loop",
			100*remote.OpsPerSec/inproc.OpsPerSec))
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"remote: CALLs over TCP with RESP framing, per-conn site affinity, batched pipelining;",
		"in-process: the same engine app driven directly through runtime.Cluster;",
		"latency is per-op wire round-trip (closed loop amortizes it over the batch).")
	return e, nil
}

// driveRemote runs the measured loop against a live server.
func driveRemote(addr string, opts ServeRemoteOptions) (*Recorder, float64, remoteRunStats, error) {
	// Discover sites and make sure the app is mounted.
	ctl, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		return nil, 0, remoteRunStats{}, err
	}
	defer ctl.Close()
	sites, err := remoteSites(ctl)
	if err != nil {
		return nil, 0, remoteRunStats{}, err
	}
	if err := ensureMounted(ctl, opts.App); err != nil {
		return nil, 0, remoteRunStats{}, err
	}
	// Seed the workload's domain (players, tournaments, one active
	// tournament) before measuring, and settle so every site serves from
	// the seeded state.
	gen := newTournamentGen(opts.Seed)
	for _, call := range gen.seedCalls() {
		rp, err := ctl.Do(append([]string{"CALL", opts.App}, call...)...)
		if err != nil {
			return nil, 0, remoteRunStats{}, err
		}
		if err := callErr(rp); err != nil {
			return nil, 0, remoteRunStats{}, fmt.Errorf("seeding %v: %w", call, err)
		}
	}
	if err := ctl.DoOK("SETTLE"); err != nil {
		return nil, 0, remoteRunStats{}, err
	}

	// The stability service: like the in-process serve loop's periodic
	// Stabilize, a side connection runs the stability protocol while
	// traffic flows so tombstone metadata is compacted, not measured.
	// It borrows ctl, so it must stop (stopStab) before ctl is used
	// again — the client is single-goroutine.
	stop := make(chan struct{})
	var stabWg sync.WaitGroup
	stabWg.Add(1)
	go func() {
		defer stabWg.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				ctl.DoOK("STABILIZE")
			}
		}
	}()
	stabStopped := false
	stopStab := func() {
		if !stabStopped {
			stabStopped = true
			close(stop)
			stabWg.Wait()
		}
	}
	defer stopStab()

	// Workers: one connection each, pinned to sites round-robin. Ops
	// pre-generate sequentially (the generator keeps cross-op state) and
	// stripe across connections.
	calls := make([][]string, opts.Ops)
	for i := range calls {
		calls[i] = gen.next()
	}
	workers := make([]*remoteWorker, opts.Conns)
	for w := range workers {
		rw := &remoteWorker{addr: addr, site: sites[w%len(sites)], app: opts.App, rec: NewRecorder()}
		if err := rw.dial(); err != nil {
			return nil, 0, remoteRunStats{}, err
		}
		defer rw.close()
		for i := w; i < len(calls); i += opts.Conns {
			rw.calls = append(rw.calls, calls[i])
		}
		workers[w] = rw
	}

	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	start := time.Now()
	for w, rw := range workers {
		wg.Add(1)
		go func(w int, rw *remoteWorker) {
			defer wg.Done()
			if opts.RatePerSec > 0 {
				errs[w] = rw.runOpen(opts.RatePerSec)
			} else {
				errs[w] = rw.runClosed(opts.Pipeline)
			}
		}(w, rw)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rec := NewRecorder()
	var stats remoteRunStats
	for w, rw := range workers {
		if errs[w] != nil {
			return nil, 0, remoteRunStats{}, fmt.Errorf("conn %d: %w", w, errs[w])
		}
		rec.Merge(rw.rec)
		stats.Errors += rw.errors
		stats.Reconnects += rw.reconnects
	}

	// Verify before reporting — a run that corrupted state fails
	// instead of producing numbers.
	stopStab()
	if err := VerifyOverWire(ctl, opts.App); err != nil {
		return nil, 0, remoteRunStats{}, err
	}
	completed := opts.Ops - int(stats.Errors)
	return rec, float64(completed) / elapsed.Seconds(), stats, nil
}

// VerifyOverWire runs the harness's quiescence protocol against a live
// server: settle, two rounds of repair-reads + settle (a repair's own
// writes must replicate before the next read), a stability pass, then
// invariant checks and cross-replica digest convergence. Both the
// remote serving benchmark and the distributed load generator end every
// run with it.
func VerifyOverWire(ctl *server.Client, app string) error {
	if err := ctl.DoOK("SETTLE"); err != nil {
		return err
	}
	for round := 0; round < 2; round++ {
		if err := ctl.DoOK("REPAIR", app); err != nil {
			return err
		}
		if err := ctl.DoOK("SETTLE"); err != nil {
			return err
		}
	}
	if err := ctl.DoOK("STABILIZE"); err != nil {
		return err
	}
	rp, err := ctl.Do("CHECK", app)
	if err != nil {
		return err
	}
	if err := rp.Err(); err != nil {
		return err
	}
	if v := rp.Strings(); len(v) > 0 {
		return fmt.Errorf("invariant violations after run: %s", strings.Join(v, "; "))
	}
	rp, err = ctl.Do("DIGEST", app)
	if err != nil {
		return err
	}
	if err := rp.Err(); err != nil {
		return err
	}
	if ds := rp.Strings(); len(ds) > 1 {
		base := digestBody(ds[0])
		for _, d := range ds[1:] {
			if digestBody(d) != base {
				return fmt.Errorf("replicas diverged after run:\n  %s", strings.Join(ds, "\n  "))
			}
		}
	}
	return nil
}

// remoteRunStats aggregates resilience counters across the workers.
type remoteRunStats struct {
	Errors     int64
	Reconnects int64
}

// remoteWorker drives one connection. It knows how to redial and re-pin
// its site, so a mid-run server disconnect is a counted error and a
// reconnect, not an aborted benchmark — the same contract as the
// distributed load generator's driver connections.
type remoteWorker struct {
	addr   string
	site   string
	client *server.Client
	app    string
	calls  [][]string
	rec    *Recorder

	errors     int64 // calls lost to wire failures
	reconnects int64
}

// dial opens the worker's connection and pins its site.
func (w *remoteWorker) dial() error {
	c, err := server.Dial(w.addr, 5*time.Second)
	if err != nil {
		return err
	}
	if err := c.DoOK("SITE", w.site); err != nil {
		c.Close()
		return err
	}
	w.client = c
	return nil
}

func (w *remoteWorker) close() {
	if w.client != nil {
		w.client.Close()
		w.client = nil
	}
}

// redial reconnects with linear backoff after a wire failure. An error
// means the server never came back — that stays fatal.
func (w *remoteWorker) redial() error {
	w.close()
	var err error
	for i := 0; i < 20; i++ {
		time.Sleep(50 * time.Millisecond * time.Duration(i+1))
		if err = w.dial(); err == nil {
			w.reconnects++
			return nil
		}
	}
	return fmt.Errorf("reconnect to %s: %w", w.addr, err)
}

// callErr converts a CALL reply into an error, treating PRECONDITION
// refusals (guarded no-ops) as successful outcomes.
func callErr(rp server.Reply) error {
	if rp.Kind != '-' {
		return nil
	}
	if strings.HasPrefix(rp.Str, "PRECONDITION") {
		return nil
	}
	return fmt.Errorf("%s", rp.Str)
}

// runClosed is the closed loop: send a batch of `depth` CALLs, flush,
// read the batch's replies, repeat. Per-op latency is the batch
// round-trip divided across the batch — the standard pipelined-client
// accounting. A wire failure mid-batch counts the unreceived tail as
// errors, redials, and continues with the next batch; a semantic CALL
// error (bad workload, unmounted app) stays fatal.
func (w *remoteWorker) runClosed(depth int) error {
	for off := 0; off < len(w.calls); off += depth {
		end := off + depth
		if end > len(w.calls) {
			end = len(w.calls)
		}
		batch := w.calls[off:end]
		t0 := time.Now()
		for _, call := range batch {
			w.client.Send(append([]string{"CALL", w.app}, call...)...)
		}
		err := w.client.Flush()
		recvd := 0
		if err == nil {
			for _, call := range batch {
				rp, rerr := w.client.Recv()
				if rerr != nil {
					err = rerr
					break
				}
				if cerr := callErr(rp); cerr != nil {
					return fmt.Errorf("CALL %v: %w", call, cerr)
				}
				recvd++
			}
		}
		if err != nil {
			w.errors += int64(len(batch) - recvd)
			if rerr := w.redial(); rerr != nil {
				return fmt.Errorf("after %v: %w", err, rerr)
			}
			continue
		}
		perOp := time.Since(t0) / time.Duration(len(batch))
		for _, call := range batch {
			w.rec.Add(call[0], wan.Time(perOp.Microseconds()))
		}
	}
	return w.client.Flush()
}

// runOpen is the open loop: a pacer issues CALLs at the configured rate
// whether or not replies have come back, and a reader records
// issue-to-reply latency — so queueing delay under overload is measured,
// not hidden (the coordinated-omission-free shape). A wire failure
// drains the in-flight window as counted errors, redials, and resumes
// pacing the remaining calls.
func (w *remoteWorker) runOpen(rate int) error {
	interval := time.Second / time.Duration(rate)
	next := time.Now()
	i := 0
	for i < len(w.calls) {
		n, fatal, broke := w.openEpoch(i, interval, &next)
		i += n
		if fatal != nil {
			return fatal
		}
		if broke && i < len(w.calls) {
			if rerr := w.redial(); rerr != nil {
				return rerr
			}
			// Re-anchor the pacer: a reconnect gap must not trigger a
			// catch-up burst no real client population would issue.
			next = time.Now()
		}
	}
	return nil
}

// openEpoch paces calls[start:] on the current connection until the
// schedule of calls is exhausted or the wire breaks. It returns how many
// calls it consumed (recorded or counted as errors), a fatal semantic
// error if one occurred, and whether the wire broke.
func (w *remoteWorker) openEpoch(start int, interval time.Duration, next *time.Time) (consumed int, fatal error, broke bool) {
	type issue struct {
		idx int
		t   time.Time
	}
	issued := make(chan issue, len(w.calls)-start)
	brokenCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		down := false
		for iss := range issued {
			if down {
				w.errors++
				continue
			}
			rp, err := w.client.Recv()
			if err != nil {
				down = true
				close(brokenCh)
				w.errors++
				continue
			}
			if cerr := callErr(rp); cerr != nil {
				down = true
				close(brokenCh)
				fatal = fmt.Errorf("CALL %v: %w", w.calls[iss.idx], cerr)
				continue
			}
			w.rec.Add(w.calls[iss.idx][0], wan.Time(time.Since(iss.t).Microseconds()))
		}
	}()

	i := start
pace:
	for ; i < len(w.calls); i++ {
		select {
		case <-brokenCh:
			break pace
		default:
		}
		if d := time.Until(*next); d > 0 {
			time.Sleep(d)
		}
		w.client.Send(append([]string{"CALL", w.app}, w.calls[i]...)...)
		if err := w.client.Flush(); err != nil {
			w.errors++ // this call never made it onto the wire
			broke = true
			i++
			break pace
		}
		issued <- issue{idx: i, t: time.Now()}
		*next = next.Add(interval)
	}
	close(issued)
	wg.Wait()
	select {
	case <-brokenCh: // reader saw the wire die
		broke = true
	default:
	}
	return i - start, fatal, broke
}

// digestBody strips the "<site> " prefix off a DIGEST reply line so
// replica digests compare on content.
func digestBody(line string) string {
	if _, rest, ok := strings.Cut(line, " "); ok {
		return rest
	}
	return line
}

// remoteSites parses the site list out of an INFO reply.
func remoteSites(c *server.Client) ([]string, error) {
	rp, err := c.Do("INFO")
	if err != nil {
		return nil, err
	}
	if err := rp.Err(); err != nil {
		return nil, err
	}
	for _, line := range strings.Split(rp.Str, "\r\n") {
		if rest, ok := strings.CutPrefix(line, "sites:"); ok && rest != "" {
			return strings.Split(rest, ","), nil
		}
	}
	return nil, fmt.Errorf("INFO reply carries no sites")
}

// ensureMounted mounts the tournament spec when the server does not
// already have the app (a bare server booted with no -app).
func ensureMounted(c *server.Client, app string) error {
	rp, err := c.Do("APPS")
	if err != nil {
		return err
	}
	for _, name := range rp.Strings() {
		if name == app {
			return nil
		}
	}
	if app != "tournament" {
		return fmt.Errorf("app %q not mounted on the server (the benchmark can only self-mount tournament)", app)
	}
	return c.DoOK("MOUNT", tournament.SpecSource)
}

// tournamentGen generates the remote tournament workload: a seeded
// domain of players and tournaments, then a weighted mix of the spec's
// operations. Refusals (enrolling in a full tournament, finishing an
// inactive one) are expected outcomes, exactly as in the chaos harness.
type tournamentGen struct {
	rng     *rand.Rand
	players []string
	tourns  []string
}

func newTournamentGen(seed int64) *tournamentGen {
	g := &tournamentGen{rng: rand.New(rand.NewSource(seed))}
	// The enrolling pool stays within the spec's Capacity (8): the
	// benchmark measures serving throughput, so the workload exercises
	// the guarded paths without living permanently over capacity (the
	// chaos harness owns that regime).
	for i := 0; i < 8; i++ {
		g.players = append(g.players, fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 4; i++ {
		g.tourns = append(g.tourns, fmt.Sprintf("t%d", i))
	}
	return g
}

// seedCalls returns the setup operations establishing the domain.
func (g *tournamentGen) seedCalls() [][]string {
	var calls [][]string
	for _, p := range g.players {
		calls = append(calls, []string{"add_player", p})
	}
	for _, t := range g.tourns {
		calls = append(calls, []string{"add_tourn", t})
	}
	calls = append(calls, []string{"begin_tourn", g.tourns[0]})
	return calls
}

func (g *tournamentGen) player() string { return g.players[g.rng.Intn(len(g.players))] }
func (g *tournamentGen) tourn() string  { return g.tourns[g.rng.Intn(len(g.tourns))] }

// next generates one operation call: [op, args...].
func (g *tournamentGen) next() []string {
	switch n := g.rng.Intn(100); {
	case n < 35:
		return []string{"enroll", g.player(), g.tourn()}
	case n < 60:
		return []string{"do_match", g.player(), g.player(), g.tourn()}
	case n < 72:
		return []string{"disenroll", g.player(), g.tourn()}
	case n < 82:
		return []string{"begin_tourn", g.tourn()}
	case n < 92:
		return []string{"finish_tourn", g.tourn()}
	case n < 96:
		return []string{"add_player", fmt.Sprintf("p%d", g.rng.Intn(64))}
	default:
		return []string{"add_tourn", fmt.Sprintf("t%d", g.rng.Intn(8))}
	}
}
