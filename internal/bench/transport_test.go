package bench

import (
	"testing"
)

func TestRunTransportConverges(t *testing.T) {
	r, err := RunTransport(TransportOptions{Nodes: 3, Txns: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.TxnsPerSec <= 0 {
		t.Fatalf("throughput = %f", r.TxnsPerSec)
	}
	if r.Metrics.TxnsDropped != 0 {
		t.Fatalf("dropped %d txns on a healthy ring", r.Metrics.TxnsDropped)
	}
	// 3 nodes x 100 txns, each sent to 2 peers.
	if r.Metrics.TxnsSent < 600 {
		t.Fatalf("TxnsSent = %d, want >= 600", r.Metrics.TxnsSent)
	}
	if r.TxnsPerFrame <= 1 {
		t.Fatalf("no batching observed: %.2f txns/frame", r.TxnsPerFrame)
	}
}

// TestStreamingBeatsLegacy is the acceptance check behind the
// EXPERIMENTS.md record: the streaming transport must comfortably
// outperform connection-per-transaction on a 3-node ring. The recorded
// full-scale factor is much higher (see EXPERIMENTS.md); the threshold
// here is conservative to stay robust on slow CI machines.
func TestStreamingBeatsLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket throughput comparison")
	}
	legacy, err := RunTransport(TransportOptions{Nodes: 3, Txns: 300, Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := RunTransport(TransportOptions{Nodes: 3, Txns: 300})
	if err != nil {
		t.Fatal(err)
	}
	if factor := streaming.TxnsPerSec / legacy.TxnsPerSec; factor < 3 {
		t.Fatalf("streaming only %.1fx legacy (legacy %.0f txn/s, streaming %.0f txn/s)",
			factor, legacy.TxnsPerSec, streaming.TxnsPerSec)
	}
}

func BenchmarkTransportStreaming3(b *testing.B) { benchTransport(b, 3, false) }
func BenchmarkTransportLegacy3(b *testing.B)    { benchTransport(b, 3, true) }
func BenchmarkTransportStreaming5(b *testing.B) { benchTransport(b, 5, false) }
func BenchmarkTransportLegacy5(b *testing.B)    { benchTransport(b, 5, true) }

func benchTransport(b *testing.B, nodes int, legacy bool) {
	for i := 0; i < b.N; i++ {
		r, err := RunTransport(TransportOptions{Nodes: nodes, Txns: 200, Legacy: legacy})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TxnsPerSec, "txn/s")
		b.ReportMetric(r.TxnsPerFrame, "txn/frame")
	}
}
