package bench

import (
	"testing"

	"ipa/internal/runtime"
)

// TestServeWorkersSweepSmoke runs a tiny two-point workers sweep on a
// real netrepl cluster: the sweep must produce one series per app with
// one point per worker count, positive throughput everywhere, and pass
// its built-in quiescence verification (invariants + digest convergence).
func TestServeWorkersSweepSmoke(t *testing.T) {
	e, err := Serve(ServeOptions{
		Backend: runtime.BackendNet,
		Apps:    []string{"ticket"},
		Ops:     200,
		Seed:    11,
		Workers: []int{1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Series) != 1 || len(e.Series[0].Points) != 2 {
		t.Fatalf("series shape = %d series / %v", len(e.Series), e.Series)
	}
	for _, p := range e.Series[0].Points {
		if p.Y <= 0 {
			t.Fatalf("non-positive throughput: %+v", p)
		}
	}
	for _, key := range []string{"ticket/w1", "ticket/w3"} {
		if _, ok := e.Perf[key]; !ok {
			t.Fatalf("missing perf entry %q", key)
		}
	}
}

// TestServeWorkersSweepNeedsNetrepl pins the sim rejection: the simulator
// is single-threaded, so a workers sweep on it must error instead of
// silently serialising.
func TestServeWorkersSweepNeedsNetrepl(t *testing.T) {
	if _, err := Serve(ServeOptions{Backend: runtime.BackendSim, Workers: []int{1, 2}}); err == nil {
		t.Fatal("sim-backend workers sweep accepted")
	}
}
