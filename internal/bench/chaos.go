package bench

// The chaos benchmark: harness throughput in schedules per second, per
// application, on the 3- and 5-replica simulated deployments. The chaos
// harness is this repository's regression net — every PR leans on it —
// so its own throughput (how many randomized schedules a CI minute buys)
// is tracked like any other hot path. Wall-clock time: the workload under
// measurement is the simulator itself.

import (
	"fmt"
	"time"

	"ipa/internal/harness"
	"ipa/internal/wan"
)

// RunChaosRate generates and executes count schedules of one app and
// returns the wall-clock schedules/second.
func RunChaosRate(app string, replicas, count int, seed uint64) (float64, error) {
	cfg := harness.Defaults(app)
	cfg.Replicas = replicas
	start := time.Now()
	for i := 0; i < count; i++ {
		s, err := harness.Generate(cfg, harness.ScheduleSeed(seed, i))
		if err != nil {
			return 0, err
		}
		v, err := harness.Execute(s)
		if err != nil {
			return 0, err
		}
		if v != nil {
			return 0, fmt.Errorf("bench: chaos benchmark hit a real violation (seed %#x): %s",
				s.Seed, v)
		}
	}
	return float64(count) / time.Since(start).Seconds(), nil
}

// Chaos measures chaos-harness throughput for every app on 3- and
// 5-replica rings.
func Chaos(opts ExpOptions) (*Experiment, error) {
	count := 300
	if opts.Duration < 10*wan.Second { // quick parameters
		count = 60
	}
	e := &Experiment{
		ID:     "chaos",
		Title:  "Chaos harness throughput: randomized schedules per second",
		XLabel: "replicas",
		YLabel: "schedules/s",
	}
	for _, app := range harness.Apps() {
		s := Series{Name: app}
		for _, replicas := range []int{3, 5} {
			rate, err := RunChaosRate(app, replicas, count, uint64(opts.Seed))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(replicas), Y: rate})
		}
		e.Series = append(e.Series, s)
		if e.Perf == nil {
			e.Perf = map[string]Perf{}
		}
		if len(s.Points) > 0 {
			e.Perf[app] = Perf{OpsPerSec: s.Points[0].Y}
		}
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("%d schedules per point (default shape: 60 ops + 6 faults over a 3s virtual horizon,", count),
		"mid-flight checks every ~190ms virtual); wall-clock rate of Generate+Execute.")
	return e, nil
}
