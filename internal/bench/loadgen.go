package bench

// The loadgen experiment: a coordinated multi-worker sustained-load run
// against one or more `ipa serve` targets, reported with phase windows
// (ramp-up / steady / ramp-down) so only the steady window gates. The
// heavy lifting lives in internal/loadgen; this file adapts a Report
// into the repository's Experiment/BENCH_*.json shape and verifies the
// cluster converged cleanly after the storm.

import (
	"fmt"
	"net"
	"time"

	"ipa/internal/apps/tournament"
	"ipa/internal/clock"
	"ipa/internal/loadgen"
	"ipa/internal/runtime"
	"ipa/internal/server"
	"ipa/internal/wan"
)

// LoadgenOptions shapes one coordinated load run.
type LoadgenOptions struct {
	// Targets are `ipa serve` addresses. Empty: self-host a 3-site
	// netrepl-backed server on loopback for the duration of the run.
	Targets []string
	// WorkerAddrs are `ipabench worker -listen` control addresses. Empty:
	// self-host Workers in-process workers over pipes.
	WorkerAddrs []string
	// Workers is the self-hosted worker count (default 2). Ignored when
	// WorkerAddrs is set.
	Workers int
	// App is the workload (only "tournament" has a mix; default).
	App string
	// Conns is the driving connections per worker (default 2).
	Conns int
	// Pipeline is the closed-loop batch depth per connection (default 8).
	Pipeline int
	// RatePerSec, when positive, switches to open-loop pacing at this
	// fleet-wide offered rate.
	RatePerSec int
	// RampUp, Run, RampDown are the phase windows (defaults 2s/5s/1s).
	RampUp, Run, RampDown time.Duration
	// Seed makes the workload streams reproducible (default 42).
	Seed int64
	// ReportEvery is the worker progress-report period (default 1s).
	ReportEvery time.Duration
	// SkipVerify skips the post-run convergence verification (tests that
	// deliberately leave the cluster partitioned).
	SkipVerify bool
	// OnInterval, when set, receives workers' streamed progress reports.
	OnInterval func(loadgen.Interval)
	// Log receives coordinator progress lines (nil: silent).
	Log func(format string, args ...any)
}

func (o LoadgenOptions) withDefaults() LoadgenOptions {
	if o.App == "" {
		o.App = "tournament"
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 8
	}
	if o.RampUp <= 0 {
		o.RampUp = 2 * time.Second
	}
	if o.Run <= 0 {
		o.Run = 5 * time.Second
	}
	if o.RampDown <= 0 {
		o.RampDown = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.ReportEvery <= 0 {
		o.ReportEvery = time.Second
	}
	return o
}

// Loadgen runs one coordinated load run and wraps the merged report as
// an Experiment (ID "loadgen", artifact BENCH_loadgen.json). The full
// loadgen.Report rides along in Experiment.Load so benchgate can gate
// steady-state throughput, p99 and error rate against the baseline.
func Loadgen(opts LoadgenOptions) (*Experiment, error) {
	opts = opts.withDefaults()
	if opts.App != "tournament" {
		return nil, fmt.Errorf("bench: loadgen only has a workload mix for tournament (got %q)", opts.App)
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	targets := opts.Targets
	if len(targets) == 0 {
		// Self-host: a 3-site netrepl cluster behind one server — the
		// same substrate `ipa serve -backend netrepl` runs.
		ids := make([]clock.ReplicaID, 0, 3)
		for _, s := range wan.Sites() {
			ids = append(ids, clock.ReplicaID(s))
		}
		cluster, err := runtime.NewNetCluster(ids, serveNetConfig())
		if err != nil {
			return nil, err
		}
		defer cluster.Close()
		srv := server.New(cluster, server.Config{})
		if _, err := srv.MountAnalyzed(tournament.Spec(), tournament.Analysis()); err != nil {
			return nil, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		defer srv.Shutdown()
		targets = []string{srv.Addr()}
		logf("loadgen: self-hosted netrepl server at %s", targets[0])
	}

	var conns []net.Conn
	var stop func()
	if len(opts.WorkerAddrs) > 0 {
		dialed, err := loadgen.DialWorkers(opts.WorkerAddrs, 5*time.Second)
		if err != nil {
			return nil, err
		}
		conns, stop = dialed, func() {}
		logf("loadgen: driving %d remote workers", len(dialed))
	} else {
		conns, stop = loadgen.SelfHosted(opts.Workers, opts.Log)
		logf("loadgen: self-hosting %d in-process workers", opts.Workers)
	}
	defer stop()

	mix, seeds := loadgen.TournamentWorkload()
	sched := loadgen.Schedule{RampUp: opts.RampUp, Run: opts.Run, RampDown: opts.RampDown}
	rep, err := loadgen.Run(loadgen.RunOptions{
		WorkerConns: conns,
		Spec: loadgen.WorkloadSpec{
			App:         opts.App,
			SpecSource:  tournament.SpecSource,
			Targets:     targets,
			Conns:       opts.Conns,
			Pipeline:    opts.Pipeline,
			RatePerSec:  opts.RatePerSec,
			Seed:        opts.Seed,
			Mix:         mix,
			SeedCalls:   seeds,
			ReportEvery: opts.ReportEvery,
		},
		Schedule:   sched,
		OnInterval: opts.OnInterval,
	})
	if err != nil {
		return nil, err
	}

	if !opts.SkipVerify {
		// The run is only a benchmark if the cluster it hammered is still
		// correct: settle, repair, stabilize, check invariants, compare
		// site digests — all over the same wire the load used.
		ctl, err := server.Dial(targets[0], 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("bench: loadgen verify dial: %w", err)
		}
		defer ctl.Close()
		if err := VerifyOverWire(ctl, opts.App); err != nil {
			return nil, fmt.Errorf("bench: loadgen post-run verification: %w", err)
		}
		logf("loadgen: post-run verification clean")
	}

	return loadgenExperiment(opts, rep), nil
}

// loadgenExperiment renders a merged report as the Experiment artifact.
func loadgenExperiment(opts LoadgenOptions, rep *loadgen.Report) *Experiment {
	mode := fmt.Sprintf("closed loop, %d conns x pipeline %d per worker", rep.ConnsPerWorker, rep.Pipeline)
	if rep.RatePerSec > 0 {
		mode = fmt.Sprintf("open loop, %d ops/s fleet-wide", rep.RatePerSec)
	}
	e := &Experiment{
		ID:     "loadgen",
		Title:  fmt.Sprintf("Sustained load, %d workers (%s)", rep.Workers, mode),
		XLabel: "phase",
		YLabel: "ops/sec",
		Perf:   map[string]Perf{},
		Load:   rep,
	}
	s := Series{Name: opts.App}
	for i, ps := range rep.Phases {
		e.XTicks = append(e.XTicks, ps.Phase)
		s.Points = append(s.Points, Point{X: float64(i), Y: ps.OpsPerSec, Aux: map[string]float64{
			"p50 ms": ps.P50Ms, "p99 ms": ps.P99Ms, "errors": float64(ps.Errors), "refusals": float64(ps.Refusals),
		}})
		e.Perf[opts.App+"/"+ps.Phase] = Perf{
			OpsPerSec: ps.OpsPerSec,
			P50Ms:     ps.P50Ms,
			P95Ms:     ps.P95Ms,
			P99Ms:     ps.P99Ms,
			P999Ms:    ps.P999Ms,
		}
	}
	e.Series = append(e.Series, s)
	steady := rep.Steady()
	e.Notes = append(e.Notes,
		fmt.Sprintf("steady window %.0fs: %.0f ops/s, p99 %.2f ms, error rate %.4f, %d refusals",
			steady.Seconds, steady.OpsPerSec, steady.P99Ms, rep.ErrorRate(), steady.Refusals),
		"only the steady window gates; ramp windows absorb start-up skew and drain",
	)
	if steady.Reconnects > 0 {
		e.Notes = append(e.Notes, fmt.Sprintf("steady window survived %d reconnects", steady.Reconnects))
	}
	return e
}
