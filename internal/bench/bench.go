// Package bench is the evaluation harness: it re-creates every table and
// figure of the paper's §5 on top of the simulated geo-replicated
// deployment. Each experiment returns an Experiment value whose Render
// output is the series the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Latency accounting: a transaction's service time follows a simple cost
// model (per-transaction overhead, per-key storage access, per-update
// processing) calibrated against the paper's Fig. 8 microbenchmarks
// (~28x IPA/Strong speed-up for one-update operations, ~40 ms for 2048
// updates on one key, IPA/Strong crossover near 64 updated keys). Wide
// area costs come from the wan package's paper topology. Absolute
// throughput numbers therefore differ from the paper's testbed, but the
// relative shapes — who wins, by what factor, where curves cross — are
// reproduced.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ipa/internal/wan"
)

// CostModel gives the local service time of one transaction.
type CostModel struct {
	// Base is the fixed per-transaction overhead.
	Base wan.Time
	// PerKey is the storage cost of each distinct key read or written.
	PerKey wan.Time
	// PerUpdate is the processing cost of one update on an open object.
	PerUpdate wan.Time
}

// DefaultCostModel returns the calibration used throughout the
// reproduction (see package comment).
func DefaultCostModel() CostModel {
	return CostModel{Base: wan.Ms(1.0), PerKey: wan.Ms(0.85), PerUpdate: wan.Ms(0.02)}
}

// Service returns the service time of a transaction touching the given
// number of distinct keys (reads + written keys) with the given number of
// updates.
func (m CostModel) Service(keys, updates int) wan.Time {
	return m.Base + wan.Time(keys)*m.PerKey + wan.Time(updates)*m.PerUpdate
}

// Config is a deployment configuration of the evaluation (§5.2.1).
type Config int

// Configurations.
const (
	// Causal: unmodified application on causal consistency.
	Causal Config = iota
	// IPA: the application patched by the analysis, on causal consistency.
	IPA
	// Strong: update operations forwarded to a single primary replica.
	Strong
	// Indigo: conflicting operations guarded by reservations.
	Indigo
)

func (c Config) String() string {
	switch c {
	case Causal:
		return "Causal"
	case IPA:
		return "IPA"
	case Strong:
		return "Strong"
	case Indigo:
		return "Indigo"
	}
	return "?"
}

// Recorder accumulates latency samples per label.
type Recorder struct {
	byLabel map[string][]float64 // milliseconds
	order   []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{byLabel: map[string][]float64{}} }

// Add records one latency sample under the label.
func (r *Recorder) Add(label string, d wan.Time) {
	if _, ok := r.byLabel[label]; !ok {
		r.order = append(r.order, label)
	}
	r.byLabel[label] = append(r.byLabel[label], d.Millis())
}

// Labels returns the labels in first-seen order.
func (r *Recorder) Labels() []string { return r.order }

// Merge folds another recorder's samples into this one — used to combine
// per-worker recorders after a concurrent benchmark loop (each worker
// records into its own Recorder; Recorder itself is not goroutine-safe).
func (r *Recorder) Merge(o *Recorder) {
	for _, l := range o.order {
		if _, ok := r.byLabel[l]; !ok {
			r.order = append(r.order, l)
		}
		r.byLabel[l] = append(r.byLabel[l], o.byLabel[l]...)
	}
}

// Count returns the number of samples for the label ("" for all).
func (r *Recorder) Count(label string) int {
	if label != "" {
		return len(r.byLabel[label])
	}
	n := 0
	for _, s := range r.byLabel {
		n += len(s)
	}
	return n
}

func (r *Recorder) samples(label string) []float64 {
	if label != "" {
		return r.byLabel[label]
	}
	var all []float64
	for _, l := range r.order {
		all = append(all, r.byLabel[l]...)
	}
	return all
}

// Mean returns the mean latency in milliseconds ("" for all labels).
func (r *Recorder) Mean(label string) float64 {
	s := r.samples(label)
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Stddev returns the sample standard deviation in milliseconds.
func (r *Recorder) Stddev(label string) float64 {
	s := r.samples(label)
	if len(s) < 2 {
		return 0
	}
	m := r.Mean(label)
	acc := 0.0
	for _, v := range s {
		acc += (v - m) * (v - m)
	}
	return math.Sqrt(acc / float64(len(s)-1))
}

// Percentile returns the p-th percentile (0..100) in milliseconds.
func (r *Recorder) Percentile(label string, p float64) float64 {
	s := append([]float64(nil), r.samples(label)...)
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// Point is one data point of a series.
type Point struct {
	X float64
	Y float64
	// Aux carries extra measures (stddev, violations, ...).
	Aux map[string]float64
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Perf is a wall-clock performance summary attached to experiments that
// measure real execution (serve, transport, chaos) — the numbers CI
// tracks across commits via the BENCH_<id>.json artifacts.
type Perf struct {
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P95Ms     float64 `json:"p95_ms,omitempty"`
	P99Ms     float64 `json:"p99_ms,omitempty"`
}

// Experiment is a reproduced table or figure.
type Experiment struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	// XTicks optionally names the X positions (per-operation figures).
	XTicks []string
	Series []Series
	Notes  []string
	// Text carries pre-rendered content for table-style experiments.
	Text string
	// Perf carries wall-clock summaries keyed by app/series name, set by
	// the experiments that measure real execution.
	Perf map[string]Perf `json:",omitempty"`
}

// WriteJSON serialises the experiment as BENCH_<ID>.json inside dir
// (created if missing) and returns the file path — the machine-readable
// artifact CI uploads so the performance trajectory is tracked.
func (e *Experiment) WriteJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+e.ID+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the experiment as aligned text, one block per series.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if e.Text != "" {
		b.WriteString(e.Text)
		if !strings.HasSuffix(e.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	for _, s := range e.Series {
		fmt.Fprintf(&b, "-- %s --\n", s.Name)
		auxKeys := auxKeysOf(s)
		fmt.Fprintf(&b, "%16s %16s", e.XLabel, e.YLabel)
		for _, k := range auxKeys {
			fmt.Fprintf(&b, " %16s", k)
		}
		b.WriteByte('\n')
		for _, p := range s.Points {
			x := fmt.Sprintf("%16.2f", p.X)
			if int(p.X) >= 0 && int(p.X) < len(e.XTicks) && float64(int(p.X)) == p.X {
				x = fmt.Sprintf("%16s", e.XTicks[int(p.X)])
			}
			fmt.Fprintf(&b, "%s %16.2f", x, p.Y)
			for _, k := range auxKeys {
				fmt.Fprintf(&b, " %16.2f", p.Aux[k])
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func auxKeysOf(s Series) []string {
	set := map[string]bool{}
	for _, p := range s.Points {
		for k := range p.Aux {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FindSeries returns the series with the given name.
func (e *Experiment) FindSeries(name string) (Series, bool) {
	for _, s := range e.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}
