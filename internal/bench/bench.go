// Package bench is the evaluation harness: it re-creates every table and
// figure of the paper's §5 on top of the simulated geo-replicated
// deployment. Each experiment returns an Experiment value whose Render
// output is the series the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Latency accounting: a transaction's service time follows a simple cost
// model (per-transaction overhead, per-key storage access, per-update
// processing) calibrated against the paper's Fig. 8 microbenchmarks
// (~28x IPA/Strong speed-up for one-update operations, ~40 ms for 2048
// updates on one key, IPA/Strong crossover near 64 updated keys). Wide
// area costs come from the wan package's paper topology. Absolute
// throughput numbers therefore differ from the paper's testbed, but the
// relative shapes — who wins, by what factor, where curves cross — are
// reproduced.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ipa/internal/loadgen"
	"ipa/internal/wan"
)

// CostModel gives the local service time of one transaction.
type CostModel struct {
	// Base is the fixed per-transaction overhead.
	Base wan.Time
	// PerKey is the storage cost of each distinct key read or written.
	PerKey wan.Time
	// PerUpdate is the processing cost of one update on an open object.
	PerUpdate wan.Time
}

// DefaultCostModel returns the calibration used throughout the
// reproduction (see package comment).
func DefaultCostModel() CostModel {
	return CostModel{Base: wan.Ms(1.0), PerKey: wan.Ms(0.85), PerUpdate: wan.Ms(0.02)}
}

// Service returns the service time of a transaction touching the given
// number of distinct keys (reads + written keys) with the given number of
// updates.
func (m CostModel) Service(keys, updates int) wan.Time {
	return m.Base + wan.Time(keys)*m.PerKey + wan.Time(updates)*m.PerUpdate
}

// Config is a deployment configuration of the evaluation (§5.2.1).
type Config int

// Configurations.
const (
	// Causal: unmodified application on causal consistency.
	Causal Config = iota
	// IPA: the application patched by the analysis, on causal consistency.
	IPA
	// Strong: update operations forwarded to a single primary replica.
	Strong
	// Indigo: conflicting operations guarded by reservations.
	Indigo
)

func (c Config) String() string {
	switch c {
	case Causal:
		return "Causal"
	case IPA:
		return "IPA"
	case Strong:
		return "Strong"
	case Indigo:
		return "Indigo"
	}
	return "?"
}

// Recorder accumulates latency samples per label. It is backed by the
// load generator's mergeable log-bucketed histograms instead of raw
// sample slices: memory stays constant however long a run is, merging
// per-worker recorders is bucket-wise addition, and percentiles carry a
// bounded ~0.8% relative error (p0/p100 stay exact via tracked
// extremes). Means and standard deviations come from exact running
// sums, not the buckets.
type Recorder struct {
	byLabel map[string]*labelStats
	order   []string
}

// labelStats is one label's accumulation: the histogram in microseconds
// (the repo's wan.Time unit) plus exact moment sums in milliseconds.
type labelStats struct {
	hist  loadgen.Hist
	sumMs float64
	sumSq float64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{byLabel: map[string]*labelStats{}} }

func (r *Recorder) stats(label string) *labelStats {
	s, ok := r.byLabel[label]
	if !ok {
		s = &labelStats{}
		r.byLabel[label] = s
		r.order = append(r.order, label)
	}
	return s
}

// Add records one latency sample under the label.
func (r *Recorder) Add(label string, d wan.Time) {
	s := r.stats(label)
	s.hist.Record(int64(d))
	ms := d.Millis()
	s.sumMs += ms
	s.sumSq += ms * ms
}

// Labels returns the labels in first-seen order.
func (r *Recorder) Labels() []string { return r.order }

// Merge folds another recorder's samples into this one — used to combine
// per-worker recorders after a concurrent benchmark loop (each worker
// records into its own Recorder; Recorder itself is not goroutine-safe).
func (r *Recorder) Merge(o *Recorder) {
	for _, l := range o.order {
		os := o.byLabel[l]
		s := r.stats(l)
		s.hist.Merge(&os.hist)
		s.sumMs += os.sumMs
		s.sumSq += os.sumSq
	}
}

// Count returns the number of samples for the label ("" for all).
func (r *Recorder) Count(label string) int {
	if label != "" {
		if s, ok := r.byLabel[label]; ok {
			return int(s.hist.Count())
		}
		return 0
	}
	n := int64(0)
	for _, s := range r.byLabel {
		n += s.hist.Count()
	}
	return int(n)
}

// all folds every label into one aggregate ("" queries).
func (r *Recorder) all(label string) labelStats {
	if label != "" {
		if s, ok := r.byLabel[label]; ok {
			return *s
		}
		return labelStats{}
	}
	var agg labelStats
	for _, l := range r.order {
		s := r.byLabel[l]
		agg.hist.Merge(&s.hist)
		agg.sumMs += s.sumMs
		agg.sumSq += s.sumSq
	}
	return agg
}

// Mean returns the mean latency in milliseconds ("" for all labels).
func (r *Recorder) Mean(label string) float64 {
	s := r.all(label)
	n := s.hist.Count()
	if n == 0 {
		return 0
	}
	return s.sumMs / float64(n)
}

// Stddev returns the sample standard deviation in milliseconds.
func (r *Recorder) Stddev(label string) float64 {
	s := r.all(label)
	n := float64(s.hist.Count())
	if n < 2 {
		return 0
	}
	m := s.sumMs / n
	v := (s.sumSq - n*m*m) / (n - 1)
	if v < 0 { // floating-point cancellation on near-constant samples
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0..100) in milliseconds.
func (r *Recorder) Percentile(label string, p float64) float64 {
	s := r.all(label)
	if s.hist.Count() == 0 {
		return 0
	}
	return float64(s.hist.Quantile(p)) / 1000
}

// Hist exposes the label's histogram ("" for the aggregate) for callers
// that need mergeable wire form rather than summary numbers.
func (r *Recorder) Hist(label string) *loadgen.Hist {
	s := r.all(label)
	return &s.hist
}

// Point is one data point of a series.
type Point struct {
	X float64
	Y float64
	// Aux carries extra measures (stddev, violations, ...).
	Aux map[string]float64
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Perf is a wall-clock performance summary attached to experiments that
// measure real execution (serve, transport, chaos) — the numbers CI
// tracks across commits via the BENCH_<id>.json artifacts.
type Perf struct {
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P95Ms     float64 `json:"p95_ms,omitempty"`
	P99Ms     float64 `json:"p99_ms,omitempty"`
	P999Ms    float64 `json:"p999_ms,omitempty"`
}

// Experiment is a reproduced table or figure.
type Experiment struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	// XTicks optionally names the X positions (per-operation figures).
	XTicks []string
	Series []Series
	Notes  []string
	// Text carries pre-rendered content for table-style experiments.
	Text string
	// Perf carries wall-clock summaries keyed by app/series name, set by
	// the experiments that measure real execution.
	Perf map[string]Perf `json:",omitempty"`
	// Host records the machine the experiment ran on. WriteJSON stamps
	// it, so every committed or uploaded BENCH_*.json is self-describing
	// and benchgate can warn before comparing numbers across hosts.
	Host *loadgen.HostMeta `json:",omitempty"`
	// Load carries the full distributed-load report for the loadgen
	// experiment (phase windows, merged histograms, per-worker
	// breakdown); nil for every other experiment.
	Load *loadgen.Report `json:",omitempty"`
}

// WriteJSON serialises the experiment as BENCH_<ID>.json inside dir
// (created if missing) and returns the file path — the machine-readable
// artifact CI uploads so the performance trajectory is tracked.
func (e *Experiment) WriteJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	if e.Host == nil {
		h := loadgen.Host()
		e.Host = &h
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+e.ID+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the experiment as aligned text, one block per series.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if e.Text != "" {
		b.WriteString(e.Text)
		if !strings.HasSuffix(e.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	for _, s := range e.Series {
		fmt.Fprintf(&b, "-- %s --\n", s.Name)
		auxKeys := auxKeysOf(s)
		fmt.Fprintf(&b, "%16s %16s", e.XLabel, e.YLabel)
		for _, k := range auxKeys {
			fmt.Fprintf(&b, " %16s", k)
		}
		b.WriteByte('\n')
		for _, p := range s.Points {
			x := fmt.Sprintf("%16.2f", p.X)
			if int(p.X) >= 0 && int(p.X) < len(e.XTicks) && float64(int(p.X)) == p.X {
				x = fmt.Sprintf("%16s", e.XTicks[int(p.X)])
			}
			fmt.Fprintf(&b, "%s %16.2f", x, p.Y)
			for _, k := range auxKeys {
				fmt.Fprintf(&b, " %16.2f", p.Aux[k])
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func auxKeysOf(s Series) []string {
	set := map[string]bool{}
	for _, p := range s.Points {
		for k := range p.Aux {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FindSeries returns the series with the given name.
func (e *Experiment) FindSeries(name string) (Series, bool) {
	for _, s := range e.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}
