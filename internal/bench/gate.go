package bench

// The engine regression gate: compares a freshly measured engine
// experiment (BENCH_engine.json) against the committed baseline and
// fails when the compiled executor's advantage over the interpreter has
// eroded. Gating on the compiled/interpreted ratio — not raw ops/sec —
// makes the check machine-independent: both executors run in the same
// process on the same runner, so hardware variance cancels and what
// remains is the compilation pass itself.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ipa/internal/loadgen"
)

// ReadExperimentJSON loads a BENCH_<id>.json artifact.
func ReadExperimentJSON(path string) (*Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Experiment
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("bench: bad experiment file %s: %w", path, err)
	}
	return &e, nil
}

// EngineSpeedups extracts the per-spec compiled/interpreted throughput
// ratios from an engine experiment's Perf map.
func EngineSpeedups(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/compiled")
		if !ok {
			continue
		}
		i, ok := e.Perf[name+"/interpreted"]
		if !ok || i.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable executor pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / i.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <spec>/compiled Perf entries", e.ID)
	}
	return out, nil
}

// ServeRemoteRatios extracts the per-app remote/in-process throughput
// ratios from a serve_remote experiment's Perf map — the fraction of
// in-process serving throughput the wire protocol retains.
func ServeRemoteRatios(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/remote")
		if !ok {
			continue
		}
		i, ok := e.Perf[name+"/inproc"]
		if !ok || i.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable remote/inproc pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / i.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <app>/remote Perf entries", e.ID)
	}
	return out, nil
}

// serveRemoteFloor is the absolute acceptance floor, independent of the
// committed baseline: remote serving must retain at least half of the
// in-process throughput at the benchmark's default pipeline depth.
const serveRemoteFloor = 0.50

// CheckServeRemoteBaseline compares current against baseline
// remote/in-process ratios, failing any app whose ratio regressed by
// more than tolerance below its baseline or under the absolute 50%
// floor. Same shape as CheckEngineBaseline: ratio-based so hardware
// variance cancels, missing measurements fail, new apps pass.
func CheckServeRemoteBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := ServeRemoteRatios(current)
	if err != nil {
		return err
	}
	base, err := ServeRemoteRatios(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.0f%%)", name, 100*base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		switch {
		case c < floor:
			failures = append(failures,
				fmt.Sprintf("%s: remote/in-process %.0f%%, below %.0f%% (baseline %.0f%% - %.0f%%)",
					name, 100*c, 100*floor, 100*base[name], tolerance*100))
		case c < serveRemoteFloor:
			failures = append(failures,
				fmt.Sprintf("%s: remote serving under the absolute floor (%.0f%% < %.0f%% of in-process)",
					name, 100*c, 100*serveRemoteFloor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("remote serving ratio regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// DurableServeRatios extracts the per-app durable/memory throughput
// ratios from a recovery experiment's Perf map — the fraction of
// in-memory serving throughput that survives turning on the WAL's
// fsync-before-ack group commit.
func DurableServeRatios(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/durable")
		if !ok {
			continue
		}
		m, ok := e.Perf[name+"/memory"]
		if !ok || m.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable durable/memory pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / m.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <app>/durable Perf entries", e.ID)
	}
	return out, nil
}

// durableServeFloor is the absolute acceptance floor for durable
// serving, independent of the committed baseline. It is deliberately
// low: the serving loop is a single closed-loop client, so every commit
// pays a full group-commit round (one fsync, nobody to share it with)
// against an in-memory commit measured in microseconds — the WAL's
// worst case, with measured ratios in the single-digit percents on
// ordinary disks. The floor catches collapse (a lost batching path, an
// accidental double fsync), not erosion; erosion is the baseline
// check's job, run with a generous tolerance because fsync latency is
// the one term that does NOT cancel between the legs.
const durableServeFloor = 0.005

// CheckRecoveryBaseline compares current against baseline durable/memory
// serving ratios, failing any app whose ratio regressed by more than
// tolerance below its baseline or under the absolute floor. Same shape
// as CheckServeRemoteBaseline: ratio-based so hardware variance cancels,
// missing measurements fail, new apps pass.
func CheckRecoveryBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := DurableServeRatios(current)
	if err != nil {
		return err
	}
	base, err := DurableServeRatios(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.0f%%)", name, 100*base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		switch {
		case c < floor:
			failures = append(failures,
				fmt.Sprintf("%s: durable/memory %.0f%%, below %.0f%% (baseline %.0f%% - %.0f%%)",
					name, 100*c, 100*floor, 100*base[name], tolerance*100))
		case c < durableServeFloor:
			failures = append(failures,
				fmt.Sprintf("%s: durable serving under the absolute floor (%.0f%% < %.0f%% of in-memory)",
					name, 100*c, 100*durableServeFloor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("durable serving ratio regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// WireSpeedups extracts the per-direction v2/gob throughput ratios from
// a wire experiment's Perf map — how much faster the binary codec moves
// frames than gob on each of encode and decode.
func WireSpeedups(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/v2")
		if !ok || strings.HasSuffix(name, "_allocs") || name == "bytes_per_txn" {
			continue
		}
		g, ok := e.Perf[name+"/gob"]
		if !ok || g.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable gob/v2 pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / g.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <direction>/v2 Perf entries", e.ID)
	}
	return out, nil
}

// WireAllocImprovement extracts the combined encode+decode allocation
// improvement — total gob allocations per frame divided by total v2
// allocations per frame. The sides are summed before dividing so a
// zero-allocation encode path (the steady state) cannot blow the ratio
// up to infinity: the decode side keeps the denominator finite.
func WireAllocImprovement(e *Experiment) (float64, error) {
	var gob, v2 float64
	for _, dir := range []string{"encode", "decode"} {
		g, okG := e.Perf[dir+"_allocs/gob"]
		v, okV := e.Perf[dir+"_allocs/v2"]
		if !okG || !okV {
			return 0, fmt.Errorf("bench: experiment %q is missing %s_allocs entries", e.ID, dir)
		}
		gob += g.OpsPerSec
		v2 += v.OpsPerSec
	}
	if v2 < 1 {
		v2 = 1 // fully allocation-free v2 would divide by zero
	}
	if gob <= 0 {
		return 0, fmt.Errorf("bench: experiment %q reports no gob allocations — the measurement is broken", e.ID)
	}
	return gob / v2, nil
}

// Absolute acceptance floors for the wire codec, independent of the
// committed baseline: v2 must move frames at least twice as fast as gob
// in each direction and allocate at least five times less overall. These
// are the repository's published claims for the codec; a baseline
// refresh must not be able to ratchet them away.
const (
	wireSpeedupFloor = 2.0
	wireAllocFloor   = 5.0
)

// CheckWireBaseline compares current against baseline wire ratios. It
// fails when a direction's v2/gob throughput ratio regressed by more
// than tolerance below its baseline or under the absolute 2x floor, when
// the combined allocation improvement fell likewise (absolute floor 5x),
// or when v2 frames grew beyond tolerance past the baseline bytes/txn —
// the compactness half of the codec's contract.
func CheckWireBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := WireSpeedups(current)
	if err != nil {
		return err
	}
	base, err := WireSpeedups(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.2fx)", name, base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		switch {
		case c < floor:
			failures = append(failures,
				fmt.Sprintf("%s: v2/gob %.2fx, below %.2fx (baseline %.2fx - %.0f%%)",
					name, c, floor, base[name], tolerance*100))
		case c < wireSpeedupFloor:
			failures = append(failures,
				fmt.Sprintf("%s: v2 under the absolute floor (%.2fx < %.1fx gob throughput)", name, c, wireSpeedupFloor))
		}
	}

	curAlloc, err := WireAllocImprovement(current)
	if err != nil {
		failures = append(failures, err.Error())
	} else if baseAlloc, err := WireAllocImprovement(baseline); err != nil {
		failures = append(failures, fmt.Sprintf("baseline: %v", err))
	} else {
		floor := baseAlloc * (1 - tolerance)
		switch {
		case curAlloc < floor:
			failures = append(failures,
				fmt.Sprintf("allocs: gob/v2 improvement %.1fx, below %.1fx (baseline %.1fx - %.0f%%)",
					curAlloc, floor, baseAlloc, tolerance*100))
		case curAlloc < wireAllocFloor:
			failures = append(failures,
				fmt.Sprintf("allocs: improvement under the absolute floor (%.1fx < %.1fx fewer than gob)", curAlloc, wireAllocFloor))
		}
	}

	// Bytes/txn is deterministic (no hardware variance), so the check is
	// direct: current v2 frames may not outgrow the baseline by more than
	// tolerance, and must stay under gob-sized frames outright.
	curB, okC := current.Perf["bytes_per_txn/v2"]
	baseB, okB := baseline.Perf["bytes_per_txn/v2"]
	curG, okG := current.Perf["bytes_per_txn/gob"]
	switch {
	case !okC || !okG:
		failures = append(failures, "bytes_per_txn entries missing from current run")
	case !okB:
		failures = append(failures, "bytes_per_txn/v2 missing from baseline")
	default:
		if curB.OpsPerSec > baseB.OpsPerSec*(1+tolerance) {
			failures = append(failures,
				fmt.Sprintf("bytes/txn: v2 frames grew to %.0f B/txn, over baseline %.0f + %.0f%%",
					curB.OpsPerSec, baseB.OpsPerSec, tolerance*100))
		}
		if curB.OpsPerSec >= curG.OpsPerSec {
			failures = append(failures,
				fmt.Sprintf("bytes/txn: v2 frames (%.0f B/txn) no smaller than gob (%.0f B/txn)",
					curB.OpsPerSec, curG.OpsPerSec))
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("wire codec regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// Loadgen gate parameters. Unlike the ratio gates, the loadgen gate
// compares raw steady-state throughput across runs, so it only means
// something when current and baseline ran on comparable hardware —
// HostWarnings flags the comparison when they did not, and CI runs it
// with a generous tolerance.
const (
	// loadgenP99Headroom is how far the steady p99 may drift above the
	// baseline before the gate fails; the effective ceiling is
	// baseline x headroom x (1 + tolerance). Tail latency under
	// contention is far noisier than throughput — back-to-back runs on
	// one machine swing 3x on p99 while throughput moves under 1% — so
	// the multiplier is wide and the caller's tolerance loosens it
	// further. The gate exists to catch order-of-magnitude tail
	// collapse (a lost pipelining path, a serialization stall), not
	// single-digit-percent drift.
	loadgenP99Headroom = 4.0
	// loadgenErrorRateCeiling is the absolute steady-state error-rate
	// ceiling: more than 1% of offered load failing is a broken run
	// regardless of what the baseline tolerated.
	loadgenErrorRateCeiling = 0.01
)

// LoadgenSteady extracts the steady-state phase from a loadgen
// experiment's embedded report.
func LoadgenSteady(e *Experiment) (loadgen.PhaseStats, error) {
	if e.Load == nil {
		return loadgen.PhaseStats{}, fmt.Errorf("bench: experiment %q carries no loadgen report", e.ID)
	}
	s := e.Load.Steady()
	if s.Phase == "" || s.Ops <= 0 {
		return loadgen.PhaseStats{}, fmt.Errorf("bench: experiment %q has no usable steady window", e.ID)
	}
	return s, nil
}

// CheckLoadgenBaseline compares a loadgen run against its baseline:
// steady-state throughput may not fall more than tolerance below the
// baseline, steady p99 may not exceed the baseline by more than the
// fixed headroom, and the steady error rate may not exceed the absolute
// ceiling. Ramp windows never gate.
func CheckLoadgenBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := LoadgenSteady(current)
	if err != nil {
		return err
	}
	base, err := LoadgenSteady(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var failures []string
	if floor := base.OpsPerSec * (1 - tolerance); cur.OpsPerSec < floor {
		failures = append(failures,
			fmt.Sprintf("throughput: steady %.0f ops/s, below %.0f (baseline %.0f - %.0f%%)",
				cur.OpsPerSec, floor, base.OpsPerSec, tolerance*100))
	}
	if ceiling := base.P99Ms * loadgenP99Headroom * (1 + tolerance); base.P99Ms > 0 && cur.P99Ms > ceiling {
		failures = append(failures,
			fmt.Sprintf("latency: steady p99 %.2f ms, over %.2f (baseline %.2f x %.1f headroom x %.2f)",
				cur.P99Ms, ceiling, base.P99Ms, loadgenP99Headroom, 1+tolerance))
	}
	if rate := current.Load.ErrorRate(); rate > loadgenErrorRateCeiling {
		failures = append(failures,
			fmt.Sprintf("errors: steady error rate %.4f over the absolute %.2f ceiling", rate, loadgenErrorRateCeiling))
	}
	if len(failures) > 0 {
		return fmt.Errorf("sustained-load run regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// HostWarnings compares the hosts two experiments ran on and returns a
// human-readable warning per mismatched dimension. Ratio gates cancel
// hardware variance, but the loadgen gate compares raw throughput, so a
// cross-host comparison deserves a loud flag even when it passes.
func HostWarnings(current, baseline *Experiment) []string {
	if current.Host == nil || baseline.Host == nil {
		return nil // pre-metadata artifacts: nothing to compare
	}
	c, b := current.Host, baseline.Host
	var warns []string
	if c.NumCPU != b.NumCPU || c.GOMAXPROCS != b.GOMAXPROCS {
		warns = append(warns, fmt.Sprintf("cpu: current %d cores / GOMAXPROCS %d vs baseline %d / %d",
			c.NumCPU, c.GOMAXPROCS, b.NumCPU, b.GOMAXPROCS))
	}
	if c.OS != b.OS || c.Arch != b.Arch {
		warns = append(warns, fmt.Sprintf("platform: current %s/%s vs baseline %s/%s", c.OS, c.Arch, b.OS, b.Arch))
	}
	if c.GoVersion != b.GoVersion {
		warns = append(warns, fmt.Sprintf("toolchain: current %s vs baseline %s", c.GoVersion, b.GoVersion))
	}
	return warns
}

// DefaultBaseline returns the committed baseline path for a gated
// experiment ID, relative to the repository root.
func DefaultBaseline(id string) (string, error) {
	switch id {
	case "engine", "serve_remote", "wire", "recovery", "loadgen":
		return "internal/bench/testdata/BENCH_" + id + "_baseline.json", nil
	}
	return "", fmt.Errorf("no default baseline for experiment %q", id)
}

// Gate dispatches an experiment to its baseline check by ID, writing a
// per-measure summary (and any cross-host warnings) to w first. This is
// the one entry point cmd/benchgate and ipabench's -baseline flag
// share, so a new gate lands in both by extending the switch here.
func Gate(current, baseline *Experiment, tolerance float64, w io.Writer) error {
	if w == nil {
		w = io.Discard
	}
	if current.ID != baseline.ID {
		return fmt.Errorf("bench: gating %q against a %q baseline", current.ID, baseline.ID)
	}
	for _, warn := range HostWarnings(current, baseline) {
		fmt.Fprintf(w, "warning: host mismatch — %s\n", warn)
	}
	switch current.ID {
	case "engine":
		if ratios, err := EngineSpeedups(current); err == nil {
			baseRatios, _ := EngineSpeedups(baseline)
			for _, n := range sortedRatioKeys(ratios) {
				fmt.Fprintf(w, "%-12s compiled/interpreted %.2fx (baseline %.2fx)\n", n, ratios[n], baseRatios[n])
			}
		}
		return CheckEngineBaseline(current, baseline, tolerance)
	case "serve_remote":
		if ratios, err := ServeRemoteRatios(current); err == nil {
			baseRatios, _ := ServeRemoteRatios(baseline)
			for _, n := range sortedRatioKeys(ratios) {
				fmt.Fprintf(w, "%-12s remote/in-process %.0f%% (baseline %.0f%%)\n", n, 100*ratios[n], 100*baseRatios[n])
			}
		}
		return CheckServeRemoteBaseline(current, baseline, tolerance)
	case "wire":
		if ratios, err := WireSpeedups(current); err == nil {
			baseRatios, _ := WireSpeedups(baseline)
			for _, n := range sortedRatioKeys(ratios) {
				fmt.Fprintf(w, "%-12s v2/gob %.2fx (baseline %.2fx)\n", n, ratios[n], baseRatios[n])
			}
		}
		if alloc, err := WireAllocImprovement(current); err == nil {
			baseAlloc, _ := WireAllocImprovement(baseline)
			fmt.Fprintf(w, "%-12s gob/v2 %.1fx fewer (baseline %.1fx)\n", "allocs", alloc, baseAlloc)
		}
		return CheckWireBaseline(current, baseline, tolerance)
	case "recovery":
		if ratios, err := DurableServeRatios(current); err == nil {
			baseRatios, _ := DurableServeRatios(baseline)
			for _, n := range sortedRatioKeys(ratios) {
				fmt.Fprintf(w, "%-12s durable/memory %.0f%% (baseline %.0f%%)\n", n, 100*ratios[n], 100*baseRatios[n])
			}
		}
		return CheckRecoveryBaseline(current, baseline, tolerance)
	case "loadgen":
		if cur, err := LoadgenSteady(current); err == nil {
			if base, err := LoadgenSteady(baseline); err == nil {
				fmt.Fprintf(w, "%-12s steady %.0f ops/s (baseline %.0f)\n", "throughput", cur.OpsPerSec, base.OpsPerSec)
				fmt.Fprintf(w, "%-12s steady p99 %.2f ms (baseline %.2f)\n", "latency", cur.P99Ms, base.P99Ms)
				fmt.Fprintf(w, "%-12s steady error rate %.4f (ceiling %.2f)\n", "errors", current.Load.ErrorRate(), loadgenErrorRateCeiling)
			}
		}
		return CheckLoadgenBaseline(current, baseline, tolerance)
	}
	return fmt.Errorf("experiment %q has no gate (want engine, serve_remote, wire, recovery or loadgen)", current.ID)
}

// sortedRatioKeys orders a gate's measure names for stable output.
func sortedRatioKeys(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckEngineBaseline compares current against baseline speed-ups and
// returns an error naming every spec whose compiled/interpreted ratio
// regressed by more than tolerance (0.20 = fail below 80% of baseline).
// Specs present only in current pass (new specs need a baseline refresh,
// not a red build); specs missing from current fail — a silently dropped
// measurement must not read as green.
func CheckEngineBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := EngineSpeedups(current)
	if err != nil {
		return err
	}
	base, err := EngineSpeedups(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.2fx)", name, base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		if c < floor {
			failures = append(failures,
				fmt.Sprintf("%s: compiled/interpreted %.2fx, below %.2fx (baseline %.2fx - %.0f%%)",
					name, c, floor, base[name], tolerance*100))
		} else if c < 1 {
			// Absolute floor, independent of the baseline: the compiled
			// executor being slower than the reference interpreter means
			// the compilation pass has stopped paying for itself.
			failures = append(failures,
				fmt.Sprintf("%s: compiled executor slower than the interpreter (%.2fx)", name, c))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("engine speed-up regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
