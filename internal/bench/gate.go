package bench

// The engine regression gate: compares a freshly measured engine
// experiment (BENCH_engine.json) against the committed baseline and
// fails when the compiled executor's advantage over the interpreter has
// eroded. Gating on the compiled/interpreted ratio — not raw ops/sec —
// makes the check machine-independent: both executors run in the same
// process on the same runner, so hardware variance cancels and what
// remains is the compilation pass itself.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ReadExperimentJSON loads a BENCH_<id>.json artifact.
func ReadExperimentJSON(path string) (*Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Experiment
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("bench: bad experiment file %s: %w", path, err)
	}
	return &e, nil
}

// EngineSpeedups extracts the per-spec compiled/interpreted throughput
// ratios from an engine experiment's Perf map.
func EngineSpeedups(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/compiled")
		if !ok {
			continue
		}
		i, ok := e.Perf[name+"/interpreted"]
		if !ok || i.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable executor pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / i.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <spec>/compiled Perf entries", e.ID)
	}
	return out, nil
}

// ServeRemoteRatios extracts the per-app remote/in-process throughput
// ratios from a serve_remote experiment's Perf map — the fraction of
// in-process serving throughput the wire protocol retains.
func ServeRemoteRatios(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/remote")
		if !ok {
			continue
		}
		i, ok := e.Perf[name+"/inproc"]
		if !ok || i.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable remote/inproc pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / i.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <app>/remote Perf entries", e.ID)
	}
	return out, nil
}

// serveRemoteFloor is the absolute acceptance floor, independent of the
// committed baseline: remote serving must retain at least half of the
// in-process throughput at the benchmark's default pipeline depth.
const serveRemoteFloor = 0.50

// CheckServeRemoteBaseline compares current against baseline
// remote/in-process ratios, failing any app whose ratio regressed by
// more than tolerance below its baseline or under the absolute 50%
// floor. Same shape as CheckEngineBaseline: ratio-based so hardware
// variance cancels, missing measurements fail, new apps pass.
func CheckServeRemoteBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := ServeRemoteRatios(current)
	if err != nil {
		return err
	}
	base, err := ServeRemoteRatios(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.0f%%)", name, 100*base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		switch {
		case c < floor:
			failures = append(failures,
				fmt.Sprintf("%s: remote/in-process %.0f%%, below %.0f%% (baseline %.0f%% - %.0f%%)",
					name, 100*c, 100*floor, 100*base[name], tolerance*100))
		case c < serveRemoteFloor:
			failures = append(failures,
				fmt.Sprintf("%s: remote serving under the absolute floor (%.0f%% < %.0f%% of in-process)",
					name, 100*c, 100*serveRemoteFloor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("remote serving ratio regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// DurableServeRatios extracts the per-app durable/memory throughput
// ratios from a recovery experiment's Perf map — the fraction of
// in-memory serving throughput that survives turning on the WAL's
// fsync-before-ack group commit.
func DurableServeRatios(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/durable")
		if !ok {
			continue
		}
		m, ok := e.Perf[name+"/memory"]
		if !ok || m.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable durable/memory pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / m.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <app>/durable Perf entries", e.ID)
	}
	return out, nil
}

// durableServeFloor is the absolute acceptance floor for durable
// serving, independent of the committed baseline. It is deliberately
// low: the serving loop is a single closed-loop client, so every commit
// pays a full group-commit round (one fsync, nobody to share it with)
// against an in-memory commit measured in microseconds — the WAL's
// worst case, with measured ratios in the single-digit percents on
// ordinary disks. The floor catches collapse (a lost batching path, an
// accidental double fsync), not erosion; erosion is the baseline
// check's job, run with a generous tolerance because fsync latency is
// the one term that does NOT cancel between the legs.
const durableServeFloor = 0.005

// CheckRecoveryBaseline compares current against baseline durable/memory
// serving ratios, failing any app whose ratio regressed by more than
// tolerance below its baseline or under the absolute floor. Same shape
// as CheckServeRemoteBaseline: ratio-based so hardware variance cancels,
// missing measurements fail, new apps pass.
func CheckRecoveryBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := DurableServeRatios(current)
	if err != nil {
		return err
	}
	base, err := DurableServeRatios(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.0f%%)", name, 100*base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		switch {
		case c < floor:
			failures = append(failures,
				fmt.Sprintf("%s: durable/memory %.0f%%, below %.0f%% (baseline %.0f%% - %.0f%%)",
					name, 100*c, 100*floor, 100*base[name], tolerance*100))
		case c < durableServeFloor:
			failures = append(failures,
				fmt.Sprintf("%s: durable serving under the absolute floor (%.0f%% < %.0f%% of in-memory)",
					name, 100*c, 100*durableServeFloor))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("durable serving ratio regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// WireSpeedups extracts the per-direction v2/gob throughput ratios from
// a wire experiment's Perf map — how much faster the binary codec moves
// frames than gob on each of encode and decode.
func WireSpeedups(e *Experiment) (map[string]float64, error) {
	out := map[string]float64{}
	for key, p := range e.Perf {
		name, ok := strings.CutSuffix(key, "/v2")
		if !ok || strings.HasSuffix(name, "_allocs") || name == "bytes_per_txn" {
			continue
		}
		g, ok := e.Perf[name+"/gob"]
		if !ok || g.OpsPerSec <= 0 || p.OpsPerSec <= 0 {
			return nil, fmt.Errorf("bench: experiment %q has no usable gob/v2 pair for %q", e.ID, name)
		}
		out[name] = p.OpsPerSec / g.OpsPerSec
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: experiment %q carries no <direction>/v2 Perf entries", e.ID)
	}
	return out, nil
}

// WireAllocImprovement extracts the combined encode+decode allocation
// improvement — total gob allocations per frame divided by total v2
// allocations per frame. The sides are summed before dividing so a
// zero-allocation encode path (the steady state) cannot blow the ratio
// up to infinity: the decode side keeps the denominator finite.
func WireAllocImprovement(e *Experiment) (float64, error) {
	var gob, v2 float64
	for _, dir := range []string{"encode", "decode"} {
		g, okG := e.Perf[dir+"_allocs/gob"]
		v, okV := e.Perf[dir+"_allocs/v2"]
		if !okG || !okV {
			return 0, fmt.Errorf("bench: experiment %q is missing %s_allocs entries", e.ID, dir)
		}
		gob += g.OpsPerSec
		v2 += v.OpsPerSec
	}
	if v2 < 1 {
		v2 = 1 // fully allocation-free v2 would divide by zero
	}
	if gob <= 0 {
		return 0, fmt.Errorf("bench: experiment %q reports no gob allocations — the measurement is broken", e.ID)
	}
	return gob / v2, nil
}

// Absolute acceptance floors for the wire codec, independent of the
// committed baseline: v2 must move frames at least twice as fast as gob
// in each direction and allocate at least five times less overall. These
// are the repository's published claims for the codec; a baseline
// refresh must not be able to ratchet them away.
const (
	wireSpeedupFloor = 2.0
	wireAllocFloor   = 5.0
)

// CheckWireBaseline compares current against baseline wire ratios. It
// fails when a direction's v2/gob throughput ratio regressed by more
// than tolerance below its baseline or under the absolute 2x floor, when
// the combined allocation improvement fell likewise (absolute floor 5x),
// or when v2 frames grew beyond tolerance past the baseline bytes/txn —
// the compactness half of the codec's contract.
func CheckWireBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := WireSpeedups(current)
	if err != nil {
		return err
	}
	base, err := WireSpeedups(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.2fx)", name, base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		switch {
		case c < floor:
			failures = append(failures,
				fmt.Sprintf("%s: v2/gob %.2fx, below %.2fx (baseline %.2fx - %.0f%%)",
					name, c, floor, base[name], tolerance*100))
		case c < wireSpeedupFloor:
			failures = append(failures,
				fmt.Sprintf("%s: v2 under the absolute floor (%.2fx < %.1fx gob throughput)", name, c, wireSpeedupFloor))
		}
	}

	curAlloc, err := WireAllocImprovement(current)
	if err != nil {
		failures = append(failures, err.Error())
	} else if baseAlloc, err := WireAllocImprovement(baseline); err != nil {
		failures = append(failures, fmt.Sprintf("baseline: %v", err))
	} else {
		floor := baseAlloc * (1 - tolerance)
		switch {
		case curAlloc < floor:
			failures = append(failures,
				fmt.Sprintf("allocs: gob/v2 improvement %.1fx, below %.1fx (baseline %.1fx - %.0f%%)",
					curAlloc, floor, baseAlloc, tolerance*100))
		case curAlloc < wireAllocFloor:
			failures = append(failures,
				fmt.Sprintf("allocs: improvement under the absolute floor (%.1fx < %.1fx fewer than gob)", curAlloc, wireAllocFloor))
		}
	}

	// Bytes/txn is deterministic (no hardware variance), so the check is
	// direct: current v2 frames may not outgrow the baseline by more than
	// tolerance, and must stay under gob-sized frames outright.
	curB, okC := current.Perf["bytes_per_txn/v2"]
	baseB, okB := baseline.Perf["bytes_per_txn/v2"]
	curG, okG := current.Perf["bytes_per_txn/gob"]
	switch {
	case !okC || !okG:
		failures = append(failures, "bytes_per_txn entries missing from current run")
	case !okB:
		failures = append(failures, "bytes_per_txn/v2 missing from baseline")
	default:
		if curB.OpsPerSec > baseB.OpsPerSec*(1+tolerance) {
			failures = append(failures,
				fmt.Sprintf("bytes/txn: v2 frames grew to %.0f B/txn, over baseline %.0f + %.0f%%",
					curB.OpsPerSec, baseB.OpsPerSec, tolerance*100))
		}
		if curB.OpsPerSec >= curG.OpsPerSec {
			failures = append(failures,
				fmt.Sprintf("bytes/txn: v2 frames (%.0f B/txn) no smaller than gob (%.0f B/txn)",
					curB.OpsPerSec, curG.OpsPerSec))
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("wire codec regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// CheckEngineBaseline compares current against baseline speed-ups and
// returns an error naming every spec whose compiled/interpreted ratio
// regressed by more than tolerance (0.20 = fail below 80% of baseline).
// Specs present only in current pass (new specs need a baseline refresh,
// not a red build); specs missing from current fail — a silently dropped
// measurement must not read as green.
func CheckEngineBaseline(current, baseline *Experiment, tolerance float64) error {
	cur, err := EngineSpeedups(current)
	if err != nil {
		return err
	}
	base, err := EngineSpeedups(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		c, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (baseline %.2fx)", name, base[name]))
			continue
		}
		floor := base[name] * (1 - tolerance)
		if c < floor {
			failures = append(failures,
				fmt.Sprintf("%s: compiled/interpreted %.2fx, below %.2fx (baseline %.2fx - %.0f%%)",
					name, c, floor, base[name], tolerance*100))
		} else if c < 1 {
			// Absolute floor, independent of the baseline: the compiled
			// executor being slower than the reference interpreter means
			// the compilation pass has stopped paying for itself.
			failures = append(failures,
				fmt.Sprintf("%s: compiled executor slower than the interpreter (%.2fx)", name, c))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("engine speed-up regressed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
