package bench

import (
	"fmt"
	"math/rand"
	"time"

	"ipa/internal/analysis"
	"ipa/internal/apps/ticket"
	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/indigo"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// The ablations probe design decisions DESIGN.md calls out, beyond the
// paper's own figures:
//
//   - AblationNumeric: three mechanisms for the ticket bound — ignore it
//     (Causal), repair lazily (IPA compensations), or prevent up-front
//     (escrow reservations, the Indigo/bounded-counter route).
//   - AblationTouch: the touch operation vs a plain re-add: how many
//     entity payloads survive concurrent remove/restore races.
//   - AblationStability: CRDT metadata growth with and without
//     stability-based garbage collection.
//   - AblationScope: analysis cost and findings at scope 2 vs scope 3.

// AblationNumeric compares overselling, latency, and refusals across the
// three numeric-invariant mechanisms on the ticket workload.
func AblationNumeric(opts ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "ablation-numeric",
		Title:  "Ticket bound: Causal vs IPA compensations vs escrow reservations",
		XLabel: "mechanism",
		YLabel: "latency ms",
		XTicks: []string{"Causal", "IPA", "Escrow"},
	}
	const capacity = 40
	const events = 10
	clients := opts.FixedClients * 4 // enough load to provoke overselling

	s := Series{Name: "mechanisms"}
	for i, mode := range []string{"Causal", "IPA", "Escrow"} {
		sim, cluster, lat := NewPaperCluster(opts.Seed + 17)
		variant := ticket.Causal
		if mode == "IPA" {
			variant = ticket.IPA
		}
		app := ticket.New(variant, capacity)
		w := NewTicketWorkload(app, events)
		w.Seed(runtime.NewSimCluster(cluster))
		sim.Run()

		var esc *indigo.Escrow
		var denied uint64
		if mode == "Escrow" {
			esc = indigo.NewEscrow(lat, cluster.Replicas())
			for _, ev := range w.EventNames() {
				esc.Create(ev, capacity)
			}
		}

		d := NewDriver(sim, cluster, lat, Causal)
		workload := w.Next
		if esc != nil {
			// A dedicated escrow workload: a buy first consumes a unit of
			// the event's rights; refusals are observable cheap rounds.
			workload = func(rng *rand.Rand, site clock.ReplicaID) OpSpec {
				ev := w.event(rng.Intn(w.Events))
				buyer := fmt.Sprintf("buyer-%s", site)
				if rng.Float64() < w.BuyFraction {
					delay, ok := esc.Consume(ev, site, 1)
					if !ok {
						denied++
						// The refusal is still an operation the client
						// observes: a cheap local round.
						return OpSpec{Label: "Buy", ExtraDelay: delay,
							Exec: func(r runtime.Replica) *store.Txn { return nil }}
					}
					return OpSpec{Label: "Buy", IsWrite: true, ExtraDelay: delay,
						Exec: func(r runtime.Replica) *store.Txn {
							_, tx := app.Buy(r, buyer, ev)
							return tx
						}}
				}
				return OpSpec{Label: "View", Reads: 1,
					Exec: func(r runtime.Replica) *store.Txn {
						_, tx := app.View(r, ev)
						return tx
					}}
			}
		}
		d.Run(workload, clients, opts.Duration)
		sim.Run()

		violations := 0
		sold := 0
		first := cluster.Replica(cluster.Replicas()[0])
		if mode == "IPA" {
			// Reads repair any residual overshoot.
			for _, ev := range w.EventNames() {
				app.View(first, ev)
			}
			sim.Run()
		}
		for _, ev := range w.EventNames() {
			violations += app.Oversold(first, ev)
			sold += app.Sold(first, ev)
		}
		s.Points = append(s.Points, Point{
			X: float64(i),
			Y: d.Rec.Mean("Buy"),
			Aux: map[string]float64{
				"violations": float64(violations),
				"sold":       float64(sold),
				"denied":     float64(denied),
			},
		})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"expected: Causal oversells (violations > 0); IPA sells optimistically and compensates to 0;",
		"escrow never oversells but refuses buyers once rights run out and pays transfer RTTs.")
	return e
}

// AblationTouch measures payload survival under concurrent remove/restore
// races, with the restore implemented as touch versus as a plain re-add.
func AblationTouch(opts ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "ablation-touch",
		Title:  "Touch vs plain re-add: payload survival under remove/restore races",
		XLabel: "strategy",
		YLabel: "payloads intact %",
		XTicks: []string{"touch", "re-add"},
	}
	const entities = 64
	s := Series{Name: "survival"}
	for i, useTouch := range []bool{true, false} {
		sim, cluster, _ := NewPaperCluster(opts.Seed + int64(i))
		sites := cluster.Replicas()
		seedTx := cluster.Replica(sites[0]).Begin()
		for k := 0; k < entities; k++ {
			store.AWSetAt(seedTx, "entities").Add(fmt.Sprintf("e%03d", k), fmt.Sprintf("payload-%03d", k))
		}
		seedTx.Commit()
		sim.Run()

		// Every entity: one replica removes, another concurrently
		// restores (the IPA extra effect).
		rng := rand.New(rand.NewSource(opts.Seed))
		for k := 0; k < entities; k++ {
			el := fmt.Sprintf("e%03d", k)
			r1 := cluster.Replica(sites[rng.Intn(len(sites))])
			r2 := cluster.Replica(sites[(rng.Intn(2)+1+indexOf(sites, r1.ID()))%len(sites)])
			tx1 := r1.Begin()
			store.AWSetAt(tx1, "entities").Remove(el)
			tx1.Commit()
			tx2 := r2.Begin()
			if useTouch {
				store.AWSetAt(tx2, "entities").Touch(el)
			} else {
				store.AWSetAt(tx2, "entities").Add(el, "") // plain re-add loses the payload
			}
			tx2.Commit()
		}
		sim.Run()

		intact := 0
		tx := cluster.Replica(sites[0]).Begin()
		set := store.AWSetAt(tx, "entities")
		for k := 0; k < entities; k++ {
			el := fmt.Sprintf("e%03d", k)
			if p, ok := set.Payload(el); ok && p == fmt.Sprintf("payload-%03d", k) {
				intact++
			}
		}
		tx.Commit()
		s.Points = append(s.Points, Point{X: float64(i), Y: 100 * float64(intact) / entities})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"expected: touch preserves ~100% of payloads; a plain re-add loses every payload that",
		"races with a concurrent remove.")
	return e
}

func indexOf(ids []clock.ReplicaID, id clock.ReplicaID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return 0
}

// AblationStability measures CRDT metadata growth with and without
// stability-based garbage collection over a churn-heavy workload.
func AblationStability(opts ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "ablation-stability",
		Title:  "Stability GC: metadata entries with and without compaction",
		XLabel: "strategy",
		YLabel: "metadata entries",
		XTicks: []string{"with GC", "without GC"},
	}
	const churn = 600
	s := Series{Name: "rw-set metadata"}
	for i, gc := range []bool{true, false} {
		sim, cluster, _ := NewPaperCluster(opts.Seed + 5)
		sites := cluster.Replicas()
		rng := rand.New(rand.NewSource(opts.Seed))
		for step := 0; step < churn; step++ {
			r := cluster.Replica(sites[rng.Intn(len(sites))])
			tx := r.Begin()
			el := fmt.Sprintf("e%02d", rng.Intn(16))
			if rng.Intn(2) == 0 {
				store.RWSetAt(tx, "churn").Add(el, "")
			} else {
				store.RWSetAt(tx, "churn").Remove(el)
			}
			tx.Commit()
			sim.RunUntil(sim.Now() + wan.Ms(10))
			if gc && step%50 == 49 {
				sim.Run()
				cluster.Stabilize()
			}
		}
		sim.Run()
		if gc {
			cluster.Stabilize()
		}
		obj, _ := cluster.Replica(sites[0]).Lookup("churn")
		meta := obj.(*crdt.RWSet).MetadataSize()
		s.Points = append(s.Points, Point{X: float64(i), Y: float64(meta)})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"expected: with periodic stability compaction the metadata stays near the live-element",
		"count; without it, tombstones and observation sets grow with the operation count.")
	return e
}

// AblationScope compares analysis findings and runtime at scope 2 vs 3 on
// the tournament's referential-integrity core.
func AblationScope(_ ExpOptions) *Experiment {
	e := &Experiment{
		ID:     "ablation-scope",
		Title:  "Analysis scope: conflicts found and runtime at scope 2 vs 3",
		XLabel: "scope",
		YLabel: "conflicting pairs",
		XTicks: []string{"", "", "scope 2", "scope 3"},
	}
	src := `
spec scopetest
invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
invariant forall (Tournament: t) :- #enrolled(*, t) <= Capacity
operation add_player(Player: p) {
    player(p) := true
}
operation rem_player(Player: p) {
    player(p) := false
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`
	sp := spec.MustParse(src)
	s := Series{Name: "findings"}
	for _, scope := range []int{2, 3} {
		start := time.Now()
		conflicts, err := analysis.FindConflicts(sp, analysis.Options{Scope: scope})
		elapsed := time.Since(start)
		if err != nil {
			e.Notes = append(e.Notes, "error: "+err.Error())
			continue
		}
		s.Points = append(s.Points, Point{
			X: float64(scope),
			Y: float64(len(conflicts)),
			Aux: map[string]float64{
				"runtime ms": float64(elapsed.Milliseconds()),
			},
		})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"expected: identical conflict sets (scope 2 suffices for these invariant shapes, since",
		"capacity constants are symbolic); scope 3 costs substantially more solver time.")
	return e
}
