// Package loadgen is the distributed load-generation subsystem: a
// coordinator drives N worker processes over a small length-prefixed
// control protocol; workers drive `ipa serve` targets through the wire
// protocol on a synchronized ramp-up → steady-state → ramp-down
// schedule and stream back counters plus mergeable latency histograms.
// Only steady-window samples make the headline numbers; the ramp
// windows absorb cold connections and drain effects, the shape sibench
// uses for storage benchmarks. The `ipabench loadgen` subcommand
// self-hosts workers in-process when no worker addresses are given, so
// the same code path runs single-host in CI and genuinely distributed
// across machines.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// Histogram bucket layout: values are non-negative integers
// (microseconds throughout this repository). Values below 2^subBits
// get exact unit buckets; above that, each power-of-two octave splits
// into 2^subBits linear sub-buckets, so a bucket's width is at most
// its lower bound / 2^subBits — recording at the bucket midpoint keeps
// the relative error of any quantile under 1/2^(subBits+1) (~0.8%).
// The layout is value-indexed and fixed, which is what makes two
// histograms mergeable by plain bucket-wise addition: shard them
// across workers, add them up, and the merged histogram is exactly the
// histogram of the union of the samples.
const (
	subBits    = 6
	subBuckets = 1 << subBits                    // 64
	numBuckets = subBuckets * (64 - subBits + 1) // covers all of int64
)

// Hist is a mergeable log-bucketed latency histogram. The zero value
// is ready to use. It is not goroutine-safe; record into per-goroutine
// histograms and Merge.
type Hist struct {
	counts []int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// bucketIdx maps a value to its bucket.
func bucketIdx(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	s := bits.Len64(uint64(v)) - subBits - 1
	return subBuckets*s + int(v>>uint(s))
}

// bucketMid returns the representative value (midpoint) of a bucket.
func bucketMid(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	s := idx/subBuckets - 1
	low := int64(subBuckets+idx%subBuckets) << uint(s)
	return low + (int64(1)<<uint(s))/2
}

// Record adds one sample. Negative values clamp to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]int64, numBuckets)
	}
	h.counts[bucketIdx(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() int64 { return h.sum }

// Min and Max return the exact extremes (0 on an empty histogram).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact mean (sums are tracked outside the buckets).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge folds another histogram into this one. Because the bucket
// layout is fixed, merge-then-quantile equals quantile-over-the-union:
// the property test pins it.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]int64, numBuckets)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Quantile returns the p-th percentile (0..100) as a value in the
// recorded unit, clamped to the exact [min, max] — so Quantile(0) and
// Quantile(100) are exact, and interior quantiles carry the bucket
// midpoint's bounded relative error.
func (h *Hist) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	// Nearest-rank on the same index convention as a sorted slice:
	// rank = p/100 * (n-1), take the sample at that (floor) index.
	rank := int64(p / 100 * float64(h.count-1))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// histJSON is the wire form: sparse [index, count] pairs, so an
// idle-phase histogram costs a few bytes, not numBuckets zeros.
type histJSON struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON serialises the histogram in sparse form.
func (h *Hist) MarshalJSON() ([]byte, error) {
	j := histJSON{Count: h.count, Sum: h.sum, Min: h.Min(), Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			j.Buckets = append(j.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a histogram from its sparse form, rejecting
// out-of-range bucket indexes and inconsistent totals (a malformed
// report must error, not corrupt a merge).
func (h *Hist) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*h = Hist{count: j.Count, sum: j.Sum, min: j.Min, max: j.Max}
	if len(j.Buckets) > 0 {
		h.counts = make([]int64, numBuckets)
	}
	var total int64
	for _, b := range j.Buckets {
		idx, c := b[0], b[1]
		if idx < 0 || idx >= numBuckets || c < 0 {
			return fmt.Errorf("loadgen: histogram bucket [%d, %d] out of range", idx, c)
		}
		h.counts[idx] += c
		total += c
	}
	if total != j.Count {
		return fmt.Errorf("loadgen: histogram bucket total %d != count %d", total, j.Count)
	}
	return nil
}
