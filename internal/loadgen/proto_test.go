package loadgen

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var h Hist
	for i := int64(0); i < 500; i++ {
		h.Record(i * 17)
	}
	msgs := []struct {
		t MsgType
		v any
	}{
		{MsgHello, Hello{Version: ProtoVersion}},
		{MsgWelcome, Welcome{Version: ProtoVersion, Host: Host()}},
		{MsgPrepare, WorkloadSpec{
			App: "tournament", Targets: []string{"127.0.0.1:6381"},
			Conns: 4, Pipeline: 8, RatePerSec: 100, Seed: 42,
			Mix:         []MixEntry{{Op: "enroll", Weight: 3, Args: [][]string{{"p0", "p1"}, {"t0"}}}},
			SeedCalls:   [][]string{{"add_player", "p0"}},
			WorkerIndex: 1, Workers: 2, ReportEvery: time.Second,
		}},
		{MsgReady, struct{}{}},
		{MsgStart, Schedule{RampUp: time.Second, Run: 5 * time.Second, RampDown: time.Second}},
		{MsgInterval, Interval{Worker: 1, Elapsed: 3 * time.Second, Phase: PhaseSteady, Ops: 100, Errors: 2, Refusals: 7, BytesIn: 4096, BytesOut: 8192}},
		{MsgDone, FinalReport{Worker: 1, Host: Host(), Phases: []PhaseReport{
			{Phase: PhaseSteady, Seconds: 5, Ops: 500, Refusals: 12, Reconnects: 1, Hist: &h},
		}}},
		{MsgStop, struct{}{}},
		{MsgError, ErrorMsg{Error: "boom"}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&buf, m.t, m.v); err != nil {
			t.Fatalf("write %s: %v", m.t, err)
		}
	}
	for _, m := range msgs {
		typ, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", m.t, err)
		}
		if typ != m.t {
			t.Fatalf("got type %s, want %s", typ, m.t)
		}
		if len(payload) == 0 {
			t.Fatalf("%s: empty payload", m.t)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after round trip", buf.Len())
	}
}

func TestFrameRoundTripSpec(t *testing.T) {
	// Field-level check on the richest message.
	spec := WorkloadSpec{
		App: "tournament", SpecSource: "app tournament { }",
		Targets: []string{"a:1", "b:2"}, Conns: 3, Pipeline: 16,
		Seed: 7, Mix: []MixEntry{{Op: "x", Weight: 1}},
		WorkerIndex: 2, Workers: 4, ReportEvery: 250 * time.Millisecond,
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPrepare, spec); err != nil {
		t.Fatal(err)
	}
	var back WorkloadSpec
	if err := readMsg(&buf, MsgPrepare, &back); err != nil {
		t.Fatal(err)
	}
	if back.App != spec.App || back.SpecSource != spec.SpecSource ||
		len(back.Targets) != 2 || back.Conns != 3 || back.Pipeline != 16 ||
		back.Seed != 7 || back.WorkerIndex != 2 || back.Workers != 4 ||
		back.ReportEvery != 250*time.Millisecond {
		t.Fatalf("round trip mangled spec: %+v", back)
	}
}

func TestFrameMalformed(t *testing.T) {
	zero := make([]byte, 5) // length 0
	if _, _, err := ReadFrame(bytes.NewReader(zero)); !errors.Is(err, ErrFrame) {
		t.Errorf("zero-length frame: err = %v, want ErrFrame", err)
	}

	huge := make([]byte, 5)
	binary.BigEndian.PutUint32(huge, MaxControlFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized frame: err = %v, want ErrFrame", err)
	}

	trunc := make([]byte, 5, 15)
	binary.BigEndian.PutUint32(trunc, 100)
	trunc[4] = byte(MsgHello)
	trunc = append(trunc, []byte("short")...)
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); !errors.Is(err, ErrFrame) {
		t.Errorf("truncated frame: err = %v, want ErrFrame", err)
	}

	if _, _, err := ReadFrame(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Errorf("truncated header read succeeded")
	}

	if err := WriteFrame(&bytes.Buffer{}, MsgError, strings.Repeat("x", MaxControlFrame)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized write: err = %v, want ErrFrame", err)
	}
}

func TestReadMsg(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgReady, struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := readMsg(&buf, MsgStart, nil); err == nil || !errors.Is(err, ErrFrame) {
		t.Errorf("wrong type: err = %v, want ErrFrame", err)
	}

	buf.Reset()
	if err := WriteFrame(&buf, MsgError, ErrorMsg{Error: "seed failed"}); err != nil {
		t.Fatal(err)
	}
	err := readMsg(&buf, MsgReady, nil)
	if err == nil || !strings.Contains(err.Error(), "seed failed") {
		t.Errorf("error frame: err = %v, want remote 'seed failed'", err)
	}
}

// FuzzControlFrame pins the protocol's panic-freedom: arbitrary bytes
// through the frame reader must error or parse, never panic, and never
// hand back an oversized payload.
func FuzzControlFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, MsgHello, Hello{Version: ProtoVersion})
	WriteFrame(&seed, MsgInterval, Interval{Ops: 1})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, 9, '{'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 8; i++ {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(payload)+1 > MaxControlFrame {
				t.Fatalf("payload %d exceeds frame bound", len(payload))
			}
			_ = typ.String()
			// Decoding the payload as any protocol message must not
			// panic either (readMsg's job on a live connection); errors
			// are fine, panics are not.
			var spec WorkloadSpec
			var rep FinalReport
			_ = json.Unmarshal(payload, &spec)
			_ = json.Unmarshal(payload, &rep)
		}
	})
}
