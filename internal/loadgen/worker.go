package loadgen

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/server"
)

// Worker is the load-generating side of the control protocol: it serves
// one coordinator session at a time, dialing driver connections to the
// `ipa serve` targets named in the Prepare spec and running the Start
// schedule against them. The zero value is ready; set Log for progress
// lines (the `ipabench worker` process logs to stderr).
type Worker struct {
	// Log, when set, receives human-readable progress lines.
	Log func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

// ListenAndServe runs a worker daemon: accept coordinator connections
// on addr and serve them one at a time (a worker drives one run at a
// time; a second coordinator queues in the accept backlog). This is
// `ipabench worker -listen addr`.
func ListenAndServe(addr string, w *Worker) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	w.logf("loadgen worker listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		w.logf("coordinator connected from %s", conn.RemoteAddr())
		if err := w.Serve(conn); err != nil && !errors.Is(err, io.EOF) {
			w.logf("session ended: %v", err)
		} else {
			w.logf("session complete")
		}
		conn.Close()
	}
}

// phaseAcc accumulates one phase's outcomes for one connection (or,
// merged, for a whole worker). Single-goroutine; merged across
// goroutines only after they finish.
type phaseAcc struct {
	hist       Hist
	ops        int64
	errors     int64
	refusals   int64
	reconnects int64
}

func (a *phaseAcc) merge(o *phaseAcc) {
	a.hist.Merge(&o.hist)
	a.ops += o.ops
	a.errors += o.errors
	a.refusals += o.refusals
	a.reconnects += o.reconnects
}

// session is one coordinator's run on this worker.
type session struct {
	w                 *Worker
	ctl               net.Conn
	writeMu           sync.Mutex // MsgInterval streams beside MsgDone
	spec              WorkloadSpec
	conns             []*driverConn
	gens              []*CallGen
	bytesIn, bytesOut atomic.Int64
}

func (s *session) send(t MsgType, v any) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return WriteFrame(s.ctl, t, v)
}

func (s *session) fail(err error) error {
	s.send(MsgError, ErrorMsg{Error: err.Error()})
	return err
}

// ListenAndServe accepts coordinator sessions on ln, serving one at a
// time until the listener closes — the `ipabench worker` daemon loop.
// Sessions are sequential by design: a worker commits its whole
// connection budget to one coordinator, so concurrent runs would
// contend; later arrivals queue in the accept backlog.
func (w *Worker) ListenAndServe(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := w.Serve(conn); err != nil {
			w.logf("session from %v: %v", conn.RemoteAddr(), err)
		}
		conn.Close()
	}
}

// Serve runs one coordinator session over conn: handshake, prepare,
// run, report. It returns when the session ends (cleanly or not); the
// caller owns the conn.
func (w *Worker) Serve(conn net.Conn) error {
	s := &session{w: w, ctl: conn}
	defer s.closeConns()

	var hello Hello
	if err := readMsg(conn, MsgHello, &hello); err != nil {
		return err
	}
	if hello.Version != ProtoVersion {
		return s.fail(fmt.Errorf("protocol version %d, worker speaks %d", hello.Version, ProtoVersion))
	}
	if err := s.send(MsgWelcome, Welcome{Version: ProtoVersion, Host: Host()}); err != nil {
		return err
	}

	if err := readMsg(conn, MsgPrepare, &s.spec); err != nil {
		return err
	}
	if err := s.prepare(); err != nil {
		return s.fail(err)
	}
	if err := s.send(MsgReady, struct{}{}); err != nil {
		return err
	}

	var sched Schedule
	if err := readMsg(conn, MsgStart, &sched); err != nil {
		return err
	}
	report, err := s.run(sched)
	if err != nil {
		return s.fail(err)
	}
	if err := s.send(MsgDone, report); err != nil {
		return err
	}
	// The coordinator closes (or sends Stop) once it has the report;
	// either way the session is over. The run's abort watcher already
	// consumed that frame — nothing more to read here.
	return nil
}

// prepare validates the spec, seeds the targets (worker 0), and dials
// the driver connections.
func (s *session) prepare() error {
	spec := &s.spec
	if spec.App == "" || len(spec.Targets) == 0 {
		return fmt.Errorf("spec names no app or no targets")
	}
	if spec.Conns <= 0 {
		spec.Conns = 1
	}
	if spec.Pipeline <= 0 {
		spec.Pipeline = 8
	}
	if spec.ReportEvery <= 0 {
		spec.ReportEvery = time.Second
	}
	for _, m := range spec.Mix {
		for _, pool := range m.Args {
			if len(pool) == 0 {
				return fmt.Errorf("op %q has an empty argument pool", m.Op)
			}
		}
	}

	// Discover each target's sites, and — as worker 0, exactly once
	// across the fleet — mount and seed the application, settling so
	// every site serves the seeded state before any worker starts.
	sitesOf := make(map[string][]string, len(spec.Targets))
	for _, addr := range spec.Targets {
		ctl, err := server.Dial(addr, dialTimeout)
		if err != nil {
			return fmt.Errorf("target %s: %w", addr, err)
		}
		sites, err := targetSites(ctl)
		if err == nil && spec.WorkerIndex == 0 {
			err = s.seedTarget(ctl)
		}
		ctl.Close()
		if err != nil {
			return fmt.Errorf("target %s: %w", addr, err)
		}
		sitesOf[addr] = sites
	}

	for i := 0; i < spec.Conns; i++ {
		addr := spec.Targets[i%len(spec.Targets)]
		sites := sitesOf[addr]
		d := &driverConn{
			addr: addr,
			site: sites[(spec.WorkerIndex*spec.Conns+i)%len(sites)],
			name: fmt.Sprintf("loadgen-w%d-c%d", spec.WorkerIndex, i),
			in:   &s.bytesIn,
			out:  &s.bytesOut,
		}
		if err := d.connect(); err != nil {
			return fmt.Errorf("conn %d to %s: %w", i, addr, err)
		}
		s.conns = append(s.conns, d)
		// Distinct per-connection streams, reproducible from the spec's
		// seed alone.
		gen, err := NewCallGen(spec.Mix, spec.Seed+int64(spec.WorkerIndex)*1_000_003+int64(i)*7919)
		if err != nil {
			return err
		}
		s.gens = append(s.gens, gen)
	}
	return nil
}

// seedTarget mounts the app if missing and runs the seed calls.
func (s *session) seedTarget(ctl *server.Client) error {
	spec := &s.spec
	rp, err := ctl.Do("APPS")
	if err != nil {
		return err
	}
	mounted := false
	for _, name := range rp.Strings() {
		if name == spec.App {
			mounted = true
		}
	}
	if !mounted {
		if spec.SpecSource == "" {
			return fmt.Errorf("app %q not mounted and the spec carries no source", spec.App)
		}
		if err := ctl.DoOK("MOUNT", spec.SpecSource); err != nil {
			return err
		}
	}
	for _, call := range spec.SeedCalls {
		rp, err := ctl.Do(append([]string{"CALL", spec.App}, call...)...)
		if err != nil {
			return err
		}
		if _, bad := callOutcome(rp); bad {
			return fmt.Errorf("seed %v: %s", call, rp.Str)
		}
	}
	return ctl.DoOK("SETTLE")
}

func (s *session) closeConns() {
	for _, d := range s.conns {
		d.close()
	}
}

// run executes the schedule: every connection drives its loop, an
// interval reporter streams cumulative counters, and a phase watcher
// snapshots the byte counters at window boundaries. The returned
// report's phases are in schedule order.
func (s *session) run(sched Schedule) (*FinalReport, error) {
	if sched.Run <= 0 {
		return nil, fmt.Errorf("schedule has no steady window")
	}
	t0 := time.Now()

	// Abort watch: a Stop frame mid-run cancels the schedule. The
	// watcher also notices the coordinator dying (read error) — a
	// headless worker must not keep hammering the targets.
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		if t, _, err := ReadFrame(s.ctl); err != nil || t == MsgStop {
			cancel()
		}
	}()

	accs := make([][3]phaseAcc, len(s.conns))
	var wg sync.WaitGroup
	for i, d := range s.conns {
		wg.Add(1)
		go func(i int, d *driverConn) {
			defer wg.Done()
			if s.spec.RatePerSec > 0 {
				s.runOpen(d, s.gens[i], sched, t0, &accs[i], stop)
			} else {
				s.runClosed(d, s.gens[i], sched, t0, &accs[i], stop)
			}
			d.close()
		}(i, d)
	}

	// Byte counters are worker-wide; snapshots at the window boundaries
	// split them into exact per-window deltas.
	var bytesMark [4][2]int64
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		marks := []time.Duration{0, sched.RampUp, sched.RampUp + sched.Run, sched.Total()}
		for i, m := range marks {
			select {
			case <-stop:
				for ; i < len(marks); i++ {
					bytesMark[i] = [2]int64{s.bytesIn.Load(), s.bytesOut.Load()}
				}
				return
			case <-time.After(time.Until(t0.Add(m))):
				bytesMark[i] = [2]int64{s.bytesIn.Load(), s.bytesOut.Load()}
			}
		}
	}()

	// Interval reporter: cumulative counters on the control conn.
	repStop := make(chan struct{})
	var repWg sync.WaitGroup
	repWg.Add(1)
	go func() {
		defer repWg.Done()
		tick := time.NewTicker(s.spec.ReportEvery)
		defer tick.Stop()
		for {
			select {
			case <-repStop:
				return
			case <-stop:
				return
			case <-tick.C:
				iv := Interval{
					Worker:   s.spec.WorkerIndex,
					Elapsed:  time.Since(t0),
					Phase:    Phases()[sched.phaseAt(time.Since(t0))],
					BytesIn:  s.bytesIn.Load(),
					BytesOut: s.bytesOut.Load(),
				}
				for _, d := range s.conns {
					iv.Ops += d.totalOps.Load()
					iv.Errors += d.totalErrors.Load()
					iv.Refusals += d.totalRefusals.Load()
				}
				s.send(MsgInterval, iv)
			}
		}
	}()

	wg.Wait()
	cancel() // unparks the snapshot watcher if drivers died early
	close(repStop)
	repWg.Wait()
	snapWg.Wait()

	rep := &FinalReport{Worker: s.spec.WorkerIndex, Host: Host()}
	windows := []float64{sched.RampUp.Seconds(), sched.Run.Seconds(), sched.RampDown.Seconds()}
	for ph, name := range Phases() {
		merged := phaseAcc{}
		for i := range accs {
			merged.merge(&accs[i][ph])
		}
		rep.Phases = append(rep.Phases, PhaseReport{
			Phase:      name,
			Seconds:    windows[ph],
			Ops:        merged.ops,
			Errors:     merged.errors,
			Refusals:   merged.refusals,
			Reconnects: merged.reconnects,
			BytesIn:    bytesMark[ph+1][0] - bytesMark[ph][0],
			BytesOut:   bytesMark[ph+1][1] - bytesMark[ph][1],
			Hist:       &merged.hist,
		})
	}
	return rep, nil
}

// record classifies one reply into an accumulator. Refusals are
// completed operations (guarded no-ops), counted within ops and again
// under refusals; only genuine server errors count as errors.
func (d *driverConn) record(acc *phaseAcc, rp server.Reply) {
	refusal, bad := callOutcome(rp)
	if bad {
		acc.errors++
		d.totalErrors.Add(1)
		return
	}
	acc.ops++
	d.totalOps.Add(1)
	if refusal {
		acc.refusals++
		d.totalRefusals.Add(1)
	}
}

// runClosed drives one connection closed-loop: send a pipelined batch,
// read its replies, attribute the batch to the phase it was issued in.
// A wire failure counts the batch as errors, reconnects, and
// continues; a connection that cannot come back stops (its peers keep
// serving).
func (s *session) runClosed(d *driverConn, gen *CallGen, sched Schedule, t0 time.Time, accs *[3]phaseAcc, stop <-chan struct{}) {
	deadline := t0.Add(sched.Total())
	depth := s.spec.Pipeline
	batch := make([][]string, 0, depth)
	for {
		select {
		case <-stop:
			return
		default:
		}
		el := time.Since(t0)
		if el >= sched.Total() {
			return
		}
		ph := sched.phaseAt(el)
		acc := &accs[ph]
		batch = batch[:0]
		for len(batch) < depth {
			batch = append(batch, gen.Next())
		}
		bt0 := time.Now()
		for _, call := range batch {
			d.cli.Send(append([]string{"CALL", s.spec.App}, call...)...)
		}
		err := d.cli.Flush()
		recvd := 0
		if err == nil {
			for range batch {
				rp, rerr := d.cli.Recv()
				if rerr != nil {
					err = rerr
					break
				}
				d.record(acc, rp)
				recvd++
			}
		}
		if err != nil {
			// The wire died mid-batch: replies already read are
			// recorded above; the unaccounted tail counts as errors.
			// Then reconnect and carry on.
			lost := int64(len(batch) - recvd)
			acc.errors += lost
			d.totalErrors.Add(lost)
			acc.reconnects++
			if rerr := d.reconnect(deadline); rerr != nil {
				s.w.logf("conn to %s gone for good: %v", d.addr, rerr)
				return
			}
			continue
		}
		perOp := time.Since(bt0) / time.Duration(len(batch))
		for range batch {
			acc.hist.Record(perOp.Microseconds())
		}
	}
}

// epochEnd says how an open-loop connection epoch finished.
type epochEnd int

const (
	epochDone      epochEnd = iota // schedule over, stopped, or conn dead
	epochReconnect                 // wire broke; reconnected, run another
)

// runOpen drives one connection open-loop: a pacer issues CALLs at the
// connection's rate share regardless of replies; a reader records
// issue-to-reply latency, so queueing delay under overload is measured
// rather than hidden (the coordinated-omission-free shape). On a wire
// failure the in-flight window drains as errors, the connection
// redials, and pacing resumes — offered load stays constant across
// server restarts.
func (s *session) runOpen(d *driverConn, gen *CallGen, sched Schedule, t0 time.Time, accs *[3]phaseAcc, stop <-chan struct{}) {
	// The worker's rate divides evenly across its connections; the
	// remainder lands on conn 0 so the aggregate is exact.
	rate := s.spec.RatePerSec / s.spec.Conns
	if d == s.conns[0] {
		rate += s.spec.RatePerSec % s.spec.Conns
	}
	if rate <= 0 {
		return
	}
	interval := time.Second / time.Duration(rate)
	for {
		if s.openEpoch(d, gen, sched, t0, interval, accs, stop) == epochDone {
			return
		}
	}
}

// openEpoch paces one connection until the schedule ends or the wire
// breaks. The reader goroutine owns a private accumulator set, merged
// after it exits — no mid-epoch sharing.
func (s *session) openEpoch(d *driverConn, gen *CallGen, sched Schedule, t0 time.Time, interval time.Duration, accs *[3]phaseAcc, stop <-chan struct{}) epochEnd {
	deadline := t0.Add(sched.Total())
	type issue struct {
		t  time.Time
		ph int
	}
	inflight := make(chan issue, 8192)
	var readerAccs [3]phaseAcc
	readerBroken := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		broken := false
		for iss := range inflight {
			if !broken {
				rp, err := d.cli.Recv()
				if err != nil {
					broken = true
					close(readerBroken)
				} else {
					refusal, bad := callOutcome(rp)
					if bad {
						readerAccs[iss.ph].errors++
						d.totalErrors.Add(1)
					} else {
						readerAccs[iss.ph].ops++
						d.totalOps.Add(1)
						if refusal {
							readerAccs[iss.ph].refusals++
							d.totalRefusals.Add(1)
						}
						readerAccs[iss.ph].hist.Record(time.Since(iss.t).Microseconds())
					}
					continue
				}
			}
			// Past the break: every queued issue is a lost call.
			readerAccs[iss.ph].errors++
			d.totalErrors.Add(1)
		}
	}()
	endEpoch := func() {
		close(inflight)
		readerWg.Wait()
		for ph := range readerAccs {
			accs[ph].merge(&readerAccs[ph])
		}
	}
	reconnectAndGo := func(ph int) epochEnd {
		accs[ph].reconnects++
		if err := d.reconnect(deadline); err != nil {
			s.w.logf("conn to %s gone for good: %v", d.addr, err)
			return epochDone
		}
		return epochReconnect
	}

	next := time.Now()
	for {
		el := time.Since(t0)
		if el >= sched.Total() {
			endEpoch()
			return epochDone
		}
		select {
		case <-stop:
			endEpoch()
			return epochDone
		case <-readerBroken:
			endEpoch()
			return reconnectAndGo(sched.phaseAt(el))
		default:
		}
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		ph := sched.phaseAt(time.Since(t0))
		d.cli.Send(append([]string{"CALL", s.spec.App}, gen.Next()...)...)
		if err := d.cli.Flush(); err != nil {
			endEpoch()
			accs[ph].errors++
			d.totalErrors.Add(1)
			return reconnectAndGo(ph)
		}
		inflight <- issue{t: time.Now(), ph: ph}
		next = next.Add(interval)
		if time.Since(next) > time.Second {
			// The pacer fell more than a second behind (a long
			// reconnect): re-anchor instead of issuing a burst no real
			// client population would.
			next = time.Now()
		}
	}
}

// targetSites parses the site list out of a target's INFO reply.
func targetSites(c *server.Client) ([]string, error) {
	rp, err := c.Do("INFO")
	if err != nil {
		return nil, err
	}
	if err := rp.Err(); err != nil {
		return nil, err
	}
	for _, line := range strings.Split(rp.Str, "\r\n") {
		if rest, ok := strings.CutPrefix(line, "sites:"); ok && rest != "" {
			return strings.Split(rest, ","), nil
		}
	}
	return nil, fmt.Errorf("INFO reply carries no sites")
}
