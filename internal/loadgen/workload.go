package loadgen

import (
	"fmt"
	"math/rand"
)

// CallGen draws operations from a weighted mix, each argument uniform
// over its pool — the generic shape behind every generated workload
// (the tournament mix below is the default instance). One CallGen per
// connection, each with its own seed, so connections generate
// independent streams without coordination.
type CallGen struct {
	rng     *rand.Rand
	mix     []MixEntry
	weights int
}

// NewCallGen builds a generator over the mix. It errors on an empty or
// weightless mix — a worker must refuse the spec at Prepare, not spin
// forever at Start.
func NewCallGen(mix []MixEntry, seed int64) (*CallGen, error) {
	g := &CallGen{rng: rand.New(rand.NewSource(seed)), mix: mix}
	for _, m := range mix {
		if m.Weight < 0 {
			return nil, fmt.Errorf("loadgen: op %q has negative weight", m.Op)
		}
		g.weights += m.Weight
	}
	if g.weights == 0 {
		return nil, fmt.Errorf("loadgen: workload mix has no weight")
	}
	return g, nil
}

// Next generates one call as [op, args...].
func (g *CallGen) Next() []string {
	n := g.rng.Intn(g.weights)
	var pick MixEntry
	for _, m := range g.mix {
		if n < m.Weight {
			pick = m
			break
		}
		n -= m.Weight
	}
	call := make([]string, 0, 1+len(pick.Args))
	call = append(call, pick.Op)
	for _, pool := range pick.Args {
		call = append(call, pool[g.rng.Intn(len(pool))])
	}
	return call
}

// TournamentWorkload returns the default workload spec fragment: the
// tournament app's weighted mix and seed calls, mirroring the remote
// serving benchmark's generator (enrolling pool within the spec's
// Capacity of 8, so the guarded paths are exercised without living
// permanently over capacity).
func TournamentWorkload() (mix []MixEntry, seedCalls [][]string) {
	var players, tourns, widePlayers, wideTourns []string
	for i := 0; i < 8; i++ {
		players = append(players, fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 4; i++ {
		tourns = append(tourns, fmt.Sprintf("t%d", i))
	}
	for i := 0; i < 64; i++ {
		widePlayers = append(widePlayers, fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 8; i++ {
		wideTourns = append(wideTourns, fmt.Sprintf("t%d", i))
	}
	mix = []MixEntry{
		{Op: "enroll", Weight: 35, Args: [][]string{players, tourns}},
		{Op: "do_match", Weight: 25, Args: [][]string{players, players, tourns}},
		{Op: "disenroll", Weight: 12, Args: [][]string{players, tourns}},
		{Op: "begin_tourn", Weight: 10, Args: [][]string{tourns}},
		{Op: "finish_tourn", Weight: 10, Args: [][]string{tourns}},
		{Op: "add_player", Weight: 4, Args: [][]string{widePlayers}},
		{Op: "add_tourn", Weight: 4, Args: [][]string{wideTourns}},
	}
	for _, p := range players {
		seedCalls = append(seedCalls, []string{"add_player", p})
	}
	for _, t := range tourns {
		seedCalls = append(seedCalls, []string{"add_tourn", t})
	}
	seedCalls = append(seedCalls, []string{"begin_tourn", tourns[0]})
	return mix, seedCalls
}
