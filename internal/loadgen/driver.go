package loadgen

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"ipa/internal/server"
)

// countConn wraps a driver connection, counting wire bytes into the
// worker's shared totals — the bytes columns of interval and phase
// reports.
type countConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c *countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// driverConn is one resilient connection to an `ipa serve` target: it
// knows how to (re)dial, re-pin its site, and re-identify itself, so a
// mid-run server disconnect is a counted error and a reconnect, not an
// aborted run — the property multi-minute sustained load needs, and
// chaos-under-load for free.
type driverConn struct {
	addr string
	site string
	name string
	in   *atomic.Int64
	out  *atomic.Int64

	cli        *server.Client
	reconnects int64

	// Cumulative outcome totals, published for the interval reporter
	// (the per-phase accumulators stay goroutine-private).
	totalOps, totalErrors, totalRefusals atomic.Int64
}

const (
	dialTimeout      = 5 * time.Second
	reconnectBackoff = 50 * time.Millisecond
	// maxRedial bounds consecutive failed reconnect attempts before the
	// connection gives up for good (the worker keeps serving from its
	// other connections; a worker whose every connection is dead
	// reports what it measured).
	maxRedial = 20
)

// connect dials and prepares the connection: pin the site (when the
// target knows it) and name the session so the server's INFO can count
// connected load sessions.
func (d *driverConn) connect() error {
	raw, err := net.DialTimeout("tcp", d.addr, dialTimeout)
	if err != nil {
		return err
	}
	cli := server.NewClient(&countConn{Conn: raw, in: d.in, out: d.out})
	if d.site != "" {
		if err := cli.DoOK("SITE", d.site); err != nil {
			cli.Close()
			return err
		}
	}
	// Best-effort: an older server without CLIENT still serves load.
	if d.name != "" {
		if _, err := cli.Do("CLIENT", "SETNAME", d.name); err != nil {
			cli.Close()
			return err
		}
	}
	d.cli = cli
	return nil
}

// reconnect closes the broken connection and redials with backoff.
// A nil return means the connection is live again.
func (d *driverConn) reconnect(deadline time.Time) error {
	if d.cli != nil {
		d.cli.Close()
		d.cli = nil
	}
	var err error
	for i := 0; i < maxRedial; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("loadgen: reconnect to %s: schedule over", d.addr)
		}
		time.Sleep(reconnectBackoff * time.Duration(i+1))
		if err = d.connect(); err == nil {
			d.reconnects++
			return nil
		}
	}
	return fmt.Errorf("loadgen: reconnect to %s: %w", d.addr, err)
}

func (d *driverConn) close() {
	if d.cli != nil {
		d.cli.Close()
		d.cli = nil
	}
}

// callOutcome classifies a CALL reply: ok, refusal (PRECONDITION — a
// guarded no-op, an outcome), or error (everything else the server
// reports; counted, not fatal).
func callOutcome(rp server.Reply) (refusal, errored bool) {
	if rp.Kind != '-' {
		return false, false
	}
	if strings.HasPrefix(rp.Str, "PRECONDITION") {
		return true, false
	}
	return false, true
}
