package loadgen

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the sorted-slice reference: the same nearest-rank
// convention Hist.Quantile approximates.
func exactQuantile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(p/100*float64(len(sorted)-1))]
}

func TestHistSmallValuesExact(t *testing.T) {
	// Values below subBuckets land in unit buckets: every quantile is
	// exact, not just p0/p100.
	var h Hist
	vals := []int64{1, 2, 2, 3, 5, 8, 13, 21, 34, 55}
	for _, v := range vals {
		h.Record(v)
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
		if got, want := h.Quantile(p), exactQuantile(sorted, p); got != want {
			t.Errorf("Quantile(%v) = %d, want %d", p, got, want)
		}
	}
	if h.Count() != 10 || h.Min() != 1 || h.Max() != 55 {
		t.Errorf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != 144 {
		t.Errorf("sum = %d, want 144", h.Sum())
	}
	if got := h.Mean(); got != 14.4 {
		t.Errorf("mean = %v, want 14.4", got)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(50) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram not all-zero")
	}
	var o Hist
	o.Merge(&h) // merging an empty histogram is a no-op
	if o.Count() != 0 {
		t.Errorf("merge of empty grew count")
	}
}

func TestHistExtremesExact(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(7))
	min, max := int64(1<<62), int64(0)
	for i := 0; i < 1000; i++ {
		v := rng.Int63n(50_000_000)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		h.Record(v)
	}
	if h.Quantile(0) != min {
		t.Errorf("p0 = %d, want exact min %d", h.Quantile(0), min)
	}
	if h.Quantile(100) != max {
		t.Errorf("p100 = %d, want exact max %d", h.Quantile(100), max)
	}
}

// TestHistQuantileErrorBound pins the layout's accuracy claim: the
// bucket midpoint is within half a bucket width of the true sample, and
// a bucket's width is at most its lower bound / 2^subBits — so any
// quantile is within exact/2^(subBits+1) (+1 for integer rounding).
func TestHistQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		var h Hist
		var vals []int64
		n := 200 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			var v int64
			switch rng.Intn(3) {
			case 0:
				v = rng.Int63n(1000) // sub-millisecond latencies
			case 1:
				v = rng.Int63n(100_000) // tens of ms
			default:
				v = rng.Int63n(60_000_000) // outliers up to a minute
			}
			vals = append(vals, v)
			h.Record(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, p := range []float64{1, 10, 50, 90, 95, 99, 99.9} {
			got, want := h.Quantile(p), exactQuantile(vals, p)
			bound := want/(2*subBuckets) + 1
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > bound {
				t.Errorf("trial %d: Quantile(%v) = %d, exact %d, |diff| %d > bound %d",
					trial, p, got, want, diff, bound)
			}
		}
	}
}

// TestHistMergeEqualsSingle pins the merge property: recording samples
// sharded across k histograms and merging gives exactly the histogram
// of recording them all into one.
func TestHistMergeEqualsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var single Hist
	shards := make([]Hist, 4)
	for i := 0; i < 20_000; i++ {
		v := rng.Int63n(1 << uint(1+rng.Intn(40)))
		single.Record(v)
		shards[rng.Intn(len(shards))].Record(v)
	}
	var merged Hist
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged.Count() != single.Count() || merged.Sum() != single.Sum() ||
		merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("merged stats %d/%d/%d/%d != single %d/%d/%d/%d",
			merged.Count(), merged.Sum(), merged.Min(), merged.Max(),
			single.Count(), single.Sum(), single.Min(), single.Max())
	}
	for i := range single.counts {
		if merged.counts[i] != single.counts[i] {
			t.Fatalf("bucket %d: merged %d != single %d", i, merged.counts[i], single.counts[i])
		}
	}
	for p := 0.0; p <= 100; p += 0.5 {
		if merged.Quantile(p) != single.Quantile(p) {
			t.Fatalf("Quantile(%v): merged %d != single %d", p, merged.Quantile(p), single.Quantile(p))
		}
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var h Hist
	for i := 0; i < 3000; i++ {
		h.Record(rng.Int63n(10_000_000))
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Sum() != h.Sum() || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("round trip changed stats")
	}
	for _, p := range []float64{0, 50, 95, 99, 99.9, 100} {
		if back.Quantile(p) != h.Quantile(p) {
			t.Errorf("Quantile(%v): %d != %d after round trip", p, back.Quantile(p), h.Quantile(p))
		}
	}

	// Empty histogram survives too, in sparse (bucketless) form.
	var empty, emptyBack Hist
	data, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if emptyBack.Count() != 0 {
		t.Errorf("empty round trip has count %d", emptyBack.Count())
	}
}

func TestHistJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"count":1,"sum":1,"min":1,"max":1,"buckets":[[99999,1]]}`, // bucket out of range
		`{"count":1,"sum":1,"min":1,"max":1,"buckets":[[-1,1]]}`,    // negative index
		`{"count":1,"sum":1,"min":1,"max":1,"buckets":[[3,-1]]}`,    // negative count
		`{"count":5,"sum":1,"min":0,"max":1,"buckets":[[1,1]]}`,     // total != count
		`{"count":`, // truncated JSON
	}
	for _, c := range cases {
		var h Hist
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("unmarshal accepted malformed %s", c)
		}
	}
}
