package loadgen

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipa/internal/apps/tournament"
	"ipa/internal/clock"
	"ipa/internal/runtime"
	"ipa/internal/server"
	"ipa/internal/wan"
)

// startTarget boots a 3-site netrepl-backed server. With mount unset,
// the server starts bare and worker 0 must MOUNT the spec source — the
// spec-distribution path.
func startTarget(t *testing.T, mount bool) string {
	t.Helper()
	var ids []clock.ReplicaID
	for _, s := range wan.Sites() {
		ids = append(ids, clock.ReplicaID(s))
	}
	cluster, err := runtime.NewNetCluster(ids, runtime.NetConfig{SettleTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cluster, server.Config{DrainTimeout: 30 * time.Second})
	if mount {
		if _, err := srv.MountAnalyzed(tournament.Spec(), tournament.Analysis()); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Shutdown()
		cluster.Close()
	})
	return srv.Addr()
}

func testSpec(targets ...string) WorkloadSpec {
	mix, seeds := TournamentWorkload()
	return WorkloadSpec{
		App:         "tournament",
		SpecSource:  tournament.SpecSource,
		Targets:     targets,
		Conns:       2,
		Pipeline:    4,
		Seed:        42,
		Mix:         mix,
		SeedCalls:   seeds,
		ReportEvery: 50 * time.Millisecond,
	}
}

// checkReport asserts the structural invariants every run must satisfy:
// three phases in schedule order, window lengths from the schedule, a
// busy steady state, and histogram counts that agree with the op
// counters.
func checkReport(t *testing.T, rep *Report, workers int, sched Schedule) {
	t.Helper()
	if rep.Workers != workers || len(rep.PerWorker) != workers {
		t.Fatalf("report covers %d/%d workers, want %d", rep.Workers, len(rep.PerWorker), workers)
	}
	want := Phases()
	if len(rep.Phases) != len(want) {
		t.Fatalf("report has %d phases, want %d", len(rep.Phases), len(want))
	}
	windows := []float64{sched.RampUp.Seconds(), sched.Run.Seconds(), sched.RampDown.Seconds()}
	for i, ps := range rep.Phases {
		if ps.Phase != want[i] {
			t.Errorf("phase %d is %q, want %q", i, ps.Phase, want[i])
		}
		if ps.Seconds != windows[i] {
			t.Errorf("phase %q window %vs, want %vs", ps.Phase, ps.Seconds, windows[i])
		}
		if ps.Hist == nil {
			t.Fatalf("phase %q has no histogram", ps.Phase)
		}
		if ps.Hist.Count() != ps.Ops {
			// Closed-loop histograms record one sample per completed op;
			// a mismatch means ramp samples leaked across windows.
			t.Errorf("phase %q: hist count %d != ops %d", ps.Phase, ps.Hist.Count(), ps.Ops)
		}
	}
	steady := rep.Steady()
	if steady.Ops == 0 {
		t.Fatalf("steady state completed no ops")
	}
	if steady.OpsPerSec <= 0 {
		t.Errorf("steady ops/sec = %v", steady.OpsPerSec)
	}
	for i, wr := range rep.PerWorker {
		if wr.Worker != i {
			t.Errorf("per-worker breakdown out of order: slot %d holds worker %d", i, wr.Worker)
		}
	}
}

// TestSelfHostedClosedLoop is the acceptance shape: two in-process
// workers, closed loop, against a bare server that worker 0 mounts and
// seeds. Steady-state stats come only from the steady window.
func TestSelfHostedClosedLoop(t *testing.T) {
	addr := startTarget(t, false)
	conns, stop := SelfHosted(2, t.Logf)
	defer stop()

	var intervals atomic.Int64
	sched := Schedule{RampUp: 200 * time.Millisecond, Run: 600 * time.Millisecond, RampDown: 200 * time.Millisecond}
	rep, err := Run(RunOptions{
		WorkerConns: conns,
		Spec:        testSpec(addr),
		Schedule:    sched,
		OnInterval:  func(iv Interval) { intervals.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, 2, sched)
	if rep.ErrorRate() != 0 {
		t.Errorf("error rate %v on a healthy run", rep.ErrorRate())
	}
	if intervals.Load() == 0 {
		t.Errorf("no interval reports streamed")
	}
	steady := rep.Steady()
	if steady.Refusals == 0 {
		// The tournament mix deliberately drives guarded ops into
		// refusal (over-capacity enrolls, double begins); a run with
		// zero refusals means the mix is not exercising the guards.
		t.Errorf("steady state saw no precondition refusals")
	}
	if steady.BytesIn == 0 || steady.BytesOut == 0 {
		t.Errorf("steady bytes in/out = %d/%d", steady.BytesIn, steady.BytesOut)
	}
}

// TestSelfHostedOpenLoop drives the paced mode: offered rate split
// across workers, issue-to-reply latency in the histograms.
func TestSelfHostedOpenLoop(t *testing.T) {
	addr := startTarget(t, true)
	conns, stop := SelfHosted(2, t.Logf)
	defer stop()

	sched := Schedule{RampUp: 150 * time.Millisecond, Run: 500 * time.Millisecond, RampDown: 150 * time.Millisecond}
	spec := testSpec(addr)
	spec.Conns = 1
	spec.RatePerSec = 300
	rep, err := Run(RunOptions{WorkerConns: conns, Spec: spec, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, 2, sched)
	steady := rep.Steady()
	// Offered steady load is 300/s × 0.5s = 150 calls; completed ops
	// cannot meaningfully exceed it (scheduling jitter allows a little).
	if steady.Ops > 300 {
		t.Errorf("steady ops %d exceed the offered open-loop load", steady.Ops)
	}
	if rep.RatePerSec != 300 {
		t.Errorf("report rate %d, want 300", rep.RatePerSec)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if _, err := Run(RunOptions{}); err == nil {
		t.Errorf("no workers accepted")
	}
	conns, stop := SelfHosted(1, nil)
	defer stop()
	if _, err := Run(RunOptions{WorkerConns: conns, Spec: testSpec("x:1")}); err == nil {
		t.Errorf("empty schedule accepted")
	}
}

func TestPrepareRejectsBadSpec(t *testing.T) {
	conns, stop := SelfHosted(1, nil)
	defer stop()
	spec := testSpec("127.0.0.1:1") // nothing listens on port 1
	sched := Schedule{Run: 100 * time.Millisecond}
	if _, err := Run(RunOptions{WorkerConns: conns, Spec: spec, Schedule: sched}); err == nil {
		t.Errorf("unreachable target accepted")
	}
}

// chaosProxy forwards TCP to a target and can kill every live link on
// demand, while continuing to accept new ones — a mid-run server
// disconnect from the driver's point of view.
type chaosProxy struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	links  []net.Conn
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target}
	t.Cleanup(func() { ln.Close() })
	go p.accept()
	return p
}

func (p *chaosProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.links = append(p.links, c, up)
		p.mu.Unlock()
		go func() { io.Copy(up, c); up.Close() }()
		go func() { io.Copy(c, up); c.Close() }()
	}
}

func (p *chaosProxy) killAll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.links)
	for _, c := range p.links {
		c.Close()
	}
	p.links = nil
	return n / 2
}

// TestReconnectMidRun pins satellite behaviour: a server disconnect
// mid-run is a counted error plus a reconnect, and the run finishes
// with a full report instead of aborting.
func TestReconnectMidRun(t *testing.T) {
	addr := startTarget(t, true)
	proxy := newChaosProxy(t, addr)

	conns, stop := SelfHosted(1, t.Logf)
	defer stop()

	sched := Schedule{RampUp: 150 * time.Millisecond, Run: 800 * time.Millisecond, RampDown: 150 * time.Millisecond}
	killed := make(chan int, 1)
	go func() {
		// Cut every driver link mid-steady-state.
		time.Sleep(sched.RampUp + 300*time.Millisecond)
		killed <- proxy.killAll()
	}()

	rep, err := Run(RunOptions{
		WorkerConns: conns,
		Spec:        testSpec(proxy.ln.Addr().String()),
		Schedule:    sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := <-killed; n == 0 {
		t.Fatalf("proxy had no links to kill; test never injected a failure")
	}
	checkReport(t, rep, 1, sched)

	var errors, reconnects, afterOps int64
	for _, ps := range rep.Phases {
		errors += ps.Errors
		reconnects += ps.Reconnects
	}
	// The steady phase must have kept completing ops after the cut:
	// with 300ms before the cut and 500ms after, a run that died with
	// its connections would show a steady window starved of most ops.
	afterOps = rep.Steady().Ops
	if errors == 0 {
		t.Errorf("server disconnect produced no counted errors")
	}
	if reconnects == 0 {
		t.Errorf("server disconnect produced no reconnects")
	}
	if afterOps == 0 {
		t.Errorf("no steady ops at all despite reconnect-and-continue")
	}
	t.Logf("reconnects=%d errors=%d steadyOps=%d", reconnects, errors, afterOps)
}

// TestWorkerDaemon exercises the TCP control path end to end: two
// `ipabench worker`-equivalent daemons on localhost sockets, dialed by
// the coordinator — the distributed mode, minus the second machine.
func TestWorkerDaemon(t *testing.T) {
	addr := startTarget(t, true)

	var workerAddrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		workerAddrs = append(workerAddrs, ln.Addr().String())
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				w := &Worker{Log: t.Logf}
				w.Serve(c)
				c.Close()
			}
		}()
	}

	conns, err := DialWorkers(workerAddrs, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{RampUp: 150 * time.Millisecond, Run: 500 * time.Millisecond, RampDown: 150 * time.Millisecond}
	rep, err := Run(RunOptions{WorkerConns: conns, Spec: testSpec(addr), Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, 2, sched)
	for _, wr := range rep.PerWorker {
		if wr.Host.NumCPU == 0 {
			t.Errorf("worker %d reported no host metadata", wr.Worker)
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	c, w := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		(&Worker{}).Serve(w)
		w.Close()
	}()
	defer c.Close()
	if err := WriteFrame(c, MsgHello, Hello{Version: ProtoVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var welcome Welcome
	if err := readMsg(c, MsgWelcome, &welcome); err == nil {
		t.Errorf("version mismatch handshake succeeded")
	}
	<-done
}
