package loadgen

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Report is the coordinator's merged view of a run: fleet-wide
// per-phase stats (histograms merged bucket-wise across workers), the
// per-worker breakdown, and the host each piece ran on. The
// steady-state phase is the headline; the ramp windows are reported
// but excluded from any gating.
type Report struct {
	Schedule       Schedule      `json:"schedule"`
	App            string        `json:"app"`
	Targets        []string      `json:"targets"`
	Workers        int           `json:"workers"`
	ConnsPerWorker int           `json:"conns_per_worker"`
	Pipeline       int           `json:"pipeline"`
	RatePerSec     int           `json:"rate_per_sec,omitempty"`
	Coordinator    HostMeta      `json:"coordinator"`
	Phases         []PhaseStats  `json:"phases"`
	PerWorker      []FinalReport `json:"per_worker"`
}

// PhaseStats is one phase merged across the fleet, with latency
// percentiles computed from the merged histogram.
type PhaseStats struct {
	Phase      string  `json:"phase"`
	Seconds    float64 `json:"seconds"`
	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	Refusals   int64   `json:"refusals"`
	Reconnects int64   `json:"reconnects"`
	BytesIn    int64   `json:"bytes_in"`
	BytesOut   int64   `json:"bytes_out"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	Hist       *Hist   `json:"hist"`
}

// Steady returns the steady-state phase stats.
func (r *Report) Steady() PhaseStats {
	for _, p := range r.Phases {
		if p.Phase == PhaseSteady {
			return p
		}
	}
	return PhaseStats{}
}

// ErrorRate returns errors / (ops + errors) over the steady window —
// the fraction of offered steady-state load that failed.
func (r *Report) ErrorRate() float64 {
	s := r.Steady()
	if s.Ops+s.Errors == 0 {
		return 0
	}
	return float64(s.Errors) / float64(s.Ops+s.Errors)
}

// RunOptions shapes one coordinated run.
type RunOptions struct {
	// WorkerConns are open control connections, one per worker (dialed
	// TCP conns to `ipabench worker` processes, or in-process pipe ends
	// from SelfHosted). The coordinator owns and closes them.
	WorkerConns []net.Conn
	// Spec is the workload; the coordinator fills the per-worker fields
	// (WorkerIndex, Workers, rate shares).
	Spec WorkloadSpec
	// Schedule is the ramp-up → steady → ramp-down program.
	Schedule Schedule
	// OnInterval, when set, receives workers' periodic progress
	// reports (called from per-worker goroutines, serialized).
	OnInterval func(Interval)
}

// Run coordinates one distributed load run: handshake with every
// worker, distribute the spec, start all workers, stream progress,
// collect and merge the final reports.
func Run(opts RunOptions) (*Report, error) {
	if len(opts.WorkerConns) == 0 {
		return nil, fmt.Errorf("loadgen: no workers")
	}
	workers := len(opts.WorkerConns)
	defer func() {
		for _, c := range opts.WorkerConns {
			c.Close()
		}
	}()
	if opts.Schedule.Run <= 0 {
		return nil, fmt.Errorf("loadgen: schedule has no steady window")
	}

	// Handshake + prepare, worker 0 first: it mounts and seeds the
	// targets, so the others must not race it to Ready.
	for i, conn := range opts.WorkerConns {
		if err := WriteFrame(conn, MsgHello, Hello{Version: ProtoVersion}); err != nil {
			return nil, fmt.Errorf("loadgen: worker %d: %w", i, err)
		}
		var welcome Welcome
		if err := readMsg(conn, MsgWelcome, &welcome); err != nil {
			return nil, fmt.Errorf("loadgen: worker %d: %w", i, err)
		}
		if welcome.Version != ProtoVersion {
			return nil, fmt.Errorf("loadgen: worker %d speaks protocol %d, coordinator %d", i, welcome.Version, ProtoVersion)
		}
		spec := opts.Spec
		spec.WorkerIndex = i
		spec.Workers = workers
		if opts.Spec.RatePerSec > 0 {
			// Divide the global offered rate across the fleet; the
			// remainder lands on worker 0 so the aggregate is exact.
			spec.RatePerSec = opts.Spec.RatePerSec / workers
			if i == 0 {
				spec.RatePerSec += opts.Spec.RatePerSec % workers
			}
		}
		if err := WriteFrame(conn, MsgPrepare, spec); err != nil {
			return nil, fmt.Errorf("loadgen: worker %d: %w", i, err)
		}
		if err := readMsg(conn, MsgReady, nil); err != nil {
			return nil, fmt.Errorf("loadgen: worker %d prepare: %w", i, err)
		}
	}

	// Synchronized start: every worker is prepared; the Start frames go
	// out back to back and each worker's phase clock begins at receipt.
	// The ramp-up window absorbs the delivery skew.
	for i, conn := range opts.WorkerConns {
		if err := WriteFrame(conn, MsgStart, opts.Schedule); err != nil {
			return nil, fmt.Errorf("loadgen: worker %d start: %w", i, err)
		}
	}

	// Collect: one reader per worker streams intervals until Done.
	finals := make([]*FinalReport, workers)
	errs := make([]error, workers)
	var ivMu sync.Mutex
	var wg sync.WaitGroup
	for i, conn := range opts.WorkerConns {
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			for {
				t, payload, err := ReadFrame(conn)
				if err != nil {
					errs[i] = fmt.Errorf("loadgen: worker %d mid-run: %w", i, err)
					return
				}
				switch t {
				case MsgInterval:
					if opts.OnInterval != nil {
						var iv Interval
						if json.Unmarshal(payload, &iv) == nil {
							ivMu.Lock()
							opts.OnInterval(iv)
							ivMu.Unlock()
						}
					}
				case MsgDone:
					var fr FinalReport
					if err := json.Unmarshal(payload, &fr); err != nil {
						errs[i] = fmt.Errorf("loadgen: worker %d report: %w", i, err)
						return
					}
					finals[i] = &fr
					return
				case MsgError:
					var e ErrorMsg
					json.Unmarshal(payload, &e)
					errs[i] = fmt.Errorf("loadgen: worker %d: %s", i, e.Error)
					return
				default:
					errs[i] = fmt.Errorf("loadgen: worker %d sent unexpected %s", i, t)
					return
				}
			}
		}(i, conn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	return mergeReports(opts, finals)
}

// mergeReports folds the per-worker finals into the fleet report.
func mergeReports(opts RunOptions, finals []*FinalReport) (*Report, error) {
	rep := &Report{
		Schedule:       opts.Schedule,
		App:            opts.Spec.App,
		Targets:        append([]string(nil), opts.Spec.Targets...),
		Workers:        len(finals),
		ConnsPerWorker: opts.Spec.Conns,
		Pipeline:       opts.Spec.Pipeline,
		RatePerSec:     opts.Spec.RatePerSec,
		Coordinator:    Host(),
	}
	merged := map[string]*PhaseStats{}
	for _, fr := range finals {
		rep.PerWorker = append(rep.PerWorker, *fr)
		for _, pr := range fr.Phases {
			ps, ok := merged[pr.Phase]
			if !ok {
				ps = &PhaseStats{Phase: pr.Phase, Seconds: pr.Seconds, Hist: &Hist{}}
				merged[pr.Phase] = ps
			}
			ps.Ops += pr.Ops
			ps.Errors += pr.Errors
			ps.Refusals += pr.Refusals
			ps.Reconnects += pr.Reconnects
			ps.BytesIn += pr.BytesIn
			ps.BytesOut += pr.BytesOut
			ps.Hist.Merge(pr.Hist)
		}
	}
	for _, name := range Phases() {
		ps, ok := merged[name]
		if !ok {
			return nil, fmt.Errorf("loadgen: no worker reported phase %q", name)
		}
		if ps.Seconds > 0 {
			ps.OpsPerSec = float64(ps.Ops) / ps.Seconds
		}
		ps.P50Ms = float64(ps.Hist.Quantile(50)) / 1000
		ps.P95Ms = float64(ps.Hist.Quantile(95)) / 1000
		ps.P99Ms = float64(ps.Hist.Quantile(99)) / 1000
		ps.P999Ms = float64(ps.Hist.Quantile(99.9)) / 1000
		rep.Phases = append(rep.Phases, *ps)
	}
	sort.Slice(rep.PerWorker, func(i, j int) bool { return rep.PerWorker[i].Worker < rep.PerWorker[j].Worker })
	return rep, nil
}

// SelfHosted spawns n in-process workers over pipe pairs and returns
// the coordinator ends — the single-host mode `ipabench loadgen` uses
// when no -workers addresses are given, running the identical protocol
// over in-memory conns. stop waits for the worker goroutines after the
// run (Run closes the conns, which ends the sessions).
func SelfHosted(n int, log func(format string, args ...any)) (conns []net.Conn, stop func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c, w := net.Pipe()
		conns = append(conns, c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := &Worker{Log: log}
			worker.Serve(w)
			w.Close()
		}()
	}
	return conns, wg.Wait
}

// DialWorkers connects to remote `ipabench worker -listen` processes.
func DialWorkers(addrs []string, timeout time.Duration) ([]net.Conn, error) {
	var conns []net.Conn
	for _, addr := range addrs {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			for _, open := range conns {
				open.Close()
			}
			return nil, fmt.Errorf("loadgen: worker %s: %w", addr, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}
