package loadgen

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"
)

// The control protocol between coordinator and workers: length-prefixed
// frames carrying one JSON message each. The frame header is a 4-byte
// big-endian length (of type byte + payload) and a 1-byte message type;
// the length is bounded so a malformed or hostile peer cannot make the
// reader allocate unbounded memory, and every decode error is an error
// return, never a panic (FuzzControlFrame pins it). The handshake
// carries a protocol version so a coordinator and a worker from
// different builds fail loudly instead of misinterpreting each other.

// ProtoVersion is the control protocol version. Bump on any
// incompatible message change.
const ProtoVersion = 1

// MaxControlFrame bounds a control frame's payload. Final reports carry
// sparse histograms for three phases; 4 MiB is two orders of magnitude
// of headroom.
const MaxControlFrame = 4 << 20

// ErrFrame marks malformed control frames.
var ErrFrame = errors.New("loadgen: bad control frame")

// MsgType tags a control frame.
type MsgType byte

// The protocol, in order of a session's life.
const (
	// MsgHello (coordinator → worker) opens the session.
	MsgHello MsgType = 1 + iota
	// MsgWelcome (worker → coordinator) answers with the worker's
	// version and host metadata.
	MsgWelcome
	// MsgPrepare (coordinator → worker) distributes the workload spec;
	// the worker dials its target connections and, if it is worker 0,
	// mounts and seeds the application.
	MsgPrepare
	// MsgReady (worker → coordinator) confirms the worker is connected
	// and seeded.
	MsgReady
	// MsgStart (coordinator → worker) starts the schedule; the worker's
	// clock for phase windows begins at receipt.
	MsgStart
	// MsgInterval (worker → coordinator) streams periodic cumulative
	// counters while the schedule runs.
	MsgInterval
	// MsgDone (worker → coordinator) carries the final per-phase report.
	MsgDone
	// MsgStop (coordinator → worker) aborts a run early.
	MsgStop
	// MsgError (either direction) reports a fatal session error.
	MsgError
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgPrepare:
		return "prepare"
	case MsgReady:
		return "ready"
	case MsgStart:
		return "start"
	case MsgInterval:
		return "interval"
	case MsgDone:
		return "done"
	case MsgStop:
		return "stop"
	case MsgError:
		return "error"
	}
	return fmt.Sprintf("msg(%d)", byte(t))
}

// WriteFrame writes one framed message: the JSON encoding of v behind
// the length/type header.
func WriteFrame(w io.Writer, t MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload)+1 > MaxControlFrame {
		return fmt.Errorf("%w: %s payload %d bytes exceeds %d", ErrFrame, t, len(payload), MaxControlFrame)
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = byte(t)
	_, err = w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads one framed message, returning its type and raw JSON
// payload. Malformed input — zero or oversized length, truncation —
// errors without panicking and without unbounded allocation.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrFrame)
	}
	if n > MaxControlFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d exceeds %d", ErrFrame, n, MaxControlFrame)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrFrame, err)
		}
		return 0, nil, err
	}
	return MsgType(hdr[4]), payload, nil
}

// readMsg reads one frame and decodes it into out when its type
// matches want; a MsgError frame surfaces as the remote error.
func readMsg(r io.Reader, want MsgType, out any) error {
	t, payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if t == MsgError {
		var e ErrorMsg
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			return fmt.Errorf("loadgen: remote: %s", e.Error)
		}
		return fmt.Errorf("loadgen: remote error")
	}
	if t != want {
		return fmt.Errorf("%w: got %s, want %s", ErrFrame, t, want)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrFrame, want, err)
	}
	return nil
}

// HostMeta describes the machine a measurement ran on, so numbers in a
// BENCH_*.json are self-describing and a gate can warn before comparing
// a 1-CPU container against a many-core CI runner.
type HostMeta struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"`
}

// Host captures the current process's host metadata. The commit comes
// from the build info's VCS stamp when the binary was built from a
// checkout (go run / test binaries may carry none).
func Host() HostMeta {
	h := HostMeta{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				h.Commit = s.Value
			}
		}
	}
	return h
}

// Hello opens a control session.
type Hello struct {
	Version int `json:"version"`
}

// Welcome answers a Hello.
type Welcome struct {
	Version int      `json:"version"`
	Host    HostMeta `json:"host"`
}

// ErrorMsg carries a fatal session error.
type ErrorMsg struct {
	Error string `json:"error"`
}

// MixEntry is one operation of a workload mix: a weight and one
// argument pool per argument position; the generator draws each
// argument uniformly from its pool.
type MixEntry struct {
	Op     string     `json:"op"`
	Weight int        `json:"weight"`
	Args   [][]string `json:"args,omitempty"`
}

// WorkloadSpec tells a worker what to run. The coordinator derives the
// per-worker fields (index, rate share) from the run options.
type WorkloadSpec struct {
	// App is the mounted application to CALL.
	App string `json:"app"`
	// SpecSource, when non-empty, is MOUNTed by worker 0 if the target
	// does not already have App (spec-file workloads).
	SpecSource string `json:"spec_source,omitempty"`
	// Targets are the `ipa serve` addresses; connections round-robin
	// across them.
	Targets []string `json:"targets"`
	// Conns is this worker's connection count (closed loop: each is one
	// pipelined loop; open loop: each is one paced issuer).
	Conns int `json:"conns"`
	// Pipeline is the closed-loop batch depth per connection.
	Pipeline int `json:"pipeline"`
	// RatePerSec, when positive, switches this worker open-loop at this
	// aggregate rate (the coordinator has already divided the global
	// rate across workers).
	RatePerSec int `json:"rate_per_sec,omitempty"`
	// Seed drives the workload generators; each connection derives its
	// own stream from it.
	Seed int64 `json:"seed"`
	// Mix is the weighted operation mix.
	Mix []MixEntry `json:"mix"`
	// SeedCalls are run once by worker 0 before Ready (domain setup),
	// followed by a SETTLE so every site serves the seeded state.
	SeedCalls [][]string `json:"seed_calls,omitempty"`
	// WorkerIndex and Workers locate this worker in the fleet.
	WorkerIndex int `json:"worker_index"`
	Workers     int `json:"workers"`
	// ReportEvery is the interval-report cadence. Zero: one second.
	ReportEvery time.Duration `json:"report_every,omitempty"`
}

// Schedule is the synchronized run schedule. Phase windows are measured
// on each worker's clock from receipt of MsgStart; the ramp windows
// absorb the start skew (sub-millisecond on localhost, network RTT
// across machines).
type Schedule struct {
	RampUp   time.Duration `json:"ramp_up"`
	Run      time.Duration `json:"run"`
	RampDown time.Duration `json:"ramp_down"`
}

// Total is the schedule's full duration.
func (s Schedule) Total() time.Duration { return s.RampUp + s.Run + s.RampDown }

// The phase names, in schedule order. PhaseSteady is the only window
// whose samples make the headline stats.
const (
	PhaseRampUp   = "ramp_up"
	PhaseSteady   = "steady"
	PhaseRampDown = "ramp_down"
)

// Phases lists the phase names in schedule order.
func Phases() []string { return []string{PhaseRampUp, PhaseSteady, PhaseRampDown} }

// phaseAt maps an elapsed offset to a phase index (0..2).
func (s Schedule) phaseAt(d time.Duration) int {
	switch {
	case d < s.RampUp:
		return 0
	case d < s.RampUp+s.Run:
		return 1
	default:
		return 2
	}
}

// Interval is a worker's periodic progress report: cumulative counters
// since Start.
type Interval struct {
	Worker   int           `json:"worker"`
	Elapsed  time.Duration `json:"elapsed"`
	Phase    string        `json:"phase"`
	Ops      int64         `json:"ops"`
	Errors   int64         `json:"errors"`
	Refusals int64         `json:"refusals"`
	BytesIn  int64         `json:"bytes_in"`
	BytesOut int64         `json:"bytes_out"`
}

// PhaseReport is one phase's counters and latency histogram, as
// measured by one worker (and, after merging, by the whole fleet).
type PhaseReport struct {
	Phase string `json:"phase"`
	// Seconds is the phase window's length.
	Seconds float64 `json:"seconds"`
	// Ops counts completed calls whose batch was issued in this window;
	// Errors counts calls lost to I/O failures or server-side errors
	// (PRECONDITION refusals are outcomes, counted separately).
	Ops        int64 `json:"ops"`
	Errors     int64 `json:"errors"`
	Refusals   int64 `json:"refusals"`
	Reconnects int64 `json:"reconnects"`
	BytesIn    int64 `json:"bytes_in"`
	BytesOut   int64 `json:"bytes_out"`
	// Hist holds per-op latency in microseconds.
	Hist *Hist `json:"hist"`
}

// FinalReport is a worker's end-of-run report: one PhaseReport per
// schedule phase, in order.
type FinalReport struct {
	Worker int           `json:"worker"`
	Host   HostMeta      `json:"host"`
	Phases []PhaseReport `json:"phases"`
}
