// Package spec models IPA application specifications: operations with
// their effects over logical predicates, application invariants, and
// per-predicate convergence rules (paper §3.1, Fig. 1).
//
// A specification can be written programmatically or parsed from the
// textual format:
//
//	spec tournament
//
//	const Capacity = 16
//
//	invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
//
//	rule player add-wins
//
//	operation enroll(Player: p, Tournament: t) {
//	    enrolled(p, t) := true
//	}
package spec

import (
	"fmt"
	"sort"
	"strings"

	"ipa/internal/logic"
	"ipa/internal/smt"
)

// Policy is a per-predicate convergence rule: the outcome when concurrent
// operations write opposing values to the same predicate instance.
type Policy uint8

// Convergence policies.
const (
	NoPolicy Policy = iota // no rule: merge outcome unconstrained
	AddWins                // concurrent add/remove resolves to present
	RemWins                // concurrent add/remove resolves to absent
)

func (p Policy) String() string {
	switch p {
	case AddWins:
		return "add-wins"
	case RemWins:
		return "rem-wins"
	}
	return "none"
}

// EffectKind distinguishes boolean assignments from numeric deltas.
type EffectKind uint8

// Effect kinds.
const (
	BoolAssign EffectKind = iota // pred(args) := true/false
	NumDelta                     // fn(args) += n
)

// Effect is one predicate update performed by an operation. Args refer to
// operation parameters, wildcards, or constants.
type Effect struct {
	Kind  EffectKind
	Pred  string
	Args  []logic.Term
	Val   bool // for BoolAssign
	Delta int  // for NumDelta
}

func (e Effect) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	head := fmt.Sprintf("%s(%s)", e.Pred, strings.Join(args, ", "))
	if e.Kind == BoolAssign {
		return fmt.Sprintf("%s := %v", head, e.Val)
	}
	if e.Delta < 0 {
		return fmt.Sprintf("%s -= %d", head, -e.Delta)
	}
	return fmt.Sprintf("%s += %d", head, e.Delta)
}

// Equal reports structural equality of effects.
func (e Effect) Equal(o Effect) bool {
	if e.Kind != o.Kind || e.Pred != o.Pred || len(e.Args) != len(o.Args) {
		return false
	}
	for i := range e.Args {
		if e.Args[i] != o.Args[i] {
			return false
		}
	}
	return e.Val == o.Val && e.Delta == o.Delta
}

// Operation is a named operation with sorted parameters, optional
// preconditions, and effects.
type Operation struct {
	Name   string
	Params []logic.Var
	// Pre are explicit preconditions ("requires" clauses): formulas over
	// the operation's parameters that must hold in the origin replica's
	// visible state for the operation to execute (the paper's model has
	// every operation verify its preconditions against local state; a
	// failed precondition makes the operation a no-op). The analysis
	// ignores them — restricting executability can only remove conflicts,
	// so reasoning without them is conservative.
	Pre     []logic.Formula
	Effects []Effect
}

// Clone returns a deep copy of the operation.
func (o *Operation) Clone() *Operation {
	c := &Operation{Name: o.Name}
	c.Params = append([]logic.Var(nil), o.Params...)
	c.Pre = append([]logic.Formula(nil), o.Pre...)
	for _, e := range o.Effects {
		e.Args = append([]logic.Term(nil), e.Args...)
		c.Effects = append(c.Effects, e)
	}
	return c
}

// HasEffect reports whether the operation already contains an effect equal
// to e.
func (o *Operation) HasEffect(e Effect) bool {
	for _, x := range o.Effects {
		if x.Equal(e) {
			return true
		}
	}
	return false
}

// Param returns the first parameter with the given sort, if any.
func (o *Operation) Param(s logic.Sort) (logic.Var, bool) {
	for _, p := range o.Params {
		if p.Sort == s {
			return p, true
		}
	}
	return logic.Var{}, false
}

func (o *Operation) String() string {
	params := make([]string, len(o.Params))
	for i, p := range o.Params {
		params[i] = p.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "operation %s(%s) {\n", o.Name, strings.Join(params, ", "))
	for _, p := range o.Pre {
		fmt.Fprintf(&b, "    requires %s\n", p)
	}
	for _, e := range o.Effects {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	b.WriteString("}")
	return b.String()
}

// Ground instantiates the operation's effects under a parameter binding,
// producing the footprint the smt encoder consumes. Unbound wildcard
// arguments stay wildcards ("").
func (o *Operation) Ground(binding map[string]string) (smt.GroundEffects, error) {
	var out smt.GroundEffects
	for _, e := range o.Effects {
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			switch a.Kind {
			case logic.TermVar:
				el, ok := binding[a.Name]
				if !ok {
					return smt.GroundEffects{}, fmt.Errorf("spec: operation %s: unbound parameter %q", o.Name, a.Name)
				}
				args[i] = el
			case logic.TermConst:
				args[i] = a.Name
			case logic.TermWildcard:
				args[i] = ""
			}
		}
		if e.Kind == BoolAssign {
			out.Bools = append(out.Bools, smt.BoolEffect{Pred: e.Pred, Args: args, Val: e.Val})
		} else {
			out.Nums = append(out.Nums, smt.NumEffect{Fn: e.Pred, Args: args, Delta: e.Delta})
		}
	}
	return out, nil
}

// Spec is a full application specification.
type Spec struct {
	Name       string
	Invariants []logic.Formula
	Operations []*Operation
	Rules      map[string]Policy // per-predicate convergence rules
	Consts     map[string]int    // concrete values for symbolic constants (runtime use)
	Tags       []string          // free-form metadata, e.g. "unique-ids"
}

// New returns an empty specification with the given name.
func New(name string) *Spec {
	return &Spec{Name: name, Rules: map[string]Policy{}, Consts: map[string]int{}}
}

// Clone returns a deep copy of the specification.
func (s *Spec) Clone() *Spec {
	c := New(s.Name)
	c.Invariants = append([]logic.Formula(nil), s.Invariants...)
	for _, o := range s.Operations {
		c.Operations = append(c.Operations, o.Clone())
	}
	for k, v := range s.Rules {
		c.Rules[k] = v
	}
	for k, v := range s.Consts {
		c.Consts[k] = v
	}
	c.Tags = append([]string(nil), s.Tags...)
	return c
}

// Invariant returns the conjunction of all invariants.
func (s *Spec) Invariant() logic.Formula {
	return logic.Conj(s.Invariants...)
}

// Operation looks up an operation by name.
func (s *Spec) Operation(name string) (*Operation, bool) {
	for _, o := range s.Operations {
		if o.Name == name {
			return o, true
		}
	}
	return nil, false
}

// Replace swaps the operation with the same name for the given one.
func (s *Spec) Replace(op *Operation) {
	for i, o := range s.Operations {
		if o.Name == op.Name {
			s.Operations[i] = op
			return
		}
	}
	s.Operations = append(s.Operations, op)
}

// Sorts returns every sort used by invariants and operation parameters.
func (s *Spec) Sorts() []logic.Sort {
	set := map[logic.Sort]bool{}
	for _, o := range s.Operations {
		for _, p := range o.Params {
			set[p.Sort] = true
		}
	}
	for _, ref := range logic.Predicates(s.Invariant()) {
		for _, srt := range ref.Sorts {
			if srt != "" {
				set[srt] = true
			}
		}
	}
	out := make([]logic.Sort, 0, len(set))
	for srt := range set {
		out = append(out, srt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Signature derives the predicate signature from invariants and effects,
// for wildcard expansion in the analysis.
func (s *Spec) Signature() (smt.Signature, error) {
	sig := smt.Signature{}
	merge := func(name string, sorts []logic.Sort) error {
		if old, ok := sig[name]; ok {
			if len(old) != len(sorts) {
				return fmt.Errorf("spec: predicate %s used with arities %d and %d", name, len(old), len(sorts))
			}
			for i := range old {
				if old[i] == "" {
					old[i] = sorts[i]
				} else if sorts[i] != "" && sorts[i] != old[i] {
					return fmt.Errorf("spec: predicate %s arg %d used with sorts %s and %s", name, i, old[i], sorts[i])
				}
			}
			return nil
		}
		cp := append([]logic.Sort(nil), sorts...)
		sig[name] = cp
		return nil
	}
	for _, ref := range logic.Predicates(s.Invariant()) {
		if err := merge(ref.Name, ref.Sorts); err != nil {
			return nil, err
		}
	}
	for _, o := range s.Operations {
		paramSort := map[string]logic.Sort{}
		for _, p := range o.Params {
			paramSort[p.Name] = p.Sort
		}
		for _, e := range o.Effects {
			sorts := make([]logic.Sort, len(e.Args))
			for i, a := range e.Args {
				if a.Kind == logic.TermVar {
					sorts[i] = paramSort[a.Name]
				}
			}
			if err := merge(e.Pred, sorts); err != nil {
				return nil, err
			}
		}
	}
	return sig, nil
}

// Validate checks internal consistency: effect arguments refer to declared
// parameters, predicate arities are coherent, and convergence rules name
// known predicates.
func (s *Spec) Validate() error {
	if _, err := s.Signature(); err != nil {
		return err
	}
	sig, _ := s.Signature()
	for _, o := range s.Operations {
		params := map[string]bool{}
		for _, p := range o.Params {
			if params[p.Name] {
				return fmt.Errorf("spec: operation %s: duplicate parameter %q", o.Name, p.Name)
			}
			params[p.Name] = true
		}
		if len(o.Effects) == 0 {
			return fmt.Errorf("spec: operation %s has no effects", o.Name)
		}
		for _, pre := range o.Pre {
			for _, v := range logic.FreeVars(pre) {
				if !params[v] {
					return fmt.Errorf("spec: operation %s: precondition %s uses undeclared parameter %q", o.Name, pre, v)
				}
			}
		}
		for _, e := range o.Effects {
			for _, a := range e.Args {
				if a.Kind == logic.TermVar && !params[a.Name] {
					return fmt.Errorf("spec: operation %s: effect %s uses undeclared parameter %q", o.Name, e, a.Name)
				}
			}
			if e.Kind == NumDelta && e.Delta == 0 {
				return fmt.Errorf("spec: operation %s: numeric effect %s has zero delta", o.Name, e)
			}
		}
	}
	for pred := range s.Rules {
		if _, ok := sig[pred]; !ok {
			return fmt.Errorf("spec: convergence rule for unknown predicate %q", pred)
		}
	}
	return nil
}

// String renders the specification in the parseable textual format.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s\n\n", s.Name)
	consts := make([]string, 0, len(s.Consts))
	for k := range s.Consts {
		consts = append(consts, k)
	}
	sort.Strings(consts)
	for _, k := range consts {
		fmt.Fprintf(&b, "const %s = %d\n", k, s.Consts[k])
	}
	if len(consts) > 0 {
		b.WriteByte('\n')
	}
	for _, inv := range s.Invariants {
		fmt.Fprintf(&b, "invariant %s\n", inv)
	}
	if len(s.Invariants) > 0 {
		b.WriteByte('\n')
	}
	rules := make([]string, 0, len(s.Rules))
	for k := range s.Rules {
		rules = append(rules, k)
	}
	sort.Strings(rules)
	for _, k := range rules {
		if s.Rules[k] != NoPolicy {
			fmt.Fprintf(&b, "rule %s %s\n", k, s.Rules[k])
		}
	}
	if len(rules) > 0 {
		b.WriteByte('\n')
	}
	for i, o := range s.Operations {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Resolver adapts the convergence rules to the smt.ResolveFunc interface.
func (s *Spec) Resolver() smt.ResolveFunc {
	return func(pred string) (bool, bool) {
		switch s.Rules[pred] {
		case AddWins:
			return true, true
		case RemWins:
			return false, true
		}
		return false, false
	}
}
