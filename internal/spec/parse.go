package spec

import (
	"fmt"
	"strconv"
	"strings"

	"ipa/internal/logic"
)

// Parse reads a specification in the textual format. The format is
// line-oriented at the top level:
//
//	spec NAME
//	const NAME = INT
//	rule PRED add-wins|rem-wins
//	tag NAME
//	invariant FORMULA            (one line)
//	operation NAME(Sort: a, ...) {
//	    requires FORMULA
//	    pred(a, *, ...) := true|false
//	    fn(a) += INT | fn(a) -= INT
//	}
//
// '//' starts a comment anywhere on a line.
func Parse(src string) (*Spec, error) {
	s := New("")
	lines := strings.Split(src, "\n")
	i := 0
	for i < len(lines) {
		line := stripComment(lines[i])
		i++
		if line == "" {
			continue
		}
		word, rest := splitWord(line)
		switch word {
		case "spec":
			if rest == "" {
				return nil, fmt.Errorf("spec: line %d: missing spec name", i)
			}
			s.Name = rest

		case "tag":
			if rest == "" {
				return nil, fmt.Errorf("spec: line %d: missing tag", i)
			}
			s.Tags = append(s.Tags, rest)

		case "const":
			name, eq := splitWord(rest)
			eq = strings.TrimSpace(eq)
			if !strings.HasPrefix(eq, "=") {
				return nil, fmt.Errorf("spec: line %d: expected 'const NAME = INT'", i)
			}
			n, err := strconv.Atoi(strings.TrimSpace(eq[1:]))
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: bad constant value: %v", i, err)
			}
			s.Consts[name] = n

		case "rule":
			pred, pol := splitWord(rest)
			switch strings.TrimSpace(pol) {
			case "add-wins":
				s.Rules[pred] = AddWins
			case "rem-wins":
				s.Rules[pred] = RemWins
			default:
				return nil, fmt.Errorf("spec: line %d: rule must be add-wins or rem-wins", i)
			}

		case "invariant":
			f, err := logic.Parse(rest)
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %v", i, err)
			}
			s.Invariants = append(s.Invariants, f)

		case "operation":
			op, err := parseOpHeader(rest, i)
			if err != nil {
				return nil, err
			}
			for {
				if i >= len(lines) {
					return nil, fmt.Errorf("spec: operation %s: missing closing '}'", op.Name)
				}
				body := stripComment(lines[i])
				i++
				if body == "" {
					continue
				}
				if body == "}" {
					break
				}
				if kw, rest := splitWord(body); kw == "requires" {
					if rest == "" {
						return nil, fmt.Errorf("spec: line %d: requires needs a formula", i)
					}
					pre, err := logic.Parse(rest)
					if err != nil {
						return nil, fmt.Errorf("spec: line %d: %v", i, err)
					}
					op.Pre = append(op.Pre, pre)
					continue
				}
				eff, err := parseEffect(body, i)
				if err != nil {
					return nil, err
				}
				op.Effects = append(op.Effects, eff)
			}
			s.Operations = append(s.Operations, op)

		default:
			return nil, fmt.Errorf("spec: line %d: unknown directive %q", i, word)
		}
	}
	if s.Name == "" {
		return nil, fmt.Errorf("spec: missing 'spec NAME' header")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse that panics on error; for embedded app specs.
func MustParse(src string) *Spec {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func stripComment(line string) string {
	if idx := strings.Index(line, "//"); idx >= 0 {
		line = line[:idx]
	}
	return strings.TrimSpace(line)
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	idx := strings.IndexAny(s, " \t")
	if idx < 0 {
		return s, ""
	}
	return s[:idx], strings.TrimSpace(s[idx:])
}

// parseOpHeader parses `name(Sort: a, Sort: b, c) {`.
func parseOpHeader(rest string, lineNo int) (*Operation, error) {
	open := strings.Index(rest, "(")
	closeIdx := strings.LastIndex(rest, ")")
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("spec: line %d: malformed operation header", lineNo)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return nil, fmt.Errorf("spec: line %d: operation missing name", lineNo)
	}
	tail := strings.TrimSpace(rest[closeIdx+1:])
	if tail != "{" {
		return nil, fmt.Errorf("spec: line %d: operation header must end with '{'", lineNo)
	}
	op := &Operation{Name: name}
	paramSrc := strings.TrimSpace(rest[open+1 : closeIdx])
	if paramSrc == "" {
		return op, nil
	}
	var cur logic.Sort
	for _, part := range strings.Split(paramSrc, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("spec: line %d: empty parameter", lineNo)
		}
		if idx := strings.Index(part, ":"); idx >= 0 {
			cur = logic.Sort(strings.TrimSpace(part[:idx]))
			part = strings.TrimSpace(part[idx+1:])
		}
		if cur == "" {
			return nil, fmt.Errorf("spec: line %d: parameter %q has no sort", lineNo, part)
		}
		if part == "" {
			return nil, fmt.Errorf("spec: line %d: sort %q has no parameter name", lineNo, cur)
		}
		op.Params = append(op.Params, logic.Var{Name: part, Sort: cur})
	}
	return op, nil
}

// parseEffect parses one effect line.
func parseEffect(line string, lineNo int) (Effect, error) {
	for _, opTok := range []struct {
		tok  string
		kind EffectKind
		sign int
	}{
		{":=", BoolAssign, 0},
		{"+=", NumDelta, 1},
		{"-=", NumDelta, -1},
	} {
		idx := strings.Index(line, opTok.tok)
		if idx < 0 {
			continue
		}
		head := strings.TrimSpace(line[:idx])
		valSrc := strings.TrimSpace(line[idx+len(opTok.tok):])
		pred, args, err := parsePredApp(head, lineNo)
		if err != nil {
			return Effect{}, err
		}
		e := Effect{Kind: opTok.kind, Pred: pred, Args: args}
		if opTok.kind == BoolAssign {
			switch valSrc {
			case "true":
				e.Val = true
			case "false":
				e.Val = false
			default:
				return Effect{}, fmt.Errorf("spec: line %d: boolean effect needs true/false, got %q", lineNo, valSrc)
			}
		} else {
			n, err := strconv.Atoi(valSrc)
			if err != nil || n <= 0 {
				return Effect{}, fmt.Errorf("spec: line %d: numeric effect needs a positive integer, got %q", lineNo, valSrc)
			}
			e.Delta = opTok.sign * n
		}
		return e, nil
	}
	return Effect{}, fmt.Errorf("spec: line %d: effect must use :=, += or -=", lineNo)
}

// parsePredApp parses `pred(a, *, b)`.
func parsePredApp(src string, lineNo int) (string, []logic.Term, error) {
	open := strings.Index(src, "(")
	if open < 0 {
		// 0-ary predicate.
		if !validIdent(src) {
			return "", nil, fmt.Errorf("spec: line %d: bad predicate %q", lineNo, src)
		}
		return src, nil, nil
	}
	if !strings.HasSuffix(src, ")") {
		return "", nil, fmt.Errorf("spec: line %d: missing ')' in %q", lineNo, src)
	}
	pred := strings.TrimSpace(src[:open])
	if !validIdent(pred) {
		return "", nil, fmt.Errorf("spec: line %d: bad predicate %q", lineNo, pred)
	}
	inner := strings.TrimSpace(src[open+1 : len(src)-1])
	if inner == "" {
		return pred, nil, nil
	}
	var args []logic.Term
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "*":
			args = append(args, logic.Wild())
		case validIdent(part):
			args = append(args, logic.V(part))
		default:
			return "", nil, fmt.Errorf("spec: line %d: bad argument %q", lineNo, part)
		}
	}
	return pred, args, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
