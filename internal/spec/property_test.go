package spec

import (
	"fmt"
	"math/rand"
	"testing"

	"ipa/internal/logic"
)

// randSpec generates a random well-formed specification.
func randSpec(rng *rand.Rand) *Spec {
	s := New(fmt.Sprintf("gen%d", rng.Intn(1000)))
	sorts := []logic.Sort{"A", "B"}
	preds := []struct {
		name  string
		sorts []logic.Sort
	}{
		{"p", []logic.Sort{"A"}},
		{"q", []logic.Sort{"B"}},
		{"r", []logic.Sort{"A", "B"}},
	}

	// Invariant: referential-integrity-shaped clause over the predicates.
	s.Invariants = append(s.Invariants, logic.MustParse(
		"forall (A: x, B: y) :- r(x, y) => p(x) and q(y)"))
	if rng.Intn(2) == 0 {
		s.Invariants = append(s.Invariants, logic.MustParse(
			"forall (B: y) :- #r(*, y) <= Cap"))
		s.Consts["Cap"] = 1 + rng.Intn(30)
	}

	// Random rules.
	for _, p := range preds {
		switch rng.Intn(3) {
		case 0:
			s.Rules[p.name] = AddWins
		case 1:
			s.Rules[p.name] = RemWins
		}
	}

	// Random operations (1..4), each with 1..3 effects over its params.
	nOps := 1 + rng.Intn(4)
	for i := 0; i < nOps; i++ {
		op := &Operation{Name: fmt.Sprintf("op%d", i)}
		op.Params = []logic.Var{{Name: "x", Sort: sorts[0]}, {Name: "y", Sort: sorts[1]}}
		nEff := 1 + rng.Intn(3)
		for j := 0; j < nEff; j++ {
			p := preds[rng.Intn(len(preds))]
			args := make([]logic.Term, len(p.sorts))
			for k, srt := range p.sorts {
				if rng.Intn(5) == 0 {
					args[k] = logic.Wild()
				} else if srt == "A" {
					args[k] = logic.V("x")
				} else {
					args[k] = logic.V("y")
				}
			}
			op.Effects = append(op.Effects, Effect{
				Kind: BoolAssign, Pred: p.name, Args: args, Val: rng.Intn(2) == 0,
			})
		}
		s.Operations = append(s.Operations, op)
	}
	return s
}

// Property: String -> Parse is the identity on well-formed specs.
func TestRandomSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		s := randSpec(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid spec: %v", trial, err)
		}
		printed := s.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, printed)
		}
		if back.String() != printed {
			t.Fatalf("trial %d: round trip unstable:\n%s\n---\n%s", trial, printed, back.String())
		}
	}
}

// Property: Clone is observationally identical and fully independent.
func TestRandomSpecCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		s := randSpec(rng)
		c := s.Clone()
		if c.String() != s.String() {
			t.Fatalf("trial %d: clone differs", trial)
		}
		// Mutate the clone thoroughly.
		for _, op := range c.Operations {
			op.Name = op.Name + "_mut"
			op.Effects[0].Val = !op.Effects[0].Val
		}
		c.Rules["p"] = RemWins
		c.Consts["Cap"] = 999
		c.Invariants = nil
		if s.String() == c.String() {
			t.Fatalf("trial %d: mutation visible through clone", trial)
		}
		// Original still valid.
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: original corrupted: %v", trial, err)
		}
	}
}

// Property: grounding respects the binding for every generated operation.
func TestRandomSpecGrounding(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		s := randSpec(rng)
		for _, op := range s.Operations {
			binding := map[string]string{"x": "A1", "y": "B1"}
			ge, err := op.Ground(binding)
			if err != nil {
				t.Fatalf("trial %d: ground: %v", trial, err)
			}
			if len(ge.Bools) != len(op.Effects) {
				t.Fatalf("trial %d: effect count mismatch", trial)
			}
			for _, be := range ge.Bools {
				for _, a := range be.Args {
					if a != "A1" && a != "B1" && a != "" {
						t.Fatalf("trial %d: unexpected ground arg %q", trial, a)
					}
				}
			}
		}
	}
}
