package spec

import (
	"strings"
	"testing"

	"ipa/internal/logic"
)

const tournamentSrc = `
spec tournament

const Capacity = 16

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
invariant forall (Tournament: t) :- #enrolled(*, t) <= Capacity
invariant forall (Tournament: t) :- not (active(t) and finished(t))

rule player add-wins
rule tournament add-wins

tag unique-ids

operation add_player(Player: p) {
    player(p) := true
}

operation rem_player(Player: p) {
    player(p) := false
}

operation add_tourn(Tournament: t) {
    tournament(t) := true
}

operation rem_tourn(Tournament: t) {
    tournament(t) := false
}

operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}

operation disenroll(Player: p, Tournament: t) {
    enrolled(p, t) := false
}
`

func TestParseTournament(t *testing.T) {
	s, err := Parse(tournamentSrc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tournament" {
		t.Fatalf("name = %q", s.Name)
	}
	if len(s.Invariants) != 3 {
		t.Fatalf("invariants = %d", len(s.Invariants))
	}
	if len(s.Operations) != 6 {
		t.Fatalf("operations = %d", len(s.Operations))
	}
	if s.Consts["Capacity"] != 16 {
		t.Fatalf("Capacity = %d", s.Consts["Capacity"])
	}
	if s.Rules["player"] != AddWins || s.Rules["tournament"] != AddWins {
		t.Fatalf("rules = %v", s.Rules)
	}
	if len(s.Tags) != 1 || s.Tags[0] != "unique-ids" {
		t.Fatalf("tags = %v", s.Tags)
	}
	enroll, ok := s.Operation("enroll")
	if !ok {
		t.Fatal("enroll missing")
	}
	if len(enroll.Params) != 2 || enroll.Params[0].Sort != "Player" {
		t.Fatalf("enroll params = %v", enroll.Params)
	}
	if len(enroll.Effects) != 1 || enroll.Effects[0].Kind != BoolAssign || !enroll.Effects[0].Val {
		t.Fatalf("enroll effects = %v", enroll.Effects)
	}
}

func TestParseNumericEffects(t *testing.T) {
	src := `
spec shop
invariant forall (Item: i) :- stock(i) >= 0
operation buy(Item: i) {
    stock(i) -= 1
}
operation restock(Item: i) {
    stock(i) += 10
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	buy, _ := s.Operation("buy")
	if buy.Effects[0].Kind != NumDelta || buy.Effects[0].Delta != -1 {
		t.Fatalf("buy effect = %v", buy.Effects[0])
	}
	restock, _ := s.Operation("restock")
	if restock.Effects[0].Delta != 10 {
		t.Fatalf("restock effect = %v", restock.Effects[0])
	}
}

func TestParseWildcardEffect(t *testing.T) {
	src := `
spec t
invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => tournament(t)
operation rem_tourn(Tournament: t) {
    tournament(t) := false
    enrolled(*, t) := false
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := s.Operation("rem_tourn")
	if len(rt.Effects) != 2 {
		t.Fatalf("effects = %v", rt.Effects)
	}
	if rt.Effects[1].Args[0].Kind != logic.TermWildcard {
		t.Fatalf("wildcard not parsed: %v", rt.Effects[1])
	}
}

func TestParseSharedSortParams(t *testing.T) {
	src := `
spec t
invariant forall (Player: p) :- player(p) => player(p)
operation match(Player: p, q, Tournament: t) {
    inMatch(p, q, t) := true
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.Operation("match")
	if len(m.Params) != 3 || m.Params[1].Sort != "Player" || m.Params[2].Sort != "Tournament" {
		t.Fatalf("params = %v", m.Params)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", // no header
		"operation f(Player: p) {\n x() := true\n}", // no spec header
		"spec s\nbogus directive",
		"spec s\nconst X 3",
		"spec s\nrule p sometimes",
		"spec s\ninvariant forall Player p :- x(p)",
		"spec s\noperation f(Player: p) {\n player(p) := maybe\n}",
		"spec s\noperation f(Player: p) {\n stock(p) += 0\n}",
		"spec s\noperation f(Player: p) {\n stock(p) -= -2\n}",
		"spec s\noperation f(Player: p) {\n player(p) := true",                         // unclosed
		"spec s\noperation f(Player: p) {\n player(q) := true\n}",                      // undeclared param
		"spec s\noperation f() {\n}",                                                   // no effects
		"spec s\noperation f(p) {\n player(p) := true\n}",                              // param without sort
		"spec s\nrule ghost add-wins\noperation f(Player: p) {\n player(p) := true\n}", // rule on unknown pred
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse should fail for %q", src)
		}
	}
}

func TestArityMismatchDetected(t *testing.T) {
	src := `
spec s
invariant forall (Player: p) :- player(p)
operation f(Player: p, Tournament: t) {
    player(p, t) := true
}
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "arities") {
		t.Fatalf("expected arity error, got %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	s := MustParse(tournamentSrc)
	printed := s.String()
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if s2.String() != printed {
		t.Fatalf("round trip not stable:\n%s\n---\n%s", printed, s2.String())
	}
}

func TestSignature(t *testing.T) {
	s := MustParse(tournamentSrc)
	sig, err := s.Signature()
	if err != nil {
		t.Fatal(err)
	}
	if got := sig["enrolled"]; len(got) != 2 || got[0] != "Player" || got[1] != "Tournament" {
		t.Fatalf("enrolled signature = %v", got)
	}
}

func TestSorts(t *testing.T) {
	s := MustParse(tournamentSrc)
	sorts := s.Sorts()
	if len(sorts) != 2 || sorts[0] != "Player" || sorts[1] != "Tournament" {
		t.Fatalf("sorts = %v", sorts)
	}
}

func TestGround(t *testing.T) {
	s := MustParse(tournamentSrc)
	enroll, _ := s.Operation("enroll")
	ge, err := enroll.Ground(map[string]string{"p": "P1", "t": "T1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ge.Bools) != 1 || ge.Bools[0].Args[0] != "P1" || ge.Bools[0].Args[1] != "T1" {
		t.Fatalf("ground effects = %v", ge)
	}
	if _, err := enroll.Ground(map[string]string{"p": "P1"}); err == nil {
		t.Fatal("missing binding must error")
	}
	// Wildcards survive grounding as "".
	rt := &Operation{Name: "rem", Params: []logic.Var{{Name: "t", Sort: "Tournament"}},
		Effects: []Effect{{Kind: BoolAssign, Pred: "enrolled", Args: []logic.Term{logic.Wild(), logic.V("t")}, Val: false}}}
	g2, err := rt.Ground(map[string]string{"t": "T1"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Bools[0].Args[0] != "" {
		t.Fatalf("wildcard should ground to empty string: %v", g2.Bools[0])
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := MustParse(tournamentSrc)
	c := s.Clone()
	op, _ := c.Operation("enroll")
	op.Effects = append(op.Effects, Effect{Kind: BoolAssign, Pred: "player", Args: []logic.Term{logic.V("p")}, Val: true})
	orig, _ := s.Operation("enroll")
	if len(orig.Effects) != 1 {
		t.Fatal("clone mutated original")
	}
	c.Rules["enrolled"] = RemWins
	if s.Rules["enrolled"] == RemWins {
		t.Fatal("clone shares rules map")
	}
}

func TestResolver(t *testing.T) {
	s := New("x")
	s.Rules["a"] = AddWins
	s.Rules["r"] = RemWins
	res := s.Resolver()
	if v, ok := res("a"); !ok || !v {
		t.Fatal("add-wins should resolve true")
	}
	if v, ok := res("r"); !ok || v {
		t.Fatal("rem-wins should resolve false")
	}
	if _, ok := res("unknown"); ok {
		t.Fatal("unknown predicate should have no rule")
	}
}

func TestEffectHelpers(t *testing.T) {
	e1 := Effect{Kind: BoolAssign, Pred: "p", Args: []logic.Term{logic.V("x")}, Val: true}
	e2 := Effect{Kind: BoolAssign, Pred: "p", Args: []logic.Term{logic.V("x")}, Val: true}
	e3 := Effect{Kind: BoolAssign, Pred: "p", Args: []logic.Term{logic.V("y")}, Val: true}
	if !e1.Equal(e2) || e1.Equal(e3) {
		t.Fatal("Effect.Equal broken")
	}
	op := &Operation{Name: "o", Params: []logic.Var{{Name: "x", Sort: "S"}}, Effects: []Effect{e1}}
	if !op.HasEffect(e2) || op.HasEffect(e3) {
		t.Fatal("HasEffect broken")
	}
	if p, ok := op.Param("S"); !ok || p.Name != "x" {
		t.Fatal("Param lookup broken")
	}
	if _, ok := op.Param("T"); ok {
		t.Fatal("Param should miss unknown sort")
	}
	if e1.String() != "p(x) := true" {
		t.Fatalf("Effect.String = %q", e1.String())
	}
	n := Effect{Kind: NumDelta, Pred: "stock", Args: []logic.Term{logic.V("i")}, Delta: -3}
	if n.String() != "stock(i) -= 3" {
		t.Fatalf("NumDelta String = %q", n.String())
	}
}
