package spec

import (
	"os"
	"path/filepath"
	"testing"
)

// The shipped .spec files (what cmd/ipa -spec consumes) must parse and
// round-trip. They are the same sources the apps embed; this test keeps
// the two in sync at the format level.
func TestShippedSpecFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("specs directory not present: %v", err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".spec" {
			continue
		}
		found++
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(s.Operations) == 0 || len(s.Invariants) == 0 {
			t.Fatalf("%s: empty spec", e.Name())
		}
		if _, err := Parse(s.String()); err != nil {
			t.Fatalf("%s: printout does not re-parse: %v", e.Name(), err)
		}
	}
	if found < 4 {
		t.Fatalf("expected the 4 application specs, found %d", found)
	}
}
