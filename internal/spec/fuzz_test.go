package spec

import "testing"

// FuzzParse checks the spec parser never panics and accepted inputs
// round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add(tournamentSrc)
	f.Add("spec s\noperation f(Player: p) {\n player(p) := true\n}")
	f.Add("spec s\nconst K = 3\ninvariant forall (A: x) :- p(x)\nrule p add-wins\noperation f(A: x) {\n p(x) := true\n}")
	f.Add("spec s\noperation f(A: x) {\n c(x) += 2\n}")
	f.Add("spec \x00")
	f.Add("operation } {")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		printed := s.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted input but rejected its own printout:\n%s\nerr: %v", printed, err)
		}
		if back.String() != printed {
			t.Fatalf("printout not a fixed point:\n%s\n---\n%s", printed, back.String())
		}
	})
}
