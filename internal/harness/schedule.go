// Package harness is a deterministic chaos engine for the IPA runtime:
// from a single uint64 seed it generates randomized multi-replica
// workloads over the paper's applications and interleaves them with a
// randomized fault schedule — network partitions and heals, message-delay
// spikes, replica pauses, stability stalls, whole-site crash/recover, and
// join/decommission churn — inside the wan.Sim discrete-event simulation,
// while checking application invariants mid-flight and at quiescence.
//
// The paper's evaluation (§5) exercises hand-picked runs; the harness
// explores the schedule space the paper's claim actually quantifies over:
// conflict repair preserves invariants under *any* weakly consistent
// interleaving (cf. invariant-confluence analysis in "Coordination
// Avoidance in Database Systems"). Every run is a pure function of its
// schedule, so a failure replays bit-identically from its seed; on
// violation the engine shrinks the schedule (drop ops, drop faults,
// shorten the horizon) to a minimal repro and hands back a schedule that
// can be serialized, shipped in a bug report, and replayed exactly.
//
// Entry points: Generate/Execute for one schedule, Run for a seeded
// campaign with shrinking, Soak for the real-socket netrepl churn mode,
// and the `ipa chaos` subcommand for all of it from the command line.
package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"ipa/internal/runtime"
	"ipa/internal/wan"
)

// Config describes the shape of the schedules a campaign generates. The
// zero value is not usable; call (&Config{...}).Norm or use Defaults.
type Config struct {
	// App selects the workload: tournament, ticket, twitter, tpcw, escrow.
	App string `json:"app"`
	// Variant selects the application flavour: "ipa" (repairs on, the
	// default) or "causal" (repairs off — the unmodified application the
	// paper shows violating its invariants).
	Variant string `json:"variant,omitempty"`
	// BreakOp, when set, routes exactly that operation kind through the
	// unrepaired causal implementation while the rest of the app keeps its
	// IPA patches — the "deliberately disable one repair" fault used to
	// validate that the harness catches real invariant bugs. Supported for
	// the apps whose causal and IPA variants share a state layout
	// (tournament, tpcw).
	BreakOp string `json:"break_op,omitempty"`
	// Replicas is the number of simulated sites (default 3; the first
	// three use the paper's topology names).
	Replicas int `json:"replicas"`
	// Ops is the number of application operations per schedule.
	Ops int `json:"ops"`
	// Faults is the number of fault events per schedule.
	Faults int `json:"faults"`
	// Horizon is the virtual-time window the workload and faults land in.
	Horizon wan.Time `json:"horizon"`
	// Backend selects the replication substrate: "sim" (the default — the
	// deterministic discrete-event simulation, bit-identical replay) or
	// "netrepl" (real TCP sockets and goroutines; the schedule is still
	// data, but thread and network interleavings make runs
	// non-deterministic, so replay reproduces the workload, not the race).
	// Delay faults are sim-only and no-ops on netrepl; the escrow scenario
	// is coupled to the latency model and rejects netrepl.
	Backend string `json:"backend,omitempty"`
	// Concurrency is the number of parallel client workers executing the
	// workload (default 1). With more than one worker, operations still
	// dispatch in schedule order but apply concurrently — exercising the
	// sharded replica core's local-vs-local and local-vs-receive races.
	// Requires the netrepl backend: the simulator is single-threaded by
	// construction. Fault windows and invariant checks run unchanged (the
	// executor briefly gates the workers around each mid-flight check).
	Concurrency int `json:"concurrency,omitempty"`
}

// Defaults returns the standard chaos configuration for an app.
func Defaults(app string) Config {
	return Config{App: app, Variant: "ipa", Replicas: 3, Ops: 60, Faults: 6,
		Horizon: 3 * wan.Second, Backend: runtime.BackendSim}
}

// Norm fills zero fields with defaults and validates the config.
func (c Config) Norm() (Config, error) {
	d := Defaults(c.App)
	if c.Variant == "" {
		c.Variant = d.Variant
	}
	if c.Backend == "" {
		c.Backend = d.Backend
	}
	switch c.Backend {
	case runtime.BackendSim:
	case runtime.BackendNet:
		if c.App == "escrow" {
			return c, fmt.Errorf("harness: escrow runs on the sim backend only (it drives the simulated latency model)")
		}
	default:
		return c, fmt.Errorf("harness: unknown backend %q (want %s)", c.Backend, strings.Join(runtime.Backends(), " or "))
	}
	if c.Replicas == 0 {
		c.Replicas = d.Replicas
	}
	if c.Ops == 0 {
		c.Ops = d.Ops
	}
	if c.Faults == 0 {
		c.Faults = d.Faults
	}
	if c.Horizon == 0 {
		c.Horizon = d.Horizon
	}
	if c.Concurrency == 0 {
		c.Concurrency = 1
	}
	if c.Concurrency < 1 {
		return c, fmt.Errorf("harness: concurrency must be positive, got %d", c.Concurrency)
	}
	if c.Concurrency > 1 && c.Backend != runtime.BackendNet {
		return c, fmt.Errorf("harness: concurrency %d requires the netrepl backend (the simulator is single-threaded)", c.Concurrency)
	}
	if c.Replicas < 2 {
		return c, fmt.Errorf("harness: need at least 2 replicas, got %d", c.Replicas)
	}
	// "interp" is accepted only by the spec-driven apps, which mount the
	// whole-state reference executor instead of the compiled plans — the
	// per-adapter constructors reject it everywhere else.
	if c.Variant != "ipa" && c.Variant != "causal" && c.Variant != "interp" {
		return c, fmt.Errorf("harness: unknown variant %q (want ipa or causal, or interp for spec-driven apps)", c.Variant)
	}
	if _, err := newApp(c); err != nil {
		return c, err
	}
	return c, nil
}

// Op is one materialized application operation: everything needed to
// re-execute it is data, so schedules serialize and shrink op by op.
type Op struct {
	At   wan.Time `json:"at"`
	Site int      `json:"site"`
	Kind string   `json:"kind"`
	Args []string `json:"args,omitempty"`
}

func (o Op) String() string {
	return fmt.Sprintf("@%.1fms site%d %s(%v)", o.At.Millis(), o.Site, o.Kind, o.Args)
}

// FaultKind enumerates the injectable faults.
type FaultKind string

// Fault kinds.
const (
	// FaultPartition blocks the link between replicas A and B; messages
	// buffer and flush on heal.
	FaultPartition FaultKind = "partition"
	// FaultDelay multiplies the latency of the A–B link by Factor.
	FaultDelay FaultKind = "delay"
	// FaultPause freezes replica A's delivery pipeline (remote
	// transactions buffer unapplied) and stops it issuing operations.
	FaultPause FaultKind = "pause"
	// FaultStall suppresses the periodic stability runs, so CRDT metadata
	// compaction falls arbitrarily far behind.
	FaultStall FaultKind = "stall"
	// FaultCrash kills site A abruptly (kill -9 semantics) and recovers it
	// from its durable state when the window closes. On the netrepl
	// backend this exercises the real path: WAL replay, snapshot restore,
	// re-offer of own-origin records. The simulator's sites cannot lose
	// state, so there it degrades to the delivery pause a crash looks like
	// from the outside. The site issues no operations while down.
	FaultCrash FaultKind = "crash"
	// FaultJoin bootstraps a brand-new site from donor A's snapshot plus
	// the mesh's op tails, and decommissions it when the window closes —
	// elastic-membership churn underneath the workload. netrepl only (the
	// simulator's membership is fixed); a no-op elsewhere.
	FaultJoin FaultKind = "join"
)

// Fault is one fault-injection window.
type Fault struct {
	At   wan.Time  `json:"at"`
	Dur  wan.Time  `json:"dur"`
	Kind FaultKind `json:"kind"`
	// A and B are replica indexes; B is meaningful for link faults only.
	A int `json:"a"`
	B int `json:"b,omitempty"`
	// Factor is the delay multiplier for FaultDelay.
	Factor float64 `json:"factor,omitempty"`
}

func (f Fault) String() string {
	switch f.Kind {
	case FaultPartition:
		return fmt.Sprintf("@%.1fms partition site%d<->site%d for %.1fms", f.At.Millis(), f.A, f.B, f.Dur.Millis())
	case FaultDelay:
		return fmt.Sprintf("@%.1fms delay x%.1f site%d<->site%d for %.1fms", f.At.Millis(), f.Factor, f.A, f.B, f.Dur.Millis())
	case FaultPause:
		return fmt.Sprintf("@%.1fms pause site%d for %.1fms", f.At.Millis(), f.A, f.Dur.Millis())
	case FaultCrash:
		return fmt.Sprintf("@%.1fms crash site%d, recover after %.1fms", f.At.Millis(), f.A, f.Dur.Millis())
	case FaultJoin:
		return fmt.Sprintf("@%.1fms join new site from site%d, decommission after %.1fms", f.At.Millis(), f.A, f.Dur.Millis())
	default:
		return fmt.Sprintf("@%.1fms stability stall for %.1fms", f.At.Millis(), f.Dur.Millis())
	}
}

// Schedule is one fully materialized chaos run: replaying it is a pure
// function — same schedule, same violation (or same clean pass).
type Schedule struct {
	Seed   uint64  `json:"seed"`
	Cfg    Config  `json:"cfg"`
	Ops    []Op    `json:"ops"`
	Faults []Fault `json:"faults"`
}

// Generate materializes the schedule for one seed: the op stream comes
// from the app's workload generator, fault windows from the fault model,
// all drawn from a single rand.Rand seeded with seed.
func Generate(cfg Config, seed uint64) (*Schedule, error) {
	cfg, err := cfg.Norm()
	if err != nil {
		return nil, err
	}
	app, err := newApp(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	s := &Schedule{Seed: seed, Cfg: cfg}

	// Draw the op instants first and generate in chronological order, so
	// generator-side state (issued order ids, circulating tweets) refers
	// to entities whose creating op precedes the referring op in time.
	ats := make([]wan.Time, cfg.Ops)
	for i := range ats {
		ats[i] = wan.Time(rng.Int63n(int64(cfg.Horizon)))
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	for i := 0; i < cfg.Ops; i++ {
		op := app.Gen(rng)
		op.At = ats[i]
		op.Site = rng.Intn(cfg.Replicas)
		s.Ops = append(s.Ops, op)
	}

	for i := 0; i < cfg.Faults; i++ {
		s.Faults = append(s.Faults, genFault(rng, cfg))
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].At < s.Faults[j].At })
	return s, nil
}

// genFault draws one fault window: kind, victims, timing.
func genFault(rng *rand.Rand, cfg Config) Fault {
	f := Fault{
		At:  wan.Time(rng.Int63n(int64(cfg.Horizon))),
		Dur: cfg.Horizon/20 + wan.Time(rng.Int63n(int64(cfg.Horizon)/4)),
	}
	a := rng.Intn(cfg.Replicas)
	b := rng.Intn(cfg.Replicas - 1)
	if b >= a {
		b++
	}
	f.A, f.B = a, b
	switch rng.Intn(12) {
	case 0, 1, 2, 3: // partitions dominate: they drive the interesting races
		f.Kind = FaultPartition
	case 4, 5, 6:
		f.Kind = FaultDelay
		f.Factor = 2 + rng.Float64()*18 // 2x..20x spikes
	case 7, 8:
		f.Kind = FaultPause
	case 9:
		f.Kind = FaultStall
	case 10:
		f.Kind = FaultCrash
	default:
		// Elastic joins exist on netrepl only; on the simulator the slot
		// becomes a second crash draw (crash degrades to pause there, but
		// the op-suppression window is identical on both backends, keeping
		// generated schedules portable).
		if cfg.Backend == runtime.BackendNet {
			f.Kind = FaultJoin
		} else {
			f.Kind = FaultCrash
		}
	}
	return f
}

// WriteFile serializes the schedule as JSON (the -replay format).
func (s *Schedule) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadScheduleFile loads a serialized schedule and validates its config.
func ReadScheduleFile(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("harness: bad schedule file %s: %w", path, err)
	}
	if s.Cfg, err = s.Cfg.Norm(); err != nil {
		return nil, err
	}
	return &s, nil
}
