package harness

import (
	"testing"

	"ipa/internal/runtime"
)

// TestCrossBackendEquivalence runs the same seeded, fault-free workload on
// the sim and netrepl backends and requires bit-identical per-app digests
// at quiescence: the sequential-settled discipline (see BackendDigest)
// makes the digest a pure function of the op sequence, so any difference
// is a divergence between the two substrates — wire encoding, delivery,
// or CRDT application.
func TestCrossBackendEquivalence(t *testing.T) {
	ops := 40
	if testing.Short() {
		ops = 16
	}
	for _, app := range PortableApps() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			cfg := Defaults(app)
			cfg.Ops = ops
			const seed = 0xE9017A1E
			simDigest, err := BackendDigest(cfg, seed, runtime.BackendSim)
			if err != nil {
				t.Fatalf("sim backend: %v", err)
			}
			netDigest, err := BackendDigest(cfg, seed, runtime.BackendNet)
			if err != nil {
				t.Fatalf("netrepl backend: %v", err)
			}
			if simDigest != netDigest {
				t.Fatalf("backends diverge for %s:\n  sim:     %s\n  netrepl: %s", app, simDigest, netDigest)
			}
			if simDigest == "" {
				t.Fatalf("empty digest for %s", app)
			}
		})
	}
}

// TestNetBackendChaos runs full chaos schedules — faults included — on the
// netrepl backend: partitions and pauses on real sockets, invariant checks
// mid-flight, repair + convergence at quiescence. Runs are not
// bit-deterministic, but every checked property must hold under any
// interleaving.
func TestNetBackendChaos(t *testing.T) {
	schedules := 4
	if testing.Short() {
		schedules = 1
	}
	for _, app := range PortableApps() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			cfg := Defaults(app)
			cfg.Backend = runtime.BackendNet
			cfg.Ops = 40
			for i := 0; i < schedules; i++ {
				s, err := Generate(cfg, ScheduleSeed(0xC4A05, i))
				if err != nil {
					t.Fatal(err)
				}
				v, err := Execute(s)
				if err != nil {
					t.Fatal(err)
				}
				if v != nil {
					t.Fatalf("netrepl chaos schedule %d violates: %s", i, v)
				}
			}
		})
	}
}

// TestNetBackendRejectsEscrow pins the sim-only scenario's error.
func TestNetBackendRejectsEscrow(t *testing.T) {
	cfg := Defaults("escrow")
	cfg.Backend = runtime.BackendNet
	if _, err := cfg.Norm(); err == nil {
		t.Fatal("escrow on netrepl backend should be rejected")
	}
}
