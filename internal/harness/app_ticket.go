package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"ipa/internal/apps/ticket"
)

// ticketChaos drives the FusionTicket application. The capacity is tiny
// (5 tickets per event) against a buy-heavy op mix, so concurrent
// purchases oversell constantly; the IPA variant must repair every
// oversell through the Compensation Set's read-time cancellations.
//
// Overselling is a read-repaired (compensation) invariant, so there is no
// mid-flight check — a replica may legitimately observe an oversold event
// until a read compensates it. The final check runs after quiescence
// repair reads (View at every replica) and asserts zero visible oversell.
type ticketChaos struct {
	cfg      Config
	app      *ticket.App
	events   []string
	capacity int
}

func newTicketChaos(cfg Config) *ticketChaos {
	variant := ticket.IPA
	if cfg.Variant == "causal" {
		variant = ticket.Causal
	}
	a := &ticketChaos{cfg: cfg, capacity: 5}
	for i := 0; i < 2; i++ {
		a.events = append(a.events, fmt.Sprintf("ev%d", i))
	}
	a.app = ticket.New(variant, a.capacity)
	return a
}

func (a *ticketChaos) Setup(ctx *Ctx) { a.app.Setup(ctx.Cluster, a.events) }

func (a *ticketChaos) Gen(rng *rand.Rand) Op {
	e := a.events[rng.Intn(len(a.events))]
	if rng.Float64() < 0.65 {
		buyer := fmt.Sprintf("b%d", rng.Intn(4))
		return Op{Kind: "buy", Args: []string{buyer, e}}
	}
	return Op{Kind: "view", Args: []string{e}}
}

func (a *ticketChaos) Apply(ctx *Ctx, op Op) {
	r := ctx.Replica(op.Site)
	switch op.Kind {
	case "buy":
		a.app.Buy(r, op.Args[0], op.Args[1])
	case "view":
		a.app.View(r, op.Args[0])
	default:
		panic("harness: unknown ticket op " + op.Kind)
	}
}

func (a *ticketChaos) MidCheck(ctx *Ctx, site int) []string { return nil }

func (a *ticketChaos) Repair(ctx *Ctx, site int) {
	for _, e := range a.events {
		a.app.View(ctx.Replica(site), e)
	}
}

func (a *ticketChaos) FinalCheck(ctx *Ctx, site int) []string {
	return a.app.Violations(ctx.Replica(site), a.events)
}

func (a *ticketChaos) Digest(ctx *Ctx, site int) string {
	r := ctx.Replica(site)
	var parts []string
	for _, e := range a.events {
		parts = append(parts, fmt.Sprintf("%s=%d", e, a.app.Sold(r, e)))
	}
	parts = append(parts, fmt.Sprintf("refunds=%d", a.app.Refunds(r)))
	return strings.Join(parts, " ")
}
