package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"ipa/internal/apps/tpcw"
	"ipa/internal/crdt"
	"ipa/internal/store"
)

// tpcwChaos drives the storefront with both the TPC-W single-item
// purchases and the TPC-C-style multi-line orders. Initial stock is tiny
// (4 units per item) against a purchase-heavy mix, so stock goes negative
// constantly and the restock compensation must repair it; rem_product
// races against concurrent purchases exercise the add-wins touch repair.
//
// Mid-flight checks cover the merge-repaired invariants — referential
// integrity (orders reference listed products) and the atomicity of
// multi-line orders (an order is entirely visible or entirely absent at
// every replica). The stock lower bound is read-repaired (ReadStock's
// restock ledger), so it is only checked at quiescence after repair reads.
type tpcwChaos struct {
	cfg       Config
	ipa       *tpcw.App
	causal    *tpcw.App
	items     []string
	customers []string
	// generation-side order id counter and issued ids (for deliveries)
	nextOrder int
	orders    []string
	// execution-side: multi-line orders actually placed, for atomicity
	// checks (single-item purchases are single-update, trivially atomic).
	// placedMu guards placed: with Concurrency > 1 several workers Apply
	// (and the checker reads) concurrently.
	placedMu sync.Mutex
	placed   []placedOrder
}

type placedOrder struct {
	id    string
	lines int
}

// orderAtomic checks the highly-available-transaction guarantee for one
// multi-line order at a replica: the order-index entries and the order's
// line set commit in one transaction, so either both are fully visible or
// neither is. Status is written by separate transactions (NewOrder and
// Deliver race freely under LWW) and is deliberately not part of the
// check.
func (a *tpcwChaos) orderAtomic(ctx *Ctx, site int, po placedOrder) (bool, string) {
	r := ctx.Replica(site)
	// Bind both keys before reading either: the index entries and the
	// line set must come from one transaction-consistent snapshot, or a
	// remote NewOrder group applying between two separate read
	// transactions would be misreported as a torn order.
	tx := r.Begin()
	ordersRef := store.AWSetAt(tx, tpcw.KeyOrders)
	linesRef := store.AWSetAt(tx, tpcw.OrderKey(po.id))
	entries := len(ordersRef.ElemsWhere(crdt.Match{Index: 0, Value: po.id}))
	lines := linesRef.Size()
	tx.Commit()
	if entries == 0 && lines == 0 {
		return true, ""
	}
	if entries == po.lines && lines == po.lines {
		return true, ""
	}
	return false, fmt.Sprintf("entries=%d lines=%d want=%d", entries, lines, po.lines)
}

const initialStock = 4

func newTPCWChaos(cfg Config) *tpcwChaos {
	a := &tpcwChaos{cfg: cfg, ipa: tpcw.New(tpcw.IPA), causal: tpcw.New(tpcw.Causal)}
	for i := 0; i < 3; i++ {
		a.items = append(a.items, fmt.Sprintf("item%d", i))
	}
	for i := 0; i < 2; i++ {
		a.customers = append(a.customers, fmt.Sprintf("cust%d", i))
	}
	return a
}

func (a *tpcwChaos) pick(kind string) *tpcw.App {
	if a.cfg.Variant == "causal" || a.cfg.BreakOp == kind {
		return a.causal
	}
	return a.ipa
}

func (a *tpcwChaos) Setup(ctx *Ctx) {
	first := ctx.Replica(0)
	for _, i := range a.items {
		a.ipa.AddProduct(first, i, initialStock)
	}
	for _, c := range a.customers {
		a.ipa.AddCustomer(first, c, 100)
	}
}

func (a *tpcwChaos) newOrderID() string {
	a.nextOrder++
	id := fmt.Sprintf("o%04d", a.nextOrder)
	a.orders = append(a.orders, id)
	return id
}

func (a *tpcwChaos) Gen(rng *rand.Rand) Op {
	item := a.items[rng.Intn(len(a.items))]
	cust := a.customers[rng.Intn(len(a.customers))]
	x := rng.Float64()
	switch {
	case x < 0.30:
		return Op{Kind: "purchase", Args: []string{a.newOrderID(), item}}
	case x < 0.45:
		// Multi-line order: 2–3 distinct items, qty 1–2 each.
		n := 2 + rng.Intn(2)
		perm := rng.Perm(len(a.items))
		args := []string{cust, a.newOrderID()}
		for _, idx := range perm[:n] {
			args = append(args, a.items[idx], strconv.Itoa(1+rng.Intn(2)))
		}
		return Op{Kind: "new_order", Args: args}
	case x < 0.55:
		return Op{Kind: "payment", Args: []string{cust, strconv.Itoa(1 + rng.Intn(5))}}
	case x < 0.62:
		if len(a.orders) > 0 {
			return Op{Kind: "deliver", Args: []string{a.orders[rng.Intn(len(a.orders))]}}
		}
		return Op{Kind: "read_stock", Args: []string{item}}
	case x < 0.80:
		return Op{Kind: "read_stock", Args: []string{item}}
	case x < 0.93:
		return Op{Kind: "rem_product", Args: []string{item}}
	default:
		return Op{Kind: "add_product", Args: []string{item}}
	}
}

func (a *tpcwChaos) Apply(ctx *Ctx, op Op) {
	r := ctx.Replica(op.Site)
	app := a.pick(op.Kind)
	switch op.Kind {
	case "purchase":
		app.Purchase(r, op.Args[0], op.Args[1])
	case "new_order":
		var lines []tpcw.OrderLine
		for i := 2; i+1 < len(op.Args); i += 2 {
			qty, _ := strconv.ParseInt(op.Args[i+1], 10, 64)
			lines = append(lines, tpcw.OrderLine{Item: op.Args[i], Qty: qty})
		}
		app.NewOrder(r, op.Args[0], op.Args[1], lines)
		a.placedMu.Lock()
		a.placed = append(a.placed, placedOrder{id: op.Args[1], lines: len(lines)})
		a.placedMu.Unlock()
	case "payment":
		amt, _ := strconv.ParseInt(op.Args[1], 10, 64)
		app.Payment(r, op.Args[0], amt)
	case "deliver":
		app.Deliver(r, op.Args[0])
	case "read_stock":
		app.ReadStock(r, op.Args[0])
	case "rem_product":
		// The paper's model has every operation verify its preconditions
		// at the origin: delisting requires that no visible order still
		// references the product. Violations can then only come from
		// concurrency — which is what the IPA touch repair addresses.
		item := op.Args[0]
		tx := r.Begin()
		referenced := len(store.AWSetAt(tx, tpcw.KeyOrders).ElemsWhere(crdt.Match{Index: 1, Value: item})) > 0
		tx.Commit()
		if !referenced {
			app.RemProduct(r, item)
		}
	case "add_product":
		app.AddProduct(r, op.Args[0], initialStock)
	default:
		panic("harness: unknown tpcw op " + op.Kind)
	}
}

// MidCheck asserts the merge-repaired invariants: order atomicity and
// referential integrity.
// placedOrders snapshots the placed list under its lock.
func (a *tpcwChaos) placedOrders() []placedOrder {
	a.placedMu.Lock()
	defer a.placedMu.Unlock()
	return append([]placedOrder(nil), a.placed...)
}

func (a *tpcwChaos) MidCheck(ctx *Ctx, site int) []string {
	r := ctx.Replica(site)
	var out []string
	for _, po := range a.placedOrders() {
		if ok, msg := a.orderAtomic(ctx, site, po); !ok {
			out = append(out, fmt.Sprintf("order %s not atomic: %s", po.id, msg))
		}
	}
	tx := r.Begin()
	products := store.AWSetAt(tx, tpcw.KeyProducts)
	for _, o := range store.AWSetAt(tx, tpcw.KeyOrders).Elems() {
		parts := crdt.SplitTuple(o)
		if !products.Contains(parts[1]) {
			out = append(out, fmt.Sprintf("order %s references delisted product %s", parts[0], parts[1]))
		}
	}
	tx.Commit()
	return out
}

func (a *tpcwChaos) Repair(ctx *Ctx, site int) {
	app := a.ipa
	if a.cfg.Variant == "causal" {
		app = a.causal
	}
	for _, i := range a.items {
		app.ReadStock(ctx.Replica(site), i)
	}
}

// FinalCheck adds the read-repaired stock bound to the mid-flight checks.
func (a *tpcwChaos) FinalCheck(ctx *Ctx, site int) []string {
	app := a.ipa
	if a.cfg.Variant == "causal" {
		app = a.causal
	}
	out := app.Violations(ctx.Replica(site), a.items)
	for _, po := range a.placedOrders() {
		if ok, msg := a.orderAtomic(ctx, site, po); !ok {
			out = append(out, fmt.Sprintf("order %s not atomic: %s", po.id, msg))
		}
	}
	return out
}

func (a *tpcwChaos) Digest(ctx *Ctx, site int) string {
	r := ctx.Replica(site)
	tx := r.Begin()
	parts := []string{
		digestList("products", store.AWSetAt(tx, tpcw.KeyProducts).Elems()),
		digestList("orders", store.AWSetAt(tx, tpcw.KeyOrders).Elems()),
	}
	tx.Commit()
	for _, i := range a.items {
		parts = append(parts, fmt.Sprintf("stock(%s)=%d", i, a.ipa.Stock(r, i)))
	}
	for _, c := range a.customers {
		parts = append(parts, fmt.Sprintf("bal(%s)=%d", c, a.ipa.Balance(r, c)))
	}
	for _, po := range a.placedOrders() {
		parts = append(parts, fmt.Sprintf("status(%s)=%s", po.id, a.ipa.OrderStatus(r, po.id)))
	}
	return strings.Join(parts, " ")
}
