package harness

import (
	"fmt"
	"math/rand"
	"time"

	"ipa/internal/clock"
	"ipa/internal/netrepl"
	"ipa/internal/store"
)

// SoakOptions shapes one netrepl soak run: a fully meshed localhost ring
// of streaming-transport nodes committing concurrently, with a chaos
// goroutine killing live connections underneath them. Unlike the
// simulated chaos runs this uses real sockets and wall-clock time, so it
// is stress (not replay-deterministic): the seed drives only the kill
// sequence.
type SoakOptions struct {
	// Nodes is the ring size. Default 3.
	Nodes int
	// TxnsPerNode is how many one-update transactions each node commits.
	// Default 500.
	TxnsPerNode int
	// KillEvery is the interval between connection kills. Default 20ms.
	KillEvery time.Duration
	// Seed drives the kill-target choice.
	Seed int64
	// Timeout bounds the wait for convergence. Default 60s.
	Timeout time.Duration
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Nodes == 0 {
		o.Nodes = 3
	}
	if o.TxnsPerNode == 0 {
		o.TxnsPerNode = 500
	}
	if o.KillEvery == 0 {
		o.KillEvery = 20 * time.Millisecond
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
	return o
}

// SoakResult reports one soak run.
type SoakResult struct {
	Opts SoakOptions
	// Converged reports whether every node delivered every transaction
	// within the timeout.
	Converged bool
	// Elapsed covers commit start to convergence (or timeout).
	Elapsed time.Duration
	// ConnsKilled is how many live connections the chaos loop closed.
	ConnsKilled int
	// Metrics aggregates all nodes' transport counters.
	Metrics netrepl.Metrics
	// Divergence describes the failure when Converged is false.
	Divergence string
}

func (r *SoakResult) String() string {
	status := "CONVERGED"
	if !r.Converged {
		status = "DIVERGED: " + r.Divergence
	}
	return fmt.Sprintf("soak %d nodes x %d txns, %d conns killed: %s in %v\n  %s",
		r.Opts.Nodes, r.Opts.TxnsPerNode, r.ConnsKilled, status,
		r.Elapsed.Round(time.Millisecond), r.Metrics)
}

// Soak drives the streaming netrepl transport under kill/reconnect churn:
// every node commits its transactions while inbound connections are
// repeatedly torn down, forcing the senders through their write-error,
// backoff, re-dial, and batch-retry paths. Delivery is at-least-once with
// receive-side dedup, so the ring must still converge to identical state
// — counter value, live set, and causal clocks — at every node.
func Soak(opts SoakOptions) (*SoakResult, error) {
	opts = opts.withDefaults()
	res := &SoakResult{Opts: opts}

	nodes := make([]*netrepl.Node, opts.Nodes)
	for i := range nodes {
		id := clock.ReplicaID(fmt.Sprintf("soak%d", i))
		n, err := netrepl.NewNode(id, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer n.Close()
		nodes[i] = n
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}

	start := time.Now()
	committers := make(chan struct{}, len(nodes))
	for _, n := range nodes {
		n := n
		go func() {
			for k := 0; k < opts.TxnsPerNode; k++ {
				n.Do(func(r *store.Replica) {
					tx := r.Begin()
					store.CounterAt(tx, "soak/ops").Add(1)
					store.AWSetAt(tx, "soak/live").Add(fmt.Sprintf("%s-%d", n.ID(), k), "")
					tx.Commit()
				})
				if k%25 == 24 {
					time.Sleep(time.Millisecond) // let the chaos loop interleave
				}
			}
			committers <- struct{}{}
		}()
	}

	// Chaos loop: kill a random node's inbound connections until every
	// committer finishes.
	chaosDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(opts.Seed))
		ticker := time.NewTicker(opts.KillEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				res.ConnsKilled += nodes[rng.Intn(len(nodes))].DropConnections()
			}
		}
	}()

	for range nodes {
		<-committers
	}
	close(stop)
	<-chaosDone

	// Convergence: every node's causal clock covers every node's commits.
	// The clock counts update sequence numbers, and every soak transaction
	// carries two updates (counter increment + set add).
	want := uint64(2 * opts.TxnsPerNode)
	deadline := time.Now().Add(opts.Timeout)
	for {
		converged := true
		for _, n := range nodes {
			vc := n.Clock()
			for _, o := range nodes {
				if vc.Get(o.ID()) < want {
					converged = false
				}
			}
		}
		if converged {
			res.Converged = true
			break
		}
		if time.Now().After(deadline) {
			res.Divergence = "timeout waiting for causal clocks to converge"
			break
		}
		time.Sleep(time.Millisecond)
	}
	res.Elapsed = time.Since(start)

	// State check: identical counter value and live-set size everywhere.
	if res.Converged {
		total := int64(opts.Nodes * opts.TxnsPerNode)
		for _, n := range nodes {
			n.Do(func(r *store.Replica) {
				tx := r.Begin()
				defer tx.Commit()
				if v := store.CounterAt(tx, "soak/ops").Value(); v != total && res.Converged {
					res.Converged = false
					res.Divergence = fmt.Sprintf("node %s counter = %d, want %d", n.ID(), v, total)
				}
				if sz := store.AWSetAt(tx, "soak/live").Size(); int64(sz) != total && res.Converged {
					res.Converged = false
					res.Divergence = fmt.Sprintf("node %s live set = %d, want %d", n.ID(), sz, total)
				}
			})
		}
	}

	for _, n := range nodes {
		s := n.Stats()
		res.Metrics.Dials += s.Dials
		res.Metrics.Reconnects += s.Reconnects
		res.Metrics.SendErrors += s.SendErrors
		res.Metrics.FramesSent += s.FramesSent
		res.Metrics.TxnsSent += s.TxnsSent
		res.Metrics.BytesSent += s.BytesSent
		res.Metrics.FramesRecv += s.FramesRecv
		res.Metrics.TxnsRecv += s.TxnsRecv
		res.Metrics.BytesRecv += s.BytesRecv
		res.Metrics.BackpressureWaits += s.BackpressureWaits
		res.Metrics.TxnsDropped += s.TxnsDropped
	}
	return res, nil
}
