package harness

import (
	"strings"
	"testing"

	"ipa/internal/runtime"
)

// TestConfigConcurrencyValidation pins the Concurrency knob's contract:
// defaulting, rejection of non-positive values, and the netrepl-only
// constraint (the simulator is single-threaded by construction).
func TestConfigConcurrencyValidation(t *testing.T) {
	cfg, err := Defaults("ticket").Norm()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Concurrency != 1 {
		t.Fatalf("default concurrency = %d, want 1", cfg.Concurrency)
	}

	bad := Defaults("ticket")
	bad.Concurrency = 4 // backend defaults to sim
	if _, err := bad.Norm(); err == nil || !strings.Contains(err.Error(), "netrepl") {
		t.Fatalf("sim backend with concurrency 4: err = %v, want netrepl requirement", err)
	}

	neg := Defaults("ticket")
	neg.Backend = runtime.BackendNet
	neg.Concurrency = -2
	if _, err := neg.Norm(); err == nil {
		t.Fatal("negative concurrency accepted")
	}

	ok := Defaults("ticket")
	ok.Backend = runtime.BackendNet
	ok.Concurrency = 4
	if _, err := ok.Norm(); err != nil {
		t.Fatalf("netrepl with concurrency 4 rejected: %v", err)
	}
}

// TestChaosConcurrentClients runs short netrepl chaos schedules with a
// parallel client pool: randomized workloads and fault windows execute
// while Concurrency workers race each other and the apply pipeline, and
// the engine's unchanged mid-flight + quiescence checks must stay clean.
func TestChaosConcurrentClients(t *testing.T) {
	apps := []string{"ticket", "tournament", "tournament-spec"}
	seeds := []uint64{7, 8}
	if testing.Short() {
		apps = apps[:1]
		seeds = seeds[:1]
	}
	for _, app := range apps {
		for _, seed := range seeds {
			cfg := Defaults(app)
			cfg.Backend = runtime.BackendNet
			cfg.Concurrency = 4
			cfg.Ops = 40
			cfg.Faults = 4
			s, err := Generate(cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			v, err := Execute(s)
			if err != nil {
				t.Fatalf("%s seed %d: %v", app, seed, err)
			}
			if v != nil {
				t.Fatalf("%s seed %d: violation with concurrent clients: %v", app, seed, v)
			}
		}
	}
}
