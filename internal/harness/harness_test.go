package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// shortSchedules is the per-app campaign size in -short mode; fullSchedules
// in a regular `go test` run. Nightly CI raises it via IPA_CHAOS_SCHEDULES.
const (
	shortSchedules = 60
	fullSchedules  = 400
)

func campaignSize(t *testing.T) int {
	if testing.Short() {
		return shortSchedules
	}
	return fullSchedules
}

// TestGenerateDeterministic: one seed, one schedule — bit-identical.
func TestGenerateDeterministic(t *testing.T) {
	for _, app := range Apps() {
		a, err := Generate(Defaults(app), 1234)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Defaults(app), 1234)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Generate not deterministic", app)
		}
		c, err := Generate(Defaults(app), 1235)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Ops, c.Ops) {
			t.Fatalf("%s: different seeds produced identical op streams", app)
		}
	}
}

// TestExecuteDeterministic: executing the same schedule twice yields the
// same outcome — the property seed replay and shrinking rest on.
func TestExecuteDeterministic(t *testing.T) {
	cfg := Defaults("tournament")
	cfg.Variant = "causal"
	res, err := Run(cfg, 7, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("causal tournament survived 200 chaos schedules — detection broken")
	}
	again, err := Execute(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation.Equal(again) {
		t.Fatalf("replay diverged:\n  first:  %s\n  second: %s", res.Violation, again)
	}
}

// TestChaosIPAAppsClean is the main regression net: the IPA variant of
// every app must survive randomized chaos schedules with all invariants
// intact and all replicas converged.
func TestChaosIPAAppsClean(t *testing.T) {
	n := campaignSize(t)
	for _, app := range Apps() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Defaults(app), 42, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("invariant violation under chaos:\n%s\nreplay: ipa chaos -app %s -seed %#x",
					res.Summary(), app, res.Seed)
			}
		})
	}
}

// TestChaosFiveReplicas runs a reduced campaign on the larger cluster.
func TestChaosFiveReplicas(t *testing.T) {
	n := campaignSize(t) / 2
	for _, app := range Apps() {
		cfg := Defaults(app)
		cfg.Replicas = 5
		res, err := Run(cfg, 99, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s on 5 replicas:\n%s", app, res.Summary())
		}
	}
}

// TestChaosCatchesCausal: the unrepaired applications must be caught
// violating their invariants — otherwise the harness checks nothing.
func TestChaosCatchesCausal(t *testing.T) {
	for _, app := range []string{"tournament", "ticket", "tpcw"} {
		cfg := Defaults(app)
		cfg.Variant = "causal"
		res, err := Run(cfg, 7, 1000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatalf("causal %s survived 1000 chaos schedules — checks are vacuous", app)
		}
		if res.Shrunk == nil || res.ShrunkViolation == nil {
			t.Fatalf("causal %s: violation found but not shrunk", app)
		}
		t.Logf("causal %s: caught at schedule %d, shrunk %d->%d ops",
			app, res.FoundAt, len(res.Schedule.Ops), len(res.Shrunk.Ops))
	}
}

// TestChaosCatchesBrokenRepair is the acceptance drill: disable exactly
// one repair (enroll loses its Fig. 3 ensure-effects) and require the
// harness to catch the resulting invariant bug within 1000 schedules,
// shrink it, and replay it deterministically from the printed seed.
func TestChaosCatchesBrokenRepair(t *testing.T) {
	cfg := Defaults("tournament")
	cfg.BreakOp = "enroll"
	res, err := Run(cfg, 7, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("broken enroll repair survived 1000 chaos schedules")
	}

	// The printed seed command must reproduce the identical violation.
	_, replayed, err := Replay(cfg, res.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation.Equal(replayed) {
		t.Fatalf("seed replay diverged:\n  found:    %s\n  replayed: %s", res.Violation, replayed)
	}

	// Shrinking must reduce the schedule and stay failing.
	if len(res.Shrunk.Ops) >= len(res.Schedule.Ops) {
		t.Fatalf("shrink did not reduce ops: %d -> %d", len(res.Schedule.Ops), len(res.Shrunk.Ops))
	}
	if res.ShrunkViolation == nil {
		t.Fatal("shrunk schedule does not fail")
	}

	// The shrunk schedule must replay identically — twice, and through
	// its serialized form.
	for i := 0; i < 2; i++ {
		v, err := Execute(res.Shrunk)
		if err != nil {
			t.Fatal(err)
		}
		if !res.ShrunkViolation.Equal(v) {
			t.Fatalf("shrunk replay %d diverged:\n  want: %s\n  got:  %s", i, res.ShrunkViolation, v)
		}
	}
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := res.Shrunk.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadScheduleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Execute(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShrunkViolation.Equal(v) {
		t.Fatalf("serialized replay diverged:\n  want: %s\n  got:  %s", res.ShrunkViolation, v)
	}
	t.Logf("caught at schedule %d (seed %#x), shrunk %d ops -> %d, %d faults -> %d",
		res.FoundAt, res.Seed, len(res.Schedule.Ops), len(res.Shrunk.Ops),
		len(res.Schedule.Faults), len(res.Shrunk.Faults))
}

// TestShrinkCleanScheduleIsNoop: shrinking a passing schedule returns it
// unchanged with no violation.
func TestShrinkCleanScheduleIsNoop(t *testing.T) {
	s, err := Generate(Defaults("tournament"), 5)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, v, err := Shrink(s)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("clean schedule shrank to a violation: %s", v)
	}
	if len(shrunk.Ops) != len(s.Ops) || len(shrunk.Faults) != len(s.Faults) {
		t.Fatal("clean schedule was modified by shrinking")
	}
}

// TestConfigValidation rejects unusable configurations.
func TestConfigValidation(t *testing.T) {
	if _, err := (Config{App: "nope"}).Norm(); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := (Config{App: "tournament", Replicas: 1}).Norm(); err == nil {
		t.Fatal("single-replica cluster accepted")
	}
	if _, err := (Config{App: "tournament", Variant: "weird"}).Norm(); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := (Config{App: "twitter", BreakOp: "tweet"}).Norm(); err == nil {
		t.Fatal("break-op accepted for twitter (layouts differ)")
	}
}

// TestChaosNightly is the thousands-of-schedules campaign the nightly CI
// job runs (IPA_CHAOS_NIGHTLY=1, optionally IPA_CHAOS_SCHEDULES=N).
func TestChaosNightly(t *testing.T) {
	if os.Getenv("IPA_CHAOS_NIGHTLY") == "" {
		t.Skip("nightly campaign; set IPA_CHAOS_NIGHTLY=1 to run")
	}
	n := 3000
	if s := os.Getenv("IPA_CHAOS_SCHEDULES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	for _, replicas := range []int{3, 5} {
		for _, app := range Apps() {
			app, replicas := app, replicas
			t.Run(app+"-"+strconv.Itoa(replicas), func(t *testing.T) {
				t.Parallel()
				cfg := Defaults(app)
				cfg.Replicas = replicas
				res, err := Run(cfg, 0x816417, n, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Violation != nil {
					t.Fatalf("nightly violation:\n%s", res.Summary())
				}
			})
		}
	}
}
