package harness

import (
	"fmt"
	"math/rand"

	"ipa/internal/apps/tournament"
	"ipa/internal/crdt"
	"ipa/internal/engine"
	"ipa/internal/store"
)

// tournamentChaos drives the paper's running example. The pools are tiny
// (3 players, 2 tournaments) so randomly chosen operations collide
// constantly — exactly the concurrency the IPA patches must survive.
//
// Checks cover the invariants the implementation's IPA variant repairs at
// merge time, so they must hold in every causally consistent local state:
// referential integrity (enrolled/active/finished imply their entities,
// matches imply enrolments) and the active/finished disjunction. Two
// clauses of the spec are deliberately out of scope: the capacity bound
// (an aggregation constraint — escrow territory, covered by the escrow
// scenario) and the (active or finished) requirement on matches (the
// repo's chosen resolution lets rem_tourn clear the state flags, so a
// concurrent do_match can reference a flagless tournament).
type tournamentChaos struct {
	cfg     Config
	ipa     *tournament.App
	causal  *tournament.App
	players []string
	tourns  []string
}

func newTournamentChaos(cfg Config) *tournamentChaos {
	a := &tournamentChaos{cfg: cfg, ipa: tournament.New(tournament.IPA), causal: tournament.New(tournament.Causal)}
	for i := 0; i < 3; i++ {
		a.players = append(a.players, fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 2; i++ {
		a.tourns = append(a.tourns, fmt.Sprintf("t%d", i))
	}
	return a
}

// pick returns the implementation an op kind runs on: the causal app when
// repairs are globally off, or when this specific kind's repair is
// deliberately broken.
func (a *tournamentChaos) pick(kind string) *tournament.App {
	if a.cfg.Variant == "causal" || a.cfg.BreakOp == kind {
		return a.causal
	}
	return a.ipa
}

func (a *tournamentChaos) Setup(ctx *Ctx) {
	first := ctx.Replica(0)
	for _, p := range a.players {
		a.ipa.AddPlayer(first, p)
	}
	for _, t := range a.tourns {
		a.ipa.AddTournament(first, t)
	}
	// Tournaments start without enrolments: rem_tourn's origin
	// precondition (no visible enrolments) then passes often, which is
	// what makes the enroll/rem_tourn race reachable.
	a.ipa.Begin(first, a.tourns[0])
}

func (a *tournamentChaos) Gen(rng *rand.Rand) Op {
	p := a.players[rng.Intn(len(a.players))]
	t := a.tourns[rng.Intn(len(a.tourns))]
	x := rng.Float64()
	switch {
	case x < 0.30:
		return Op{Kind: "enroll", Args: []string{p, t}}
	case x < 0.40:
		return Op{Kind: "disenroll", Args: []string{p, t}}
	case x < 0.50:
		q := a.players[rng.Intn(len(a.players)-1)]
		if q == p {
			q = a.players[len(a.players)-1]
		}
		return Op{Kind: "do_match", Args: []string{p, q, t}}
	case x < 0.60:
		return Op{Kind: "begin", Args: []string{t}}
	case x < 0.70:
		return Op{Kind: "finish", Args: []string{t}}
	case x < 0.90:
		return Op{Kind: "rem_tourn", Args: []string{t}}
	case x < 0.95:
		return Op{Kind: "add_tourn", Args: []string{t}}
	default:
		return Op{Kind: "add_player", Args: []string{p}}
	}
}

func (a *tournamentChaos) Apply(ctx *Ctx, op Op) {
	r := ctx.Replica(op.Site)
	app := a.pick(op.Kind)
	switch op.Kind {
	case "enroll":
		app.Enroll(r, op.Args[0], op.Args[1])
	case "disenroll":
		app.Disenroll(r, op.Args[0], op.Args[1])
	case "do_match":
		app.DoMatch(r, op.Args[0], op.Args[1], op.Args[2])
	case "begin":
		app.Begin(r, op.Args[0])
	case "finish":
		app.Finish(r, op.Args[0])
	case "rem_tourn":
		app.RemTournament(r, op.Args[0])
	case "add_tourn":
		app.AddTournament(r, op.Args[0])
	case "add_player":
		app.AddPlayer(r, op.Args[0])
	default:
		panic("harness: unknown tournament op " + op.Kind)
	}
}

// check evaluates the merge-repaired invariant clauses on one replica's
// current state.
func (a *tournamentChaos) check(ctx *Ctx, site int) []string {
	tx := ctx.Replica(site).Begin()
	defer tx.Commit()
	players := store.AWSetAt(tx, tournament.KeyPlayers)
	tourns := store.AWSetAt(tx, tournament.KeyTournaments)
	enrolled := store.AWSetAt(tx, tournament.KeyEnrolled)
	active := store.RWSetAt(tx, tournament.KeyActive)
	finished := store.AWSetAt(tx, tournament.KeyFinished)
	matches := store.RWSetAt(tx, tournament.KeyMatches)

	var out []string
	for _, e := range enrolled.Elems() {
		parts := crdt.SplitTuple(e)
		if !players.Contains(parts[0]) {
			out = append(out, fmt.Sprintf("enrolled(%s,%s) but player missing", parts[0], parts[1]))
		}
		if !tourns.Contains(parts[1]) {
			out = append(out, fmt.Sprintf("enrolled(%s,%s) but tournament missing", parts[0], parts[1]))
		}
	}
	for _, m := range matches.Elems() {
		parts := crdt.SplitTuple(m)
		p, q, t := parts[0], parts[1], parts[2]
		if !enrolled.Contains(crdt.JoinTuple(p, t)) || !enrolled.Contains(crdt.JoinTuple(q, t)) {
			out = append(out, fmt.Sprintf("match(%s,%s,%s) with unenrolled player", p, q, t))
		}
	}
	for _, t := range active.Elems() {
		if !tourns.Contains(t) {
			out = append(out, fmt.Sprintf("active(%s) but tournament missing", t))
		}
		if finished.Contains(t) {
			out = append(out, fmt.Sprintf("tournament %s both active and finished", t))
		}
	}
	for _, t := range finished.Elems() {
		if !tourns.Contains(t) {
			out = append(out, fmt.Sprintf("finished(%s) but tournament missing", t))
		}
	}
	return out
}

func (a *tournamentChaos) MidCheck(ctx *Ctx, site int) []string   { return a.check(ctx, site) }
func (a *tournamentChaos) Repair(ctx *Ctx, site int)              {}
func (a *tournamentChaos) FinalCheck(ctx *Ctx, site int) []string { return a.check(ctx, site) }

// Digest renders the specification-level state (the predicate
// interpretation extracted from the hand-chosen CRDT layout): replicas
// of a converged cluster digest identically, and so does the spec-driven
// engine executor when it reached the same logical state — the
// executor-equivalence check relies on exactly this representation.
func (a *tournamentChaos) Digest(ctx *Ctx, site int) string {
	return engine.DigestOf(tournament.Interp(ctx.Replica(site), tournamentCapacity))
}

// tournamentCapacity is the spec's Capacity constant (digests don't use
// it, but the extracted interpretation carries it for checkers).
var tournamentCapacity = tournament.Spec().Consts["Capacity"]
