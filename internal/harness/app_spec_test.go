package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipa/internal/runtime"
)

// quickstartSpecPath locates the example spec relative to this package.
const quickstartSpecPath = "../../examples/quickstart/quickstart.spec"

// TestSpecFileAppChaos fuzzes a user-provided specification end to end:
// `spec:<file>` parses, analyzes, mounts, and survives a randomized
// chaos campaign with invariants intact — new scenarios with zero
// per-application Go.
func TestSpecFileAppChaos(t *testing.T) {
	n := campaignSize(t) / 4
	cfg := Defaults(SpecAppPrefix + quickstartSpecPath)
	res, err := Run(cfg, 0xC0FFEE, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("spec app violated under chaos:\n%s", res.Summary())
	}

	// Replay determinism: the schedule is data, the spec file is config;
	// the same seed must reproduce bit-identically.
	s, err := Generate(cfg, 0xABCD)
	if err != nil {
		t.Fatal(err)
	}
	d1, v1, err := ExecuteDigest(s)
	if err != nil {
		t.Fatal(err)
	}
	d2, v2, err := ExecuteDigest(s)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != nil || v2 != nil || d1 != d2 || d1 == "" {
		t.Fatalf("spec app replay diverged: %q vs %q (v1=%v v2=%v)", d1, d2, v1, v2)
	}
}

// TestSpecFileAppNet runs the spec-driven app on real sockets.
func TestSpecFileAppNet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster")
	}
	cfg := Defaults(SpecAppPrefix + quickstartSpecPath)
	cfg.Backend = runtime.BackendNet
	res, err := RunWithShrink(cfg, 0xBEEF, 3, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("spec app violated on netrepl:\n%s", res.Summary())
	}
}

// TestSpecFileAppErrors pins the validation surface of spec apps.
func TestSpecFileAppErrors(t *testing.T) {
	if _, err := (Config{App: SpecAppPrefix + "no/such/file.spec"}).Norm(); err == nil {
		t.Fatal("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.spec")
	if err := os.WriteFile(bad, []byte("operation } {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (Config{App: SpecAppPrefix + bad}).Norm(); err == nil {
		t.Fatal("unparseable spec accepted")
	}
	if _, err := (Config{App: SpecAppPrefix + quickstartSpecPath, Variant: "causal"}).Norm(); err == nil {
		t.Fatal("causal variant accepted for a spec app")
	}
	if _, err := (Config{App: "tournament-spec", BreakOp: "enroll"}).Norm(); err == nil ||
		!strings.Contains(err.Error(), "break") {
		t.Fatal("break-op accepted for tournament-spec")
	}
}
