package harness

import (
	"os"
	"sort"
	"sync"
	"time"

	"ipa/internal/netrepl"
	"ipa/internal/runtime"
	"ipa/internal/wan"
)

// netPace converts the schedule's virtual time into real time on the
// netrepl backend: one virtual millisecond sleeps netPace of a real one.
// The schedule's 3-second default horizon becomes ~60ms of wall clock —
// long enough for replication, partitions, and retries to genuinely
// interleave with the workload on real sockets, short enough to run
// campaigns. Pacing shapes the run, it does not gate correctness: every
// check below is valid in any causally consistent state.
const netPace = 0.02

// chaosNetConfig tunes the socket cluster for chaos runs: a low backoff
// ceiling so partitioned senders re-probe quickly after heal, and a tight
// flush interval so replication lands inside the compressed horizon.
//
// The outbound queue is sized to hold the whole schedule: the executor is
// a single thread, so a commit that hit the backpressure wait during a
// live partition would block the very loop that runs the heal event — the
// queue must never fill. A schedule of N ops commits at most a few
// transactions per op; 4N + slack bounds it with room to spare, and
// memory stays proportional to the ops actually committed.
// dataDir, when non-empty, makes every node durable — the schedule has
// lifecycle faults, so crash/recover and join must round-trip through
// real write-ahead logs and snapshots. SnapshotEvery is tiny on purpose:
// chaos traffic is a few kilobytes, and the snapshot/truncation cycle is
// one of the two subtle recovery paths the fuzzing exists to cover.
func chaosNetConfig(ops int, dataDir string) runtime.NetConfig {
	return runtime.NetConfig{
		DataDir: dataDir,
		Transport: netrepl.Config{
			FlushInterval: 200 * time.Microsecond,
			BackoffMin:    time.Millisecond,
			BackoffMax:    25 * time.Millisecond,
			QueueCap:      4*ops + 1024,
			// A violation returns with faults still live; keep the
			// senders' post-Close flush window short so teardown does not
			// stall against a still-blocked receiver.
			DrainTimeout:  200 * time.Millisecond,
			SnapshotEvery: 4096,
		},
	}
}

// hasLifecycleFaults reports whether the schedule crashes or joins
// sites — the faults that need durable nodes to mean anything.
func hasLifecycleFaults(s *Schedule) bool {
	for _, f := range s.Faults {
		if f.Kind == FaultCrash || f.Kind == FaultJoin {
			return true
		}
	}
	return false
}

// netEvent is one timeline entry of a netrepl schedule execution.
type netEvent struct {
	at wan.Time
	fn func()
}

// executeNet runs one schedule on the netrepl backend: the same workload
// ops, fault windows, and check points as the simulator, executed in
// virtual-time order against real TCP nodes with the gaps compressed by
// netPace. Replication runs concurrently on the transport's goroutines,
// so runs are not bit-reproducible — but every assertion the engine makes
// (mid-flight invariants in causally consistent local states, quiescence
// invariants after repair, cross-replica digest convergence) must hold
// under any interleaving; that is exactly the paper's claim, now checked
// against real sockets.
//
// With Config.Concurrency > 1 the workload additionally fans out to a
// pool of client workers: the timeline thread still paces dispatch in
// schedule order, but Concurrency ops may be mid-Apply at once, racing
// each other and the receive path on the sharded replica core. Mid-flight
// checks briefly gate the pool (checkGate) so each check still reads a
// site snapshot no local client is mutating mid-transaction group; the
// quiescence protocol is unchanged — workers join before Quiesce runs.
func executeNet(s *Schedule) (string, *Violation, error) {
	app, err := newApp(s.Cfg)
	if err != nil {
		return "", nil, err
	}
	sites := siteIDs(s.Cfg.Replicas)
	// Durable nodes only when the schedule exercises lifecycle faults:
	// every commit then fsyncs (group commit), which is the contract
	// crash/recover is checked against, and dead weight otherwise.
	var dataDir string
	if hasLifecycleFaults(s) {
		var err error
		if dataDir, err = os.MkdirTemp("", "ipa-chaos-*"); err != nil {
			return "", nil, err
		}
		defer os.RemoveAll(dataDir)
	}
	cluster, err := runtime.NewNetCluster(sites, chaosNetConfig(s.Cfg.Ops, dataDir))
	if err != nil {
		return "", nil, err
	}
	defer cluster.Close()
	ctx := NewCtx(s.Cfg, cluster, sites)

	// Seed state and let it replicate everywhere before chaos starts.
	app.Setup(ctx)
	if err := cluster.Settle(); err != nil {
		return "", nil, err
	}
	// Durable runs snapshot the seeded state before any crash can hit:
	// objects created out-of-band (comp-set bounds via Replica.Object)
	// exist in no WAL record, so only a snapshot makes them recoverable.
	if dataDir != "" {
		if err := cluster.SnapshotAll(); err != nil {
			return "", nil, err
		}
	}

	var found *Violation
	report := func(v *Violation) {
		if found == nil {
			found = v
		}
	}

	// Client worker pool (Concurrency > 1). Workers hold checkGate.RLock
	// around each op; mid-flight checks take the write lock to quiesce
	// local mutators for the duration of one check round.
	var (
		checkGate sync.RWMutex
		opCh      chan Op
		workers   sync.WaitGroup
	)
	conc := s.Cfg.Concurrency
	if conc > 1 {
		opCh = make(chan Op)
		for w := 0; w < conc; w++ {
			workers.Add(1)
			go func() {
				defer workers.Done()
				for op := range opCh {
					checkGate.RLock()
					app.Apply(ctx, op)
					checkGate.RUnlock()
				}
			}()
		}
	}
	dispatch := func(op Op) {
		if conc > 1 {
			opCh <- op
			return
		}
		app.Apply(ctx, op)
	}
	join := func() {
		if conc > 1 && opCh != nil {
			close(opCh)
			workers.Wait()
			opCh = nil
		}
	}
	defer join()

	// Build the timeline: ops, fault injections and heals, and the
	// periodic stability-run/mid-check points, exactly as the simulator
	// schedules them. The stable sort preserves insertion order at equal
	// instants, mirroring the sim's event heap.
	var events []netEvent
	for _, op := range s.Ops {
		op := op
		events = append(events, netEvent{at: op.At, fn: func() {
			if found != nil || ctx.Paused(op.Site) {
				return
			}
			dispatch(op)
		}})
	}
	for _, f := range s.Faults {
		f := f
		// Lifecycle faults quiesce the client pool first: a kill -9 must
		// not race a worker mid-Apply — an operation acknowledged by a
		// node whose WAL was just abandoned would be acked-but-lost,
		// which is precisely what the durability contract forbids. The
		// write lock waits for in-flight ops and holds new ones off.
		guard := func(fn func()) func() { return fn }
		if f.Kind == FaultCrash || f.Kind == FaultJoin {
			guard = func(fn func()) func() {
				return func() {
					checkGate.Lock()
					defer checkGate.Unlock()
					fn()
				}
			}
		}
		events = append(events, netEvent{at: f.At, fn: guard(func() { ctx.inject(f) })})
		events = append(events, netEvent{at: f.At + f.Dur, fn: guard(func() { ctx.heal(f) })})
	}
	step := s.Cfg.Horizon / midChecks
	if step <= 0 {
		step = 1
	}
	for t := step; t <= s.Cfg.Horizon; t += step {
		t := t
		events = append(events, netEvent{at: t, fn: func() {
			if found != nil {
				return
			}
			// Quiesce the local client pool for the check round: each
			// site's state then contains only whole local transaction
			// groups (remote groups always attach whole).
			checkGate.Lock()
			defer checkGate.Unlock()
			if ctx.stalls == 0 {
				cluster.Stabilize()
			}
			for site := range ctx.Sites {
				if ctx.Crashed(site) {
					continue // the site is down; nothing to read
				}
				if msgs := app.MidCheck(ctx, site); len(msgs) > 0 {
					report(&Violation{At: t, Phase: "mid-flight",
						Site: string(ctx.Sites[site]), Check: "invariant", Msgs: msgs})
					return
				}
			}
		}})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	// Heals scheduled past the horizon still run (the simulator's
	// quiescence force-heals them; here they sort after the horizon's
	// events and execute before healAll — same net effect).
	prev := wan.Time(0)
	for _, ev := range events {
		if found != nil {
			break
		}
		if dt := ev.at - prev; dt > 0 {
			// wan.Time is microseconds; convert before scaling.
			time.Sleep(time.Duration(float64(dt) * netPace * float64(time.Microsecond)))
		}
		prev = ev.at
		ev.fn()
	}
	join()
	if found != nil {
		return "", found, nil
	}
	v, err := Quiesce(ctx, app)
	if v != nil || err != nil {
		return "", v, err
	}
	return app.Digest(ctx, 0), nil, nil
}
