package harness

import (
	"testing"
	"time"
)

// TestSoakChurn runs the real-socket soak with small parameters: a 3-node
// streaming ring committing under repeated connection kills must converge
// to identical state at every node.
func TestSoakChurn(t *testing.T) {
	txns := 400
	if testing.Short() {
		txns = 150
	}
	res, err := Soak(SoakOptions{
		Nodes:       3,
		TxnsPerNode: txns,
		KillEvery:   2 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Converged {
		t.Fatalf("soak ring did not converge: %s", res.Divergence)
	}
	if res.ConnsKilled == 0 {
		t.Fatal("chaos loop killed no connections — churn not exercised")
	}
	if res.Metrics.TxnsDropped != 0 {
		t.Fatalf("streaming transport dropped %d txns during churn", res.Metrics.TxnsDropped)
	}
}
