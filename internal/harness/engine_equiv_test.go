package harness

import (
	"reflect"
	"testing"

	"ipa/internal/runtime"
)

// TestEngineMatchesHandCodedTournament is the spec-execution engine's
// acceptance gate: the same seeded chaos schedules — faults, partitions,
// pauses included — run once through the hand-coded IPA tournament and
// once through the engine executing the analyzed specification, and the
// two executors must land on digest-identical specification-level state
// at quiescence (with both passing every invariant and convergence
// check on the way). The generated executor then *is* the Fig. 3
// application.
func TestEngineMatchesHandCodedTournament(t *testing.T) {
	schedules := 30
	if testing.Short() {
		schedules = 8
	}
	cfgHand := Defaults("tournament")
	cfgEng := Defaults("tournament-spec")
	for i := 0; i < schedules; i++ {
		seed := ScheduleSeed(0x57EC, i)
		sHand, err := Generate(cfgHand, seed)
		if err != nil {
			t.Fatal(err)
		}
		sEng, err := Generate(cfgEng, seed)
		if err != nil {
			t.Fatal(err)
		}
		// The engine adapter reuses the hand-coded driver's generator, so
		// the schedules must agree op for op and fault for fault.
		if !reflect.DeepEqual(sHand.Ops, sEng.Ops) || !reflect.DeepEqual(sHand.Faults, sEng.Faults) {
			t.Fatalf("seed %#x: schedules diverge between the two executors", seed)
		}
		dHand, vHand, err := ExecuteDigest(sHand)
		if err != nil {
			t.Fatal(err)
		}
		if vHand != nil {
			t.Fatalf("seed %#x: hand-coded executor violated: %s", seed, vHand)
		}
		dEng, vEng, err := ExecuteDigest(sEng)
		if err != nil {
			t.Fatal(err)
		}
		if vEng != nil {
			t.Fatalf("seed %#x: engine executor violated: %s", seed, vEng)
		}
		if dHand == "" {
			t.Fatalf("seed %#x: empty digest", seed)
		}
		if dHand != dEng {
			t.Fatalf("seed %#x: executors diverge:\n  hand-coded: %s\n  engine:     %s", seed, dHand, dEng)
		}
	}
}

// TestEngineMatchesHandCodedTournamentNet repeats the executor
// equivalence on the netrepl backend with the sequential-settled
// discipline (real sockets are not bit-deterministic under faults, so
// the fault-free totally ordered workload is the comparable one there).
func TestEngineMatchesHandCodedTournamentNet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster per executor")
	}
	cfgHand := Defaults("tournament")
	cfgEng := Defaults("tournament-spec")
	cfgHand.Ops, cfgEng.Ops = 40, 40
	const seed = 0x1BA21
	dHand, err := BackendDigest(cfgHand, seed, runtime.BackendNet)
	if err != nil {
		t.Fatal(err)
	}
	dEng, err := BackendDigest(cfgEng, seed, runtime.BackendNet)
	if err != nil {
		t.Fatal(err)
	}
	if dHand == "" || dHand != dEng {
		t.Fatalf("executors diverge on netrepl:\n  hand-coded: %s\n  engine:     %s", dHand, dEng)
	}
}
