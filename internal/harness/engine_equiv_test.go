package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ipa/internal/apps/ticket"
	"ipa/internal/apps/twitter"
	"ipa/internal/clock"
	"ipa/internal/engine"
	"ipa/internal/logic"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// TestEngineMatchesHandCodedTournament is the spec-execution engine's
// acceptance gate: the same seeded chaos schedules — faults, partitions,
// pauses included — run once through the hand-coded IPA tournament and
// once through the engine executing the analyzed specification, and the
// two executors must land on digest-identical specification-level state
// at quiescence (with both passing every invariant and convergence
// check on the way). The generated executor then *is* the Fig. 3
// application.
func TestEngineMatchesHandCodedTournament(t *testing.T) {
	schedules := 30
	if testing.Short() {
		schedules = 8
	}
	cfgHand := Defaults("tournament")
	cfgEng := Defaults("tournament-spec")
	for i := 0; i < schedules; i++ {
		seed := ScheduleSeed(0x57EC, i)
		sHand, err := Generate(cfgHand, seed)
		if err != nil {
			t.Fatal(err)
		}
		sEng, err := Generate(cfgEng, seed)
		if err != nil {
			t.Fatal(err)
		}
		// The engine adapter reuses the hand-coded driver's generator, so
		// the schedules must agree op for op and fault for fault.
		if !reflect.DeepEqual(sHand.Ops, sEng.Ops) || !reflect.DeepEqual(sHand.Faults, sEng.Faults) {
			t.Fatalf("seed %#x: schedules diverge between the two executors", seed)
		}
		dHand, vHand, err := ExecuteDigest(sHand)
		if err != nil {
			t.Fatal(err)
		}
		if vHand != nil {
			t.Fatalf("seed %#x: hand-coded executor violated: %s", seed, vHand)
		}
		dEng, vEng, err := ExecuteDigest(sEng)
		if err != nil {
			t.Fatal(err)
		}
		if vEng != nil {
			t.Fatalf("seed %#x: engine executor violated: %s", seed, vEng)
		}
		if dHand == "" {
			t.Fatalf("seed %#x: empty digest", seed)
		}
		if dHand != dEng {
			t.Fatalf("seed %#x: executors diverge:\n  hand-coded: %s\n  engine:     %s", seed, dHand, dEng)
		}
	}
}

// TestCompiledMatchesInterpreterUnderChaos holds the compiled executor
// to the whole-state reference interpreter across full chaos schedules —
// faults, partitions, pauses included — for every spec-driven app: the
// same seeded schedule runs once per executor and must land on
// digest-identical state at quiescence with all checks green. Together
// with FuzzCompiledVsInterpreted (random specs, random call sequences)
// this pins the mount-time compilation pass to the executable semantics
// it was derived from.
func TestCompiledMatchesInterpreterUnderChaos(t *testing.T) {
	schedules := 12
	if testing.Short() {
		schedules = 4
	}
	for _, app := range []string{"tournament-spec", "twitter-spec", "ticket-spec"} {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			cfgC := Defaults(app)
			cfgI := Defaults(app)
			cfgI.Variant = "interp"
			for i := 0; i < schedules; i++ {
				seed := ScheduleSeed(0xD1FF, i)
				sC, err := Generate(cfgC, seed)
				if err != nil {
					t.Fatal(err)
				}
				sI, err := Generate(cfgI, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sC.Ops, sI.Ops) || !reflect.DeepEqual(sC.Faults, sI.Faults) {
					t.Fatalf("seed %#x: schedules diverge between executors", seed)
				}
				dC, vC, err := ExecuteDigest(sC)
				if err != nil {
					t.Fatal(err)
				}
				if vC != nil {
					t.Fatalf("seed %#x: compiled executor violated: %s", seed, vC)
				}
				dI, vI, err := ExecuteDigest(sI)
				if err != nil {
					t.Fatal(err)
				}
				if vI != nil {
					t.Fatalf("seed %#x: interpreter violated: %s", seed, vI)
				}
				if dC == "" || dC != dI {
					t.Fatalf("seed %#x: executors diverge:\n  compiled:    %s\n  interpreted: %s", seed, dC, dI)
				}
			}
		})
	}
}

// equivCluster is one executor's backend in a hand-vs-engine run (the
// two executors get separate clusters of the same shape).
type equivCluster struct {
	cluster runtime.Cluster
	sites   []clock.ReplicaID
}

func (c equivCluster) replica(site int) runtime.Replica { return c.cluster.Replica(c.sites[site]) }

func newSimEquivCluster(seed int64) equivCluster {
	sites := siteIDs(3)
	sim := wan.NewSim(seed)
	return equivCluster{runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(), sites)), sites}
}

func newNetEquivCluster(t *testing.T, ops int) equivCluster {
	sites := siteIDs(3)
	cluster, err := runtime.NewNetCluster(sites, chaosNetConfig(ops, ""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	return equivCluster{cluster, sites}
}

// equivDigest renders an interpretation's true atoms, skipping the
// predicates outside the comparable fragment (the hand-coded layouts
// cannot represent every spec predicate independently — see
// twitter.Interp).
func equivDigest(in logic.Interp, skip map[string]bool) string {
	var atoms []string
	for atom, v := range in.Truth {
		if !v {
			continue
		}
		pred := atom
		if i := strings.IndexByte(atom, '('); i >= 0 {
			pred = atom[:i]
		}
		if skip[pred] {
			continue
		}
		atoms = append(atoms, atom)
	}
	sort.Strings(atoms)
	return strings.Join(atoms, " ")
}

// runTwitterHandVsEngine drives the hand-coded RemWins Twitter clone and
// the engine executing the rem-wins-analyzed specification
// (twitter.Analysis) through one seeded sequential-settled workload on
// separate clusters, then requires atom-identical logical state on every
// replica.
//
// The workload stays inside the fragment where the two implementations
// make the same programmer decisions. Core users u0–u3 tweet, retweet,
// follow, and delete tweets but are never removed; side users churn
// through add_user/rem_user but never publish — the hand rem_user purges
// by authorship (which the spec cannot express: author(w) is unary)
// while the spec's rem_user wipes the removed user's own rows, and the
// two coincide exactly on content-free users. Fan-out is the driver's
// job on the engine side: the hand Tweet/Retweet write every follower's
// timeline in one transaction, so the driver issues the spec's
// retweet(w, f) per follower read from the engine's own visible state —
// the same read the hand app performs.
func runTwitterHandVsEngine(t *testing.T, hand, eng equivCluster, seed int64, nops int) {
	handApp := twitter.New(twitter.RemWins)
	engApp, err := engine.Mount(twitter.Spec(), twitter.Analysis(), nil)
	if err != nil {
		t.Fatal(err)
	}
	settle := func() {
		if err := hand.cluster.Settle(); err != nil {
			t.Fatal(err)
		}
		if err := eng.cluster.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	// The workload is curated to never trip a guard, so any engine
	// refusal is an executor divergence, not a legitimate no-op.
	call := func(site int, op string, args ...string) {
		if err := engApp.Call(eng.replica(site), op, args...); err != nil {
			t.Fatalf("engine %s(%v) at site %d: %v", op, args, site, err)
		}
	}
	// engFollowers lists the users following u in the engine's visible
	// state at site (the engine-side twin of the hand app's followersOf).
	engFollowers := func(site int, u string) []string {
		in := engApp.Interp(eng.replica(site))
		var out []string
		for atom, v := range in.Truth {
			if v && strings.HasPrefix(atom, "follows(") && strings.HasSuffix(atom, ","+u+")") {
				out = append(out, strings.TrimSuffix(strings.TrimPrefix(atom, "follows("), ","+u+")"))
			}
		}
		sort.Strings(out)
		return out
	}

	core := []string{"u0", "u1", "u2", "u3"}
	for _, u := range core {
		handApp.AddUser(hand.replica(0), u)
		call(0, "add_user", u)
	}
	settle()

	type tweetRec struct{ id, author string }
	var live []tweetRec
	var sideLive []string
	nextTweet, nextSide := 0, 0
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < nops; i++ {
		site := rng.Intn(len(hand.sites))
		x := rng.Float64()
		switch {
		case x < 0.22: // tweet: fresh id, core author
			author := core[rng.Intn(len(core))]
			id := fmt.Sprintf("w%d", nextTweet)
			nextTweet++
			handApp.Tweet(hand.replica(site), author, id, "text")
			call(site, "tweet", id, author)
			for _, f := range engFollowers(site, author) {
				call(site, "retweet", id, f)
			}
			live = append(live, tweetRec{id, author})
		case x < 0.37: // retweet a live tweet
			if len(live) == 0 {
				continue
			}
			tw := live[rng.Intn(len(live))]
			u := core[rng.Intn(len(core))]
			handApp.Retweet(hand.replica(site), u, tw.id, tw.author)
			call(site, "retweet", tw.id, u)
			for _, f := range engFollowers(site, u) {
				call(site, "retweet", tw.id, f)
			}
		case x < 0.49: // delete a live tweet
			if len(live) == 0 {
				continue
			}
			j := rng.Intn(len(live))
			tw := live[j]
			live = append(live[:j], live[j+1:]...)
			handApp.DelTweet(hand.replica(site), tw.id, tw.author)
			call(site, "del_tweet", tw.id)
		case x < 0.64: // follow between distinct core users
			a, b := core[rng.Intn(len(core))], core[rng.Intn(len(core))]
			if a == b {
				continue
			}
			handApp.Follow(hand.replica(site), a, b)
			call(site, "follow", a, b)
		case x < 0.74: // unfollow
			a, b := core[rng.Intn(len(core))], core[rng.Intn(len(core))]
			if a == b {
				continue
			}
			handApp.Unfollow(hand.replica(site), a, b)
			call(site, "unfollow", a, b)
		case x < 0.85: // add a fresh side user
			u := fmt.Sprintf("s%d", nextSide)
			nextSide++
			sideLive = append(sideLive, u)
			handApp.AddUser(hand.replica(site), u)
			call(site, "add_user", u)
		default: // remove a side user (never re-added)
			if len(sideLive) == 0 {
				continue
			}
			j := rng.Intn(len(sideLive))
			u := sideLive[j]
			sideLive = append(sideLive[:j], sideLive[j+1:]...)
			handApp.RemUser(hand.replica(site), u)
			call(site, "rem_user", u)
		}
		settle()
	}

	// Deleted tweets leave dangling timeline entries that the hand
	// RemWins variant hides at read time; the engine's del_tweet wiped
	// them eagerly. Run the compensating reads, then compare.
	for _, u := range core {
		handApp.ReadTimeline(hand.replica(0), u)
	}
	settle()

	for site := range hand.sites {
		handDigest := equivDigest(twitter.Interp(hand.replica(site), twitter.RemWins), nil)
		engDigest := equivDigest(engApp.Interp(eng.replica(site)), map[string]bool{"author": true})
		if handDigest == "" {
			t.Fatalf("site %d: empty digest", site)
		}
		if handDigest != engDigest {
			t.Fatalf("site %d: executors diverge:\n  hand-coded: %s\n  engine:     %s", site, handDigest, engDigest)
		}
	}
}

// TestEngineMatchesHandCodedTwitter holds the engine executing the
// rem-wins-analyzed Twitter specification to the hand-coded RemWins
// variant on sequential-settled sim workloads (mirrors the tournament
// equivalence; see runTwitterHandVsEngine for the comparable fragment).
func TestEngineMatchesHandCodedTwitter(t *testing.T) {
	seeds := 6
	ops := 150
	if testing.Short() {
		seeds, ops = 2, 60
	}
	for i := 0; i < seeds; i++ {
		seed := int64(0x7317 + 977*i)
		runTwitterHandVsEngine(t, newSimEquivCluster(seed), newSimEquivCluster(seed+1), seed, ops)
	}
}

// TestEngineMatchesHandCodedTwitterNet repeats the Twitter executor
// equivalence on the netrepl backend (real sockets, sequential-settled).
func TestEngineMatchesHandCodedTwitterNet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster per executor")
	}
	const ops = 50
	runTwitterHandVsEngine(t, newNetEquivCluster(t, ops), newNetEquivCluster(t, ops), 0x7A11, ops)
}

// runTicketHandVsEngine drives the hand-coded IPA FusionTicket (the
// Compensation Set: buys always succeed, reads cancel oversell and
// refund) and the engine executing the capacity-5 ticket specification
// (the synthesized trim-excess compensation) through one seeded
// sequential-settled workload, then compares per-event sold counts on
// every replica.
//
// The comparison is count-level: the two repair mechanisms cancel
// *different* tickets (the comp set cancels the newest, trim-excess the
// deterministically smallest) and the hand refund ledger has no spec
// counterpart, but both must land on the same per-event count —
// min(buys, capacity) — at quiescence. The buy volume is sized to drive
// every event past capacity, so the test fails if either repair
// mechanism stops cancelling.
func runTicketHandVsEngine(t *testing.T, hand, eng equivCluster, seed int64, nops int) {
	const capacity = 5
	events := []string{"ev0", "ev1"}
	handApp := ticket.New(ticket.IPA, capacity)
	handApp.Setup(hand.cluster, events)
	orig, res, err := analyzeSpec(ticket.SpecSourceWithCapacity(capacity))
	if err != nil {
		t.Fatal(err)
	}
	engApp, err := engine.Mount(orig, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := engApp.Call(eng.replica(0), "add_event", e); err != nil {
			t.Fatal(err)
		}
	}
	settle := func() {
		if err := hand.cluster.Settle(); err != nil {
			t.Fatal(err)
		}
		if err := eng.cluster.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	settle()

	rng := rand.New(rand.NewSource(seed))
	buys := 0
	for i := 0; i < nops; i++ {
		site := rng.Intn(len(hand.sites))
		e := events[rng.Intn(len(events))]
		if rng.Float64() < 0.75 {
			buyer := fmt.Sprintf("b%d", rng.Intn(4))
			handApp.Buy(hand.replica(site), buyer, e)
			k := fmt.Sprintf("k%d", buys)
			buys++
			// The hand app always records the purchase and repairs later;
			// whether the engine refuses up front or trims at read time,
			// the quiescent count must come out the same.
			if err := engApp.Call(eng.replica(site), "buy", k, e); err != nil && !errors.Is(err, engine.ErrPrecondition) {
				t.Fatalf("engine buy(%s, %s) at site %d: %v", k, e, site, err)
			}
		} else {
			handApp.View(hand.replica(site), e)
			engApp.Repair(eng.replica(site))
		}
		settle()
	}

	// Quiescence: compensating reads everywhere, twice, like Quiesce.
	for round := 0; round < 2; round++ {
		for site := range hand.sites {
			for _, e := range events {
				handApp.View(hand.replica(site), e)
			}
			engApp.Repair(eng.replica(site))
		}
		settle()
	}

	engSold := func(site int, e string) int {
		in := engApp.Interp(eng.replica(site))
		n := 0
		for atom, v := range in.Truth {
			if v && strings.HasPrefix(atom, "sold(") && strings.HasSuffix(atom, ","+e+")") {
				n++
			}
		}
		return n
	}
	capped := 0
	for site := range hand.sites {
		for _, e := range events {
			h, g := handApp.Sold(hand.replica(site), e), engSold(site, e)
			if h != g {
				t.Fatalf("site %d event %s: executors diverge: hand-coded sold %d, engine sold %d", site, e, h, g)
			}
			if h > capacity {
				t.Fatalf("site %d event %s: oversold at quiescence (%d > %d)", site, e, h, capacity)
			}
			if h == capacity {
				capped++
			}
		}
	}
	if capped == 0 {
		t.Fatal("no event reached capacity — the workload never exercised the repair path")
	}
}

// TestEngineMatchesHandCodedTicket holds the engine executing the
// capacity-5 ticket specification to the hand-coded IPA FusionTicket on
// sequential-settled sim workloads (count-level equivalence of the two
// oversell-repair mechanisms; see runTicketHandVsEngine).
func TestEngineMatchesHandCodedTicket(t *testing.T) {
	seeds := 6
	ops := 60
	if testing.Short() {
		seeds, ops = 2, 40
	}
	for i := 0; i < seeds; i++ {
		seed := int64(0x71C4E7 + 977*i)
		runTicketHandVsEngine(t, newSimEquivCluster(seed), newSimEquivCluster(seed+1), seed, ops)
	}
}

// TestEngineMatchesHandCodedTicketNet repeats the ticket executor
// equivalence on the netrepl backend (real sockets, sequential-settled).
func TestEngineMatchesHandCodedTicketNet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster per executor")
	}
	const ops = 40
	runTicketHandVsEngine(t, newNetEquivCluster(t, ops), newNetEquivCluster(t, ops), 0x71CE, ops)
}

// TestEngineMatchesHandCodedTournamentNet repeats the executor
// equivalence on the netrepl backend with the sequential-settled
// discipline (real sockets are not bit-deterministic under faults, so
// the fault-free totally ordered workload is the comparable one there).
func TestEngineMatchesHandCodedTournamentNet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster per executor")
	}
	cfgHand := Defaults("tournament")
	cfgEng := Defaults("tournament-spec")
	cfgHand.Ops, cfgEng.Ops = 40, 40
	const seed = 0x1BA21
	dHand, err := BackendDigest(cfgHand, seed, runtime.BackendNet)
	if err != nil {
		t.Fatal(err)
	}
	dEng, err := BackendDigest(cfgEng, seed, runtime.BackendNet)
	if err != nil {
		t.Fatal(err)
	}
	if dHand == "" || dHand != dEng {
		t.Fatalf("executors diverge on netrepl:\n  hand-coded: %s\n  engine:     %s", dHand, dEng)
	}
}
