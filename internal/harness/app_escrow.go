package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// escrowChaos drives the Indigo escrow manager (the paper's coordination
// baseline) to exhaustion: a handful of units split across the replicas,
// a consume-heavy op mix far beyond the total, and partitions that make
// rights transfers fail. The safety property is absolute — no schedule
// may ever drive a resource's remaining units negative, and units are
// conserved: remaining always equals total minus net successful consumes
// (denied consumes take nothing). Exhaustion and unreachability must show
// up as denials, never as oversell.
type escrowChaos struct {
	cfg       Config
	resources []string
	total     int64
	// execution-side accounting per resource and site
	consumed map[string][]int64
}

const escrowTotal = 9

func newEscrowChaos(cfg Config) *escrowChaos {
	a := &escrowChaos{cfg: cfg, total: escrowTotal}
	for i := 0; i < 2; i++ {
		a.resources = append(a.resources, fmt.Sprintf("res%d", i))
	}
	return a
}

func (a *escrowChaos) Setup(ctx *Ctx) {
	a.consumed = map[string][]int64{}
	for _, res := range a.resources {
		ctx.Esc.Create(res, a.total)
		a.consumed[res] = make([]int64, len(ctx.Sites))
	}
}

func (a *escrowChaos) Gen(rng *rand.Rand) Op {
	res := a.resources[rng.Intn(len(a.resources))]
	if rng.Float64() < 0.8 {
		n := 1 + rng.Intn(3)
		return Op{Kind: "consume", Args: []string{res, strconv.Itoa(n)}}
	}
	return Op{Kind: "refund", Args: []string{res}}
}

func (a *escrowChaos) Apply(ctx *Ctx, op Op) {
	res := op.Args[0]
	switch op.Kind {
	case "consume":
		n, _ := strconv.ParseInt(op.Args[1], 10, 64)
		if _, ok := ctx.Esc.Consume(res, ctx.Sites[op.Site], n); ok {
			a.consumed[res][op.Site] += n
		}
	case "refund":
		// Refund only units this site actually holds consumed — refunding
		// more would mint rights out of thin air.
		if a.consumed[res][op.Site] > 0 {
			ctx.Esc.Refund(res, ctx.Sites[op.Site], 1)
			a.consumed[res][op.Site]--
		}
	default:
		panic("harness: unknown escrow op " + op.Kind)
	}
}

// check asserts the escrow safety invariants; they hold continuously.
func (a *escrowChaos) check(ctx *Ctx) []string {
	var out []string
	for _, res := range a.resources {
		rem := ctx.Esc.Remaining(res)
		if rem < 0 {
			out = append(out, fmt.Sprintf("escrow %s over-consumed: remaining %d < 0", res, rem))
		}
		var net int64
		for _, c := range a.consumed[res] {
			net += c
		}
		if want := a.total - net; rem != want {
			out = append(out, fmt.Sprintf("escrow %s units not conserved: remaining %d, want %d (total %d - net consumed %d)",
				res, rem, want, a.total, net))
		}
		var rights int64
		for _, site := range ctx.Sites {
			r := ctx.Esc.LocalRights(res, site)
			if r < 0 {
				out = append(out, fmt.Sprintf("escrow %s: negative local rights %d at %s", res, r, site))
			}
			rights += r
		}
		if rights != rem {
			out = append(out, fmt.Sprintf("escrow %s: local rights sum %d != remaining %d", res, rights, rem))
		}
	}
	return out
}

func (a *escrowChaos) MidCheck(ctx *Ctx, site int) []string {
	if site != 0 {
		return nil // the escrow state is global; check it once per sweep
	}
	return a.check(ctx)
}

func (a *escrowChaos) Repair(ctx *Ctx, site int) {}

func (a *escrowChaos) FinalCheck(ctx *Ctx, site int) []string {
	if site != 0 {
		return nil
	}
	return a.check(ctx)
}

func (a *escrowChaos) Digest(ctx *Ctx, site int) string {
	var parts []string
	for _, res := range a.resources {
		parts = append(parts, fmt.Sprintf("%s=%d", res, ctx.Esc.Remaining(res)))
	}
	return strings.Join(parts, " ")
}
