package harness

import (
	"fmt"

	"ipa/internal/runtime"
)

// BackendDigest runs one seeded, fault-free workload sequentially on the
// given backend — settling replication after every operation — and
// returns the application digest at quiescence.
//
// The sequential-settled discipline makes the digest a pure function of
// the generated op sequence: each operation observes the totally ordered,
// fully replicated effects of all its predecessors, so precondition
// checks, compensation decisions, and tag sequence numbers come out
// identical on every backend. The same seed must therefore digest
// identically on sim and netrepl — the cross-backend equivalence check
// that pins the two substrates to one store semantics (wire encoding,
// causal delivery, CRDT application) end to end.
func BackendDigest(cfg Config, seed uint64, backend string) (string, error) {
	cfg.Backend = backend
	cfg.Faults = -1 // Norm treats 0 as "default"; the generator skips negatives
	cfg, err := cfg.Norm()
	if err != nil {
		return "", err
	}
	s, err := Generate(cfg, seed)
	if err != nil {
		return "", err
	}
	if len(s.Faults) > 0 {
		return "", fmt.Errorf("harness: equivalence runs are fault-free, got %d faults", len(s.Faults))
	}
	app, err := newApp(cfg)
	if err != nil {
		return "", err
	}

	var ctx *Ctx
	var cluster runtime.Cluster
	switch backend {
	case runtime.BackendSim:
		ctx = newCtx(s)
		cluster = ctx.Cluster
	case runtime.BackendNet:
		sites := siteIDs(cfg.Replicas)
		cluster, err = runtime.NewNetCluster(sites, chaosNetConfig(cfg.Ops, ""))
		if err != nil {
			return "", err
		}
		defer cluster.Close()
		ctx = NewCtx(cfg, cluster, sites)
	default:
		return "", fmt.Errorf("harness: unknown backend %q", backend)
	}

	app.Setup(ctx)
	if err := cluster.Settle(); err != nil {
		return "", err
	}
	for _, op := range s.Ops {
		app.Apply(ctx, op)
		if err := cluster.Settle(); err != nil {
			return "", err
		}
	}
	if v, err := Quiesce(ctx, app); err != nil {
		return "", err
	} else if v != nil {
		return "", fmt.Errorf("harness: %s backend not clean at quiescence: %s", backend, v)
	}
	return app.Digest(ctx, 0), nil
}
