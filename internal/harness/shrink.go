package harness

import "ipa/internal/wan"

// Shrink minimizes a failing schedule while it keeps failing: greedy
// delta-debugging over the op list (drop chunks, halving the chunk size
// down to single ops), then over the fault list, then a horizon cut to
// just past the last event. Execution is deterministic in the schedule,
// so every accepted reduction is a real, replayable failure; the returned
// violation is the shrunk schedule's own (it may differ from the original
// — a smaller schedule often fails earlier).
//
// Shrinking re-executes the schedule O(n log n) times in the worst case;
// with the default schedule sizes that is a few hundred sim runs, well
// under a second.
func Shrink(s *Schedule) (*Schedule, *Violation, error) {
	cur := cloneSchedule(s)
	v, err := Execute(cur)
	if err != nil {
		return nil, nil, err
	}
	if v == nil {
		return cur, nil, nil // not failing: nothing to shrink
	}

	fails := func(c *Schedule) bool {
		cv, cerr := Execute(c)
		if cerr != nil {
			return false
		}
		if cv != nil {
			v = cv
		}
		return cv != nil
	}

	cur.Ops = shrinkList(cur, cur.Ops, func(c *Schedule, l []Op) { c.Ops = l }, fails)
	cur.Faults = shrinkList(cur, cur.Faults, func(c *Schedule, l []Fault) { c.Faults = l }, fails)

	// Horizon cut: end the run just after the last scheduled event.
	last := wan.Time(0)
	for _, op := range cur.Ops {
		if op.At > last {
			last = op.At
		}
	}
	for _, f := range cur.Faults {
		if f.At > last {
			last = f.At
		}
	}
	if cut := last + wan.Millisecond; cut < cur.Cfg.Horizon {
		trial := cloneSchedule(cur)
		trial.Cfg.Horizon = cut
		if fails(trial) {
			cur = trial
		}
	}

	// Re-execute the final schedule so the returned violation is exactly
	// what a replay of the returned schedule will print.
	final, err := Execute(cur)
	if err != nil {
		return nil, nil, err
	}
	return cur, final, nil
}

// shrinkList is one ddmin pass over a slice of schedule events.
func shrinkList[T any](s *Schedule, list []T, set func(*Schedule, []T), fails func(*Schedule) bool) []T {
	chunk := len(list) / 2
	if chunk < 1 {
		chunk = 1
	}
	for chunk >= 1 {
		removed := false
		for i := 0; i+chunk <= len(list); {
			trial := cloneSchedule(s)
			candidate := append(append([]T(nil), list[:i]...), list[i+chunk:]...)
			set(trial, candidate)
			if fails(trial) {
				list = candidate
				set(s, list)
				removed = true
				// i stays: the next chunk slid into place.
			} else {
				i += chunk
			}
		}
		if chunk == 1 && !removed {
			break
		}
		if chunk > 1 {
			chunk /= 2
		} else if !removed {
			break
		}
	}
	set(s, list)
	return list
}

// cloneSchedule deep-copies a schedule (the slices; ops/faults are value
// types).
func cloneSchedule(s *Schedule) *Schedule {
	c := *s
	c.Ops = append([]Op(nil), s.Ops...)
	c.Faults = append([]Fault(nil), s.Faults...)
	return &c
}
