package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"

	"ipa/internal/analysis"
	"ipa/internal/apps/ticket"
	"ipa/internal/apps/tournament"
	"ipa/internal/apps/twitter"
	"ipa/internal/engine"
	"ipa/internal/runtime"
	"ipa/internal/spec"
)

// SpecAppPrefix selects the spec-driven application: `spec:<path>` loads
// the specification file, runs the IPA analysis on it, and fuzzes the
// engine-executed result — chaos coverage for any user-provided spec,
// with no per-application Go.
const SpecAppPrefix = "spec:"

// specChaos drives an engine-executed application: operations, checks,
// repairs, and digests all come from the analyzed specification.
type specChaos struct {
	eng *engine.App
	// gen materializes one random op (shared by the generic file-backed
	// app and the tournament equivalence adapter, which substitutes the
	// hand-coded driver's generator to get the identical op stream).
	gen func(rng *rand.Rand) Op
	// setup seeds initial state through the engine (may be nil).
	setup func(a *specChaos, ctx *Ctx)
	// aliases maps schedule op kinds to specification operation names.
	aliases map[string]string
}

// specEntry caches one source's parse + analysis: the IPA loop costs
// seconds on larger specs and its output is immutable, while the chaos
// engine builds a fresh adapter per schedule.
type specEntry struct {
	once sync.Once
	orig *spec.Spec
	res  *analysis.Result
	err  error
}

var specCache sync.Map // source string -> *specEntry

// analyzeSpec parses and analyzes a specification source, cached.
func analyzeSpec(src string) (*spec.Spec, *analysis.Result, error) {
	e, _ := specCache.LoadOrStore(src, &specEntry{})
	entry := e.(*specEntry)
	entry.once.Do(func() {
		s, err := spec.Parse(src)
		if err != nil {
			entry.err = err
			return
		}
		res, err := analysis.Run(s, analysis.Options{})
		if err != nil {
			entry.err = err
			return
		}
		entry.orig, entry.res = s, res
	})
	return entry.orig, entry.res, entry.err
}

// specMountOpts maps a spec-driven app's variant to engine mount
// options: "ipa" runs the compiled per-operation plans, "interp" the
// whole-state reference interpreter — same analyzed spec, different
// executor, so chaos schedules double as executor-differential tests.
func specMountOpts(cfg Config, app string) ([]engine.MountOption, error) {
	switch cfg.Variant {
	case "ipa":
		return nil, nil
	case "interp":
		return []engine.MountOption{engine.WithInterpreter()}, nil
	default:
		return nil, fmt.Errorf("harness: %s runs the analyzed spec (variant ipa, or interp for the reference executor)", app)
	}
}

// newSpecFileChaos builds the adapter for `spec:<path>`.
func newSpecFileChaos(cfg Config) (*specChaos, error) {
	opts, err := specMountOpts(cfg, SpecAppPrefix+"<file>")
	if err != nil {
		return nil, err
	}
	if cfg.BreakOp != "" {
		return nil, fmt.Errorf("harness: -break unsupported for %s apps", SpecAppPrefix)
	}
	path := strings.TrimPrefix(cfg.App, SpecAppPrefix)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	orig, res, err := analyzeSpec(string(data))
	if err != nil {
		return nil, err
	}
	eng, err := engine.Mount(orig, res, nil, opts...)
	if err != nil {
		return nil, err
	}
	a := &specChaos{eng: eng}
	a.gen = a.genericGen()
	return a, nil
}

// newTournamentSpecChaos builds the engine-executed tournament: the
// paper's running example mounted from its analyzed specification, with
// the hand-coded chaos driver's generator — so a schedule seed yields
// the identical op stream for both executors, which is what makes their
// quiescent digests comparable.
func newTournamentSpecChaos(cfg Config) (*specChaos, error) {
	opts, err := specMountOpts(cfg, "tournament-spec")
	if err != nil {
		return nil, err
	}
	if cfg.BreakOp != "" {
		return nil, fmt.Errorf("harness: -break unsupported for tournament-spec (break the hand-coded tournament instead)")
	}
	eng, err := engine.Mount(tournament.Spec(), tournament.Analysis(), nil, opts...)
	if err != nil {
		return nil, err
	}
	hand := newTournamentChaos(cfg)
	return &specChaos{
		eng: eng,
		gen: hand.Gen,
		setup: func(a *specChaos, ctx *Ctx) {
			r := ctx.Replica(0)
			seed := func(kind string, args ...string) {
				if err := a.eng.Call(r, kind, args...); err != nil {
					panic(fmt.Sprintf("harness: tournament-spec setup %s(%v): %v", kind, args, err))
				}
			}
			for _, p := range hand.players {
				seed("add_player", p)
			}
			for _, t := range hand.tourns {
				seed("add_tourn", t)
			}
			seed("begin_tourn", hand.tourns[0])
		},
		aliases: map[string]string{"begin": "begin_tourn", "finish": "finish_tourn"},
	}, nil
}

// newTwitterSpecChaos builds the engine-executed Twitter clone: the
// specification analyzed with the Fig. 6 rem-wins repair choices
// (twitter.Analysis — rem_user and del_tweet carry rem-wins wildcard
// wipes), fuzzed with the generic generator over tiny domains so the
// wipes constantly race concurrent tweets, retweets, and follows.
func newTwitterSpecChaos(cfg Config) (*specChaos, error) {
	opts, err := specMountOpts(cfg, "twitter-spec")
	if err != nil {
		return nil, err
	}
	if cfg.BreakOp != "" {
		return nil, fmt.Errorf("harness: -break unsupported for twitter-spec (break the hand-coded twitter instead)")
	}
	eng, err := engine.Mount(twitter.Spec(), twitter.Analysis(), nil, opts...)
	if err != nil {
		return nil, err
	}
	a := &specChaos{
		eng: eng,
		setup: func(a *specChaos, ctx *Ctx) {
			r := ctx.Replica(0)
			// Seed the generator's user pool so early tweets and follows
			// pass their guards instead of refusing into an empty state.
			for _, u := range []string{"user0", "user1", "user2"} {
				specSeed(a, r, "add_user", u)
			}
			specSeed(a, r, "follow", "user0", "user1")
		},
	}
	a.gen = a.genericGen()
	return a, nil
}

// newTicketSpecChaos builds the engine-executed FusionTicket: the
// specification analyzed at the chaos harness's tiny capacity (5) so the
// buy-heavy mix oversells constantly and the synthesized trim-excess
// compensation must repair every oversell at read time. The generator
// issues a fresh ticket id per buy (the spec is tagged unique-ids) and
// refunds only tickets it sold before.
func newTicketSpecChaos(cfg Config) (*specChaos, error) {
	opts, err := specMountOpts(cfg, "ticket-spec")
	if err != nil {
		return nil, err
	}
	if cfg.BreakOp != "" {
		return nil, fmt.Errorf("harness: -break unsupported for ticket-spec (break the hand-coded ticket instead)")
	}
	orig, res, err := analyzeSpec(ticket.SpecSourceWithCapacity(5))
	if err != nil {
		return nil, err
	}
	eng, err := engine.Mount(orig, res, nil, opts...)
	if err != nil {
		return nil, err
	}
	events := []string{"ev0", "ev1"}
	a := &specChaos{
		eng: eng,
		setup: func(a *specChaos, ctx *Ctx) {
			r := ctx.Replica(0)
			for _, e := range events {
				specSeed(a, r, "add_event", e)
			}
		},
	}
	var sold []Op // generator-side state: tickets issued so far
	a.gen = func(rng *rand.Rand) Op {
		e := events[rng.Intn(len(events))]
		switch {
		case rng.Float64() < 0.7 || len(sold) == 0:
			op := Op{Kind: "buy", Args: []string{fmt.Sprintf("k%d", len(sold)), e}}
			sold = append(sold, op)
			return op
		default:
			prev := sold[rng.Intn(len(sold))]
			return Op{Kind: "refund", Args: prev.Args}
		}
	}
	return a, nil
}

// specSeed executes one setup operation through the engine, panicking on
// refusal: seeding runs on a quiescent single-origin state, so a failure
// is a harness bug, not a legitimate guard.
func specSeed(a *specChaos, r runtime.Replica, kind string, args ...string) {
	if err := a.eng.Call(r, kind, args...); err != nil {
		panic(fmt.Sprintf("harness: %s setup %s(%v): %v", a.eng.Spec().Name, kind, args, err))
	}
}

// genericGen draws uniformly over the spec's operations with arguments
// from small per-sort pools — tiny domains collide constantly, which is
// exactly the concurrency the analysis' repairs must survive.
func (a *specChaos) genericGen() func(rng *rand.Rand) Op {
	ops := a.eng.Operations()
	pools := map[string][]string{}
	poolFor := func(srt string) []string {
		if p, ok := pools[srt]; ok {
			return p
		}
		base := strings.ToLower(srt)
		p := []string{base + "0", base + "1", base + "2"}
		pools[srt] = p
		return p
	}
	return func(rng *rand.Rand) Op {
		s := a.eng.Spec()
		name := ops[rng.Intn(len(ops))]
		op, _ := s.Operation(name)
		args := make([]string, len(op.Params))
		for i, p := range op.Params {
			pool := poolFor(string(p.Sort))
			args[i] = pool[rng.Intn(len(pool))]
		}
		return Op{Kind: name, Args: args}
	}
}

func (a *specChaos) Gen(rng *rand.Rand) Op { return a.gen(rng) }

func (a *specChaos) Setup(ctx *Ctx) {
	if a.setup != nil {
		a.setup(a, ctx)
	}
}

// Apply executes one materialized operation through the engine, treating
// a failed precondition as the guarded no-op it is; any other error is a
// harness bug.
func (a *specChaos) Apply(ctx *Ctx, op Op) {
	kind := op.Kind
	if alias, ok := a.aliases[kind]; ok {
		kind = alias
	}
	err := a.eng.Call(ctx.Replica(op.Site), kind, op.Args...)
	if err != nil && !errors.Is(err, engine.ErrPrecondition) {
		panic(fmt.Sprintf("harness: spec app %s(%v): %v", kind, op.Args, err))
	}
}

func (a *specChaos) MidCheck(ctx *Ctx, site int) []string {
	return a.eng.CheckInvariants(ctx.Replica(site))
}

func (a *specChaos) Repair(ctx *Ctx, site int) {
	a.eng.Repair(ctx.Replica(site))
}

func (a *specChaos) FinalCheck(ctx *Ctx, site int) []string {
	return a.eng.CheckQuiescent(ctx.Replica(site))
}

func (a *specChaos) Digest(ctx *Ctx, site int) string {
	return a.eng.Digest(ctx.Replica(site))
}
