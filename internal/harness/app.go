package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ipa/internal/clock"
	"ipa/internal/indigo"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// App adapts one application to the chaos engine. An App instance is
// created fresh per schedule — once for generation (Gen may keep
// workload-side state such as circulating tweet ids) and once for
// execution (Apply may keep execution-side state such as placed orders).
//
// The check split mirrors the two repair mechanisms of the paper:
// MidCheck asserts only the invariants IPA restores at merge time
// (conflict-resolution repairs — they must hold in every causally
// consistent local state, at any instant); FinalCheck, which runs after
// Repair's compensating reads have executed and replicated, additionally
// asserts the invariants IPA restores at read time (compensations).
type App interface {
	// Gen materializes one random operation (Kind and Args; the engine
	// assigns At and Site).
	Gen(rng *rand.Rand) Op
	// Setup seeds the initial state; the engine drains replication after.
	Setup(ctx *Ctx)
	// Apply executes one materialized operation at a site.
	Apply(ctx *Ctx, op Op)
	// MidCheck reports violations of the continuously held invariants in
	// site's current local state.
	MidCheck(ctx *Ctx, site int) []string
	// Repair performs the application's compensating reads at site (the
	// read-triggered repairs of §4.2.2); a no-op for merge-repaired apps.
	Repair(ctx *Ctx, site int)
	// FinalCheck reports any invariant violation in site's state at
	// quiescence (after heal, drain, and Repair everywhere).
	FinalCheck(ctx *Ctx, site int) []string
	// Digest summarizes site's visible state; at quiescence all replicas
	// must digest identically (CRDT convergence).
	Digest(ctx *Ctx, site int) string
}

// newApp builds the adapter for cfg.App.
func newApp(cfg Config) (App, error) {
	if cfg.Variant == "interp" && !strings.HasPrefix(cfg.App, SpecAppPrefix) && !strings.HasSuffix(cfg.App, "-spec") {
		return nil, fmt.Errorf("harness: variant interp selects the spec-driven engine's reference executor; app %q is hand-coded", cfg.App)
	}
	if strings.HasPrefix(cfg.App, SpecAppPrefix) {
		return newSpecFileChaos(cfg)
	}
	switch cfg.App {
	case "tournament":
		return newTournamentChaos(cfg), nil
	case "tournament-spec":
		return newTournamentSpecChaos(cfg)
	case "twitter-spec":
		return newTwitterSpecChaos(cfg)
	case "ticket-spec":
		return newTicketSpecChaos(cfg)
	case "ticket":
		return newTicketChaos(cfg), nil
	case "twitter":
		if cfg.BreakOp != "" {
			return nil, fmt.Errorf("harness: -break unsupported for twitter (causal and rem-wins variants use different CRDT layouts)")
		}
		return newTwitterChaos(cfg), nil
	case "tpcw":
		return newTPCWChaos(cfg), nil
	case "escrow":
		if cfg.BreakOp != "" {
			return nil, fmt.Errorf("harness: -break unsupported for escrow")
		}
		return newEscrowChaos(cfg), nil
	default:
		return nil, fmt.Errorf("harness: unknown app %q (want %s, or %s<file>)",
			cfg.App, strings.Join(Apps(), ", "), SpecAppPrefix)
	}
}

// Apps lists the chaos-drivable application names. The -spec entries are
// the spec-driven engine executing the analyzed specification of the
// like-named hand-coded app; `spec:<file>` (not listed — it takes a
// path) drives any specification the same way.
func Apps() []string {
	return []string{"tournament", "tournament-spec", "ticket", "ticket-spec",
		"twitter", "twitter-spec", "tpcw", "escrow"}
}

// PortableApps lists the applications that run on every backend (escrow
// is coupled to the simulated latency model and stays sim-only).
func PortableApps() []string {
	return []string{"tournament", "tournament-spec", "ticket", "ticket-spec",
		"twitter", "twitter-spec", "tpcw"}
}

// NewChaosApp builds the chaos adapter for cfg. Exported for callers that
// drive App adapters outside the engine, such as the bench serving
// benchmark.
func NewChaosApp(cfg Config) (App, error) { return newApp(cfg) }

// Ctx is the execution context of one schedule: the backend cluster and
// the live fault state. On the sim backend Sim and Lat expose the
// discrete-event machinery; on the netrepl backend both are nil and the
// cluster runs on real sockets and wall-clock time.
type Ctx struct {
	Cfg Config
	// Sim and Lat are set on the sim backend only.
	Sim     *wan.Sim
	Lat     *wan.Latency
	Cluster runtime.Cluster
	Sites   []clock.ReplicaID
	// Esc is the escrow manager (escrow scenario, sim backend only).
	Esc *indigo.Escrow

	paused  []int              // pause depth per site (faults may overlap)
	crashed []int              // crash depth per site (faults may overlap)
	stalls  int                // active stability-stall windows
	part    map[[2]int]int     // partition depth per link
	delay   map[[2]int]float64 // delay factor product per link
	joins   map[string]int     // join depth per joiner id (windows may collide)
	joinIDs []string           // joiner ids in injection order (healAll determinism)
	lifeErr error              // first lifecycle-operation failure
}

// NewCtx builds an execution context over an existing backend cluster,
// with no live faults. Exported for callers outside the engine (the bench
// serving benchmark) that drive App adapters directly.
func NewCtx(cfg Config, cluster runtime.Cluster, sites []clock.ReplicaID) *Ctx {
	return &Ctx{
		Cfg:     cfg,
		Cluster: cluster,
		Sites:   sites,
		paused:  make([]int, len(sites)),
		crashed: make([]int, len(sites)),
		part:    map[[2]int]int{},
		delay:   map[[2]int]float64{},
		joins:   map[string]int{},
	}
}

// siteIDs names the replica sites: the first three use the paper's
// topology; larger clusters add generic names.
func siteIDs(replicas int) []clock.ReplicaID {
	sites := make([]clock.ReplicaID, replicas)
	for i := range sites {
		if i < 3 {
			sites[i] = clock.ReplicaID(wan.Sites()[i])
		} else {
			sites[i] = clock.ReplicaID(fmt.Sprintf("site-%d", i))
		}
	}
	return sites
}

// newCtx builds the simulated deployment for a schedule.
func newCtx(s *Schedule) *Ctx {
	rng := rand.New(rand.NewSource(int64(s.Seed) ^ 0x5DEECE66D))
	sim := wan.NewSimFromRand(rng)
	lat := wan.PaperTopology()
	sites := siteIDs(s.Cfg.Replicas)
	ctx := NewCtx(s.Cfg, runtime.NewSimCluster(store.NewCluster(sim, lat, sites)), sites)
	ctx.Sim = sim
	ctx.Lat = lat
	if s.Cfg.App == "escrow" {
		ctx.Esc = indigo.NewEscrow(lat, sites)
		ctx.Esc.Partitioned = func(a, b clock.ReplicaID) bool {
			return ctx.partitionedIDs(a, b)
		}
	}
	return ctx
}

// Replica returns the backend replica of a site index.
func (c *Ctx) Replica(site int) runtime.Replica { return c.Cluster.Replica(c.Sites[site]) }

// faults returns the cluster's fault-injection surface, nil when the
// backend does not support one.
func (c *Ctx) faults() runtime.Faults {
	f, _ := c.Cluster.(runtime.Faults)
	return f
}

// lifecycle returns the cluster's elastic-membership surface, nil when
// the backend does not support one.
func (c *Ctx) lifecycle() runtime.Lifecycle {
	l, _ := c.Cluster.(runtime.Lifecycle)
	return l
}

// noteLifeErr records the first lifecycle-operation failure. Fault
// injection has no error channel (faults are fire-and-forget timeline
// events), but a failed Recover or Join is a harness bug, not a finding
// about the application — Quiesce surfaces it as a run error instead of
// letting the settle phase time out cryptically.
func (c *Ctx) noteLifeErr(err error) {
	if c.lifeErr == nil {
		c.lifeErr = err
	}
}

// LifecycleErr returns the first lifecycle-operation failure, if any.
func (c *Ctx) LifecycleErr() error { return c.lifeErr }

// Paused reports whether a site is currently paused or crashed — either
// way its clients are down with it and issue no operations.
func (c *Ctx) Paused(site int) bool { return c.paused[site] > 0 || c.crashed[site] > 0 }

// Crashed reports whether a site is currently inside a crash window. Its
// state is frozen (sim) or gone (netrepl) — invariant checks skip it.
func (c *Ctx) Crashed(site int) bool { return c.crashed[site] > 0 }

func link(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (c *Ctx) partitionedIDs(a, b clock.ReplicaID) bool {
	ai, bi := -1, -1
	for i, s := range c.Sites {
		if s == a {
			ai = i
		}
		if s == b {
			bi = i
		}
	}
	if ai < 0 || bi < 0 {
		return false
	}
	return c.part[link(ai, bi)] > 0
}

// inject applies one fault window's start. Delay faults are a latency
// model property and exist on the sim backend only; other backends treat
// them as no-ops (the schedule stays valid, the spike just has no dial to
// turn on real sockets).
func (c *Ctx) inject(f Fault) {
	switch f.Kind {
	case FaultPartition:
		k := link(f.A, f.B)
		c.part[k]++
		if c.part[k] == 1 {
			if fl := c.faults(); fl != nil {
				fl.SetPartitioned(c.Sites[f.A], c.Sites[f.B], true)
			}
		}
	case FaultDelay:
		if c.Lat == nil {
			return
		}
		k := link(f.A, f.B)
		if c.delay[k] == 0 {
			c.delay[k] = 1
		}
		c.delay[k] *= f.Factor
		c.Lat.SetScale(string(c.Sites[f.A]), string(c.Sites[f.B]), c.delay[k])
	case FaultPause:
		c.paused[f.A]++
		if c.paused[f.A] == 1 {
			if fl := c.faults(); fl != nil {
				fl.SetPaused(c.Sites[f.A], true)
			}
		}
	case FaultStall:
		c.stalls++
	case FaultCrash:
		c.crashed[f.A]++
		if c.crashed[f.A] == 1 {
			if lc := c.lifecycle(); lc != nil && lc.Durable() {
				if err := lc.Crash(c.Sites[f.A]); err != nil {
					c.noteLifeErr(err)
				}
			}
			// Without a durable lifecycle the window still suppresses the
			// site's operations — shaping degrades, checks stay valid.
		}
	case FaultJoin:
		// Elastic membership is a netrepl capability; elsewhere the window
		// is a no-op (like delay spikes on real sockets).
		lc := c.lifecycle()
		if lc == nil || !lc.Durable() || c.Cluster.Backend() != runtime.BackendNet {
			return
		}
		id := joinerID(f)
		if c.joins[id]++; c.joins[id] > 1 {
			return // colliding window: the site is already joining/joined
		}
		donor := c.liveDonor(f.A)
		if donor < 0 {
			delete(c.joins, id) // every member crashed: nothing to bootstrap from
			return
		}
		c.joinIDs = append(c.joinIDs, id)
		if err := lc.Join(clock.ReplicaID(id), c.Sites[donor]); err != nil {
			c.noteLifeErr(err)
		}
	}
}

// joinerID derives the joining site's name from its fault window. Pure
// schedule data, so replays join (and decommission) the same site.
func joinerID(f Fault) string { return fmt.Sprintf("joiner-%dus-%d", int64(f.At), f.A) }

// liveDonor picks the bootstrap donor for a join: the fault's A site if
// it is up, otherwise the first live member; -1 when every site is down.
func (c *Ctx) liveDonor(a int) int {
	if c.crashed[a] == 0 {
		return a
	}
	for i := range c.Sites {
		if c.crashed[i] == 0 {
			return i
		}
	}
	return -1
}

// heal undoes one fault window's start.
func (c *Ctx) heal(f Fault) {
	switch f.Kind {
	case FaultPartition:
		k := link(f.A, f.B)
		c.part[k]--
		if c.part[k] == 0 {
			if fl := c.faults(); fl != nil {
				fl.SetPartitioned(c.Sites[f.A], c.Sites[f.B], false)
			}
		}
	case FaultDelay:
		if c.Lat == nil {
			return
		}
		k := link(f.A, f.B)
		c.delay[k] /= f.Factor
		factor := c.delay[k]
		if factor < 1.000001 { // float round-off: treat ~1 as healed
			factor = 1
			delete(c.delay, k)
		}
		c.Lat.SetScale(string(c.Sites[f.A]), string(c.Sites[f.B]), factor)
	case FaultPause:
		c.paused[f.A]--
		if c.paused[f.A] == 0 {
			if fl := c.faults(); fl != nil {
				fl.SetPaused(c.Sites[f.A], false)
			}
		}
	case FaultStall:
		c.stalls--
	case FaultCrash:
		c.crashed[f.A]--
		if c.crashed[f.A] == 0 {
			if lc := c.lifecycle(); lc != nil && lc.Durable() {
				if err := lc.Recover(c.Sites[f.A]); err != nil {
					c.noteLifeErr(err)
				}
			}
		}
	case FaultJoin:
		lc := c.lifecycle()
		if lc == nil || !lc.Durable() || c.Cluster.Backend() != runtime.BackendNet {
			return
		}
		id := joinerID(f)
		if _, ok := c.joins[id]; !ok {
			return // the matching inject never ran (all sites were down)
		}
		if c.joins[id]--; c.joins[id] > 0 {
			return
		}
		delete(c.joins, id)
		c.joinIDs = removeString(c.joinIDs, id)
		if err := lc.Decommission(clock.ReplicaID(id)); err != nil {
			c.noteLifeErr(err)
		}
	}
}

// removeString drops the first occurrence of s, preserving order.
func removeString(list []string, s string) []string {
	for i, v := range list {
		if v == s {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// healAll force-clears every live fault (quiescence). Links heal in
// sorted order — healing flushes buffered messages, and a map-ordered
// flush would make replays nondeterministic. Crashed sites recover
// first: a dead member never converges, so Settle would time out, and
// link heals tracked while it was down take effect on the new instance.
func (c *Ctx) healAll() {
	lc := c.lifecycle()
	for i := range c.crashed {
		if c.crashed[i] > 0 && lc != nil && lc.Durable() {
			if err := lc.Recover(c.Sites[i]); err != nil {
				c.noteLifeErr(err)
			}
		}
		c.crashed[i] = 0
	}
	for _, id := range c.joinIDs {
		if c.joins[id] > 0 && lc != nil {
			if err := lc.Decommission(clock.ReplicaID(id)); err != nil {
				c.noteLifeErr(err)
			}
		}
		delete(c.joins, id)
	}
	c.joinIDs = nil
	fl := c.faults()
	for _, k := range sortedLinks(c.part) {
		if c.part[k] > 0 && fl != nil {
			fl.SetPartitioned(c.Sites[k[0]], c.Sites[k[1]], false)
		}
		delete(c.part, k)
	}
	for _, k := range sortedLinks(c.delay) {
		if c.Lat != nil {
			c.Lat.ClearScale(string(c.Sites[k[0]]), string(c.Sites[k[1]]))
		}
		delete(c.delay, k)
	}
	for i := range c.paused {
		if c.paused[i] > 0 && fl != nil {
			fl.SetPaused(c.Sites[i], false)
		}
		c.paused[i] = 0
	}
	c.stalls = 0
}

// sortedLinks returns a map's link keys in deterministic order.
func sortedLinks[V any](m map[[2]int]V) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// digestList renders a sorted string list compactly for state digests.
func digestList(name string, elems []string) string {
	s := append([]string(nil), elems...)
	sort.Strings(s)
	return name + "{" + strings.Join(s, ",") + "}"
}
