package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ipa/internal/clock"
	"ipa/internal/indigo"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// App adapts one application to the chaos engine. An App instance is
// created fresh per schedule — once for generation (Gen may keep
// workload-side state such as circulating tweet ids) and once for
// execution (Apply may keep execution-side state such as placed orders).
//
// The check split mirrors the two repair mechanisms of the paper:
// MidCheck asserts only the invariants IPA restores at merge time
// (conflict-resolution repairs — they must hold in every causally
// consistent local state, at any instant); FinalCheck, which runs after
// Repair's compensating reads have executed and replicated, additionally
// asserts the invariants IPA restores at read time (compensations).
type App interface {
	// Gen materializes one random operation (Kind and Args; the engine
	// assigns At and Site).
	Gen(rng *rand.Rand) Op
	// Setup seeds the initial state; the engine drains replication after.
	Setup(ctx *Ctx)
	// Apply executes one materialized operation at a site.
	Apply(ctx *Ctx, op Op)
	// MidCheck reports violations of the continuously held invariants in
	// site's current local state.
	MidCheck(ctx *Ctx, site int) []string
	// Repair performs the application's compensating reads at site (the
	// read-triggered repairs of §4.2.2); a no-op for merge-repaired apps.
	Repair(ctx *Ctx, site int)
	// FinalCheck reports any invariant violation in site's state at
	// quiescence (after heal, drain, and Repair everywhere).
	FinalCheck(ctx *Ctx, site int) []string
	// Digest summarizes site's visible state; at quiescence all replicas
	// must digest identically (CRDT convergence).
	Digest(ctx *Ctx, site int) string
}

// newApp builds the adapter for cfg.App.
func newApp(cfg Config) (App, error) {
	switch cfg.App {
	case "tournament":
		return newTournamentChaos(cfg), nil
	case "ticket":
		return newTicketChaos(cfg), nil
	case "twitter":
		if cfg.BreakOp != "" {
			return nil, fmt.Errorf("harness: -break unsupported for twitter (causal and rem-wins variants use different CRDT layouts)")
		}
		return newTwitterChaos(cfg), nil
	case "tpcw":
		return newTPCWChaos(cfg), nil
	case "escrow":
		if cfg.BreakOp != "" {
			return nil, fmt.Errorf("harness: -break unsupported for escrow")
		}
		return newEscrowChaos(cfg), nil
	default:
		return nil, fmt.Errorf("harness: unknown app %q (want tournament, ticket, twitter, tpcw, or escrow)", cfg.App)
	}
}

// Apps lists the chaos-drivable application names.
func Apps() []string { return []string{"tournament", "ticket", "twitter", "tpcw", "escrow"} }

// Ctx is the execution context of one schedule: the simulation, the
// cluster, and the live fault state.
type Ctx struct {
	Cfg     Config
	Sim     *wan.Sim
	Lat     *wan.Latency
	Cluster *store.Cluster
	Sites   []clock.ReplicaID
	// Esc is the escrow manager (escrow scenario only).
	Esc *indigo.Escrow

	paused []int              // pause depth per site (faults may overlap)
	stalls int                // active stability-stall windows
	part   map[[2]int]int     // partition depth per link
	delay  map[[2]int]float64 // delay factor product per link
}

// newCtx builds the simulated deployment for a schedule. The first three
// sites use the paper's topology; larger clusters add sites on the
// default inter-DC latency.
func newCtx(s *Schedule) *Ctx {
	rng := rand.New(rand.NewSource(int64(s.Seed) ^ 0x5DEECE66D))
	sim := wan.NewSimFromRand(rng)
	lat := wan.PaperTopology()
	sites := make([]clock.ReplicaID, s.Cfg.Replicas)
	for i := range sites {
		if i < 3 {
			sites[i] = clock.ReplicaID(wan.Sites()[i])
		} else {
			sites[i] = clock.ReplicaID(fmt.Sprintf("site-%d", i))
		}
	}
	ctx := &Ctx{
		Cfg:     s.Cfg,
		Sim:     sim,
		Lat:     lat,
		Cluster: store.NewCluster(sim, lat, sites),
		Sites:   sites,
		paused:  make([]int, s.Cfg.Replicas),
		part:    map[[2]int]int{},
		delay:   map[[2]int]float64{},
	}
	if s.Cfg.App == "escrow" {
		ctx.Esc = indigo.NewEscrow(lat, sites)
		ctx.Esc.Partitioned = func(a, b clock.ReplicaID) bool {
			return ctx.partitionedIDs(a, b)
		}
	}
	return ctx
}

// Replica returns the store replica of a site index.
func (c *Ctx) Replica(site int) *store.Replica { return c.Cluster.Replica(c.Sites[site]) }

// Paused reports whether a site is currently paused.
func (c *Ctx) Paused(site int) bool { return c.paused[site] > 0 }

func link(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (c *Ctx) partitionedIDs(a, b clock.ReplicaID) bool {
	ai, bi := -1, -1
	for i, s := range c.Sites {
		if s == a {
			ai = i
		}
		if s == b {
			bi = i
		}
	}
	if ai < 0 || bi < 0 {
		return false
	}
	return c.part[link(ai, bi)] > 0
}

// inject applies one fault window's start.
func (c *Ctx) inject(f Fault) {
	switch f.Kind {
	case FaultPartition:
		k := link(f.A, f.B)
		c.part[k]++
		if c.part[k] == 1 {
			c.Cluster.SetPartitioned(c.Sites[f.A], c.Sites[f.B], true)
		}
	case FaultDelay:
		k := link(f.A, f.B)
		if c.delay[k] == 0 {
			c.delay[k] = 1
		}
		c.delay[k] *= f.Factor
		c.Lat.SetScale(string(c.Sites[f.A]), string(c.Sites[f.B]), c.delay[k])
	case FaultPause:
		c.paused[f.A]++
		if c.paused[f.A] == 1 {
			c.Cluster.SetPaused(c.Sites[f.A], true)
		}
	case FaultStall:
		c.stalls++
	}
}

// heal undoes one fault window's start.
func (c *Ctx) heal(f Fault) {
	switch f.Kind {
	case FaultPartition:
		k := link(f.A, f.B)
		c.part[k]--
		if c.part[k] == 0 {
			c.Cluster.SetPartitioned(c.Sites[f.A], c.Sites[f.B], false)
		}
	case FaultDelay:
		k := link(f.A, f.B)
		c.delay[k] /= f.Factor
		factor := c.delay[k]
		if factor < 1.000001 { // float round-off: treat ~1 as healed
			factor = 1
			delete(c.delay, k)
		}
		c.Lat.SetScale(string(c.Sites[f.A]), string(c.Sites[f.B]), factor)
	case FaultPause:
		c.paused[f.A]--
		if c.paused[f.A] == 0 {
			c.Cluster.SetPaused(c.Sites[f.A], false)
		}
	case FaultStall:
		c.stalls--
	}
}

// healAll force-clears every live fault (quiescence). Links heal in
// sorted order — healing flushes buffered messages, and a map-ordered
// flush would make replays nondeterministic.
func (c *Ctx) healAll() {
	for _, k := range sortedLinks(c.part) {
		if c.part[k] > 0 {
			c.Cluster.SetPartitioned(c.Sites[k[0]], c.Sites[k[1]], false)
		}
		delete(c.part, k)
	}
	for _, k := range sortedLinks(c.delay) {
		c.Lat.ClearScale(string(c.Sites[k[0]]), string(c.Sites[k[1]]))
		delete(c.delay, k)
	}
	for i := range c.paused {
		if c.paused[i] > 0 {
			c.Cluster.SetPaused(c.Sites[i], false)
		}
		c.paused[i] = 0
	}
	c.stalls = 0
}

// sortedLinks returns a map's link keys in deterministic order.
func sortedLinks[V any](m map[[2]int]V) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// digestList renders a sorted string list compactly for state digests.
func digestList(name string, elems []string) string {
	s := append([]string(nil), elems...)
	sort.Strings(s)
	return name + "{" + strings.Join(s, ",") + "}"
}
