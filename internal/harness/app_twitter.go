package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"ipa/internal/apps/twitter"
	"ipa/internal/store"
)

// twitterChaos drives the Twitter clone under the rem-wins strategy (the
// flavour that promises full referential integrity for both tweets and
// authors) or, for the causal variant, the unmodified application.
//
// Rem-wins repairs lazily at read time — dangling timeline entries are
// compensated away by ReadTimeline — so, like ticket, there is no
// mid-flight invariant check; the final check runs after quiescence
// repair reads over every user's timeline at every replica, where the raw
// state must be free of dangling references.
type twitterChaos struct {
	cfg   Config
	app   *twitter.App
	users []string
	// generation-side tweet pool so retweets and deletes target real ids
	nextID  int
	tweeted [][2]string // (id, author)
}

func newTwitterChaos(cfg Config) *twitterChaos {
	strategy := twitter.RemWins
	if cfg.Variant == "causal" {
		strategy = twitter.Causal
	}
	a := &twitterChaos{cfg: cfg, app: twitter.New(strategy)}
	for i := 0; i < 4; i++ {
		a.users = append(a.users, fmt.Sprintf("u%d", i))
	}
	return a
}

func (a *twitterChaos) Setup(ctx *Ctx) {
	first := ctx.Replica(0)
	for _, u := range a.users {
		a.app.AddUser(first, u)
	}
	// A small follower graph so tweets fan out.
	for i, u := range a.users {
		a.app.Follow(first, u, a.users[(i+1)%len(a.users)])
		a.app.Follow(first, u, a.users[(i+2)%len(a.users)])
	}
}

func (a *twitterChaos) newTweet(rng *rand.Rand) [2]string {
	a.nextID++
	ref := [2]string{fmt.Sprintf("tw%04d", a.nextID), a.users[rng.Intn(len(a.users))]}
	a.tweeted = append(a.tweeted, ref)
	return ref
}

func (a *twitterChaos) randTweet(rng *rand.Rand) ([2]string, bool) {
	if len(a.tweeted) == 0 {
		return [2]string{}, false
	}
	return a.tweeted[rng.Intn(len(a.tweeted))], true
}

func (a *twitterChaos) Gen(rng *rand.Rand) Op {
	u := a.users[rng.Intn(len(a.users))]
	v := a.users[rng.Intn(len(a.users))]
	x := rng.Float64()
	switch {
	case x < 0.20:
		ref := a.newTweet(rng)
		return Op{Kind: "tweet", Args: []string{ref[1], ref[0]}}
	case x < 0.32:
		if ref, ok := a.randTweet(rng); ok {
			return Op{Kind: "retweet", Args: []string{u, ref[0], ref[1]}}
		}
	case x < 0.47:
		if ref, ok := a.randTweet(rng); ok {
			return Op{Kind: "del_tweet", Args: []string{ref[0], ref[1]}}
		}
	case x < 0.55:
		return Op{Kind: "follow", Args: []string{u, v}}
	case x < 0.60:
		return Op{Kind: "unfollow", Args: []string{u, v}}
	case x < 0.75:
		return Op{Kind: "rem_user", Args: []string{u}}
	case x < 0.80:
		return Op{Kind: "add_user", Args: []string{u}}
	}
	return Op{Kind: "timeline", Args: []string{u}}
}

func (a *twitterChaos) Apply(ctx *Ctx, op Op) {
	r := ctx.Replica(op.Site)
	switch op.Kind {
	case "tweet":
		a.app.Tweet(r, op.Args[0], op.Args[1], "chaos")
	case "retweet":
		a.app.Retweet(r, op.Args[0], op.Args[1], op.Args[2])
	case "del_tweet":
		a.app.DelTweet(r, op.Args[0], op.Args[1])
	case "follow":
		a.app.Follow(r, op.Args[0], op.Args[1])
	case "unfollow":
		a.app.Unfollow(r, op.Args[0], op.Args[1])
	case "rem_user":
		a.app.RemUser(r, op.Args[0])
	case "add_user":
		a.app.AddUser(r, op.Args[0])
	case "timeline":
		a.app.ReadTimeline(r, op.Args[0])
	default:
		panic("harness: unknown twitter op " + op.Kind)
	}
}

func (a *twitterChaos) MidCheck(ctx *Ctx, site int) []string { return nil }

func (a *twitterChaos) Repair(ctx *Ctx, site int) {
	for _, u := range a.users {
		a.app.ReadTimeline(ctx.Replica(site), u)
	}
}

func (a *twitterChaos) FinalCheck(ctx *Ctx, site int) []string {
	return a.app.Violations(ctx.Replica(site), true)
}

func (a *twitterChaos) Digest(ctx *Ctx, site int) string {
	tx := ctx.Replica(site).Begin()
	defer tx.Commit()
	parts := []string{
		digestList("tweets", store.AWSetAt(tx, twitter.KeyTweets).Elems()),
		digestList("follows", store.AWSetAt(tx, twitter.KeyFollows).Elems()),
	}
	if a.app.Strategy() == twitter.RemWins {
		parts = append(parts, digestList("users", store.RWSetAt(tx, twitter.KeyUsers).Elems()))
		for _, u := range a.users {
			parts = append(parts, digestList("tl:"+u, store.RWSetAt(tx, twitter.TimelineKey(u)).Elems()))
		}
	} else {
		parts = append(parts, digestList("users", store.AWSetAt(tx, twitter.KeyUsers).Elems()))
		for _, u := range a.users {
			parts = append(parts, digestList("tl:"+u, store.AWSetAt(tx, twitter.TimelineKey(u)).Elems()))
		}
	}
	return strings.Join(parts, " ")
}
