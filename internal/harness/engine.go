package harness

import (
	"fmt"
	"strings"

	"ipa/internal/runtime"
	"ipa/internal/wan"
)

// Violation is one detected invariant (or convergence) failure.
type Violation struct {
	// At is the virtual time of detection.
	At wan.Time `json:"at"`
	// Phase is "mid-flight" or "quiescence".
	Phase string `json:"phase"`
	// Site names the replica whose state failed the check ("*" for
	// cross-replica convergence failures).
	Site string `json:"site"`
	// Check is the failed checker: "invariant" or "convergence".
	Check string `json:"check"`
	// Msgs are the individual violation descriptions.
	Msgs []string `json:"msgs"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("[%s @%.1fms site=%s %s] %s",
		v.Phase, v.At.Millis(), v.Site, v.Check, strings.Join(v.Msgs, "; "))
}

// Equal reports whether two violations are the same failure.
func (v *Violation) Equal(o *Violation) bool {
	if v == nil || o == nil {
		return v == o
	}
	if v.At != o.At || v.Phase != o.Phase || v.Site != o.Site || v.Check != o.Check || len(v.Msgs) != len(o.Msgs) {
		return false
	}
	for i := range v.Msgs {
		if v.Msgs[i] != o.Msgs[i] {
			return false
		}
	}
	return true
}

// midChecks is how many evenly spaced mid-flight check points (and
// stability runs) one schedule gets.
const midChecks = 16

// Execute runs one schedule to completion and returns the first detected
// violation, or nil for a clean pass.
//
// On the sim backend (the default) execution is deterministic in the
// schedule alone: the simulation's PRNG is seeded from Schedule.Seed, so
// the same schedule value always yields the same result — this is what
// makes seed replay and shrinking sound. On the netrepl backend the same
// schedule drives real sockets and goroutines (see executeNet): workload
// and fault windows replay exactly, thread interleavings do not.
func Execute(s *Schedule) (*Violation, error) {
	_, v, err := ExecuteDigest(s)
	return v, err
}

// ExecuteDigest is Execute plus the application's site-0 state digest at
// clean quiescence (empty when the schedule violated). Executors that
// must agree state-for-state — the hand-coded tournament and the
// spec-driven engine, or the same app on two backends — run the same
// schedule through ExecuteDigest and compare digests.
func ExecuteDigest(s *Schedule) (string, *Violation, error) {
	if s.Cfg.Backend == runtime.BackendNet {
		return executeNet(s)
	}
	return executeSim(s)
}

// executeSim runs one schedule inside the discrete-event simulation.
func executeSim(s *Schedule) (string, *Violation, error) {
	app, err := newApp(s.Cfg)
	if err != nil {
		return "", nil, err
	}
	ctx := newCtx(s)

	// Seed state and let it replicate everywhere before chaos starts.
	app.Setup(ctx)
	ctx.Sim.Run()

	var found *Violation
	report := func(v *Violation) {
		if found == nil {
			found = v
		}
	}

	// Workload: ops at paused sites are dropped (the site's clients are
	// frozen with it) — deterministically, since pause windows are data.
	for _, op := range s.Ops {
		op := op
		ctx.Sim.At(op.At, func() {
			if found != nil || ctx.Paused(op.Site) {
				return
			}
			app.Apply(ctx, op)
		})
	}

	// Faults: inject at At, heal at At+Dur (quiescence force-heals any
	// window still open at the horizon).
	for _, f := range s.Faults {
		f := f
		ctx.Sim.At(f.At, func() { ctx.inject(f) })
		ctx.Sim.At(f.At+f.Dur, func() { ctx.heal(f) })
	}

	// Periodic stability runs and mid-flight invariant checks. Stability
	// stalls suppress the Stabilize call (metadata compaction falls
	// behind) but never the checks.
	step := s.Cfg.Horizon / midChecks
	if step <= 0 {
		step = 1
	}
	for t := step; t <= s.Cfg.Horizon; t += step {
		ctx.Sim.At(t, func() {
			if found != nil {
				return
			}
			if ctx.stalls == 0 {
				ctx.Cluster.Stabilize()
			}
			for site := range ctx.Sites {
				if ctx.Crashed(site) {
					continue // the site is down; nothing to read
				}
				if msgs := app.MidCheck(ctx, site); len(msgs) > 0 {
					report(&Violation{At: ctx.Sim.Now(), Phase: "mid-flight",
						Site: string(ctx.Sites[site]), Check: "invariant", Msgs: msgs})
					return
				}
			}
		})
	}

	ctx.Sim.RunUntil(s.Cfg.Horizon)
	if found != nil {
		return "", found, nil
	}
	v, err := Quiesce(ctx, app)
	if v != nil || err != nil {
		return "", v, err
	}
	return app.Digest(ctx, 0), nil, nil
}

// Quiesce drives a run's end-of-schedule protocol, shared by both
// backend executors, the cross-backend equivalence runner, and the bench
// serving benchmark: heal every live fault, drain replication (the sim
// runs its event loop dry, netrepl waits for convergence), run the
// applications' compensating reads everywhere (twice — the first round's
// repairs replicate and may feed the second), take a stability pass,
// then assert the application's invariants and cross-replica digest
// convergence at every site. It returns the first violation, or nil for
// a clean quiescent state.
func Quiesce(ctx *Ctx, app App) (*Violation, error) {
	ctx.healAll()
	// A failed Recover or Join is a harness/backend bug, not an
	// application finding — surface it as a run error before the settle
	// phase times out cryptically on the half-dead mesh it left behind.
	if err := ctx.LifecycleErr(); err != nil {
		return nil, err
	}
	if err := ctx.Cluster.Settle(); err != nil {
		return nil, err
	}
	for round := 0; round < 2; round++ {
		for site := range ctx.Sites {
			app.Repair(ctx, site)
		}
		if err := ctx.Cluster.Settle(); err != nil {
			return nil, err
		}
	}
	ctx.Cluster.Stabilize()

	// Violations report virtual time on the sim backend; on netrepl the
	// run's horizon is the only meaningful schedule-relative timestamp.
	at := ctx.Cfg.Horizon
	if ctx.Sim != nil {
		at = ctx.Sim.Now()
	}
	for site := range ctx.Sites {
		if msgs := app.FinalCheck(ctx, site); len(msgs) > 0 {
			return &Violation{At: at, Phase: "quiescence",
				Site: string(ctx.Sites[site]), Check: "invariant", Msgs: msgs}, nil
		}
	}

	// Convergence: every replica must digest the same visible state.
	base := app.Digest(ctx, 0)
	for site := 1; site < len(ctx.Sites); site++ {
		if d := app.Digest(ctx, site); d != base {
			return &Violation{At: at, Phase: "quiescence",
				Site: "*", Check: "convergence",
				Msgs: []string{fmt.Sprintf("replica %s diverged from %s:\n  %s\n  vs\n  %s",
					ctx.Sites[site], ctx.Sites[0], d, base)}}, nil
		}
	}
	return nil, nil
}
