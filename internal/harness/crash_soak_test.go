package harness

import (
	"testing"

	"ipa/internal/runtime"
)

// crashSchedules generates schedules for cfg until want of them carry at
// least one crash-recover window, and returns those. Fault kinds are
// drawn randomly, so this filters rather than forces — the schedules
// stay replayable by seed.
func crashSchedules(t *testing.T, cfg Config, want int) []*Schedule {
	t.Helper()
	var out []*Schedule
	for i := 0; len(out) < want; i++ {
		if i > 200*want {
			t.Fatalf("only %d of %d crash schedules after %d draws", len(out), want, i)
		}
		s, err := Generate(cfg, ScheduleSeed(0x9EC0F, i))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range s.Faults {
			if f.Kind == FaultCrash {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// TestChaosCrashRecoverSoak is the recovery soak: schedules guaranteed
// to kill (and recover) replicas mid-run, for the invariant-heavy
// applications on both backends. On netrepl the crash is a real kill -9
// of a durable node — WAL abandon, replay from snapshot, re-mesh — and
// quiescence asserts cross-replica digest equality, so any acked-op loss
// or resurrection during recovery surfaces as divergence. Escrow (the
// paper's coordination baseline, sim-only by construction) rides the
// same crash windows on the simulator, where its conservation invariant
// must hold across the crash-as-pause model.
func TestChaosCrashRecoverSoak(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 2
	}
	combos := []struct {
		app     string
		backend string
	}{
		{"tournament", runtime.BackendSim},
		{"tournament", runtime.BackendNet},
		{"escrow", runtime.BackendSim},
	}
	for _, combo := range combos {
		combo := combo
		t.Run(combo.app+"-"+combo.backend, func(t *testing.T) {
			t.Parallel()
			cfg := Defaults(combo.app)
			cfg.Backend = combo.backend
			if combo.backend == runtime.BackendNet {
				cfg.Ops = 40
			}
			for _, s := range crashSchedules(t, cfg, n) {
				v, err := Execute(s)
				if err != nil {
					t.Fatalf("seed %#x: %v", s.Seed, err)
				}
				if v != nil {
					t.Fatalf("seed %#x violates under crash-recover: %s", s.Seed, v)
				}
			}
		})
	}
}
