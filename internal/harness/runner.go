package harness

import (
	"fmt"

	"ipa/internal/runtime"
)

// Result summarizes one chaos campaign.
type Result struct {
	// Schedules is how many schedules executed (including the failing one).
	Schedules int
	// FoundAt is the zero-based index of the failing schedule (-1 if none).
	FoundAt int
	// Seed is the per-schedule seed that produced the violation.
	Seed uint64
	// Violation is the failure found by the full schedule, nil if clean.
	Violation *Violation
	// Schedule is the failing schedule as generated.
	Schedule *Schedule
	// Shrunk is the minimized schedule (when shrinking ran) and
	// ShrunkViolation its — deterministically reproducible — failure.
	Shrunk          *Schedule
	ShrunkViolation *Violation
}

// splitmix64 is the per-schedule seed derivation: independent,
// well-mixed streams from one campaign seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ScheduleSeed returns the seed of the i-th schedule of a campaign.
func ScheduleSeed(campaign uint64, i int) uint64 {
	return splitmix64(campaign + uint64(i))
}

// Run executes up to schedules randomized schedules derived from one
// campaign seed and stops at the first violation, which it shrinks to a
// minimal reproduction. progress, when non-nil, is called after every
// schedule (for CLI feedback); it must not mutate the schedule.
func Run(cfg Config, campaignSeed uint64, schedules int, progress func(i int, s *Schedule, v *Violation)) (*Result, error) {
	return RunWithShrink(cfg, campaignSeed, schedules, true, progress)
}

// RunWithShrink is Run with shrinking optional: on large schedules the
// ddmin pass re-executes the failure O(n log n) times, which a caller
// that only wants the fast fail signal can skip. On the netrepl backend
// shrinking is disabled regardless: ddmin is only sound when a
// schedule's outcome is a pure function of the schedule, and netrepl
// runs are not bit-deterministic — Result.Shrunk stays nil there.
func RunWithShrink(cfg Config, campaignSeed uint64, schedules int, shrink bool, progress func(i int, s *Schedule, v *Violation)) (*Result, error) {
	cfg, err := cfg.Norm()
	if err != nil {
		return nil, err
	}
	if cfg.Backend == runtime.BackendNet {
		shrink = false
	}
	res := &Result{FoundAt: -1}
	for i := 0; i < schedules; i++ {
		seed := ScheduleSeed(campaignSeed, i)
		s, err := Generate(cfg, seed)
		if err != nil {
			return nil, err
		}
		v, err := Execute(s)
		if err != nil {
			return nil, err
		}
		res.Schedules++
		if progress != nil {
			progress(i, s, v)
		}
		if v != nil {
			res.FoundAt, res.Seed = i, seed
			res.Violation, res.Schedule = v, s
			if shrink {
				res.Shrunk, res.ShrunkViolation, err = Shrink(s)
				if err != nil {
					return nil, err
				}
			}
			return res, nil
		}
	}
	return res, nil
}

// Replay re-executes one seed exactly as a campaign would have run it.
func Replay(cfg Config, seed uint64) (*Schedule, *Violation, error) {
	s, err := Generate(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	v, err := Execute(s)
	return s, v, err
}

// Summary renders a short human-readable account of the result.
func (r *Result) Summary() string {
	if r.Violation == nil {
		return fmt.Sprintf("%d schedules, no violation", r.Schedules)
	}
	out := fmt.Sprintf("violation at schedule %d (seed %#x):\n  %s\n", r.FoundAt, r.Seed, r.Violation)
	if r.Shrunk != nil {
		out += fmt.Sprintf("shrunk %d ops -> %d, %d faults -> %d, horizon %.0fms -> %.0fms:\n  %s\n",
			len(r.Schedule.Ops), len(r.Shrunk.Ops),
			len(r.Schedule.Faults), len(r.Shrunk.Faults),
			r.Schedule.Cfg.Horizon.Millis(), r.Shrunk.Cfg.Horizon.Millis(),
			r.ShrunkViolation)
		for _, op := range r.Shrunk.Ops {
			out += fmt.Sprintf("    %s\n", op)
		}
		for _, f := range r.Shrunk.Faults {
			out += fmt.Sprintf("    %s\n", f)
		}
	}
	return out
}
