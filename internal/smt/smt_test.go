package smt

import (
	"testing"

	"ipa/internal/logic"
	"ipa/internal/sat"
)

var tourSig = Signature{
	"player":     {"Player"},
	"tournament": {"Tournament"},
	"enrolled":   {"Player", "Tournament"},
	"active":     {"Tournament"},
	"finished":   {"Tournament"},
}

func tourDomain(n int) Domain {
	players := []string{"P1", "P2", "P3"}[:n]
	tourns := []string{"T1", "T2", "T3"}[:n]
	return Domain{"Player": players, "Tournament": tourns}
}

const refIntegrity = "forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)"

// conflictQuery encodes the paper's four-state check:
// I(pre) ∧ I(post1) ∧ I(post2) ∧ ¬I(merged).
func conflictQuery(t *testing.T, e *Encoder, inv logic.Formula, e1, e2 GroundEffects, resolve ResolveFunc) (bool, *State, *State) {
	t.Helper()
	pre := e.NewState("pre")
	post1 := e.Apply(pre, e1, "post1")
	post2 := e.Apply(pre, e2, "post2")
	merged := e.Merge(pre, e1, e2, resolve, "merged")
	for _, st := range []*State{pre, post1, post2} {
		if err := e.Assert(inv, st); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AssertNot(inv, merged); err != nil {
		t.Fatal(err)
	}
	return e.Solve(), pre, merged
}

// Paper Fig. 2a: rem_tourn(t) ∥ enroll(p, t) breaks referential integrity.
func TestFig2aReferentialIntegrityBroken(t *testing.T) {
	inv := logic.MustParse(refIntegrity)
	e := NewEncoder(tourDomain(2), tourSig)
	remTourn := GroundEffects{Bools: []BoolEffect{{Pred: "tournament", Args: []string{"T1"}, Val: false}}}
	enroll := GroundEffects{Bools: []BoolEffect{{Pred: "enrolled", Args: []string{"P1", "T1"}, Val: true}}}
	sat, pre, merged := conflictQuery(t, e, inv, remTourn, enroll, nil)
	if !sat {
		t.Fatal("rem_tourn ∥ enroll must conflict under referential integrity")
	}
	// The counterexample must show the enrolled pair without the tournament.
	if v, ok := merged.AtomValue("enrolled", []string{"P1", "T1"}); !ok || !v {
		t.Fatalf("merged enrolled(P1,T1) should be true in the model")
	}
	if v, ok := merged.AtomValue("tournament", []string{"T1"}); !ok || v {
		t.Fatalf("merged tournament(T1) should be false in the model")
	}
	if v, ok := pre.AtomValue("tournament", []string{"T1"}); !ok || !v {
		t.Fatalf("pre tournament(T1) should be true (enroll executed there)")
	}
}

// Paper Fig. 2b: enroll additionally sets tournament(t) := true; with an
// add-wins rule for tournament the merge restores the tournament.
func TestFig2bAddWinsRepairs(t *testing.T) {
	inv := logic.MustParse(refIntegrity)
	e := NewEncoder(tourDomain(2), tourSig)
	remTourn := GroundEffects{Bools: []BoolEffect{{Pred: "tournament", Args: []string{"T1"}, Val: false}}}
	enrollT := GroundEffects{Bools: []BoolEffect{
		{Pred: "enrolled", Args: []string{"P1", "T1"}, Val: true},
		{Pred: "tournament", Args: []string{"T1"}, Val: true},
	}}
	addWins := func(pred string) (bool, bool) {
		if pred == "tournament" {
			return true, true
		}
		return false, false
	}
	sat, _, _ := conflictQuery(t, e, inv, remTourn, enrollT, addWins)
	if sat {
		t.Fatal("repaired enroll with add-wins tournament must not conflict")
	}
}

// Paper Fig. 2c: rem_tourn additionally clears enrolled(*, t); with a
// rem-wins rule for enrolled the merge removes the concurrent enrolment.
func TestFig2cRemWinsRepairs(t *testing.T) {
	inv := logic.MustParse(refIntegrity)
	e := NewEncoder(tourDomain(2), tourSig)
	remTourn := GroundEffects{Bools: []BoolEffect{
		{Pred: "tournament", Args: []string{"T1"}, Val: false},
		{Pred: "enrolled", Args: []string{"", "T1"}, Val: false}, // wildcard
	}}
	enroll := GroundEffects{Bools: []BoolEffect{{Pred: "enrolled", Args: []string{"P1", "T1"}, Val: true}}}
	remWins := func(pred string) (bool, bool) {
		if pred == "enrolled" {
			return false, true
		}
		return false, false
	}
	sat, _, _ := conflictQuery(t, e, inv, remTourn, enroll, remWins)
	if sat {
		t.Fatal("repaired rem_tourn with rem-wins enrolled must not conflict")
	}
}

// Without a convergence rule, opposing effects leave the merged value
// unconstrained, so the conflict must still be found.
func TestOpposingEffectsWithoutRuleStillConflict(t *testing.T) {
	inv := logic.MustParse(refIntegrity)
	e := NewEncoder(tourDomain(2), tourSig)
	remTourn := GroundEffects{Bools: []BoolEffect{{Pred: "tournament", Args: []string{"T1"}, Val: false}}}
	enrollT := GroundEffects{Bools: []BoolEffect{
		{Pred: "enrolled", Args: []string{"P1", "T1"}, Val: true},
		{Pred: "tournament", Args: []string{"T1"}, Val: true},
	}}
	sat, _, _ := conflictQuery(t, e, inv, remTourn, enrollT, nil)
	if !sat {
		t.Fatal("without a convergence rule the opposing write may lose: conflict expected")
	}
}

// Capacity invariant: two concurrent enrolls can overshoot a symbolic
// Capacity (the paper's aggregation constraint, routed to compensations).
func TestCapacityOvershoot(t *testing.T) {
	inv := logic.MustParse("forall (Tournament: t) :- #enrolled(*, t) <= Capacity")
	e := NewEncoder(tourDomain(2), tourSig)
	enroll1 := GroundEffects{Bools: []BoolEffect{{Pred: "enrolled", Args: []string{"P1", "T1"}, Val: true}}}
	enroll2 := GroundEffects{Bools: []BoolEffect{{Pred: "enrolled", Args: []string{"P2", "T1"}, Val: true}}}
	sat, _, merged := conflictQuery(t, e, inv, enroll1, enroll2, nil)
	if !sat {
		t.Fatal("concurrent enrolls must be able to overshoot Capacity")
	}
	cap, ok := e.ConstValue("Capacity")
	if !ok {
		t.Fatal("Capacity constant not allocated")
	}
	count := 0
	for _, p := range []string{"P1", "P2"} {
		if v, ok := merged.AtomValue("enrolled", []string{p, "T1"}); ok && v {
			count++
		}
	}
	if count <= cap {
		t.Fatalf("model is not a violation: count=%d capacity=%d", count, cap)
	}
}

// Enrolling the same player twice is idempotent under set semantics and
// must NOT be reported as a capacity conflict.
func TestCapacitySamePlayerIdempotent(t *testing.T) {
	inv := logic.MustParse("forall (Tournament: t) :- #enrolled(*, t) <= Capacity")
	e := NewEncoder(tourDomain(2), tourSig)
	enroll := GroundEffects{Bools: []BoolEffect{{Pred: "enrolled", Args: []string{"P1", "T1"}, Val: true}}}
	sat, _, _ := conflictQuery(t, e, inv, enroll, enroll, nil)
	if sat {
		t.Fatal("same-element double add is idempotent: no conflict expected")
	}
}

// Numeric field: two concurrent decrements can take stock below zero.
func TestStockUnderflow(t *testing.T) {
	inv := logic.MustParse("forall (Item: i) :- stock(i) >= 0")
	dom := Domain{"Item": {"Item1", "Item2"}}
	sig := Signature{"stock": {"Item"}}
	e := NewEncoder(dom, sig)
	buy := GroundEffects{Nums: []NumEffect{{Fn: "stock", Args: []string{"Item1"}, Delta: -1}}}
	sat, pre, merged := conflictQuery(t, e, inv, buy, buy, nil)
	if !sat {
		t.Fatal("concurrent buys must be able to underflow stock")
	}
	preV, ok := pre.FnValue("stock", []string{"Item1"})
	if !ok {
		t.Fatal("pre stock not materialised")
	}
	mergedV, _ := merged.FnValue("stock", []string{"Item1"})
	if preV < 0 || mergedV >= 0 {
		t.Fatalf("model should show pre>=0, merged<0: pre=%d merged=%d", preV, mergedV)
	}
	if mergedV != preV-2 {
		t.Fatalf("merged = pre-2 expected: pre=%d merged=%d", preV, mergedV)
	}
}

// Restock (positive delta) never violates a lower bound.
func TestRestockSafe(t *testing.T) {
	inv := logic.MustParse("forall (Item: i) :- stock(i) >= 0")
	dom := Domain{"Item": {"Item1", "Item2"}}
	e := NewEncoder(dom, Signature{"stock": {"Item"}})
	restock := GroundEffects{Nums: []NumEffect{{Fn: "stock", Args: []string{"Item1"}, Delta: 5}}}
	sat, _, _ := conflictQuery(t, e, inv, restock, restock, nil)
	if sat {
		t.Fatal("concurrent restocks cannot violate stock >= 0")
	}
}

// Mutual exclusion: concurrent begin (active:=true) and finish
// (finished:=true, active:=false) — with no rule on active the merge may
// leave both active and finished true.
func TestMutualExclusionConflict(t *testing.T) {
	inv := logic.MustParse("forall (Tournament: t) :- not (active(t) and finished(t))")
	e := NewEncoder(tourDomain(2), tourSig)
	begin := GroundEffects{Bools: []BoolEffect{{Pred: "active", Args: []string{"T1"}, Val: true}}}
	finish := GroundEffects{Bools: []BoolEffect{
		{Pred: "finished", Args: []string{"T1"}, Val: true},
		{Pred: "active", Args: []string{"T1"}, Val: false},
	}}
	sat, _, _ := conflictQuery(t, e, inv, begin, finish, nil)
	if !sat {
		t.Fatal("begin ∥ finish must conflict on not(active and finished)")
	}
	// With a rem-wins rule on active, finish wins and the invariant holds.
	e2 := NewEncoder(tourDomain(2), tourSig)
	remWinsActive := func(pred string) (bool, bool) {
		if pred == "active" {
			return false, true
		}
		return false, false
	}
	sat2, _, _ := conflictQuery(t, e2, inv, begin, finish, remWinsActive)
	if sat2 {
		t.Fatal("rem-wins active resolves begin ∥ finish")
	}
}

func TestFormulaErrors(t *testing.T) {
	e := NewEncoder(tourDomain(2), tourSig)
	st := e.NewState("s")
	// Unbound variable.
	if _, err := e.Formula(logic.MustParse("player(p)"), st, Binding{}); err == nil {
		t.Fatal("unbound variable must error")
	}
	// Unknown sort in quantifier.
	if _, err := e.Formula(logic.MustParse("forall (Ghost: g) :- spooky(g)"), st, Binding{}); err == nil {
		t.Fatal("unknown sort must error")
	}
	// Wildcard on a predicate without signature.
	if _, err := e.Formula(logic.MustParse("forall (Tournament: t) :- #mystery(*, t) <= 3"), st, Binding{}); err == nil {
		t.Fatal("wildcard without signature must error")
	}
}

func TestStateOverlayFrame(t *testing.T) {
	// Unassigned atoms must be shared between pre and post (frame rule).
	e := NewEncoder(tourDomain(2), tourSig)
	pre := e.NewState("pre")
	post := e.Apply(pre, GroundEffects{Bools: []BoolEffect{{Pred: "player", Args: []string{"P1"}, Val: true}}}, "post")
	a := pre.Atom("player", []string{"P2"})
	b := post.Atom("player", []string{"P2"})
	e.S.Assert(sat.Iff(a, sat.Not(b)))
	if e.Solve() {
		t.Fatal("unassigned atom must be identical across states")
	}
}

func TestBitVectorArithmetic(t *testing.T) {
	// 5 - 3 = 2 via encoder circuits, checked by solving.
	e := NewEncoder(Domain{}, Signature{})
	d := e.sub(constBV(5), constBV(3))
	eq := e.equal(d, constBV(2))
	e.S.Assert(eq)
	if !e.Solve() {
		t.Fatal("5-3=2 must be satisfiable")
	}
	if got := e.valueOf(d); got != 2 {
		t.Fatalf("5-3 evaluated to %d", got)
	}

	e2 := NewEncoder(Domain{}, Signature{})
	lt := e2.less(constBV(-4), constBV(3))
	e2.S.Assert(lt)
	if !e2.Solve() {
		t.Fatal("-4 < 3 must hold (signed comparison)")
	}
	e3 := NewEncoder(Domain{}, Signature{})
	e3.S.Assert(e3.less(constBV(3), constBV(-4)))
	if e3.Solve() {
		t.Fatal("3 < -4 must be unsatisfiable")
	}
}

func TestSumCircuit(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder(Domain{}, Signature{})
		bits := make([]*sat.Formula, 9)
		for i := range bits {
			if i < n {
				bits[i] = sat.TrueF()
			} else {
				bits[i] = sat.FalseF()
			}
		}
		s := e.sum(bits)
		e.S.Assert(e.equal(s, constBV(n)))
		if !e.Solve() {
			t.Fatalf("sum of %d ones != %d", n, n)
		}
	}
}

func TestEffectStrings(t *testing.T) {
	be := BoolEffect{Pred: "enrolled", Args: []string{"", "T1"}, Val: false}
	if be.String() != "enrolled(*,T1) := false" {
		t.Fatalf("BoolEffect.String() = %q", be.String())
	}
	ne := NumEffect{Fn: "stock", Args: []string{"I1"}, Delta: -2}
	if ne.String() != "stock(I1) -= 2" {
		t.Fatalf("NumEffect.String() = %q", ne.String())
	}
}

func TestUniformScope(t *testing.T) {
	d := UniformScope([]logic.Sort{"Player", "Tournament"}, 3)
	if len(d["Player"]) != 3 || d["Player"][0] != "Player1" {
		t.Fatalf("domain = %v", d)
	}
	sorts := d.Sorts()
	if len(sorts) != 2 || sorts[0] != "Player" {
		t.Fatalf("sorts = %v", sorts)
	}
}
