package smt

import (
	"math/rand"
	"testing"

	"ipa/internal/logic"
	"ipa/internal/sat"
)

// randFormula builds a random quantified boolean formula over the
// tournament signature.
func randFormula(rng *rand.Rand, depth int, vars []logic.Var) logic.Formula {
	preds := []struct {
		name  string
		sorts []logic.Sort
	}{
		{"player", []logic.Sort{"Player"}},
		{"tournament", []logic.Sort{"Tournament"}},
		{"enrolled", []logic.Sort{"Player", "Tournament"}},
		{"active", []logic.Sort{"Tournament"}},
	}
	if depth == 0 || rng.Intn(3) == 0 {
		p := preds[rng.Intn(len(preds))]
		args := make([]logic.Term, len(p.sorts))
		for i, srt := range p.sorts {
			// Pick a variable of the right sort.
			var pool []logic.Var
			for _, v := range vars {
				if v.Sort == srt {
					pool = append(pool, v)
				}
			}
			args[i] = logic.V(pool[rng.Intn(len(pool))].Name)
		}
		return &logic.Atom{Pred: p.name, Args: args}
	}
	switch rng.Intn(4) {
	case 0:
		return &logic.Not{F: randFormula(rng, depth-1, vars)}
	case 1:
		return &logic.And{L: []logic.Formula{randFormula(rng, depth-1, vars), randFormula(rng, depth-1, vars)}}
	case 2:
		return &logic.Or{L: []logic.Formula{randFormula(rng, depth-1, vars), randFormula(rng, depth-1, vars)}}
	default:
		return &logic.Implies{A: randFormula(rng, depth-1, vars), B: randFormula(rng, depth-1, vars)}
	}
}

// evalGround evaluates a quantified formula by explicit enumeration over
// the domain given a truth assignment for ground atoms — an independent
// reference semantics for the encoder.
func evalGround(f logic.Formula, dom Domain, env map[string]string, truth map[string]bool) bool {
	switch g := f.(type) {
	case *logic.BoolLit:
		return g.Val
	case *logic.Atom:
		key := g.Pred
		if len(g.Args) > 0 {
			key += "("
			for i, a := range g.Args {
				if i > 0 {
					key += ","
				}
				key += env[a.Name]
			}
			key += ")"
		}
		return truth[key]
	case *logic.Not:
		return !evalGround(g.F, dom, env, truth)
	case *logic.And:
		for _, c := range g.L {
			if !evalGround(c, dom, env, truth) {
				return false
			}
		}
		return true
	case *logic.Or:
		for _, c := range g.L {
			if evalGround(c, dom, env, truth) {
				return true
			}
		}
		return false
	case *logic.Implies:
		return !evalGround(g.A, dom, env, truth) || evalGround(g.B, dom, env, truth)
	case *logic.Forall:
		var rec func(i int, env map[string]string) bool
		rec = func(i int, env map[string]string) bool {
			if i == len(g.Vars) {
				return evalGround(g.Body, dom, env, truth)
			}
			for _, el := range dom[g.Vars[i].Sort] {
				inner := map[string]string{}
				for k, v := range env {
					inner[k] = v
				}
				inner[g.Vars[i].Name] = el
				if !rec(i+1, inner) {
					return false
				}
			}
			return true
		}
		return rec(0, env)
	}
	panic("unhandled")
}

// Property: the encoder agrees with the reference enumeration semantics —
// a random quantified formula is satisfiable under the encoder iff some
// truth assignment over the ground atoms satisfies it by enumeration.
func TestEncoderAgreesWithEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dom := Domain{"Player": {"P1", "P2"}, "Tournament": {"T1"}}
	sig := Signature{
		"player": {"Player"}, "tournament": {"Tournament"},
		"enrolled": {"Player", "Tournament"}, "active": {"Tournament"},
	}
	vars := []logic.Var{{Name: "p", Sort: "Player"}, {Name: "t", Sort: "Tournament"}}

	// All ground atoms of the signature over the domain.
	var atoms []string
	for _, p := range dom["Player"] {
		atoms = append(atoms, "player("+p+")")
		for _, tt := range dom["Tournament"] {
			atoms = append(atoms, "enrolled("+p+","+tt+")")
		}
	}
	for _, tt := range dom["Tournament"] {
		atoms = append(atoms, "tournament("+tt+")", "active("+tt+")")
	}

	for trial := 0; trial < 150; trial++ {
		body := randFormula(rng, 3, vars)
		f := &logic.Forall{Vars: vars, Body: body}

		enc := NewEncoder(dom, sig)
		st := enc.NewState("s")
		if err := enc.Assert(f, st); err != nil {
			t.Fatal(err)
		}
		got := enc.Solve()

		// Reference: enumerate all 2^|atoms| assignments.
		want := false
		for m := 0; m < 1<<len(atoms); m++ {
			truth := map[string]bool{}
			for i, a := range atoms {
				truth[a] = m&(1<<i) != 0
			}
			if evalGround(f, dom, map[string]string{}, truth) {
				want = true
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: encoder=%v enumeration=%v formula=%s", trial, got, want, f)
		}
	}
}

// Property: merging an operation's effects with themselves is equivalent
// to applying the operation once — boolean effect integration is
// idempotent, the property compensations rely on (§3.4).
func TestMergeSelfIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	dom := Domain{"Player": {"P1", "P2"}, "Tournament": {"T1"}}
	sig := Signature{"player": {"Player"}, "enrolled": {"Player", "Tournament"}}
	for trial := 0; trial < 100; trial++ {
		var eff GroundEffects
		assigned := map[string]bool{} // avoid self-opposing effect sets
		for i := 0; i < 1+rng.Intn(3); i++ {
			if rng.Intn(2) == 0 {
				args := []string{dom["Player"][rng.Intn(2)]}
				key := "player:" + args[0]
				if assigned[key] {
					continue
				}
				assigned[key] = true
				eff.Bools = append(eff.Bools, BoolEffect{Pred: "player", Args: args, Val: rng.Intn(2) == 0})
			} else {
				args := []string{dom["Player"][rng.Intn(2)], "T1"}
				key := "enrolled:" + args[0]
				if assigned[key] {
					continue
				}
				assigned[key] = true
				eff.Bools = append(eff.Bools, BoolEffect{Pred: "enrolled", Args: args, Val: rng.Intn(2) == 0})
			}
		}
		enc := NewEncoder(dom, sig)
		pre := enc.NewState("pre")
		post := enc.Apply(pre, eff, "post")
		merged := enc.Merge(pre, eff, eff, nil, "merged")

		// Assert that SOME ground atom differs between post and merged;
		// UNSAT means the states are equivalent.
		var anyDiff []*sat.Formula
		for _, p := range dom["Player"] {
			for _, check := range [][2]string{{"player", p}, {"enrolled", p}} {
				var a, b *sat.Formula
				if check[0] == "player" {
					a = post.Atom("player", []string{p})
					b = merged.Atom("player", []string{p})
				} else {
					a = post.Atom("enrolled", []string{p, "T1"})
					b = merged.Atom("enrolled", []string{p, "T1"})
				}
				anyDiff = append(anyDiff, sat.Or(sat.And(a, sat.Not(b)), sat.And(sat.Not(a), b)))
			}
		}
		enc.S.Assert(sat.Or(anyDiff...))
		if enc.Solve() {
			t.Fatalf("trial %d: self-merge differs from apply for %v", trial, eff.Bools)
		}
	}
}
