package smt

import (
	"testing"

	"ipa/internal/logic"
)

// Exhaustively verify the bit-vector comparators and arithmetic against
// native integers over a signed range — any encoding bug in the adders,
// sign handling or comparison circuits shows up here.
func TestComparatorsExhaustive(t *testing.T) {
	ops := []logic.CmpOp{logic.EQ, logic.NE, logic.LT, logic.LE, logic.GT, logic.GE}
	check := func(op logic.CmpOp, a, b int) bool {
		switch op {
		case logic.EQ:
			return a == b
		case logic.NE:
			return a != b
		case logic.LT:
			return a < b
		case logic.LE:
			return a <= b
		case logic.GT:
			return a > b
		case logic.GE:
			return a >= b
		}
		return false
	}
	for a := -9; a <= 9; a++ {
		for b := -9; b <= 9; b++ {
			for _, op := range ops {
				e := NewEncoder(Domain{}, Signature{})
				e.S.Assert(e.compare(op, constBV(a), constBV(b)))
				got := e.Solve()
				want := check(op, a, b)
				if got != want {
					t.Fatalf("%d %v %d: encoder=%v native=%v", a, op, b, got, want)
				}
			}
		}
	}
}

func TestArithmeticExhaustive(t *testing.T) {
	for a := -6; a <= 6; a++ {
		for b := -6; b <= 6; b++ {
			e := NewEncoder(Domain{}, Signature{})
			sum := e.add(constBV(a), constBV(b))
			diff := e.sub(constBV(a), constBV(b))
			e.S.Assert(e.equal(sum, constBV(a+b)))
			e.S.Assert(e.equal(diff, constBV(a-b)))
			if !e.Solve() {
				t.Fatalf("%d+%d or %d-%d misencoded", a, b, a, b)
			}
			// And the negative check: sum must NOT equal a+b+1.
			e2 := NewEncoder(Domain{}, Signature{})
			sum2 := e2.add(constBV(a), constBV(b))
			e2.S.Assert(e2.equal(sum2, constBV(a+b+1)))
			if e2.Solve() {
				t.Fatalf("%d+%d also equals %d?!", a, b, a+b+1)
			}
		}
	}
}

func TestNegExhaustive(t *testing.T) {
	for a := -8; a <= 8; a++ {
		e := NewEncoder(Domain{}, Signature{})
		e.S.Assert(e.equal(e.neg(constBV(a)), constBV(-a)))
		if !e.Solve() {
			t.Fatalf("neg(%d) != %d", a, -a)
		}
	}
}

func TestConstBVWidths(t *testing.T) {
	// Every value in a wide range round-trips through its bit pattern.
	for n := -300; n <= 300; n += 7 {
		e := NewEncoder(Domain{}, Signature{})
		v := constBV(n)
		e.S.Assert(e.equal(v, v))
		if !e.Solve() {
			t.Fatalf("constBV(%d) self-compare failed", n)
		}
		if got := e.valueOf(v); got != n {
			t.Fatalf("constBV(%d) decodes to %d", n, got)
		}
	}
}

func TestSymbolicConstantsShared(t *testing.T) {
	// The same named constant must be one vector across states: asserting
	// Capacity = 3 in one formula pins it everywhere.
	e := NewEncoder(Domain{"S": {"a"}}, Signature{})
	st := e.NewState("s")
	if err := e.Assert(logic.MustParse("Capacity = 3"), st); err != nil {
		t.Fatal(err)
	}
	if err := e.Assert(logic.MustParse("Capacity >= 3"), st); err != nil {
		t.Fatal(err)
	}
	if !e.Solve() {
		t.Fatal("consistent constraints should be satisfiable")
	}
	if v, ok := e.ConstValue("Capacity"); !ok || v != 3 {
		t.Fatalf("Capacity = %d, %v", v, ok)
	}
	if err := e.Assert(logic.MustParse("Capacity = 4"), st); err != nil {
		t.Fatal(err)
	}
	if e.Solve() {
		t.Fatal("contradictory constant pinning must be unsatisfiable")
	}
}
